(** Request-scoped trace context: a SplitMix64-derived trace id plus a
    causally-ordered span tree whose timestamps come from an injected
    clock.  Deterministic under a virtual clock — replaying the same
    request trace yields a bit-identical context (see {!digest}).

    A context can be installed as the {e ambient} trace of the current
    domain, letting deep layers (retry attempts, solver rungs, CG)
    attach spans without threading a value through their signatures.
    The ambient slot is domain-local, so concurrent requests on
    different domains never corrupt each other's trees. *)

type span = private {
  id : int;  (** allocation index; [parent < id] always holds *)
  parent : int;  (** [-1] for a root span *)
  name : string;
  start_ms : float;
  mutable dur_ms : float;  (** [nan] while open, [>= 0] once closed *)
  mutable fields : (string * Event.value) list;
}

type t

val derive_id : seed:int -> request:int -> int64
(** Trace id for request [request] of a run seeded with [seed]
    (SplitMix64 stream derivation — stable across replays). *)

val id_hex : int64 -> string
(** 16-digit lowercase hex rendering of a trace id. *)

val create : ?now:(unit -> float) -> trace_id:int64 -> unit -> t
(** [now] supplies timestamps in milliseconds; defaults to the
    telemetry wall clock.  Pass the serve clock for determinism. *)

val trace_id : t -> int64
val n_spans : t -> int

val open_span : t -> ?fields:(string * Event.value) list -> string -> span
val close_span : t -> span -> unit
(** Closing a span also closes any still-open descendants, so the
    recorded tree is always total.  Idempotent. *)

val with_span :
  t -> ?fields:(string * Event.value) list -> string -> (unit -> 'a) -> 'a

val annotate : span -> (string * Event.value) list -> unit

val event : t -> ?fields:(string * Event.value) list -> string -> unit
(** Zero-duration span: a point event in causal position. *)

val spans : t -> span list
(** In causal (allocation) order. *)

(** {2 Ambient context} *)

val with_current : t -> (unit -> 'a) -> 'a
(** Install [t] as the current domain's ambient trace for the call. *)

val current : unit -> t option

val in_span :
  ?fields:(string * Event.value) list -> string -> (unit -> 'a) -> 'a
(** Span on the ambient trace; plain call when no trace is installed. *)

val mark : ?fields:(string * Event.value) list -> string -> unit
(** Point event on the ambient trace; no-op when none is installed. *)

val annotate_current : (string * Event.value) list -> unit
(** Add fields to the innermost open span of the ambient trace. *)

(** {2 Export} *)

val span_json : span -> Telemetry.Export.json
val to_json : t -> Telemetry.Export.json

val digest : t -> int64
(** Structural digest over ids, names, timestamps, and fields.  Equal
    digests for bit-identical traces; used by replay verification. *)
