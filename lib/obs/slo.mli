(** Rolling-window SLO tracker with error-budget burn rates.

    Tracks two objectives over served traffic: a latency objective
    (fraction of responses under [latency_threshold_ms] must stay at or
    above [latency_target]) and a quality objective (fraction of
    full-fidelity answers — served with a healthy certificate, neither
    degraded nor shed — must stay at or above [quality_target]).

    Burn rate is the window error rate divided by the error budget the
    target allows ([1 - target]): burn 1.0 consumes budget exactly as
    fast as the objective grants it.  Budget remaining is cumulative
    over the whole run, clamped to [0, 1]. *)

type config = {
  window : int;  (** observations in the rolling window *)
  latency_threshold_ms : float;
  latency_target : float;  (** e.g. [0.9] = 90% under threshold *)
  quality_target : float;  (** e.g. [0.6] = 60% full-fidelity *)
}

val default : config

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on a non-positive window. *)

val config : t -> config

val observe : t -> latency_ms:float -> good_quality:bool -> unit

type snapshot = {
  total : int;  (** cumulative observations *)
  window_n : int;  (** live observations in the window *)
  latency_good : int;  (** cumulative under-threshold count *)
  quality_good : int;  (** cumulative full-fidelity count *)
  latency_compliance : float;  (** window fraction; [1.] when empty *)
  quality_compliance : float;
  latency_burn : float;
  quality_burn : float;
  latency_budget : float;  (** cumulative budget remaining, in [0,1] *)
  quality_budget : float;
}

val snapshot : t -> snapshot
val snapshot_json : snapshot -> Telemetry.Export.json
val describe : t -> string
