(* Pull-style metrics exposition.

   A snapshot is a flat list of metrics — counters, gauges, and
   histogram summaries — assembled by whoever owns the state (the serve
   engine unifies its stats record, breaker/cache/queue gauges, SLO
   snapshot, and latency histograms into one list).  Two renderers:
   Prometheus text format (metric names sanitized to the [a-zA-Z0-9_:]
   alphabet, summaries as quantile-labelled samples) and the repo's
   usual compact JSON. *)

type metric =
  | Counter of { name : string; help : string; value : float }
  | Gauge of { name : string; help : string; value : float }
  | Summary of { name : string; help : string; hist : Histogram.t }

let name_of = function
  | Counter { name; _ } | Gauge { name; _ } | Summary { name; _ } -> name

let find metrics name = List.find_opt (fun m -> name_of m = name) metrics

(* Prometheus metric names allow [a-zA-Z0-9_:]; dotted telemetry names
   become underscore-separated, anything else degrades to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_num v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus metrics =
  let buf = Buffer.create 1024 in
  let header name help kind =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun m ->
      match m with
      | Counter { name; help; value } ->
          let name = sanitize name in
          header name help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" name (prom_num value))
      | Gauge { name; help; value } ->
          let name = sanitize name in
          header name help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" name (prom_num value))
      | Summary { name; help; hist } ->
          let name = sanitize name in
          header name help "summary";
          List.iter
            (fun q ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name
                   (prom_num q)
                   (prom_num (Histogram.percentile hist (q *. 100.)))))
            [ 0.5; 0.9; 0.99 ];
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (prom_num (Histogram.sum hist)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" name (Histogram.count hist)))
    metrics;
  Buffer.contents buf

let metric_json m =
  let open Telemetry.Export in
  match m with
  | Counter { name; help; value } ->
      Obj
        [
          ("name", Str name);
          ("type", Str "counter");
          ("help", Str help);
          ("value", Num value);
        ]
  | Gauge { name; help; value } ->
      Obj
        [
          ("name", Str name);
          ("type", Str "gauge");
          ("help", Str help);
          ("value", Num value);
        ]
  | Summary { name; help; hist } ->
      Obj
        [
          ("name", Str name);
          ("type", Str "summary");
          ("help", Str help);
          ("count", Num (float_of_int (Histogram.count hist)));
          ("p50", Num (Histogram.p50 hist));
          ("p90", Num (Histogram.p90 hist));
          ("p99", Num (Histogram.p99 hist));
          ("max", Num (Histogram.max_value hist));
        ]

let to_json metrics = Telemetry.Export.Arr (List.map metric_json metrics)

(* Global telemetry counters as exposition metrics, so a snapshot can
   merge engine-owned state with the process-wide counter registry. *)
let of_telemetry () =
  List.map
    (fun (name, v) ->
      Counter
        { name; help = "telemetry counter"; value = float_of_int v })
    (Telemetry.Counter.snapshot ())
