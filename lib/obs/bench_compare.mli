(** Performance-regression gate over two [bench --profile] JSON reports.

    Compares per-phase [wall_ms] using
    [ratio = (current + min_ms) / (baseline + min_ms)]: the additive
    floor (default 0.5 ms) absorbs scheduler noise on sub-millisecond
    phases, while real phases are governed by the raw ratio against the
    multiplicative [threshold] (default 3x — generous on purpose, the
    gate exists to catch order-of-magnitude slips, not 10% drift).

    A phase present in the baseline but absent from the current report
    counts as a regression; phases only present in the current report
    are listed as ["new"] and never fail. *)

type phase = { name : string; wall_ms : float }

type verdict = {
  name : string;
  baseline_ms : float option;
  current_ms : float option;
  ratio : float;
  regressed : bool;
}

exception Malformed of string

val phases_of_report : Telemetry.Export.json -> phase list
(** Extract [{name; wall_ms}] from a parsed report.
    Raises {!Malformed} when the shape is wrong. *)

val compare_reports :
  ?threshold:float ->
  ?min_ms:float ->
  baseline:Telemetry.Export.json ->
  current:Telemetry.Export.json ->
  unit ->
  verdict list
(** One verdict per baseline phase (in baseline order) followed by the
    current-only phases.  Raises {!Malformed} on bad reports and
    [Invalid_argument] on non-positive [threshold] / negative [min_ms]. *)

val ok : verdict list -> bool
val describe_verdict : verdict -> string
val to_text : ?threshold:float -> verdict list -> string

(** {2 The speedup contract}

    The profile report's [speedup] object records the tuned-vs-serial
    wall ratio per kernel (plus the lambda-path algorithmic ratio).
    The autotuner's promise is that tuned dispatch is never slower
    than serial, so these are gated much harder than wall times: every
    entry must stay at or above the contract [floor] (default 0.95 —
    the 1.0x promise with a 5% measurement-noise allowance), and must
    not collapse below [slack] (default 0.5) times its committed
    baseline.  An entry present in the baseline but missing from the
    current report fails; new entries are gated only by the floor. *)

type speedup_verdict = {
  kernel : string;
  baseline_x : float option;
  current_x : float option;
  speedup_regressed : bool;
  reason : string;  (** "" when ok *)
}

val speedups_of_report : Telemetry.Export.json -> (string * float) list
(** The [(kernel, ratio)] pairs of the report's [speedup] object; [[]]
    when the report has none.  Raises {!Malformed} when an entry is not
    a finite non-negative number. *)

val compare_speedups :
  ?floor:float ->
  ?slack:float ->
  baseline:Telemetry.Export.json ->
  current:Telemetry.Export.json ->
  unit ->
  speedup_verdict list
(** One verdict per baseline entry (in baseline order) followed by the
    current-only entries.  Raises {!Malformed} on bad reports and
    [Invalid_argument] on a negative [floor] or [slack] outside
    [0, 1]. *)

val speedups_ok : speedup_verdict list -> bool
val describe_speedup : speedup_verdict -> string
val speedups_to_text : ?floor:float -> speedup_verdict list -> string
