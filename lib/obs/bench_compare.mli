(** Performance-regression gate over two [bench --profile] JSON reports.

    Compares per-phase [wall_ms] using
    [ratio = (current + min_ms) / (baseline + min_ms)]: the additive
    floor (default 0.5 ms) absorbs scheduler noise on sub-millisecond
    phases, while real phases are governed by the raw ratio against the
    multiplicative [threshold] (default 3x — generous on purpose, the
    gate exists to catch order-of-magnitude slips, not 10% drift).

    A phase present in the baseline but absent from the current report
    counts as a regression; phases only present in the current report
    are listed as ["new"] and never fail. *)

type phase = { name : string; wall_ms : float }

type verdict = {
  name : string;
  baseline_ms : float option;
  current_ms : float option;
  ratio : float;
  regressed : bool;
}

exception Malformed of string

val phases_of_report : Telemetry.Export.json -> phase list
(** Extract [{name; wall_ms}] from a parsed report.
    Raises {!Malformed} when the shape is wrong. *)

val compare_reports :
  ?threshold:float ->
  ?min_ms:float ->
  baseline:Telemetry.Export.json ->
  current:Telemetry.Export.json ->
  unit ->
  verdict list
(** One verdict per baseline phase (in baseline order) followed by the
    current-only phases.  Raises {!Malformed} on bad reports and
    [Invalid_argument] on non-positive [threshold] / negative [min_ms]. *)

val ok : verdict list -> bool
val describe_verdict : verdict -> string
val to_text : ?threshold:float -> verdict list -> string
