(** Log-bucketed value/latency histograms with percentile export.

    Buckets grow geometrically (ratio 2^¼ ≈ 1.19), so percentile
    estimates carry ~19% relative error regardless of the value range,
    and storage is proportional to the number of occupied buckets, not
    the range.

    Besides standalone histograms ({!create}/{!add}), a global named
    table ({!observe}) mirrors the telemetry counter style: gated on
    [Telemetry.Registry.enabled], cleared by [Registry.reset].
    {!attach_to_spans} subscribes the table to span completions so every
    span path accumulates a duration histogram in milliseconds — that is
    how [bench --profile] and [repro --profile] report p50/p90/p99. *)

type t

val create : unit -> t
val add : t -> float -> unit
(** Record a value; non-finite values are ignored, values [<= 0] land in
    a dedicated zero bucket. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]: rank-interpolated within the
    selected bucket after clamping the bucket span to the observed
    [min, max] range — so a histogram whose values all share one bucket
    interpolates between the observed extremes (exact when all values
    are equal) instead of reporting the bucket's upper bound.
    [nan] is the documented sentinel for an empty histogram;
    [p <= 0] / [p >= 100] report the observed min / max. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

val observe : string -> float -> unit
(** Record into the global named histogram (no-op while telemetry is
    disabled). *)

val find : string -> t option
val snapshot : unit -> (string * t) list
(** All named histograms, sorted by name. *)

val attach_to_spans : unit -> unit
(** Subscribe the named table to [Telemetry.Span.on_complete]: each
    completed span records its duration (ms) under its path.
    Idempotent; the listener is permanent but inert while telemetry is
    disabled. *)

val quantiles_json : unit -> Telemetry.Export.json
(** [{path: {count, p50, p90, p99, max}}] for every named histogram. *)

val to_text : unit -> string
(** Human-readable table; empty string when nothing was recorded. *)
