(* Flight recorder: a bounded ring buffer of structured events.

   Emission is gated on [Telemetry.Registry.enabled] (one branch when
   off, like every other probe) and the buffer is cleared by
   [Registry.reset], so the recorder composes with the existing
   enable/reset discipline.  When more events are emitted than the
   buffer holds, the oldest are overwritten — the recorder keeps the
   most recent window, which is what a post-mortem wants. *)

type severity = Debug | Info | Warning | Error

type value = Bool of bool | Int of int | Float of float | Str of string

type t = {
  seq : int;  (* 0-based emission index since the last clear *)
  time_ns : float;
  severity : severity;
  name : string;
  fields : (string * value) list;
}

let default_capacity = 512
let cap = ref default_capacity
let buffer : t option array ref = ref (Array.make default_capacity None)

(* total events emitted since the last clear (>= capacity once wrapped) *)
let emitted_count = ref 0

let clear () =
  Array.fill !buffer 0 (Array.length !buffer) None;
  emitted_count := 0

let () = Telemetry.Registry.on_reset clear

let capacity () = !cap

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Event.set_capacity: capacity must be positive";
  cap := n;
  buffer := Array.make n None;
  emitted_count := 0

let emit ?(severity = Info) name fields =
  if !Telemetry.Registry.enabled then begin
    let e =
      {
        seq = !emitted_count;
        time_ns = Telemetry.Span.now_ns ();
        severity;
        name;
        fields;
      }
    in
    !buffer.(!emitted_count mod !cap) <- Some e;
    incr emitted_count
  end

let emitted () = !emitted_count
let dropped () = max 0 (!emitted_count - !cap)

let recent () =
  let total = !emitted_count in
  let start = max 0 (total - !cap) in
  List.init (total - start) (fun i ->
      match !buffer.((start + i) mod !cap) with
      | Some e -> e
      | None -> assert false)

let last () =
  if !emitted_count = 0 then None
  else !buffer.((!emitted_count - 1) mod !cap)

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let value_text = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float v -> Printf.sprintf "%.6g" v
  | Str s -> s

let describe e =
  let fields =
    match e.fields with
    | [] -> ""
    | fs ->
        " "
        ^ String.concat " "
            (List.map (fun (k, v) -> k ^ "=" ^ value_text v) fs)
  in
  Printf.sprintf "#%d [%s] %s%s" e.seq (severity_name e.severity) e.name fields

let field e key = List.assoc_opt key e.fields

let value_json = function
  | Bool b -> Telemetry.Export.Bool b
  | Int i -> Telemetry.Export.Num (float_of_int i)
  | Float v -> Telemetry.Export.Num v
  | Str s -> Telemetry.Export.Str s

let to_json_value e =
  Telemetry.Export.Obj
    [
      ("seq", Telemetry.Export.Num (float_of_int e.seq));
      ("time_ns", Telemetry.Export.Num e.time_ns);
      ("severity", Telemetry.Export.Str (severity_name e.severity));
      ("name", Telemetry.Export.Str e.name);
      ( "fields",
        Telemetry.Export.Obj
          (List.map (fun (k, v) -> (k, value_json v)) e.fields) );
    ]

let events_json () =
  Telemetry.Export.Arr (List.map to_json_value (recent ()))
