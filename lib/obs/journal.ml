(* Per-request span journal.

   One JSONL line per finished request: the trace id, the response
   disposition (status / latency / queue wait / attempts / cache hit),
   and the full span tree of its {!Trace_ctx}.  The journal keeps a
   running SplitMix64 digest over the exact line bytes — two runs that
   journal identical lines in identical order have equal digests, which
   is how soak replay proves the observability pipeline itself is
   deterministic — and a running aggregate (status counts + a latency
   histogram built with the same {!Histogram} implementation the engine
   uses) so journal figures reconcile exactly with [Engine.stats].

   Recording is mutex-protected: multiple domains may append to one
   journal concurrently and every line stays intact (the hammer test
   in test_obs_pipeline exercises this). *)

type t = {
  mutex : Mutex.t;
  mutable lines_rev : string list;
  mutable n : int;
  mutable digest : int64;
  mutable served : int;
  mutable degraded : int;
  mutable shed : int;
  latency : Histogram.t;
}

let create () =
  {
    mutex = Mutex.create ();
    lines_rev = [];
    n = 0;
    digest = 0x0b5e9a1ceL;
    served = 0;
    degraded = 0;
    shed = 0;
    latency = Histogram.create ();
  }

let digest_line h line =
  let h = ref (Prng.Splitmix64.mix (Int64.add h 0x9e3779b97f4a7c15L)) in
  String.iter
    (fun c ->
      h :=
        Prng.Splitmix64.mix
          (Int64.logxor
             (Int64.mul !h 0x100000001b3L)
             (Int64.of_int (Char.code c))))
    line;
  !h

let line_json ~request ~status ~reason ~latency_ms ~queue_ms ~attempts
    ~cache_hit ctx =
  let open Telemetry.Export in
  let base =
    [
      ("trace", Str (Trace_ctx.id_hex (Trace_ctx.trace_id ctx)));
      ("request", Num (float_of_int request));
      ("status", Str status);
    ]
  in
  let reason_field =
    match reason with None -> [] | Some r -> [ ("reason", Str r) ]
  in
  let rest =
    [
      ("latency_ms", Num latency_ms);
      ("queue_ms", Num queue_ms);
      ("attempts", Num (float_of_int attempts));
      ("cache_hit", Bool cache_hit);
      ( "spans",
        Arr (List.map Trace_ctx.span_json (Trace_ctx.spans ctx)) );
    ]
  in
  Obj (base @ reason_field @ rest)

let record t ~request ~status ?reason ~latency_ms ~queue_ms ~attempts
    ~cache_hit ctx =
  let line =
    Telemetry.Export.render
      (line_json ~request ~status ~reason ~latency_ms ~queue_ms ~attempts
         ~cache_hit ctx)
  in
  Mutex.lock t.mutex;
  t.lines_rev <- line :: t.lines_rev;
  t.n <- t.n + 1;
  t.digest <- digest_line t.digest line;
  (match status with
  | "served" -> t.served <- t.served + 1
  | "degraded" -> t.degraded <- t.degraded + 1
  | "shed" -> t.shed <- t.shed + 1
  | _ -> ());
  Histogram.add t.latency latency_ms;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = t.n in
  Mutex.unlock t.mutex;
  n

let digest t =
  Mutex.lock t.mutex;
  let d = t.digest in
  Mutex.unlock t.mutex;
  d

let lines t =
  Mutex.lock t.mutex;
  let ls = List.rev t.lines_rev in
  Mutex.unlock t.mutex;
  ls

type aggregate = {
  requests : int;
  served : int;
  degraded : int;
  shed : int;
  latency_p50 : float;
  latency_p99 : float;
  latency_max : float;
}

let aggregate t =
  Mutex.lock t.mutex;
  let a =
    {
      requests = t.n;
      served = t.served;
      degraded = t.degraded;
      shed = t.shed;
      latency_p50 = Histogram.p50 t.latency;
      latency_p99 = Histogram.p99 t.latency;
      latency_max = Histogram.max_value t.latency;
    }
  in
  Mutex.unlock t.mutex;
  a

let to_text t = String.concat "" (List.map (fun l -> l ^ "\n") (lines t))

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_text t))

(* ---------------- schema validation ---------------- *)

let statuses = [ "served"; "degraded"; "shed" ]

let validate_line line =
  let open Telemetry.Export in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let field name conv j =
    match Option.bind (member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  match parse line with
  | exception Parse_error msg -> Error ("not JSON: " ^ msg)
  | j ->
      let* trace = field "trace" to_str j in
      let* _request = field "request" to_int j in
      let* status = field "status" to_str j in
      let* latency = field "latency_ms" to_float j in
      let* queue = field "queue_ms" to_float j in
      let* attempts = field "attempts" to_int j in
      let* _cache_hit = field "cache_hit" to_bool j in
      let* () =
        if String.length trace = 16 then Ok ()
        else Error "trace id must be 16 hex digits"
      in
      let* () =
        if List.mem status statuses then Ok ()
        else Error (Printf.sprintf "unknown status %S" status)
      in
      let* () =
        if latency >= 0. && queue >= 0. then Ok ()
        else Error "negative latency_ms or queue_ms"
      in
      let* () =
        if attempts >= 0 then Ok () else Error "negative attempts"
      in
      let* spans =
        match member "spans" j with
        | Some (Arr spans) -> Ok spans
        | _ -> Error "missing or mistyped field \"spans\""
      in
      let* () =
        if spans <> [] then Ok () else Error "empty span list"
      in
      let check_span idx s =
        let* id = field "id" to_int s in
        let* parent = field "parent" to_int s in
        let* name = field "name" to_str s in
        let* dur = field "dur_ms" to_float s in
        let* _start = field "start_ms" to_float s in
        let* () =
          if id = idx then Ok ()
          else Error (Printf.sprintf "span %d: id %d out of order" idx id)
        in
        let* () =
          if (idx = 0 && parent = -1) || (idx > 0 && parent >= -1 && parent < id)
          then Ok ()
          else
            Error
              (Printf.sprintf "span %d: acausal parent %d" idx parent)
        in
        let* () =
          if name <> "" then Ok ()
          else Error (Printf.sprintf "span %d: empty name" idx)
        in
        if dur >= 0. then Ok ()
        else Error (Printf.sprintf "span %d: negative dur_ms" idx)
      in
      let rec walk idx = function
        | [] -> Ok ()
        | s :: rest ->
            let* () = check_span idx s in
            walk (idx + 1) rest
      in
      walk 0 spans

let validate_text text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno count = function
    | [] -> Ok count
    | [ "" ] -> Ok count  (* trailing newline *)
    | line :: rest -> (
        match validate_line line with
        | Ok () -> go (lineno + 1) (count + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 0 lines

let validate_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_text text

let aggregate_of_text text =
  let agg = create () in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then
           let open Telemetry.Export in
           match parse line with
           | exception Parse_error _ -> ()
           | j ->
               let status =
                 Option.value ~default:""
                   (Option.bind (member "status" j) to_str)
               in
               let latency =
                 Option.value ~default:0.
                   (Option.bind (member "latency_ms" j) to_float)
               in
               Mutex.lock agg.mutex;
               agg.n <- agg.n + 1;
               (match status with
               | "served" -> agg.served <- agg.served + 1
               | "degraded" -> agg.degraded <- agg.degraded + 1
               | "shed" -> agg.shed <- agg.shed + 1
               | _ -> ());
               Histogram.add agg.latency latency;
               Mutex.unlock agg.mutex);
  aggregate agg
