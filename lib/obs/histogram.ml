(* Log-bucketed histograms.

   Bucket [i] covers [gamma^i, gamma^{i+1}) with gamma = 2^(1/4), i.e.
   ~19% relative width — plenty for latency percentiles — while keeping
   the bucket table tiny (a sparse Hashtbl keyed by bucket index, so the
   value range costs nothing).  Non-positive values (clamped span
   durations) land in a dedicated zero bucket. *)

let gamma = 2. ** 0.25
let log_gamma = log gamma

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable zeros : int;
  buckets : (int, int ref) Hashtbl.t;
}

let create () =
  {
    count = 0;
    sum = 0.;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
    zeros = 0;
    buckets = Hashtbl.create 16;
  }

let bucket_of v = int_of_float (Float.floor (log v /. log_gamma))

let add t v =
  if Float.is_finite v then begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    if v <= 0. then t.zeros <- t.zeros + 1
    else
      let i = bucket_of v in
      match Hashtbl.find_opt t.buckets i with
      | Some r -> incr r
      | None -> Hashtbl.add t.buckets i (ref 1)
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then Float.nan else t.min_v
let max_value t = if t.count = 0 then Float.nan else t.max_v

(* Percentile by walking buckets in index order.  The returned value is
   rank-interpolated inside the selected bucket: the bucket's span is
   first clamped to the observed [min, max] (so a bucket holding every
   observation of a single value reports that value exactly, not a
   geometric midpoint or the bucket's upper bound), then the target
   rank's position among the bucket's k observations picks a point on
   that span.  An empty histogram reports the nan sentinel. *)
let percentile t p =
  if t.count = 0 then Float.nan
  else if p <= 0. then min_value t
  else if p >= 100. then max_value t
  else begin
    let target =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100. *. float_of_int t.count)))
    in
    if target <= t.zeros then Stdlib.min 0. t.min_v
    else begin
      let sorted =
        Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.buckets []
        |> List.sort compare
      in
      let rec walk cum = function
        | [] -> t.max_v
        | (i, k) :: rest ->
            if cum + k >= target then begin
              let lo = Float.max t.min_v (gamma ** float_of_int i) in
              let hi = Float.min t.max_v (gamma ** float_of_int (i + 1)) in
              let frac =
                if k = 1 then 0.5
                else float_of_int (target - cum - 1) /. float_of_int (k - 1)
              in
              lo +. (frac *. (hi -. lo))
            end
            else walk (cum + k) rest
      in
      walk t.zeros sorted
    end
  end

let p50 t = percentile t 50.
let p90 t = percentile t 90.
let p99 t = percentile t 99.

(* ---------------- global named histograms ---------------- *)

let table : (string, t) Hashtbl.t = Hashtbl.create 16
let () = Telemetry.Registry.on_reset (fun () -> Hashtbl.reset table)

let observe name v =
  if !Telemetry.Registry.enabled then begin
    let h =
      match Hashtbl.find_opt table name with
      | Some h -> h
      | None ->
          let h = create () in
          Hashtbl.add table name h;
          h
    in
    add h v
  end

let find name = Hashtbl.find_opt table name

let snapshot () =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) table []
  |> List.sort compare

(* Span latencies: one histogram per span path, values in milliseconds.
   The listener is installed once and is itself gated by the capture
   flag of [observe] (enabled registry), so attaching is idempotent and
   free when telemetry is off. *)
let attached = ref false

let attach_to_spans () =
  if not !attached then begin
    attached := true;
    Telemetry.Span.on_complete (fun path _start_ns dur_ns ->
        observe path (dur_ns /. 1e6))
  end

let quantiles_json () =
  Telemetry.Export.Obj
    (List.map
       (fun (name, h) ->
         ( name,
           Telemetry.Export.Obj
             [
               ("count", Telemetry.Export.Num (float_of_int h.count));
               ("p50", Telemetry.Export.Num (p50 h));
               ("p90", Telemetry.Export.Num (p90 h));
               ("p99", Telemetry.Export.Num (p99 h));
               ("max", Telemetry.Export.Num (max_value h));
             ] ))
       (snapshot ()))

let to_text () =
  match snapshot () with
  | [] -> ""
  | hs ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        "histograms (count | p50 | p90 | p99 | max, span values in ms):\n";
      List.iter
        (fun (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-36s %6d | %9.3f | %9.3f | %9.3f | %9.3f\n"
               name h.count (p50 h) (p90 h) (p99 h) (max_value h)))
        hs;
      Buffer.contents buf
