(** Flight recorder: bounded ring buffer of structured events.

    Solver layers emit cheap structured events — fallback escalations,
    CG breakdowns, imputations, scan diagnostics, health certificates —
    into one global sink.  Emission is a single branch while telemetry
    is disabled; the buffer holds the most recent {!capacity} events
    (older ones are overwritten) and is cleared by
    [Telemetry.Registry.reset].

    Event schema (also the JSON shape from {!to_json_value}):
    [{seq; time_ns; severity; name; fields}] where [fields] is an
    ordered association list of typed key/value pairs. *)

type severity = Debug | Info | Warning | Error
type value = Bool of bool | Int of int | Float of float | Str of string

type t = {
  seq : int;  (** 0-based emission index since the last reset *)
  time_ns : float;  (** wall-clock timestamp from the span clock *)
  severity : severity;
  name : string;  (** dotted event class, e.g. ["robust.escalate"] *)
  fields : (string * value) list;
}

val emit : ?severity:severity -> string -> (string * value) list -> unit
(** Record an event (no-op while telemetry is disabled).
    [severity] defaults to [Info]. *)

val recent : unit -> t list
(** Buffered events, oldest first (at most {!capacity} of them). *)

val last : unit -> t option
val emitted : unit -> int
(** Total events emitted since the last reset, including overwritten ones. *)

val dropped : unit -> int
(** How many of the emitted events have been overwritten. *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Resize the ring buffer (clearing it).
    Raises [Invalid_argument] on a non-positive capacity. *)

val field : t -> string -> value option
val severity_name : severity -> string
val value_text : value -> string
val describe : t -> string
(** One-line rendering: ["#seq [severity] name k=v k=v"]. *)

val value_json : value -> Telemetry.Export.json
val to_json_value : t -> Telemetry.Export.json
val events_json : unit -> Telemetry.Export.json
(** All buffered events as a JSON array, oldest first. *)
