(* Chrome trace-event exporter.

   Captures span completions (via [Telemetry.Span.on_complete]) while a
   capture is active and renders them as "complete" ("ph":"X") events in
   the Trace Event Format understood by chrome://tracing and Perfetto:
   one event per span execution with microsecond timestamp and duration.

   The capture buffer is intentionally NOT hooked to [Registry.reset]:
   profiling drivers reset the registry between phases, and the trace
   should keep accumulating across those resets until [stop]. *)

type event = { name : string; start_ns : float; dur_ns : float }

let max_events = 100_000
let capturing = ref false
let buf : event list ref = ref [] (* newest first *)
let n = ref 0
let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Telemetry.Span.on_complete (fun name start_ns dur_ns ->
        if !capturing && !n < max_events then begin
          buf := { name; start_ns; dur_ns } :: !buf;
          incr n
        end)
  end

let start () =
  install ();
  buf := [];
  n := 0;
  capturing := true

let stop () = capturing := false
let n_events () = !n
let events () = List.rev !buf

let event_json e =
  Telemetry.Export.Obj
    [
      ("name", Telemetry.Export.Str e.name);
      ("cat", Telemetry.Export.Str "span");
      ("ph", Telemetry.Export.Str "X");
      ("ts", Telemetry.Export.Num (e.start_ns /. 1e3));
      ("dur", Telemetry.Export.Num (Float.max 0. e.dur_ns /. 1e3));
      ("pid", Telemetry.Export.Num 1.);
      ("tid", Telemetry.Export.Num 1.);
    ]

let to_json_value () =
  Telemetry.Export.Obj
    [
      ( "traceEvents",
        Telemetry.Export.Arr (List.map event_json (events ())) );
      ("displayTimeUnit", Telemetry.Export.Str "ms");
    ]

let to_json () = Telemetry.Export.render (to_json_value ())

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ());
      output_char oc '\n')

(* Structural validation: used by tests and the `compare --check-trace`
   smoke target.  A valid trace has a traceEvents array in which every
   entry is a complete ("X") event with a string name and numeric
   ts/dur, and there is at least one such entry. *)
let validate json =
  let is_num j = match Telemetry.Export.to_float j with Some _ -> None | None -> Some "non-numeric" in
  let check_event j =
    let open Telemetry.Export in
    match j with
    | Obj _ -> (
        match (member "ph" j, member "name" j, member "ts" j, member "dur" j) with
        | Some (Str "X"), Some (Str _), Some ts, Some dur -> (
            match (is_num ts, is_num dur) with
            | None, None -> None
            | _ -> Some "event with non-numeric ts/dur")
        | Some (Str ph), _, _, _ when ph <> "X" ->
            Some (Printf.sprintf "unsupported event phase %S" ph)
        | _ -> Some "event missing ph/name/ts/dur")
    | _ -> Some "traceEvents entry is not an object"
  in
  match Telemetry.Export.member "traceEvents" json with
  | Some (Telemetry.Export.Arr evs) -> (
      match List.filter_map check_event evs with
      | err :: _ -> Error err
      | [] ->
          let k = List.length evs in
          if k >= 1 then Ok k
          else Error "trace contains no complete span events")
  | Some _ -> Error "traceEvents is not an array"
  | None -> Error "missing traceEvents field"
