(** Pull-style metrics exposition: a flat metric snapshot rendered to
    Prometheus text format or JSON.

    The snapshot is assembled by whoever owns the state (the serve
    engine merges its stats record, breaker/cache/queue gauges, SLO
    state, and latency histograms); this module only names, types, and
    renders it. *)

type metric =
  | Counter of { name : string; help : string; value : float }
  | Gauge of { name : string; help : string; value : float }
  | Summary of { name : string; help : string; hist : Histogram.t }

val name_of : metric -> string
val find : metric list -> string -> metric option

val sanitize : string -> string
(** Map a dotted telemetry name into the Prometheus [a-zA-Z0-9_:]
    alphabet (anything else becomes ['_']). *)

val to_prometheus : metric list -> string
(** Prometheus text format: [# HELP] / [# TYPE] headers, counter and
    gauge samples, summaries as quantile-labelled samples plus
    [_sum] / [_count]. *)

val to_json : metric list -> Telemetry.Export.json

val of_telemetry : unit -> metric list
(** Every global telemetry counter as a [Counter] metric. *)
