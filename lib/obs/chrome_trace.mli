(** Chrome trace-event JSON export of the span tree.

    While a capture is active ({!start} … {!stop}), every completed
    telemetry span is buffered and can be rendered as a Trace Event
    Format document — [{"traceEvents": [{"ph":"X", "name", "ts", "dur",
    "pid", "tid"}, …], "displayTimeUnit":"ms"}] with timestamps and
    durations in microseconds — which loads directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    The buffer survives [Telemetry.Registry.reset] on purpose (profiling
    drivers reset between phases mid-capture) and is bounded at 100k
    events.  Spans only complete while telemetry is enabled, so a
    capture with telemetry disabled stays empty. *)

type event = { name : string; start_ns : float; dur_ns : float }

val start : unit -> unit
(** Begin capturing span completions (clears any previous capture). *)

val stop : unit -> unit
val n_events : unit -> int
val events : unit -> event list
(** Captured events, oldest first. *)

val to_json_value : unit -> Telemetry.Export.json
val to_json : unit -> string
val write : string -> unit
(** Render the current capture to a file. *)

val validate : Telemetry.Export.json -> (int, string) result
(** Structural check of a parsed trace document: [Ok k] when it holds
    [k >= 1] well-formed complete ("X") span events, [Error reason]
    otherwise.  Used by the [--trace-out] smoke test. *)
