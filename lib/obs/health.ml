(* Per-solve numerical-health certificates.

   A certificate is computed from the *actual* returned solution: the
   residual is ‖b − A x‖₂ recomputed with a fresh application of the
   operator, never the CG recurrence value, so it catches recurrence
   drift and fallback rungs that silently returned garbage.  Condition
   numbers are estimated by power iteration on A (largest eigenvalue)
   and on A⁻¹ through whatever solver/factorisation the caller already
   has (largest eigenvalue of the inverse = 1/smallest of A).

   This module deliberately depends only on [Linalg] closures — callers
   pass [apply : Vec.t -> Vec.t] — so [sparse], [robust], and [gssl]
   can all depend on it without dependency cycles. *)

module Vec = Linalg.Vec

type convergence = {
  iterations : int;
  final_residual : float;
  best_residual : float;
  stagnated : bool;
}

type t = {
  system : string;
  dim : int;
  rung : string option;
  true_residual : float;
  rel_residual : float;
  cond_estimate : float option;
  convergence : convergence option;
}

(* A solve "stagnated" when it gave up before converging, or when the
   final residual sits far above the best residual it ever reached
   (the iteration wandered away from its own best point). *)
let convergence ~iterations ~final_residual ~best_residual ~converged =
  let stagnated =
    (not converged)
    || (Float.is_finite best_residual
       && final_residual > 10. *. best_residual
       && final_residual > 0.)
  in
  { iterations; final_residual; best_residual; stagnated }

let certify ~system ?rung ?cond ?convergence ~apply ~b x =
  if Vec.dim x <> Vec.dim b then
    invalid_arg "Obs.Health.certify: solution/rhs dimension mismatch";
  let true_residual = Vec.norm2 (Vec.sub b (apply x)) in
  let b_norm = Vec.norm2 b in
  let rel_residual =
    if b_norm > 0. then true_residual /. b_norm else true_residual
  in
  {
    system;
    dim = Vec.dim b;
    rung;
    true_residual;
    rel_residual;
    cond_estimate = cond;
    convergence;
  }

let healthy ?(rel_tol = 1e-6) c =
  Float.is_finite c.true_residual
  && c.rel_residual <= rel_tol
  && (match c.convergence with None -> true | Some cv -> not cv.stagnated)

(* Largest singular value of [step] by power iteration with a fixed
   deterministic start vector (alternating signs, so it has mass on
   both ends of the spectrum for the usual graph operators). *)
let power_norm ~iterations ~dim step =
  if dim = 0 then 0.
  else begin
    let x0 = Vec.init dim (fun i -> if i land 1 = 0 then 1. else -1.) in
    let x = ref (Vec.scale (1. /. Vec.norm2 x0) x0) in
    let lambda = ref 0. in
    (try
       for _ = 1 to iterations do
         let y = step !x in
         let ny = Vec.norm2 y in
         if Float.is_finite ny && ny > 0. then begin
           lambda := ny;
           x := Vec.scale (1. /. ny) y
         end
         else raise Exit
       done
     with Exit -> ());
    !lambda
  end

let cond_estimate ?(iterations = 12) ~dim ~apply ~solve () =
  if dim = 0 then 1.
  else
    let largest = power_norm ~iterations ~dim apply in
    let inv_largest = power_norm ~iterations ~dim solve in
    if largest > 0. && inv_largest > 0. && Float.is_finite largest
       && Float.is_finite inv_largest
    then largest *. inv_largest
    else Float.infinity

(* ---------------- global certificate log ---------------- *)

(* Newest first; trimmed amortised so [record] stays O(1). *)
let log_cap = 256
let log_ : t list ref = ref []
let log_len = ref 0

let clear () =
  log_ := [];
  log_len := 0

let () = Telemetry.Registry.on_reset clear

let record c =
  log_ := c :: !log_;
  incr log_len;
  if !log_len > 2 * log_cap then begin
    log_ := List.filteri (fun i _ -> i < log_cap) !log_;
    log_len := log_cap
  end;
  Event.emit
    ~severity:(if healthy c then Event.Info else Event.Warning)
    "health.certificate"
    ([
       ("system", Event.Str c.system);
       ("dim", Event.Int c.dim);
       ("true_residual", Event.Float c.true_residual);
       ("rel_residual", Event.Float c.rel_residual);
     ]
    @ (match c.rung with Some r -> [ ("rung", Event.Str r) ] | None -> [])
    @ (match c.cond_estimate with
      | Some k -> [ ("cond_estimate", Event.Float k) ]
      | None -> [])
    @
    match c.convergence with
    | Some cv ->
        [
          ("iterations", Event.Int cv.iterations);
          ("stagnated", Event.Bool cv.stagnated);
        ]
    | None -> [])

let last () = match !log_ with [] -> None | c :: _ -> Some c
let recent () = List.rev !log_

let describe c =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "certificate: %s (dim %d%s)\n" c.system c.dim
       (match c.rung with Some r -> ", rung " ^ r | None -> ""));
  Buffer.add_string b
    (Printf.sprintf "  true residual      %.3e  (relative %.3e)\n"
       c.true_residual c.rel_residual);
  (match c.cond_estimate with
  | Some k -> Buffer.add_string b (Printf.sprintf "  cond estimate      %.3e\n" k)
  | None -> ());
  (match c.convergence with
  | Some cv ->
      Buffer.add_string b
        (Printf.sprintf
           "  cg iterations      %d  (final %.3e, best %.3e)\n  stagnated          %b\n"
           cv.iterations cv.final_residual cv.best_residual cv.stagnated)
  | None -> ());
  Buffer.add_string b (Printf.sprintf "  healthy            %b\n" (healthy c));
  Buffer.contents b
