(** Per-request span journal (JSONL) with a running digest and a
    reconciling aggregate.

    Each finished request appends one JSON line: trace id, status,
    latency/queue/attempt/cache fields, and the full span tree of its
    {!Trace_ctx}.  The journal maintains a SplitMix64 digest over the
    exact line bytes (replaying a seeded trace must reproduce it
    bit-for-bit) and a running aggregate using the same {!Histogram}
    implementation as the serve engine, so journal figures reconcile
    exactly with [Engine.stats].  Recording is mutex-protected and safe
    to call from multiple domains. *)

type t

val create : unit -> t

val record :
  t ->
  request:int ->
  status:string ->
  ?reason:string ->
  latency_ms:float ->
  queue_ms:float ->
  attempts:int ->
  cache_hit:bool ->
  Trace_ctx.t ->
  unit
(** [status] must be one of ["served"], ["degraded"], ["shed"]. *)

val length : t -> int
val digest : t -> int64
val lines : t -> string list
(** In recording order. *)

type aggregate = {
  requests : int;
  served : int;
  degraded : int;
  shed : int;
  latency_p50 : float;
  latency_p99 : float;
  latency_max : float;
}

val aggregate : t -> aggregate
val aggregate_of_text : string -> aggregate

val to_text : t -> string
(** All lines, each terminated by a newline. *)

val write : t -> string -> unit

val validate_line : string -> (unit, string) result
(** Schema check for one journal line: required typed fields, a known
    status, a 16-hex-digit trace id, non-negative times, and a causal
    span tree (ids are allocation order, [parent < id], span 0 is the
    root). *)

val validate_text : string -> (int, string) result
(** Validate a whole journal; [Ok n] is the number of lines checked,
    [Error] carries the first failing line number and reason. *)

val validate_file : string -> (int, string) result
