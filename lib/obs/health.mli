(** Per-solve numerical-health certificates.

    Certificate fields:
    - [system]: which solve produced it, e.g. ["gssl.hard"].
    - [dim]: dimension of the linear system.
    - [rung]: fallback rung that produced the answer, when known.
    - [true_residual]: ‖b − A x‖₂ {e recomputed} by re-applying the
      operator to the returned solution (never the CG recurrence value).
    - [rel_residual]: [true_residual / ‖b‖₂] (or the absolute residual
      when [b = 0]).
    - [cond_estimate]: power-iteration estimate of κ₂(A), when computed.
    - [convergence]: CG convergence-curve summary, when an iterative
      rung ran: iteration count, final vs. best residual, and a
      stagnation flag (set when the solver gave up before converging or
      finished far above its own best residual).

    Certificates are appended to a bounded global log ({!record} /
    {!recent} / {!last}) and mirrored as ["health.certificate"] events
    in the flight recorder.  The log is cleared by
    [Telemetry.Registry.reset].

    All operators are passed as [Vec.t -> Vec.t] closures so this
    module stays below [sparse]/[gssl] in the dependency order. *)

type convergence = {
  iterations : int;
  final_residual : float;
  best_residual : float;
  stagnated : bool;
}

type t = {
  system : string;
  dim : int;
  rung : string option;
  true_residual : float;
  rel_residual : float;
  cond_estimate : float option;
  convergence : convergence option;
}

val convergence :
  iterations:int ->
  final_residual:float ->
  best_residual:float ->
  converged:bool ->
  convergence
(** Build a convergence summary; [stagnated] is derived (not converged,
    or final residual more than 10x the best residual reached). *)

val certify :
  system:string ->
  ?rung:string ->
  ?cond:float ->
  ?convergence:convergence ->
  apply:(Linalg.Vec.t -> Linalg.Vec.t) ->
  b:Linalg.Vec.t ->
  Linalg.Vec.t ->
  t
(** [certify ~system ~apply ~b x] recomputes the true residual of [x]
    for the system [apply ≡ A], [b].  Costs one operator application.
    Raises [Invalid_argument] on dimension mismatch. *)

val healthy : ?rel_tol:float -> t -> bool
(** Finite residual, relative residual within [rel_tol] (default 1e-6),
    and no stagnation. *)

val cond_estimate :
  ?iterations:int ->
  dim:int ->
  apply:(Linalg.Vec.t -> Linalg.Vec.t) ->
  solve:(Linalg.Vec.t -> Linalg.Vec.t) ->
  unit ->
  float
(** κ₂ estimate by power iteration (default 12 steps each) on [apply]
    (largest eigenvalue) and on [solve ≡ A⁻¹·] (reciprocal of the
    smallest).  Returns [infinity] when either estimate degenerates. *)

val record : t -> unit
(** Append to the global certificate log (kept even while telemetry is
    disabled — the caller already opted in via an [~observe] flag) and
    emit a ["health.certificate"] flight-recorder event. *)

val last : unit -> t option
val recent : unit -> t list
(** Logged certificates, oldest first (bounded). *)

val describe : t -> string
(** Multi-line human-readable rendering. *)
