(* Regression gate over two `bench --profile` JSON reports.

   The comparison is per phase on wall_ms with a generous multiplicative
   threshold plus an additive floor: ratio = (cur + min_ms) / (base +
   min_ms).  The floor keeps sub-millisecond phases from tripping the
   gate on scheduler noise while leaving real phases (tens of ms)
   essentially governed by the raw ratio.  A phase present in the
   baseline but missing from the current report is a failure (a silently
   dropped phase must not pass the gate); new phases are reported but
   never fail. *)

type phase = { name : string; wall_ms : float }

type verdict = {
  name : string;
  baseline_ms : float option;
  current_ms : float option;
  ratio : float;
  regressed : bool;
}

exception Malformed of string

let phases_of_report json =
  match Telemetry.Export.member "phases" json with
  | Some (Telemetry.Export.Arr entries) ->
      List.map
        (fun entry ->
          match
            ( Telemetry.Export.member "name" entry,
              Option.bind
                (Telemetry.Export.member "wall_ms" entry)
                Telemetry.Export.to_float )
          with
          | Some (Telemetry.Export.Str name), Some wall_ms ->
              if not (Float.is_finite wall_ms) || wall_ms < 0. then
                raise
                  (Malformed
                     (Printf.sprintf "phase %S has invalid wall_ms" name));
              { name; wall_ms }
          | _ -> raise (Malformed "phase entry missing name/wall_ms"))
        entries
  | Some _ -> raise (Malformed "\"phases\" is not an array")
  | None -> raise (Malformed "report has no \"phases\" field")

let compare_reports ?(threshold = 3.) ?(min_ms = 0.5) ~baseline ~current () =
  if threshold <= 0. then
    invalid_arg "Obs.Bench_compare: threshold must be positive";
  if min_ms < 0. then invalid_arg "Obs.Bench_compare: min_ms must be >= 0";
  let base = phases_of_report baseline in
  let cur = phases_of_report current in
  let find name (ps : phase list) =
    List.find_opt (fun (p : phase) -> p.name = name) ps
  in
  let of_base (b : phase) =
    match find b.name cur with
    | None ->
        {
          name = b.name;
          baseline_ms = Some b.wall_ms;
          current_ms = None;
          ratio = Float.infinity;
          regressed = true;
        }
    | Some c ->
        let ratio = (c.wall_ms +. min_ms) /. (b.wall_ms +. min_ms) in
        {
          name = b.name;
          baseline_ms = Some b.wall_ms;
          current_ms = Some c.wall_ms;
          ratio;
          regressed = ratio > threshold;
        }
  in
  let new_phases =
    List.filter_map
      (fun (c : phase) ->
        if find c.name base = None then
          Some
            {
              name = c.name;
              baseline_ms = None;
              current_ms = Some c.wall_ms;
              ratio = 1.;
              regressed = false;
            }
        else None)
      cur
  in
  List.map of_base base @ new_phases

let ok verdicts = not (List.exists (fun v -> v.regressed) verdicts)

let describe_verdict v =
  let ms = function Some v -> Printf.sprintf "%9.3f" v | None -> "  missing" in
  Printf.sprintf "  %-28s base %s ms  cur %s ms  ratio %5.2f  %s" v.name
    (ms v.baseline_ms) (ms v.current_ms) v.ratio
    (if v.regressed then "REGRESSED"
     else if v.baseline_ms = None then "new"
     else "ok")

let to_text ?(threshold = 3.) verdicts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "bench comparison (threshold %.2fx):\n" threshold);
  List.iter
    (fun v ->
      Buffer.add_string buf (describe_verdict v);
      Buffer.add_char buf '\n')
    verdicts;
  Buffer.add_string buf
    (if ok verdicts then "PASS: no phase regressed\n"
     else "FAIL: at least one phase regressed\n");
  Buffer.contents buf
