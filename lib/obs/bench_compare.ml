(* Regression gate over two `bench --profile` JSON reports.

   The comparison is per phase on wall_ms with a generous multiplicative
   threshold plus an additive floor: ratio = (cur + min_ms) / (base +
   min_ms).  The floor keeps sub-millisecond phases from tripping the
   gate on scheduler noise while leaving real phases (tens of ms)
   essentially governed by the raw ratio.  A phase present in the
   baseline but missing from the current report is a failure (a silently
   dropped phase must not pass the gate); new phases are reported but
   never fail. *)

type phase = { name : string; wall_ms : float }

type verdict = {
  name : string;
  baseline_ms : float option;
  current_ms : float option;
  ratio : float;
  regressed : bool;
}

exception Malformed of string

let phases_of_report json =
  match Telemetry.Export.member "phases" json with
  | Some (Telemetry.Export.Arr entries) ->
      List.map
        (fun entry ->
          match
            ( Telemetry.Export.member "name" entry,
              Option.bind
                (Telemetry.Export.member "wall_ms" entry)
                Telemetry.Export.to_float )
          with
          | Some (Telemetry.Export.Str name), Some wall_ms ->
              if not (Float.is_finite wall_ms) || wall_ms < 0. then
                raise
                  (Malformed
                     (Printf.sprintf "phase %S has invalid wall_ms" name));
              { name; wall_ms }
          | _ -> raise (Malformed "phase entry missing name/wall_ms"))
        entries
  | Some _ -> raise (Malformed "\"phases\" is not an array")
  | None -> raise (Malformed "report has no \"phases\" field")

let compare_reports ?(threshold = 3.) ?(min_ms = 0.5) ~baseline ~current () =
  if threshold <= 0. then
    invalid_arg "Obs.Bench_compare: threshold must be positive";
  if min_ms < 0. then invalid_arg "Obs.Bench_compare: min_ms must be >= 0";
  let base = phases_of_report baseline in
  let cur = phases_of_report current in
  let find name (ps : phase list) =
    List.find_opt (fun (p : phase) -> p.name = name) ps
  in
  let of_base (b : phase) =
    match find b.name cur with
    | None ->
        {
          name = b.name;
          baseline_ms = Some b.wall_ms;
          current_ms = None;
          ratio = Float.infinity;
          regressed = true;
        }
    | Some c ->
        let ratio = (c.wall_ms +. min_ms) /. (b.wall_ms +. min_ms) in
        {
          name = b.name;
          baseline_ms = Some b.wall_ms;
          current_ms = Some c.wall_ms;
          ratio;
          regressed = ratio > threshold;
        }
  in
  let new_phases =
    List.filter_map
      (fun (c : phase) ->
        if find c.name base = None then
          Some
            {
              name = c.name;
              baseline_ms = None;
              current_ms = Some c.wall_ms;
              ratio = 1.;
              regressed = false;
            }
        else None)
      cur
  in
  List.map of_base base @ new_phases

let ok verdicts = not (List.exists (fun v -> v.regressed) verdicts)

(* --- the speedup contract ------------------------------------------- *)

(* The report's "speedup" object records tuned-vs-serial wall ratios
   (and the lambda-path algorithmic ratio).  Those are a contract, not
   a observation: the autotuner promises the tuned dispatch is never
   slower than serial, so every recorded value must stay at or above
   1.0x (modulo a small measurement-noise allowance, the [floor]) and
   must not collapse relative to the committed baseline (the [slack]
   guards kernels whose baseline sits well above 1, like the shared
   lambda-path factorization). *)

type speedup_verdict = {
  kernel : string;
  baseline_x : float option;
  current_x : float option;
  speedup_regressed : bool;
  reason : string;  (** "" when ok *)
}

let speedups_of_report json =
  match Telemetry.Export.member "speedup" json with
  | None -> []
  | Some (Telemetry.Export.Obj kvs) ->
      List.map
        (fun (k, v) ->
          match Telemetry.Export.to_float v with
          | Some x when Float.is_finite x && x >= 0. -> (k, x)
          | _ ->
              raise
                (Malformed
                   (Printf.sprintf "speedup entry %S is not a finite number" k)))
        kvs
  | Some _ -> raise (Malformed "\"speedup\" is not an object")

let compare_speedups ?(floor = 0.95) ?(slack = 0.5) ~baseline ~current () =
  if floor < 0. then invalid_arg "Obs.Bench_compare: floor must be >= 0";
  if slack < 0. || slack > 1. then
    invalid_arg "Obs.Bench_compare: slack must lie in [0, 1]";
  let base = speedups_of_report baseline in
  let cur = speedups_of_report current in
  let of_base (k, bx) =
    match List.assoc_opt k cur with
    | None ->
        {
          kernel = k;
          baseline_x = Some bx;
          current_x = None;
          speedup_regressed = true;
          reason = "missing from current report";
        }
    | Some cx ->
        let reason =
          if cx < floor then
            Printf.sprintf "%.2fx is below the %.2fx contract floor" cx floor
          else if cx < slack *. bx then
            Printf.sprintf "%.2fx collapsed from baseline %.2fx" cx bx
          else ""
        in
        {
          kernel = k;
          baseline_x = Some bx;
          current_x = Some cx;
          speedup_regressed = reason <> "";
          reason;
        }
  in
  let new_entries =
    List.filter_map
      (fun (k, cx) ->
        if List.mem_assoc k base then None
        else
          let reason =
            if cx < floor then
              Printf.sprintf "%.2fx is below the %.2fx contract floor" cx floor
            else ""
          in
          Some
            {
              kernel = k;
              baseline_x = None;
              current_x = Some cx;
              speedup_regressed = reason <> "";
              reason;
            })
      cur
  in
  List.map of_base base @ new_entries

let speedups_ok verdicts =
  not (List.exists (fun v -> v.speedup_regressed) verdicts)

let describe_speedup v =
  let x = function Some v -> Printf.sprintf "%5.2fx" v | None -> "  miss" in
  Printf.sprintf "  %-28s base %s  cur %s  %s" v.kernel (x v.baseline_x)
    (x v.current_x)
    (if v.speedup_regressed then "REGRESSED: " ^ v.reason
     else if v.baseline_x = None then "new"
     else "ok")

let speedups_to_text ?(floor = 0.95) verdicts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "speedup contract (floor %.2fx):\n" floor);
  List.iter
    (fun v ->
      Buffer.add_string buf (describe_speedup v);
      Buffer.add_char buf '\n')
    verdicts;
  Buffer.add_string buf
    (if speedups_ok verdicts then "PASS: speedup contract holds\n"
     else "FAIL: speedup contract violated\n");
  Buffer.contents buf

let describe_verdict v =
  let ms = function Some v -> Printf.sprintf "%9.3f" v | None -> "  missing" in
  Printf.sprintf "  %-28s base %s ms  cur %s ms  ratio %5.2f  %s" v.name
    (ms v.baseline_ms) (ms v.current_ms) v.ratio
    (if v.regressed then "REGRESSED"
     else if v.baseline_ms = None then "new"
     else "ok")

let to_text ?(threshold = 3.) verdicts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "bench comparison (threshold %.2fx):\n" threshold);
  List.iter
    (fun v ->
      Buffer.add_string buf (describe_verdict v);
      Buffer.add_char buf '\n')
    verdicts;
  Buffer.add_string buf
    (if ok verdicts then "PASS: no phase regressed\n"
     else "FAIL: at least one phase regressed\n");
  Buffer.contents buf
