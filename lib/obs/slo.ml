(* Rolling-window SLO tracker.

   Two objectives over served traffic:
     latency  — fraction of responses answered within
                [latency_threshold_ms] must stay >= [latency_target];
     quality  — fraction of responses answered at full fidelity
                (served with a healthy certificate, neither degraded
                 nor shed) must stay >= [quality_target].

   Each observation lands in a fixed-size ring buffer (the rolling
   window) and in cumulative totals.  Burn rate is the standard SRE
   ratio: window error rate divided by the error budget the target
   allows (1 - target).  Burn 1.0 means the window is consuming budget
   exactly as fast as the objective grants it; > 1 means the budget is
   shrinking.  Budget remaining is cumulative:
   1 - cumulative_errors / (allowed_error_rate * total), clamped to
   [0, 1] — the fraction of the whole run's error allowance unspent. *)

type config = {
  window : int;  (* observations in the rolling window *)
  latency_threshold_ms : float;
  latency_target : float;  (* e.g. 0.9 = 90% under threshold *)
  quality_target : float;  (* e.g. 0.7 = 70% full-fidelity *)
}

let default =
  {
    window = 256;
    latency_threshold_ms = 25.;
    latency_target = 0.9;
    quality_target = 0.6;
  }

type t = {
  config : config;
  (* ring cells: bit 0 = latency ok, bit 1 = quality ok *)
  ring : int array;
  mutable next : int;  (* next write position *)
  mutable window_n : int;  (* live cells, <= window *)
  mutable window_latency_ok : int;
  mutable window_quality_ok : int;
  mutable total : int;
  mutable total_latency_ok : int;
  mutable total_quality_ok : int;
}

let create ?(config = default) () =
  if config.window <= 0 then invalid_arg "Slo.create: window must be positive";
  {
    config;
    ring = Array.make config.window 0;
    next = 0;
    window_n = 0;
    window_latency_ok = 0;
    window_quality_ok = 0;
    total = 0;
    total_latency_ok = 0;
    total_quality_ok = 0;
  }

let config t = t.config

let observe t ~latency_ms ~good_quality =
  let latency_ok = latency_ms <= t.config.latency_threshold_ms in
  let cell = (if latency_ok then 1 else 0) lor (if good_quality then 2 else 0) in
  if t.window_n = t.config.window then begin
    (* evict the oldest cell *)
    let old = t.ring.(t.next) in
    if old land 1 <> 0 then t.window_latency_ok <- t.window_latency_ok - 1;
    if old land 2 <> 0 then t.window_quality_ok <- t.window_quality_ok - 1
  end
  else t.window_n <- t.window_n + 1;
  t.ring.(t.next) <- cell;
  t.next <- (t.next + 1) mod t.config.window;
  if latency_ok then begin
    t.window_latency_ok <- t.window_latency_ok + 1;
    t.total_latency_ok <- t.total_latency_ok + 1
  end;
  if good_quality then begin
    t.window_quality_ok <- t.window_quality_ok + 1;
    t.total_quality_ok <- t.total_quality_ok + 1
  end;
  t.total <- t.total + 1

type snapshot = {
  total : int;
  window_n : int;
  latency_good : int;  (* cumulative *)
  quality_good : int;  (* cumulative *)
  latency_compliance : float;  (* window fraction; 1. when empty *)
  quality_compliance : float;
  latency_burn : float;  (* window error rate / allowed error rate *)
  quality_burn : float;
  latency_budget : float;  (* cumulative budget remaining in [0,1] *)
  quality_budget : float;
}

let compliance ok n = if n = 0 then 1. else float_of_int ok /. float_of_int n

let burn ~target ~ok ~n =
  let allowed = 1. -. target in
  if n = 0 then 0.
  else
    let err = 1. -. compliance ok n in
    if allowed <= 0. then if err > 0. then infinity else 0.
    else err /. allowed

let budget ~target ~ok ~n =
  let allowed = 1. -. target in
  if n = 0 then 1.
  else
    let errors = float_of_int (n - ok) in
    if allowed <= 0. then if errors > 0. then 0. else 1.
    else
      Float.max 0. (Float.min 1. (1. -. (errors /. (allowed *. float_of_int n))))

let snapshot (t : t) =
  {
    total = t.total;
    window_n = t.window_n;
    latency_good = t.total_latency_ok;
    quality_good = t.total_quality_ok;
    latency_compliance = compliance t.window_latency_ok t.window_n;
    quality_compliance = compliance t.window_quality_ok t.window_n;
    latency_burn =
      burn ~target:t.config.latency_target ~ok:t.window_latency_ok
        ~n:t.window_n;
    quality_burn =
      burn ~target:t.config.quality_target ~ok:t.window_quality_ok
        ~n:t.window_n;
    latency_budget =
      budget ~target:t.config.latency_target ~ok:t.total_latency_ok ~n:t.total;
    quality_budget =
      budget ~target:t.config.quality_target ~ok:t.total_quality_ok ~n:t.total;
  }

let snapshot_json s =
  let open Telemetry.Export in
  Obj
    [
      ("total", Num (float_of_int s.total));
      ("window_n", Num (float_of_int s.window_n));
      ("latency_good", Num (float_of_int s.latency_good));
      ("quality_good", Num (float_of_int s.quality_good));
      ("latency_compliance", Num s.latency_compliance);
      ("quality_compliance", Num s.quality_compliance);
      ("latency_burn", Num s.latency_burn);
      ("quality_burn", Num s.quality_burn);
      ("latency_budget", Num s.latency_budget);
      ("quality_budget", Num s.quality_budget);
    ]

let describe t =
  let s = snapshot t in
  Printf.sprintf
    "slo: n=%d window=%d latency %.1f%% (burn %.2f, budget %.0f%%) quality \
     %.1f%% (burn %.2f, budget %.0f%%)"
    s.total s.window_n
    (100. *. s.latency_compliance)
    s.latency_burn
    (100. *. s.latency_budget)
    (100. *. s.quality_compliance)
    s.quality_burn
    (100. *. s.quality_budget)
