(* Request-scoped trace context.

   One [t] per served request: a 64-bit trace id (derived from the
   engine seed and the request id through SplitMix64, so replaying a
   trace reproduces the same ids bit-for-bit) plus a causally-ordered
   span tree.  Span ids are allocation indices, so [parent < id] always
   holds and the journal schema can check causal order structurally.

   Time is injected ([now], milliseconds): the serve layer passes its
   own clock, which under a virtual clock makes every recorded
   timestamp — and therefore the whole journal — deterministic.

   The context also installs itself as the *ambient* trace of the
   current domain ([with_current]), so deep layers (Retry attempts,
   Robust.Solve rungs, Cg iterations) can attach spans and marks
   without threading a value through every signature.  The ambient
   slot is domain-local storage: concurrent requests on different
   domains never splice into each other's trees. *)

type span = {
  id : int;  (* allocation index; causal order *)
  parent : int;  (* -1 for a root *)
  name : string;
  start_ms : float;
  mutable dur_ms : float;  (* nan while the span is open *)
  mutable fields : (string * Event.value) list;
}

type t = {
  trace_id : int64;
  now : unit -> float;
  mutable spans_rev : span list;  (* newest first *)
  mutable next_id : int;
  mutable stack : span list;  (* innermost open span first *)
}

let derive_id ~seed ~request =
  Prng.Splitmix64.derive (Int64.of_int seed) request

let id_hex id = Printf.sprintf "%016Lx" id

let default_now () = Telemetry.Span.now_ns () /. 1e6

let create ?(now = default_now) ~trace_id () =
  { trace_id; now; spans_rev = []; next_id = 0; stack = [] }

let trace_id t = t.trace_id
let n_spans t = t.next_id

let open_span t ?(fields = []) name =
  let parent = match t.stack with [] -> -1 | s :: _ -> s.id in
  let s =
    { id = t.next_id; parent; name; start_ms = t.now (); dur_ms = Float.nan;
      fields }
  in
  t.next_id <- t.next_id + 1;
  t.spans_rev <- s :: t.spans_rev;
  t.stack <- s :: t.stack;
  s

let annotate s fields = s.fields <- s.fields @ fields

let close_span t s =
  if Float.is_nan s.dur_ms then begin
    s.dur_ms <- Float.max 0. (t.now () -. s.start_ms);
    (* pop the stack down to (and including) [s]; spans the caller
       forgot to close are closed with it, so the tree is always total *)
    let rec pop = function
      | [] -> []
      | top :: rest ->
          if top.id = s.id then rest
          else begin
            if Float.is_nan top.dur_ms then
              top.dur_ms <- Float.max 0. (t.now () -. top.start_ms);
            pop rest
          end
    in
    if List.exists (fun sp -> sp.id = s.id) t.stack then
      t.stack <- pop t.stack
  end

let with_span t ?fields name f =
  let s = open_span t ?fields name in
  Fun.protect ~finally:(fun () -> close_span t s) f

(* zero-duration span: a point event in causal position *)
let event t ?fields name =
  let s = open_span t ?fields name in
  s.dur_ms <- 0.;
  t.stack <- (match t.stack with _ :: rest -> rest | [] -> [])

let spans t = List.rev t.spans_rev

(* ---------------- ambient (per-domain) context ---------------- *)

let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)

let with_current t f =
  let slot = Domain.DLS.get current_key in
  let saved = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := saved) f

let in_span ?fields name f =
  match current () with
  | None -> f ()
  | Some t -> with_span t ?fields name f

let mark ?fields name =
  match current () with None -> () | Some t -> event t ?fields name

let annotate_current fields =
  match current () with
  | None -> ()
  | Some t -> ( match t.stack with [] -> () | s :: _ -> annotate s fields)

(* ---------------- export ---------------- *)

let span_json s =
  let open Telemetry.Export in
  Obj
    [
      ("id", Num (float_of_int s.id));
      ("parent", Num (float_of_int s.parent));
      ("name", Str s.name);
      ("start_ms", Num s.start_ms);
      ("dur_ms", Num (if Float.is_nan s.dur_ms then 0. else s.dur_ms));
      ( "fields",
        Obj (List.map (fun (k, v) -> (k, Event.value_json v)) s.fields) );
    ]

let to_json t =
  Telemetry.Export.Obj
    [
      ("trace", Telemetry.Export.Str (id_hex t.trace_id));
      ("spans", Telemetry.Export.Arr (List.map span_json (spans t)));
    ]

(* ---------------- digest ---------------- *)

let combine h v = Prng.Splitmix64.mix (Int64.logxor (Int64.mul h 0x100000001b3L) v)

let combine_string h s =
  let h = ref (combine h (Int64.of_int (String.length s))) in
  String.iter (fun c -> h := combine !h (Int64.of_int (Char.code c))) s;
  !h

let combine_value h = function
  | Event.Bool b -> combine h (if b then 1L else 0L)
  | Event.Int i -> combine h (Int64.of_int i)
  | Event.Float v -> combine h (Int64.bits_of_float v)
  | Event.Str s -> combine_string h s

let digest t =
  List.fold_left
    (fun h s ->
      let h = combine h (Int64.of_int s.id) in
      let h = combine h (Int64.of_int s.parent) in
      let h = combine_string h s.name in
      let h = combine h (Int64.bits_of_float s.start_ms) in
      let h = combine h (Int64.bits_of_float s.dur_ms) in
      List.fold_left
        (fun h (k, v) -> combine_value (combine_string h k) v)
        h s.fields)
    (combine 0x7ace5eedL t.trace_id)
    (spans t)
