(** The soft criterion (Delalleau–Bengio–Le Roux / Zhu–Goldberg) —
    Eq. (2)/(3)/(4).

    Minimise [Σ_{i≤n} (Y_i − f_i)² + (λ/2)·Σ_ij w_ij (f_i − f_j)²], with
    closed form [f̂ = (V + λL)⁻¹ (Y_n; 0)].  The full system is
    (n+m)×(n+m) — the O((n+m)³) of the paper's complexity remark.

    [lambda] must be strictly positive: at λ = 0 the matrix [V] is
    singular, and the paper's Proposition II.1 identifies the λ→0 limit
    with the hard criterion, so use {!Hard} (or {!Estimator}) there. *)

type method_ =
  | Full_cholesky   (** factor the (n+m) matrix [V + λL] — default *)
  | Block           (** the paper's Eq. (4): two smaller solves via the Schur complement *)
  | Cg of { tol : float }  (** matrix-free CG on [V + λL] (never materialises it) *)

val solve :
  ?method_:method_ -> ?observe:bool -> lambda:float -> Problem.t -> Linalg.Vec.t
(** Scores on the unlabeled vertices.  Raises [Invalid_argument] when
    [lambda <= 0]; [Failure] if the system is numerically singular
    (e.g. a disconnected unlabeled component, where the soft criterion
    is also ill-posed).

    [~observe:true] (default false) records an [Obs.Health] certificate
    for the full (n+m)×(n+m) system [(V + λL) f = (Y; 0)]: recomputed
    true residual against the matrix-free operator, power-iteration
    condition estimate, method rung, and (for CG) the convergence
    summary.  The observed path always solves the full system (Block's
    unlabeled slice coincides with it by Eq. 4). *)

val solve_full :
  ?method_:method_ -> ?observe:bool -> lambda:float -> Problem.t -> Linalg.Vec.t
(** The complete (n+m) score vector — note the labeled scores are
    *smoothed*, not equal to the observed responses (that is the point
    of the soft criterion). *)

val method_name : method_ -> string

val objective : lambda:float -> Problem.t -> Linalg.Vec.t -> float
(** The loss + penalty value of a full score vector:
    [Σ_{i≤n}(Y_i − f_i)² + (λ/2)·Σ_ij w_ij (f_i − f_j)²]. *)

val lambda_infinity_limit : Problem.t -> float
(** The λ→∞ prediction on a connected graph: the mean of the observed
    responses — Proposition II.2's counterexample value.  Every unlabeled
    score converges to this constant as λ grows. *)
