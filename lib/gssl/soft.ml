module Mat = Linalg.Mat
module Vec = Linalg.Vec

type method_ = Full_cholesky | Block | Cg of { tol : float }

let c_solves = Telemetry.Counter.make "gssl.soft_solves"

let check_lambda lambda =
  if lambda <= 0. then
    invalid_arg
      "Soft.solve: lambda must be strictly positive (use Hard for the λ=0 limit)"

let padded_labels problem =
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let b = Vec.zeros total in
  Array.blit problem.Problem.labels 0 b 0 n;
  b

(* V + λL as a dense matrix. *)
let full_matrix ~lambda problem =
  let n = Problem.n_labeled problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  let total = Problem.size problem in
  Mat.init total total (fun i j ->
      let w = Graph.Weighted_graph.weight g i j in
      let lap = if i = j then d.(i) -. w else -.w in
      let v = if i = j && i < n then 1. else 0. in
      v +. (lambda *. lap))

let solve_full_cholesky ~lambda problem =
  let a = full_matrix ~lambda problem in
  let b = padded_labels problem in
  match Linalg.Cholesky.solve a b with
  | x -> x
  | exception Linalg.Cholesky.Not_positive_definite _ ->
      failwith "Soft.solve: system not positive definite (disconnected graph?)"

let full_operator ~lambda problem =
  Graph.Laplacian.operator ~lambda ~n_labeled:(Problem.n_labeled problem)
    problem.Problem.graph

let solve_full_cg ~tol ~lambda problem =
  Sparse.Cg.solve_exn ~tol (full_operator ~lambda problem) (padded_labels problem)

(* Eq. (4): f_U = (D22 - W22 - λ W21 (I + λD11 - λW11)^{-1} W12)^{-1}
                  · W21 (I + λD11 - λW11)^{-1} Y_n.                        *)
let solve_block ~lambda problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  if m = 0 then [||]
  else begin
    let w11, w12, w21, w22 = Problem.blocks problem in
    let d = Problem.degrees problem in
    (* I + λ D11 - λ W11 *)
    let top =
      Mat.init n n (fun i j ->
          let v = if i = j then 1. +. (lambda *. d.(i)) else 0. in
          v -. (lambda *. Mat.get w11 i j))
    in
    let top_inv_y = Linalg.Lu.solve top problem.Problem.labels in
    let top_inv_w12 = Linalg.Lu.solve_many top w12 in
    (* D22 - W22 - λ W21 top^{-1} W12 *)
    let d22_minus_w22 =
      Mat.init m m (fun a b ->
          let v = if a = b then d.(n + a) else 0. in
          v -. Mat.get w22 a b)
    in
    let middle = Mat.sub d22_minus_w22 (Mat.scale lambda (Mat.mm w21 top_inv_w12)) in
    Linalg.Lu.solve middle (Mat.mv w21 top_inv_y)
  end

let slice_unlabeled problem full =
  let n = Problem.n_labeled problem in
  Vec.slice full n (Problem.size problem - n)

let method_name = function
  | Full_cholesky -> "cholesky"
  | Block -> "block"
  | Cg _ -> "cg"

let solve_full_plain ~method_ ~lambda problem =
  match method_ with
  | Full_cholesky -> solve_full_cholesky ~lambda problem
  | Cg { tol } -> solve_full_cg ~tol ~lambda problem
  | Block ->
      (* reconstruct the labeled part from the unlabeled part via the top
         block equation: f_L = (I + λD11 − λW11)^{-1} (Y + λ W12 f_U) *)
      let n = Problem.n_labeled problem in
      let f_u = solve_block ~lambda problem in
      let _, w12, _, _ = Problem.blocks problem in
      let d = Problem.degrees problem in
      let w11, _, _, _ = Problem.blocks problem in
      let top =
        Mat.init n n (fun i j ->
            let v = if i = j then 1. +. (lambda *. d.(i)) else 0. in
            v -. (lambda *. Mat.get w11 i j))
      in
      let rhs =
        if Array.length f_u = 0 then Vec.copy problem.Problem.labels
        else Vec.add problem.Problem.labels (Vec.scale lambda (Mat.mv w12 f_u))
      in
      let f_l = Linalg.Lu.solve top rhs in
      Vec.concat f_l f_u

let solve_full ?(method_ = Full_cholesky) ?(observe = false) ~lambda problem =
  check_lambda lambda;
  Telemetry.Span.with_ "gssl.soft_solve_full" @@ fun () ->
  Telemetry.Counter.incr c_solves;
  if not observe then solve_full_plain ~method_ ~lambda problem
  else begin
    (* observed path: same full (n+m) solve of (V + λL) f = (Y; 0), plus
       a health certificate recomputed against the matrix-free operator *)
    let op = full_operator ~lambda problem in
    let b = padded_labels problem in
    let x, convergence, cg_failure =
      match method_ with
      | Cg { tol } ->
          let out = Sparse.Cg.solve ~tol op b in
          let conv =
            Obs.Health.convergence ~iterations:out.Sparse.Cg.iterations
              ~final_residual:out.Sparse.Cg.residual_norm
              ~best_residual:out.Sparse.Cg.best_residual
              ~converged:out.Sparse.Cg.converged
          in
          ( out.Sparse.Cg.solution,
            Some conv,
            if out.Sparse.Cg.converged then None
            else Some (fun () -> Sparse.Cg.ensure_converged op b out) )
      | Full_cholesky | Block ->
          (solve_full_plain ~method_ ~lambda problem, None, None)
    in
    let cond =
      Obs.Health.cond_estimate ~dim:(Vec.dim b) ~apply:op.Sparse.Linop.apply
        ~solve:(fun v ->
          (Sparse.Cg.solve ~precondition:true op v).Sparse.Cg.solution)
        ()
    in
    let cert =
      Obs.Health.certify ~system:"gssl.soft" ~rung:(method_name method_) ~cond
        ?convergence ~apply:op.Sparse.Linop.apply ~b x
    in
    Obs.Health.record cert;
    (match cg_failure with Some raise_it -> raise_it () | None -> ());
    x
  end

let solve ?(method_ = Full_cholesky) ?(observe = false) ~lambda problem =
  check_lambda lambda;
  Telemetry.Span.with_ "gssl.soft_solve" @@ fun () ->
  Telemetry.Counter.incr c_solves;
  if observe then
    (* route through the full system so the certificate covers the whole
       (V + λL) solve; Block's unlabeled slice is identical by Eq. (4) *)
    slice_unlabeled problem (solve_full ~method_ ~observe:true ~lambda problem)
  else
    match method_ with
    | Block -> solve_block ~lambda problem
    | Full_cholesky -> slice_unlabeled problem (solve_full_cholesky ~lambda problem)
    | Cg { tol } -> slice_unlabeled problem (solve_full_cg ~tol ~lambda problem)

let objective ~lambda problem f =
  if Array.length f <> Problem.size problem then
    invalid_arg "Soft.objective: length mismatch";
  let n = Problem.n_labeled problem in
  let loss = ref 0. in
  for i = 0 to n - 1 do
    let d = problem.Problem.labels.(i) -. f.(i) in
    loss := !loss +. (d *. d)
  done;
  !loss
  +. (lambda /. 2. *. Graph.Laplacian.quadratic_energy problem.Problem.graph f)

let lambda_infinity_limit problem = Vec.mean problem.Problem.labels
