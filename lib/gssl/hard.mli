(** The hard criterion (Zhu, Ghahramani & Lafferty 2003) — Eq. (1)/(5).

    Minimise [Σ_ij w_ij (f_i − f_j)²] subject to [f_i = Y_i] on the
    labeled set.  On the unlabeled block the solution is

    {v f̂_U = (D₂₂ − W₂₂)⁻¹ W₂₁ Y_n }

    where [D] holds *full-graph* degrees.  The system matrix is a
    diagonally dominant, symmetric M-matrix; it is positive definite
    exactly when every connected component of the unlabeled subgraph
    touches the labeled set.  Cost: one m×m solve — the O(m³) of
    Proposition II.1's complexity remark. *)

type solver =
  | Cholesky                 (** direct SPD solve — default *)
  | Lu                       (** direct with partial pivoting *)
  | Cg of { tol : float }    (** conjugate gradient, matrix-free-ish *)

exception Unanchored_unlabeled of int
(** An unlabeled component is disconnected from all labels, so the hard
    solution is not unique; the argument is a vertex in such a component. *)

val solve : ?solver:solver -> ?observe:bool -> Problem.t -> Linalg.Vec.t
(** Scores on the unlabeled vertices, in graph order [n … n+m−1].
    Returns the empty vector when [m = 0].
    Raises [Unanchored_unlabeled] when the system is singular because
    some unlabeled component has no labeled neighbour.

    [~observe:true] (default false — the default path pays one branch)
    additionally records an [Obs.Health] certificate for the solve:
    recomputed true residual, condition estimate of [D₂₂ − W₂₂], the
    rung/solver used, and (for the CG backend) the convergence summary.
    Read it back with [Obs.Health.last ()].  On an observed CG solve the
    certificate is recorded {e before} the non-convergence [Failure] is
    raised, so the flight recorder keeps the post-mortem. *)

val solve_full : ?solver:solver -> ?observe:bool -> Problem.t -> Linalg.Vec.t
(** The complete score vector: observed labels on [0 … n−1] (the hard
    constraint) followed by the estimated scores. *)

val solver_name : solver -> string

val system_matrix : Problem.t -> Linalg.Mat.t
(** [D₂₂ − W₂₂] — exposed for tests and the theory diagnostics. *)

val rhs : Problem.t -> Linalg.Vec.t
(** [W₂₁ Y] — the right-hand side matching {!system_matrix}; exposed so
    {!Resilient} can assemble per-component systems. *)

val energy : Problem.t -> Linalg.Vec.t -> float
(** The objective [Σ_ij w_ij (f_i − f_j)²] of a full score vector — the
    hard solution minimises this among all vectors agreeing with the
    labels.  Raises [Invalid_argument] on length mismatch. *)

val is_harmonic : ?tol:float -> Problem.t -> Linalg.Vec.t -> bool
(** A full score vector is harmonic when every unlabeled score equals the
    weighted average of all its neighbours' scores — the
    characterisation of the hard solution used in the toy example. *)
