module Mat = Linalg.Mat
module Vec = Linalg.Vec

type solver = Cholesky | Lu | Cg of { tol : float }

exception Unanchored_unlabeled of int

let c_solves = Telemetry.Counter.make "gssl.hard_solves"

let system_matrix problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let d = Problem.degrees problem in
  let g = problem.Problem.graph in
  Mat.init m m (fun a b ->
      let w = Graph.Weighted_graph.weight g (n + a) (n + b) in
      if a = b then d.(n + a) -. w else -.w)

(* An unlabeled vertex whose whole component contains no label makes the
   system singular; find one such vertex (if any) for the error report. *)
let find_unanchored problem =
  let comps = Graph.Connectivity.components problem.Problem.graph in
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let anchored = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    Hashtbl.replace anchored comps.(i) ()
  done;
  let found = ref None in
  for v = n to total - 1 do
    if !found = None && not (Hashtbl.mem anchored comps.(v)) then found := Some v
  done;
  !found

let rhs problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let y = problem.Problem.labels in
  Array.init m (fun a ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (Graph.Weighted_graph.weight g (n + a) i *. y.(i))
      done;
      !acc)

let solver_name = function
  | Cholesky -> "cholesky"
  | Lu -> "lu"
  | Cg _ -> "cg"

let solve ?(solver = Cholesky) ?(observe = false) problem =
  Telemetry.Span.with_ "gssl.hard_solve" @@ fun () ->
  Telemetry.Counter.incr c_solves;
  let m = Problem.n_unlabeled problem in
  if m = 0 then [||]
  else begin
    (match find_unanchored problem with
    | Some v -> raise (Unanchored_unlabeled v)
    | None -> ());
    let a = system_matrix problem in
    let b = rhs problem in
    if not observe then
      match solver with
      | Cholesky -> Linalg.Cholesky.solve a b
      | Lu -> Linalg.Lu.solve a b
      | Cg { tol } -> Sparse.Cg.solve_exn ~tol (Sparse.Linop.of_dense a) b
    else begin
      (* observed path: same solve, plus a health certificate recomputed
         from the returned solution (Eq. 5 system (D22 - W22) f = W21 y) *)
      let x, convergence, cg_failure =
        match solver with
        | Cholesky -> (Linalg.Cholesky.solve a b, None, None)
        | Lu -> (Linalg.Lu.solve a b, None, None)
        | Cg { tol } ->
            let op = Sparse.Linop.of_dense a in
            let out = Sparse.Cg.solve ~tol op b in
            let conv =
              Obs.Health.convergence ~iterations:out.Sparse.Cg.iterations
                ~final_residual:out.Sparse.Cg.residual_norm
                ~best_residual:out.Sparse.Cg.best_residual
                ~converged:out.Sparse.Cg.converged
            in
            ( out.Sparse.Cg.solution,
              Some conv,
              if out.Sparse.Cg.converged then None
              else Some (fun () -> Sparse.Cg.ensure_converged op b out) )
      in
      let cert =
        Obs.Health.certify ~system:"gssl.hard" ~rung:(solver_name solver)
          ~cond:(Linalg.Refine.condition_estimate a)
          ?convergence ~apply:(Mat.mv a) ~b x
      in
      Obs.Health.record cert;
      (* certificate first, then the same Failure solve_exn would raise *)
      (match cg_failure with Some raise_it -> raise_it () | None -> ());
      x
    end
  end

let solve_full ?solver ?observe problem =
  Vec.concat (Vec.copy problem.Problem.labels) (solve ?solver ?observe problem)

let energy problem f =
  if Array.length f <> Problem.size problem then
    invalid_arg "Hard.energy: length mismatch";
  Graph.Laplacian.quadratic_energy problem.Problem.graph f

let is_harmonic ?(tol = 1e-8) problem f =
  if Array.length f <> Problem.size problem then
    invalid_arg "Hard.is_harmonic: length mismatch";
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  let ok = ref true in
  for a = n to total - 1 do
    let self = Graph.Weighted_graph.weight g a a in
    let denom = d.(a) -. self in
    if denom > 0. then begin
      let acc = ref 0. in
      for j = 0 to total - 1 do
        if j <> a then acc := !acc +. (Graph.Weighted_graph.weight g a j *. f.(j))
      done;
      if abs_float (f.(a) -. (!acc /. denom)) > tol *. (1. +. abs_float f.(a)) then
        ok := false
    end
  done;
  !ok
