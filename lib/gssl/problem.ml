module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = { graph : Graph.Weighted_graph.t; labels : Vec.t }

let make ~graph ~labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Problem.make: no labeled data";
  if n > Graph.Weighted_graph.order graph then
    invalid_arg "Problem.make: more labels than vertices";
  Array.iteri
    (fun i v ->
      if not (Float.is_finite v) then
        invalid_arg (Printf.sprintf "Problem.make: non-finite label at index %d" i))
    labels;
  { graph; labels }

let make_unchecked ~graph ~labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Problem.make_unchecked: no labeled data";
  if n > Graph.Weighted_graph.order graph then
    invalid_arg "Problem.make_unchecked: more labels than vertices";
  { graph; labels }

let of_points ~kernel ~bandwidth ~labeled ~unlabeled =
  if Array.length labeled = 0 then invalid_arg "Problem.of_points: no labeled data";
  let labeled_points = Array.map fst labeled in
  let labels = Array.map snd labeled in
  let points = Array.append labeled_points unlabeled in
  let h = Kernel.Bandwidth.select bandwidth points in
  let w = Kernel.Similarity.dense ~kernel ~bandwidth:h points in
  make ~graph:(Graph.Weighted_graph.of_dense w) ~labels

let n_labeled t = Array.length t.labels
let size t = Graph.Weighted_graph.order t.graph
let n_unlabeled t = size t - n_labeled t

let labeled_indices t = Array.init (n_labeled t) (fun i -> i)

let unlabeled_indices t =
  let n = n_labeled t in
  Array.init (n_unlabeled t) (fun a -> n + a)

let blocks t =
  let w = Graph.Weighted_graph.to_dense t.graph in
  let n = n_labeled t in
  let w11, w12, w21, w22 = Mat.split4 w n in
  (w11, w12, w21, w22)

let degrees t = Graph.Weighted_graph.degrees t.graph

let is_connected t = Graph.Connectivity.is_connected t.graph

let unlabeled_coupling t =
  let n = n_labeled t and m = n_unlabeled t in
  Array.init m (fun a ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. Graph.Weighted_graph.weight t.graph (n + a) i
      done;
      !acc)
