(** The solution path λ ↦ f̂(λ).

    The paper's argument after Proposition II.2 leans on continuity:
    Eq. (4) is continuous in λ, so the prediction "cannot suddenly jump
    from consistent to extremely inaccurate" — inconsistency at large λ
    therefore contaminates a whole range of λ.  This module computes the
    path on a grid (reusing one graph), exposes the endpoints (hard
    solution at λ=0, label-mean collapse at λ=∞), and measures the
    modulus of continuity along the grid so the claim can be checked
    numerically. *)

type point = {
  lambda : float;
  scores : Linalg.Vec.t;          (** unlabeled scores at this λ *)
  distance_to_hard : float;       (** ‖f̂(λ) − f̂_hard‖_∞ *)
  distance_to_collapse : float;   (** ‖f̂(λ) − ȳ·1‖_∞ *)
}

type t = { points : point array; hard : Linalg.Vec.t; label_mean : float }

type strategy =
  | Factorized
      (** Eliminate the unlabeled block once: one Cholesky of [L22] plus
          one eigendecomposition of the n×n Schur complement
          [S = L11 − L12 L22⁻¹ L21] are shared by every grid point, each
          of which then costs O(n² + nm) — against O((n+m)³) per point
          for the naive path.  Falls back to [Naive] automatically when
          [L22] is not positive definite (exactly the cases where the
          hard criterion is unsolvable too). *)
  | Naive  (** One full [Soft.solve] per positive grid point. *)

val compute : ?strategy:strategy -> ?lambdas:float array -> Problem.t -> t
(** Default grid: 0 plus 13 logarithmically spaced values in [1e-4, 1e3].
    λ = 0 is solved with {!Hard}; positive values via [strategy]
    (default {!Factorized}; both strategies agree to solver tolerance —
    property-tested).  The grid must be sorted ascending and nonnegative
    — [Invalid_argument] otherwise.  The counters
    [gssl.lambda_path_factorized] / [gssl.lambda_path_naive] record
    which road was taken. *)

val max_step : t -> float
(** The largest ‖f̂(λ_{k+1}) − f̂(λ_k)‖_∞ along the grid — small values
    on a fine grid witness the continuity used in the paper's argument. *)

val is_monotone_towards_collapse : ?slack:float -> t -> bool
(** Whether [distance_to_collapse] is non-increasing in λ (within
    [slack], default 1e-9) — the qualitative shape of Prop. II.2. *)
