module Vec = Linalg.Vec

type point = {
  lambda : float;
  scores : Vec.t;
  distance_to_hard : float;
  distance_to_collapse : float;
}

type t = { points : point array; hard : Vec.t; label_mean : float }

let c_points = Telemetry.Counter.make "gssl.lambda_path_points"

let default_lambdas =
  let log_lo = log 1e-4 and log_hi = log 1e3 in
  let spaced =
    Array.init 13 (fun i ->
        exp (log_lo +. (float_of_int i /. 12. *. (log_hi -. log_lo))))
  in
  Array.append [| 0. |] spaced

let compute ?(lambdas = default_lambdas) problem =
  if Array.length lambdas = 0 then invalid_arg "Lambda_path.compute: empty grid";
  Array.iteri
    (fun i l ->
      if l < 0. then invalid_arg "Lambda_path.compute: negative lambda";
      if i > 0 && l <= lambdas.(i - 1) then
        invalid_arg "Lambda_path.compute: grid must be strictly ascending")
    lambdas;
  Telemetry.Span.with_ "gssl.lambda_path" @@ fun () ->
  Telemetry.Counter.add c_points (Array.length lambdas);
  let hard = Hard.solve problem in
  let label_mean = Vec.mean problem.Problem.labels in
  let points =
    Array.map
      (fun lambda ->
        let scores = if lambda = 0. then Vec.copy hard else Soft.solve ~lambda problem in
        {
          lambda;
          scores;
          distance_to_hard = Vec.norm_inf (Vec.sub scores hard);
          distance_to_collapse =
            Vec.norm_inf (Vec.add_scalar (-.label_mean) scores);
        })
      lambdas
  in
  { points; hard; label_mean }

let max_step { points; _ } =
  let worst = ref 0. in
  for k = 1 to Array.length points - 1 do
    let step = Vec.norm_inf (Vec.sub points.(k).scores points.(k - 1).scores) in
    if step > !worst then worst := step
  done;
  !worst

let is_monotone_towards_collapse ?(slack = 1e-9) { points; _ } =
  let ok = ref true in
  for k = 1 to Array.length points - 1 do
    if points.(k).distance_to_collapse > points.(k - 1).distance_to_collapse +. slack
    then ok := false
  done;
  !ok
