module Vec = Linalg.Vec
module Mat = Linalg.Mat

type point = {
  lambda : float;
  scores : Vec.t;
  distance_to_hard : float;
  distance_to_collapse : float;
}

type t = { points : point array; hard : Vec.t; label_mean : float }

type strategy = Factorized | Naive

let c_points = Telemetry.Counter.make "gssl.lambda_path_points"
let c_factorized = Telemetry.Counter.make "gssl.lambda_path_factorized"
let c_naive = Telemetry.Counter.make "gssl.lambda_path_naive"

let default_lambdas =
  let log_lo = log 1e-4 and log_hi = log 1e3 in
  let spaced =
    Array.init 13 (fun i ->
        exp (log_lo +. (float_of_int i /. 12. *. (log_hi -. log_lo))))
  in
  Array.append [| 0. |] spaced

(* The full soft system is (V + λL) f = (y; 0) with V = diag(1 on the
   labeled block).  Eliminating the unlabeled block gives, for every
   λ > 0 at once,

     (I_n + λ S) f_L = y        with  S = L11 − L12 L22⁻¹ L21
     f_U = −L22⁻¹ L21 f_L

   so one Cholesky of L22 (the O(m³) piece, shared with the hard
   criterion) plus one eigendecomposition S = Q Λ Qᵀ (n×n, n = labeled
   count) turn every grid point into O(n² + nm) work:

     f_L(λ) = Q diag(1 / (1 + λΛᵢ)) Qᵀ y.

   Λᵢ ≥ 0 (S is a Schur complement of the PSD Laplacian), so the
   per-point diagonal never vanishes — the factorized path is defined
   exactly when L22 is positive definite, i.e. when the hard criterion
   itself is solvable. *)
let factorized_scores problem lambdas =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let w11, w12, w21, w22 = Problem.blocks problem in
  let d = Problem.degrees problem in
  let y = problem.Problem.labels in
  let l11 =
    Mat.init n n (fun i j ->
        (if i = j then d.(i) else 0.) -. Mat.get w11 i j)
  in
  let l12 = Mat.init n m (fun i a -> -.Mat.get w12 i a) in
  let l21 = Mat.init m n (fun a i -> -.Mat.get w21 a i) in
  let l22 =
    Mat.init m m (fun a b ->
        (if a = b then d.(n + a) else 0.) -. Mat.get w22 a b)
  in
  (* may raise Not_positive_definite (unanchored component): caller
     falls back to the naive per-point path, which fails the same way
     Soft.solve would *)
  let chol = if m = 0 then Mat.zeros 0 0 else Linalg.Cholesky.factor l22 in
  (* B = L22⁻¹ L21 (m×n): n triangular-solve pairs against one factor *)
  let b =
    if m = 0 then Mat.zeros 0 n
    else
      Mat.of_cols
        (Array.init n (fun j ->
             Linalg.Cholesky.solve_factored chol (Mat.col l21 j)))
  in
  let s_raw = Mat.sub l11 (Mat.mm l12 b) in
  (* symmetrise: the solves leave S symmetric only up to rounding *)
  let s =
    Mat.init n n (fun i j -> 0.5 *. (Mat.get s_raw i j +. Mat.get s_raw j i))
  in
  let { Linalg.Eigen.values; vectors } = Linalg.Eigen.jacobi s in
  let values = Array.map (fun l -> Stdlib.max 0. l) values in
  let qty = Mat.tmv vectors y in
  Array.map
    (fun lambda ->
      let coeffs =
        Array.init n (fun i -> qty.(i) /. (1. +. (lambda *. values.(i))))
      in
      let f_l = Mat.mv vectors coeffs in
      Vec.scale (-1.) (Mat.mv b f_l))
    lambdas

let naive_scores problem lambdas =
  Array.map (fun lambda -> Soft.solve ~lambda problem) lambdas

let compute ?(strategy = Factorized) ?(lambdas = default_lambdas) problem =
  if Array.length lambdas = 0 then invalid_arg "Lambda_path.compute: empty grid";
  Array.iteri
    (fun i l ->
      if l < 0. then invalid_arg "Lambda_path.compute: negative lambda";
      if i > 0 && l <= lambdas.(i - 1) then
        invalid_arg "Lambda_path.compute: grid must be strictly ascending")
    lambdas;
  Telemetry.Span.with_ "gssl.lambda_path" @@ fun () ->
  Telemetry.Counter.add c_points (Array.length lambdas);
  let hard = Hard.solve problem in
  let label_mean = Vec.mean problem.Problem.labels in
  let positive = Array.of_list (List.filter (fun l -> l > 0.) (Array.to_list lambdas)) in
  let positive_scores =
    match strategy with
    | Naive ->
        Telemetry.Counter.incr c_naive;
        naive_scores problem positive
    | Factorized -> (
        match factorized_scores problem positive with
        | scores ->
            Telemetry.Counter.incr c_factorized;
            scores
        | exception (Linalg.Cholesky.Not_positive_definite _ | Failure _) ->
            (* degenerate geometry (or a Jacobi stall): take the robust
               one-solve-per-point road instead of failing the path *)
            Telemetry.Counter.incr c_naive;
            naive_scores problem positive)
  in
  let next = ref 0 in
  let points =
    Array.map
      (fun lambda ->
        let scores =
          if lambda = 0. then Vec.copy hard
          else begin
            let s = positive_scores.(!next) in
            incr next;
            s
          end
        in
        {
          lambda;
          scores;
          distance_to_hard = Vec.norm_inf (Vec.sub scores hard);
          distance_to_collapse =
            Vec.norm_inf (Vec.add_scalar (-.label_mean) scores);
        })
      lambdas
  in
  { points; hard; label_mean }

let max_step { points; _ } =
  let worst = ref 0. in
  for k = 1 to Array.length points - 1 do
    let step = Vec.norm_inf (Vec.sub points.(k).scores points.(k - 1).scores) in
    if step > !worst then worst := step
  done;
  !worst

let is_monotone_towards_collapse ?(slack = 1e-9) { points; _ } =
  let ok = ref true in
  for k = 1 to Array.length points - 1 do
    if points.(k).distance_to_collapse > points.(k - 1).distance_to_collapse +. slack
    then ok := false
  done;
  !ok
