module Mat = Linalg.Mat
module Vec = Linalg.Vec
module Wg = Graph.Weighted_graph
module Check = Robust.Check
module Rsolve = Robust.Solve

type report = {
  predictions : Vec.t;
  diagnostics : Check.diagnostic list;
  imputed : int array;
  n_components : int;
  n_anchored : int;
  rungs : (int * string) list;
  rung_ms : (int * (string * float) list) list;
  certificates : (int * Obs.Health.t) list;
  aborted : bool;
}

let c_hard = Telemetry.Counter.make "gssl.resilient_hard_solves"
let c_soft = Telemetry.Counter.make "gssl.resilient_soft_solves"
let c_imputed = Telemetry.Counter.make "gssl.resilient_imputed_vertices"

(* Mean of the finite labels — the λ→∞ constant of Proposition II.2 and
   the value used for every imputation.  0 when no label is usable. *)
let finite_mean y =
  let sum = ref 0. and count = ref 0 in
  Array.iter
    (fun v ->
      if Float.is_finite v then begin
        sum := !sum +. v;
        incr count
      end)
    y;
  if !count = 0 then 0. else !sum /. float_of_int !count

let sanitize_weight w = if Float.is_finite w && w > 0. then w else 0.

(* Weights that are NaN, infinite or negative become absent edges, which
   matches how Connectivity.components already treats them — so the
   component partition and the solves see the same graph. *)
let sanitize_graph g =
  match Wg.storage g with
  | Wg.Dense m ->
      Wg.of_dense_unchecked
        (Mat.init m.Mat.rows m.Mat.cols (fun i j -> sanitize_weight (Mat.get m i j)))
  | Wg.Sparse c -> Wg.of_sparse_unchecked (Sparse.Csr.map_values sanitize_weight c)

let sanitize_labels mean y =
  Array.map (fun v -> if Float.is_finite v then v else mean) y

(* Group vertices by component id, split at the labeled boundary.
   Returns (comp id, labeled globals, unlabeled globals) in component
   order, each member list ascending. *)
let partition comps n =
  let total = Array.length comps in
  let n_comp = Array.fold_left (fun acc c -> max acc (c + 1)) 0 comps in
  let labeled = Array.make n_comp [] and unlabeled = Array.make n_comp [] in
  for v = total - 1 downto 0 do
    let c = comps.(v) in
    if v < n then labeled.(c) <- v :: labeled.(c)
    else unlabeled.(c) <- v :: unlabeled.(c)
  done;
  List.init n_comp (fun c -> (c, labeled.(c), unlabeled.(c)))

(* Restriction of a sparse graph to [verts] (globals, in local order),
   as a local CSR.  Only intra-component edges exist in a sanitised
   graph, so no weight is lost. *)
let sub_csr csr verts =
  let s = Array.length verts in
  let local = Hashtbl.create (2 * s) in
  Array.iteri (fun p v -> Hashtbl.replace local v p) verts;
  let coo = Sparse.Coo.create s s in
  Array.iteri
    (fun p v ->
      Sparse.Csr.iter_row csr v (fun col w ->
          if w <> 0. then
            match Hashtbl.find_opt local col with
            | Some q -> Sparse.Coo.add coo p q w
            | None -> ()))
    verts;
  Sparse.Csr.of_coo coo

(* Summarise every CG attempt of a sparse fallback chain into one
   convergence record: total iterations, the last attempt's final
   residual, the best residual any attempt reached.  A chain whose last
   CG attempt failed is flagged as stagnated even when a later rung
   (Gauss-Seidel, dense direct) produced the answer — the flag explains
   *why* the fallback happened. *)
let convergence_of_attempts = function
  | [] -> None
  | attempts ->
      let total =
        List.fold_left
          (fun acc (o : Sparse.Cg.outcome) -> acc + o.Sparse.Cg.iterations)
          0 attempts
      in
      let last = List.nth attempts (List.length attempts - 1) in
      let best =
        List.fold_left
          (fun acc (o : Sparse.Cg.outcome) ->
            Float.min acc o.Sparse.Cg.best_residual)
          Float.infinity attempts
      in
      Some
        (Obs.Health.convergence ~iterations:total
           ~final_residual:last.Sparse.Cg.residual_norm ~best_residual:best
           ~converged:last.Sparse.Cg.converged)

let dense_cert ~system ~rung a b solution =
  Obs.Health.certify ~system ~rung
    ~cond:(Linalg.Refine.condition_estimate a)
    ~apply:(Mat.mv a) ~b solution

let sparse_cert ~system ~rung ~attempts a b solution =
  let op = Sparse.Linop.of_csr a in
  let cond =
    Obs.Health.cond_estimate ~dim:(Array.length b)
      ~apply:op.Sparse.Linop.apply
      ~solve:(fun v ->
        (Sparse.Cg.solve ~precondition:true op v).Sparse.Cg.solution)
      ()
  in
  Obs.Health.certify ~system ~rung ~cond
    ?convergence:(convergence_of_attempts attempts)
    ~apply:op.Sparse.Linop.apply ~b solution

(* Hard criterion on one anchored component: assemble the component's
   (D − W) system in the same storage as the input and run the matching
   fallback chain. *)
let solve_hard_component ?cg_max_iter ?should_stop ~observe g y_clean verts n_lab =
  let sub_labels = Array.init n_lab (fun p -> y_clean.(verts.(p))) in
  match Wg.storage g with
  | Wg.Dense _ ->
      let s = Array.length verts in
      let w = Mat.init s s (fun p q -> Wg.weight g verts.(p) verts.(q)) in
      let sub =
        Problem.make_unchecked ~graph:(Wg.of_dense_unchecked w) ~labels:sub_labels
      in
      let a = Hard.system_matrix sub and b = Hard.rhs sub in
      let out = Rsolve.solve_dense ?should_stop a b in
      let rung = Rsolve.dense_rung_name out.Rsolve.rung in
      let cert =
        if observe then
          Some (dense_cert ~system:"resilient.hard" ~rung a b out.Rsolve.solution)
        else None
      in
      (out.Rsolve.solution, rung, out.Rsolve.escalations, cert,
       out.Rsolve.timings, out.Rsolve.aborted)
  | Wg.Sparse csr ->
      let sub =
        Problem.make_unchecked
          ~graph:(Wg.of_sparse_unchecked (sub_csr csr verts))
          ~labels:sub_labels
      in
      let a, b = Scalable.system_csr sub in
      let out = Rsolve.solve_sparse ?cg_max_iter ?should_stop a b in
      let rung = Rsolve.sparse_rung_name out.Rsolve.rung in
      let cert =
        if observe then
          Some
            (sparse_cert ~system:"resilient.hard" ~rung
               ~attempts:out.Rsolve.cg_attempts a b out.Rsolve.solution)
        else None
      in
      (out.Rsolve.solution, rung, out.Rsolve.escalations, cert,
       out.Rsolve.timings, out.Rsolve.aborted)

(* Soft criterion on one anchored component: the component block of
   (V + λL), solved over all component vertices; the unlabeled slice is
   the prediction.  Degrees come from the sanitised full graph — equal
   to component degrees since no edge crosses components. *)
let solve_soft_component ?cg_max_iter ?should_stop ~observe ~lambda g y_clean verts
    n_lab =
  let s = Array.length verts in
  let d = Wg.degrees g in
  let rhs =
    Array.init s (fun p -> if p < n_lab then y_clean.(verts.(p)) else 0.)
  in
  let slice_unlabeled (solution : Vec.t) = Vec.slice solution n_lab (s - n_lab) in
  match Wg.storage g with
  | Wg.Dense _ ->
      let a =
        Mat.init s s (fun p q ->
            let gp = verts.(p) in
            let w = Wg.weight g gp verts.(q) in
            let lap = if p = q then d.(gp) -. w else -.w in
            let v = if p = q && p < n_lab then 1. else 0. in
            v +. (lambda *. lap))
      in
      let out = Rsolve.solve_dense ?should_stop a rhs in
      let rung = Rsolve.dense_rung_name out.Rsolve.rung in
      let cert =
        if observe then
          Some (dense_cert ~system:"resilient.soft" ~rung a rhs out.Rsolve.solution)
        else None
      in
      (slice_unlabeled out.Rsolve.solution, rung, out.Rsolve.escalations, cert,
       out.Rsolve.timings, out.Rsolve.aborted)
  | Wg.Sparse csr ->
      let local = Hashtbl.create (2 * s) in
      Array.iteri (fun p v -> Hashtbl.replace local v p) verts;
      let coo = Sparse.Coo.create s s in
      Array.iteri
        (fun p v ->
          let diag =
            (if p < n_lab then 1. else 0.)
            +. (lambda *. (d.(v) -. Wg.weight g v v))
          in
          Sparse.Coo.add coo p p diag;
          Sparse.Csr.iter_row csr v (fun col w ->
              if w <> 0. && col <> v then
                match Hashtbl.find_opt local col with
                | Some q -> Sparse.Coo.add coo p q (-.(lambda *. w))
                | None -> ()))
        verts;
      let a = Sparse.Csr.of_coo coo in
      let out = Rsolve.solve_sparse ?cg_max_iter ?should_stop a rhs in
      let rung = Rsolve.sparse_rung_name out.Rsolve.rung in
      let cert =
        if observe then
          Some
            (sparse_cert ~system:"resilient.soft" ~rung
               ~attempts:out.Rsolve.cg_attempts a rhs out.Rsolve.solution)
        else None
      in
      (slice_unlabeled out.Rsolve.solution, rung, out.Rsolve.escalations, cert,
       out.Rsolve.timings, out.Rsolve.aborted)

let solve_impl ?suspect_threshold ~kind ~component_solver problem =
  let g0 = problem.Problem.graph in
  let y0 = problem.Problem.labels in
  let n = Problem.n_labeled problem in
  let m = Problem.n_unlabeled problem in
  let scan = Check.scan ?suspect_threshold g0 y0 in
  let mean = finite_mean y0 in
  let y_clean = sanitize_labels mean y0 in
  let g = sanitize_graph g0 in
  let comps = Graph.Connectivity.components g in
  let groups = partition comps n in
  let n_components = List.length groups in
  let n_anchored =
    List.length (List.filter (fun (_, labeled, _) -> labeled <> []) groups)
  in
  let predictions = Vec.create m mean in
  let extra = ref [] in
  let imputed = ref [] in
  let rungs = ref [] in
  let rung_ms = ref [] in
  let certificates = ref [] in
  let aborted = ref false in
  let impute v =
    predictions.(v - n) <- mean;
    imputed := v :: !imputed;
    Telemetry.Counter.incr c_imputed;
    Obs.Event.emit ~severity:Obs.Event.Warning "resilient.impute"
      [ ("vertex", Obs.Event.Int v); ("value", Obs.Event.Float mean) ];
    extra := Check.Imputed_prediction { vertex = v; value = mean } :: !extra
  in
  List.iter
    (fun (c, labeled, unlabeled) ->
      match (labeled, unlabeled) with
      | _, [] -> ()
      | [], _ -> List.iter impute unlabeled
      | _ ->
          let n_lab = List.length labeled in
          let verts = Array.of_list (labeled @ unlabeled) in
          let solution, rung, escalations, cert, timings, comp_aborted =
            component_solver g y_clean verts n_lab
          in
          rungs := (c, rung) :: !rungs;
          rung_ms := (c, timings) :: !rung_ms;
          aborted := !aborted || comp_aborted;
          (match cert with
          | Some cert ->
              Obs.Health.record cert;
              certificates := (c, cert) :: !certificates
          | None -> ());
          List.iter
            (fun { Rsolve.abandoned; reason } ->
              extra :=
                Check.Solver_fallback
                  { system = Printf.sprintf "%s component %d" kind c;
                    abandoned; reason }
                :: !extra)
            escalations;
          List.iteri
            (fun p v ->
              let x = solution.(p) in
              if Float.is_finite x then predictions.(v - n) <- x else impute v)
            unlabeled)
    groups;
  { predictions;
    diagnostics = scan @ List.rev !extra;
    imputed = Array.of_list (List.rev !imputed);
    n_components;
    n_anchored;
    rungs = List.rev !rungs;
    rung_ms = List.rev !rung_ms;
    certificates = List.rev !certificates;
    aborted = !aborted }

let solve_hard ?suspect_threshold ?cg_max_iter ?should_stop ?(observe = false)
    problem =
  Telemetry.Span.with_ "gssl.resilient_hard" @@ fun () ->
  Telemetry.Counter.incr c_hard;
  solve_impl ?suspect_threshold ~kind:"hard"
    ~component_solver:(solve_hard_component ?cg_max_iter ?should_stop ~observe)
    problem

let solve_soft ?suspect_threshold ?cg_max_iter ?should_stop ?(observe = false)
    ~lambda problem =
  if lambda <= 0. then
    invalid_arg "Resilient.solve_soft: lambda must be strictly positive";
  Telemetry.Span.with_ "gssl.resilient_soft" @@ fun () ->
  Telemetry.Counter.incr c_soft;
  solve_impl ?suspect_threshold ~kind:"soft"
    ~component_solver:
      (solve_soft_component ?cg_max_iter ?should_stop ~observe ~lambda)
    problem
