(** A transductive semi-supervised problem instance.

    Following the paper's convention, the first [n] vertices of the
    similarity graph carry observed responses [Y_1 … Y_n]; the remaining
    [m] vertices are the unlabeled data whose scores are to be estimated.
    Binary classification uses responses in {0, 1}; regression uses
    arbitrary bounded reals — the solvers are identical. *)

type t = private {
  graph : Graph.Weighted_graph.t;  (** similarity graph on all n+m points *)
  labels : Linalg.Vec.t;           (** responses of the first [n] vertices *)
}

val make : graph:Graph.Weighted_graph.t -> labels:Linalg.Vec.t -> t
(** Raises [Invalid_argument] when there are more labels than vertices,
    no labels at all, or any label is NaN/infinite (a single non-finite
    response would otherwise propagate into every prediction).
    [m = 0] (no unlabeled data) is allowed. *)

val make_unchecked : graph:Graph.Weighted_graph.t -> labels:Linalg.Vec.t -> t
(** Like {!make} but skips the label-finiteness check.  Intended for the
    fault-injection harness and {!Resilient}, which accept degenerate
    inputs on purpose; counting invariants are still enforced. *)

val of_points :
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:Kernel.Bandwidth.t ->
  labeled:(Linalg.Vec.t * float) array ->
  unlabeled:Linalg.Vec.t array ->
  t
(** Build the dense similarity graph from raw inputs.  The bandwidth rule
    is evaluated on the pooled inputs.  Raises [Invalid_argument] on
    empty labeled data or ragged dimensions. *)

val n_labeled : t -> int
val n_unlabeled : t -> int
val size : t -> int
(** [n + m]. *)

val labeled_indices : t -> int array
val unlabeled_indices : t -> int array

val blocks : t -> Linalg.Mat.t * Linalg.Mat.t * Linalg.Mat.t * Linalg.Mat.t
(** [(w11, w12, w21, w22)] — the 2×2 partition of the dense weight matrix
    at the labeled/unlabeled boundary, as in Section II of the paper. *)

val degrees : t -> Linalg.Vec.t
(** Full-graph degrees [d_i = Σ_{k=1}^{n+m} w_ik]. *)

val is_connected : t -> bool

val unlabeled_coupling : t -> Linalg.Vec.t
(** For each unlabeled vertex [a], the mass [Σ_{i ≤ n} w_{n+a,i}] linking
    it to the labeled set.  A zero entry means the hard criterion cannot
    see any label from that vertex (the system may be singular). *)
