module Vec = Linalg.Vec

let c_solves = Telemetry.Counter.make "gssl.scalable_solves"
let c_stationary_solves = Telemetry.Counter.make "gssl.scalable_stationary_solves"
let c_mg_solves = Telemetry.Counter.make "gssl.scalable_mg_solves"
let c_imputed = Telemetry.Counter.make "gssl.scalable_imputed"

let check_anchored problem =
  let comps = Graph.Connectivity.components problem.Problem.graph in
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let anchored = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    Hashtbl.replace anchored comps.(i) ()
  done;
  for v = n to total - 1 do
    if not (Hashtbl.mem anchored comps.(v)) then
      raise (Hard.Unanchored_unlabeled v)
  done

(* Fused form of the same system: A = diag(deg') − W₂₂ where deg'_v =
   d_v − w_vv folds the self-loop into the degree and W₂₂ holds only
   the off-diagonal unlabeled-block weights.  The solvers stream W₂₂
   through Csr.lap_mv / Stationary.solve_lap, so A is never assembled
   and each operator application is one pass with no intermediate
   vector. *)
let system_lap problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  let y = problem.Problem.labels in
  let coo = Sparse.Coo.create m m in
  let rhs = Vec.zeros m in
  let deg =
    Array.init m (fun a ->
        let v = n + a in
        d.(v) -. Graph.Weighted_graph.weight g v v)
  in
  Graph.Weighted_graph.iter_edges g (fun i j w ->
      if i >= n && j >= n then begin
        Sparse.Coo.add coo (i - n) (j - n) w;
        Sparse.Coo.add coo (j - n) (i - n) w
      end
      else if i < n && j >= n then rhs.(j - n) <- rhs.(j - n) +. (w *. y.(i))
      else if j < n && i >= n then rhs.(i - n) <- rhs.(i - n) +. (w *. y.(j)));
  (Sparse.Csr.of_coo coo, deg, rhs)

let system_csr problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  let y = problem.Problem.labels in
  let coo = Sparse.Coo.create m m in
  let rhs = Vec.zeros m in
  (* diagonal: full degree minus the self-loop weight *)
  for a = 0 to m - 1 do
    let v = n + a in
    Sparse.Coo.add coo a a (d.(v) -. Graph.Weighted_graph.weight g v v)
  done;
  (* off-diagonals and right-hand side from the edge list *)
  Graph.Weighted_graph.iter_edges g (fun i j w ->
      if i >= n && j >= n then begin
        Sparse.Coo.add coo (i - n) (j - n) (-.w);
        Sparse.Coo.add coo (j - n) (i - n) (-.w)
      end
      else if i < n && j >= n then rhs.(j - n) <- rhs.(j - n) +. (w *. y.(i))
      else if j < n && i >= n then rhs.(i - n) <- rhs.(i - n) +. (w *. y.(j)));
  (Sparse.Csr.of_coo coo, rhs)

(* Which unlabeled vertices live in a component that carries at least
   one label.  [mask.(a)] indexes the unlabeled block. *)
let anchored_mask problem =
  let comps = Graph.Connectivity.components problem.Problem.graph in
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let anchored = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    Hashtbl.replace anchored comps.(i) ()
  done;
  Array.init (total - n) (fun a -> Hashtbl.mem anchored comps.(n + a))

(* Restrict the fused system to the anchored unlabeled vertices.  Exact,
   not approximate: unanchored components share no edges with anchored
   ones, so dropping their rows/columns decouples nothing. *)
let restrict_system w22 deg b mask =
  let m = Array.length mask in
  let sel = Array.make m (-1) in
  let count = ref 0 in
  for a = 0 to m - 1 do
    if mask.(a) then begin
      sel.(a) <- !count;
      incr count
    end
  done;
  let ms = !count in
  let coo = Sparse.Coo.create ms ms in
  for a = 0 to m - 1 do
    if mask.(a) then
      Sparse.Csr.iter_row w22 a (fun c w ->
          if mask.(c) then Sparse.Coo.add coo sel.(a) sel.(c) w)
  done;
  let sdeg = Vec.zeros ms and sb = Vec.zeros ms in
  for a = 0 to m - 1 do
    if mask.(a) then begin
      sdeg.(sel.(a)) <- deg.(a);
      sb.(sel.(a)) <- b.(a)
    end
  done;
  (Sparse.Csr.of_coo coo, sdeg, sb, sel)

let solve_hard ?(tol = 1e-10) ?max_iter ?(observe = false)
    ?(precond = `Jacobi) ?should_stop ?(unanchored = `Raise) problem =
  Telemetry.Span.with_ "gssl.scalable_solve" @@ fun () ->
  Telemetry.Counter.incr c_solves;
  (match precond with
  | `Multigrid -> Telemetry.Counter.incr c_mg_solves
  | `Jacobi -> ());
  let m_all = Problem.n_unlabeled problem in
  if m_all = 0 then [||]
  else begin
    let mask =
      match unanchored with
      | `Raise ->
          check_anchored problem;
          Array.make m_all true
      | `Impute -> anchored_mask problem
    in
    let w22, deg, b = system_lap problem in
    let w22, deg, b, sel =
      if Array.for_all Fun.id mask then (w22, deg, b, None)
      else begin
        let w, d, rhs, sel = restrict_system w22 deg b mask in
        (w, d, rhs, Some sel)
      end
    in
    let m = Vec.dim b in
    let solution =
      if m = 0 then [||]
      else begin
        let op =
          Sparse.Linop.of_fun ~dim:m
            ~diag:(fun () ->
              let wd = Sparse.Csr.diagonal w22 in
              Array.init m (fun i -> deg.(i) -. wd.(i)))
            (fun x -> Sparse.Csr.lap_mv w22 ~deg x)
        in
        let precond_apply =
          match precond with
          | `Jacobi -> None
          | `Multigrid ->
              let mg = Sparse.Multigrid.build ~w:w22 ~diag:deg () in
              Some (Sparse.Multigrid.precondition mg)
        in
        if not observe then begin
          let out =
            Sparse.Cg.solve ~tol ?max_iter ?precond_apply ?should_stop op b
          in
          Sparse.Cg.ensure_converged op b out;
          out.Sparse.Cg.solution
        end
        else begin
          let out =
            Sparse.Cg.solve ~tol ?max_iter ?precond_apply ?should_stop op b
          in
          let convergence =
            Obs.Health.convergence ~iterations:out.Sparse.Cg.iterations
              ~final_residual:out.Sparse.Cg.residual_norm
              ~best_residual:out.Sparse.Cg.best_residual
              ~converged:out.Sparse.Cg.converged
          in
          let cond =
            (* matrix-free estimate: power iteration on the operator and on
               its inverse through an uncapped preconditioned CG solve *)
            Obs.Health.cond_estimate ~dim:(Vec.dim b)
              ~apply:op.Sparse.Linop.apply
              ~solve:(fun v ->
                (Sparse.Cg.solve ~precondition:true op v).Sparse.Cg.solution)
              ()
          in
          let rung =
            match precond with `Jacobi -> "cg" | `Multigrid -> "mg_cg"
          in
          let cert =
            Obs.Health.certify ~system:"gssl.scalable" ~rung ~cond ~convergence
              ~apply:op.Sparse.Linop.apply ~b out.Sparse.Cg.solution
          in
          Obs.Health.record cert;
          (* certificate recorded even when the solve failed; then enforce
             the same contract as the unobserved path *)
          Sparse.Cg.ensure_converged op b out;
          out.Sparse.Cg.solution
        end
      end
    in
    match sel with
    | None -> solution
    | Some sel ->
        (* unanchored vertices carry no information from the labels: fill
           them with the labeled mean, the hard criterion's degenerate
           limit for an unanchored component (Prop II.2) *)
        let ybar = Stats.Descriptive.mean problem.Problem.labels in
        let out =
          Array.init m_all (fun a ->
              if sel.(a) >= 0 then solution.(sel.(a))
              else begin
                Telemetry.Counter.incr c_imputed;
                ybar
              end)
        in
        out
  end

let solve ?tol ?max_iter ?observe problem =
  solve_hard ?tol ?max_iter ?observe problem

let solve_stationary ?(tol = 1e-10) ?max_iter method_ problem =
  Telemetry.Span.with_ "gssl.scalable_stationary_solve" @@ fun () ->
  Telemetry.Counter.incr c_stationary_solves;
  if Problem.n_unlabeled problem = 0 then [||]
  else begin
    check_anchored problem;
    let w22, deg, b = system_lap problem in
    let out = Sparse.Stationary.solve_lap ~tol ?max_iter method_ ~w:w22 ~deg b in
    if not out.Sparse.Stationary.converged then
      failwith
        (Printf.sprintf
           "Scalable.solve_stationary: no convergence after %d iterations"
           out.Sparse.Stationary.iterations);
    out.Sparse.Stationary.solution
  end
