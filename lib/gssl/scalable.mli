(** Scalable sparse-graph path for the hard criterion.

    {!Hard.solve} materialises a dense m×m system even when the graph is
    a sparse kNN/ε graph; this module assembles the system directly in
    CSR form and solves it with (preconditioned) CG, so cost scales with
    the number of edges instead of m².  Intended for problems built from
    {!Kernel.Similarity.knn} / {!Kernel.Similarity.epsilon} graphs. *)

val system_csr : Problem.t -> Sparse.Csr.t * Linalg.Vec.t
(** The m×m CSR system matrix [D₂₂ − W₂₂] and the right-hand side
    [W₂₁ Y], assembled from the graph's edge list without densifying. *)

val system_lap : Problem.t -> Sparse.Csr.t * Linalg.Vec.t * Linalg.Vec.t
(** The same system in fused form [(W₂₂, deg', W₂₁ Y)] with
    [deg'_v = d_v − w_vv]: the matrix [diag(deg') − W₂₂] is what
    {!system_csr} assembles, but here it stays implicit so the solvers
    can stream it through {!Sparse.Csr.lap_mv} /
    {!Sparse.Stationary.solve_lap} in one pass per application. *)

val solve :
  ?tol:float -> ?max_iter:int -> ?observe:bool -> Problem.t -> Linalg.Vec.t
(** Hard-criterion scores on the unlabeled block via CG on the CSR
    system ([tol] default 1e-10).  Raises {!Hard.Unanchored_unlabeled}
    when some unlabeled component carries no label, [Failure] on CG
    non-convergence.

    [~observe:true] (default false) records an [Obs.Health] certificate
    (recomputed residual, matrix-free condition estimate, CG convergence
    summary) — on a failed solve the certificate is recorded {e before}
    the [Failure] is raised, so the stagnation evidence survives. *)

val solve_hard :
  ?tol:float ->
  ?max_iter:int ->
  ?observe:bool ->
  ?precond:[ `Jacobi | `Multigrid ] ->
  ?should_stop:(unit -> bool) ->
  ?unanchored:[ `Raise | `Impute ] ->
  Problem.t ->
  Linalg.Vec.t
(** The full-control hard-criterion solve ({!solve} is this with all
    defaults).

    [precond] selects the CG preconditioner: [`Jacobi] (default, the
    operator diagonal) or [`Multigrid] — a symmetric V-cycle over a
    heavy-edge coarsening hierarchy ({!Sparse.Multigrid}), built once
    per call and plugged into [Cg.solve ~precond_apply], so the
    cooperative-abort hook ([should_stop], how per-request deadlines
    reach a running solve) and the [cg.solve] trace spans behave
    identically under both preconditioners.

    [unanchored] selects the policy for unlabeled components carrying
    no label: [`Raise] (default) raises {!Hard.Unanchored_unlabeled}
    like {!solve}; [`Impute] solves the anchored subsystem exactly
    (unanchored components share no edges with it, so the restriction
    loses nothing) and fills unanchored vertices with the labeled mean —
    the hard criterion's degenerate limit for such components
    (Prop II.2).  Imputed vertices are counted on
    [gssl.scalable_imputed]; multigrid solves on
    [gssl.scalable_mg_solves]. *)

val solve_stationary :
  ?tol:float -> ?max_iter:int -> Sparse.Stationary.method_ -> Problem.t -> Linalg.Vec.t
(** Same system solved by a stationary iteration (Jacobi = classic label
    propagation, Gauss–Seidel, SOR) on the CSR matrix. *)
