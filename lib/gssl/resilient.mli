(** Total front-end for the hard and soft criteria.

    {!Hard.solve} raises on unanchored components, {!Soft.solve} fails on
    numerically singular systems, and both silently propagate NaN from
    poisoned inputs.  This module makes the solve total: it scans the
    input ({!Robust.Check.scan}), sanitises non-finite labels and
    non-finite/negative weights, partitions the graph into connected
    components, solves each anchored component independently through the
    {!Robust.Solve} fallback chains, and fills unanchored components with
    the global labeled mean — the soft criterion's λ→∞ limit
    (Proposition II.2), i.e. the best constant prediction available when
    no label can reach a vertex.

    Every repair and degradation is reported in the returned
    {!report}: input faults and imputations as diagnostics, solver
    escalations as [Solver_fallback] diagnostics (also visible as
    [robust.fallback.*] telemetry counters). *)

type report = {
  predictions : Linalg.Vec.t;
      (** Scores on the unlabeled vertices in graph order [n … n+m−1]
          (same convention as {!Hard.solve}); always entrywise finite. *)
  diagnostics : Robust.Check.diagnostic list;
      (** Input-scan findings followed by solve-time events, in order. *)
  imputed : int array;
      (** Global vertex ids whose prediction is the labeled mean rather
          than a solver output (unanchored, or clamped non-finite). *)
  n_components : int;  (** connected components over sanitised weights *)
  n_anchored : int;    (** components containing at least one label *)
  rungs : (int * string) list;
      (** For each solved component id, the fallback-chain rung that
          produced its solution (e.g. ["cholesky"], ["cg"],
          ["dense_direct:qr"]). *)
  rung_ms : (int * (string * float) list) list;
      (** For each solved component id, cumulative wall milliseconds per
          fallback rung entered (see {!Robust.Solve.type-outcome}
          [timings]) — the breakdown deadline accounting needs to say
          where a request's budget was spent. *)
  certificates : (int * Obs.Health.t) list;
      (** With [~observe:true]: one health certificate per solved
          component, in solve order — recomputed residual against the
          component system, condition estimate, and the CG
          convergence/stagnation summary of the fallback chain (a chain
          whose last CG attempt failed is flagged stagnated even when a
          later rung produced the answer).  Empty otherwise. *)
  aborted : bool;
      (** Some component solve was cut short by [should_stop] (deadline
          expiry / cancellation): the affected predictions are best
          partial iterates, not converged answers. *)
}

val solve_hard :
  ?suspect_threshold:float ->
  ?cg_max_iter:int ->
  ?should_stop:(unit -> bool) ->
  ?observe:bool ->
  Problem.t ->
  report
(** Hard-criterion scores.  Never raises on degenerate data: NaN/infinite
    or negative weights are treated as absent edges, non-finite labels as
    missing (excluded from the mean, their vertices still constrained by
    the remaining labels' graph structure), and unanchored vertices are
    imputed.  [suspect_threshold] enables the leave-one-out label scan
    (see {!Robust.Check.scan}); [cg_max_iter] caps each CG attempt on
    sparse graphs, forcing the chain to escalate when too small.
    [~observe:true] (default false) records an [Obs.Health] certificate
    per solved component (returned in [certificates] and appended to
    the global certificate log); imputations additionally emit
    ["resilient.impute"] flight-recorder events.  [should_stop] is
    threaded into every component's fallback chain (polled each CG
    iteration and at rung boundaries); when it fires the report comes
    back with [aborted = true] and best-effort predictions. *)

val solve_soft :
  ?suspect_threshold:float ->
  ?cg_max_iter:int ->
  ?should_stop:(unit -> bool) ->
  ?observe:bool ->
  lambda:float ->
  Problem.t ->
  report
(** Soft-criterion scores on the unlabeled block, component-wise.
    Raises [Invalid_argument] when [lambda <= 0] — API misuse, not a
    data fault (Proposition II.1 identifies λ→0 with the hard
    criterion; use {!solve_hard}). *)
