type series = {
  label : string;
  xs : float array;
  means : float array;
  stderrs : float array;
}

type figure_result = {
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

let replicate ~seed ~reps f =
  if reps < 1 then invalid_arg "Sweep.replicate: need reps >= 1";
  let master = Prng.Rng.create seed in
  let acc = Stats.Running.create () in
  for k = 0 to reps - 1 do
    Stats.Running.add acc (f (Prng.Rng.substream master k))
  done;
  acc

let replicate_multi ~seed ~reps ~labels f =
  if reps < 1 then invalid_arg "Sweep.replicate_multi: need reps >= 1";
  let master = Prng.Rng.create seed in
  let accs = List.map (fun l -> (l, Stats.Running.create ())) labels in
  for k = 0 to reps - 1 do
    let values = f (Prng.Rng.substream master k) in
    if List.length values <> List.length labels then
      failwith "Sweep.replicate_multi: wrong number of measurements";
    List.iter2 (fun (_, acc) v -> Stats.Running.add acc v) accs values
  done;
  accs

let grid ~seed ~reps ~xs ~labels f =
  if reps < 1 then invalid_arg "Sweep.grid: need reps >= 1";
  let master = Prng.Rng.create seed in
  let n_x = List.length xs in
  let xs_arr = Array.of_list xs in
  (* per-label accumulator matrix: label -> grid index -> Running.t *)
  let accs =
    List.map (fun l -> (l, Array.init n_x (fun _ -> Stats.Running.create ()))) labels
  in
  List.iteri
    (fun i x ->
      for k = 0 to reps - 1 do
        let rng = Prng.Rng.substream master ((i * 1_000_003) + k) in
        let values = f ~x rng in
        if List.length values <> List.length labels then
          failwith "Sweep.grid: wrong number of measurements";
        List.iter2 (fun (_, row) v -> Stats.Running.add row.(i) v) accs values
      done)
    xs;
  List.map
    (fun (label, row) ->
      {
        label;
        xs = Array.copy xs_arr;
        means = Array.map Stats.Running.mean row;
        stderrs =
          Array.map
            (fun acc ->
              if Stats.Running.count acc >= 2 then Stats.Running.standard_error acc
              else 0.)
            row;
      })
    accs

let grid_parallel ?domains ~seed ~reps ~xs ~labels f =
  (match domains with
  | Some d when d < 1 -> invalid_arg "Sweep.grid_parallel: need domains >= 1"
  | _ -> ());
  if reps < 1 then invalid_arg "Sweep.grid_parallel: need reps >= 1";
  let run_on pool =
    let master = Prng.Rng.create seed in
    let xs_arr = Array.of_list xs in
    let n_x = Array.length xs_arr in
    let n_tasks = n_x * reps in
    (* each cell is written by exactly one task, so the plain array is
       race-free; results are merged afterwards in a fixed order *)
    let results : float list option array = Array.make n_tasks None in
    Parallel.Pool.parallel_for ~grain:1 pool n_tasks (fun lo hi ->
        for t = lo to hi - 1 do
          let i = t / reps and k = t mod reps in
          let rng = Prng.Rng.substream master ((i * 1_000_003) + k) in
          results.(t) <- Some (f ~x:xs_arr.(i) rng)
        done);
    (* merge in the same (i, k) order as the sequential grid *)
    let accs =
      List.map (fun l -> (l, Array.init n_x (fun _ -> Stats.Running.create ()))) labels
    in
    for i = 0 to n_x - 1 do
      for k = 0 to reps - 1 do
        match results.((i * reps) + k) with
        | None -> failwith "Sweep.grid_parallel: missing cell"
        | Some values ->
            if List.length values <> List.length labels then
              failwith "Sweep.grid_parallel: wrong number of measurements";
            List.iter2 (fun (_, row) v -> Stats.Running.add row.(i) v) accs values
      done
    done;
    List.map
      (fun (label, row) ->
        {
          label;
          xs = Array.copy xs_arr;
          means = Array.map Stats.Running.mean row;
          stderrs =
            Array.map
              (fun acc ->
                if Stats.Running.count acc >= 2 then
                  Stats.Running.standard_error acc
                else 0.)
              row;
        })
      accs
  in
  match domains with
  | Some 1 -> grid ~seed ~reps ~xs ~labels f
  | Some d -> Parallel.Pool.with_pool ~domains:d run_on
  | None ->
      let pool = Parallel.Pool.get_default () in
      if Parallel.Pool.size pool = 1 then grid ~seed ~reps ~xs ~labels f
      else run_on pool
