(** Replicated parameter sweeps with independent random streams.

    A sweep evaluates a measurement function at every grid point, [reps]
    times, each replicate on its own SplitMix-derived stream of the
    master seed — so results are bit-reproducible and independent of
    evaluation order. *)

type series = {
  label : string;
  xs : float array;
  means : float array;
  stderrs : float array;
}

type figure_result = {
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

val replicate : seed:int -> reps:int -> (Prng.Rng.t -> float) -> Stats.Running.t
(** Run the measurement [reps] times on independent streams; raises
    [Invalid_argument] when [reps < 1]. *)

val replicate_multi :
  seed:int -> reps:int -> labels:string list -> (Prng.Rng.t -> float list) ->
  (string * Stats.Running.t) list
(** Measurements that share expensive per-replicate state (e.g. all λ
    values on one drawn dataset): the function returns one value per
    label, in order.  Raises [Failure] if a replicate returns the wrong
    number of values. *)

val grid :
  seed:int ->
  reps:int ->
  xs:float list ->
  labels:string list ->
  (x:float -> Prng.Rng.t -> float list) ->
  series list
(** Full grid: for each [x], replicate the multi-measurement; assemble
    one series per label.  Replicate [k] at grid index [i] uses stream
    [derive seed (i * 1_000_003 + k)]. *)

val grid_parallel :
  ?domains:int ->
  seed:int ->
  reps:int ->
  xs:float list ->
  labels:string list ->
  (x:float -> Prng.Rng.t -> float list) ->
  series list
(** Same grid evaluated on the {!Parallel.Pool}: [Some d] runs on a
    fresh [d]-domain pool, [None] (the default) borrows the process-wide
    default pool (sized by [GSSL_DOMAINS] / the CLI [--domains] knob).
    Because every (grid point, replicate) cell has its own derived
    stream and the merge order is fixed, the result is bit-identical to
    {!grid} regardless of [domains] — and because the work goes through
    the pool, sweeps over solvers that themselves parallelize cannot
    oversubscribe the machine (nested [parallel_for] runs inline).  The
    measurement closure must not touch shared mutable state.  Raises
    [Invalid_argument] when [domains < 1]. *)
