(** Global telemetry switch and registry.

    Telemetry is off by default; every probe in the codebase
    ({!Counter.add}, {!Span.with_}, {!Trace.record}) degrades to a single
    branch on {!is_enabled} when disabled, so instrumented code runs at
    full speed unless a caller opts in. *)

val enabled : bool ref
(** Exposed so probes can inline the check; treat as read-only outside
    this library and use {!enable}/{!disable} to flip it. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter, span statistic, and trace. *)

val on_reset : (unit -> unit) -> unit
(** Register a hook run by {!reset}.  Used by the sibling modules; user
    code rarely needs it. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run the thunk with telemetry enabled, restoring the previous state
    afterwards (also on exceptions).  Does not reset any metric. *)

val with_disabled : (unit -> 'a) -> 'a
(** Dual of {!with_enabled}: temporarily silence all probes. *)
