(** Hierarchical wall-clock spans.

    [with_ "solve" f] times [f] and accumulates {count, total, max} under
    the span's path.  Paths nest: a span opened while another is running
    records under ["outer/inner"], so a report shows where time went
    layer by layer.  When {!Registry.is_enabled} is false [with_ name f]
    is exactly [f ()].

    {b Clock caveat.}  Timestamps come from [Unix.gettimeofday], which is
    the {e wall} clock, not a monotonic one: NTP adjustments or manual
    clock changes can move it backwards mid-span, so a stop reading may
    precede the start reading.  Durations are therefore clamped to zero —
    a span can under-report but never reports a negative duration.  The
    clamp is unit-tested via {!set_time_source}. *)

type stat = {
  mutable count : int;
  mutable total_ns : float;
  mutable max_ns : float;
}

val with_ : string -> (unit -> 'a) -> 'a
(** Time the thunk under the given span name (exceptions still close and
    record the span). *)

val stat : string -> stat option
(** Look up accumulated statistics by full path, e.g. ["outer/inner"].
    The returned record is a copy-free alias; treat it as read-only. *)

val count : string -> int
val total_ns : string -> float
val total_ms : string -> float

val snapshot : unit -> (string * stat) list
(** All spans, sorted by path; the stats are copies. *)

val now_ns : unit -> float
(** Current reading of the span clock, in nanoseconds.  Uses the
    injected time source when one is set (see {!set_time_source}). *)

val set_time_source : (unit -> float) option -> unit
(** Replace the clock with a fake (a function returning nanoseconds);
    [None] restores [Unix.gettimeofday].  Test-only: lets a unit test
    simulate a wall clock stepping backwards between span start and stop
    and assert the duration clamps to 0. *)

val on_complete : (string -> float -> float -> unit) -> unit
(** [on_complete f] registers [f path start_ns duration_ns] to run each
    time a span finishes recording (only while telemetry is enabled).
    Listeners are permanent for the process lifetime and must not raise;
    exceptions they do raise are swallowed.  Used by [Obs.Chrome_trace]
    and [Obs.Histogram]. *)
