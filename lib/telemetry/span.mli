(** Hierarchical wall-clock spans.

    [with_ "solve" f] times [f] and accumulates {count, total, max} under
    the span's path.  Paths nest: a span opened while another is running
    records under ["outer/inner"], so a report shows where time went
    layer by layer.  Durations are clamped to be non-negative, and when
    {!Registry.is_enabled} is false [with_ name f] is exactly [f ()]. *)

type stat = {
  mutable count : int;
  mutable total_ns : float;
  mutable max_ns : float;
}

val with_ : string -> (unit -> 'a) -> 'a
(** Time the thunk under the given span name (exceptions still close and
    record the span). *)

val stat : string -> stat option
(** Look up accumulated statistics by full path, e.g. ["outer/inner"].
    The returned record is a copy-free alias; treat it as read-only. *)

val count : string -> int
val total_ns : string -> float
val total_ms : string -> float

val snapshot : unit -> (string * stat) list
(** All spans, sorted by path; the stats are copies. *)
