(* Counters are [Atomic.t] cells so concurrent kernels (domain-pool
   chunks incrementing linalg.flops / sparse.matvecs from several
   domains at once) keep exact counts; the uncontended fetch-and-add is
   a few ns, invisible next to the O(n^2)/O(n^3) bodies it meters. *)

type t = { name : string; value : int Atomic.t }

let table : (string, t) Hashtbl.t = Hashtbl.create 64

(* [make] can race with itself when instrumented libraries initialise on
   several domains; the lock keeps find-or-create atomic.  The hot path
   (add/incr) never touches the table. *)
let table_lock = Mutex.create ()

let reset_all () =
  Mutex.lock table_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) table;
  Mutex.unlock table_lock

let () = Registry.on_reset reset_all

(* [make] is idempotent: instrumented modules call it at initialisation
   time and hold the handle, so the hot path is an atomic add with no
   hashtable lookup. *)
let make name =
  Mutex.lock table_lock;
  let c =
    match Hashtbl.find_opt table name with
    | Some c -> c
    | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.add table name c;
        c
  in
  Mutex.unlock table_lock;
  c

let add c k =
  if !Registry.enabled then ignore (Atomic.fetch_and_add c.value k)

let incr c = add c 1
let name c = c.name
let value c = Atomic.get c.value

let get name =
  Mutex.lock table_lock;
  let v =
    match Hashtbl.find_opt table name with
    | Some c -> Atomic.get c.value
    | None -> 0
  in
  Mutex.unlock table_lock;
  v

let snapshot () =
  Mutex.lock table_lock;
  let all =
    Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.value) :: acc) table []
  in
  Mutex.unlock table_lock;
  List.sort compare all
