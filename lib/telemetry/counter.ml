type t = { name : string; mutable value : int }

let table : (string, t) Hashtbl.t = Hashtbl.create 64

let reset_all () = Hashtbl.iter (fun _ c -> c.value <- 0) table
let () = Registry.on_reset reset_all

(* [make] is idempotent: instrumented modules call it at initialisation
   time and hold the handle, so the hot path is a field update with no
   hashtable lookup. *)
let make name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
      let c = { name; value = 0 } in
      Hashtbl.add table name c;
      c

let add c k = if !Registry.enabled then c.value <- c.value + k
let incr c = add c 1
let name c = c.name
let value c = c.value

let get name =
  match Hashtbl.find_opt table name with Some c -> c.value | None -> 0

let snapshot () =
  Hashtbl.fold (fun _ c acc -> (c.name, c.value) :: acc) table []
  |> List.sort compare
