(** Named float series — e.g. the per-iteration CG residual trace.

    [record] is a no-op while telemetry is disabled; readers always see
    the recorded values in chronological order. *)

val record : string -> float -> unit
val get : string -> float array
val length : string -> int
val last : string -> float option
val snapshot : unit -> (string * float array) list
