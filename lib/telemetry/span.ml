type stat = { mutable count : int; mutable total_ns : float; mutable max_ns : float }

let table : (string, stat) Hashtbl.t = Hashtbl.create 32

(* The stat table and the completion listeners are shared across domains
   (a sweep worker may open spans of its own); both are serialised by
   locks.  Contention is irrelevant — spans wrap whole solves, not inner
   loops. *)
let table_lock = Mutex.create ()
let notify_lock = Mutex.create ()

(* Stack of *full paths* of the spans currently open **on this domain**;
   the head is the parent path for the next [with_].  Nesting "solve"
   inside "bench" therefore records under "bench/solve".  Domain-local
   so concurrent spans on different domains do not splice into each
   other's paths. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let () =
  Registry.on_reset (fun () ->
      Mutex.lock table_lock;
      Hashtbl.reset table;
      Mutex.unlock table_lock;
      (* only the resetting domain's stack can be cleared; worker stacks
         are short-lived and die with their tasks *)
      Domain.DLS.get stack_key := [])

(* Wall clock, not monotonic: an NTP step can make a later reading
   smaller than an earlier one, which is why durations are clamped to
   zero below.  The source is swappable so tests can simulate exactly
   that backwards jump. *)
let system_now_ns () = Unix.gettimeofday () *. 1e9
let time_source = ref system_now_ns

let set_time_source = function
  | Some f -> time_source := f
  | None -> time_source := system_now_ns

let now_ns () = !time_source ()

(* Completion listeners receive (path, start_ns, duration_ns) for every
   recorded span; they power the Chrome-trace capture and the latency
   histograms without either living in this module. *)
let listeners : (string -> float -> float -> unit) list ref = ref []
let on_complete f = listeners := f :: !listeners

let notify path t0 dt =
  Mutex.lock notify_lock;
  List.iter (fun f -> try f path t0 dt with _ -> ()) !listeners;
  Mutex.unlock notify_lock

let record path dt =
  Mutex.lock table_lock;
  let s =
    match Hashtbl.find_opt table path with
    | Some s -> s
    | None ->
        let s = { count = 0; total_ns = 0.; max_ns = 0. } in
        Hashtbl.add table path s;
        s
  in
  s.count <- s.count + 1;
  s.total_ns <- s.total_ns +. dt;
  if dt > s.max_ns then s.max_ns <- dt;
  Mutex.unlock table_lock

let with_ name f =
  if not !Registry.enabled then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let path =
      match !stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    stack := path :: !stack;
    let t0 = now_ns () in
    let finish () =
      (* guard against a [Registry.reset] that emptied the stack mid-span *)
      (match !stack with [] -> () | _ :: tl -> stack := tl);
      let dt = Float.max 0. (now_ns () -. t0) in
      record path dt;
      notify path t0 dt
    in
    Fun.protect ~finally:finish f
  end

let stat path =
  Mutex.lock table_lock;
  let s =
    match Hashtbl.find_opt table path with
    | Some s -> Some { count = s.count; total_ns = s.total_ns; max_ns = s.max_ns }
    | None -> None
  in
  Mutex.unlock table_lock;
  s

let count path = match stat path with Some s -> s.count | None -> 0
let total_ns path = match stat path with Some s -> s.total_ns | None -> 0.
let total_ms path = total_ns path /. 1e6

let snapshot () =
  Mutex.lock table_lock;
  let all =
    Hashtbl.fold
      (fun path s acc ->
        (path, { count = s.count; total_ns = s.total_ns; max_ns = s.max_ns })
        :: acc)
      table []
  in
  Mutex.unlock table_lock;
  List.sort compare all
