(* Global on/off switch plus reset hooks.  The sibling modules (Counter,
   Span, Trace) register a hook here at module-initialisation time so that
   [reset] clears every metric in one call.

   The switch is a plain bool ref: instrumentation sites pay one load and
   one branch when telemetry is disabled, which keeps the disabled-mode
   overhead unmeasurable next to the O(n^2)/O(n^3) work they wrap. *)

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let reset_hooks : (unit -> unit) list ref = ref []
let on_reset f = reset_hooks := f :: !reset_hooks
let reset () = List.iter (fun f -> f ()) !reset_hooks

let with_enabled f =
  let was = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := was) f

let with_disabled f =
  let was = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := was) f
