(* Text and JSON rendering of the registry, plus a small JSON reader for
   the subset this module emits (used by the bench smoke test and the
   round-trip unit tests; no external JSON dependency). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ---------------- rendering ---------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          (* Control bytes must be escaped; bytes >= 0x7f are escaped too
             so arbitrary (possibly non-UTF-8) name bytes still yield
             pure-ASCII, always-valid JSON.  The parser below reverses
             the mapping for codes < 256. *)
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec render_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
      (* NaN / infinities are not valid JSON *)
      if Float.is_finite v then Buffer.add_string buf (number_to_string v)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          render_to buf v)
        fields;
      Buffer.add_char buf '}'

let render j =
  let buf = Buffer.create 256 in
  render_to buf j;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* Codes up to 0xff decode back to the raw byte (the
                   emitter writes every byte >= 0x7f as \u00XX, so this
                   makes arbitrary byte strings round-trip); higher code
                   points become '?'. *)
                Buffer.add_char buf (if code < 256 then Char.chr code else '?');
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let parse_field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = parse_field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_int = function Num v -> Some (int_of_float v) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

(* ---------------- registry snapshots ---------------- *)

let counters_json () =
  Obj
    (List.map
       (fun (name, v) -> (name, Num (float_of_int v)))
       (Counter.snapshot ()))

let spans_json () =
  Obj
    (List.map
       (fun (path, s) ->
         ( path,
           Obj
             [
               ("count", Num (float_of_int s.Span.count));
               ("total_ms", Num (s.Span.total_ns /. 1e6));
               ("max_ms", Num (s.Span.max_ns /. 1e6));
             ] ))
       (Span.snapshot ()))

let traces_json () =
  Obj
    (List.map
       (fun (name, values) ->
         (name, Arr (Array.to_list (Array.map (fun v -> Num v) values))))
       (Trace.snapshot ()))

let to_json_value () =
  Obj
    [
      ("enabled", Bool (Registry.is_enabled ()));
      ("counters", counters_json ());
      ("spans", spans_json ());
      ("traces", traces_json ());
    ]

let to_json () = render (to_json_value ())

let to_text () =
  let buf = Buffer.create 512 in
  let counters = Counter.snapshot () in
  let spans = Span.snapshot () in
  let traces = Trace.snapshot () in
  Buffer.add_string buf "== telemetry report ==\n";
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) ->
        if v <> 0 then Buffer.add_string buf (Printf.sprintf "  %-36s %12d\n" name v))
      counters
  end;
  if spans <> [] then begin
    Buffer.add_string buf "spans (total ms | calls | max ms):\n";
    List.iter
      (fun (path, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-36s %10.3f | %6d | %9.3f\n" path
             (s.Span.total_ns /. 1e6) s.Span.count (s.Span.max_ns /. 1e6)))
      spans
  end;
  if traces <> [] then begin
    Buffer.add_string buf "traces (points, last value):\n";
    List.iter
      (fun (name, values) ->
        let k = Array.length values in
        let last = if k = 0 then Float.nan else values.(k - 1) in
        Buffer.add_string buf (Printf.sprintf "  %-36s %6d points, last %.3g\n" name k last))
      traces
  end;
  if counters = [] && spans = [] && traces = [] then
    Buffer.add_string buf "  (empty)\n";
  Buffer.contents buf
