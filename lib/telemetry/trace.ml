(* Named series of floats, stored newest-first internally.  A lock keeps
   concurrent recorders (e.g. CG residual traces from sweep workers on
   several domains) from corrupting the table; per-series ordering is
   whatever the domain interleaving produced. *)

let table : (string, float list ref) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let () =
  Registry.on_reset (fun () ->
      Mutex.lock lock;
      Hashtbl.reset table;
      Mutex.unlock lock)

let record name v =
  if !Registry.enabled then begin
    Mutex.lock lock;
    (match Hashtbl.find_opt table name with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add table name (ref [ v ]));
    Mutex.unlock lock
  end

let get name =
  Mutex.lock lock;
  let out =
    match Hashtbl.find_opt table name with
    | Some l -> Array.of_list (List.rev !l)
    | None -> [||]
  in
  Mutex.unlock lock;
  out

let length name =
  Mutex.lock lock;
  let n =
    match Hashtbl.find_opt table name with Some l -> List.length !l | None -> 0
  in
  Mutex.unlock lock;
  n

let last name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt table name with
    | Some { contents = v :: _ } -> Some v
    | _ -> None
  in
  Mutex.unlock lock;
  v

let snapshot () =
  Mutex.lock lock;
  let all =
    Hashtbl.fold
      (fun name l acc -> (name, Array.of_list (List.rev !l)) :: acc)
      table []
  in
  Mutex.unlock lock;
  List.sort compare all
