(* Named series of floats, stored newest-first internally. *)

let table : (string, float list ref) Hashtbl.t = Hashtbl.create 16

let () = Registry.on_reset (fun () -> Hashtbl.reset table)

let record name v =
  if !Registry.enabled then
    match Hashtbl.find_opt table name with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add table name (ref [ v ])

let get name =
  match Hashtbl.find_opt table name with
  | Some l -> Array.of_list (List.rev !l)
  | None -> [||]

let length name =
  match Hashtbl.find_opt table name with Some l -> List.length !l | None -> 0

let last name =
  match Hashtbl.find_opt table name with
  | Some { contents = v :: _ } -> Some v
  | _ -> None

let snapshot () =
  Hashtbl.fold (fun name l acc -> (name, Array.of_list (List.rev !l)) :: acc) table []
  |> List.sort compare
