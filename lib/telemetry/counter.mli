(** Named monotonic counters (flops, matvecs, solver iterations, ...).

    Handles are created once at module-initialisation time with {!make};
    incrementing through a handle is a branch plus an integer store, and a
    no-op while {!Registry.is_enabled} is false. *)

type t

val make : string -> t
(** Find-or-create the counter with this name (idempotent: two [make]s of
    the same name share one cell). *)

val incr : t -> unit
val add : t -> int -> unit
val name : t -> string

val value : t -> int
(** Current value (reads are always live, even when disabled). *)

val get : string -> int
(** Value by name; 0 when no such counter has been created. *)

val snapshot : unit -> (string * int) list
(** All counters, sorted by name. *)

val reset_all : unit -> unit
