(** Text and JSON export of the telemetry registry.

    The JSON reader ({!parse}) handles the subset of JSON this module
    emits — objects, arrays, strings, finite numbers, booleans, null —
    so reports can be round-tripped (and the bench smoke test can assert
    its own output parses) without an external JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val render : json -> string
(** Compact (single-line) JSON.  Output is pure ASCII: control bytes and
    every byte >= 0x7f in strings are escaped as [\u00XX], so names
    containing quotes, backslashes, or arbitrary non-ASCII bytes always
    produce valid JSON. *)

val parse : string -> json
(** Raises {!Parse_error} on malformed input.  [\uXXXX] escapes with
    code < 256 decode to the raw byte (making {!render} round-trip
    exactly); higher code points decode to ['?']. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float : json -> float option
val to_int : json -> int option
val to_str : json -> string option
val to_bool : json -> bool option

val to_json_value : unit -> json
(** Snapshot of the whole registry:
    [{"enabled": ..., "counters": {...}, "spans": {...}, "traces": {...}}].
    Span statistics are reported as [{count, total_ms, max_ms}]. *)

val to_json : unit -> string
val to_text : unit -> string
(** Human-readable report: nonzero counters, span table, trace sizes. *)
