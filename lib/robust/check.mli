(** Structured input validation for solver problems.

    Production inputs arrive with NaN weights from broken feature
    pipelines, negative similarities from buggy kernels, and labels that
    never touch some graph component.  Instead of letting each solver
    discover these conditions by raising (or worse, by silently
    propagating NaN into every prediction), {!scan} reports them as a
    structured [diagnostic list] that callers can log, export, or act
    on.  The resilient front-end ({!Gssl.Resilient}) consumes the same
    vocabulary to explain what it repaired and where it degraded. *)

type diagnostic =
  | Non_finite_weight of { i : int; j : int }
      (** [w_ij] is NaN or infinite. *)
  | Negative_weight of { i : int; j : int; value : float }
      (** [w_ij < 0] — not a similarity. *)
  | Self_loop of { vertex : int; weight : float }
      (** [w_ii > 0].  Common (RBF similarity has [w_ii = 1]) and
          harmless to the solvers, hence severity [Info]. *)
  | Non_finite_label of { index : int }
      (** Observed response is NaN or infinite. *)
  | Suspect_label of { index : int; value : float; loo_estimate : float }
      (** The label disagrees with its leave-one-out neighbourhood
          estimate by more than the scan threshold — a likely flip. *)
  | Unanchored_vertex of { vertex : int }
      (** Unlabeled vertex whose connected component (over finite,
          positive weights) contains no label: the hard criterion is
          singular there. *)
  | Solver_fallback of { system : string; abandoned : string; reason : string }
      (** A solve-time event: rung [abandoned] of a fallback chain was
          given up for [reason] while solving [system]. *)
  | Imputed_prediction of { vertex : int; value : float }
      (** The resilient front-end substituted [value] (the global
          labeled mean) for this vertex's prediction. *)
  | Deadline_expired of { elapsed_ms : float; budget_ms : float }
      (** A solve-time event: the request's deadline budget ran out
          mid-solve and the work was aborted cooperatively.  Never
          emitted by {!scan} (it is not an input property) — the serving
          layer ({!Serve.Engine}) attaches it to responses whose solve
          was cut short, and {!Robust.Fault.detects} pairs it with the
          latency-stall injector. *)

type severity = Info | Warning | Error

val severity : diagnostic -> severity
(** [Self_loop] is [Info]; [Suspect_label], [Solver_fallback] and
    [Deadline_expired] are [Warning]; everything else is [Error]. *)

val class_name : diagnostic -> string
(** Stable kebab-case class tag, e.g. ["non-finite-weight"]. *)

val describe : diagnostic -> string
(** One-line human-readable description. *)

val scan :
  ?suspect_threshold:float ->
  Graph.Weighted_graph.t ->
  Linalg.Vec.t ->
  diagnostic list
(** [scan graph labels] inspects every stored weight, every label, and
    the component structure (computed over finite positive weights, so a
    NaN or negative edge does not anchor anything).  Never raises on
    degenerate data.

    [suspect_threshold] additionally enables the leave-one-out label
    scan: labeled vertex [i] is flagged when its weighted-neighbour
    estimate differs from [y_i] by more than the threshold.  Off by
    default because it is a statistical test, not an invariant.

    While telemetry is enabled, each diagnostic is also mirrored into
    the [Obs.Event] flight recorder as a ["check.<class>"] event with
    matching severity. *)
