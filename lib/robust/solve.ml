module Vec = Linalg.Vec
module Mat = Linalg.Mat

type dense_rung = Cholesky | Lu_refined | Qr | Ridge

type sparse_rung =
  | Cg
  | Cg_restarted
  | Gauss_seidel
  | Dense_direct of dense_rung

type escalation = { abandoned : string; reason : string }

type 'rung outcome = {
  solution : Vec.t;
  rung : 'rung;
  escalations : escalation list;
  cg_attempts : Sparse.Cg.outcome list;
  timings : (string * float) list;
  aborted : bool;
}

(* Satellite of the flight recorder: every escalation also lands as a
   structured event carrying the failure reason of the abandoned rung,
   so a post-mortem can read the rung sequence in order. *)
let emit_escalation ~chain abandoned reason =
  Obs.Event.emit ~severity:Obs.Event.Warning "robust.escalate"
    [
      ("chain", Obs.Event.Str chain);
      ("abandoned", Obs.Event.Str abandoned);
      ("reason", Obs.Event.Str reason);
    ]

(* One counter per fallback rung, incremented when the rung is entered as
   a fallback (never for the first rung of a chain), so a clean solve
   leaves every robust.fallback.* counter at zero. *)
let c_dense_lu = Telemetry.Counter.make "robust.fallback.dense_lu"
let c_dense_qr = Telemetry.Counter.make "robust.fallback.dense_qr"
let c_dense_ridge = Telemetry.Counter.make "robust.fallback.dense_ridge"
let c_cg_restart = Telemetry.Counter.make "robust.fallback.cg_restart"
let c_gauss_seidel = Telemetry.Counter.make "robust.fallback.gauss_seidel"
let c_dense_direct = Telemetry.Counter.make "robust.fallback.dense_direct"

let dense_rung_name = function
  | Cholesky -> "cholesky"
  | Lu_refined -> "lu_refined"
  | Qr -> "qr"
  | Ridge -> "ridge"

let sparse_rung_name = function
  | Cg -> "cg"
  | Cg_restarted -> "cg_restarted"
  | Gauss_seidel -> "gauss_seidel"
  | Dense_direct r -> "dense_direct:" ^ dense_rung_name r

let all_finite = Array.for_all Float.is_finite

let abort_reason = "cooperative abort (should_stop)"

let now_ms () = Unix.gettimeofday () *. 1e3

(* Per-rung wall-time attribution.  Each rung entry leaves a timestamp
   mark; [timings_of] turns consecutive marks into durations (the last
   segment ends "now") and accumulates them per rung name in first-entry
   order, so a restarted rung shows its cumulative time.  This costs two
   clock reads per rung — nothing against a factorization or a CG run —
   and gives deadline accounting the answer to "where did the budget
   go?". *)
let make_marker () =
  let marks = ref [] in
  let mark name =
    (* causal position of each rung on the ambient request trace.  Only
       the marker (zero duration) is recorded there: the wall-clock
       timings below stay out of the trace so a journaled trace remains
       bit-identical across replays under a virtual clock. *)
    Obs.Trace_ctx.mark ("rung." ^ name);
    marks := (name, now_ms ()) :: !marks
  in
  let timings_of () =
    let rec segments stop acc = function
      | [] -> acc
      | (name, t) :: rest -> segments t ((name, stop -. t) :: acc) rest
    in
    let segs = segments (now_ms ()) [] !marks in
    List.fold_left
      (fun acc (name, d) ->
        if List.mem_assoc name acc then
          List.map (fun (n, v) -> if n = name then (n, v +. d) else (n, v)) acc
        else acc @ [ (name, d) ])
      [] segs
  in
  (mark, timings_of)

let solve_dense ?(cond_threshold = 1e12) ?(should_stop = fun () -> false) a b =
  if not (Mat.is_square a) then
    invalid_arg "Robust.Solve.solve_dense: matrix not square";
  if Array.length b <> a.Mat.rows then
    invalid_arg "Robust.Solve.solve_dense: length mismatch";
  let mark, timings_of = make_marker () in
  let escalations = ref [] in
  let aborted = ref false in
  let note abandoned reason =
    emit_escalation ~chain:"dense" abandoned reason;
    escalations := { abandoned; reason } :: !escalations
  in
  let finish rung solution =
    { solution; rung; escalations = List.rev !escalations; cg_attempts = [];
      timings = timings_of (); aborted = !aborted }
  in
  (* Between-rung deadline gate: a dense rung is a whole factorization, so
     the only cooperative stopping points are the rung boundaries.  An
     abort skips the remaining (more expensive) rungs and returns the
     zeros last resort, flagged [aborted]. *)
  let gate next_rung k =
    if should_stop () then begin
      aborted := true;
      note next_rung abort_reason;
      finish Ridge (Vec.zeros a.Mat.rows)
    end
    else k ()
  in
  let ridge () =
    Telemetry.Counter.incr c_dense_ridge;
    mark "ridge";
    let n = a.Mat.rows in
    let scale =
      Array.fold_left
        (fun acc v -> if Float.is_finite v then Stdlib.max acc (abs_float v) else acc)
        1. (Mat.get_diag a)
    in
    let rec attempt eps tries =
      if tries = 0 then Vec.zeros n
      else
        match Linalg.Cholesky.solve (Mat.add_scaled_identity a eps) b with
        | x when all_finite x -> x
        | _ -> attempt (eps *. 1e3) (tries - 1)
        | exception _ -> attempt (eps *. 1e3) (tries - 1)
    in
    attempt (1e-10 *. scale) 7
  in
  let qr () =
    gate "qr" @@ fun () ->
    Telemetry.Counter.incr c_dense_qr;
    mark "qr";
    match Linalg.Qr.solve_least_squares a b with
    | x when all_finite x -> finish Qr x
    | _ ->
        note "qr" "least-squares solution not finite";
        finish Ridge (ridge ())
    | exception e ->
        note "qr" (Printexc.to_string e);
        finish Ridge (ridge ())
  in
  let lu () =
    gate "lu_refined" @@ fun () ->
    mark "lu_refined";
    match Linalg.Refine.condition_estimate a with
    | cond when Float.is_finite cond && cond < cond_threshold -> begin
        Telemetry.Counter.incr c_dense_lu;
        match Linalg.Refine.solve_refined a b with
        | x when all_finite x -> finish Lu_refined x
        | _ ->
            note "lu_refined" "refined solution not finite";
            qr ()
        | exception e ->
            note "lu_refined" (Printexc.to_string e);
            qr ()
      end
    | cond ->
        note "lu_refined"
          (Printf.sprintf "condition estimate %.3g at or above %.3g" cond
             cond_threshold);
        qr ()
    | exception e ->
        note "lu_refined" (Printexc.to_string e);
        qr ()
  in
  mark "cholesky";
  match Linalg.Cholesky.solve a b with
  | x when all_finite x -> finish Cholesky x
  | _ ->
      note "cholesky" "solution not finite";
      lu ()
  | exception Linalg.Cholesky.Not_positive_definite k ->
      note "cholesky" (Printf.sprintf "non-positive pivot at column %d" k);
      lu ()
  | exception e ->
      note "cholesky" (Printexc.to_string e);
      lu ()

let describe_cg (out : Sparse.Cg.outcome) =
  if out.Sparse.Cg.breakdown then
    Printf.sprintf "non-SPD curvature (p'Ap <= 0) after %d iterations"
      out.Sparse.Cg.iterations
  else if out.Sparse.Cg.aborted then
    Printf.sprintf "%s after %d iterations (residual %.3g)" abort_reason
      out.Sparse.Cg.iterations out.Sparse.Cg.residual_norm
  else
    Printf.sprintf "no convergence after %d iterations (residual %.3g)"
      out.Sparse.Cg.iterations out.Sparse.Cg.residual_norm

let solve_sparse ?(tol = 1e-10) ?cg_max_iter ?(should_stop = fun () -> false)
    (a : Sparse.Csr.t) b =
  let rows, cols = Sparse.Csr.dims a in
  if rows <> cols then invalid_arg "Robust.Solve.solve_sparse: matrix not square";
  if Array.length b <> rows then
    invalid_arg "Robust.Solve.solve_sparse: length mismatch";
  let op = Sparse.Linop.of_csr a in
  let mark, timings_of = make_marker () in
  let escalations = ref [] in
  let aborted = ref false in
  let note abandoned reason =
    emit_escalation ~chain:"sparse" abandoned reason;
    escalations := { abandoned; reason } :: !escalations
  in
  (* every CG outcome along the chain, oldest first, so callers can
     summarise the convergence curve in a health certificate *)
  let attempts = ref [] in
  let attempt out =
    attempts := out :: !attempts;
    out
  in
  let finish rung solution =
    { solution; rung; escalations = List.rev !escalations;
      cg_attempts = List.rev !attempts; timings = timings_of ();
      aborted = !aborted }
  in
  (* The best iterate seen so far — what an abort hands back rather than
     pretending there is no answer at all. *)
  let best_iterate () =
    match !attempts with
    | out :: _ when all_finite out.Sparse.Cg.solution -> out.Sparse.Cg.solution
    | _ -> Vec.zeros rows
  in
  (* the rung whose (partial) iterate [best_iterate] returns *)
  let current_rung = ref Cg in
  let abort_from rung_entered =
    aborted := true;
    note rung_entered abort_reason;
    finish !current_rung (best_iterate ())
  in
  let dense_direct () =
    if should_stop () then abort_from "dense_direct"
    else begin
      Telemetry.Counter.incr c_dense_direct;
      mark "dense_direct";
      let inner = solve_dense ~should_stop (Sparse.Csr.to_dense a) b in
      escalations := List.rev_append inner.escalations !escalations;
      aborted := !aborted || inner.aborted;
      finish (Dense_direct inner.rung) inner.solution
    end
  in
  let gauss_seidel () =
    if should_stop () then abort_from "gauss_seidel"
    else begin
      Telemetry.Counter.incr c_gauss_seidel;
      mark "gauss_seidel";
      match Sparse.Stationary.solve ~tol Sparse.Stationary.Gauss_seidel a b with
      | out
        when out.Sparse.Stationary.converged
             && all_finite out.Sparse.Stationary.solution ->
          finish Gauss_seidel out.Sparse.Stationary.solution
      | out ->
          note "gauss_seidel"
            (Printf.sprintf "no convergence after %d sweeps (residual %.3g)"
               out.Sparse.Stationary.iterations out.Sparse.Stationary.residual_norm);
          dense_direct ()
      | exception Invalid_argument msg ->
          note "gauss_seidel" msg;
          dense_direct ()
    end
  in
  let rec restart_loop k x0 =
    current_rung := Cg_restarted;
    mark "cg_restarted";
    let out =
      attempt
        (Sparse.Cg.solve ?x0 ~precondition:true ~tol ?max_iter:cg_max_iter
           ~should_stop op b)
    in
    if out.Sparse.Cg.converged && all_finite out.Sparse.Cg.solution then
      finish Cg_restarted out.Sparse.Cg.solution
    else if out.Sparse.Cg.aborted then begin
      (* deadline reached mid-iteration: stop escalating, hand back the
         partial iterate *)
      aborted := true;
      note "cg_restarted" (describe_cg out);
      finish Cg_restarted out.Sparse.Cg.solution
    end
    else if out.Sparse.Cg.breakdown || k <= 1 then begin
      note "cg_restarted" (describe_cg out);
      gauss_seidel ()
    end
    else restart_loop (k - 1) (Some out.Sparse.Cg.solution)
  in
  mark "cg";
  let out =
    attempt
      (Sparse.Cg.solve ~precondition:false ~tol ?max_iter:cg_max_iter
         ~should_stop op b)
  in
  if out.Sparse.Cg.converged && all_finite out.Sparse.Cg.solution then
    finish Cg out.Sparse.Cg.solution
  else if out.Sparse.Cg.aborted then begin
    aborted := true;
    note "cg" (describe_cg out);
    finish Cg out.Sparse.Cg.solution
  end
  else begin
    note "cg" (describe_cg out);
    if out.Sparse.Cg.breakdown then gauss_seidel ()
    else begin
      Telemetry.Counter.incr c_cg_restart;
      restart_loop 3 (Some out.Sparse.Cg.solution)
    end
  end
