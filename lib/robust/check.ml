module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Wg = Graph.Weighted_graph

type diagnostic =
  | Non_finite_weight of { i : int; j : int }
  | Negative_weight of { i : int; j : int; value : float }
  | Self_loop of { vertex : int; weight : float }
  | Non_finite_label of { index : int }
  | Suspect_label of { index : int; value : float; loo_estimate : float }
  | Unanchored_vertex of { vertex : int }
  | Solver_fallback of { system : string; abandoned : string; reason : string }
  | Imputed_prediction of { vertex : int; value : float }
  | Deadline_expired of { elapsed_ms : float; budget_ms : float }

type severity = Info | Warning | Error

let severity = function
  | Self_loop _ -> Info
  | Suspect_label _ | Solver_fallback _ | Deadline_expired _ -> Warning
  | Non_finite_weight _ | Negative_weight _ | Non_finite_label _
  | Unanchored_vertex _ | Imputed_prediction _ ->
      Error

let class_name = function
  | Non_finite_weight _ -> "non-finite-weight"
  | Negative_weight _ -> "negative-weight"
  | Self_loop _ -> "self-loop"
  | Non_finite_label _ -> "non-finite-label"
  | Suspect_label _ -> "suspect-label"
  | Unanchored_vertex _ -> "unanchored-vertex"
  | Solver_fallback _ -> "solver-fallback"
  | Imputed_prediction _ -> "imputed-prediction"
  | Deadline_expired _ -> "deadline-expired"

let describe = function
  | Non_finite_weight { i; j } -> Printf.sprintf "weight w(%d,%d) is not finite" i j
  | Negative_weight { i; j; value } ->
      Printf.sprintf "weight w(%d,%d) = %g is negative" i j value
  | Self_loop { vertex; weight } ->
      Printf.sprintf "vertex %d carries a self-loop of weight %g" vertex weight
  | Non_finite_label { index } -> Printf.sprintf "label %d is not finite" index
  | Suspect_label { index; value; loo_estimate } ->
      Printf.sprintf
        "label %d = %g disagrees with its neighbourhood estimate %g" index value
        loo_estimate
  | Unanchored_vertex { vertex } ->
      Printf.sprintf "unlabeled vertex %d has no path to any label" vertex
  | Solver_fallback { system; abandoned; reason } ->
      Printf.sprintf "%s: abandoned %s (%s)" system abandoned reason
  | Imputed_prediction { vertex; value } ->
      Printf.sprintf "vertex %d imputed with the labeled mean %g" vertex value
  | Deadline_expired { elapsed_ms; budget_ms } ->
      Printf.sprintf "deadline expired after %.3f ms of a %.3f ms budget"
        elapsed_ms budget_ms

(* One weight entry, visited once per unordered pair (i <= j). *)
let classify_weight acc i j w =
  if w = 0. then acc
  else if not (Float.is_finite w) then Non_finite_weight { i; j } :: acc
  else if w < 0. then Negative_weight { i; j; value = w } :: acc
  else if i = j then Self_loop { vertex = i; weight = w } :: acc
  else acc

let scan_weights g acc =
  match Wg.storage g with
  | Wg.Dense m ->
      let n = Wg.order g in
      let acc = ref acc in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          acc := classify_weight !acc i j (Mat.get m i j)
        done
      done;
      !acc
  | Wg.Sparse c ->
      let n = Wg.order g in
      let acc = ref acc in
      for i = 0 to n - 1 do
        Sparse.Csr.iter_row c i (fun j w ->
            if j >= i then acc := classify_weight !acc i j w)
      done;
      !acc

let scan_labels y acc =
  let acc = ref acc in
  Array.iteri
    (fun index v ->
      if not (Float.is_finite v) then acc := Non_finite_label { index } :: !acc)
    y;
  !acc

(* Connectivity over finite positive weights only: [Connectivity.components]
   unions an edge when [w > 0.], which is false for NaN and for negative
   weights, so poisoned edges never anchor anything. *)
let scan_anchoring g y acc =
  let n = Array.length y in
  let total = Wg.order g in
  if n >= total then acc
  else begin
    let comps = Graph.Connectivity.components g in
    let anchored = Hashtbl.create 8 in
    for i = 0 to Stdlib.min n total - 1 do
      Hashtbl.replace anchored comps.(i) ()
    done;
    let acc = ref acc in
    for v = total - 1 downto n do
      if not (Hashtbl.mem anchored comps.(v)) then
        acc := Unanchored_vertex { vertex = v } :: !acc
    done;
    !acc
  end

(* Leave-one-out neighbourhood estimate over the labeled set, skipping
   non-finite labels and non-finite / negative weights. *)
let scan_suspects ~threshold g y acc =
  let n = Array.length y in
  let acc = ref acc in
  for i = 0 to n - 1 do
    if Float.is_finite y.(i) then begin
      let num = ref 0. and den = ref 0. in
      for j = 0 to n - 1 do
        if j <> i && Float.is_finite y.(j) then begin
          let w = Wg.weight g i j in
          if Float.is_finite w && w > 0. then begin
            num := !num +. (w *. y.(j));
            den := !den +. w
          end
        end
      done;
      if !den > 0. then begin
        let loo_estimate = !num /. !den in
        if abs_float (y.(i) -. loo_estimate) > threshold then
          acc := Suspect_label { index = i; value = y.(i); loo_estimate } :: !acc
      end
    end
  done;
  !acc

(* Mirror a diagnostic into the flight recorder (no-op while telemetry
   is disabled), so `repro health` and post-mortems see scan findings
   next to the solver events they explain. *)
let emit_event d =
  let sev =
    match severity d with
    | Info -> Obs.Event.Info
    | Warning -> Obs.Event.Warning
    | Error -> Obs.Event.Error
  in
  Obs.Event.emit ~severity:sev
    ("check." ^ class_name d)
    [ ("detail", Obs.Event.Str (describe d)) ]

let scan ?suspect_threshold g y =
  let acc = scan_weights g [] in
  let acc = scan_labels y acc in
  let acc = scan_anchoring g y acc in
  let acc =
    match suspect_threshold with
    | None -> acc
    | Some threshold -> scan_suspects ~threshold g y acc
  in
  let diagnostics = List.rev acc in
  List.iter emit_event diagnostics;
  diagnostics
