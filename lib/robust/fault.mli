(** Deterministic fault injection for solver problems.

    Each fault class perturbs a (graph, labels) pair the way a broken
    production pipeline would, and is constructed so that the
    perturbation leaves a signature {!Check.scan} (or the resilient
    solver's fallback chain) is guaranteed to detect — this is what lets
    the qcheck harness assert "the diagnostics name every injected fault
    class" rather than merely "nothing raised".  All randomness flows
    through the supplied {!Prng.Rng.t}; selections are prefix-stable in
    [count] (the same seed with a larger count perturbs a superset), so
    monotone-degradation properties are meaningful. *)

type t =
  | Weight_jitter of { amplitude : float }
      (** Multiplies every edge weight by [1 + u], [u ~ U(-amplitude,
          amplitude)], and forces one randomly chosen edge negative (a
          corrupted similarity entry).  Detected as [Negative_weight]. *)
  | Edge_drop of { fraction : float }
      (** Drops each edge with probability [fraction] and additionally
          severs every edge incident to one randomly chosen unlabeled
          vertex.  Detected as [Unanchored_vertex]. *)
  | Label_flip of { count : int }
      (** Reflects [count] labels across the observed label range
          ([y ← min + max − y]; the class flip for 0/1 or ±1 labels).
          Detected as [Suspect_label] when scanning with a threshold. *)
  | Nan_poison_weight of { count : int }
      (** Sets [count] edges to NaN.  Detected as [Non_finite_weight]. *)
  | Nan_poison_label of { count : int }
      (** Sets [count] labels to NaN.  Detected as [Non_finite_label]. *)
  | Cg_cap of { max_iter : int }
      (** Caps every CG attempt at [max_iter] iterations (an operator
          budget).  Leaves the data untouched; detected as
          [Solver_fallback] once the capped CG fails to converge. *)
  | Latency_stall of { ms : float }
      (** Burns roughly [ms] milliseconds of the worker's time before the
          solve (the actual duration is jittered by the injection rng, so
          it is seeded and replayable).  Leaves the data untouched; the
          accumulated duration lands in [injected.stall_ms] and is spent
          at solve time — the serving layer advances its virtual clock by
          it (deterministic replay) or {!busy_wait_ms}s for it (live).
          Detected as [Deadline_expired] once the stall eats the
          request's budget. *)

type injected = {
  graph : Graph.Weighted_graph.t;   (** same storage kind as the input *)
  labels : Linalg.Vec.t;
  cg_max_iter : int option;         (** set by {!Cg_cap}, else [None] *)
  stall_ms : float;                 (** total {!Latency_stall} time, else [0.] *)
  applied : t list;
}

val class_name : t -> string

val busy_wait_ms : float -> unit
(** Spin (not sleep) for the given wall-clock duration — a worker hit by
    a latency stall is {e busy}, so only cooperative [should_stop]
    polling can honour a deadline around it.  No-op for [ms <= 0]. *)

val inject :
  Prng.Rng.t ->
  n_labeled:int ->
  t list ->
  Graph.Weighted_graph.t ->
  Linalg.Vec.t ->
  injected
(** Applies the faults in order.  The input graph and labels are not
    mutated.  The result may violate every Weighted_graph/Problem
    invariant — rebuild it with the [_unchecked] constructors. *)

val detects : t -> Check.diagnostic -> bool
(** [detects fault d] — does diagnostic [d] name [fault]'s class? *)
