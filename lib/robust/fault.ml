module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Wg = Graph.Weighted_graph

type t =
  | Weight_jitter of { amplitude : float }
  | Edge_drop of { fraction : float }
  | Label_flip of { count : int }
  | Nan_poison_weight of { count : int }
  | Nan_poison_label of { count : int }
  | Cg_cap of { max_iter : int }
  | Latency_stall of { ms : float }

type injected = {
  graph : Wg.t;
  labels : Vec.t;
  cg_max_iter : int option;
  stall_ms : float;
  applied : t list;
}

let class_name = function
  | Weight_jitter _ -> "weight-jitter"
  | Edge_drop _ -> "edge-drop"
  | Label_flip _ -> "label-flip"
  | Nan_poison_weight _ -> "nan-poison-weight"
  | Nan_poison_label _ -> "nan-poison-label"
  | Cg_cap _ -> "cg-cap"
  | Latency_stall _ -> "latency-stall"

let detects fault (d : Check.diagnostic) =
  match (fault, d) with
  | Weight_jitter _, Check.Negative_weight _ -> true
  | Edge_drop _, Check.Unanchored_vertex _ -> true
  | Label_flip _, Check.Suspect_label _ -> true
  | Nan_poison_weight _, Check.Non_finite_weight _ -> true
  | Nan_poison_label _, Check.Non_finite_label _ -> true
  | Cg_cap _, Check.Solver_fallback _ -> true
  | Latency_stall _, Check.Deadline_expired _ -> true
  | _ -> false

(* Deterministic busy-wait: spins the CPU for [ms] wall milliseconds.
   This is what a latency stall *is* at serve time — the worker is busy,
   not sleeping, so a deadline can only be honoured by the cooperative
   [should_stop] polling around it. *)
let busy_wait_ms ms =
  if ms > 0. then begin
    let deadline = Unix.gettimeofday () +. (ms /. 1e3) in
    while Unix.gettimeofday () < deadline do
      ignore (Sys.opaque_identity (ref 0))
    done
  end

(* The nonzero off-diagonal edges (i < j, deterministic order). *)
let edges_of g =
  let acc = ref [] in
  Wg.iter_edges g (fun i j w -> acc := (i, j, w) :: !acc);
  Array.of_list (List.rev !acc)

let key i j = if i <= j then (i, j) else (j, i)

(* Rebuild the graph with [overrides] applied to existing entries,
   preserving the storage kind.  Only positions already stored (dense:
   any; sparse: structural nonzeros) can change, which suits every fault
   here — they all act on existing edges. *)
let rebuild g overrides =
  match Wg.storage g with
  | Wg.Dense m ->
      let n = Wg.order g in
      Wg.of_dense_unchecked
        (Mat.init n n (fun i j ->
             match Hashtbl.find_opt overrides (key i j) with
             | Some w -> w
             | None -> Mat.get m i j))
  | Wg.Sparse c ->
      let rows, cols = Sparse.Csr.dims c in
      let coo = Sparse.Coo.create rows cols in
      for i = 0 to rows - 1 do
        Sparse.Csr.iter_row c i (fun j w ->
            let w =
              match Hashtbl.find_opt overrides (key i j) with
              | Some o -> o
              | None -> w
            in
            Sparse.Coo.add coo i j w)
      done;
      Wg.of_sparse_unchecked (Sparse.Csr.of_coo coo)

(* Prefix-stable selection: draw a full permutation (rng consumption
   independent of [count]), then take the first [count] entries. *)
let select rng count n =
  let perm = Prng.Rng.permutation rng n in
  Array.sub perm 0 (Stdlib.min (Stdlib.max count 0) n)

let apply_one rng ~n_labeled fault (g, y, cap, stall) =
  match fault with
  | Cg_cap { max_iter } ->
      let cap =
        match cap with
        | None -> Some max_iter
        | Some c -> Some (Stdlib.min c max_iter)
      in
      (g, y, cap, stall)
  | Latency_stall { ms } ->
      (* the stall duration is seeded: the requested [ms] is jittered by
         the injection rng so different seeds stall for different (but
         replayable) amounts.  The wait itself happens at solve time —
         the serving layer burns [stall_ms] off the request's budget
         (virtual clock) or busy-waits for it (monotonic clock). *)
      let jitter = Prng.Rng.uniform rng 0.75 1.25 in
      (g, y, cap, stall +. (Stdlib.max 0. ms *. jitter))
  | Label_flip { count } ->
      let n = Array.length y in
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun v ->
          if Float.is_finite v then begin
            lo := Stdlib.min !lo v;
            hi := Stdlib.max !hi v
          end)
        y;
      let y' = Vec.copy y in
      if Float.is_finite !lo && Float.is_finite !hi then
        Array.iter
          (fun i -> if Float.is_finite y'.(i) then y'.(i) <- !lo +. !hi -. y'.(i))
          (select rng count n);
      (g, y', cap, stall)
  | Nan_poison_label { count } ->
      let y' = Vec.copy y in
      Array.iter (fun i -> y'.(i) <- Float.nan) (select rng count (Array.length y));
      (g, y', cap, stall)
  | Nan_poison_weight { count } ->
      let edges = edges_of g in
      let overrides = Hashtbl.create 16 in
      Array.iter
        (fun e ->
          let i, j, _ = edges.(e) in
          Hashtbl.replace overrides (key i j) Float.nan)
        (select rng count (Array.length edges));
      (rebuild g overrides, y, cap, stall)
  | Weight_jitter { amplitude } ->
      let edges = edges_of g in
      let overrides = Hashtbl.create (Array.length edges) in
      Array.iter
        (fun (i, j, w) ->
          Hashtbl.replace overrides (key i j)
            (w *. (1. +. Prng.Rng.uniform rng (-.amplitude) amplitude)))
        edges;
      if Array.length edges > 0 then begin
        (* one corrupted entry goes negative, guaranteeing detection *)
        let i, j, w = edges.(Prng.Rng.int rng (Array.length edges)) in
        Hashtbl.replace overrides (key i j) (-.abs_float w -. 1e-3)
      end;
      (rebuild g overrides, y, cap, stall)
  | Edge_drop { fraction } ->
      let edges = edges_of g in
      let overrides = Hashtbl.create 16 in
      Array.iter
        (fun (i, j, _) ->
          if Prng.Rng.bernoulli rng (Stdlib.min 1. (Stdlib.max 0. fraction)) then
            Hashtbl.replace overrides (key i j) 0.)
        edges;
      let total = Wg.order g in
      if total > n_labeled then begin
        (* sever one unlabeled vertex entirely: guaranteed unanchored *)
        let v = n_labeled + Prng.Rng.int rng (total - n_labeled) in
        Array.iter
          (fun (i, j, _) ->
            if i = v || j = v then Hashtbl.replace overrides (key i j) 0.)
          edges
      end;
      (rebuild g overrides, y, cap, stall)

let inject rng ~n_labeled faults g y =
  let g, labels, cg_max_iter, stall_ms =
    List.fold_left
      (fun acc fault -> apply_one rng ~n_labeled fault acc)
      (g, Vec.copy y, None, 0.) faults
  in
  { graph = g; labels; cg_max_iter; stall_ms; applied = faults }
