(** Total linear solves via fallback chains.

    Every rung failure escalates to a cheaper-assumption (more expensive
    or less accurate) method and is recorded in the returned
    [escalations] list, in a [robust.fallback.*] telemetry counter, and
    as a ["robust.escalate"] flight-recorder event carrying the
    abandoned rung and its failure reason, so degradation is visible
    both in [--profile] output and in [Obs.Event.recent ()].  Neither entry
    point raises on degenerate systems: the dense chain bottoms out in a
    ridge-regularised solve (zeros as the absolute last resort), the
    sparse chain bottoms out in the dense chain.

    Chains:
    - dense:  Cholesky → LU + iterative refinement (gated by
      {!Linalg.Refine.condition_estimate}) → QR least-squares → ridge
    - sparse: CG → restarted Jacobi-preconditioned CG → Gauss–Seidel →
      dense direct

    CG breakdown (non-SPD curvature [pᵀAp ≤ 0], reported by
    {!Sparse.Cg}) skips the restart rung: restarting cannot repair an
    indefinite system. *)

type dense_rung = Cholesky | Lu_refined | Qr | Ridge

type sparse_rung =
  | Cg
  | Cg_restarted
  | Gauss_seidel
  | Dense_direct of dense_rung

type escalation = { abandoned : string; reason : string }

type 'rung outcome = {
  solution : Linalg.Vec.t;
  rung : 'rung;  (** the rung that produced [solution] *)
  escalations : escalation list;  (** rungs abandoned on the way, in order *)
  cg_attempts : Sparse.Cg.outcome list;
      (** every CG outcome along the sparse chain (plain rung, then each
          restart), oldest first; empty for the dense chain.  Used to
          build [Obs.Health] convergence summaries. *)
  timings : (string * float) list;
      (** cumulative wall milliseconds spent in each rung entered, in
          first-entry order (a restarted rung accumulates across
          restarts).  The sparse chain's dense fallback appears as one
          ["dense_direct"] entry.  This is what lets deadline accounting
          attribute where a request's budget went. *)
  aborted : bool;
      (** [should_stop] fired (inside a CG iteration or at a rung
          boundary): [solution] is the best iterate available at that
          point — possibly zeros in the dense chain — not a converged
          answer. *)
}

val dense_rung_name : dense_rung -> string
val sparse_rung_name : sparse_rung -> string

val solve_dense :
  ?cond_threshold:float ->
  ?should_stop:(unit -> bool) ->
  Linalg.Mat.t ->
  Linalg.Vec.t ->
  dense_rung outcome
(** [solve_dense a b] solves [a x = b], escalating on factorization
    failure or non-finite output.  The LU rung is skipped (straight to
    QR) when the condition estimate is at or above [cond_threshold]
    (default 1e12).  [should_stop] is polled at each rung boundary (a
    factorization cannot stop mid-flight); when it fires the remaining
    rungs are skipped and the zeros last resort is returned with
    [aborted = true].  Raises [Invalid_argument] only on dimension
    mismatch — API misuse, not a data fault. *)

val solve_sparse :
  ?tol:float ->
  ?cg_max_iter:int ->
  ?should_stop:(unit -> bool) ->
  Sparse.Csr.t ->
  Linalg.Vec.t ->
  sparse_rung outcome
(** [solve_sparse a b] solves the CSR system [a x = b] with relative
    tolerance [tol] (default 1e-10).  [cg_max_iter] caps each CG attempt
    (the plain rung and every restart individually), modelling an
    operator-imposed iteration budget.  [should_stop] is threaded into
    every CG attempt (polled each iteration) and polled again at every
    rung boundary: a deadline can abort CG mid-solve, and an abort stops
    the escalation ladder — the outcome carries the best partial iterate
    with [aborted = true] and a [{abandoned; reason =
    "cooperative abort …"}] escalation naming where the budget ran
    out. *)
