(** A reusable, lazily-spawned pool of OCaml 5 domains with deterministic
    chunked scheduling.

    {2 Determinism contract}

    An index range [0, n) is split into chunks of a fixed [grain]
    (chunk [c] covers [c*grain, min n ((c+1)*grain))).  The chunk layout
    depends only on [n] and [grain] — never on the pool size or on which
    domain executes which chunk — so any computation whose chunks write
    disjoint state, and any {!parallel_reduce} (whose per-chunk partials
    are combined in ascending chunk order), produces bit-identical
    results regardless of the domain count.  No floating-point sum is
    reassociated across a chunk boundary by the pool itself.

    {2 Scheduling}

    Chunks are claimed dynamically from a shared atomic cursor, so load
    imbalance between chunks (e.g. the triangular pairwise loop) is
    absorbed without affecting results.  The calling domain participates
    in chunk execution; worker domains are spawned lazily on the first
    parallel job and parked on a condition variable between jobs.

    A [parallel_for] issued from {e inside} a pool task (nested
    parallelism, e.g. a parallel solver under a parallel sweep) runs
    inline on the current domain instead of re-entering the pool, so
    nesting can never oversubscribe the machine or deadlock.

    {2 Telemetry}

    [parallel.pool.tasks] counts parallel jobs, [parallel.pool.chunks]
    the chunks scheduled across them, [parallel.pool.busy_ns] the summed
    wall-clock nanoseconds domains spent executing chunks, and
    [parallel.pool.inline_tasks] the jobs that ran inline (pool of one,
    single chunk, or nested). *)

type t

val default_domain_count : unit -> int
(** Domain budget used when none is given explicitly: the [GSSL_DOMAINS]
    environment variable when set to a positive integer (clamped to 64),
    otherwise [Domain.recommended_domain_count ()]. *)

val create : ?domains:int -> unit -> t
(** A pool running on [domains] domains in total, the caller included
    (so [domains - 1] workers are spawned, lazily).  [domains] defaults
    to {!default_domain_count}.  Raises [Invalid_argument] when
    [domains < 1]. *)

val size : t -> int
(** The total domain count (callers + workers) the pool was created with. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Jobs submitted after
    shutdown run inline on the caller. *)

val parallel_for : ?grain:int -> t -> int -> (int -> int -> unit) -> unit
(** [parallel_for ~grain pool n body] runs [body lo hi] over a partition
    of [0, n) into half-open chunks of [grain] indices (last chunk may
    be short).  [body] must treat distinct indices independently (write
    disjoint state); under that contract results are identical for any
    pool size, including inline execution.  [grain] defaults to
    {!default_grain}[ n].  Exceptions raised by [body] are re-raised in
    the caller after all chunks have been drained (first one wins). *)

val parallel_reduce :
  ?grain:int ->
  t ->
  int ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [parallel_reduce ~grain pool n ~map ~combine ~init] evaluates
    [map lo hi] on every chunk of [0, n) and folds the per-chunk results
    with [combine] in ascending chunk order starting from [init] —
    deterministic for any domain count because both the chunk layout and
    the combine order are fixed.  Returns [init] when [n <= 0]. *)

val default_grain : int -> int
(** [max 1 ((n + 63) / 64)] — at most 64 chunks, enough slack for
    dynamic load balancing while keeping per-chunk dispatch cost
    amortised.  Depends only on [n]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** Run [f] with a freshly created pool, shutting it down afterwards
    (also on exception). *)

val sequential : (unit -> 'a) -> 'a
(** Run [f] with pool dispatch disabled on the current domain: every
    {!parallel_for} / {!parallel_reduce} reached from inside [f]
    (including through {!run} / {!reduce}) executes inline.  This is the
    reference serial mode the qcheck bit-identity properties and the
    serial bench phases compare against. *)

(** {2 The process-wide default pool}

    The hot kernels ([Linalg.Mat.mm], [Sparse.Csr.mv], pairwise
    distances, ...) dispatch through a single shared default pool so
    that nested parallel regions coordinate instead of each spawning
    their own domains. *)

val get_default : unit -> t
(** The shared default pool, created on first use with
    {!default_domain_count} domains. *)

val set_default_domains : int -> unit
(** Replace the default pool with one of the given size (shutting the
    previous one down).  Raises [Invalid_argument] when [domains < 1]. *)

val with_default_domains : int -> (unit -> 'a) -> 'a
(** Run [f] with the default pool temporarily replaced by a fresh pool
    of the given size; restores (and re-creates lazily) the previous
    default afterwards. *)

val run : ?grain:int -> int -> (int -> int -> unit) -> unit
(** {!parallel_for} on the default pool. *)

val reduce :
  ?grain:int ->
  int ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** {!parallel_reduce} on the default pool. *)
