(* Lazily-spawned domain pool with deterministic chunked scheduling.

   One job runs at a time (concurrent submissions serialise on
   [submit]); chunks are claimed from an atomic cursor by the caller and
   every worker, so the assignment of chunks to domains is dynamic while
   the chunk *layout* is a pure function of (n, grain) — which is what
   the bit-identity contract rests on.  Workers park on [wake] between
   jobs and are joined on [shutdown]. *)

let c_tasks = Telemetry.Counter.make "parallel.pool.tasks"
let c_chunks = Telemetry.Counter.make "parallel.pool.chunks"
let c_busy_ns = Telemetry.Counter.make "parallel.pool.busy_ns"
let c_inline = Telemetry.Counter.make "parallel.pool.inline_tasks"

type job = {
  chunk_count : int;
  grain : int;
  length : int;
  body : int -> int -> unit;
  next : int Atomic.t;      (* next chunk index to claim *)
  completed : int Atomic.t; (* chunks fully executed *)
  failed : exn option Atomic.t;
}

type t = {
  domains : int;
  mutex : Mutex.t; (* guards job / generation / stop / workers *)
  wake : Condition.t; (* workers: a new generation is available *)
  finished : Condition.t; (* caller: all chunks of the job completed *)
  submit : Mutex.t; (* serialises concurrent parallel jobs *)
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable spawned : bool;
}

(* True while the current domain is executing a pool chunk (or a
   [sequential] region): parallel calls made in that state run inline. *)
let inline_mode : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_grain n = Stdlib.max 1 ((n + 63) / 64)

let default_domain_count () =
  match Sys.getenv_opt "GSSL_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Stdlib.min d 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?domains () =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: need domains >= 1";
        d
    | None -> default_domain_count ()
  in
  {
    domains;
    mutex = Mutex.create ();
    wake = Condition.create ();
    finished = Condition.create ();
    submit = Mutex.create ();
    job = None;
    generation = 0;
    stop = false;
    workers = [];
    spawned = false;
  }

let size pool = pool.domains

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let run_chunk pool job c =
  let lo = c * job.grain in
  let hi = Stdlib.min job.length (lo + job.grain) in
  let was = Domain.DLS.get inline_mode in
  Domain.DLS.set inline_mode true;
  let timed = Telemetry.Registry.is_enabled () in
  let t0 = if timed then now_ns () else 0 in
  (try job.body lo hi
   with e -> ignore (Atomic.compare_and_set job.failed None (Some e)));
  if timed then Telemetry.Counter.add c_busy_ns (now_ns () - t0);
  Domain.DLS.set inline_mode was;
  let done_count = 1 + Atomic.fetch_and_add job.completed 1 in
  if done_count = job.chunk_count then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.finished;
    Mutex.unlock pool.mutex
  end

let drain pool job =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add job.next 1 in
    if c >= job.chunk_count then continue := false else run_chunk pool job c
  done

let rec worker_loop pool last_gen =
  Mutex.lock pool.mutex;
  while (not pool.stop) && pool.generation = last_gen do
    Condition.wait pool.wake pool.mutex
  done;
  if pool.stop then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    let job = pool.job in
    Mutex.unlock pool.mutex;
    (* the job may already be gone if it completed before we woke up *)
    (match job with Some j -> drain pool j | None -> ());
    worker_loop pool gen
  end

let ensure_spawned pool =
  if not pool.spawned then begin
    Mutex.lock pool.mutex;
    if (not pool.spawned) && not pool.stop then begin
      pool.workers <-
        List.init (pool.domains - 1) (fun _ ->
            Domain.spawn (fun () -> worker_loop pool 0));
      pool.spawned <- true
    end;
    Mutex.unlock pool.mutex
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.wake;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let parallel_for ?grain pool n body =
  if n > 0 then begin
    let grain =
      match grain with
      | Some g when g >= 1 -> g
      | Some _ -> invalid_arg "Pool.parallel_for: need grain >= 1"
      | None -> default_grain n
    in
    let chunk_count = (n + grain - 1) / grain in
    if
      pool.domains = 1 || chunk_count = 1 || pool.stop
      || Domain.DLS.get inline_mode
    then begin
      Telemetry.Counter.incr c_inline;
      body 0 n
    end
    else
      (* the span makes pool jobs visible in --profile quantiles and
         Chrome traces alongside the parallel.pool.* counters *)
      Telemetry.Span.with_ "parallel.pool.job" @@ fun () ->
      ensure_spawned pool;
      Mutex.lock pool.submit;
      let job =
        {
          chunk_count;
          grain;
          length = n;
          body;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          failed = Atomic.make None;
        }
      in
      Telemetry.Counter.incr c_tasks;
      Telemetry.Counter.add c_chunks chunk_count;
      Mutex.lock pool.mutex;
      pool.job <- Some job;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.mutex;
      drain pool job;
      Mutex.lock pool.mutex;
      while Atomic.get job.completed < job.chunk_count do
        Condition.wait pool.finished pool.mutex
      done;
      pool.job <- None;
      Mutex.unlock pool.mutex;
      Mutex.unlock pool.submit;
      match Atomic.get job.failed with Some e -> raise e | None -> ()
  end

let parallel_reduce ?grain pool n ~map ~combine ~init =
  if n <= 0 then init
  else begin
    let grain =
      match grain with
      | Some g when g >= 1 -> g
      | Some _ -> invalid_arg "Pool.parallel_reduce: need grain >= 1"
      | None -> default_grain n
    in
    let chunk_count = (n + grain - 1) / grain in
    let results = Array.make chunk_count None in
    (* iterate over chunk indices so the per-chunk boundaries survive the
       inline path too (the for-body receives chunk indices, not raw
       element indices) *)
    parallel_for ~grain:1 pool chunk_count (fun clo chi ->
        for c = clo to chi - 1 do
          let lo = c * grain in
          let hi = Stdlib.min n (lo + grain) in
          results.(c) <- Some (map lo hi)
        done);
    Array.fold_left
      (fun acc r ->
        match r with
        | Some v -> combine acc v
        | None -> failwith "Pool.parallel_reduce: missing chunk")
      init results
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let sequential f =
  let was = Domain.DLS.get inline_mode in
  Domain.DLS.set inline_mode true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inline_mode was) f

(* ------------------------------------------------------------------ *)
(* default pool                                                        *)
(* ------------------------------------------------------------------ *)

let default_lock = Mutex.create ()
let default_pool : t option ref = ref None

let get_default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let set_default_domains domains =
  if domains < 1 then invalid_arg "Pool.set_default_domains: need domains >= 1";
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := Some (create ~domains ());
  Mutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

let with_default_domains domains f =
  if domains < 1 then
    invalid_arg "Pool.with_default_domains: need domains >= 1";
  Mutex.lock default_lock;
  let saved = !default_pool in
  let temp = create ~domains () in
  default_pool := Some temp;
  Mutex.unlock default_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock default_lock;
      default_pool := saved;
      Mutex.unlock default_lock;
      shutdown temp)
    f

let run ?grain n body = parallel_for ?grain (get_default ()) n body

let reduce ?grain n ~map ~combine ~init =
  parallel_reduce ?grain (get_default ()) n ~map ~combine ~init
