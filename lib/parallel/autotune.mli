(** Startup-calibrated serial/parallel dispatch for the pooled kernels.

    Every parallel kernel (dense GEMM/GEMV, sparse SpMV, pairwise
    distances, Jacobi rotation sweeps) asks this module whether the
    current call has enough work to win from fanning out over the
    domain pool, and with what chunk grain.  The answer comes from one
    of four modes:

    - [Static]: the historical compile-time work thresholds (the
      default; decisions are identical to the pre-autotune code).
    - [Serial] / [Parallel]: force every kernel one way — deterministic
      overrides so tests and CI never depend on wall-clock timing.
    - [Calibrated m]: consult a measured cost model [m] — per-element
      kernel cost, pool dispatch and per-chunk overhead, and the
      measured parallel speedup of each kernel on this machine.  A
      kernel goes parallel only when the modelled time saved clearly
      exceeds the modelled dispatch overhead, so on a box where
      parallelism does not pay (one hardware thread, tiny sizes) the
      tuned decision is always serial: parallel is never slower than
      serial by construction.

    The mode is resolved once from the [GSSL_TUNE] environment
    variable: unset/[""]/["off"] → [Static], ["serial"]/["parallel"]
    → the forced modes, anything else is a cache-file path — loaded
    when it exists, otherwise calibrated on first use and saved there.
    {!set_mode}/{!with_mode} override the environment programmatically.

    Decisions depend only on the mode and the call's work measure —
    never on the live pool size or the clock — so a fixed cache file
    yields identical decisions run-to-run.  Each decision bumps a
    [parallel.tune.<kernel>.{serial,parallel}] telemetry counter, which
    is the decision log the determinism tests read back. *)

type kernel = Gemm | Gemv | Spmv | Pairwise | Jacobi

type kernel_model = {
  elem_ns : float;  (** serial cost per work unit (see {!plan}) *)
  par_speedup : float;
      (** measured serial/parallel wall ratio at the probe size;
          <= 1 means the pool never pays for this kernel here *)
}

type model = {
  domains : int;  (** domain count the probes ran on *)
  dispatch_ns : float;  (** cost of one pool dispatch *)
  chunk_ns : float;  (** marginal cost per scheduled chunk *)
  gemm : kernel_model;
  gemv : kernel_model;
  spmv : kernel_model;
  pairwise : kernel_model;
  jacobi : kernel_model;
}

type mode = Static | Serial | Parallel | Calibrated of model

type choice = {
  parallel : bool;
  grain : int option;
      (** [None]: keep the call site's historical grain; [Some g]
          only in calibrated mode, sized from the chunk-cost model *)
}

val kernel_name : kernel -> string
val mode_name : mode -> string
val kernel_model : model -> kernel -> kernel_model

val static_threshold : kernel -> int
(** The pre-autotune work threshold this kernel used ([Static] mode
    reproduces exactly these decisions).  Work measures per kernel:
    [Gemm] rows*k*cols, [Gemv] rows*cols, [Spmv] nnz, [Pairwise] n*n,
    [Jacobi] n*n (one tournament round; pass [~dispatches:2]). *)

val plan : ?dispatches:int -> kernel -> work:int -> rows:int -> choice
(** The dispatch decision for one kernel call with [work] work units
    spread over [rows] independent rows.  [dispatches] (default 1) is
    the number of pool dispatches the parallel path pays per call.
    Always serial when [rows < 2] or [work <= 0]. *)

val decide : ?dispatches:int -> kernel -> work:int -> bool
(** [(plan kernel ~work ~rows:max_int).parallel] — for call sites that
    keep their own grain. *)

val crossover_work : ?dispatches:int -> model -> kernel -> int
(** Smallest work measure at which the model picks parallel, or
    [max_int] when it never does (speedup too low or [domains < 2]). *)

val current_mode : unit -> mode
(** The active mode, resolving [GSSL_TUNE] (and calibrating, for a
    cache path that does not exist yet) on first call. *)

val set_mode : mode -> unit
(** Override the environment-resolved mode from now on. *)

val with_mode : mode -> (unit -> 'a) -> 'a
(** Run [f] under a mode override, restoring the previous state (also
    on exception). *)

val calibrate : ?domains:int -> ?probes:int -> unit -> model
(** Run the timed probes (median of [probes], default 5, each rep
    count auto-scaled to at least ~50 us) on a fresh pool of [domains]
    (default {!Pool.default_domain_count}) and return the fitted
    model.  Takes a few tens of milliseconds. *)

val render_model : model -> string
(** The cache-file JSON (self-describing, versioned). *)

val parse_model : string -> model
(** Inverse of {!render_model}.  Raises [Failure] on malformed input. *)

val save : string -> model -> unit
val load : string -> model
(** File forms of {!render_model}/{!parse_model}; [load] raises
    [Failure] on unreadable or malformed files. *)
