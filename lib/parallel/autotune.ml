type kernel = Gemm | Gemv | Spmv | Pairwise | Jacobi

type kernel_model = { elem_ns : float; par_speedup : float }

type model = {
  domains : int;
  dispatch_ns : float;
  chunk_ns : float;
  gemm : kernel_model;
  gemv : kernel_model;
  spmv : kernel_model;
  pairwise : kernel_model;
  jacobi : kernel_model;
}

type mode = Static | Serial | Parallel | Calibrated of model
type choice = { parallel : bool; grain : int option }

let kernel_name = function
  | Gemm -> "gemm"
  | Gemv -> "gemv"
  | Spmv -> "spmv"
  | Pairwise -> "pairwise"
  | Jacobi -> "jacobi"

let mode_name = function
  | Static -> "static"
  | Serial -> "serial"
  | Parallel -> "parallel"
  | Calibrated _ -> "calibrated"

let kernel_model m = function
  | Gemm -> m.gemm
  | Gemv -> m.gemv
  | Spmv -> m.spmv
  | Pairwise -> m.pairwise
  | Jacobi -> m.jacobi

(* The historical compile-time thresholds, in each kernel's work
   measure.  Static mode must reproduce the pre-autotune decisions
   bit-for-bit, so these mirror the constants that used to live at the
   call sites: gemm rows*k*cols >= 2^16, gemv rows*cols >= 2^15,
   spmv nnz >= 2^12, pairwise n >= 64 (n^2 >= 4096), jacobi n >= 192
   (n^2 >= 36864 per tournament round). *)
let static_threshold = function
  | Gemm -> 1 lsl 16
  | Gemv -> 1 lsl 15
  | Spmv -> 1 lsl 12
  | Pairwise -> 4096
  | Jacobi -> 36864

(* A kernel goes parallel only when the modelled saving beats the
   modelled dispatch cost by this factor; 2x keeps the decision robust
   to probe noise, which is what makes "never slower than serial" hold
   in practice rather than on average. *)
let margin = 2.0

(* Below this measured speedup the parallel leg is treated as not
   paying at all (scheduler noise easily fakes a few percent). *)
let min_speedup = 1.05

let crossover_work ?(dispatches = 1) m k =
  let km = kernel_model m k in
  if m.domains < 2 || km.par_speedup < min_speedup || km.elem_ns <= 0. then
    max_int
  else
    let saved_per_unit = km.elem_ns *. (1. -. (1. /. km.par_speedup)) in
    let overhead = margin *. float_of_int dispatches *. m.dispatch_ns in
    let w = ceil (overhead /. saved_per_unit) in
    if w >= float_of_int max_int then max_int else Stdlib.max 1 (int_of_float w)

(* Chunk count for a calibrated parallel dispatch: enough chunks for
   dynamic load balancing (up to 8 per domain), but each chunk must
   carry at least ~32x the per-chunk scheduling cost so the chunking
   overhead stays in the noise.  Depends only on the model and the
   call's work measure, never on the live pool. *)
let calibrated_grain m k ~work ~rows =
  let km = kernel_model m k in
  let serial_ns = float_of_int work *. km.elem_ns in
  let affordable =
    if m.chunk_ns <= 0. then 8 * m.domains
    else int_of_float (serial_ns /. (32. *. m.chunk_ns))
  in
  let chunks = Stdlib.min (8 * m.domains) (Stdlib.max 2 affordable) in
  let chunks = Stdlib.min chunks (Stdlib.max 1 rows) in
  Stdlib.max 1 ((rows + chunks - 1) / chunks)

(* --- mode resolution ------------------------------------------------ *)

let forced : mode option ref = ref None
let env_resolved : mode option ref = ref None

let render_model m =
  let kern km =
    Telemetry.Export.(
      Obj [ ("elem_ns", Num km.elem_ns); ("par_speedup", Num km.par_speedup) ])
  in
  Telemetry.Export.(
    render
      (Obj
         [
           ("report", Str "gssl-tune-cache");
           ("version", Num 1.);
           ("domains", Num (float_of_int m.domains));
           ("dispatch_ns", Num m.dispatch_ns);
           ("chunk_ns", Num m.chunk_ns);
           ( "kernels",
             Obj
               [
                 ("gemm", kern m.gemm);
                 ("gemv", kern m.gemv);
                 ("spmv", kern m.spmv);
                 ("pairwise", kern m.pairwise);
                 ("jacobi", kern m.jacobi);
               ] );
         ]))

let parse_model text =
  let open Telemetry.Export in
  let fail msg = failwith (Printf.sprintf "Autotune.parse_model: %s" msg) in
  let json =
    match parse text with
    | j -> j
    | exception Parse_error msg -> fail ("bad JSON: " ^ msg)
  in
  let num field j =
    match Option.bind (member field j) to_float with
    | Some v when Float.is_finite v -> v
    | _ -> fail (Printf.sprintf "missing numeric field %S" field)
  in
  (match member "report" json with
  | Some (Str "gssl-tune-cache") -> ()
  | _ -> fail "not a gssl-tune-cache report");
  (match member "version" json with
  | Some (Num 1.) -> ()
  | _ -> fail "unsupported cache version");
  let kernels =
    match member "kernels" json with
    | Some k -> k
    | None -> fail "missing kernels object"
  in
  let kern name =
    match member name kernels with
    | Some j -> { elem_ns = num "elem_ns" j; par_speedup = num "par_speedup" j }
    | None -> fail (Printf.sprintf "missing kernel %S" name)
  in
  {
    domains = int_of_float (num "domains" json);
    dispatch_ns = num "dispatch_ns" json;
    chunk_ns = num "chunk_ns" json;
    gemm = kern "gemm";
    gemv = kern "gemv";
    spmv = kern "spmv";
    pairwise = kern "pairwise";
    jacobi = kern "jacobi";
  }

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (render_model m);
      output_char oc '\n')

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> failwith ("Autotune.load: " ^ msg)
  in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_model text

(* --- calibration ---------------------------------------------------- *)

let now_ns () = Unix.gettimeofday () *. 1e9

(* Time one call of [f], auto-scaling the repeat count until the
   measurement spans at least ~50 us so clock granularity is invisible.
   Returns nanoseconds per call. *)
let time_adaptive f =
  let rec go reps =
    let t0 = now_ns () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = now_ns () -. t0 in
    if dt >= 5e4 || reps >= 1 lsl 22 then dt /. float_of_int reps
    else go (reps * 2)
  in
  go 1

let median_of ~probes f =
  let xs = Array.init probes (fun _ -> time_adaptive f) in
  Array.sort compare xs;
  xs.(probes / 2)

(* Deterministic probe data without depending on the prng library
   (parallel sits below it in the dependency order). *)
let fill_xorshift arr seed =
  let s = ref (seed lor 1) in
  for i = 0 to Array.length arr - 1 do
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x land max_int;
    arr.(i) <- float_of_int (!s land 0xFFFF) /. 65536.
  done

let calibrate ?domains ?(probes = 5) () =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domain_count ()
  in
  if domains < 1 then invalid_arg "Autotune.calibrate: domains must be >= 1";
  if probes < 1 then invalid_arg "Autotune.calibrate: probes must be >= 1";
  Pool.with_pool ~domains (fun pool ->
      (* spawn the workers before anything is timed *)
      Pool.parallel_for ~grain:1 pool domains (fun _ _ -> ());
      let sink = ref 0. in
      let keep v = sink := !sink +. v in
      (* dispatch cost: an empty job with one chunk per domain; chunk
         cost: the marginal cost per extra chunk at a high chunk count *)
      let chunks = Stdlib.max 256 (4 * domains) in
      let dispatch_few =
        median_of ~probes (fun () ->
            Pool.parallel_for ~grain:1 pool domains (fun _ _ -> ()))
      in
      let dispatch_many =
        median_of ~probes (fun () ->
            Pool.parallel_for ~grain:1 pool chunks (fun _ _ -> ()))
      in
      let chunk_ns =
        Stdlib.max 1.
          ((dispatch_many -. dispatch_few) /. float_of_int (chunks - domains))
      in
      let dispatch_ns = Stdlib.max 100. dispatch_few in
      let speedup serial par =
        let ts = median_of ~probes serial and tp = median_of ~probes par in
        (ts, ts /. tp)
      in
      (* gemm probe: g^3 multiply-adds, row-parallel *)
      let g = 64 in
      let a = Array.make (g * g) 0. and b = Array.make (g * g) 0. in
      let c = Array.make (g * g) 0. in
      fill_xorshift a 11;
      fill_xorshift b 23;
      let gemm_rows lo hi =
        for i = lo to hi - 1 do
          let cbase = i * g in
          for k = 0 to g - 1 do
            let aik = a.((i * g) + k) in
            let bbase = k * g in
            for j = 0 to g - 1 do
              c.(cbase + j) <- c.(cbase + j) +. (aik *. b.(bbase + j))
            done
          done
        done
      in
      let t_gemm, s_gemm =
        speedup
          (fun () -> gemm_rows 0 g)
          (fun () -> Pool.parallel_for pool g gemm_rows)
      in
      keep c.(0);
      let gemm =
        { elem_ns = t_gemm /. float_of_int (g * g * g); par_speedup = s_gemm }
      in
      (* gemv probe: rows*cols multiply-adds *)
      let gr = 192 in
      let gx = Array.make gr 0. and gy = Array.make gr 0. in
      fill_xorshift gx 31;
      let ga = Array.make (gr * gr) 0. in
      fill_xorshift ga 41;
      let gemv_rows lo hi =
        for i = lo to hi - 1 do
          let base = i * gr in
          let acc = ref 0. in
          for j = 0 to gr - 1 do
            acc := !acc +. (ga.(base + j) *. gx.(j))
          done;
          gy.(i) <- !acc
        done
      in
      let t_gemv, s_gemv =
        speedup
          (fun () -> gemv_rows 0 gr)
          (fun () -> Pool.parallel_for pool gr gemv_rows)
      in
      keep gy.(0);
      let gemv =
        { elem_ns = t_gemv /. float_of_int (gr * gr); par_speedup = s_gemv }
      in
      (* spmv probe: synthetic CSR with a fixed 8 entries per row *)
      let sr = 2048 and per_row = 8 in
      let nnz = sr * per_row in
      let vals = Array.make nnz 0. and cols = Array.make nnz 0 in
      fill_xorshift vals 53;
      (let s = ref 12345 in
       for i = 0 to nnz - 1 do
         s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
         cols.(i) <- !s mod sr
       done);
      let sx = Array.make sr 0. and sy = Array.make sr 0. in
      fill_xorshift sx 61;
      let spmv_rows lo hi =
        for i = lo to hi - 1 do
          let acc = ref 0. in
          for k = i * per_row to ((i + 1) * per_row) - 1 do
            acc := !acc +. (vals.(k) *. sx.(cols.(k)))
          done;
          sy.(i) <- !acc
        done
      in
      let t_spmv, s_spmv =
        speedup
          (fun () -> spmv_rows 0 sr)
          (fun () -> Pool.parallel_for pool sr spmv_rows)
      in
      keep sy.(0);
      let spmv =
        { elem_ns = t_spmv /. float_of_int nnz; par_speedup = s_spmv }
      in
      (* pairwise probe: triangular n^2 pass over d=5 points (the
         paper's dimension); elem_ns is per matrix cell *)
      let pn = 128 and pd = 5 in
      let pts = Array.make (pn * pd) 0. in
      fill_xorshift pts 71;
      let norms = Array.make pn 0. in
      for i = 0 to pn - 1 do
        let acc = ref 0. in
        for k = 0 to pd - 1 do
          let v = pts.((i * pd) + k) in
          acc := !acc +. (v *. v)
        done;
        norms.(i) <- !acc
      done;
      let pout = Array.make (pn * pn) 0. in
      let pair_rows lo hi =
        for i = lo to hi - 1 do
          for j = i + 1 to pn - 1 do
            let dot = ref 0. in
            for k = 0 to pd - 1 do
              dot := !dot +. (pts.((i * pd) + k) *. pts.((j * pd) + k))
            done;
            let d2 = norms.(i) +. norms.(j) -. (2. *. !dot) in
            let d2 = if d2 > 0. then d2 else 0. in
            pout.((i * pn) + j) <- d2;
            pout.((j * pn) + i) <- d2
          done
        done
      in
      let t_pair, s_pair =
        speedup
          (fun () -> pair_rows 0 pn)
          (fun () ->
            Pool.parallel_for ~grain:(Stdlib.max 1 ((pn + 255) / 256)) pool pn
              pair_rows)
      in
      keep pout.(1);
      let pairwise =
        { elem_ns = t_pair /. float_of_int (pn * pn); par_speedup = s_pair }
      in
      (* jacobi probe: one round of disjoint column rotations (the unit
         the tournament sweep dispatches); elem_ns is per n^2 work *)
      let jn = 128 in
      let jm = Array.make (jn * jn) 0. in
      fill_xorshift jm 83;
      let cth = 0.8 and sth = 0.6 in
      let npairs = jn / 2 in
      let rot_pairs lo hi =
        for p = lo to hi - 1 do
          let cp = p and cq = npairs + p in
          for r = 0 to jn - 1 do
            let x = jm.((r * jn) + cp) and y = jm.((r * jn) + cq) in
            jm.((r * jn) + cp) <- (cth *. x) -. (sth *. y);
            jm.((r * jn) + cq) <- (sth *. x) +. (cth *. y)
          done
        done
      in
      let t_jac, s_jac =
        speedup
          (fun () -> rot_pairs 0 npairs)
          (fun () ->
            Pool.parallel_for
              ~grain:(Stdlib.max 1 ((npairs + 15) / 16))
              pool npairs rot_pairs)
      in
      keep jm.(0);
      let jacobi =
        { elem_ns = t_jac /. float_of_int (jn * jn); par_speedup = s_jac }
      in
      ignore (Sys.opaque_identity !sink);
      { domains; dispatch_ns; chunk_ns; gemm; gemv; spmv; pairwise; jacobi })

let resolve_env () =
  match Sys.getenv_opt "GSSL_TUNE" with
  | None | Some "" | Some "off" -> Static
  | Some "serial" -> Serial
  | Some "parallel" -> Parallel
  | Some path ->
      if Sys.file_exists path then Calibrated (load path)
      else
        let m = calibrate () in
        (try save path m with Sys_error _ -> ());
        Calibrated m

let current_mode () =
  match !forced with
  | Some m -> m
  | None -> (
      match !env_resolved with
      | Some m -> m
      | None ->
          let m = resolve_env () in
          env_resolved := Some m;
          m)

let set_mode m = forced := Some m

let with_mode m f =
  let prev = !forced in
  forced := Some m;
  Fun.protect ~finally:(fun () -> forced := prev) f

(* --- the decision, with its telemetry log --------------------------- *)

let decision_counters =
  List.map
    (fun k ->
      ( k,
        Telemetry.Counter.make
          (Printf.sprintf "parallel.tune.%s.serial" (kernel_name k)),
        Telemetry.Counter.make
          (Printf.sprintf "parallel.tune.%s.parallel" (kernel_name k)) ))
    [ Gemm; Gemv; Spmv; Pairwise; Jacobi ]

let log_decision k parallel =
  let _, serial_c, par_c =
    List.find (fun (k', _, _) -> k' = k) decision_counters
  in
  Telemetry.Counter.incr (if parallel then par_c else serial_c)

let serial_choice = { parallel = false; grain = None }

let plan ?(dispatches = 1) k ~work ~rows =
  let choice =
    if rows < 2 || work <= 0 then serial_choice
    else
      match current_mode () with
      | Serial -> serial_choice
      | Parallel -> { parallel = true; grain = None }
      | Static ->
          { parallel = work >= static_threshold k; grain = None }
      | Calibrated m ->
          if work >= crossover_work ~dispatches m k then
            { parallel = true; grain = Some (calibrated_grain m k ~work ~rows) }
          else serial_choice
  in
  log_decision k choice.parallel;
  choice

let decide ?dispatches k ~work = (plan ?dispatches k ~work ~rows:max_int).parallel
