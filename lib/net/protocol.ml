module J = Telemetry.Export
module Engine = Serve.Engine

type request =
  | Query
  | Relabel of { vertex : int; label : float }
  | Stats
  | Metrics

type error =
  | Malformed_json of string
  | Not_an_object
  | Missing_op
  | Unknown_op of string
  | Missing_field of { op : string; field : string }
  | Bad_field of { op : string; field : string; reason : string }

let error_code = function
  | Malformed_json _ -> "malformed_json"
  | Not_an_object -> "not_an_object"
  | Missing_op -> "missing_op"
  | Unknown_op _ -> "unknown_op"
  | Missing_field _ -> "missing_field"
  | Bad_field _ -> "bad_field"

let describe_error = function
  | Malformed_json msg -> Printf.sprintf "payload is not valid JSON: %s" msg
  | Not_an_object -> "payload must be a JSON object"
  | Missing_op -> "payload has no \"op\" string field"
  | Unknown_op op -> Printf.sprintf "unknown op %S" op
  | Missing_field { op; field } ->
      Printf.sprintf "op %S requires field %S" op field
  | Bad_field { op; field; reason } ->
      Printf.sprintf "op %S field %S: %s" op field reason

let op_name = function
  | Query -> "query"
  | Relabel _ -> "relabel"
  | Stats -> "stats"
  | Metrics -> "metrics"

let request_json = function
  | Query -> J.Obj [ ("op", J.Str "query") ]
  | Relabel { vertex; label } ->
      J.Obj
        [ ("op", J.Str "relabel");
          ("vertex", J.Num (float_of_int vertex));
          ("label", J.Num label) ]
  | Stats -> J.Obj [ ("op", J.Str "stats") ]
  | Metrics -> J.Obj [ ("op", J.Str "metrics") ]

let render = J.render
let render_request r = render (request_json r)

(* Numeric field extraction with the hostile cases closed off: absent,
   non-numeric, and non-finite (the parser reads 1e999 as infinity)
   all map to typed errors, never to a value the engine sees. *)
let num_field ~op j name =
  match J.member name j with
  | None -> Error (Missing_field { op; field = name })
  | Some v -> (
      match J.to_float v with
      | None -> Error (Bad_field { op; field = name; reason = "not a number" })
      | Some x when not (Float.is_finite x) ->
          Error (Bad_field { op; field = name; reason = "non-finite" })
      | Some x -> Ok x)

let parse_request text =
  match J.parse text with
  | exception J.Parse_error msg -> Error (Malformed_json msg)
  | J.Obj _ as j -> (
      match J.member "op" j with
      | None -> Error Missing_op
      | Some (J.Str "query") -> Ok Query
      | Some (J.Str "stats") -> Ok Stats
      | Some (J.Str "metrics") -> Ok Metrics
      | Some (J.Str "relabel") -> (
          let op = "relabel" in
          match (num_field ~op j "vertex", num_field ~op j "label") with
          | Error e, _ -> Error e
          | _, Error e -> Error e
          | Ok v, Ok label ->
              if not (Float.is_integer v) || Float.abs v > 1e9 then
                Error
                  (Bad_field
                     { op; field = "vertex"; reason = "not a vertex index" })
              else Ok (Relabel { vertex = int_of_float v; label }))
      | Some (J.Str op) -> Error (Unknown_op op)
      | Some _ -> Error Missing_op)
  | _ -> Error Not_an_object

let predictions_digest preds =
  Array.fold_left
    (fun h (v, x) ->
      Serve.Cache.mix (Serve.Cache.mix h (Int64.of_int v))
        (Int64.bits_of_float x))
    0x5eedL preds

let response_body (r : Engine.response) =
  let status = Engine.status_name r.Engine.status in
  let reason =
    match r.Engine.status with
    | Engine.Served -> []
    | Engine.Degraded why | Engine.Shed why -> [ ("reason", J.Str why) ]
  in
  let healthy =
    match r.Engine.certificate with
    | Some c -> J.Bool (Obs.Health.healthy c)
    | None -> J.Null
  in
  let predictions =
    J.Arr
      (Array.to_list r.Engine.predictions
      |> List.map (fun (v, x) ->
             J.Arr [ J.Num (float_of_int v); J.Num x ]))
  in
  J.Obj
    ([ ("ok", J.Bool true);
       ("id", J.Num (float_of_int r.Engine.id));
       ("trace", J.Str (Obs.Trace_ctx.id_hex r.Engine.trace_id));
       ("status", J.Str status) ]
    @ reason
    @ [ ("latency_ms", J.Num r.Engine.latency_ms);
        ("queue_ms", J.Num r.Engine.queue_ms);
        ("attempts", J.Num (float_of_int r.Engine.attempts));
        ("cache_hit", J.Bool r.Engine.cache_hit);
        ("healthy", healthy);
        ("predictions", predictions);
        ("pred_digest",
         J.Str
           (Printf.sprintf "%016Lx" (predictions_digest r.Engine.predictions)));
      ])

let stats_body engine =
  let s = Engine.stats engine in
  let tr = Engine.transport engine in
  let i name v = (name, J.Num (float_of_int v)) in
  J.Obj
    [ ("ok", J.Bool true);
      ("stats",
       J.Obj
         [ i "served" s.Engine.served;
           i "degraded" s.Engine.degraded;
           i "shed" s.Engine.shed;
           i "deadline_expired" s.Engine.deadline_expired;
           i "solver_aborts" s.Engine.solver_aborts;
           i "retried" s.Engine.retried;
           i "relabels" s.Engine.relabels;
           i "breaker_trips" s.Engine.breaker_trips;
           i "cache_hits" s.Engine.cache_hits;
           i "cache_misses" s.Engine.cache_misses;
           i "max_backlog" s.Engine.max_backlog ]);
      ("transport",
       J.Obj
         [ i "conns_opened" tr.Serve.Transport.conns_opened;
           i "conns_closed" tr.Serve.Transport.conns_closed;
           i "frames_ok" tr.Serve.Transport.frames_ok;
           i "frames_rejected" tr.Serve.Transport.frames_rejected;
           i "client_gone" tr.Serve.Transport.client_gone;
           i "io_deadline_expired" tr.Serve.Transport.io_deadline_expired;
           i "overflow_shed" tr.Serve.Transport.overflow_shed;
           i "drained" tr.Serve.Transport.drained ]);
    ]

let metrics_body engine =
  J.Obj
    [ ("ok", J.Bool true);
      ("metrics", Obs.Expo.to_json (Engine.metrics engine)) ]

let error_body ~code ~detail =
  J.Obj
    [ ("ok", J.Bool false); ("error", J.Str code); ("detail", J.Str detail) ]
