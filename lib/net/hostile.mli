(** Deterministic hostile-client soak: the transport-layer counterpart
    of {!Serve.Soak}.

    Generates a seeded trace of client connections — a clean mix
    (whole, chunked, and pipelined queries, relabels, stats/metrics)
    interleaved with a hostile menu (byte-level frame corruption: bad
    magic, bad version, oversized length; truncated frames with
    half-close; garbage JSON with embedded NULs; unknown ops; missing
    and non-finite fields; slowloris mid-frame stalls; peers that stop
    reading; abrupt disconnects; burst connects) — and replays it
    byte-for-byte through {!Conn} + {!Serve.Engine.handle} on the
    virtual clock.  Invariants checked:

    - the server never crashes: no exception escapes any connection,
      whatever bytes arrive;
    - every frame is answered or typed-error-counted — hostile inputs
      produce protocol error responses, never silence;
    - zero unflagged degradation: every [ok] answer is [served] with a
      healthy certificate or carries an explicit degraded/shed reason;
    - per-connection output stays bounded (backpressure sheds);
    - transport counters reconcile exactly with the scenario script
      (every expected [client_gone], [io_deadline_expired], rejected
      and accepted frame is accounted for);
    - optionally ([verify_replay]), a second run produces a
      bit-identical response-byte digest — and, when journaling, a
      bit-identical span journal.

    Violations are returned as strings, never exceptions. *)

type config = {
  connections : int;
  seed : int;
  n_vertices : int;
  n_labeled : int;
  hostile_rate : float;  (** fraction of connections from the hostile menu *)
  mean_gap_ms : float;   (** mean exponential inter-connect gap *)
  burst_every : int;     (** a connect burst starts every this many *)
  burst_size : int;
  io_deadline_ms : float;
  deadline_ms : float;   (** engine solve budget *)
  verify_replay : bool;
  journal : bool;
}

val default : config
(** 1200 connections, seed 42, 45% hostile, 50 ms I/O deadline. *)

type summary = {
  connections : int;
  frames_sent : int;     (** well-formed frames the script sent *)
  responses : int;       (** response frames clients read back *)
  ok_responses : int;
  error_responses : int;
  served : int;          (** engine's books at end of run *)
  degraded : int;
  frames_ok : int;       (** transport counters at end of run *)
  frames_rejected : int;
  client_gone : int;
  io_deadline_expired : int;
  overflow_shed : int;
  max_conn_buffer : int; (** deepest per-connection output buffer *)
  journal_lines : int;
  journal_digest : int64;
  digest : int64;        (** order-sensitive hash of every response byte *)
  replay_verified : bool;
  wall_ms : float;
  violations : string list;
}

val run : config -> summary

val run_full : config -> summary * Serve.Engine.t
(** Also returns the first run's engine (live journal and metrics). *)

val ok : summary -> bool
val describe : summary -> string
