(** One client connection as an I/O-free state machine.

    The socket layer ({!Server}) — or the hostile-client soak
    ({!Hostile}), or a test — owns the file descriptor and pushes bytes
    in ({!on_bytes}, {!on_eof}) and pulls response bytes out
    ({!pending}, {!consume}).  Everything between is deterministic and
    clock-driven, which is what makes byte-level fault injection
    replayable on the virtual clock:

    - Frames decode incrementally ({!Frame}); a completed payload is
      parsed ({!Protocol}) and dispatched to {!Serve.Engine.handle}
      with its arrival anchored at the frame's {e first} byte, so a
      slow sender burns its own deadline budget, not the server's.
    - Every failure mode is a typed, counted outcome: framing and JSON
      errors answer with an error frame ([Transport.frame_rejected]);
      a frame that stalls past the I/O deadline, or a peer that stops
      reading its responses, expires ([io_deadline_expired]) and the
      connection closes; output beyond the buffer bound sheds with an
      explicit [overloaded] status ([overflow_shed]); an abrupt peer
      disconnect counts [client_gone].  Nothing raises.
    - The connection carries an {!Obs.Trace_ctx} root span with one
      child span per frame, so transport activity shows up in the same
      trace/digest machinery as solves. *)

type config = {
  io_deadline_ms : float;
      (** budget for finishing a started frame, and for the peer to
          drain a queued response — charged to the engine clock *)
  max_payload : int;  (** per-frame payload cap (see {!Frame}) *)
  max_buffered : int;
      (** output backpressure bound: a request arriving with more than
          this many unread response bytes is shed as [overloaded] *)
}

val default_config : config
(** 2000 ms I/O deadline, 1 MiB payloads, 256 KiB output buffer. *)

type t

val create :
  ?config:config -> engine:Serve.Engine.t -> fresh_id:(unit -> int) ->
  id:int -> unit -> t
(** Uses the engine's clock, transport counters, and seed (for the
    connection trace id).  [fresh_id] allocates engine request ids. *)

(** {2 Input (socket [read] side)} *)

val on_bytes : t -> string -> unit
(** Feed received bytes; dispatches any completed frames. *)

val on_eof : t -> unit
(** Peer half-closed its write side: report a truncated frame if one
    was in flight, then flush remaining responses and close. *)

val tick : t -> unit
(** Check I/O deadlines against the clock — call once per event-loop
    turn (and after virtual-clock advances in tests). *)

val abort : t -> reason:string -> unit
(** The peer vanished (EPIPE / ECONNRESET / disconnect): count
    [client_gone], close the span, drop buffered output. *)

val shutdown : t -> reason:string -> unit
(** Orderly server-side close (drain complete, EOF flushed). *)

(** {2 Output (socket [write] side)} *)

val pending : t -> string
(** Unsent response bytes. *)

val pending_len : t -> int
val consume : t -> int -> unit
(** The first [n] pending bytes went out (or were read by the test). *)

(** {2 State} *)

val id : t -> int
val want_close : t -> bool
(** Closing and nothing left to flush — the owner should {!shutdown}. *)

val is_closed : t -> bool
val frames : t -> int
(** Well-formed frames dispatched. *)

val rejected : t -> int
(** Frames answered with a typed error. *)

val responses : t -> int
(** Response frames queued for send. *)

val io_expired : t -> bool
val aborted : t -> bool
val max_buffered_seen : t -> int
val close_reason : t -> string
val ctx : t -> Obs.Trace_ctx.t
