let magic = "GSSL"
let version = 1
let header_len = 9
let default_max_payload = 1 lsl 20
let max_u32 = 0xFFFFFFFF

type error =
  | Bad_magic of { got : string }
  | Bad_version of { got : int }
  | Too_large of { length : int; limit : int }
  | Truncated of { have : int; need : int }

let error_code = function
  | Bad_magic _ -> "bad_magic"
  | Bad_version _ -> "bad_version"
  | Too_large _ -> "too_large"
  | Truncated _ -> "truncated"

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let describe = function
  | Bad_magic { got } ->
      Printf.sprintf "bad magic: header starts 0x%s, want %S" (hex got) magic
  | Bad_version { got } ->
      Printf.sprintf "unsupported protocol version %d (this server speaks %d)"
        got version
  | Too_large { length; limit } ->
      Printf.sprintf "declared payload length %d exceeds the %d-byte limit"
        length limit
  | Truncated { have; need } ->
      Printf.sprintf "truncated frame: connection ended after %d of %d byte(s)"
        have need

let encode payload =
  let n = String.length payload in
  if n > max_u32 then invalid_arg "Frame.encode: payload exceeds u32 length";
  let b = Bytes.create (header_len + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 6 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 7 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 8 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

type state =
  | Header
  | Body of { need : int }  (** body bytes still missing *)
  | Failed of error

type t = {
  max_payload : int;
  hbuf : Bytes.t;
  mutable hlen : int;
  body : Buffer.t;
  mutable state : state;
}

let create ?(max_payload = default_max_payload) () =
  if max_payload < 0 then invalid_arg "Frame.create: negative max_payload";
  { max_payload;
    hbuf = Bytes.create header_len;
    hlen = 0;
    body = Buffer.create 256;
    state = Header }

let failed t = match t.state with Failed e -> Some e | _ -> None

let in_progress t =
  match t.state with
  | Header -> t.hlen > 0
  | Body _ -> true
  | Failed _ -> false

let feed t data =
  let out = ref [] in
  let emit ev = out := ev :: !out in
  let fail e =
    t.state <- Failed e;
    emit (Error e)
  in
  let n = String.length data in
  let i = ref 0 in
  while !i < n do
    match t.state with
    | Failed _ -> i := n
    | Header ->
        let c = data.[!i] in
        incr i;
        let pos = t.hlen in
        Bytes.set t.hbuf pos c;
        t.hlen <- t.hlen + 1;
        if pos < 4 && not (Char.equal c magic.[pos]) then
          fail (Bad_magic { got = Bytes.sub_string t.hbuf 0 t.hlen })
        else if pos = 4 && Char.code c <> version then
          fail (Bad_version { got = Char.code c })
        else if t.hlen = header_len then begin
          let b k = Char.code (Bytes.get t.hbuf (5 + k)) in
          let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
          t.hlen <- 0;
          if len > t.max_payload then
            fail (Too_large { length = len; limit = t.max_payload })
          else if len = 0 then emit (Ok "")
          else begin
            Buffer.clear t.body;
            t.state <- Body { need = len }
          end
        end
    | Body { need } ->
        let take = Stdlib.min need (n - !i) in
        Buffer.add_substring t.body data !i take;
        i := !i + take;
        if take = need then begin
          emit (Ok (Buffer.contents t.body));
          Buffer.clear t.body;
          t.state <- Header
        end
        else t.state <- Body { need = need - take }
  done;
  List.rev !out

let finish t =
  match t.state with
  | Failed _ -> None
  | Header when t.hlen = 0 -> None
  | Header -> Some (Truncated { have = t.hlen; need = header_len })
  | Body { need } ->
      let have = Buffer.length t.body in
      Some (Truncated { have = header_len + have; need = header_len + have + need })
