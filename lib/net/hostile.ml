module Engine = Serve.Engine
module Clock = Serve.Clock
module Transport = Serve.Transport
module Rng = Prng.Rng
module J = Telemetry.Export

type config = {
  connections : int;
  seed : int;
  n_vertices : int;
  n_labeled : int;
  hostile_rate : float;
  mean_gap_ms : float;
  burst_every : int;
  burst_size : int;
  io_deadline_ms : float;
  deadline_ms : float;
  verify_replay : bool;
  journal : bool;
}

let default =
  { connections = 1200;
    seed = 42;
    n_vertices = 80;
    n_labeled = 20;
    hostile_rate = 0.45;
    mean_gap_ms = 3.;
    burst_every = 89;
    burst_size = 16;
    io_deadline_ms = 50.;
    deadline_ms = 25.;
    verify_replay = false;
    journal = false }

type summary = {
  connections : int;
  frames_sent : int;
  responses : int;
  ok_responses : int;
  error_responses : int;
  served : int;
  degraded : int;
  frames_ok : int;
  frames_rejected : int;
  client_gone : int;
  io_deadline_expired : int;
  overflow_shed : int;
  max_conn_buffer : int;
  journal_lines : int;
  journal_digest : int64;
  digest : int64;
  replay_verified : bool;
  wall_ms : float;
  violations : string list;
}

(* ---------- scenario scripts ---------- *)

type ev =
  | Send of string
  | Stall of float
  | Half_close  (* shut down the write side; keep reading *)
  | Drop        (* vanish without reading anything *)

type expect =
  | Ok_n of int          (* this many ok:true responses, no errors *)
  | Err of string        (* an ok:false response with this error code *)
  | Io_deadline          (* the connection's I/O deadline must expire *)
  | Gone                 (* the connection must count client_gone *)

type scenario = {
  sid : int;
  arrival_ms : float;
  name : string;
  events : ev list;
  expect : expect;
  reads : bool;           (* drains responses as the script runs *)
  small_buffer : bool;    (* run with a tiny output buffer (overflow) *)
  exp_ok_frames : int;    (* frames the transport should accept *)
  exp_rejected : int;     (* frames it should answer with a typed error *)
  exp_io : bool;
  exp_gone : bool;
}

let query_frame = lazy (Frame.encode (Protocol.render_request Protocol.Query))
let stats_frame = lazy (Frame.encode (Protocol.render_request Protocol.Stats))
let metrics_frame =
  lazy (Frame.encode (Protocol.render_request Protocol.Metrics))

let relabel_frame ~vertex ~label =
  Frame.encode (Protocol.render_request (Protocol.Relabel { vertex; label }))

let random_bytes rng n =
  String.init n (fun _ -> Char.chr (Rng.int rng 256))

(* Split [s] into [k] nonempty chunks at rng-chosen cut points. *)
let chunks rng k s =
  let n = String.length s in
  let k = Stdlib.max 1 (Stdlib.min k (n - 1)) in
  let cuts =
    List.init (k - 1) (fun _ -> 1 + Rng.int rng (n - 1))
    |> List.sort_uniq compare
  in
  let rec pieces start = function
    | [] -> [ String.sub s start (n - start) ]
    | c :: rest -> String.sub s start (c - start) :: pieces c rest
  in
  pieces 0 cuts

let base ~sid ~arrival ~name ~events ~expect =
  { sid; arrival_ms = arrival; name; events; expect; reads = true;
    small_buffer = false; exp_ok_frames = 0; exp_rejected = 0;
    exp_io = false; exp_gone = false }

let gen cfg prob =
  let rng = Rng.create ((cfg.seed * 6563) + 29) in
  let n = Gssl.Problem.n_labeled prob in
  let m = Gssl.Problem.n_unlabeled prob in
  let pool = Array.init m (fun i -> n + i) in
  Rng.shuffle_inplace rng pool;
  let max_relabels = Stdlib.max 0 (m - 8) in
  let next_relabel = ref 0 in
  let io = cfg.io_deadline_ms in
  let arrival = ref 0. in
  List.init cfg.connections (fun sid ->
      let in_burst =
        cfg.burst_every > 0 && sid >= cfg.burst_every
        && sid mod cfg.burst_every < cfg.burst_size
      in
      let gap =
        if in_burst then 0.02
        else -.cfg.mean_gap_ms *. log (1. -. Rng.float rng)
      in
      arrival := !arrival +. gap;
      let a = !arrival in
      let q () = Lazy.force query_frame in
      let clean () =
        match Rng.int rng 6 with
        | 0 ->
            { (base ~sid ~arrival:a ~name:"query"
                 ~events:[ Send (q ()); Half_close ] ~expect:(Ok_n 1))
              with exp_ok_frames = 1 }
        | 1 ->
            (* the frame dribbles in, but well inside the I/O deadline *)
            let parts = chunks rng (2 + Rng.int rng 3) (q ()) in
            let events =
              List.concat_map
                (fun p -> [ Send p; Stall (io /. 10.) ])
                parts
              @ [ Half_close ]
            in
            { (base ~sid ~arrival:a ~name:"chunked_query" ~events
                 ~expect:(Ok_n 1))
              with exp_ok_frames = 1 }
        | 2 when !next_relabel < max_relabels ->
            let vertex = pool.(!next_relabel) in
            incr next_relabel;
            let label = float_of_int (vertex mod 2) in
            { (base ~sid ~arrival:a ~name:"relabel"
                 ~events:[ Send (relabel_frame ~vertex ~label); Half_close ]
                 ~expect:(Ok_n 1))
              with exp_ok_frames = 1 }
        | 3 ->
            { (base ~sid ~arrival:a ~name:"stats"
                 ~events:[ Send (Lazy.force stats_frame); Half_close ]
                 ~expect:(Ok_n 1))
              with exp_ok_frames = 1 }
        | 4 ->
            { (base ~sid ~arrival:a ~name:"metrics"
                 ~events:[ Send (Lazy.force metrics_frame); Half_close ]
                 ~expect:(Ok_n 1))
              with exp_ok_frames = 1 }
        | _ ->
            { (base ~sid ~arrival:a ~name:"pipelined"
                 ~events:[ Send (q () ^ q ()); Half_close ]
                 ~expect:(Ok_n 2))
              with exp_ok_frames = 2 }
      in
      let hostile () =
        match Rng.int rng 12 with
        | 0 ->
            let junk =
              String.make 1 (Char.chr (Char.code 'A' + Rng.int rng 6))
              ^ random_bytes rng (3 + Rng.int rng 12)
            in
            { (base ~sid ~arrival:a ~name:"bad_magic"
                 ~events:[ Send junk; Half_close ] ~expect:(Err "bad_magic"))
              with exp_rejected = 1 }
        | 1 ->
            let v = 2 + Rng.int rng 250 in
            let hdr = Frame.magic ^ String.make 1 (Char.chr v)
                      ^ random_bytes rng 4 in
            { (base ~sid ~arrival:a ~name:"bad_version"
                 ~events:[ Send hdr; Half_close ] ~expect:(Err "bad_version"))
              with exp_rejected = 1 }
        | 2 ->
            let hdr = Frame.magic ^ "\001\x7f\xff\xff\xff" in
            { (base ~sid ~arrival:a ~name:"too_large"
                 ~events:[ Send hdr; Half_close ] ~expect:(Err "too_large"))
              with exp_rejected = 1 }
        | 3 ->
            let f = q () in
            let cut = 1 + Rng.int rng (String.length f - 1) in
            { (base ~sid ~arrival:a ~name:"truncated"
                 ~events:[ Send (String.sub f 0 cut); Half_close ]
                 ~expect:(Err "truncated"))
              with exp_rejected = 1 }
        | 4 ->
            let garbage = "\000" ^ random_bytes rng (1 + Rng.int rng 24) in
            { (base ~sid ~arrival:a ~name:"garbage_json"
                 ~events:[ Send (Frame.encode garbage); Half_close ]
                 ~expect:(Err "malformed_json"))
              with exp_rejected = 1 }
        | 5 ->
            { (base ~sid ~arrival:a ~name:"unknown_op"
                 ~events:
                   [ Send (Frame.encode "{\"op\":\"frobnicate\"}"); Half_close ]
                 ~expect:(Err "unknown_op"))
              with exp_rejected = 1 }
        | 6 ->
            { (base ~sid ~arrival:a ~name:"missing_field"
                 ~events:
                   [ Send (Frame.encode "{\"op\":\"relabel\",\"vertex\":5}");
                     Half_close ]
                 ~expect:(Err "missing_field"))
              with exp_rejected = 1 }
        | 7 ->
            { (base ~sid ~arrival:a ~name:"nonfinite_label"
                 ~events:
                   [ Send
                       (Frame.encode
                          "{\"op\":\"relabel\",\"vertex\":5,\"label\":1e999}");
                     Half_close ]
                 ~expect:(Err "bad_field"))
              with exp_rejected = 1 }
        | 8 ->
            (* slowloris: a few header bytes, then silence past the
               I/O deadline *)
            let f = q () in
            let k = 1 + Rng.int rng (Frame.header_len - 1) in
            { (base ~sid ~arrival:a ~name:"slowloris"
                 ~events:
                   [ Send (String.sub f 0 k); Stall ((io *. 2.) +. 1.) ]
                 ~expect:Io_deadline)
              with exp_rejected = 1; exp_io = true }
        | 9 ->
            (* send a valid query, then vanish before reading *)
            { (base ~sid ~arrival:a ~name:"drop" ~events:[ Send (q ()); Drop ]
                 ~expect:Gone)
              with reads = false; exp_ok_frames = 1; exp_gone = true }
        | 10 ->
            (* never reads its answer: the write deadline fires *)
            { (base ~sid ~arrival:a ~name:"slow_reader"
                 ~events:[ Send (q ()); Stall ((io *. 2.) +. 1.) ]
                 ~expect:Io_deadline)
              with reads = false; exp_ok_frames = 1; exp_io = true }
        | _ ->
            (* pipelined burst against a tiny output buffer: the second
               frame must shed as overloaded *)
            { (base ~sid ~arrival:a ~name:"overflow"
                 ~events:[ Send (q () ^ q ()); Half_close ]
                 ~expect:(Err "overloaded"))
              with small_buffer = true; exp_ok_frames = 1; exp_rejected = 1 }
      in
      if Rng.float rng < cfg.hostile_rate then hostile () else clean ())

(* ---------- replay ---------- *)

type rundata = {
  r_engine : Engine.t;
  r_digest : int64;
  r_journal_lines : int;
  r_journal_digest : int64;
  r_responses : int;
  r_ok : int;
  r_err : int;
  r_frames_sent : int;
  r_max_buffer : int;
  r_violations : string list;
}

let engine_config cfg =
  { Engine.default_config with
    Engine.deadline_ms = cfg.deadline_ms;
    seed = cfg.seed }

let mix = Serve.Cache.mix

let mix_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := mix !acc (Int64.of_int (Char.code c))) s;
  !acc

let run_once cfg prob scenarios =
  let clock = Clock.virtual_ () in
  let journal = if cfg.journal then Some (Obs.Journal.create ()) else None in
  let engine = Engine.create ~clock ?journal (engine_config cfg) prob in
  let tr = Engine.transport engine in
  let next_req = ref 0 in
  let fresh_id () =
    incr next_req;
    !next_req
  in
  let conn_cfg =
    { Conn.default_config with Conn.io_deadline_ms = cfg.io_deadline_ms }
  in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let digest = ref 0x6e657430L in
  let responses_total = ref 0 in
  let ok_total = ref 0 in
  let err_total = ref 0 in
  let frames_sent = ref 0 in
  let max_buffer = ref 0 in
  List.iter
    (fun sc ->
      Clock.jump clock sc.arrival_ms;
      let config =
        if sc.small_buffer then { conn_cfg with Conn.max_buffered = 64 }
        else conn_cfg
      in
      let conn = Conn.create ~config ~engine ~fresh_id ~id:sc.sid () in
      let dec = Frame.create () in
      let got = ref [] in
      let drain () =
        if sc.reads then begin
          let s = Conn.pending conn in
          if String.length s > 0 then begin
            Conn.consume conn (String.length s);
            List.iter
              (function
                | Ok payload -> got := payload :: !got
                | Error e ->
                    note "conn %d (%s): server sent an invalid frame (%s)"
                      sc.sid sc.name (Frame.error_code e))
              (Frame.feed dec s)
          end
        end
      in
      (try
         List.iter
           (fun ev ->
             match ev with
             | Send s ->
                 Conn.on_bytes conn s;
                 Conn.tick conn;
                 drain ()
             | Stall ms ->
                 Clock.advance clock ms;
                 Conn.tick conn;
                 drain ()
             | Half_close ->
                 Conn.on_eof conn;
                 Conn.tick conn;
                 drain ()
             | Drop -> Conn.abort conn ~reason:"disconnect")
           sc.events;
         Conn.tick conn;
         drain ();
         if not (Conn.is_closed conn) then
           Conn.shutdown conn ~reason:"client done"
       with e ->
         (* the whole point: nothing a client does may raise *)
         note "conn %d (%s): escaped exception %s" sc.sid sc.name
           (Printexc.to_string e));
      frames_sent := !frames_sent + sc.exp_ok_frames;
      if Conn.max_buffered_seen conn > !max_buffer then
        max_buffer := Conn.max_buffered_seen conn;
      (* classify what the client read back *)
      let resps = List.rev !got in
      let parsed =
        List.filter_map
          (fun p ->
            match J.parse p with
            | j -> Some j
            | exception J.Parse_error _ ->
                note "conn %d (%s): unparseable response payload" sc.sid
                  sc.name;
                None)
          resps
      in
      let oks, errs =
        List.partition
          (fun j -> J.member "ok" j = Some (J.Bool true))
          parsed
      in
      responses_total := !responses_total + List.length parsed;
      ok_total := !ok_total + List.length oks;
      err_total := !err_total + List.length errs;
      (* zero unflagged degradation: a served answer must certify
         healthy; anything else must carry its reason *)
      List.iter
        (fun j ->
          match J.member "status" j with
          | None -> ()  (* stats/metrics bodies *)
          | Some (J.Str "served") ->
              if J.member "healthy" j <> Some (J.Bool true) then
                note "conn %d (%s): served answer without a healthy cert"
                  sc.sid sc.name
          | Some (J.Str _) ->
              if J.member "reason" j = None then
                note "conn %d (%s): degraded answer without a reason" sc.sid
                  sc.name
          | Some _ ->
              note "conn %d (%s): non-string status" sc.sid sc.name)
        oks;
      (match sc.expect with
      | Ok_n want ->
          if List.length oks <> want || errs <> [] then
            note "conn %d (%s): expected %d ok response(s), got %d ok / %d err"
              sc.sid sc.name want (List.length oks) (List.length errs)
      | Err code ->
          let has =
            List.exists
              (fun j -> J.member "error" j = Some (J.Str code))
              errs
          in
          if not has then
            note "conn %d (%s): expected error %S, got %s" sc.sid sc.name code
              (String.concat ","
                 (List.filter_map
                    (fun j ->
                      Option.bind (J.member "error" j) (fun v -> J.to_str v))
                    errs))
      | Io_deadline ->
          if not (Conn.io_expired conn) then
            note "conn %d (%s): I/O deadline did not expire" sc.sid sc.name
      | Gone ->
          if not (Conn.aborted conn) then
            note "conn %d (%s): client_gone not recorded" sc.sid sc.name);
      (* order-sensitive response-byte digest, plus the connection's
         span-tree digest so transport traces must replay too *)
      digest := mix !digest (Int64.of_int sc.sid);
      List.iter (fun p -> digest := mix_string !digest p) resps;
      digest := mix !digest (Int64.of_int (Conn.frames conn));
      digest := mix !digest (Int64.of_int (Conn.rejected conn));
      digest := mix !digest (Obs.Trace_ctx.digest (Conn.ctx conn)))
    scenarios;
  (* counter reconciliation against the script *)
  let exp_ok = List.fold_left (fun a s -> a + s.exp_ok_frames) 0 scenarios in
  let exp_rej = List.fold_left (fun a s -> a + s.exp_rejected) 0 scenarios in
  let exp_io =
    List.length (List.filter (fun s -> s.exp_io) scenarios)
  in
  let exp_gone =
    List.length (List.filter (fun s -> s.exp_gone) scenarios)
  in
  let exp_overflow =
    List.length (List.filter (fun s -> s.small_buffer) scenarios)
  in
  let check name got want =
    if got <> want then
      note "counter %s: got %d, script expects %d" name got want
  in
  check "frames_ok" tr.Transport.frames_ok exp_ok;
  check "frames_rejected" tr.Transport.frames_rejected exp_rej;
  check "io_deadline_expired" tr.Transport.io_deadline_expired exp_io;
  check "client_gone" tr.Transport.client_gone exp_gone;
  check "overflow_shed" tr.Transport.overflow_shed exp_overflow;
  check "conns_opened" tr.Transport.conns_opened (List.length scenarios);
  check "conns_closed" tr.Transport.conns_closed (List.length scenarios);
  if !max_buffer > Conn.default_config.Conn.max_buffered + 65536 then
    note "connection buffer grew unbounded: %d bytes" !max_buffer;
  let st = Engine.stats engine in
  let jl, jd =
    match Engine.journal engine with
    | Some j ->
        (match Obs.Journal.validate_text (Obs.Journal.to_text j) with
        | Ok _ -> ()
        | Error e -> note "journal failed schema validation: %s" e);
        let expect_lines = st.Engine.served + st.Engine.degraded + st.Engine.shed in
        if Obs.Journal.length j <> expect_lines then
          note "journal has %d line(s), engine served %d"
            (Obs.Journal.length j) expect_lines;
        (Obs.Journal.length j, Obs.Journal.digest j)
    | None -> (0, 0L)
  in
  digest := mix !digest (Int64.of_int tr.Transport.frames_ok);
  digest := mix !digest (Int64.of_int tr.Transport.frames_rejected);
  digest := mix !digest (Int64.of_int tr.Transport.io_deadline_expired);
  digest := mix !digest jd;
  { r_engine = engine;
    r_digest = !digest;
    r_journal_lines = jl;
    r_journal_digest = jd;
    r_responses = !responses_total;
    r_ok = !ok_total;
    r_err = !err_total;
    r_frames_sent = !frames_sent;
    r_max_buffer = !max_buffer;
    r_violations = List.rev !violations }

let run_full cfg =
  let t0 = Unix.gettimeofday () in
  let prob =
    Serve.Soak.problem ~seed:cfg.seed ~n_vertices:cfg.n_vertices
      ~n_labeled:cfg.n_labeled
  in
  let scenarios = gen cfg prob in
  let first = run_once cfg prob scenarios in
  let replay_violations, replay_verified =
    if not cfg.verify_replay then ([], true)
    else begin
      let second = run_once cfg prob scenarios in
      let vs = ref [] in
      if second.r_digest <> first.r_digest then
        vs := "replay digest mismatch (responses/traces diverged)" :: !vs;
      if cfg.journal && second.r_journal_digest <> first.r_journal_digest then
        vs := "replay journal digest mismatch" :: !vs;
      (List.rev !vs, !vs = [])
    end
  in
  let st = Engine.stats first.r_engine in
  let tr = Engine.transport first.r_engine in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  ( { connections = List.length scenarios;
      frames_sent = first.r_frames_sent;
      responses = first.r_responses;
      ok_responses = first.r_ok;
      error_responses = first.r_err;
      served = st.Engine.served;
      degraded = st.Engine.degraded;
      frames_ok = tr.Transport.frames_ok;
      frames_rejected = tr.Transport.frames_rejected;
      client_gone = tr.Transport.client_gone;
      io_deadline_expired = tr.Transport.io_deadline_expired;
      overflow_shed = tr.Transport.overflow_shed;
      max_conn_buffer = first.r_max_buffer;
      journal_lines = first.r_journal_lines;
      journal_digest = first.r_journal_digest;
      digest = first.r_digest;
      replay_verified;
      wall_ms;
      violations = first.r_violations @ replay_violations },
    first.r_engine )

let run cfg = fst (run_full cfg)
let ok s = s.violations = []

let describe s =
  Printf.sprintf
    "hostile soak: %d conns, %d frames -> %d responses (%d ok / %d err); \
     engine served=%d degraded=%d; transport ok=%d rejected=%d gone=%d \
     io_expired=%d overflow=%d; max_buffer=%dB; journal=%d lines; \
     digest=%016Lx replay=%s; %.0f ms; %s"
    s.connections s.frames_sent s.responses s.ok_responses s.error_responses
    s.served s.degraded s.frames_ok s.frames_rejected s.client_gone
    s.io_deadline_expired s.overflow_shed s.max_conn_buffer s.journal_lines
    s.digest
    (if s.replay_verified then "verified" else "DIVERGED")
    s.wall_ms
    (match s.violations with
    | [] -> "all invariants hold"
    | vs -> Printf.sprintf "%d VIOLATION(S): %s" (List.length vs)
              (String.concat " | " vs))
