module Engine = Serve.Engine
module Clock = Serve.Clock

type address = Unix_path of string | Tcp of { host : string; port : int }

type config = {
  conn : Conn.config;
  backlog : int;
  drain_grace_ms : float;
}

let default_config =
  { conn = Conn.default_config; backlog = 64; drain_grace_ms = 5_000. }

type t = {
  engine : Engine.t;
  clock : Clock.t;
  config : config;
  listen_fd : Unix.file_descr;
  sock_path : string option;
  conns : (Unix.file_descr, Conn.t) Hashtbl.t;
  rbuf : Bytes.t;
  mutable next_conn : int;
  mutable next_req : int;
  mutable draining : bool;
  mutable drain_started_ms : float;
  mutable listen_open : bool;
  mutable finished : bool;
}

let create ?(config = default_config) ~engine address =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd, path =
    match address with
    | Unix_path p ->
        if Sys.file_exists p then (
          try Unix.unlink p with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX p);
        (fd, Some p)
    | Tcp { host; port } ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
            | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
            | _ -> Unix.inet_addr_loopback)
        in
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        (fd, None)
  in
  Unix.listen fd config.backlog;
  Unix.set_nonblock fd;
  { engine;
    clock = Engine.clock engine;
    config;
    listen_fd = fd;
    sock_path = path;
    conns = Hashtbl.create 32;
    rbuf = Bytes.create 65536;
    next_conn = 0;
    next_req = 0;
    draining = false;
    drain_started_ms = 0.;
    listen_open = true;
    finished = false }

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> 0
  | exception Unix.Unix_error _ -> 0

let close_listener t =
  if t.listen_open then begin
    t.listen_open <- false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.sock_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ()
  end

let close_conn t fd reason =
  (match Hashtbl.find_opt t.conns fd with
  | Some c -> Conn.shutdown c ~reason
  | None -> ());
  Hashtbl.remove t.conns fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_ready t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        t.next_conn <- t.next_conn + 1;
        let c =
          Conn.create ~config:t.config.conn ~engine:t.engine
            ~fresh_id:(fun () ->
              t.next_req <- t.next_req + 1;
              t.next_req)
            ~id:t.next_conn ()
        in
        Hashtbl.replace t.conns fd c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

let read_ready t fd c =
  match Unix.read fd t.rbuf 0 (Bytes.length t.rbuf) with
  | 0 -> Conn.on_eof c
  | n -> Conn.on_bytes c (Bytes.sub_string t.rbuf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ ->
      Conn.abort c ~reason:"read error (peer gone)"

let write_ready t fd c =
  ignore t;
  let s = Conn.pending c in
  if String.length s > 0 then
    match Unix.write_substring fd s 0 (String.length s) with
    | n -> Conn.consume c n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ ->
        Conn.abort c ~reason:"write error (peer gone)"

let step ?(timeout_s = 0.05) t =
  if not t.finished then begin
    if t.draining then close_listener t;
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [] in
    let readers =
      (if t.listen_open then [ t.listen_fd ] else []) @ conn_fds
    in
    let writers =
      List.filter
        (fun fd ->
          match Hashtbl.find_opt t.conns fd with
          | Some c -> Conn.pending_len c > 0
          | None -> false)
        conn_fds
    in
    let rd, wr, _ =
      try Unix.select readers writers [] timeout_s
      with Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ([], [], [])
    in
    if t.listen_open && List.memq t.listen_fd rd then accept_ready t;
    List.iter
      (fun fd ->
        if fd != t.listen_fd then
          match Hashtbl.find_opt t.conns fd with
          | Some c -> read_ready t fd c
          | None -> ())
      rd;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt t.conns fd with
        | Some c -> write_ready t fd c
        | None -> ())
      wr;
    let now = Clock.now_ms t.clock in
    let grace_expired =
      t.draining && t.config.drain_grace_ms > 0.
      && now -. t.drain_started_ms > t.config.drain_grace_ms
    in
    let to_close =
      Hashtbl.fold
        (fun fd c acc ->
          Conn.tick c;
          if Conn.is_closed c || Conn.want_close c then (fd, "closed") :: acc
          else if grace_expired then (fd, "shed at drain") :: acc
          else acc)
        t.conns []
    in
    List.iter (fun (fd, reason) -> close_conn t fd reason) to_close;
    if t.draining && Hashtbl.length t.conns = 0 then begin
      t.finished <- true;
      Serve.Transport.drained (Engine.transport t.engine)
    end
  end

let request_drain t =
  if not t.draining then begin
    t.draining <- true;
    t.drain_started_ms <- Clock.now_ms t.clock
  end

let draining t = t.draining
let finished t = t.finished
let live_conns t = Hashtbl.length t.conns

let install_signal_handlers t =
  let drain _ = request_drain t in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain)
   with Invalid_argument _ | Sys_error _ -> ())

let close t =
  close_listener t;
  let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [] in
  List.iter (fun fd -> close_conn t fd "server closed") fds;
  t.finished <- true

let run t =
  while not t.finished do
    step t
  done;
  close t
