module Engine = Serve.Engine
module Clock = Serve.Clock
module Transport = Serve.Transport
module Ctx = Obs.Trace_ctx
module J = Telemetry.Export

type config = {
  io_deadline_ms : float;
  max_payload : int;
  max_buffered : int;
}

let default_config =
  { io_deadline_ms = 2_000.;
    max_payload = Frame.default_max_payload;
    max_buffered = 1 lsl 18 }

type state = Open | Closing | Closed

type t = {
  id : int;
  config : config;
  engine : Engine.t;
  clock : Clock.t;
  tr : Transport.t;
  fresh_id : unit -> int;
  decoder : Frame.t;
  out : Buffer.t;
  mutable out_off : int;
  ctx : Ctx.t;
  root : Ctx.span;
  mutable state : state;
  mutable frame_start_ms : float option;
      (* arrival anchor: when the current in-flight frame's first byte
         landed; doubles as the read-side I/O deadline anchor *)
  mutable write_start_ms : float option;
      (* when the oldest still-unread response byte was queued *)
  mutable frames : int;
  mutable rejected : int;
  mutable responses : int;
  mutable io_expired : bool;
  mutable aborted : bool;
  mutable max_buffered_seen : int;
  mutable close_reason : string;
}

let create ?(config = default_config) ~engine ~fresh_id ~id () =
  let clock = Engine.clock engine in
  let tr = Engine.transport engine in
  let seed = (Engine.config engine).Engine.seed in
  (* distinct stream from request traces: connection ids and request
     ids share an integer space but must not share trace ids *)
  let trace_id = Ctx.derive_id ~seed:(seed lxor 0x636f6e6e) ~request:id in
  let ctx = Ctx.create ~now:(fun () -> Clock.now_ms clock) ~trace_id () in
  let root = Ctx.open_span ctx "conn" ~fields:[ ("conn", Obs.Event.Int id) ] in
  Transport.conn_opened tr;
  { id;
    config;
    engine;
    clock;
    tr;
    fresh_id;
    decoder = Frame.create ~max_payload:config.max_payload ();
    out = Buffer.create 1024;
    out_off = 0;
    ctx;
    root;
    state = Open;
    frame_start_ms = None;
    write_start_ms = None;
    frames = 0;
    rejected = 0;
    responses = 0;
    io_expired = false;
    aborted = false;
    max_buffered_seen = 0;
    close_reason = "" }

let pending_len t = Buffer.length t.out - t.out_off

let pending t =
  let len = pending_len t in
  if len = 0 then "" else Buffer.sub t.out t.out_off len

let consume t n =
  let n = Stdlib.max 0 (Stdlib.min n (pending_len t)) in
  t.out_off <- t.out_off + n;
  if t.out_off = Buffer.length t.out then begin
    Buffer.clear t.out;
    t.out_off <- 0;
    t.write_start_ms <- None
  end

let enqueue t payload =
  let bytes = Frame.encode payload in
  Buffer.add_string t.out bytes;
  t.responses <- t.responses + 1;
  Transport.bytes_out t.tr (String.length bytes);
  if t.write_start_ms = None then
    t.write_start_ms <- Some (Clock.now_ms t.clock);
  let p = pending_len t in
  if p > t.max_buffered_seen then t.max_buffered_seen <- p

let finalize t reason =
  if t.state <> Closed then begin
    t.state <- Closed;
    t.close_reason <- reason;
    Transport.conn_closed t.tr;
    Ctx.annotate t.root
      [ ("frames", Obs.Event.Int t.frames);
        ("rejected", Obs.Event.Int t.rejected);
        ("responses", Obs.Event.Int t.responses);
        ("reason", Obs.Event.Str reason) ];
    Ctx.close_span t.ctx t.root
  end

let shutdown t ~reason = finalize t reason

let abort t ~reason =
  if t.state <> Closed then begin
    t.aborted <- true;
    Transport.client_gone t.tr ~conn:t.id ~undelivered:(pending_len t);
    Ctx.event t.ctx "conn.client_gone"
      ~fields:[ ("undelivered", Obs.Event.Int (pending_len t)) ];
    finalize t reason
  end

let reject t ~code ~detail ~fatal =
  t.rejected <- t.rejected + 1;
  Transport.frame_rejected t.tr;
  Ctx.event t.ctx "frame.rejected" ~fields:[ ("code", Obs.Event.Str code) ];
  enqueue t (J.render (Protocol.error_body ~code ~detail));
  if fatal then begin
    (* a framing fault loses the frame boundary: answer, flush, close *)
    t.frame_start_ms <- None;
    t.state <- Closing
  end

let handle_payload t ~arrival payload =
  if pending_len t > t.config.max_buffered then begin
    (* the peer is not reading its answers: shed instead of buffering
       without bound, with an explicit status, then hang up *)
    Transport.overflow_shed t.tr;
    reject t ~code:"overloaded"
      ~detail:
        (Printf.sprintf
           "%d unread response byte(s) exceed the %d-byte connection buffer"
           (pending_len t) t.config.max_buffered)
      ~fatal:true
  end
  else
    match Protocol.parse_request payload with
    | Error e ->
        (* the framing is intact, so JSON-level faults are recoverable:
           answer the error and keep the connection open *)
        reject t ~code:(Protocol.error_code e)
          ~detail:(Protocol.describe_error e) ~fatal:false
    | Ok req ->
        t.frames <- t.frames + 1;
        Transport.frame_ok t.tr;
        Ctx.with_span t.ctx "frame"
          ~fields:[ ("op", Obs.Event.Str (Protocol.op_name req)) ]
          (fun () ->
            match req with
            | Protocol.Stats ->
                enqueue t (J.render (Protocol.stats_body t.engine))
            | Protocol.Metrics ->
                enqueue t (J.render (Protocol.metrics_body t.engine))
            | Protocol.Query | Protocol.Relabel _ ->
                let kind =
                  match req with
                  | Protocol.Query -> Engine.Query
                  | Protocol.Relabel { vertex; label } ->
                      Engine.Relabel { vertex; label }
                  | Protocol.Stats | Protocol.Metrics -> assert false
                in
                let r =
                  Engine.handle t.engine
                    { Engine.id = t.fresh_id ();
                      arrival_ms = arrival;
                      kind;
                      faults = [] }
                in
                Ctx.annotate_current
                  [ ("status",
                     Obs.Event.Str (Engine.status_name r.Engine.status)) ];
                enqueue t (J.render (Protocol.response_body r)))

let on_bytes t data =
  if t.state = Open && String.length data > 0 then begin
    Transport.bytes_in t.tr (String.length data);
    if t.frame_start_ms = None then
      t.frame_start_ms <- Some (Clock.now_ms t.clock);
    let events = Frame.feed t.decoder data in
    List.iter
      (fun ev ->
        match ev with
        | Ok payload ->
            let arrival =
              match t.frame_start_ms with
              | Some a -> a
              | None -> Clock.now_ms t.clock
            in
            t.frame_start_ms <- None;
            if t.state = Open then handle_payload t ~arrival payload
        | Error e ->
            reject t ~code:(Frame.error_code e) ~detail:(Frame.describe e)
              ~fatal:true)
      events;
    (* re-anchor: a partial frame trailing this chunk starts its I/O
       deadline now; an idle decoder carries no anchor at all *)
    if t.state = Open then
      if Frame.in_progress t.decoder then begin
        if t.frame_start_ms = None then
          t.frame_start_ms <- Some (Clock.now_ms t.clock)
      end
      else t.frame_start_ms <- None
  end

let on_eof t =
  if t.state = Open then begin
    (match Frame.finish t.decoder with
    | Some e ->
        reject t ~code:(Frame.error_code e) ~detail:(Frame.describe e)
          ~fatal:true
    | None -> ());
    t.frame_start_ms <- None;
    if t.state = Open then t.state <- Closing
  end

let tick t =
  if t.state = Open || t.state = Closing then begin
    let now = Clock.now_ms t.clock in
    (match t.frame_start_ms with
    | Some t0 when t.state = Open && now -. t0 > t.config.io_deadline_ms ->
        t.io_expired <- true;
        Transport.io_deadline_expired t.tr;
        Ctx.event t.ctx "io.deadline_expired"
          ~fields:[ ("phase", Obs.Event.Str "read") ];
        reject t ~code:"io_deadline"
          ~detail:
            (Printf.sprintf "frame not completed within %.0f ms"
               t.config.io_deadline_ms)
          ~fatal:true
    | _ -> ());
    match t.write_start_ms with
    | Some t0 when now -. t0 > t.config.io_deadline_ms ->
        (* the peer has not read a queued response for a whole budget:
           it is as good as gone — do not let it pin the buffer *)
        t.io_expired <- true;
        Transport.io_deadline_expired t.tr;
        Ctx.event t.ctx "io.deadline_expired"
          ~fields:[ ("phase", Obs.Event.Str "write") ];
        finalize t "write deadline expired"
    | _ -> ()
  end

let id t = t.id
let want_close t = t.state = Closing && pending_len t = 0
let is_closed t = t.state = Closed
let frames t = t.frames
let rejected t = t.rejected
let responses t = t.responses
let io_expired t = t.io_expired
let aborted t = t.aborted
let max_buffered_seen t = t.max_buffered_seen
let close_reason t = t.close_reason
let ctx t = t.ctx
