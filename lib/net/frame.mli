(** The wire frame: ["GSSL"] magic, a one-byte protocol version, a
    4-byte big-endian payload length, then the payload (a JSON request
    or response — see {!Protocol}).

    {v
      offset  0 1 2 3   4         5 6 7 8      9 ...
              G S S L   version   length u32   payload bytes
    v}

    The decoder is a {e total} incremental state machine: feed it
    arbitrary byte chunks and it emits completed payloads and typed
    errors — it never raises, whatever the peer sends.  Corruption is
    detected at the earliest possible byte (a wrong magic byte fails on
    that byte, not after 9), so a hostile peer cannot make the server
    buffer garbage while waiting for a "length" that will never make
    sense.  After an error the decoder is latched: remaining input is
    discarded, because a framing fault leaves no way to find the next
    frame boundary. *)

val magic : string
(** ["GSSL"]. *)

val version : int
(** Current protocol version (1). *)

val header_len : int
(** 9 bytes: magic + version + length. *)

val default_max_payload : int
(** 1 MiB — frames advertising more are rejected without buffering. *)

type error =
  | Bad_magic of { got : string }  (** header bytes seen so far *)
  | Bad_version of { got : int }
  | Too_large of { length : int; limit : int }
  | Truncated of { have : int; need : int }
      (** EOF mid-frame: [have] of [need] bytes arrived *)

val error_code : error -> string
(** Stable wire identifier: [bad_magic | bad_version | too_large |
    truncated] — the [error] field of the JSON error response. *)

val describe : error -> string
(** Human-readable detail line. *)

val encode : string -> string
(** Frame a payload.  Raises [Invalid_argument] if the payload cannot
    be described by an unsigned 32-bit length (encode is the trusted
    local side; decode never raises). *)

type t
(** Incremental decoder state. *)

val create : ?max_payload:int -> unit -> t

val feed : t -> string -> (string, error) result list
(** Consume a chunk, returning completed payloads and/or the error that
    latched the decoder, in arrival order.  A chunk may complete several
    pipelined frames; a failed decoder silently discards input. *)

val finish : t -> error option
(** Signal EOF.  [Some (Truncated _)] if a frame was in flight,
    [None] on a clean frame boundary (or if already failed — that
    error was reported by {!feed}). *)

val in_progress : t -> bool
(** A frame is partially buffered (header or body bytes pending). *)

val failed : t -> error option
(** The latched error, if any. *)
