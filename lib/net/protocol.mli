(** JSON request/response bodies carried inside {!Frame}s.

    Requests mirror the [gssl serve] REPL verbs, plus [stats] and
    [metrics] introspection:

    {v
      {"op":"query"}
      {"op":"relabel","vertex":64,"label":1.0}
      {"op":"stats"}
      {"op":"metrics"}
    v}

    Responses are [{"ok":true,...}] or [{"ok":false,"error":CODE,
    "detail":TEXT}].  A query/relabel response carries the engine's
    status (served / degraded / shed, with the reason when not served),
    latency and queue accounting, the predictions, and [pred_digest] —
    a SplitMix64 digest over the prediction bit patterns, so a client
    (and the differential test) can compare answers bit-exactly even
    though JSON float rendering is lossy.

    Parsing is total: any payload maps to a request or a typed
    {!error}; non-finite numerics ([1e999], [NaN] spellings) are
    rejected as [bad_field], never forwarded to the engine. *)

type request =
  | Query
  | Relabel of { vertex : int; label : float }
  | Stats
  | Metrics

type error =
  | Malformed_json of string
  | Not_an_object
  | Missing_op
  | Unknown_op of string
  | Missing_field of { op : string; field : string }
  | Bad_field of { op : string; field : string; reason : string }

val error_code : error -> string
(** Stable wire identifier: [malformed_json | not_an_object |
    missing_op | unknown_op | missing_field | bad_field]. *)

val describe_error : error -> string

val parse_request : string -> (request, error) result
(** Total — never raises. *)

val op_name : request -> string
val render_request : request -> string
(** The canonical JSON encoding (what a well-behaved client sends). *)

val predictions_digest : (int * float) array -> int64
(** SplitMix64 digest over [(vertex, float bits)] pairs. *)

val response_body : Serve.Engine.response -> Telemetry.Export.json
val stats_body : Serve.Engine.t -> Telemetry.Export.json
val metrics_body : Serve.Engine.t -> Telemetry.Export.json
val error_body : code:string -> detail:string -> Telemetry.Export.json

val render : Telemetry.Export.json -> string
