(** Single-threaded, non-blocking socket server: the framed protocol
    over a Unix-domain or TCP listener, one {!Conn} per accepted peer,
    driven by a [select] event loop.

    Per-connection state lives in {!Conn}, so everything the loop does
    is mechanical: accept, read into a connection, flush pending
    output, tick I/O deadlines, reap finished connections.  Socket
    errors never escape — EPIPE and ECONNRESET on a connection count
    [serve.transport.client_gone] and close it.

    Graceful drain: {!request_drain} (wired to SIGTERM/SIGINT by
    {!install_signal_handlers}) stops accepting, unlinks the listen
    socket, finishes or sheds in-flight connections (a grace period
    bounds how long a slow peer can hold the drain open), counts
    [serve.transport.drained], and lets {!run} return so the caller
    can flush the span journal and print the exit summary. *)

type address =
  | Unix_path of string  (** Unix-domain socket; unlinked on close *)
  | Tcp of { host : string; port : int }
      (** Port 0 binds an ephemeral port — see {!port}. *)

type config = {
  conn : Conn.config;
  backlog : int;
  drain_grace_ms : float;
      (** draining connections still open after this long are shed *)
}

val default_config : config

type t

val create : ?config:config -> engine:Serve.Engine.t -> address -> t
(** Binds and listens (non-blocking).  Raises [Unix.Unix_error] if the
    address cannot be bound. *)

val port : t -> int
(** Actual bound TCP port (0 for Unix-domain sockets). *)

val step : ?timeout_s:float -> t -> unit
(** One event-loop turn.  Exposed so tests can drive the server
    deterministically without threads. *)

val run : t -> unit
(** Loop until drained ({!finished}), then {!close}. *)

val request_drain : t -> unit
val draining : t -> bool
val finished : t -> bool
val live_conns : t -> int

val install_signal_handlers : t -> unit
(** SIGTERM/SIGINT → {!request_drain}; SIGPIPE ignored. *)

val close : t -> unit
(** Idempotent: close the listener (unlinking a Unix path) and shut
    down any remaining connections. *)
