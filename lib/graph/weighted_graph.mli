(** Weighted undirected graphs backed by a dense or sparse similarity
    matrix.

    The paper's graph G = (V, E) has one node per input and edge weights
    [w_ij ∈ [0, 1]] from the kernel; this module wraps either
    representation behind one interface and provides degrees, which are
    what the Laplacian and the SSL solvers consume. *)

type storage = Dense of Linalg.Mat.t | Sparse of Sparse.Csr.t

type t

val of_dense : Linalg.Mat.t -> t
(** Raises [Invalid_argument] unless the matrix is square, symmetric
    (tol 1e-9) and entrywise finite and ≥ 0. *)

val of_sparse : Sparse.Csr.t -> t
(** Same validation. *)

val of_dense_unchecked : Linalg.Mat.t -> t
(** Like {!of_dense} but skips the symmetry/positivity/finiteness
    validation (squareness is still enforced).  For the fault-injection
    harness and for rebuilding already-sanitised graphs; the caller owns
    the symmetry invariant. *)

val of_sparse_unchecked : Sparse.Csr.t -> t
(** Sparse counterpart of {!of_dense_unchecked}. *)

val order : t -> int
(** Number of vertices. *)

val weight : t -> int -> int -> float
val degrees : t -> Linalg.Vec.t
(** [d_i = Σ_j w_ij] — computed once and cached. *)

val storage : t -> storage
val to_dense : t -> Linalg.Mat.t
(** Materialise the weight matrix (copying if already dense). *)

val total_weight : t -> float
(** [Σ_ij w_ij] (each undirected edge counted twice, like the paper). *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Visit every nonzero [w_ij] with [i < j] once. *)
