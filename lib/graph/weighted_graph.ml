module Mat = Linalg.Mat
module Vec = Linalg.Vec

type storage = Dense of Mat.t | Sparse of Sparse.Csr.t

type t = { storage : storage; order : int; mutable degrees : Vec.t option }

(* NaN slips through both the symmetry check (any comparison with NaN is
   false) and the sign check, so finiteness must be tested explicitly. *)
let check_weight v =
  if not (Float.is_finite v) then invalid_arg "Weighted_graph: non-finite weight";
  if v < 0. then invalid_arg "Weighted_graph: negative weight"

let validate_dense m =
  if not (Mat.is_square m) then invalid_arg "Weighted_graph: matrix not square";
  if not (Mat.is_symmetric ~tol:1e-9 m) then
    invalid_arg "Weighted_graph: matrix not symmetric";
  Array.iter check_weight m.Mat.data

let validate_sparse c =
  let rows, cols = Sparse.Csr.dims c in
  if rows <> cols then invalid_arg "Weighted_graph: matrix not square";
  if not (Sparse.Csr.is_symmetric ~tol:1e-9 c) then
    invalid_arg "Weighted_graph: matrix not symmetric";
  Array.iter check_weight c.Sparse.Csr.values

let of_dense m =
  validate_dense m;
  { storage = Dense m; order = m.Mat.rows; degrees = None }

let of_sparse c =
  validate_sparse c;
  { storage = Sparse c; order = fst (Sparse.Csr.dims c); degrees = None }

let of_dense_unchecked m =
  if not (Mat.is_square m) then invalid_arg "Weighted_graph: matrix not square";
  { storage = Dense m; order = m.Mat.rows; degrees = None }

let of_sparse_unchecked c =
  let rows, cols = Sparse.Csr.dims c in
  if rows <> cols then invalid_arg "Weighted_graph: matrix not square";
  { storage = Sparse c; order = rows; degrees = None }

let order t = t.order

let weight t i j =
  match t.storage with
  | Dense m -> Mat.get m i j
  | Sparse c -> Sparse.Csr.get c i j

let degrees t =
  match t.degrees with
  | Some d -> d
  | None ->
      let d =
        match t.storage with
        | Dense m -> Mat.row_sums m
        | Sparse c -> Sparse.Csr.row_sums c
      in
      t.degrees <- Some d;
      d

let storage t = t.storage

let to_dense t =
  match t.storage with
  | Dense m -> Mat.copy m
  | Sparse c -> Sparse.Csr.to_dense c

let total_weight t = Vec.sum (degrees t)

let iter_edges t f =
  match t.storage with
  | Dense m ->
      for i = 0 to t.order - 1 do
        for j = i + 1 to t.order - 1 do
          let w = Mat.get m i j in
          if w <> 0. then f i j w
        done
      done
  | Sparse c ->
      for i = 0 to t.order - 1 do
        Sparse.Csr.iter_row c i (fun j w -> if j > i && w <> 0. then f i j w)
      done
