(** Approximate k-nearest-neighbours via randomized projection trees
    with multi-probe search.

    A forest of trees recursively splits the point set at the positional
    median of a random-direction projection; a query descends every tree
    and then probes further leaves in order of the query's distance to
    the splitting hyperplanes (a shared priority queue across trees).
    Candidates from the visited leaves are ranked exactly, so the only
    approximation is which points become candidates.

    {2 Determinism}

    The forest build is serial and seeded; each query depends only on
    the forest and its own point, so the query fan-out over the domain
    pool (routed through [Parallel.Autotune], work measure
    [n · budget · leaf_size]) is bit-identical for any domain count —
    the same contract as every other pooled kernel.

    {2 Recall model}

    [all_k_nearest] measures recall on a fixed sample of queries against
    the exact answers and doubles the leaf-visit budget until the
    measured recall reaches [recall_target].  Once the budget covers
    every leaf the search is exhaustive (every point is a candidate), so
    the escalation loop always terminates — the target is reachable by
    construction, not by luck.  Small inputs ([n <= exact_cutoff]) skip
    the forest entirely and take the exact pairwise path. *)

type t
(** A built index over a fixed point set. *)

type info = {
  exact : bool;  (** the exact path answered (small [n] or [k = 0]) *)
  trees : int;
  probes : int;
      (** final leaf-visit budget per query, after any escalations *)
  escalations : int;
      (** how many times the budget was doubled to reach the target *)
  recall : float;
      (** measured recall on the probe sample (1.0 on the exact path) *)
}

val build : ?seed:int -> ?trees:int -> ?leaf_size:int -> Linalg.Vec.t array -> t
(** [build points] constructs the forest ([trees] defaults to 3,
    [leaf_size] to 24, [seed] to a fixed constant).  Raises
    [Invalid_argument] on empty or ragged data. *)

val query : t -> ?probes:int -> Linalg.Vec.t -> int -> int array
(** [query index q k] returns the indices of the approximate [k] nearest
    points to an arbitrary query vector, ranked by (distance², index).
    [probes] (default 12) bounds the leaf visits.  Falls back to an
    exact scan when the probed leaves yield fewer than [k] distinct
    candidates.  Raises [Invalid_argument] on dimension mismatch or
    [k] out of range. *)

val all_k_nearest :
  ?seed:int ->
  ?trees:int ->
  ?leaf_size:int ->
  ?probes:int ->
  ?recall_target:float ->
  ?recall_sample:int ->
  ?exact_cutoff:int ->
  Linalg.Vec.t array ->
  int ->
  int array array * info
(** [all_k_nearest points k] returns each point's [k] approximate
    nearest neighbours (self excluded, ranked by (distance², index))
    plus an {!info} describing how the answer was produced.

    [probes] (default 4) is the initial per-tree leaf-visit budget;
    [recall_target] (default 0.9) the measured-recall threshold the
    escalation loop enforces on a [recall_sample]-point probe (default
    64 queries); [exact_cutoff] (default 2048) the size at or below
    which the exact pairwise path answers directly.  Counters:
    [graph.ann.builds], [graph.ann.queries], [graph.ann.candidates],
    [graph.ann.escalations], [graph.ann.exact_fallbacks]; spans:
    [ann.build], [ann.search].  Raises [Invalid_argument] unless
    [0 <= k < n] and [0 <= recall_target <= 1]. *)
