module Mat = Linalg.Mat
module Vec = Linalg.Vec

type kind = Unnormalized | Symmetric_normalized | Random_walk

let c_operator_applies = Telemetry.Counter.make "graph.laplacian_applies"

(* the fused dense apply below is a gemv-class pass; it shares the
   Linalg counters so profiles attribute it the same way Mat.mv was *)
let c_gemv = Telemetry.Counter.make "linalg.gemv"
let c_lin_flops = Telemetry.Counter.make "linalg.flops"

let check_degrees kind d =
  match kind with
  | Unnormalized -> ()
  | Symmetric_normalized | Random_walk ->
      Array.iter
        (fun v ->
          if v <= 0. then
            invalid_arg "Laplacian: normalized Laplacian needs positive degrees")
        d

let dense ?(kind = Unnormalized) g =
  let w = Weighted_graph.to_dense g in
  let d = Weighted_graph.degrees g in
  check_degrees kind d;
  let n = Weighted_graph.order g in
  match kind with
  | Unnormalized ->
      Mat.init n n (fun i j ->
          if i = j then d.(i) -. Mat.get w i j else -.Mat.get w i j)
  | Symmetric_normalized ->
      Mat.init n n (fun i j ->
          let v = Mat.get w i j /. sqrt (d.(i) *. d.(j)) in
          if i = j then 1. -. v else -.v)
  | Random_walk ->
      Mat.init n n (fun i j ->
          let v = Mat.get w i j /. d.(i) in
          if i = j then 1. -. v else -.v)

let sparse ?(kind = Unnormalized) g =
  let d = Weighted_graph.degrees g in
  check_degrees kind d;
  let n = Weighted_graph.order g in
  let coo = Sparse.Coo.create n n in
  let add_weight i j w =
    match kind with
    | Unnormalized ->
        Sparse.Coo.add coo i j (-.w);
        Sparse.Coo.add coo j i (-.w)
    | Symmetric_normalized ->
        let v = w /. sqrt (d.(i) *. d.(j)) in
        Sparse.Coo.add coo i j (-.v);
        Sparse.Coo.add coo j i (-.v)
    | Random_walk ->
        Sparse.Coo.add coo i j (-.(w /. d.(i)));
        Sparse.Coo.add coo j i (-.(w /. d.(j)))
  in
  Weighted_graph.iter_edges g add_weight;
  (* diagonal: degree minus self-loop weight for unnormalized; the
     normalized kinds have 1 − w_ii/d_i on the diagonal *)
  for i = 0 to n - 1 do
    let wii = Weighted_graph.weight g i i in
    match kind with
    | Unnormalized -> Sparse.Coo.add coo i i (d.(i) -. wii)
    | Symmetric_normalized | Random_walk -> Sparse.Coo.add coo i i (1. -. (wii /. d.(i)))
  done;
  Sparse.Csr.of_coo coo

let quadratic_energy g f =
  if Array.length f <> Weighted_graph.order g then
    invalid_arg "Laplacian.quadratic_energy: length mismatch";
  let acc = ref 0. in
  Weighted_graph.iter_edges g (fun i j w ->
      let d = f.(i) -. f.(j) in
      (* each unordered pair appears twice in the paper's double sum *)
      acc := !acc +. (2. *. w *. d *. d));
  !acc

let operator ~lambda ~n_labeled g =
  if lambda < 0. then invalid_arg "Laplacian.operator: negative lambda";
  let n = Weighted_graph.order g in
  if n_labeled < 0 || n_labeled > n then
    invalid_arg "Laplacian.operator: n_labeled out of range";
  let d = Weighted_graph.degrees g in
  (* (V + lambda L) x in a single row pass: the degree scaling and the
     labeled-block identity are folded into the same sweep that
     accumulates W.x, so the CG hot loop does one pass over the matrix
     and allocates no intermediate vector.  Per row the accumulation
     order matches the unfused W.x, and the combining expression is the
     same [v_part + lambda*(d_i x_i - (Wx)_i)], so the fused result is
     bit-identical to the two-pass version. *)
  let apply_fused =
    match Weighted_graph.storage g with
    | Weighted_graph.Sparse c ->
        let vdiag =
          Array.init n (fun i -> if i < n_labeled then 1. else 0.)
        in
        fun f -> Sparse.Csr.fused_lap_mv c ~deg:d ~vdiag ~lambda f
    | Weighted_graph.Dense m ->
        fun f ->
          Telemetry.Counter.incr c_gemv;
          Telemetry.Counter.add c_lin_flops ((2 * n * n) + (4 * n));
          let y = Array.make n 0. in
          let rows lo hi =
            for i = lo to hi - 1 do
              let base = i * m.Mat.cols in
              let acc = ref 0. in
              for j = 0 to n - 1 do
                acc := !acc +. (m.Mat.data.(base + j) *. f.(j))
              done;
              let v_part = if i < n_labeled then f.(i) else 0. in
              y.(i) <- v_part +. (lambda *. ((d.(i) *. f.(i)) -. !acc))
            done
          in
          let { Parallel.Autotune.parallel = go_par; grain } =
            Parallel.Autotune.plan Parallel.Autotune.Gemv ~work:(n * n) ~rows:n
          in
          if go_par then Parallel.Pool.run ?grain n rows else rows 0 n;
          y
  in
  let apply f =
    if Array.length f <> n then invalid_arg "Laplacian.operator: length mismatch";
    Telemetry.Counter.incr c_operator_applies;
    apply_fused f
  in
  let diag () =
    Array.init n (fun i ->
        let v_part = if i < n_labeled then 1. else 0. in
        v_part +. (lambda *. (d.(i) -. Weighted_graph.weight g i i)))
  in
  Sparse.Linop.of_fun ~dim:n ~diag apply
