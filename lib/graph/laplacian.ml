module Mat = Linalg.Mat
module Vec = Linalg.Vec

type kind = Unnormalized | Symmetric_normalized | Random_walk

let c_operator_applies = Telemetry.Counter.make "graph.laplacian_applies"

let check_degrees kind d =
  match kind with
  | Unnormalized -> ()
  | Symmetric_normalized | Random_walk ->
      Array.iter
        (fun v ->
          if v <= 0. then
            invalid_arg "Laplacian: normalized Laplacian needs positive degrees")
        d

let dense ?(kind = Unnormalized) g =
  let w = Weighted_graph.to_dense g in
  let d = Weighted_graph.degrees g in
  check_degrees kind d;
  let n = Weighted_graph.order g in
  match kind with
  | Unnormalized ->
      Mat.init n n (fun i j ->
          if i = j then d.(i) -. Mat.get w i j else -.Mat.get w i j)
  | Symmetric_normalized ->
      Mat.init n n (fun i j ->
          let v = Mat.get w i j /. sqrt (d.(i) *. d.(j)) in
          if i = j then 1. -. v else -.v)
  | Random_walk ->
      Mat.init n n (fun i j ->
          let v = Mat.get w i j /. d.(i) in
          if i = j then 1. -. v else -.v)

let sparse ?(kind = Unnormalized) g =
  let d = Weighted_graph.degrees g in
  check_degrees kind d;
  let n = Weighted_graph.order g in
  let coo = Sparse.Coo.create n n in
  let add_weight i j w =
    match kind with
    | Unnormalized ->
        Sparse.Coo.add coo i j (-.w);
        Sparse.Coo.add coo j i (-.w)
    | Symmetric_normalized ->
        let v = w /. sqrt (d.(i) *. d.(j)) in
        Sparse.Coo.add coo i j (-.v);
        Sparse.Coo.add coo j i (-.v)
    | Random_walk ->
        Sparse.Coo.add coo i j (-.(w /. d.(i)));
        Sparse.Coo.add coo j i (-.(w /. d.(j)))
  in
  Weighted_graph.iter_edges g add_weight;
  (* diagonal: degree minus self-loop weight for unnormalized; the
     normalized kinds have 1 − w_ii/d_i on the diagonal *)
  for i = 0 to n - 1 do
    let wii = Weighted_graph.weight g i i in
    match kind with
    | Unnormalized -> Sparse.Coo.add coo i i (d.(i) -. wii)
    | Symmetric_normalized | Random_walk -> Sparse.Coo.add coo i i (1. -. (wii /. d.(i)))
  done;
  Sparse.Csr.of_coo coo

let quadratic_energy g f =
  if Array.length f <> Weighted_graph.order g then
    invalid_arg "Laplacian.quadratic_energy: length mismatch";
  let acc = ref 0. in
  Weighted_graph.iter_edges g (fun i j w ->
      let d = f.(i) -. f.(j) in
      (* each unordered pair appears twice in the paper's double sum *)
      acc := !acc +. (2. *. w *. d *. d));
  !acc

let operator ~lambda ~n_labeled g =
  if lambda < 0. then invalid_arg "Laplacian.operator: negative lambda";
  let n = Weighted_graph.order g in
  if n_labeled < 0 || n_labeled > n then
    invalid_arg "Laplacian.operator: n_labeled out of range";
  let d = Weighted_graph.degrees g in
  let apply_w f =
    match Weighted_graph.storage g with
    | Weighted_graph.Dense m -> Mat.mv m f
    | Weighted_graph.Sparse c -> Sparse.Csr.mv c f
  in
  let apply f =
    if Array.length f <> n then invalid_arg "Laplacian.operator: length mismatch";
    Telemetry.Counter.incr c_operator_applies;
    let wf = apply_w f in
    Array.init n (fun i ->
        let v_part = if i < n_labeled then f.(i) else 0. in
        v_part +. (lambda *. ((d.(i) *. f.(i)) -. wf.(i))))
  in
  let diag () =
    Array.init n (fun i ->
        let v_part = if i < n_labeled then 1. else 0. in
        v_part +. (lambda *. (d.(i) -. Weighted_graph.weight g i i)))
  in
  Sparse.Linop.of_fun ~dim:n ~diag apply
