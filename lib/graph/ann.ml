module Vec = Linalg.Vec
module Rng = Prng.Rng

(* Approximate k-nearest-neighbours via a small forest of randomized
   projection trees with multi-probe search.

   Determinism contract: the forest is built serially with a seeded
   generator consumed in DFS order, and each query depends only on the
   forest and its own point — so fanning queries out over the domain
   pool is bit-identical for any domain count, like every other pooled
   kernel.  The recall knob is enforced by measurement: the search
   budget is escalated (doubled) until a sampled recall probe meets the
   target; once the budget covers every leaf the search degenerates to
   exhaustive, so the target is always reachable. *)

let c_builds = Telemetry.Counter.make "graph.ann.builds"
let c_queries = Telemetry.Counter.make "graph.ann.queries"
let c_candidates = Telemetry.Counter.make "graph.ann.candidates"
let c_escalations = Telemetry.Counter.make "graph.ann.escalations"
let c_exact_fallbacks = Telemetry.Counter.make "graph.ann.exact_fallbacks"

type node =
  | Leaf of int * int  (* offset, length into the tree's [idx] *)
  | Split of { dir : Vec.t; thr : float; left : node; right : node }

type tree = { idx : int array; root : node }

type t = {
  points : Vec.t array;
  dim : int;
  forest : tree array;
  leaf_size : int;
  total_leaves : int;
}

type info = {
  exact : bool;
  trees : int;
  probes : int;
  escalations : int;
  recall : float;
}

let validate points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Ann: empty data";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Ann: ragged data")
    points;
  (n, d)

(* random unit direction: gaussian components (Box–Muller), normalized;
   a degenerate all-zero draw falls back to the first axis *)
let gaussian_direction rng d =
  let dir = Array.init d (fun _ ->
      let u1 = 1. -. Rng.float rng in
      let u2 = Rng.float rng in
      sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  let norm = Vec.norm2 dir in
  if norm > 0. then Array.map (fun x -> x /. norm) dir
  else Array.init d (fun i -> if i = 0 then 1. else 0.)

(* Split the segment [off, off+len) of [idx] at its positional median
   along a random direction.  The permutation is ordered by
   (projection, point index) so exact projection ties cannot make the
   layout depend on the sort's internals. *)
let rec build_node rng points idx off len leaf_size leaves =
  if len <= leaf_size then begin
    incr leaves;
    Leaf (off, len)
  end
  else begin
    let d = Array.length points.(0) in
    let dir = gaussian_direction rng d in
    let proj = Array.init len (fun t -> Vec.dot points.(idx.(off + t)) dir) in
    let perm = Array.init len Fun.id in
    Array.sort
      (fun a b ->
        let c = Float.compare proj.(a) proj.(b) in
        if c <> 0 then c else compare idx.(off + a) idx.(off + b))
      perm;
    let tmp = Array.init len (fun t -> idx.(off + perm.(t))) in
    Array.blit tmp 0 idx off len;
    let mid = len / 2 in
    let thr = 0.5 *. (proj.(perm.(mid - 1)) +. proj.(perm.(mid))) in
    let left = build_node rng points idx off mid leaf_size leaves in
    let right =
      build_node rng points idx (off + mid) (len - mid) leaf_size leaves
    in
    Split { dir; thr; left; right }
  end

let build ?(seed = 0x5eed) ?(trees = 3) ?(leaf_size = 24) points =
  if trees < 1 then invalid_arg "Ann.build: trees must be >= 1";
  if leaf_size < 1 then invalid_arg "Ann.build: leaf_size must be >= 1";
  let n, dim = validate points in
  Telemetry.Span.with_ "ann.build" (fun () ->
      Telemetry.Counter.incr c_builds;
      let rng = Rng.create seed in
      let leaves = ref 0 in
      let forest =
        Array.init trees (fun t ->
            let tree_rng = Rng.substream rng t in
            let idx = Array.init n Fun.id in
            let root = build_node tree_rng points idx 0 n leaf_size leaves in
            { idx; root })
      in
      { points; dim; forest; leaf_size; total_leaves = !leaves })

(* ---- multi-probe search ---------------------------------------- *)

(* tiny binary min-heap keyed by split margin; payloads are
   (tree index, node) pairs awaiting descent *)
module Pq = struct
  type 'a t = {
    mutable keys : float array;
    mutable data : 'a array;
    mutable size : int;
    dummy : 'a;
  }

  let create dummy =
    { keys = Array.make 16 0.; data = Array.make 16 dummy; size = 0; dummy }

  let push q k v =
    if q.size = Array.length q.keys then begin
      q.keys <- Array.append q.keys (Array.make q.size 0.);
      q.data <- Array.append q.data (Array.make q.size q.dummy)
    end;
    let i = ref q.size in
    q.size <- q.size + 1;
    q.keys.(!i) <- k;
    q.data.(!i) <- v;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      q.keys.(p) > q.keys.(!i)
    do
      let p = (!i - 1) / 2 in
      let tk = q.keys.(p) and tv = q.data.(p) in
      q.keys.(p) <- q.keys.(!i);
      q.data.(p) <- q.data.(!i);
      q.keys.(!i) <- tk;
      q.data.(!i) <- tv;
      i := p
    done

  let pop_min q =
    if q.size = 0 then None
    else begin
      let v = q.data.(0) in
      q.size <- q.size - 1;
      q.keys.(0) <- q.keys.(q.size);
      q.data.(0) <- q.data.(q.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < q.size && q.keys.(l) < q.keys.(!m) then m := l;
        if r < q.size && q.keys.(r) < q.keys.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tk = q.keys.(!m) and tv = q.data.(!m) in
          q.keys.(!m) <- q.keys.(!i);
          q.data.(!m) <- q.data.(!i);
          q.keys.(!i) <- tk;
          q.data.(!i) <- tv;
          i := !m
        end
      done;
      Some v
    end
end

(* Collect candidate indices: seed the queue with every tree root at
   margin 0, descend each popped node to a leaf — pushing the far child
   of every split, keyed by the query's distance to the splitting
   hyperplane — and stop after [budget] leaf visits.  When [budget]
   covers [total_leaves] every point becomes a candidate, which is the
   exhaustive limit the escalation loop relies on. *)
let collect_candidates index q ~budget buf =
  let nbuf = ref 0 in
  let ensure need =
    if Array.length !buf < need then begin
      let grown = Array.make (max need (2 * Array.length !buf)) 0 in
      Array.blit !buf 0 grown 0 !nbuf;
      buf := grown
    end
  in
  let pq = Pq.create (-1, index.forest.(0).root) in
  Array.iteri (fun t tree -> Pq.push pq 0. (t, tree.root)) index.forest;
  let visited = ref 0 in
  let continue = ref true in
  while !continue && !visited < budget do
    match Pq.pop_min pq with
    | None -> continue := false
    | Some (t, node) ->
        let idx = index.forest.(t).idx in
        let rec descend node =
          match node with
          | Leaf (off, len) ->
              incr visited;
              ensure (!nbuf + len);
              Array.blit idx off !buf !nbuf len;
              nbuf := !nbuf + len
          | Split { dir; thr; left; right } ->
              let s = Vec.dot q dir -. thr in
              let near, far = if s < 0. then (left, right) else (right, left) in
              Pq.push pq (abs_float s) (t, far);
              descend near
        in
        descend node
  done;
  !nbuf

(* Select the [k] nearest of the (sorted, deduplicated) candidates by
   the total order (distance², index).  Returns [None] when fewer than
   [k] distinct candidates survive — the caller falls back to exact. *)
let select_k points q ~exclude ~k buf ncand =
  let cand = Array.sub buf 0 ncand in
  Array.sort compare cand;
  let uniq = ref 0 in
  Array.iter (fun j ->
      if j <> exclude && (!uniq = 0 || cand.(!uniq - 1) <> j) then begin
        cand.(!uniq) <- j;
        incr uniq
      end)
    cand;
  let m = !uniq in
  if m < k then None
  else begin
    let d2 = Array.init m (fun t -> Vec.dist2_sq points.(cand.(t)) q) in
    let perm = Array.init m Fun.id in
    Array.sort
      (fun a b ->
        let c = Float.compare d2.(a) d2.(b) in
        if c <> 0 then c else compare cand.(a) cand.(b))
      perm;
    Some (Array.init k (fun t -> cand.(perm.(t))))
  end

(* exact k-nearest of point [i] under the same (distance², index) total
   order the approximate path uses, so recall comparisons are
   unambiguous even with tied distances *)
let exact_k_nearest points n k i =
  let d2 = Array.init n (fun j -> Vec.dist2_sq points.(j) points.(i)) in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare d2.(a) d2.(b) in
      if c <> 0 then c else compare a b)
    order;
  let out = Array.make k 0 in
  let filled = ref 0 and pos = ref 0 in
  while !filled < k do
    let j = order.(!pos) in
    if j <> i then begin
      out.(!filled) <- j;
      incr filled
    end;
    incr pos
  done;
  out

let query_point index i ~budget ~k buf =
  Telemetry.Counter.incr c_queries;
  let q = index.points.(i) in
  let ncand = collect_candidates index q ~budget buf in
  Telemetry.Counter.add c_candidates ncand;
  match select_k index.points q ~exclude:i ~k !buf ncand with
  | Some out -> out
  | None ->
      (* not enough distinct candidates (tiny budget / heavy duplicate
         overlap between trees): answer exactly for this point *)
      Telemetry.Counter.incr c_exact_fallbacks;
      exact_k_nearest index.points (Array.length index.points) k i

let query index ?(probes = 12) q k =
  let n = Array.length index.points in
  if k < 0 || k > n then invalid_arg "Ann.query: k out of range";
  if Array.length q <> index.dim then invalid_arg "Ann.query: dimension mismatch";
  if k = 0 then [||]
  else begin
    Telemetry.Counter.incr c_queries;
    let buf = ref (Array.make (max 16 (probes * index.leaf_size)) 0) in
    let ncand = collect_candidates index q ~budget:(max 1 probes) buf in
    Telemetry.Counter.add c_candidates ncand;
    match select_k index.points q ~exclude:(-1) ~k !buf ncand with
    | Some out -> out
    | None ->
        Telemetry.Counter.incr c_exact_fallbacks;
        let d2 = Array.init n (fun j -> Vec.dist2_sq index.points.(j) q) in
        let order = Array.init n Fun.id in
        Array.sort
          (fun a b ->
            let c = Float.compare d2.(a) d2.(b) in
            if c <> 0 then c else compare a b)
          order;
        Array.sub order 0 k
  end

(* measured recall of the current budget on a fixed sample of queries:
   |approx ∩ exact| / (k · #sample), with the exact sets computed once *)
let sample_recall index ~budget ~k sample exact_sets =
  let hits = ref 0 in
  let buf = ref (Array.make (max 16 (budget * index.leaf_size)) 0) in
  Array.iteri
    (fun s i ->
      let approx = query_point index i ~budget ~k buf in
      let exact = exact_sets.(s) in
      Array.iter
        (fun j -> if Array.exists (fun e -> e = j) exact then incr hits)
        approx)
    sample;
  float_of_int !hits /. float_of_int (k * Array.length sample)

let plan_queries n ~budget ~leaf_size =
  Parallel.Autotune.plan Parallel.Autotune.Pairwise
    ~work:(n * budget * leaf_size) ~rows:n

let all_k_nearest ?seed ?trees ?leaf_size ?(probes = 4)
    ?(recall_target = 0.9) ?(recall_sample = 64) ?(exact_cutoff = 2048)
    points k =
  let n, _d = validate points in
  if k < 0 || k >= n then invalid_arg "Ann.all_k_nearest: k must be < n";
  if recall_target < 0. || recall_target > 1. then
    invalid_arg "Ann.all_k_nearest: recall_target must be in [0, 1]";
  if probes < 1 then invalid_arg "Ann.all_k_nearest: probes must be >= 1";
  if k = 0 then
    ( Array.make n [||],
      { exact = true; trees = 0; probes = 0; escalations = 0; recall = 1. } )
  else if n <= exact_cutoff then begin
    (* small n: the exact Pairwise-style path, fanned out like the
       pairwise kernel itself *)
    Telemetry.Counter.incr c_exact_fallbacks;
    let out = Array.make n [||] in
    let rows lo hi =
      for i = lo to hi - 1 do
        out.(i) <- exact_k_nearest points n k i
      done
    in
    (let { Parallel.Autotune.parallel = go_par; grain } =
       Parallel.Autotune.plan Parallel.Autotune.Pairwise ~work:(n * n) ~rows:n
     in
     if go_par then Parallel.Pool.run ?grain n rows else rows 0 n);
    ( out,
      { exact = true; trees = 0; probes = 0; escalations = 0; recall = 1. } )
  end
  else begin
    let index = build ?seed ?trees ?leaf_size points in
    Telemetry.Span.with_ "ann.search" (fun () ->
        let ntrees = Array.length index.forest in
        (* recall probe sample (and its exact answers) is fixed up front,
           derived from the same seed as the forest *)
        let sample_size = min n (max 1 recall_sample) in
        let sample_rng =
          Rng.substream (Rng.create (Option.value seed ~default:0x5eed)) 7919
        in
        let sample =
          Rng.sample_without_replacement sample_rng sample_size n
        in
        let exact_sets = Array.make sample_size [||] in
        (let rows lo hi =
           for s = lo to hi - 1 do
             exact_sets.(s) <- exact_k_nearest points n k sample.(s)
           done
         in
         let { Parallel.Autotune.parallel = go_par; grain } =
           Parallel.Autotune.plan Parallel.Autotune.Pairwise
             ~work:(sample_size * n) ~rows:sample_size
         in
         if go_par then Parallel.Pool.run ?grain sample_size rows
         else rows 0 sample_size);
        (* escalate the leaf-visit budget until the sampled recall meets
           the target; at total_leaves the search is exhaustive, so the
           loop always terminates with recall 1.0 in the worst case *)
        let budget = ref (min index.total_leaves (ntrees * probes)) in
        let escalations = ref 0 in
        let recall = ref (sample_recall index ~budget:!budget ~k sample exact_sets) in
        while !recall < recall_target && !budget < index.total_leaves do
          budget := min index.total_leaves (2 * !budget);
          incr escalations;
          Telemetry.Counter.incr c_escalations;
          recall := sample_recall index ~budget:!budget ~k sample exact_sets
        done;
        (* commit: run every query at the final budget, in parallel *)
        let out = Array.make n [||] in
        let rows lo hi =
          let buf = ref (Array.make (max 16 (!budget * index.leaf_size)) 0) in
          for i = lo to hi - 1 do
            out.(i) <- query_point index i ~budget:!budget ~k buf
          done
        in
        (let { Parallel.Autotune.parallel = go_par; grain } =
           plan_queries n ~budget:!budget ~leaf_size:index.leaf_size
         in
         if go_par then Parallel.Pool.run ?grain n rows else rows 0 n);
        ( out,
          {
            exact = false;
            trees = ntrees;
            probes = !budget;
            escalations = !escalations;
            recall = !recall;
          } ))
  end
