type t = { u : Mat.t; s : Vec.t; v : Mat.t }

let c_decompose = Telemetry.Counter.make "linalg.svd"
let c_sweeps = Telemetry.Counter.make "linalg.svd_sweeps"

(* One-sided Jacobi: repeatedly rotate column pairs of a working copy of A
   to make them orthogonal, accumulating the rotations into V.  At
   convergence the columns of the working matrix are u_i * s_i. *)
let decompose ?(tol = 1e-12) ?(max_sweeps = 60) a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m < n then invalid_arg "Svd.decompose: need rows >= cols";
  let w = Mat.copy a in
  let v = Mat.eye n in
  let wd = w.Mat.data and vd = v.Mat.data in
  let col_dot p q =
    let acc = ref 0. in
    for i = 0 to m - 1 do
      acc := !acc +. (wd.((i * n) + p) *. wd.((i * n) + q))
    done;
    !acc
  in
  let scale = Stdlib.max 1e-300 (Mat.frobenius_norm a) in
  let sweeps = ref 0 in
  let converged = ref false in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    let off = ref 0. in
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = col_dot p q in
        let app = col_dot p p and aqq = col_dot q q in
        off := Stdlib.max !off (abs_float apq /. (scale *. scale));
        if abs_float apq > 1e-300 then begin
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let sign = if theta >= 0. then 1. else -1. in
            sign /. (abs_float theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* rotate columns p and q of W and V *)
          for i = 0 to m - 1 do
            let wip = wd.((i * n) + p) and wiq = wd.((i * n) + q) in
            wd.((i * n) + p) <- (c *. wip) -. (s *. wiq);
            wd.((i * n) + q) <- (s *. wip) +. (c *. wiq)
          done;
          for i = 0 to n - 1 do
            let vip = vd.((i * n) + p) and viq = vd.((i * n) + q) in
            vd.((i * n) + p) <- (c *. vip) -. (s *. viq);
            vd.((i * n) + q) <- (s *. vip) +. (c *. viq)
          done
        end
      done
    done;
    if !off < tol then converged := true
  done;
  Telemetry.Counter.incr c_decompose;
  Telemetry.Counter.add c_sweeps !sweeps;
  if not !converged then failwith "Svd.decompose: did not converge";
  (* extract singular values and normalise the columns of W into U *)
  let s = Array.init n (fun j -> sqrt (Stdlib.max 0. (col_dot j j))) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare s.(j) s.(i)) order;
  let u = Mat.zeros m n and v_sorted = Mat.zeros n n in
  let s_sorted = Array.make n 0. in
  Array.iteri
    (fun new_j old_j ->
      s_sorted.(new_j) <- s.(old_j);
      let inv = if s.(old_j) > 1e-300 then 1. /. s.(old_j) else 0. in
      for i = 0 to m - 1 do
        Mat.set u i new_j (wd.((i * n) + old_j) *. inv)
      done;
      for i = 0 to n - 1 do
        Mat.set v_sorted i new_j vd.((i * n) + old_j)
      done)
    order;
  { u; s = s_sorted; v = v_sorted }

let reconstruct { u; s; v } =
  let n = Array.length s in
  let us = Mat.init u.Mat.rows n (fun i j -> Mat.get u i j *. s.(j)) in
  Mat.mm us (Mat.transpose v)

let rank ?(tol = 1e-10) { s; _ } =
  if Array.length s = 0 then 0
  else begin
    let threshold = tol *. s.(0) in
    let count = ref 0 in
    Array.iter (fun x -> if x > threshold then incr count) s;
    !count
  end

let condition_number { s; _ } =
  let n = Array.length s in
  if n = 0 || s.(n - 1) <= 0. then infinity else s.(0) /. s.(n - 1)

let pseudo_inverse ?(tol = 1e-10) { u; s; v } =
  let n = Array.length s in
  let threshold = if n = 0 then 0. else tol *. s.(0) in
  let vs =
    Mat.init v.Mat.rows n (fun i j ->
        if s.(j) > threshold then Mat.get v i j /. s.(j) else 0.)
  in
  Mat.mm vs (Mat.transpose u)
