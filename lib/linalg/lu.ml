type factorization = { lu : Mat.t; perm : int array; sign : float }

exception Singular of int

let c_factor = Telemetry.Counter.make "linalg.lu_factor"
let c_solve = Telemetry.Counter.make "linalg.lu_solve"
let c_flops = Telemetry.Counter.make "linalg.flops"

let pivot_tolerance = 1e-13

(* Doolittle elimination with partial pivoting.  The factors overwrite a
   working copy: strict lower triangle holds L (unit diagonal implied),
   upper triangle holds U. *)
let factor a =
  if not (Mat.is_square a) then invalid_arg "Lu.factor: matrix not square";
  let n = a.Mat.rows in
  Telemetry.Counter.incr c_factor;
  Telemetry.Counter.add c_flops (2 * n * n * n / 3);
  let lu = Mat.copy a in
  let d = lu.Mat.data in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* find the pivot row *)
    let pivot_row = ref k in
    let pivot_val = ref (abs_float d.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = abs_float d.((i * n) + k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < pivot_tolerance then raise (Singular k);
    if !pivot_row <> k then begin
      let p = !pivot_row in
      for j = 0 to n - 1 do
        let tmp = d.((k * n) + j) in
        d.((k * n) + j) <- d.((p * n) + j);
        d.((p * n) + j) <- tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(p);
      perm.(p) <- tmp;
      sign := -. !sign
    end;
    let pivot = d.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let m = d.((i * n) + k) /. pivot in
      d.((i * n) + k) <- m;
      if m <> 0. then
        for j = k + 1 to n - 1 do
          d.((i * n) + j) <- d.((i * n) + j) -. (m *. d.((k * n) + j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factored { lu; perm; _ } b =
  let n = lu.Mat.rows in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: length mismatch";
  Telemetry.Counter.incr c_solve;
  Telemetry.Counter.add c_flops (2 * n * n);
  let d = lu.Mat.data in
  (* apply permutation, then forward substitution L y = P b *)
  let y = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (d.((i * n) + j) *. y.(j))
    done;
    y.(i) <- !acc
  done;
  (* backward substitution U x = y *)
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (d.((i * n) + j) *. y.(j))
    done;
    y.(i) <- !acc /. d.((i * n) + i)
  done;
  y

let solve a b = solve_factored (factor a) b

let solve_many a b =
  if a.Mat.rows <> b.Mat.rows then invalid_arg "Lu.solve_many: dimension mismatch";
  let f = factor a in
  let x = Mat.zeros a.Mat.cols b.Mat.cols in
  for j = 0 to b.Mat.cols - 1 do
    Mat.set_col x j (solve_factored f (Mat.col b j))
  done;
  x

let inverse a = solve_many a (Mat.eye a.Mat.rows)

let det a =
  match factor a with
  | exception Singular _ -> 0.
  | { lu; sign; _ } ->
      let n = lu.Mat.rows in
      let acc = ref sign in
      for i = 0 to n - 1 do
        acc := !acc *. lu.Mat.data.((i * n) + i)
      done;
      !acc

let is_singular a =
  match factor a with exception Singular _ -> true | _ -> false
