(* Householder QR.  We keep the reflectors in the strict lower part of the
   working matrix plus a separate array of scalars, LAPACK-style. *)

type factorization = {
  m : int;
  n : int;
  work : Mat.t;        (* upper triangle: R; below diagonal: reflector tails *)
  betas : float array; (* reflector scalings *)
}

let c_factor = Telemetry.Counter.make "linalg.qr_factor"
let c_flops = Telemetry.Counter.make "linalg.flops"

let factor a =
  let m = a.Mat.rows and n = a.Mat.cols in
  if m < n then invalid_arg "Qr.factor: need rows >= cols";
  Telemetry.Counter.incr c_factor;
  Telemetry.Counter.add c_flops ((2 * m * n * n) - (2 * n * n * n / 3));
  let work = Mat.copy a in
  let d = work.Mat.data in
  let betas = Array.make n 0. in
  for k = 0 to n - 1 do
    (* build the Householder vector for column k below the diagonal *)
    let norm = ref 0. in
    for i = k to m - 1 do
      let v = d.((i * n) + k) in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm > 0. then begin
      let akk = d.((k * n) + k) in
      let alpha = if akk >= 0. then -.norm else norm in
      (* v = x - alpha e1, stored with v_k implicit after normalisation *)
      let vk = akk -. alpha in
      d.((k * n) + k) <- alpha;
      (* normalise tail by vk so the head becomes the implicit 1 *)
      if vk <> 0. then begin
        for i = k + 1 to m - 1 do
          d.((i * n) + k) <- d.((i * n) + k) /. vk
        done;
        betas.(k) <- -.vk /. alpha;
        (* apply the reflector to the remaining columns *)
        for j = k + 1 to n - 1 do
          let s = ref d.((k * n) + j) in
          for i = k + 1 to m - 1 do
            s := !s +. (d.((i * n) + k) *. d.((i * n) + j))
          done;
          let s = betas.(k) *. !s in
          d.((k * n) + j) <- d.((k * n) + j) -. s;
          for i = k + 1 to m - 1 do
            d.((i * n) + j) <- d.((i * n) + j) -. (s *. d.((i * n) + k))
          done
        done
      end
    end
  done;
  { m; n; work; betas }

let r { n; work; _ } =
  Mat.init n n (fun i j -> if j >= i then Mat.get work i j else 0.)

(* Apply Qᵀ to a vector of length m, in place. *)
let apply_qt { m; n; work; betas } b =
  let d = work.Mat.data in
  let y = Array.copy b in
  for k = 0 to n - 1 do
    if betas.(k) <> 0. then begin
      let s = ref y.(k) in
      for i = k + 1 to m - 1 do
        s := !s +. (d.((i * n) + k) *. y.(i))
      done;
      let s = betas.(k) *. !s in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to m - 1 do
        y.(i) <- y.(i) -. (s *. d.((i * n) + k))
      done
    end
  done;
  y

(* Apply Q to a vector, in place (reflectors in reverse order). *)
let apply_q { m; n; work; betas } b =
  let d = work.Mat.data in
  let y = Array.copy b in
  for k = n - 1 downto 0 do
    if betas.(k) <> 0. then begin
      let s = ref y.(k) in
      for i = k + 1 to m - 1 do
        s := !s +. (d.((i * n) + k) *. y.(i))
      done;
      let s = betas.(k) *. !s in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to m - 1 do
        y.(i) <- y.(i) -. (s *. d.((i * n) + k))
      done
    end
  done;
  y

let q ({ m; n; _ } as f) =
  let cols =
    Array.init n (fun j ->
        let e = Array.make m 0. in
        e.(j) <- 1.;
        apply_q f e)
  in
  Mat.of_cols cols

let back_substitute f y =
  let n = f.n in
  let d = f.work.Mat.data in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (d.((i * n) + j) *. x.(j))
    done;
    let rii = d.((i * n) + i) in
    if abs_float rii < 1e-13 then failwith "Qr: rank-deficient matrix";
    x.(i) <- !acc /. rii
  done;
  x

let solve_least_squares a b =
  if Array.length b <> a.Mat.rows then
    invalid_arg "Qr.solve_least_squares: length mismatch";
  let f = factor a in
  back_substitute f (apply_qt f b)

let solve a b =
  if not (Mat.is_square a) then invalid_arg "Qr.solve: matrix not square";
  solve_least_squares a b
