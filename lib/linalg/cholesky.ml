exception Not_positive_definite of int

let c_factor = Telemetry.Counter.make "linalg.cholesky_factor"
let c_solve = Telemetry.Counter.make "linalg.cholesky_solve"
let c_flops = Telemetry.Counter.make "linalg.flops"

(* Cholesky–Banachiewicz: row-by-row construction of the lower factor. *)
let factor a =
  if not (Mat.is_square a) then invalid_arg "Cholesky.factor: matrix not square";
  let n = a.Mat.rows in
  Telemetry.Counter.incr c_factor;
  Telemetry.Counter.add c_flops (n * n * n / 3);
  let l = Mat.zeros n n in
  let ad = a.Mat.data and ld = l.Mat.data in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref ad.((i * n) + j) in
      for k = 0 to j - 1 do
        acc := !acc -. (ld.((i * n) + k) *. ld.((j * n) + k))
      done;
      if i = j then begin
        if !acc <= 0. then raise (Not_positive_definite i);
        ld.((i * n) + i) <- sqrt !acc
      end
      else ld.((i * n) + j) <- !acc /. ld.((j * n) + j)
    done
  done;
  l

let solve_factored l b =
  let n = l.Mat.rows in
  if Array.length b <> n then
    invalid_arg "Cholesky.solve_factored: length mismatch";
  Telemetry.Counter.incr c_solve;
  Telemetry.Counter.add c_flops (2 * n * n);
  let ld = l.Mat.data in
  (* forward: l y = b *)
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (ld.((i * n) + j) *. y.(j))
    done;
    y.(i) <- !acc /. ld.((i * n) + i)
  done;
  (* backward: lᵀ x = y *)
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (ld.((j * n) + i) *. y.(j))
    done;
    y.(i) <- !acc /. ld.((i * n) + i)
  done;
  y

let solve a b = solve_factored (factor a) b

let solve_many a b =
  if a.Mat.rows <> b.Mat.rows then
    invalid_arg "Cholesky.solve_many: dimension mismatch";
  let l = factor a in
  let x = Mat.zeros a.Mat.cols b.Mat.cols in
  for j = 0 to b.Mat.cols - 1 do
    Mat.set_col x j (solve_factored l (Mat.col b j))
  done;
  x

let inverse a = solve_many a (Mat.eye a.Mat.rows)

let log_det a =
  let l = factor a in
  let n = l.Mat.rows in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log l.Mat.data.((i * n) + i)
  done;
  2. *. !acc

let is_spd a =
  Mat.is_symmetric ~tol:1e-8 a
  && match factor a with exception Not_positive_definite _ -> false | _ -> true
