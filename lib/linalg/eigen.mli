(** Eigendecomposition of symmetric matrices.

    The cyclic Jacobi rotation method gives the full spectrum of dense
    symmetric matrices — used for spectral properties of graph Laplacians
    (positive semidefiniteness, Fiedler value).  Power iteration gives the
    dominant pair cheaply. *)

type decomposition = {
  values : Vec.t;   (** eigenvalues, ascending *)
  vectors : Mat.t;  (** column [j] is the eigenvector for [values.(j)] *)
}

val jacobi :
  ?tol:float -> ?max_sweeps:int -> ?parallel:bool -> Mat.t -> decomposition
(** Full eigendecomposition of a symmetric matrix by cyclic Jacobi
    rotations.  [tol] (default 1e-12) bounds the off-diagonal Frobenius
    norm at convergence; [max_sweeps] defaults to 100.

    [parallel] selects the rotation ordering: [false] is the classic
    serial cyclic-by-rows sweep; [true] orders each sweep as the
    round-robin tournament rounds of mutually disjoint pairs and applies
    each round's rotations simultaneously on the {!Parallel.Pool} (two
    barriered element-wise phases per round, so the result is
    bit-identical for any domain count — though it differs in the last
    bits from the serial ordering, both converge to the same spectrum
    within [tol]).  Default: parallel from 192×192 up, serial below.
    Raises [Invalid_argument] if not square, [Failure] on non-convergence. *)

val power_iteration :
  ?tol:float -> ?max_iter:int -> Mat.t -> Vec.t -> float * Vec.t
(** [power_iteration a v0] returns the dominant (largest-|λ|) eigenpair
    starting from [v0].  Raises [Failure] on non-convergence or a zero
    start vector. *)

val eigenvalues : Mat.t -> Vec.t
(** Ascending eigenvalues of a symmetric matrix (Jacobi). *)

val spectral_radius_bound : Mat.t -> float
(** Gershgorin upper bound on the spectral radius — cheap, used to check
    convergence conditions of stationary iterations. *)

val is_positive_semidefinite : ?tol:float -> Mat.t -> bool
(** True when all eigenvalues are ≥ −[tol] (default 1e-8). *)
