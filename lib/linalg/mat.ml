type t = { rows : int; cols : int; data : float array }

(* telemetry probes: one branch per *call* (never per element), so the
   disabled-mode cost is invisible next to the O(n^2)/O(n^3) body *)
let c_gemv = Telemetry.Counter.make "linalg.gemv"
let c_gemm = Telemetry.Counter.make "linalg.gemm"
let c_flops = Telemetry.Counter.make "linalg.flops"

let check_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let check_square name a =
  if a.rows <> a.cols then
    invalid_arg (Printf.sprintf "Mat.%s: matrix is %dx%d, not square" name a.rows a.cols)

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.
let ones rows cols = create rows cols 1.

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      data.(base + j) <- f i j
    done
  done;
  { rows; cols; data }

let eye n = init n n (fun i j -> if i = j then 1. else 0.)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let of_rows rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then invalid_arg "Mat.of_rows: empty";
  let c = Array.length rows_arr.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init r c (fun i j -> rows_arr.(i).(j))

let of_cols cols_arr =
  let c = Array.length cols_arr in
  if c = 0 then invalid_arg "Mat.of_cols: empty";
  let r = Array.length cols_arr.(0) in
  Array.iter
    (fun col ->
      if Array.length col <> r then invalid_arg "Mat.of_cols: ragged columns")
    cols_arr;
  init r c (fun i j -> cols_arr.(j).(i))

let of_arrays = of_rows

let to_arrays a =
  Array.init a.rows (fun i -> Array.sub a.data (i * a.cols) a.cols)

let copy a = { a with data = Array.copy a.data }

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.get: index out of bounds";
  a.data.((i * a.cols) + j)

let set a i j x =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.set: index out of bounds";
  a.data.((i * a.cols) + j) <- x

let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: index out of bounds";
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: index out of bounds";
  Array.init a.rows (fun i -> a.data.((i * a.cols) + j))

let get_diag a =
  let n = Stdlib.min a.rows a.cols in
  Array.init n (fun i -> a.data.((i * a.cols) + i))

let dims a = (a.rows, a.cols)
let is_square a = a.rows = a.cols

let set_row a i v =
  if i < 0 || i >= a.rows then invalid_arg "Mat.set_row: index out of bounds";
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: length mismatch";
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  if j < 0 || j >= a.cols then invalid_arg "Mat.set_col: index out of bounds";
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: length mismatch";
  for i = 0 to a.rows - 1 do
    a.data.((i * a.cols) + j) <- v.(i)
  done

let map f a = { a with data = Array.map f a.data }

let mapij f a =
  init a.rows a.cols (fun i j -> f i j a.data.((i * a.cols) + j))

let add a b =
  check_dims "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_dims "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let hadamard a b =
  check_dims "hadamard" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) *. b.data.(k)) }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let add_scaled_identity a mu =
  check_square "add_scaled_identity" a;
  let b = copy a in
  for i = 0 to a.rows - 1 do
    b.data.((i * a.cols) + i) <- b.data.((i * a.cols) + i) +. mu
  done;
  b

(* Whether a kernel call fans out over the domain pool — and with what
   grain — is decided by Parallel.Autotune: the historical static work
   thresholds by default, or a startup-calibrated cost model under
   GSSL_TUNE.  Either way the decision only gates *where* the row loop
   runs; each row's accumulation order is unchanged, so the output is
   bit-identical for any domain count and any tune mode. *)

let mv a x =
  if Array.length x <> a.cols then
    invalid_arg
      (Printf.sprintf "Mat.mv: %dx%d matrix times vector of length %d" a.rows
         a.cols (Array.length x));
  Telemetry.Counter.incr c_gemv;
  Telemetry.Counter.add c_flops (2 * a.rows * a.cols);
  let y = Array.make a.rows 0. in
  let rows lo hi =
    for i = lo to hi - 1 do
      let base = i * a.cols in
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(base + j) *. x.(j))
      done;
      y.(i) <- !acc
    done
  in
  let { Parallel.Autotune.parallel = go_par; grain } =
    Parallel.Autotune.plan Parallel.Autotune.Gemv ~work:(a.rows * a.cols)
      ~rows:a.rows
  in
  if go_par then Parallel.Pool.run ?grain a.rows rows else rows 0 a.rows;
  y

let tmv a x =
  if Array.length x <> a.rows then
    invalid_arg
      (Printf.sprintf "Mat.tmv: (%dx%d)^T times vector of length %d" a.rows
         a.cols (Array.length x));
  Telemetry.Counter.incr c_gemv;
  Telemetry.Counter.add c_flops (2 * a.rows * a.cols);
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  y

(* GEMM.  Every path keeps each output cell's k accumulation strictly
   ascending, so the bits always match the naive ijk triple loop (no
   zero-skipping: a skipped 0-term can turn a -0. accumulator into +0.,
   which would break that contract).

   Large products go through a register-blocked 4x4 micro-kernel over a
   packed copy of B: the four B columns of a strip are interleaved into
   one contiguous panel (packed once, shared read-only by every row
   chunk), and the sixteen accumulators live in local float refs that
   the compiler keeps unboxed in registers, so the k loop streams two
   cache lines instead of striding across B.  Small products keep the
   plain ikj loop — the packing would cost more than it saves. *)
let mr = 4 (* micro-kernel rows *)
let nr = 4 (* micro-kernel cols = packed strip width *)
let gemm_pack_threshold = 1 lsl 12

(* c[i0..i0+3][s*4..s*4+3] += A[i0..i0+3][:] . packed strip s *)
let gemm_kernel_4x4 ad abase kdim acols bp bpbase cd cbase n =
  let c00 = ref 0. and c01 = ref 0. and c02 = ref 0. and c03 = ref 0. in
  let c10 = ref 0. and c11 = ref 0. and c12 = ref 0. and c13 = ref 0. in
  let c20 = ref 0. and c21 = ref 0. and c22 = ref 0. and c23 = ref 0. in
  let c30 = ref 0. and c31 = ref 0. and c32 = ref 0. and c33 = ref 0. in
  let a0 = abase and a1 = abase + acols in
  let a2 = abase + (2 * acols) and a3 = abase + (3 * acols) in
  for k = 0 to kdim - 1 do
    let bk = bpbase + (k * nr) in
    let b0 = bp.(bk) and b1 = bp.(bk + 1) in
    let b2 = bp.(bk + 2) and b3 = bp.(bk + 3) in
    let x0 = ad.(a0 + k) and x1 = ad.(a1 + k) in
    let x2 = ad.(a2 + k) and x3 = ad.(a3 + k) in
    c00 := !c00 +. (x0 *. b0);
    c01 := !c01 +. (x0 *. b1);
    c02 := !c02 +. (x0 *. b2);
    c03 := !c03 +. (x0 *. b3);
    c10 := !c10 +. (x1 *. b0);
    c11 := !c11 +. (x1 *. b1);
    c12 := !c12 +. (x1 *. b2);
    c13 := !c13 +. (x1 *. b3);
    c20 := !c20 +. (x2 *. b0);
    c21 := !c21 +. (x2 *. b1);
    c22 := !c22 +. (x2 *. b2);
    c23 := !c23 +. (x2 *. b3);
    c30 := !c30 +. (x3 *. b0);
    c31 := !c31 +. (x3 *. b1);
    c32 := !c32 +. (x3 *. b2);
    c33 := !c33 +. (x3 *. b3)
  done;
  let r0 = cbase and r1 = cbase + n in
  let r2 = cbase + (2 * n) and r3 = cbase + (3 * n) in
  cd.(r0) <- !c00;
  cd.(r0 + 1) <- !c01;
  cd.(r0 + 2) <- !c02;
  cd.(r0 + 3) <- !c03;
  cd.(r1) <- !c10;
  cd.(r1 + 1) <- !c11;
  cd.(r1 + 2) <- !c12;
  cd.(r1 + 3) <- !c13;
  cd.(r2) <- !c20;
  cd.(r2 + 1) <- !c21;
  cd.(r2 + 2) <- !c22;
  cd.(r2 + 3) <- !c23;
  cd.(r3) <- !c30;
  cd.(r3 + 1) <- !c31;
  cd.(r3 + 2) <- !c32;
  cd.(r3 + 3) <- !c33

(* scalar fallback for edge rows/columns: per-cell dot, k ascending *)
let gemm_scalar_cells ad abase kdim bd cd cbase n j0 j1 =
  for j = j0 to j1 - 1 do
    let acc = ref 0. in
    for k = 0 to kdim - 1 do
      acc := !acc +. (ad.(abase + k) *. bd.((k * n) + j))
    done;
    cd.(cbase + j) <- !acc
  done

let mm a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mm: %dx%d times %dx%d" a.rows a.cols b.rows b.cols);
  Telemetry.Counter.incr c_gemm;
  Telemetry.Counter.add c_flops (2 * a.rows * a.cols * b.cols);
  let c = zeros a.rows b.cols in
  let kdim = a.cols and n = b.cols in
  let work = a.rows * kdim * n in
  if work = 0 then c
  else if work < gemm_pack_threshold || n < nr || kdim = 0 then begin
    (* plain ikj: inner loop contiguous over b and c *)
    for i = 0 to a.rows - 1 do
      let abase = i * kdim and cbase = i * n in
      for k = 0 to kdim - 1 do
        let aik = a.data.(abase + k) in
        let bbase = k * n in
        for j = 0 to n - 1 do
          c.data.(cbase + j) <- c.data.(cbase + j) +. (aik *. b.data.(bbase + j))
        done
      done
    done;
    c
  end
  else begin
    let nstrips = n / nr in
    let ntail = nstrips * nr in
    (* pack the full strips of B once, before any dispatch *)
    let bp = Array.make (nstrips * kdim * nr) 0. in
    for s = 0 to nstrips - 1 do
      let sbase = s * kdim * nr in
      let j0 = s * nr in
      for k = 0 to kdim - 1 do
        let src = (k * n) + j0 and dst = sbase + (k * nr) in
        bp.(dst) <- b.data.(src);
        bp.(dst + 1) <- b.data.(src + 1);
        bp.(dst + 2) <- b.data.(src + 2);
        bp.(dst + 3) <- b.data.(src + 3)
      done
    done;
    let panel lo hi =
      let i = ref lo in
      while !i + mr <= hi do
        let abase = !i * kdim and cbase = !i * n in
        for s = 0 to nstrips - 1 do
          gemm_kernel_4x4 a.data abase kdim kdim bp (s * kdim * nr) c.data
            (cbase + (s * nr)) n
        done;
        if ntail < n then
          for di = 0 to mr - 1 do
            gemm_scalar_cells a.data (abase + (di * kdim)) kdim b.data c.data
              (cbase + (di * n)) n ntail n
          done;
        i := !i + mr
      done;
      for i = !i to hi - 1 do
        gemm_scalar_cells a.data (i * kdim) kdim b.data c.data (i * n) n 0 n
      done
    in
    let { Parallel.Autotune.parallel = go_par; grain } =
      Parallel.Autotune.plan Parallel.Autotune.Gemm ~work ~rows:a.rows
    in
    if go_par then
      let grain =
        match grain with
        | Some g -> Stdlib.max g mr
        | None -> Stdlib.max mr ((a.rows + 31) / 32)
      in
      Parallel.Pool.run ~grain a.rows panel
    else panel 0 a.rows;
    c
  end

let transpose a = init a.cols a.rows (fun i j -> a.data.((j * a.cols) + i))

let gram a =
  Telemetry.Counter.incr c_gemm;
  Telemetry.Counter.add c_flops (a.rows * a.cols * a.cols);
  let g = zeros a.cols a.cols in
  for k = 0 to a.rows - 1 do
    let base = k * a.cols in
    for i = 0 to a.cols - 1 do
      let aki = a.data.(base + i) in
      if aki <> 0. then begin
        let gbase = i * a.cols in
        for j = i to a.cols - 1 do
          g.data.(gbase + j) <- g.data.(gbase + j) +. (aki *. a.data.(base + j))
        done
      end
    done
  done;
  (* mirror the upper triangle *)
  for i = 0 to a.cols - 1 do
    for j = 0 to i - 1 do
      g.data.((i * a.cols) + j) <- g.data.((j * a.cols) + i)
    done
  done;
  g

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let quadratic_form a x =
  check_square "quadratic_form" a;
  Vec.dot x (mv a x)

let trace a =
  check_square "trace" a;
  let acc = ref 0. in
  for i = 0 to a.rows - 1 do
    acc := !acc +. a.data.((i * a.cols) + i)
  done;
  !acc

let frobenius_norm a =
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. (x *. x)) a.data;
  sqrt !acc

let max_abs a =
  let acc = ref 0. in
  Array.iter
    (fun x ->
      let v = abs_float x in
      if v > !acc then acc := v)
    a.data;
  !acc

let row_sums a = Array.init a.rows (fun i -> Vec.sum (row a i))
let col_sums a = tmv a (Vec.ones a.rows)

let is_symmetric ?(tol = 1e-9) a =
  is_square a
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if abs_float (a.data.((i * a.cols) + j) -. a.data.((j * a.cols) + i)) > tol
      then ok := false
    done
  done;
  !ok

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(k) -. b.data.(k)) > tol then ok := false
  done;
  !ok

let submatrix a i j r c =
  if i < 0 || j < 0 || r < 0 || c < 0 || i + r > a.rows || j + c > a.cols then
    invalid_arg "Mat.submatrix: out of range";
  init r c (fun p q -> a.data.(((i + p) * a.cols) + j + q))

let blit ~src ~dst i j =
  if i < 0 || j < 0 || i + src.rows > dst.rows || j + src.cols > dst.cols then
    invalid_arg "Mat.blit: out of range";
  for p = 0 to src.rows - 1 do
    Array.blit src.data (p * src.cols) dst.data (((i + p) * dst.cols) + j)
      src.cols
  done

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  let c = zeros a.rows (a.cols + b.cols) in
  blit ~src:a ~dst:c 0 0;
  blit ~src:b ~dst:c 0 a.cols;
  c

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: column mismatch";
  let c = zeros (a.rows + b.rows) a.cols in
  blit ~src:a ~dst:c 0 0;
  blit ~src:b ~dst:c a.rows 0;
  c

let split4 a k =
  check_square "split4" a;
  if k < 0 || k > a.rows then invalid_arg "Mat.split4: bad split point";
  let n = a.rows in
  ( submatrix a 0 0 k k,
    submatrix a 0 k k (n - k),
    submatrix a k 0 (n - k) k,
    submatrix a k k (n - k) (n - k) )

let assemble4 a11 a12 a21 a22 =
  let top = hcat a11 a12 and bottom = hcat a21 a22 in
  vcat top bottom

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" a.data.((i * a.cols) + j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp a
