type t = { rows : int; cols : int; data : float array }

(* telemetry probes: one branch per *call* (never per element), so the
   disabled-mode cost is invisible next to the O(n^2)/O(n^3) body *)
let c_gemv = Telemetry.Counter.make "linalg.gemv"
let c_gemm = Telemetry.Counter.make "linalg.gemm"
let c_flops = Telemetry.Counter.make "linalg.flops"

let check_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let check_square name a =
  if a.rows <> a.cols then
    invalid_arg (Printf.sprintf "Mat.%s: matrix is %dx%d, not square" name a.rows a.cols)

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.
let ones rows cols = create rows cols 1.

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      data.(base + j) <- f i j
    done
  done;
  { rows; cols; data }

let eye n = init n n (fun i j -> if i = j then 1. else 0.)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let of_rows rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then invalid_arg "Mat.of_rows: empty";
  let c = Array.length rows_arr.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init r c (fun i j -> rows_arr.(i).(j))

let of_cols cols_arr =
  let c = Array.length cols_arr in
  if c = 0 then invalid_arg "Mat.of_cols: empty";
  let r = Array.length cols_arr.(0) in
  Array.iter
    (fun col ->
      if Array.length col <> r then invalid_arg "Mat.of_cols: ragged columns")
    cols_arr;
  init r c (fun i j -> cols_arr.(j).(i))

let of_arrays = of_rows

let to_arrays a =
  Array.init a.rows (fun i -> Array.sub a.data (i * a.cols) a.cols)

let copy a = { a with data = Array.copy a.data }

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.get: index out of bounds";
  a.data.((i * a.cols) + j)

let set a i j x =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.set: index out of bounds";
  a.data.((i * a.cols) + j) <- x

let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: index out of bounds";
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: index out of bounds";
  Array.init a.rows (fun i -> a.data.((i * a.cols) + j))

let get_diag a =
  let n = Stdlib.min a.rows a.cols in
  Array.init n (fun i -> a.data.((i * a.cols) + i))

let dims a = (a.rows, a.cols)
let is_square a = a.rows = a.cols

let set_row a i v =
  if i < 0 || i >= a.rows then invalid_arg "Mat.set_row: index out of bounds";
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: length mismatch";
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  if j < 0 || j >= a.cols then invalid_arg "Mat.set_col: index out of bounds";
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: length mismatch";
  for i = 0 to a.rows - 1 do
    a.data.((i * a.cols) + j) <- v.(i)
  done

let map f a = { a with data = Array.map f a.data }

let mapij f a =
  init a.rows a.cols (fun i j -> f i j a.data.((i * a.cols) + j))

let add a b =
  check_dims "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_dims "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let hadamard a b =
  check_dims "hadamard" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) *. b.data.(k)) }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let add_scaled_identity a mu =
  check_square "add_scaled_identity" a;
  let b = copy a in
  for i = 0 to a.rows - 1 do
    b.data.((i * a.cols) + i) <- b.data.((i * a.cols) + i) +. mu
  done;
  b

(* Parallelism thresholds: dispatching a pool job costs a few µs, so a
   kernel only fans out when it has clearly more work than that.  Below
   the threshold (and always on a one-domain pool) the same loop runs
   inline, and because every row's accumulation order is unchanged the
   output is bit-identical either way. *)
let gemv_par_threshold = 1 lsl 15
let gemm_par_threshold = 1 lsl 16

let mv a x =
  if Array.length x <> a.cols then
    invalid_arg
      (Printf.sprintf "Mat.mv: %dx%d matrix times vector of length %d" a.rows
         a.cols (Array.length x));
  Telemetry.Counter.incr c_gemv;
  Telemetry.Counter.add c_flops (2 * a.rows * a.cols);
  let y = Array.make a.rows 0. in
  let rows lo hi =
    for i = lo to hi - 1 do
      let base = i * a.cols in
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.(base + j) *. x.(j))
      done;
      y.(i) <- !acc
    done
  in
  if a.rows >= 2 && a.rows * a.cols >= gemv_par_threshold then
    Parallel.Pool.run a.rows rows
  else rows 0 a.rows;
  y

let tmv a x =
  if Array.length x <> a.rows then
    invalid_arg
      (Printf.sprintf "Mat.tmv: (%dx%d)^T times vector of length %d" a.rows
         a.cols (Array.length x));
  Telemetry.Counter.incr c_gemv;
  Telemetry.Counter.add c_flops (2 * a.rows * a.cols);
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
      done
  done;
  y

(* ikj loop order: the inner loop walks both [b] and [c] contiguously, which
   is substantially faster than the naive ijk order on row-major storage.
   Row panels are independent, so the pool tiles over them; within a panel
   the k loop is blocked so the touched rows of [b] stay cache-resident
   while the panel sweeps them.  Blocking keeps k globally ascending per
   row, so the accumulation order — and hence the bits — match the plain
   ikj loop exactly. *)
let gemm_k_block = 64

let mm a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mm: %dx%d times %dx%d" a.rows a.cols b.rows b.cols);
  Telemetry.Counter.incr c_gemm;
  Telemetry.Counter.add c_flops (2 * a.rows * a.cols * b.cols);
  let c = zeros a.rows b.cols in
  let n = b.cols in
  let panel lo hi =
    let kt = ref 0 in
    while !kt < a.cols do
      let kmax = Stdlib.min a.cols (!kt + gemm_k_block) in
      for i = lo to hi - 1 do
        let abase = i * a.cols in
        let cbase = i * n in
        for k = !kt to kmax - 1 do
          let aik = a.data.(abase + k) in
          if aik <> 0. then begin
            let bbase = k * n in
            for j = 0 to n - 1 do
              c.data.(cbase + j) <-
                c.data.(cbase + j) +. (aik *. b.data.(bbase + j))
            done
          end
        done
      done;
      kt := kmax
    done
  in
  if a.rows >= 2 && a.rows * a.cols * n >= gemm_par_threshold then
    Parallel.Pool.run ~grain:(Stdlib.max 1 ((a.rows + 31) / 32)) a.rows panel
  else panel 0 a.rows;
  c

let transpose a = init a.cols a.rows (fun i j -> a.data.((j * a.cols) + i))

let gram a =
  Telemetry.Counter.incr c_gemm;
  Telemetry.Counter.add c_flops (a.rows * a.cols * a.cols);
  let g = zeros a.cols a.cols in
  for k = 0 to a.rows - 1 do
    let base = k * a.cols in
    for i = 0 to a.cols - 1 do
      let aki = a.data.(base + i) in
      if aki <> 0. then begin
        let gbase = i * a.cols in
        for j = i to a.cols - 1 do
          g.data.(gbase + j) <- g.data.(gbase + j) +. (aki *. a.data.(base + j))
        done
      end
    done
  done;
  (* mirror the upper triangle *)
  for i = 0 to a.cols - 1 do
    for j = 0 to i - 1 do
      g.data.((i * a.cols) + j) <- g.data.((j * a.cols) + i)
    done
  done;
  g

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let quadratic_form a x =
  check_square "quadratic_form" a;
  Vec.dot x (mv a x)

let trace a =
  check_square "trace" a;
  let acc = ref 0. in
  for i = 0 to a.rows - 1 do
    acc := !acc +. a.data.((i * a.cols) + i)
  done;
  !acc

let frobenius_norm a =
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. (x *. x)) a.data;
  sqrt !acc

let max_abs a =
  let acc = ref 0. in
  Array.iter
    (fun x ->
      let v = abs_float x in
      if v > !acc then acc := v)
    a.data;
  !acc

let row_sums a = Array.init a.rows (fun i -> Vec.sum (row a i))
let col_sums a = tmv a (Vec.ones a.rows)

let is_symmetric ?(tol = 1e-9) a =
  is_square a
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if abs_float (a.data.((i * a.cols) + j) -. a.data.((j * a.cols) + i)) > tol
      then ok := false
    done
  done;
  !ok

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(k) -. b.data.(k)) > tol then ok := false
  done;
  !ok

let submatrix a i j r c =
  if i < 0 || j < 0 || r < 0 || c < 0 || i + r > a.rows || j + c > a.cols then
    invalid_arg "Mat.submatrix: out of range";
  init r c (fun p q -> a.data.(((i + p) * a.cols) + j + q))

let blit ~src ~dst i j =
  if i < 0 || j < 0 || i + src.rows > dst.rows || j + src.cols > dst.cols then
    invalid_arg "Mat.blit: out of range";
  for p = 0 to src.rows - 1 do
    Array.blit src.data (p * src.cols) dst.data (((i + p) * dst.cols) + j)
      src.cols
  done

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  let c = zeros a.rows (a.cols + b.cols) in
  blit ~src:a ~dst:c 0 0;
  blit ~src:b ~dst:c 0 a.cols;
  c

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: column mismatch";
  let c = zeros (a.rows + b.rows) a.cols in
  blit ~src:a ~dst:c 0 0;
  blit ~src:b ~dst:c a.rows 0;
  c

let split4 a k =
  check_square "split4" a;
  if k < 0 || k > a.rows then invalid_arg "Mat.split4: bad split point";
  let n = a.rows in
  ( submatrix a 0 0 k k,
    submatrix a 0 k k (n - k),
    submatrix a k 0 (n - k) k,
    submatrix a k k (n - k) (n - k) )

let assemble4 a11 a12 a21 a22 =
  let top = hcat a11 a12 and bottom = hcat a21 a22 in
  vcat top bottom

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" a.data.((i * a.cols) + j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp a
