type decomposition = { values : Vec.t; vectors : Mat.t }

let c_jacobi = Telemetry.Counter.make "linalg.eigen_jacobi"
let c_sweeps = Telemetry.Counter.make "linalg.eigen_sweeps"

let off_diag_norm a =
  let n = a.Mat.rows in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = a.Mat.data.((i * n) + j) in
        acc := !acc +. (v *. v)
      end
    done
  done;
  sqrt !acc

(* One Jacobi rotation annihilating entry (p, q) of [a], accumulating the
   rotation into [v].  Standard formulas from Golub & Van Loan §8.5. *)
let rotate a v p q =
  let n = a.Mat.rows in
  let ad = a.Mat.data and vd = v.Mat.data in
  let apq = ad.((p * n) + q) in
  if apq <> 0. then begin
    let app = ad.((p * n) + p) and aqq = ad.((q * n) + q) in
    let theta = (aqq -. app) /. (2. *. apq) in
    let t =
      let s = if theta >= 0. then 1. else -1. in
      s /. (abs_float theta +. sqrt ((theta *. theta) +. 1.))
    in
    let c = 1. /. sqrt ((t *. t) +. 1.) in
    let s = t *. c in
    for k = 0 to n - 1 do
      let akp = ad.((k * n) + p) and akq = ad.((k * n) + q) in
      ad.((k * n) + p) <- (c *. akp) -. (s *. akq);
      ad.((k * n) + q) <- (s *. akp) +. (c *. akq)
    done;
    for k = 0 to n - 1 do
      let apk = ad.((p * n) + k) and aqk = ad.((q * n) + k) in
      ad.((p * n) + k) <- (c *. apk) -. (s *. aqk);
      ad.((q * n) + k) <- (s *. apk) +. (c *. aqk)
    done;
    for k = 0 to n - 1 do
      let vkp = vd.((k * n) + p) and vkq = vd.((k * n) + q) in
      vd.((k * n) + p) <- (c *. vkp) -. (s *. vkq);
      vd.((k * n) + q) <- (s *. vkp) +. (c *. vkq)
    done
  end

(* --- parallel rotation sweeps -------------------------------------- *)

(* Round-robin tournament schedule: [n] slots (padded to even) play
   [m - 1] rounds of [m / 2] simultaneous pairings; over a full sweep
   every unordered pair meets exactly once, so this is a cyclic Jacobi
   ordering — just one whose rounds are mutually disjoint. *)
let tournament_rounds n =
  let m = if n mod 2 = 0 then n else n + 1 in
  Array.init (m - 1) (fun r ->
      let pos = Array.make m 0 in
      for i = 1 to m - 1 do
        pos.(i) <- ((i - 1 + r) mod (m - 1)) + 1
      done;
      let pairs = ref [] in
      for i = (m / 2) - 1 downto 0 do
        let a = pos.(i) and b = pos.(m - 1 - i) in
        (* drop pairings against the padding slot *)
        if a < n && b < n then
          pairs := (Stdlib.min a b, Stdlib.max a b) :: !pairs
      done;
      Array.of_list !pairs)

(* One parallel sweep: for each tournament round, compute every
   rotation's (c, s) from the current matrix, then apply the combined
   orthogonal update J = Π rotations (disjoint pairs commute) in two
   barriered phases — columns (A·J, V·J) then rows (Jᵀ·(A·J)).  Within a
   phase each pair touches only its own two columns (resp. rows), so the
   pair loop fans out over the pool; every element is computed
   independently, making the sweep bit-identical for any domain count. *)
let parallel_sweep a v rounds =
  let n = a.Mat.rows in
  let ad = a.Mat.data and vd = v.Mat.data in
  Array.iter
    (fun pairs ->
      let npairs = Array.length pairs in
      let cs = Array.make npairs 1. and sn = Array.make npairs 0. in
      for idx = 0 to npairs - 1 do
        let p, q = pairs.(idx) in
        let apq = ad.((p * n) + q) in
        if apq <> 0. then begin
          let app = ad.((p * n) + p) and aqq = ad.((q * n) + q) in
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (abs_float theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          cs.(idx) <- c;
          sn.(idx) <- t *. c
        end
      done;
      let grain = Stdlib.max 1 ((npairs + 15) / 16) in
      (* phase 1: columns p, q of A and V — disjoint across pairs *)
      Parallel.Pool.run ~grain npairs (fun lo hi ->
          for idx = lo to hi - 1 do
            let p, q = pairs.(idx) in
            let c = cs.(idx) and s = sn.(idx) in
            if s <> 0. then
              for k = 0 to n - 1 do
                let akp = ad.((k * n) + p) and akq = ad.((k * n) + q) in
                ad.((k * n) + p) <- (c *. akp) -. (s *. akq);
                ad.((k * n) + q) <- (s *. akp) +. (c *. akq);
                let vkp = vd.((k * n) + p) and vkq = vd.((k * n) + q) in
                vd.((k * n) + p) <- (c *. vkp) -. (s *. vkq);
                vd.((k * n) + q) <- (s *. vkp) +. (c *. vkq)
              done
          done);
      (* phase 2: rows p, q of A — disjoint across pairs *)
      Parallel.Pool.run ~grain npairs (fun lo hi ->
          for idx = lo to hi - 1 do
            let p, q = pairs.(idx) in
            let c = cs.(idx) and s = sn.(idx) in
            if s <> 0. then
              for k = 0 to n - 1 do
                let apk = ad.((p * n) + k) and aqk = ad.((q * n) + k) in
                ad.((p * n) + k) <- (c *. apk) -. (s *. aqk);
                ad.((q * n) + k) <- (s *. apk) +. (c *. aqk)
              done
          done))
    rounds

(* Whether a sweep uses the serial cyclic ordering or the parallel
   tournament schedule is decided by Parallel.Autotune on the work of
   one tournament round (n² rotated elements, two pool dispatches per
   round).  The static default keeps the historical n >= 192 cutoff,
   so the small matrices the test-suite and the solvers spin through
   keep their rotation order — and their results — bit-for-bit
   stable. *)
let jacobi ?(tol = 1e-12) ?(max_sweeps = 100) ?parallel m =
  if not (Mat.is_square m) then invalid_arg "Eigen.jacobi: matrix not square";
  let n = m.Mat.rows in
  let parallel =
    match parallel with
    | Some b -> b
    | None ->
        Parallel.Autotune.decide ~dispatches:2 Parallel.Autotune.Jacobi
          ~work:(n * n)
  in
  let a = Mat.copy m in
  let v = Mat.eye n in
  let scale = Stdlib.max 1. (Mat.frobenius_norm m) in
  let rounds = if parallel && n > 1 then tournament_rounds n else [||] in
  let sweeps = ref 0 in
  while off_diag_norm a > tol *. scale && !sweeps < max_sweeps do
    incr sweeps;
    if parallel && n > 1 then parallel_sweep a v rounds
    else
      for p = 0 to n - 2 do
        for q = p + 1 to n - 1 do
          rotate a v p q
        done
      done
  done;
  Telemetry.Counter.incr c_jacobi;
  Telemetry.Counter.add c_sweeps !sweeps;
  if off_diag_norm a > tol *. scale *. 1e3 then
    failwith "Eigen.jacobi: did not converge";
  (* sort eigenpairs ascending *)
  let order = Array.init n (fun i -> i) in
  let diag = Mat.get_diag a in
  Array.sort (fun i j -> compare diag.(i) diag.(j)) order;
  let values = Array.map (fun i -> diag.(i)) order in
  let vectors = Mat.of_cols (Array.map (fun i -> Mat.col v i) order) in
  { values; vectors }

let power_iteration ?(tol = 1e-10) ?(max_iter = 10_000) a v0 =
  if not (Mat.is_square a) then
    invalid_arg "Eigen.power_iteration: matrix not square";
  let norm = Vec.norm2 v0 in
  if norm = 0. then failwith "Eigen.power_iteration: zero start vector";
  let v = ref (Vec.scale (1. /. norm) v0) in
  let lambda = ref 0. in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let w = Mat.mv a !v in
    let next_lambda = Vec.dot !v w in
    let wn = Vec.norm2 w in
    if wn = 0. then begin
      (* v is in the kernel: eigenvalue 0 *)
      lambda := 0.;
      converged := true
    end
    else begin
      let next_v = Vec.scale (1. /. wn) w in
      if abs_float (next_lambda -. !lambda) <= tol *. (abs_float next_lambda +. 1.)
      then converged := true;
      lambda := next_lambda;
      v := next_v
    end
  done;
  if not !converged then failwith "Eigen.power_iteration: did not converge";
  (!lambda, !v)

let eigenvalues m = (jacobi m).values

let spectral_radius_bound a =
  let n = a.Mat.rows in
  let best = ref 0. in
  for i = 0 to n - 1 do
    let acc = ref 0. in
    for j = 0 to a.Mat.cols - 1 do
      acc := !acc +. abs_float a.Mat.data.((i * a.Mat.cols) + j)
    done;
    if !acc > !best then best := !acc
  done;
  !best

let is_positive_semidefinite ?(tol = 1e-8) m =
  let { values; _ } = jacobi m in
  Array.for_all (fun l -> l >= -.tol) values
