(* Transport-level bookkeeping for the framed socket front-end
   (lib/net).  One record lives inside each Engine so the network layer
   and the engine expose a single unified metrics snapshot; lib/net
   increments these through the helpers below.  Plain mutable fields —
   the serving loop is single-threaded — mirrored into the process
   telemetry registry when it is enabled. *)

type t = {
  mutable conns_opened : int;
  mutable conns_closed : int;
  mutable frames_ok : int;
  mutable frames_rejected : int;
  mutable client_gone : int;
  mutable io_deadline_expired : int;
  mutable overflow_shed : int;
  mutable drained : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let create () =
  { conns_opened = 0;
    conns_closed = 0;
    frames_ok = 0;
    frames_rejected = 0;
    client_gone = 0;
    io_deadline_expired = 0;
    overflow_shed = 0;
    drained = 0;
    bytes_in = 0;
    bytes_out = 0 }

let c_conns = Telemetry.Counter.make "serve.transport.conns"
let c_frames_ok = Telemetry.Counter.make "serve.transport.frames_ok"
let c_rejected = Telemetry.Counter.make "serve.transport.frames_rejected"
let c_client_gone = Telemetry.Counter.make "serve.transport.client_gone"
let c_io_deadline = Telemetry.Counter.make "serve.transport.io_deadline_expired"
let c_overflow = Telemetry.Counter.make "serve.transport.overflow_shed"

let conn_opened t =
  t.conns_opened <- t.conns_opened + 1;
  Telemetry.Counter.incr c_conns

let conn_closed t = t.conns_closed <- t.conns_closed + 1

let frame_ok t =
  t.frames_ok <- t.frames_ok + 1;
  Telemetry.Counter.incr c_frames_ok

let frame_rejected t =
  t.frames_rejected <- t.frames_rejected + 1;
  Telemetry.Counter.incr c_rejected

let client_gone t ~conn ~undelivered =
  t.client_gone <- t.client_gone + 1;
  Telemetry.Counter.incr c_client_gone;
  Obs.Event.emit ~severity:Obs.Event.Warning "serve.transport.client_gone"
    [ ("conn", Obs.Event.Int conn);
      ("undelivered_bytes", Obs.Event.Int undelivered) ]

let io_deadline_expired t =
  t.io_deadline_expired <- t.io_deadline_expired + 1;
  Telemetry.Counter.incr c_io_deadline

let overflow_shed t =
  t.overflow_shed <- t.overflow_shed + 1;
  Telemetry.Counter.incr c_overflow

let drained t = t.drained <- t.drained + 1
let bytes_in t n = t.bytes_in <- t.bytes_in + n
let bytes_out t n = t.bytes_out <- t.bytes_out + n

let metrics t =
  let open Obs.Expo in
  let c name help value =
    Counter { name; help; value = float_of_int value }
  in
  [
    c "serve.transport.conns_opened" "connections accepted" t.conns_opened;
    c "serve.transport.conns_closed" "connections closed" t.conns_closed;
    c "serve.transport.frames_ok" "well-formed frames answered" t.frames_ok;
    c "serve.transport.frames_rejected"
      "frames rejected with a typed protocol error" t.frames_rejected;
    c "serve.transport.client_gone"
      "peers that vanished mid-exchange (EPIPE/ECONNRESET/disconnect)"
      t.client_gone;
    c "serve.transport.io_deadline_expired"
      "reads or writes that outlived the per-frame I/O deadline"
      t.io_deadline_expired;
    c "serve.transport.overflow_shed"
      "frames shed because the connection's output buffer was full"
      t.overflow_shed;
    c "serve.transport.drained" "graceful drains completed" t.drained;
    c "serve.transport.bytes_in" "payload bytes received" t.bytes_in;
    c "serve.transport.bytes_out" "frame bytes queued for send" t.bytes_out;
  ]
