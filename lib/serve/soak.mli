(** Deterministic chaos soak harness.

    Generates a seeded multi-thousand-request trace — clean queries,
    Sherman–Morrison relabels (a slice with NaN labels), and faulted
    queries drawing from the {!Robust.Fault} menu (latency stalls, CG
    starvation caps, NaN weight poison, label flips) — with exponential
    arrival gaps punctuated by near-simultaneous bursts that overflow
    the admission queue.  Replays it through an {!Engine} on a virtual
    clock and checks the serving invariants:

    - zero dropped requests (exactly one response per request);
    - every [Served] response carries a {e healthy} certificate; every
      other response is explicitly [Degraded] or [Shed];
    - the queue backlog never exceeds its capacity (saturation sheds);
    - at least one request is actually served;
    - optionally ([verify_replay]), a second run of the same seed
      produces bit-identical per-request outcomes (digest equality) —
      and, when journaling is on, a bit-identical span journal;
    - the observability pipeline reconciles exactly with the engine's
      books: the SLO tracker saw every response and agrees with the
      served count, and the journal's aggregate reproduces the status
      counts and latency percentiles while passing schema validation.

    Violations are returned as strings, not exceptions — the harness
    always completes and reports. *)

type config = {
  requests : int;
  seed : int;
  n_vertices : int;
  n_labeled : int;
  queue_capacity : int;
  deadline_ms : float;
  mean_gap_ms : float;      (** mean exponential inter-arrival gap *)
  burst_every : int;        (** a burst starts every this many requests *)
  burst_size : int;         (** near-simultaneous arrivals per burst *)
  fault_rate : float;       (** fraction of queries carrying faults *)
  relabel_rate : float;     (** fraction of requests that are relabels *)
  verify_replay : bool;     (** run twice, require digest equality *)
  journal : bool;           (** record a per-request span journal *)
}

val default : config
(** 5000 requests, seed 42, an 80-vertex two-cluster sparse problem,
    capacity 16, 25 ms budgets, 18% fault rate. *)

type summary = {
  requests : int;
  responses : int;
  dropped : int;
  served : int;
  degraded : int;
  shed : int;
  deadline_expired : int;
  solver_aborts : int;
  retried : int;
  relabels : int;
  breaker_trips : int;
  breaker_transitions : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  max_backlog : int;
  p50_ms : float;  (** virtual-clock latency percentiles *)
  p99_ms : float;
  max_ms : float;
  slo : Obs.Slo.snapshot;  (** the engine's SLO tracker at end of run *)
  journal_lines : int;     (** 0 when journaling is off *)
  journal_digest : int64;  (** 0L when journaling is off *)
  digest : int64;  (** order-sensitive hash of every per-request outcome *)
  replay_verified : bool;
      (** response digest AND (when journaling) journal digest matched *)
  wall_ms : float;  (** real time the replay took *)
  violations : string list;  (** empty iff all invariants hold *)
}

val problem :
  seed:int -> n_vertices:int -> n_labeled:int -> Gssl.Problem.t
(** The synthetic two-cluster sparse problem the soak serves (exposed
    for tests).  Raises [Invalid_argument] on degenerate sizes. *)

val gen_trace : config -> Gssl.Problem.t -> Engine.request list
val digest_of : Engine.response list -> int64

val engine_config : config -> Engine.config
(** The engine configuration a soak run uses — exposed so dashboards
    ([repro top]) can drive the same engine incrementally. *)

val run : config -> summary

val run_full : config -> summary * Engine.t
(** Like {!run} but also returns the first run's engine, whose journal,
    SLO tracker, and metrics snapshot are still live. *)

val ok : summary -> bool
(** No violations and nothing dropped. *)

val describe : summary -> string
