(** The serving layer's notion of time.

    Two implementations behind one interface:
    - [Monotonic] reads the real clock.  [advance] {e busy-waits} (a
      stalled worker is busy, not asleep) and [jump] is a no-op (real
      time flows on its own).  This is what a live [gssl serve] session
      uses.
    - [Virtual] is a number.  [advance] and [jump] are arithmetic, so a
      whole multi-thousand-request trace replays in microseconds and —
      crucially — {e deterministically}: the same seed produces the same
      queue waits, the same deadline expiries, the same per-request
      outcomes.  This is what the chaos soak harness uses.

    Everything in [Serve] (deadlines, backoff, breaker cooldowns, queue
    simulation) tells time exclusively through this module, which is
    what makes the soak's determinism guarantee possible at all. *)

type t

val monotonic : unit -> t
val virtual_ : ?start_ms:float -> unit -> t
(** A virtual clock starting at [start_ms] (default 0). *)

val is_virtual : t -> bool
val now_ms : t -> float

val advance : t -> float -> unit
(** Spend [ms] milliseconds: arithmetic on a virtual clock, a busy-wait
    ({!Robust.Fault.busy_wait_ms}) on the monotonic one.  Negative or
    zero durations are no-ops. *)

val jump : t -> float -> unit
(** [jump t target_ms] moves a virtual clock forward to [target_ms]
    (never backward); no-op on the monotonic clock.  Used by the trace
    replayer to fast-forward idle gaps between arrivals. *)
