(** Transport-level counters for the framed socket front-end.

    One record lives inside each {!Engine} (see {!Engine.transport});
    the network layer ([lib/net]) increments it as connections open,
    frames parse or fail, peers vanish, and I/O deadlines expire, so
    {!Engine.metrics} exposes solver and transport health on one
    surface.  Counting, never raising: every hostile-client failure
    mode lands here as a number, and the helpers also mirror into the
    process telemetry registry when it is enabled. *)

type t = {
  mutable conns_opened : int;
  mutable conns_closed : int;
  mutable frames_ok : int;      (** well-formed frames answered *)
  mutable frames_rejected : int;
      (** frames answered with a typed protocol error *)
  mutable client_gone : int;
      (** peers that vanished mid-exchange (EPIPE/ECONNRESET/disconnect
          with undelivered output) *)
  mutable io_deadline_expired : int;
      (** reads or writes that outlived the per-frame I/O deadline *)
  mutable overflow_shed : int;
      (** frames shed because the connection output buffer was full *)
  mutable drained : int;  (** graceful drains completed *)
  mutable bytes_in : int;
  mutable bytes_out : int;
}

val create : unit -> t

val conn_opened : t -> unit
val conn_closed : t -> unit
val frame_ok : t -> unit
val frame_rejected : t -> unit

val client_gone : t -> conn:int -> undelivered:int -> unit
(** Also emits a [serve.transport.client_gone] warning event. *)

val io_deadline_expired : t -> unit
val overflow_shed : t -> unit
val drained : t -> unit
val bytes_in : t -> int -> unit
val bytes_out : t -> int -> unit

val metrics : t -> Obs.Expo.metric list
(** [serve.transport.*] counters; appended to {!Engine.metrics}. *)
