module Rng = Prng.Rng
module Wg = Graph.Weighted_graph
module Fault = Robust.Fault
module Problem = Gssl.Problem

type config = {
  requests : int;
  seed : int;
  n_vertices : int;
  n_labeled : int;
  queue_capacity : int;
  deadline_ms : float;
  mean_gap_ms : float;
  burst_every : int;
  burst_size : int;
  fault_rate : float;
  relabel_rate : float;
  verify_replay : bool;
  journal : bool;
}

let default =
  { requests = 5000;
    seed = 42;
    n_vertices = 80;
    n_labeled = 20;
    queue_capacity = 16;
    deadline_ms = 25.;
    mean_gap_ms = 4.;
    burst_every = 97;
    burst_size = 24;
    fault_rate = 0.18;
    relabel_rate = 0.04;
    verify_replay = false;
    journal = false }

type summary = {
  requests : int;
  responses : int;
  dropped : int;
  served : int;
  degraded : int;
  shed : int;
  deadline_expired : int;
  solver_aborts : int;
  retried : int;
  relabels : int;
  breaker_trips : int;
  breaker_transitions : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  max_backlog : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  slo : Obs.Slo.snapshot;
  journal_lines : int;
  journal_digest : int64;
  digest : int64;
  replay_verified : bool;
  wall_ms : float;
  violations : string list;
}

(* Two weakly-coupled clusters as a sparse CSR graph: vertex v belongs
   to cluster [v mod 2]; each cluster is a jittered ring plus random
   chords, and a few weak bridges connect the clusters so every vertex
   is anchored.  Labels (the first [n_labeled] vertices, which alternate
   clusters) are the cluster ids — the canonical two-class transductive
   setup the paper's Section II studies. *)
let problem ~seed ~n_vertices ~n_labeled =
  if n_vertices < 8 then invalid_arg "Soak.problem: n_vertices must be >= 8";
  if n_labeled < 2 || n_labeled > n_vertices / 2 then
    invalid_arg "Soak.problem: n_labeled out of range";
  let rng = Rng.create ((seed * 1_000_003) + 7) in
  let coo = Sparse.Coo.create n_vertices n_vertices in
  let add i j w =
    if i <> j then begin
      Sparse.Coo.add coo i j w;
      Sparse.Coo.add coo j i w
    end
  in
  let member c p = (2 * p) + c in
  let cluster_size c = (n_vertices - c + 1) / 2 in
  for c = 0 to 1 do
    let s = cluster_size c in
    for p = 0 to s - 1 do
      (* ring backbone *)
      add (member c p) (member c ((p + 1) mod s)) (1. +. Rng.uniform rng 0. 0.2)
    done;
    (* random chords for conductance *)
    for _ = 1 to s / 2 do
      let p = Rng.int rng s and q = Rng.int rng s in
      if p <> q then add (member c p) (member c q) (0.4 +. Rng.uniform rng 0. 0.2)
    done
  done;
  (* weak inter-cluster bridges *)
  for _ = 1 to 3 do
    let p = Rng.int rng (cluster_size 0) and q = Rng.int rng (cluster_size 1) in
    add (member 0 p) (member 1 q) 0.05
  done;
  let graph = Wg.of_sparse_unchecked (Sparse.Csr.of_coo coo) in
  let labels = Array.init n_labeled (fun v -> float_of_int (v mod 2)) in
  Problem.make ~graph ~labels

(* Deterministic request trace: exponential arrival gaps with periodic
   near-simultaneous bursts (to saturate the queue), a seeded mix of
   clean queries, faulted queries and relabels.  Relabels never exhaust
   the unlabeled pool, and a slice of them carry NaN labels to exercise
   the rejection path. *)
let gen_trace (cfg : config) prob =
  let rng = Rng.create ((cfg.seed * 7919) + 17) in
  let n = Problem.n_labeled prob in
  let m = Problem.n_unlabeled prob in
  let pool = Array.init m (fun i -> n + i) in
  Rng.shuffle_inplace rng pool;
  let max_relabels = Stdlib.max 0 (m - 8) in
  let next_relabel = ref 0 in
  let arrival = ref 0. in
  List.init cfg.requests (fun id ->
      let in_burst =
        cfg.burst_every > 0 && id >= cfg.burst_every
        && id mod cfg.burst_every < cfg.burst_size
      in
      let gap =
        if in_burst then 0.02
        else -.cfg.mean_gap_ms *. log (1. -. Rng.float rng)
      in
      arrival := !arrival +. gap;
      let kind, faults =
        let u = Rng.float rng in
        if u < cfg.relabel_rate && !next_relabel < max_relabels then begin
          let vertex = pool.(!next_relabel) in
          incr next_relabel;
          let label =
            if Rng.float rng < 0.15 then Float.nan
            else float_of_int (vertex mod 2)
          in
          (Engine.Relabel { vertex; label }, [])
        end
        else if u < cfg.relabel_rate +. cfg.fault_rate then
          let faults =
            match Rng.int rng 5 with
            | 0 -> [ Fault.Latency_stall { ms = Rng.uniform rng 5. 40. } ]
            | 1 -> [ Fault.Cg_cap { max_iter = 2 } ]
            | 2 -> [ Fault.Nan_poison_weight { count = 3 } ]
            | 3 -> [ Fault.Label_flip { count = 3 } ]
            | _ ->
                [ Fault.Latency_stall { ms = Rng.uniform rng 5. 20. };
                  Fault.Cg_cap { max_iter = 3 } ]
          in
          (Engine.Query, faults)
        else (Engine.Query, [])
      in
      { Engine.id; arrival_ms = !arrival; kind; faults })

let digest_of responses =
  List.fold_left
    (fun h (r : Engine.response) ->
      let h = Cache.mix h (Int64.of_int r.Engine.id) in
      let h =
        Cache.mix h
          (Int64.of_int
             (match r.Engine.status with
             | Engine.Served -> 1
             | Engine.Degraded _ -> 2
             | Engine.Shed _ -> 3))
      in
      let h = Cache.mix h (Int64.of_int r.Engine.attempts) in
      let h = Cache.mix h (Int64.bits_of_float r.Engine.latency_ms) in
      Array.fold_left
        (fun h (v, x) ->
          Cache.mix (Cache.mix h (Int64.of_int v)) (Int64.bits_of_float x))
        h r.Engine.predictions)
    0x5eedL responses

let engine_config (cfg : config) =
  { Engine.default_config with
    Engine.queue_capacity = cfg.queue_capacity;
    deadline_ms = cfg.deadline_ms;
    seed = cfg.seed }

let check_invariants (cfg : config) (responses : Engine.response list)
    (st : Engine.stats) =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let n_resp = List.length responses in
  if n_resp <> cfg.requests then
    note "dropped responses: %d of %d requests answered" n_resp cfg.requests;
  List.iter
    (fun (r : Engine.response) ->
      match r.Engine.status with
      | Engine.Served -> begin
          match r.Engine.certificate with
          | Some c when Obs.Health.healthy c -> ()
          | Some _ -> note "request %d served with an unhealthy certificate" r.Engine.id
          | None -> note "request %d served without a certificate" r.Engine.id
        end
      | Engine.Degraded _ | Engine.Shed _ -> ())
    responses;
  if st.Engine.max_backlog > cfg.queue_capacity then
    note "queue grew to %d beyond capacity %d" st.Engine.max_backlog
      cfg.queue_capacity;
  if st.Engine.served = 0 then note "no request was served at all";
  List.rev !violations

(* The observability pipeline must agree with the engine's own books —
   exactly, not approximately: the SLO tracker saw every response and
   counted full-fidelity answers as quality-good, and the journal's
   running aggregate (same histogram implementation) reproduces the
   engine's status counts and latency percentiles bit-for-bit. *)
let check_observability (engine : Engine.t) (responses : Engine.response list)
    (st : Engine.stats) =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let slo = Engine.slo_snapshot engine in
  let n_resp = List.length responses in
  if slo.Obs.Slo.total <> n_resp then
    note "slo tracker observed %d responses, engine answered %d"
      slo.Obs.Slo.total n_resp;
  if slo.Obs.Slo.quality_good <> st.Engine.served then
    note "slo quality_good %d does not reconcile with served %d"
      slo.Obs.Slo.quality_good st.Engine.served;
  (match Engine.journal engine with
  | None -> ()
  | Some j ->
      let agg = Obs.Journal.aggregate j in
      if Obs.Journal.length j <> n_resp then
        note "journal has %d lines for %d responses" (Obs.Journal.length j)
          n_resp;
      if agg.Obs.Journal.served <> st.Engine.served
         || agg.Obs.Journal.degraded <> st.Engine.degraded
         || agg.Obs.Journal.shed <> st.Engine.shed
      then
        note
          "journal aggregate %d/%d/%d does not reconcile with stats %d/%d/%d"
          agg.Obs.Journal.served agg.Obs.Journal.degraded agg.Obs.Journal.shed
          st.Engine.served st.Engine.degraded st.Engine.shed;
      let hist = Engine.latency_histogram engine in
      if agg.Obs.Journal.latency_p50 <> Obs.Histogram.p50 hist then
        note "journal p50 %g != engine p50 %g" agg.Obs.Journal.latency_p50
          (Obs.Histogram.p50 hist);
      if agg.Obs.Journal.latency_p99 <> Obs.Histogram.p99 hist then
        note "journal p99 %g != engine p99 %g" agg.Obs.Journal.latency_p99
          (Obs.Histogram.p99 hist);
      (match Obs.Journal.validate_text (Obs.Journal.to_text j) with
      | Ok n when n = n_resp -> ()
      | Ok n -> note "journal schema validated %d of %d lines" n n_resp
      | Error msg -> note "journal schema violation: %s" msg));
  List.rev !violations

let run_full (cfg : config) =
  let wall0 = Unix.gettimeofday () in
  let prob = problem ~seed:cfg.seed ~n_vertices:cfg.n_vertices
      ~n_labeled:cfg.n_labeled in
  let trace = gen_trace cfg prob in
  let run_once () =
    let clock = Clock.virtual_ () in
    let journal = if cfg.journal then Some (Obs.Journal.create ()) else None in
    let engine = Engine.create ~clock ?journal (engine_config cfg) prob in
    let responses = Engine.run_trace engine trace in
    (engine, responses)
  in
  let engine, responses = run_once () in
  let digest = digest_of responses in
  let journal_digest =
    match Engine.journal engine with
    | Some j -> Obs.Journal.digest j
    | None -> 0L
  in
  let replay_verified, journal_replay_verified =
    if cfg.verify_replay then begin
      let engine2, again = run_once () in
      let jd2 =
        match Engine.journal engine2 with
        | Some j -> Obs.Journal.digest j
        | None -> 0L
      in
      (Int64.equal (digest_of again) digest, Int64.equal jd2 journal_digest)
    end
    else (true, true)
  in
  let st = Engine.stats engine in
  let violations =
    check_invariants cfg responses st
    @ check_observability engine responses st
    @ (if replay_verified then []
       else [ "replay diverged: same seed produced a different digest" ])
    @ (if journal_replay_verified then []
       else [ "journal replay diverged: same seed journaled differently" ])
  in
  let hist = Engine.latency_histogram engine in
  let served, degraded, shed =
    List.fold_left
      (fun (s, d, x) (r : Engine.response) ->
        match r.Engine.status with
        | Engine.Served -> (s + 1, d, x)
        | Engine.Degraded _ -> (s, d + 1, x)
        | Engine.Shed _ -> (s, d, x + 1))
      (0, 0, 0) responses
  in
  let summary =
    { requests = cfg.requests;
      responses = List.length responses;
      dropped = cfg.requests - List.length responses;
      served;
      degraded;
      shed;
      deadline_expired = st.Engine.deadline_expired;
      solver_aborts = st.Engine.solver_aborts;
      retried = st.Engine.retried;
      relabels = st.Engine.relabels;
      breaker_trips = st.Engine.breaker_trips;
      breaker_transitions = st.Engine.breaker_transitions;
      cache_hits = st.Engine.cache_hits;
      cache_misses = st.Engine.cache_misses;
      cache_evictions = st.Engine.cache_evictions;
      max_backlog = st.Engine.max_backlog;
      p50_ms = Obs.Histogram.p50 hist;
      p99_ms = Obs.Histogram.p99 hist;
      max_ms = Obs.Histogram.max_value hist;
      slo = Engine.slo_snapshot engine;
      journal_lines =
        (match Engine.journal engine with
        | Some j -> Obs.Journal.length j
        | None -> 0);
      journal_digest;
      digest;
      replay_verified = replay_verified && journal_replay_verified;
      wall_ms = (Unix.gettimeofday () -. wall0) *. 1e3;
      violations }
  in
  (summary, engine)

let run cfg = fst (run_full cfg)

let describe (s : summary) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string b (str ^ "\n")) fmt in
  line "soak: %d requests, %d responses (%d dropped)" s.requests s.responses
    s.dropped;
  line "  served %d | degraded %d | shed %d" s.served s.degraded s.shed;
  line "  deadline expired %d | cg aborts %d | retried %d | relabels %d"
    s.deadline_expired s.solver_aborts s.retried s.relabels;
  line "  breaker trips %d (transitions %d) | cache hits/misses/evictions %d/%d/%d | max backlog %d"
    s.breaker_trips s.breaker_transitions s.cache_hits s.cache_misses
    s.cache_evictions s.max_backlog;
  line "  latency (virtual) p50 %.3f ms | p99 %.3f ms | max %.3f ms" s.p50_ms
    s.p99_ms s.max_ms;
  line
    "  slo: latency %.1f%% compliant (burn %.2f, budget %.0f%%) | quality %.1f%% (burn %.2f, budget %.0f%%)"
    (100. *. s.slo.Obs.Slo.latency_compliance)
    s.slo.Obs.Slo.latency_burn
    (100. *. s.slo.Obs.Slo.latency_budget)
    (100. *. s.slo.Obs.Slo.quality_compliance)
    s.slo.Obs.Slo.quality_burn
    (100. *. s.slo.Obs.Slo.quality_budget);
  if s.journal_lines > 0 then
    line "  journal: %d lines, digest %Lx" s.journal_lines s.journal_digest;
  line "  digest %Lx | replay %s | wall %.1f ms" s.digest
    (if s.replay_verified then "verified" else "DIVERGED")
    s.wall_ms;
  (match s.violations with
  | [] -> line "  invariants: all hold"
  | vs ->
      line "  INVARIANT VIOLATIONS:";
      List.iter (fun v -> line "    - %s" v) vs);
  Buffer.contents b

let ok (s : summary) = s.violations = [] && s.dropped = 0
