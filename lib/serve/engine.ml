module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Wg = Graph.Weighted_graph
module Check = Robust.Check
module Fault = Robust.Fault
module Problem = Gssl.Problem
module Resilient = Gssl.Resilient
module Incremental = Gssl.Incremental
module Trace_ctx = Obs.Trace_ctx

type costs = {
  solve_ms : float;
  cache_ms : float;
  relabel_ms : float;
  poll_ms : float;
}

type config = {
  queue_capacity : int;
  deadline_ms : float;
  retry : Retry.policy;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  cache_capacity : int;
  costs : costs;
  seed : int;
  slo : Obs.Slo.config;
}

let default_config =
  { queue_capacity = 16;
    deadline_ms = 25.;
    retry = Retry.default;
    breaker_failures = 3;
    breaker_cooldown_ms = 40.;
    cache_capacity = 8;
    costs = { solve_ms = 2.0; cache_ms = 0.5; relabel_ms = 1.0; poll_ms = 0.2 };
    seed = 1;
    slo = Obs.Slo.default }

type kind = Query | Relabel of { vertex : int; label : float }

type request = {
  id : int;
  arrival_ms : float;
  kind : kind;
  faults : Fault.t list;
}

type status = Served | Degraded of string | Shed of string

let status_name = function
  | Served -> "served"
  | Degraded _ -> "degraded"
  | Shed _ -> "shed"

type response = {
  id : int;
  trace_id : int64;
  status : status;
  predictions : (int * float) array;
  certificate : Obs.Health.t option;
  diagnostics : Check.diagnostic list;
  queue_ms : float;
  latency_ms : float;
  rung_ms : (string * float) list;
  attempts : int;
  cache_hit : bool;
}

type stats = {
  served : int;
  degraded : int;
  shed : int;
  deadline_expired : int;
  solver_aborts : int;
  retried : int;
  relabels : int;
  max_backlog : int;
  breaker_trips : int;
  breaker_transitions : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

type internal_stats = {
  mutable s_served : int;
  mutable s_degraded : int;
  mutable s_shed : int;
  mutable s_deadline_expired : int;
  mutable s_solver_aborts : int;
  mutable s_retried : int;
  mutable s_relabels : int;
  mutable s_max_backlog : int;
}

type t = {
  config : config;
  clock : Clock.t;
  problem : Problem.t;
  cache : Incremental.t Cache.t;
  base_key : Cache.key;
  breaker : Breaker.t;
  rng : Prng.Rng.t;
  latency : Obs.Histogram.t;
  queue_wait : Obs.Histogram.t;
  slo : Obs.Slo.t;
  journal : Obs.Journal.t option;
  st : internal_stats;
  transport : Transport.t;
  mutable worker_free_ms : float;
  mutable pending_finish : float list;
}

let c_requests = Telemetry.Counter.make "serve.requests"
let c_served = Telemetry.Counter.make "serve.served"
let c_degraded = Telemetry.Counter.make "serve.degraded"
let c_shed = Telemetry.Counter.make "serve.shed"
let c_deadline = Telemetry.Counter.make "serve.deadline_expired"

let create ?(clock = Clock.monotonic ()) ?journal config problem =
  if config.queue_capacity < 1 then
    invalid_arg "Engine.create: queue_capacity must be >= 1";
  if config.deadline_ms <= 0. then
    invalid_arg "Engine.create: deadline_ms must be positive";
  let cache = Cache.create ~capacity:config.cache_capacity () in
  let base_key = Cache.key problem.Problem.graph in
  (* Warm the factorization cache: the server's whole point is paying the
     O(m^3) inverse once.  An unanchorable graph simply leaves the cache
     cold — queries then take the resilient full-solve path. *)
  (try Cache.put cache base_key (Incremental.create problem)
   with Gssl.Hard.Unanchored_unlabeled _ -> ());
  { config;
    clock;
    problem;
    cache;
    base_key;
    breaker =
      Breaker.create ~failure_threshold:config.breaker_failures
        ~cooldown_ms:config.breaker_cooldown_ms clock;
    rng = Prng.Rng.create config.seed;
    latency = Obs.Histogram.create ();
    queue_wait = Obs.Histogram.create ();
    slo = Obs.Slo.create ~config:config.slo ();
    journal;
    st =
      { s_served = 0; s_degraded = 0; s_shed = 0; s_deadline_expired = 0;
        s_solver_aborts = 0; s_retried = 0; s_relabels = 0; s_max_backlog = 0 };
    transport = Transport.create ();
    worker_free_ms = Clock.now_ms clock;
    pending_finish = [] }

let stats t =
  { served = t.st.s_served;
    degraded = t.st.s_degraded;
    shed = t.st.s_shed;
    deadline_expired = t.st.s_deadline_expired;
    solver_aborts = t.st.s_solver_aborts;
    retried = t.st.s_retried;
    relabels = t.st.s_relabels;
    max_backlog = t.st.s_max_backlog;
    breaker_trips = Breaker.trips t.breaker;
    breaker_transitions = Breaker.transitions t.breaker;
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    cache_evictions = Cache.evictions t.cache }

let latency_histogram t = t.latency
let queue_histogram t = t.queue_wait
let problem t = t.problem
let breaker t = t.breaker
let journal t = t.journal
let clock t = t.clock
let config t = t.config
let transport t = t.transport
let slo_snapshot t = Obs.Slo.snapshot t.slo

(* Per-request trace context: the id is derived from (engine seed,
   request id) so a replay regenerates identical ids, and timestamps
   come from the engine clock so a virtual-clock run journals
   bit-identically.  The root "request" span is closed by [finish]. *)
let make_ctx t (req : request) =
  let ctx =
    Trace_ctx.create
      ~now:(fun () -> Clock.now_ms t.clock)
      ~trace_id:(Trace_ctx.derive_id ~seed:t.config.seed ~request:req.id)
      ()
  in
  let kind = match req.kind with Query -> "query" | Relabel _ -> "relabel" in
  ignore
    (Trace_ctx.open_span ctx "request"
       ~fields:
         [
           ("id", Obs.Event.Int req.id);
           ("kind", Obs.Event.Str kind);
           ("faults", Obs.Event.Int (List.length req.faults));
         ]);
  ctx

(* λ→∞ labeled-mean imputation (Prop II.2): the cheapest total answer,
   used when even the cached factorization is unavailable. *)
let mean_predictions t =
  let y = t.problem.Problem.labels in
  let sum = ref 0. and count = ref 0 in
  Array.iter
    (fun v ->
      if Float.is_finite v then begin
        sum := !sum +. v;
        incr count
      end)
    y;
  let mean = if !count = 0 then 0. else !sum /. float_of_int !count in
  let n = Problem.n_labeled t.problem in
  let m = Problem.n_unlabeled t.problem in
  Array.init m (fun i -> (n + i, mean))

(* The current hard system of a cached incremental state, reassembled
   from the graph for certification: A[p][q] = d(v_p) − w(v_p,v_p) on the
   diagonal, −w(v_p,v_q) off it, over the still-unlabeled vertices;
   b[p] = Σ w(v_p, l)·y_l over known labels.  O(m²) — the price of an
   honestly recomputed residual on the cache-hit path. *)
let certify_incremental inc =
  let rem = Incremental.remaining inc in
  let m = Array.length rem in
  if m = 0 then None
  else begin
    let g = Incremental.graph inc in
    let d = Wg.degrees g in
    let labels = Incremental.labels inc in
    let a =
      Mat.init m m (fun p q ->
          let vp = rem.(p) and vq = rem.(q) in
          if p = q then d.(vp) -. Wg.weight g vp vp else -.(Wg.weight g vp vq))
    in
    let b =
      Array.init m (fun p ->
          Array.fold_left
            (fun acc (l, y) -> acc +. (Wg.weight g rem.(p) l *. y))
            0. labels)
    in
    let x = Array.map snd (Incremental.predict inc) in
    Some
      (Obs.Health.certify ~system:"serve.incremental" ~rung:"sherman_morrison"
         ~apply:(Mat.mv a) ~b x)
  end

(* The least healthy certificate of a resilient report — the one worth
   surfacing on the response. *)
let worst_certificate (report : Resilient.report) =
  List.fold_left
    (fun acc (_, cert) ->
      match acc with
      | None -> Some cert
      | Some best ->
          let rank c =
            (if Obs.Health.healthy c then 0. else 1e18)
            +. c.Obs.Health.rel_residual
          in
          if rank cert > rank best then Some cert else Some best)
    None report.Resilient.certificates

let all_healthy (report : Resilient.report) =
  report.Resilient.certificates <> []
  && List.for_all (fun (_, c) -> Obs.Health.healthy c) report.Resilient.certificates

(* flatten per-component rung timings into one (rung, ms) list *)
let flatten_rung_ms (report : Resilient.report) =
  List.fold_left
    (fun acc (_, timings) ->
      List.fold_left
        (fun acc (name, ms) ->
          if List.mem_assoc name acc then
            List.map (fun (n, v) -> if n = name then (n, v +. ms) else (n, v)) acc
          else acc @ [ (name, ms) ])
        acc timings)
    [] report.Resilient.rung_ms

let finish t (req : request) ~ctx ~queue_ms ~cache_hit ~attempts ?certificate
    ?(diagnostics = []) ?(rung_ms = []) status predictions =
  Telemetry.Counter.incr c_requests;
  (match status with
  | Served ->
      t.st.s_served <- t.st.s_served + 1;
      Telemetry.Counter.incr c_served
  | Degraded reason ->
      t.st.s_degraded <- t.st.s_degraded + 1;
      Telemetry.Counter.incr c_degraded;
      Obs.Event.emit ~severity:Obs.Event.Warning "serve.degraded"
        [ ("id", Obs.Event.Int req.id); ("reason", Obs.Event.Str reason) ]
  | Shed reason ->
      t.st.s_shed <- t.st.s_shed + 1;
      Telemetry.Counter.incr c_shed;
      Obs.Event.emit ~severity:Obs.Event.Warning "serve.shed"
        [ ("id", Obs.Event.Int req.id); ("reason", Obs.Event.Str reason) ]);
  if attempts > 1 then t.st.s_retried <- t.st.s_retried + 1;
  let latency_ms =
    match status with
    | Shed _ -> 0.
    | _ -> Clock.now_ms t.clock -. req.arrival_ms
  in
  Obs.Histogram.add t.latency latency_ms;
  Obs.Histogram.add t.queue_wait queue_ms;
  Obs.Histogram.observe "serve.latency_ms" latency_ms;
  (* SLO: the quality objective counts full-fidelity answers only — a
     Served response with a healthy certificate.  Shed requests are
     observed too (latency 0 by convention, quality bad): hiding them
     would let load shedding launder the error budget. *)
  Obs.Slo.observe t.slo ~latency_ms
    ~good_quality:(match status with Served -> true | _ -> false);
  (* Close the request trace: disposition fields on the root span, then
     the journal line.  Closing the root also closes any span left open
     by an abandoned path, so journaled durations are always total. *)
  let reason =
    match status with Served -> None | Degraded r | Shed r -> Some r
  in
  (match Trace_ctx.spans ctx with
  | root :: _ ->
      Trace_ctx.annotate root
        ([
           ("status", Obs.Event.Str (status_name status));
           ("latency_ms", Obs.Event.Float latency_ms);
           ("queue_ms", Obs.Event.Float queue_ms);
           ("attempts", Obs.Event.Int attempts);
           ("cache_hit", Obs.Event.Bool cache_hit);
         ]
        @ match reason with
          | None -> []
          | Some r -> [ ("reason", Obs.Event.Str r) ]);
      Trace_ctx.close_span ctx root
  | [] -> ());
  (match t.journal with
  | Some j ->
      Obs.Journal.record j ~request:req.id ~status:(status_name status)
        ?reason ~latency_ms ~queue_ms ~attempts ~cache_hit ctx
  | None -> ());
  { id = req.id; trace_id = Trace_ctx.trace_id ctx; status; predictions;
    certificate; diagnostics; queue_ms; latency_ms; rung_ms; attempts;
    cache_hit }

(* Degraded answer: cached-factorization predictions when available
   (label propagation from the last known-good state), labeled-mean
   imputation otherwise.  Cheap by construction and always total. *)
let degraded_answer t (req : request) ~ctx ~queue_ms ?(diagnostics = [])
    ?(attempts = 1) reason =
  let predictions, cache_hit =
    match Cache.peek t.cache t.base_key with
    | Some inc -> (Incremental.predict inc, true)
    | None -> (mean_predictions t, false)
  in
  finish t req ~ctx ~queue_ms ~cache_hit ~attempts ~diagnostics
    (Degraded reason) predictions

let expire t (req : request) ~ctx ~queue_ms ~deadline ?(attempts = 1) () =
  t.st.s_deadline_expired <- t.st.s_deadline_expired + 1;
  Telemetry.Counter.incr c_deadline;
  Trace_ctx.event ctx "deadline.expired";
  degraded_answer t req ~ctx ~queue_ms ~attempts
    ~diagnostics:[ Deadline.diagnostic deadline ]
    "deadline expired"

(* The full resilient solve path: retry with backoff around the fallback
   chain, gated by the circuit breaker, deadline threaded into CG. *)
let full_solve t (req : request) ~ctx ~queue_ms ~deadline
    (inj : Fault.injected) =
  if not (Breaker.allow t.breaker) then begin
    Trace_ctx.event ctx "breaker.blocked";
    degraded_answer t req ~ctx ~queue_ms "circuit breaker open"
  end
  else
    Trace_ctx.with_span ctx "solve"
      ~fields:
        [
          ( "breaker",
            Obs.Event.Str (Breaker.state_name (Breaker.state t.breaker)) );
        ]
      (fun () ->
        let last_report = ref None in
        let attempt ~attempt:_ =
          Clock.advance t.clock t.config.costs.solve_ms;
          if Deadline.expired deadline then Retry.Fatal "deadline expired"
          else begin
            let should_stop =
              Deadline.should_stop ~cost_ms:t.config.costs.poll_ms deadline
            in
            let problem =
              Problem.make_unchecked ~graph:inj.Fault.graph
                ~labels:inj.Fault.labels
            in
            let report =
              Resilient.solve_hard ?cg_max_iter:inj.Fault.cg_max_iter
                ~should_stop ~observe:true problem
            in
            last_report := Some report;
            if report.Resilient.aborted then begin
              t.st.s_solver_aborts <- t.st.s_solver_aborts + 1;
              Retry.Fatal "solve aborted by deadline"
            end
            else if all_healthy report then Retry.Done report
            else Retry.Transient "unhealthy solve (failed certificate)"
          end
        in
        let out =
          Retry.run t.config.retry ~clock:t.clock ~rng:t.rng ~deadline attempt
        in
        let attempts = Stdlib.max 1 out.Retry.attempts in
        match out.Retry.result with
        | Ok report ->
            Breaker.record_success t.breaker;
            let n = Problem.n_labeled t.problem in
            let predictions =
              Array.mapi (fun i x -> (n + i, x)) report.Resilient.predictions
            in
            finish t req ~ctx ~queue_ms ~cache_hit:false ~attempts
              ?certificate:(worst_certificate report)
              ~diagnostics:report.Resilient.diagnostics
              ~rung_ms:(flatten_rung_ms report) Served predictions
        | Error reason ->
            Breaker.record_failure t.breaker;
            let diagnostics =
              match !last_report with
              | Some r -> r.Resilient.diagnostics
              | None -> []
            in
            if Deadline.expired deadline then
              expire t req ~ctx ~queue_ms ~deadline ~attempts ()
            else
              degraded_answer t req ~ctx ~queue_ms ~attempts ~diagnostics
                reason)

let process t ~ctx ~queue_ms (req : request) =
  let deadline =
    Deadline.at t.clock ~start_ms:req.arrival_ms
      ~budget_ms:t.config.deadline_ms
  in
  (* Chaos first: this request's private view of the problem, plus any
     latency stall, which burns budget before the solve even starts. *)
  let frng = Prng.Rng.substream t.rng ((2 * req.id) + 1) in
  let inj =
    Trace_ctx.with_span ctx "inject" (fun () ->
        let inj =
          Fault.inject frng
            ~n_labeled:(Problem.n_labeled t.problem)
            req.faults t.problem.Problem.graph t.problem.Problem.labels
        in
        if inj.Fault.stall_ms > 0. then
          Trace_ctx.annotate_current
            [ ("stall_ms", Obs.Event.Float inj.Fault.stall_ms) ];
        Clock.advance t.clock inj.Fault.stall_ms;
        inj)
  in
  if Deadline.expired deadline then expire t req ~ctx ~queue_ms ~deadline ()
  else
    match req.kind with
    | Relabel { vertex; label } ->
        if not (Float.is_finite label) then
          degraded_answer t req ~ctx ~queue_ms
            ~diagnostics:[ Check.Non_finite_label { index = vertex } ]
            "non-finite relabel rejected"
        else
          Trace_ctx.with_span ctx "relabel"
            ~fields:[ ("vertex", Obs.Event.Int vertex) ]
            (fun () ->
              match Cache.find t.cache t.base_key with
              | None ->
                  degraded_answer t req ~ctx ~queue_ms
                    "no cached factorization"
              | Some inc -> begin
                  match Incremental.reveal inc ~vertex ~label with
                  | () ->
                      Clock.advance t.clock t.config.costs.relabel_ms;
                      t.st.s_relabels <- t.st.s_relabels + 1;
                      let predictions = Incremental.predict inc in
                      let certificate = certify_incremental inc in
                      let healthy =
                        match certificate with
                        | Some c -> Obs.Health.healthy c
                        | None -> true (* nothing left to predict *)
                      in
                      if healthy then
                        finish t req ~ctx ~queue_ms ~cache_hit:true ~attempts:1
                          ?certificate Served predictions
                      else
                        finish t req ~ctx ~queue_ms ~cache_hit:true ~attempts:1
                          ?certificate
                          (Degraded "incremental update unhealthy") predictions
                  | exception Invalid_argument msg ->
                      degraded_answer t req ~ctx ~queue_ms
                        ("relabel rejected: " ^ msg)
                end)
    | Query when req.faults = [] -> begin
        (* clean query: serve from the cached factorization *)
        match Cache.find t.cache t.base_key with
        | Some inc ->
            Trace_ctx.with_span ctx "cache_query" (fun () ->
                Clock.advance t.clock t.config.costs.cache_ms;
                let predictions = Incremental.predict inc in
                let certificate = certify_incremental inc in
                let healthy =
                  match certificate with
                  | Some c -> Obs.Health.healthy c
                  | None -> true
                in
                if healthy then
                  finish t req ~ctx ~queue_ms ~cache_hit:true ~attempts:1
                    ?certificate Served predictions
                else
                  finish t req ~ctx ~queue_ms ~cache_hit:true ~attempts:1
                    ?certificate (Degraded "cached answer failed certification")
                    predictions)
        | None -> full_solve t req ~ctx ~queue_ms ~deadline inj
      end
    | Query -> full_solve t req ~ctx ~queue_ms ~deadline inj

let handle t req =
  let ctx = make_ctx t req in
  Trace_ctx.with_current ctx (fun () -> process t ~ctx ~queue_ms:0. req)

let shed t (req : request) reason =
  let ctx = make_ctx t req in
  finish t req ~ctx ~queue_ms:0. ~cache_hit:false ~attempts:0 (Shed reason)
    [||]

(* Single-worker FIFO admission over a pre-recorded arrival trace.
   [pending_finish] holds the finish times of admitted requests; its
   survivors at an arrival instant are exactly the in-flight + queued
   requests, so comparing against [queue_capacity] is the backpressure
   decision.  Requests must be sorted by arrival time. *)
let run_trace t reqs =
  if not (Clock.is_virtual t.clock) then
    invalid_arg "Engine.run_trace: requires a virtual clock (see Clock)";
  List.map
    (fun (req : request) ->
      t.pending_finish <-
        List.filter (fun f -> f > req.arrival_ms) t.pending_finish;
      let backlog = List.length t.pending_finish in
      if backlog > t.st.s_max_backlog then t.st.s_max_backlog <- backlog;
      if backlog >= t.config.queue_capacity then
        shed t req
          (Printf.sprintf "queue full (%d waiting, capacity %d)" backlog
             t.config.queue_capacity)
      else begin
        let start_ms = Stdlib.max req.arrival_ms t.worker_free_ms in
        Clock.jump t.clock start_ms;
        let queue_ms = start_ms -. req.arrival_ms in
        let ctx = make_ctx t req in
        let resp =
          Trace_ctx.with_current ctx (fun () ->
              process t ~ctx ~queue_ms req)
        in
        t.worker_free_ms <- Clock.now_ms t.clock;
        t.pending_finish <- t.worker_free_ms :: t.pending_finish;
        resp
      end)
    reqs

(* ---------------- exposition snapshot ---------------- *)

let breaker_gauge t =
  match Breaker.state t.breaker with
  | Breaker.Closed -> 0.
  | Breaker.Open -> 1.
  | Breaker.Half_open -> 2.

let metrics t =
  let s = stats t in
  let slo = Obs.Slo.snapshot t.slo in
  let open Obs.Expo in
  let c name help value =
    Counter { name; help; value = float_of_int value }
  in
  let g name help value = Gauge { name; help; value } in
  [
    c "serve.requests" "requests admitted or shed"
      (s.served + s.degraded + s.shed);
    c "serve.served" "responses served at full fidelity" s.served;
    c "serve.degraded" "responses explicitly degraded" s.degraded;
    c "serve.shed" "requests shed at admission" s.shed;
    c "serve.deadline_expired" "requests that ran out of budget"
      s.deadline_expired;
    c "serve.solver_aborts" "solves cut short mid-CG by a deadline"
      s.solver_aborts;
    c "serve.retried" "requests needing more than one attempt" s.retried;
    c "serve.relabels" "successful Sherman-Morrison downdates" s.relabels;
    c "serve.breaker_trips" "times the circuit breaker opened"
      s.breaker_trips;
    c "serve.breaker_transitions" "breaker state changes"
      s.breaker_transitions;
    c "serve.cache_hits" "factorization cache hits" s.cache_hits;
    c "serve.cache_misses" "factorization cache misses" s.cache_misses;
    c "serve.cache_evictions" "factorization cache evictions"
      s.cache_evictions;
    g "serve.max_backlog" "deepest queue observed"
      (float_of_int s.max_backlog);
    g "serve.queue_capacity" "admission queue capacity"
      (float_of_int t.config.queue_capacity);
    g "serve.breaker_state" "0=closed 1=open 2=half_open" (breaker_gauge t);
    g "serve.cache_entries" "live factorization cache entries"
      (float_of_int (Cache.length t.cache));
    g "serve.slo.latency_compliance" "window fraction under the latency threshold"
      slo.Obs.Slo.latency_compliance;
    g "serve.slo.quality_compliance" "window fraction served at full fidelity"
      slo.Obs.Slo.quality_compliance;
    g "serve.slo.latency_burn" "latency error-budget burn rate"
      slo.Obs.Slo.latency_burn;
    g "serve.slo.quality_burn" "quality error-budget burn rate"
      slo.Obs.Slo.quality_burn;
    g "serve.slo.latency_budget" "cumulative latency budget remaining"
      slo.Obs.Slo.latency_budget;
    g "serve.slo.quality_budget" "cumulative quality budget remaining"
      slo.Obs.Slo.quality_budget;
    Summary
      { name = "serve.latency_ms"; help = "request latency"; hist = t.latency };
    Summary
      { name = "serve.queue_ms"; help = "admission queue wait";
        hist = t.queue_wait };
  ]
  @ Transport.metrics t.transport
