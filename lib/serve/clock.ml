type t =
  | Monotonic
  | Virtual of { mutable now_ms : float }

let monotonic () = Monotonic
let virtual_ ?(start_ms = 0.) () = Virtual { now_ms = start_ms }
let is_virtual = function Virtual _ -> true | Monotonic -> false

let now_ms = function
  | Monotonic -> Unix.gettimeofday () *. 1e3
  | Virtual v -> v.now_ms

let advance t ms =
  if ms > 0. then
    match t with
    | Virtual v -> v.now_ms <- v.now_ms +. ms
    | Monotonic -> Robust.Fault.busy_wait_ms ms

let jump t target_ms =
  match t with
  | Virtual v -> if target_ms > v.now_ms then v.now_ms <- target_ms
  | Monotonic -> ()
