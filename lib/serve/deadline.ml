type t = { clock : Clock.t; start_ms : float; budget_ms : float }

let start clock ~budget_ms =
  { clock; start_ms = Clock.now_ms clock; budget_ms }

let at clock ~start_ms ~budget_ms = { clock; start_ms; budget_ms }
let budget_ms t = t.budget_ms
let elapsed_ms t = Clock.now_ms t.clock -. t.start_ms
let remaining_ms t = t.budget_ms -. elapsed_ms t
let expired t = remaining_ms t <= 0.

let should_stop ?(cost_ms = 0.) t () =
  Clock.advance t.clock cost_ms;
  expired t

let diagnostic t =
  Robust.Check.Deadline_expired
    { elapsed_ms = elapsed_ms t; budget_ms = t.budget_ms }
