type state = Closed | Open | Half_open

type t = {
  clock : Clock.t;
  failure_threshold : int;
  cooldown_ms : float;
  mutable state_ : state;
  mutable consecutive_failures : int;
  mutable opened_at_ms : float;
  mutable trips : int;
  mutable transitions : int;
}

let c_trips = Telemetry.Counter.make "serve.breaker_trips"

let create ?(failure_threshold = 3) ?(cooldown_ms = 50.) clock =
  if failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  { clock; failure_threshold; cooldown_ms; state_ = Closed;
    consecutive_failures = 0; opened_at_ms = 0.; trips = 0; transitions = 0 }

let c_transitions = Telemetry.Counter.make "serve.breaker_transitions"

(* Every observable state change goes through here, so the transition
   count covers trips, lazy cooldown expiries, and close-on-success. *)
let set_state t s =
  if t.state_ <> s then begin
    t.state_ <- s;
    t.transitions <- t.transitions + 1;
    Telemetry.Counter.incr c_transitions
  end

(* Open -> Half_open is a lazy, clock-driven transition: there is no
   timer thread, the next observation performs it. *)
let refresh t =
  match t.state_ with
  | Open when Clock.now_ms t.clock -. t.opened_at_ms >= t.cooldown_ms ->
      set_state t Half_open
  | _ -> ()

let state t =
  refresh t;
  t.state_

let allow t = match state t with Closed | Half_open -> true | Open -> false

let trip t =
  set_state t Open;
  t.opened_at_ms <- Clock.now_ms t.clock;
  t.trips <- t.trips + 1;
  Telemetry.Counter.incr c_trips;
  Obs.Event.emit ~severity:Obs.Event.Warning "serve.breaker_open"
    [
      ("consecutive_failures", Obs.Event.Int t.consecutive_failures);
      ("cooldown_ms", Obs.Event.Float t.cooldown_ms);
    ]

let record_success t =
  t.consecutive_failures <- 0;
  set_state t Closed

let record_failure t =
  match state t with
  | Half_open ->
      (* the probe failed: reopen for another full cooldown *)
      trip t
  | Closed ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= t.failure_threshold then trip t
  | Open -> ()

let trips t = t.trips
let transitions t = t.transitions

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

