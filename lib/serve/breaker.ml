type state = Closed | Open | Half_open

type t = {
  clock : Clock.t;
  failure_threshold : int;
  cooldown_ms : float;
  mutable state_ : state;
  mutable consecutive_failures : int;
  mutable opened_at_ms : float;
  mutable trips : int;
}

let c_trips = Telemetry.Counter.make "serve.breaker_trips"

let create ?(failure_threshold = 3) ?(cooldown_ms = 50.) clock =
  if failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  { clock; failure_threshold; cooldown_ms; state_ = Closed;
    consecutive_failures = 0; opened_at_ms = 0.; trips = 0 }

(* Open -> Half_open is a lazy, clock-driven transition: there is no
   timer thread, the next observation performs it. *)
let refresh t =
  match t.state_ with
  | Open when Clock.now_ms t.clock -. t.opened_at_ms >= t.cooldown_ms ->
      t.state_ <- Half_open
  | _ -> ()

let state t =
  refresh t;
  t.state_

let allow t = match state t with Closed | Half_open -> true | Open -> false

let trip t =
  t.state_ <- Open;
  t.opened_at_ms <- Clock.now_ms t.clock;
  t.trips <- t.trips + 1;
  Telemetry.Counter.incr c_trips;
  Obs.Event.emit ~severity:Obs.Event.Warning "serve.breaker_open"
    [
      ("consecutive_failures", Obs.Event.Int t.consecutive_failures);
      ("cooldown_ms", Obs.Event.Float t.cooldown_ms);
    ]

let record_success t =
  t.consecutive_failures <- 0;
  t.state_ <- Closed

let record_failure t =
  match state t with
  | Half_open ->
      (* the probe failed: reopen for another full cooldown *)
      trip t
  | Closed ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= t.failure_threshold then trip t
  | Open -> ()

let trips t = t.trips
