(** Circuit breaker for the full-solve path.

    Classic three-state machine, driven entirely by the {!Clock} (no
    timer threads, deterministic under virtual time):

    - [Closed]: traffic flows; [failure_threshold] {e consecutive}
      failures trip it open (a ["serve.breaker_open"] flight-recorder
      event and a [serve.breaker_trips] counter mark each trip).
    - [Open]: {!allow} refuses — the engine answers from the cached
      factorization / labeled mean instead of burning solver time — until
      [cooldown_ms] elapses, after which the breaker turns [Half_open].
    - [Half_open]: one probe is allowed through; success closes the
      breaker, failure reopens it for another full cooldown. *)

type state = Closed | Open | Half_open
type t

val create : ?failure_threshold:int -> ?cooldown_ms:float -> Clock.t -> t
(** Defaults: 3 consecutive failures, 50 ms cooldown.  Raises
    [Invalid_argument] when [failure_threshold < 1]. *)

val state : t -> state
(** Current state (performs the lazy [Open] → [Half_open] transition). *)

val allow : t -> bool
(** May a request take the expensive path right now? *)

val record_success : t -> unit
val record_failure : t -> unit
val trips : t -> int
(** Times the breaker has opened (including half-open reopens). *)

val transitions : t -> int
(** Total observable state changes (trip, cooldown expiry, close), also
    counted in the [serve.breaker_transitions] telemetry counter. *)

val state_name : state -> string
(** ["closed"] / ["open"] / ["half_open"]. *)
