(** Per-request deadline budgets over a {!Clock}.

    A deadline is anchored at the request's {e arrival} (not at solve
    start), so time spent queued and time burnt by latency-stall faults
    both count against the budget — exactly the accounting a saturated
    server needs for load shedding to mean anything. *)

type t

val start : Clock.t -> budget_ms:float -> t
(** Budget starting now. *)

val at : Clock.t -> start_ms:float -> budget_ms:float -> t
(** Budget anchored at an explicit instant (a request's arrival). *)

val budget_ms : t -> float
val elapsed_ms : t -> float
val remaining_ms : t -> float
val expired : t -> bool

val should_stop : ?cost_ms:float -> t -> unit -> bool
(** A closure fit for {!Sparse.Cg.solve}'s [should_stop] /
    {!Robust.Solve}'s rung gates.  Each poll first {!Clock.advance}s the
    clock by [cost_ms] (default 0) — on a virtual clock this is the
    deterministic stand-in for the work one CG iteration costs, which is
    what makes deadline expiry mid-solve replayable — then reports
    whether the budget is gone. *)

val diagnostic : t -> Robust.Check.diagnostic
(** The {!Robust.Check.Deadline_expired} record for this deadline's
    current elapsed/budget pair. *)
