(** The long-lived, admission-controlled request engine.

    One engine holds one problem (graph + initial labels), a warm
    factorization cache ({!Cache} of {!Gssl.Incremental.t}), a circuit
    {!Breaker}, and a {!Clock}.  Requests flow through this lifecycle
    (DESIGN §11 has the full state machine):

    + {b Admission} — {!run_trace} replays an arrival-ordered trace
      through a single-worker FIFO queue; a request arriving while
      [queue_capacity] requests are in flight or waiting is {e shed}
      immediately (backpressure, not unbounded growth).
    + {b Chaos} — the request's {!Robust.Fault} list is injected into a
      private copy of the problem; latency stalls burn deadline budget
      before the solve starts.
    + {b Deadline} — every request carries a budget anchored at arrival;
      queue wait counts.  Expiry at any point yields a [Degraded]
      response carrying a {!Robust.Check.Deadline_expired} diagnostic —
      inside a solve, expiry aborts CG mid-iteration via the cooperative
      [should_stop] hook.
    + {b Serving} — clean queries and relabels hit the cached
      factorization (Sherman–Morrison updates, O(m²)); faulted or
      cache-miss queries take the resilient full-solve path, wrapped in
      {!Retry} (exponential backoff + jitter) and gated by the breaker.
    + {b Degradation} — breaker open, retries exhausted, or budget gone:
      the response downgrades to the cached-factorization answer (label
      propagation from the last good state) or the labeled-mean
      imputation of Prop II.2, explicitly flagged [Degraded].

    Every served response carries a freshly certified health record
    (recomputed residual — {!Obs.Health}); every response that cannot be
    certified healthy is explicitly [Degraded] or [Shed].  Nothing is
    dropped. *)

type costs = {
  solve_ms : float;    (** charged when a full-solve attempt starts *)
  cache_ms : float;    (** charged per cache-hit answer *)
  relabel_ms : float;  (** charged per Sherman–Morrison downdate *)
  poll_ms : float;
      (** charged per [should_stop] poll — the virtual stand-in for one
          CG iteration's work, which is what makes mid-solve deadline
          expiry deterministic under a virtual clock *)
}

type config = {
  queue_capacity : int;
  deadline_ms : float;
  retry : Retry.policy;
  breaker_failures : int;
  breaker_cooldown_ms : float;
  cache_capacity : int;
  costs : costs;
  seed : int;  (** drives per-request fault injection and retry jitter *)
  slo : Obs.Slo.config;
      (** latency/quality objectives for the engine's SLO tracker *)
}

val default_config : config

type kind = Query | Relabel of { vertex : int; label : float }

type request = {
  id : int;  (** unique; also selects the request's private rng substream *)
  arrival_ms : float;
  kind : kind;
  faults : Robust.Fault.t list;  (** chaos to inject into this request *)
}

type status = Served | Degraded of string | Shed of string

type response = {
  id : int;
  trace_id : int64;
      (** the request's {!Obs.Trace_ctx} id — derived from
          (config seed, request id), so replays regenerate it *)
  status : status;
  predictions : (int * float) array;  (** [(vertex, score)] pairs *)
  certificate : Obs.Health.t option;
      (** present on every [Served] response; best-effort otherwise *)
  diagnostics : Robust.Check.diagnostic list;
  queue_ms : float;
  latency_ms : float;  (** arrival → completion, on the engine clock *)
  rung_ms : (string * float) list;
      (** wall-ms per fallback rung of the solve, when one ran *)
  attempts : int;
  cache_hit : bool;
}

type stats = {
  served : int;
  degraded : int;
  shed : int;
  deadline_expired : int;
  solver_aborts : int;   (** solves cut short mid-CG by a deadline *)
  retried : int;         (** requests that needed more than one attempt *)
  relabels : int;        (** successful Sherman–Morrison downdates *)
  max_backlog : int;     (** deepest queue observed (bounded by capacity) *)
  breaker_trips : int;
  breaker_transitions : int;  (** every breaker state change *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

type t

val create :
  ?clock:Clock.t -> ?journal:Obs.Journal.t -> config -> Gssl.Problem.t -> t
(** Builds the engine and warms the factorization cache (an unanchorable
    problem leaves it cold; queries then take the full-solve path).
    Default clock: monotonic.  When [journal] is given, every finished
    request appends its span tree to it as one JSONL line.  Raises
    [Invalid_argument] on a non-positive queue capacity or deadline. *)

val handle : t -> request -> response
(** Serve one request immediately (no queue) — the live [gssl serve]
    path. *)

val run_trace : t -> request list -> response list
(** Replay an arrival-sorted trace through the admission queue.  Exactly
    one response per request, in order.  Raises [Invalid_argument] on a
    monotonic clock — replay semantics need virtual time. *)

val stats : t -> stats
val slo_snapshot : t -> Obs.Slo.snapshot
val journal : t -> Obs.Journal.t option

val metrics : t -> Obs.Expo.metric list
(** One-shot exposition snapshot unifying the stats record,
    breaker/cache/queue gauges, SLO state, and the latency and
    queue-wait histograms.  Render with {!Obs.Expo.to_prometheus} or
    {!Obs.Expo.to_json}. *)

val latency_histogram : t -> Obs.Histogram.t
val queue_histogram : t -> Obs.Histogram.t
val problem : t -> Gssl.Problem.t
val breaker : t -> Breaker.t
val clock : t -> Clock.t
val config : t -> config

val transport : t -> Transport.t
(** The engine's transport counters — incremented by the socket
    front-end ([lib/net]) and folded into {!metrics} as
    [serve.transport.*]. *)

val status_name : status -> string
