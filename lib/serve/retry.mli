(** Bounded retry with exponential backoff and seeded jitter.

    Backoff time is spent on the {!Clock} (so it burns the request's
    deadline budget and is deterministic under a virtual clock), and
    jitter is drawn from the caller's {!Prng.Rng.t} — no hidden
    randomness, no wall-clock sleeps. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_ms : float;     (** backoff before the second attempt *)
  multiplier : float;  (** geometric growth per further attempt *)
  jitter : float;
      (** relative jitter amplitude: the delay is scaled by
          [1 + jitter·u], [u ~ U(-1, 1)].  [0] disables jitter. *)
}

val default : policy
(** 3 attempts, 1 ms base, 2× growth, ±50% jitter. *)

val backoff_ms : policy -> Prng.Rng.t -> attempt:int -> float
(** Delay to wait {e after} failed attempt number [attempt] (1-based).
    Raises [Invalid_argument] when [attempt < 1]. *)

type 'a attempt =
  | Done of 'a           (** success — stop *)
  | Transient of string  (** worth retrying (e.g. unhealthy solve) *)
  | Fatal of string      (** retrying cannot help (bad input, deadline) *)

type 'a outcome = {
  result : ('a, string) result;  (** [Error] carries the last failure *)
  attempts : int;                (** attempts actually made *)
}

val run :
  policy ->
  clock:Clock.t ->
  rng:Prng.Rng.t ->
  ?deadline:Deadline.t ->
  (attempt:int -> 'a attempt) ->
  'a outcome
(** Run [f] up to [max_attempts] times, advancing the clock by the
    jittered backoff between attempts.  Stops immediately on [Done] or
    [Fatal], and refuses to start (or continue into) an attempt once
    [deadline] is expired. *)
