(** LRU factorization cache keyed by graph fingerprint + λ.

    A long-lived server pays the O(m³) factorization once per (graph, λ)
    pair and then answers queries and Sherman–Morrison relabels from the
    cached {!Gssl.Incremental.t}.  The key is a structural fingerprint
    of the weighted graph (order, every stored edge, exact weight bits),
    so a changed weight — or a fault-injected copy — can never alias the
    clean entry, plus the λ of the soft criterion ([None] for the hard
    criterion).

    The store is polymorphic — tests exercise the LRU discipline with
    plain ints — but the engine stores incremental solver states.  Hits,
    misses, and evictions land in the [serve.cache_hits] /
    [serve.cache_misses] / [serve.cache_evictions] telemetry counters
    and surface per-run through [Engine.stats]. *)

type key = { fingerprint : int64; lambda : float option }

val mix : int64 -> int64 -> int64
(** splitmix64-style combine step.  Exposed for the soak harness's
    deterministic outcome digest. *)

val fingerprint : Graph.Weighted_graph.t -> int64
val key : ?lambda:float -> Graph.Weighted_graph.t -> key

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 8.  Raises [Invalid_argument] when [capacity < 1]. *)

val find : 'a t -> key -> 'a option
(** Counting lookup: bumps hit/miss statistics and recency. *)

val peek : 'a t -> key -> 'a option
(** Non-counting lookup (degraded-path answers should not inflate the
    hit rate the operator tunes against). *)

val put : 'a t -> key -> 'a -> unit
(** Insert/refresh; evicts the least recently used entry beyond
    capacity. *)

val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
