module Wg = Graph.Weighted_graph

type key = { fingerprint : int64; lambda : float option }

(* splitmix64-style finalizer, used both for graph fingerprints and by
   the soak harness's outcome digest *)
let mix h v =
  let h = Int64.add (Int64.logxor h v) 0x9e3779b97f4a7c15L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30))
      0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27))
      0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let fingerprint g =
  let h = ref (mix 0x5eedL (Int64.of_int (Wg.order g))) in
  Wg.iter_edges g (fun i j w ->
      h := mix !h (Int64.of_int i);
      h := mix !h (Int64.of_int j);
      h := mix !h (Int64.bits_of_float w));
  !h

let key ?lambda g = { fingerprint = fingerprint g; lambda }

type 'a t = {
  capacity : int;
  mutable entries : (key * 'a) list;  (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let c_hits = Telemetry.Counter.make "serve.cache_hits"
let c_misses = Telemetry.Counter.make "serve.cache_misses"
let c_evictions = Telemetry.Counter.make "serve.cache_evictions"

let create ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity; entries = []; hits = 0; misses = 0; evictions = 0 }

let peek t k = List.assoc_opt k t.entries

let find t k =
  match peek t k with
  | Some v ->
      t.hits <- t.hits + 1;
      Telemetry.Counter.incr c_hits;
      t.entries <- (k, v) :: List.remove_assoc k t.entries;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      Telemetry.Counter.incr c_misses;
      None

let put t k v =
  let entries = (k, v) :: List.remove_assoc k t.entries in
  let rec take n = function
    | [] -> []
    | _ when n = 0 ->
        t.evictions <- t.evictions + 1;
        Telemetry.Counter.incr c_evictions;
        []
    | e :: rest -> e :: take (n - 1) rest
  in
  t.entries <- take t.capacity entries

let length t = List.length t.entries
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
