type policy = {
  max_attempts : int;
  base_ms : float;
  multiplier : float;
  jitter : float;
}

let default = { max_attempts = 3; base_ms = 1.0; multiplier = 2.0; jitter = 0.5 }

let backoff_ms policy rng ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff_ms: attempt must be >= 1";
  let base =
    policy.base_ms *. (policy.multiplier ** float_of_int (attempt - 1))
  in
  let j =
    if policy.jitter <= 0. then 0.
    else policy.jitter *. Prng.Rng.uniform rng (-1.) 1.
  in
  Stdlib.max 0. (base *. (1. +. j))

type 'a attempt = Done of 'a | Transient of string | Fatal of string
type 'a outcome = { result : ('a, string) result; attempts : int }

let run policy ~clock ~rng ?deadline f =
  let expired () =
    match deadline with None -> false | Some d -> Deadline.expired d
  in
  let rec go attempt last_reason =
    if attempt > policy.max_attempts then
      { result = Error last_reason; attempts = attempt - 1 }
    else if expired () then
      { result =
          Error
            (if attempt = 1 then "deadline expired before first attempt"
             else last_reason);
        attempts = attempt - 1 }
    else
      let outcome =
        (* span on the ambient request trace (no-op outside a traced
           request); the attempt's disposition lands as a field *)
        Obs.Trace_ctx.in_span "retry.attempt"
          ~fields:[ ("attempt", Obs.Event.Int attempt) ]
          (fun () ->
            let r = f ~attempt in
            Obs.Trace_ctx.annotate_current
              [
                ( "outcome",
                  Obs.Event.Str
                    (match r with
                    | Done _ -> "done"
                    | Transient _ -> "transient"
                    | Fatal _ -> "fatal") );
              ];
            r)
      in
      match outcome with
      | Done v -> { result = Ok v; attempts = attempt }
      | Fatal reason -> { result = Error reason; attempts = attempt }
      | Transient reason ->
          (* back off only when another attempt is actually coming *)
          if attempt < policy.max_attempts && not (expired ()) then begin
            let delay = backoff_ms policy rng ~attempt in
            Obs.Trace_ctx.mark "retry.backoff"
              ~fields:[ ("delay_ms", Obs.Event.Float delay) ];
            Clock.advance clock delay
          end;
          go (attempt + 1) reason
  in
  go 1 "no attempts made"
