module Vec = Linalg.Vec

type method_ = Jacobi | Gauss_seidel | Sor of float

type outcome = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let c_solves = Telemetry.Counter.make "stationary.solves"
let c_iterations = Telemetry.Counter.make "stationary.iterations"

let residual_norm a x b = Vec.norm2 (Vec.sub b (Csr.mv a x))

let check_diagonal a =
  let d = Csr.diagonal a in
  Array.iteri
    (fun i v ->
      if abs_float v < 1e-300 then
        invalid_arg (Printf.sprintf "Stationary.solve: zero diagonal at %d" i))
    d;
  d

let jacobi_step a d x b =
  let n = Array.length x in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    Csr.iter_row a i (fun j v -> if j <> i then acc := !acc -. (v *. x.(j)));
    y.(i) <- !acc /. d.(i)
  done;
  y

(* Gauss–Seidel and SOR update in place, sweeping forward. *)
let sor_step omega a d x b =
  let n = Array.length x in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    Csr.iter_row a i (fun j v -> if j <> i then acc := !acc -. (v *. x.(j)));
    let gs = !acc /. d.(i) in
    x.(i) <- ((1. -. omega) *. x.(i)) +. (omega *. gs)
  done

let solve ?x0 ?(tol = 1e-10) ?(max_iter = 10_000) method_ a b =
  Telemetry.Span.with_ "stationary.solve" @@ fun () ->
  Telemetry.Counter.incr c_solves;
  let rows, cols = Csr.dims a in
  if rows <> cols then invalid_arg "Stationary.solve: matrix not square";
  if Array.length b <> rows then invalid_arg "Stationary.solve: length mismatch";
  (match method_ with
  | Sor omega when omega <= 0. || omega >= 2. ->
      invalid_arg "Stationary.solve: SOR factor must lie in (0, 2)"
  | _ -> ());
  let d = check_diagonal a in
  let x = ref (match x0 with Some v -> Vec.copy v | None -> Vec.zeros rows) in
  if Array.length !x <> rows then invalid_arg "Stationary.solve: x0 length mismatch";
  let b_norm = Vec.norm2 b in
  let threshold = if b_norm = 0. then tol else tol *. b_norm in
  let iterations = ref 0 in
  let res = ref (residual_norm a !x b) in
  while !res > threshold && !iterations < max_iter do
    incr iterations;
    Telemetry.Counter.incr c_iterations;
    (match method_ with
    | Jacobi -> x := jacobi_step a d !x b
    | Gauss_seidel -> sor_step 1. a d !x b
    | Sor omega -> sor_step omega a d !x b);
    res := residual_norm a !x b
  done;
  { solution = !x; iterations = !iterations; residual_norm = !res; converged = !res <= threshold }
