module Vec = Linalg.Vec

type method_ = Jacobi | Gauss_seidel | Sor of float

type outcome = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let c_solves = Telemetry.Counter.make "stationary.solves"
let c_iterations = Telemetry.Counter.make "stationary.iterations"

let residual_norm a x b = Vec.norm2 (Vec.sub b (Csr.mv a x))

(* The sweeps only need three views of the system A: its diagonal, the
   off-diagonal row dot Σ_{j≠i} A_ij x_j, and a residual norm.  Both
   the assembled-CSR path and the fused Laplacian path (A = diag(deg)
   − W, never materialised) provide them. *)
type system = {
  n : int;
  diag : Vec.t;
  offdiag_dot : Vec.t -> int -> float;
  residual : Vec.t -> Vec.t -> float;
}

let check_diagonal name d =
  Array.iteri
    (fun i v ->
      if abs_float v < 1e-300 then
        invalid_arg (Printf.sprintf "%s: zero diagonal at %d" name i))
    d

let jacobi_step sys x b =
  let y = Array.make sys.n 0. in
  for i = 0 to sys.n - 1 do
    y.(i) <- (b.(i) -. sys.offdiag_dot x i) /. sys.diag.(i)
  done;
  y

(* Gauss–Seidel and SOR update in place, sweeping forward. *)
let sor_step omega sys x b =
  for i = 0 to sys.n - 1 do
    let gs = (b.(i) -. sys.offdiag_dot x i) /. sys.diag.(i) in
    x.(i) <- ((1. -. omega) *. x.(i)) +. (omega *. gs)
  done

let solve_system ?x0 ?(tol = 1e-10) ?(max_iter = 10_000) method_ sys b =
  Telemetry.Span.with_ "stationary.solve" @@ fun () ->
  Telemetry.Counter.incr c_solves;
  if Array.length b <> sys.n then invalid_arg "Stationary.solve: length mismatch";
  (match method_ with
  | Sor omega when omega <= 0. || omega >= 2. ->
      invalid_arg "Stationary.solve: SOR factor must lie in (0, 2)"
  | _ -> ());
  let x = ref (match x0 with Some v -> Vec.copy v | None -> Vec.zeros sys.n) in
  if Array.length !x <> sys.n then
    invalid_arg "Stationary.solve: x0 length mismatch";
  let b_norm = Vec.norm2 b in
  let threshold = if b_norm = 0. then tol else tol *. b_norm in
  let iterations = ref 0 in
  let res = ref (sys.residual !x b) in
  while !res > threshold && !iterations < max_iter do
    incr iterations;
    Telemetry.Counter.incr c_iterations;
    (match method_ with
    | Jacobi -> x := jacobi_step sys !x b
    | Gauss_seidel -> sor_step 1. sys !x b
    | Sor omega -> sor_step omega sys !x b);
    res := sys.residual !x b
  done;
  {
    solution = !x;
    iterations = !iterations;
    residual_norm = !res;
    converged = !res <= threshold;
  }

let solve ?x0 ?tol ?max_iter method_ a b =
  let rows, cols = Csr.dims a in
  if rows <> cols then invalid_arg "Stationary.solve: matrix not square";
  let d = Csr.diagonal a in
  check_diagonal "Stationary.solve" d;
  let offdiag_dot x i =
    let acc = ref 0. in
    Csr.iter_row a i (fun j v -> if j <> i then acc := !acc +. (v *. x.(j)));
    !acc
  in
  solve_system ?x0 ?tol ?max_iter method_
    { n = rows; diag = d; offdiag_dot; residual = residual_norm a }
    b

let solve_lap ?x0 ?tol ?max_iter method_ ~w ~deg b =
  let rows, cols = Csr.dims w in
  if rows <> cols then invalid_arg "Stationary.solve_lap: matrix not square";
  if Array.length deg <> rows then
    invalid_arg "Stationary.solve_lap: degree length mismatch";
  (* A = diag(deg) - W: diagonal deg_i - w_ii, off-diagonals -w_ij.
     The W rows are streamed directly — A is never assembled. *)
  let wdiag = Csr.diagonal w in
  let d = Array.init rows (fun i -> deg.(i) -. wdiag.(i)) in
  check_diagonal "Stationary.solve_lap" d;
  let offdiag_dot x i =
    let acc = ref 0. in
    Csr.iter_row w i (fun j v -> if j <> i then acc := !acc -. (v *. x.(j)));
    !acc
  in
  let residual x b = Vec.norm2 (Vec.sub b (Csr.lap_mv w ~deg x)) in
  solve_system ?x0 ?tol ?max_iter method_
    { n = rows; diag = d; offdiag_dot; residual }
    b
