(** Compressed-sparse-row matrices.

    Immutable after construction.  Within each row, column indices are
    strictly increasing and duplicates from the COO stage are summed. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;   (** length [rows + 1] *)
  col_idx : int array;   (** length [nnz] *)
  values : float array;  (** length [nnz] *)
}

val of_coo : Coo.t -> t
val of_dense : ?threshold:float -> Linalg.Mat.t -> t
val to_dense : t -> Linalg.Mat.t
val dims : t -> int * int
val nnz : t -> int

val get : t -> int -> int -> float
(** Binary search within the row; 0. when absent.
    Raises [Invalid_argument] when out of bounds. *)

val mv : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Sparse matrix–vector product. *)

val lap_mv : t -> deg:Linalg.Vec.t -> Linalg.Vec.t -> Linalg.Vec.t
(** [lap_mv w ~deg x] is the graph-Laplacian product
    [y_i = deg_i * x_i - (W x)_i] computed in one row pass (degree
    scaling fused into the SpMV sweep, no intermediate vector).
    Bit-identical to the composed [deg.*x - mv w x]. *)

val fused_lap_mv :
  t ->
  deg:Linalg.Vec.t ->
  vdiag:Linalg.Vec.t ->
  lambda:float ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** [fused_lap_mv w ~deg ~vdiag ~lambda x] is
    [y_i = vdiag_i * x_i + lambda * (deg_i * x_i - (W x)_i)] — the soft
    criterion's [(V + lambda L) x] — in one row pass.  Bit-identical to
    composing the unfused steps. *)

val tmv : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [tmv a x = aᵀ x]. *)

val transpose : t -> t
val scale : float -> t -> t
val add : t -> t -> t
val diagonal : t -> Linalg.Vec.t
val row_sums : t -> Linalg.Vec.t

val map_values : (float -> float) -> t -> t
(** Apply [f] to every stored value (structure unchanged); entries mapped
    to 0. are kept as explicit zeros. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate over the stored [(col, value)] pairs of one row. *)

val is_symmetric : ?tol:float -> t -> bool
