(** Conjugate gradient for symmetric positive-definite systems.

    The hard-criterion matrix [D₂₂ − W₂₂] and the soft-criterion matrix
    [V + λL] are SPD, so CG (optionally Jacobi-preconditioned) solves both
    without any O(n³) factorization. *)

type outcome = {
  solution : Linalg.Vec.t;
  iterations : int;
  residual_norm : float;  (** final [‖b − A x‖₂] as estimated by the recurrence *)
  best_residual : float;
      (** smallest recurrence residual seen along the iteration — a final
          residual far above it flags a stagnating/oscillating solve *)
  true_residual : float option;
      (** [‖b − A x‖₂] {e recomputed} with one extra matvec on the returned
          solution.  Only computed while telemetry is enabled (the existing
          stats path); [None] otherwise, so default solves pay nothing. *)
  converged : bool;
  breakdown : bool;
      (** [pᵀAp ≤ 0] (or NaN) was observed: the operator is not SPD along
          some search direction.  Distinct from running out of iterations —
          restarting cannot fix a breakdown, only a different solver can.
          Breakdowns are also reported as ["cg.breakdown"] events in the
          [Obs.Event] flight recorder. *)
  aborted : bool;
      (** the [should_stop] callback returned [true] between iterations and
          the solve stopped early with the best iterate so far.  Distinct
          from both breakdown and plain non-convergence: the caller asked
          for the stop (deadline expiry, cancellation), so retrying with a
          fresh budget may well succeed.  Aborts are also reported as
          ["cg.abort"] events in the [Obs.Event] flight recorder. *)
}

val solve :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?precondition:bool ->
  ?precond_apply:(Linalg.Vec.t -> Linalg.Vec.t) ->
  ?should_stop:(unit -> bool) ->
  Linop.t ->
  Linalg.Vec.t ->
  outcome
(** [solve op b] runs (preconditioned) CG on [op x = b].
    [tol] (default 1e-10) is relative to [‖b‖₂]; [max_iter] defaults to
    [10 * dim]; [precondition] (default true) enables the Jacobi
    (diagonal) preconditioner.  [precond_apply], when supplied (and
    [precondition] is true), replaces the Jacobi diagonal entirely: each
    iteration solves [M z = r] by calling [precond_apply r].  The
    callback must realise a {e fixed symmetric positive-definite}
    operator (e.g. a symmetric multigrid V-cycle) or the PCG recurrences
    lose their convergence guarantees.  Iteration counts of every solve
    are recorded in the ["cg.iterations"] {!Obs.Histogram} summary while
    telemetry is enabled, so preconditioner quality is observable, not
    just wall time.  [should_stop] (default [fun () -> false])
    is polled once per iteration {e before} any work for that iteration;
    returning [true] ends the solve cooperatively with [aborted = true]
    and the current iterate as [solution] — this is how per-request
    deadlines reach into a running solve.  Raises [Invalid_argument] on
    dimension mismatch. *)

val solve_exn :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?precondition:bool ->
  ?precond_apply:(Linalg.Vec.t -> Linalg.Vec.t) ->
  ?should_stop:(unit -> bool) ->
  Linop.t ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** Like {!solve} but raises [Failure] when CG fails to converge.  The
    message reports the system dimension, iteration count, final residual
    norm and ‖b‖, and distinguishes non-SPD breakdown from plain
    non-convergence. *)

val ensure_converged : Linop.t -> Linalg.Vec.t -> outcome -> unit
(** Raise the same [Failure] {!solve_exn} would for an unconverged
    outcome; no-op on a converged one.  Lets callers inspect the outcome
    (e.g. record a health certificate) before enforcing convergence. *)
