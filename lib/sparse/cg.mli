(** Conjugate gradient for symmetric positive-definite systems.

    The hard-criterion matrix [D₂₂ − W₂₂] and the soft-criterion matrix
    [V + λL] are SPD, so CG (optionally Jacobi-preconditioned) solves both
    without any O(n³) factorization. *)

type outcome = {
  solution : Linalg.Vec.t;
  iterations : int;
  residual_norm : float;  (** final [‖b − A x‖₂] as estimated by the recurrence *)
  converged : bool;
  breakdown : bool;
      (** [pᵀAp ≤ 0] (or NaN) was observed: the operator is not SPD along
          some search direction.  Distinct from running out of iterations —
          restarting cannot fix a breakdown, only a different solver can. *)
}

val solve :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?precondition:bool ->
  Linop.t ->
  Linalg.Vec.t ->
  outcome
(** [solve op b] runs (preconditioned) CG on [op x = b].
    [tol] (default 1e-10) is relative to [‖b‖₂]; [max_iter] defaults to
    [10 * dim]; [precondition] (default true) enables the Jacobi
    (diagonal) preconditioner.  Raises [Invalid_argument] on dimension
    mismatch. *)

val solve_exn :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?precondition:bool ->
  Linop.t ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** Like {!solve} but raises [Failure] when CG fails to converge.  The
    message reports the system dimension, iteration count, final residual
    norm and ‖b‖, and distinguishes non-SPD breakdown from plain
    non-convergence. *)
