(** Stationary iterative solvers: Jacobi, Gauss–Seidel and SOR.

    These operate on CSR matrices directly (they need to separate the
    diagonal from the off-diagonal part, which a matrix-free operator
    cannot provide).  The Jacobi iteration on the hard-criterion system is
    exactly the classic label-propagation update, which is why these live
    here — {!Gssl.Label_propagation} delegates to them. *)

type method_ = Jacobi | Gauss_seidel | Sor of float
(** [Sor omega] requires [0 < omega < 2]. *)

type outcome = {
  solution : Linalg.Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

val solve :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  method_ ->
  Csr.t ->
  Linalg.Vec.t ->
  outcome
(** [solve m a b] iterates until [‖b − a x‖₂ ≤ tol·‖b‖₂] (tol default
    1e-10) or [max_iter] (default 10_000).  Raises [Invalid_argument] on a
    non-square matrix, dimension mismatch, zero diagonal entry, or an SOR
    factor outside (0, 2). *)

val solve_lap :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  method_ ->
  w:Csr.t ->
  deg:Linalg.Vec.t ->
  Linalg.Vec.t ->
  outcome
(** [solve_lap m ~w ~deg b] solves the graph-Laplacian system
    [(diag(deg) − W) x = b] by streaming the rows of [W] directly —
    the system matrix is never assembled, and the residual uses the
    fused {!Csr.lap_mv}.  The sweeps are the same as {!solve} on the
    assembled matrix (off-diagonal terms are accumulated in the same
    column order with [−w_ij] in place of [A_ij]), so for a [W] whose
    stored off-diagonal pattern matches the assembled system the
    iterates are identical up to the residual's summation order.
    Same defaults and errors as {!solve}; additionally raises
    [Invalid_argument] when [deg] has the wrong length or
    [deg_i − w_ii] vanishes. *)
