(** Heavy-edge-matching graph coarsening.

    Builds a hierarchy of progressively smaller operators
    [A_l = diag(diag_l) − W_l] from a fine operator given in the same
    (off-diagonal weights, diagonal vector) form the fused
    [Csr.lap_mv] kernel consumes — the hard-criterion system
    [diag(deg′) − W₂₂] and plain graph Laplacians both fit.

    Each level greedily matches every vertex with its heaviest
    unmatched neighbour (ascending vertex order, smallest index on
    ties — fully deterministic), aggregates matched pairs, lets the
    remaining singletons — an independent set that can dominate
    hub-shaped graphs and stall pure pair matching — adopt into their
    heaviest neighbour's aggregate (size-capped), and forms the
    Galerkin coarse operator [PᵀA P] for the piecewise-constant
    aggregation [P].  In (W, diag) form: cross-aggregate weights are
    summed into [W_c], intra-aggregate edges are absorbed into the
    diagonal ([diag_c(c) = Σ diag_i − 2·Σ intra w_uv]), which conserves
    the total mass [1ᵀA1] exactly per level and keeps every coarse
    operator symmetric; PSD is inherited from the fine operator because
    [xᵀ(PᵀAP)x = (Px)ᵀA(Px) ≥ 0].

    [W] must hold non-negative off-diagonal weights only (diagonal
    entries are ignored by the matching and the Galerkin sums). *)

type t

val build :
  ?coarse_cutoff:int ->
  ?max_levels:int ->
  ?min_shrink:float ->
  w:Csr.t ->
  diag:Linalg.Vec.t ->
  unit ->
  t
(** [build ~w ~diag ()] coarsens until the level size reaches
    [coarse_cutoff] (default 64), [max_levels] levels exist (default
    25), or a level shrinks by less than the [min_shrink] factor
    (default 0.95 — a stagnation guard for edge-free graphs, whose
    matching is empty).  The finest level is stored as level 0.
    Counters: [sparse.coarsen.levels], [sparse.coarsen.matched_pairs];
    span: [coarsen.build].  Raises [Invalid_argument] on dimension
    mismatch or out-of-range parameters. *)

val depth : t -> int
(** Number of levels, finest included ([>= 1]). *)

val level : t -> int -> Csr.t * Linalg.Vec.t
(** [(W_l, diag_l)] of level [l] ([0] = finest). *)

val level_size : t -> int -> int
val map_at : t -> int -> int array
(** [map_at t l] maps each level-[l] vertex to its level-[l+1]
    aggregate.  Valid for [l < depth t - 1]. *)

val apply : t -> int -> Linalg.Vec.t -> Linalg.Vec.t
(** [apply t l x = A_l x] via the fused Laplacian kernel. *)

val restrict : t -> int -> Linalg.Vec.t -> Linalg.Vec.t
(** [restrict t l x = Pᵀx]: sum fine entries into their aggregates
    (level [l] → [l+1]). *)

val prolong : t -> int -> Linalg.Vec.t -> Linalg.Vec.t
(** [prolong t l xc = P xc]: copy each aggregate's value to its fine
    vertices (level [l+1] → [l]). *)
