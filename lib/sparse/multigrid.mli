(** Symmetric V-cycle multigrid preconditioner for CG.

    Built on a {!Coarsen} heavy-edge hierarchy of the operator
    [A = diag(diag) − W].  One {!precondition} application runs a
    single V-cycle: weighted-Jacobi pre-smoothing (damping [omega],
    [smooth_iters] sweeps, zero initial guess), recursive coarse-grid
    correction through the aggregation transfer operators, a direct
    dense Cholesky solve at the coarsest level (ridge retry for
    singular pure-Laplacian tails; Jacobi sweeps when factorization
    fails or the coarsest level is too large for a dense factor), and
    symmetric post-smoothing.

    Because pre- and post-smoothing counts are equal, the smoother is
    symmetric, and the coarse solve is symmetric, the V-cycle realises
    a {e fixed symmetric positive-definite} operator — a valid
    [Cg.solve ~precond_apply] preconditioner, so preconditioned CG
    keeps its convergence theory, its cooperative-abort hook, and its
    [cg.solve] trace spans. *)

type t

val build :
  ?coarse_cutoff:int ->
  ?max_levels:int ->
  ?smooth_iters:int ->
  ?omega:float ->
  w:Csr.t ->
  diag:Linalg.Vec.t ->
  unit ->
  t
(** [build ~w ~diag ()] constructs the hierarchy and the coarse
    factorization.  [smooth_iters] defaults to 2, [omega] to 2/3 (the
    classical optimum for Jacobi on Laplacian-like spectra);
    [coarse_cutoff] / [max_levels] are passed to {!Coarsen.build}.
    Counters: [sparse.multigrid.builds], [sparse.multigrid.cycles];
    span: [multigrid.build]. *)

val precondition : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [precondition t r ≈ A⁻¹ r] by one V-cycle — the [precond_apply]
    callback for {!Cg.solve}.  Linear and deterministic in [r]. *)

val operator : t -> Linop.t
(** The finest-level operator [A] as a matrix-free [Linop], applied via
    the fused [Csr.lap_mv] kernel. *)

val solve :
  ?x0:Linalg.Vec.t ->
  ?tol:float ->
  ?max_iter:int ->
  ?should_stop:(unit -> bool) ->
  t ->
  Linalg.Vec.t ->
  Cg.outcome
(** [solve t b] runs multigrid-preconditioned CG on [A x = b] —
    {!Cg.solve} with {!precondition} plugged in, so deadlines
    ([should_stop]) and trace spans behave exactly as for flat CG. *)

val depth : t -> int
val hierarchy : t -> Coarsen.t
