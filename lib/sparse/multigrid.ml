module Vec = Linalg.Vec
module Mat = Linalg.Mat

(* Symmetric V-cycle multigrid preconditioner over a heavy-edge
   coarsening hierarchy.

   One application runs, at every level: [smooth_iters] weighted-Jacobi
   pre-smoothing sweeps from a zero initial guess, a restricted
   residual solved recursively on the next level, a prolongated
   correction, and [smooth_iters] post-smoothing sweeps.  The coarsest
   level is solved directly by a dense Cholesky factorization (with a
   ridge retry for singular pure-Laplacian tails, and Jacobi sweeps as
   the last resort).  If the hierarchy stagnated and the coarsest level
   is too large for a dense factorization ([dense_cutoff]), the direct
   solve is replaced by extra smoothing sweeps.

   With equal pre- and post-smoothing counts of the (symmetric)
   weighted-Jacobi smoother and an exact symmetric coarse solve, the
   V-cycle realises a fixed symmetric positive-definite operator M⁻¹ —
   exactly what [Cg.solve ~precond_apply] requires. *)

let c_builds = Telemetry.Counter.make "sparse.multigrid.builds"
let c_cycles = Telemetry.Counter.make "sparse.multigrid.cycles"

type coarse_solver =
  | Cholesky of Mat.t  (* lower factor of the (possibly ridged) coarsest A *)
  | Smooth  (* factorization impossible: extra Jacobi sweeps instead *)

type t = {
  hierarchy : Coarsen.t;
  inv_diags : Vec.t array;
  smooth_iters : int;
  omega : float;
  coarse : coarse_solver;
}

let assemble_dense w diag =
  let n = Array.length diag in
  let a = Mat.zeros n n in
  for i = 0 to n - 1 do
    Mat.set a i i diag.(i);
    Csr.iter_row w i (fun j wij ->
        if j <> i then Mat.set a i j (Mat.get a i j -. wij))
  done;
  a

(* A coarsest level bigger than this never gets a dense factorization:
   assembling n² entries and running an O(n³) Cholesky on a stagnated
   hierarchy (thousands of vertices) would silently dominate the build
   by minutes, while extra Jacobi sweeps keep the cycle linear in the
   level size.  The preconditioner degrades gracefully instead. *)
let dense_cutoff = 1024

let coarse_solver_of w diag =
  if Array.length diag > dense_cutoff then Smooth
  else
    let a = assemble_dense w diag in
  match Linalg.Cholesky.factor a with
  | l -> Cholesky l
  | exception Linalg.Cholesky.Not_positive_definite _ -> (
      (* singular tail (e.g. a pure Laplacian, whose constant vector is
         a null direction): a small ridge keeps the coarse solve SPD
         while perturbing the preconditioner, not the solution *)
      let scale =
        Array.fold_left (fun acc d -> Float.max acc (abs_float d)) 1. diag
      in
      let ridged = Mat.add_scaled_identity a (1e-8 *. scale) in
      match Linalg.Cholesky.factor ridged with
      | l -> Cholesky l
      | exception Linalg.Cholesky.Not_positive_definite _ -> Smooth)

let build ?coarse_cutoff ?max_levels ?(smooth_iters = 2) ?(omega = 2. /. 3.)
    ~w ~diag () =
  if smooth_iters < 1 then invalid_arg "Multigrid.build: smooth_iters >= 1";
  if omega <= 0. || omega > 1. then
    invalid_arg "Multigrid.build: omega in (0, 1]";
  Telemetry.Span.with_ "multigrid.build" (fun () ->
      Telemetry.Counter.incr c_builds;
      let hierarchy = Coarsen.build ?coarse_cutoff ?max_levels ~w ~diag () in
      let depth = Coarsen.depth hierarchy in
      let inv_diags =
        Array.init depth (fun l ->
            let _, d = Coarsen.level hierarchy l in
            Array.map (fun x -> if abs_float x > 1e-300 then 1. /. x else 0.) d)
      in
      let cw, cdiag = Coarsen.level hierarchy (depth - 1) in
      let coarse = coarse_solver_of cw cdiag in
      { hierarchy; inv_diags; smooth_iters; omega; coarse })

let depth t = Coarsen.depth t.hierarchy
let hierarchy t = t.hierarchy

(* [iters] weighted-Jacobi sweeps on A_l x = r, updating x in place *)
let smooth t l ~iters x r =
  let inv = t.inv_diags.(l) in
  let omega = t.omega in
  for _ = 1 to iters do
    let ax = Coarsen.apply t.hierarchy l x in
    for i = 0 to Array.length x - 1 do
      x.(i) <- x.(i) +. (omega *. inv.(i) *. (r.(i) -. ax.(i)))
    done
  done

let rec vcycle t l r =
  let last = Coarsen.depth t.hierarchy - 1 in
  if l = last then
    match t.coarse with
    | Cholesky f -> Linalg.Cholesky.solve_factored f r
    | Smooth ->
        let x = Vec.zeros (Array.length r) in
        smooth t l ~iters:(4 * t.smooth_iters) x r;
        x
  else begin
    let x = Vec.zeros (Array.length r) in
    smooth t l ~iters:t.smooth_iters x r;
    let ax = Coarsen.apply t.hierarchy l x in
    let resid = Vec.sub r ax in
    let rc = Coarsen.restrict t.hierarchy l resid in
    let ec = vcycle t (l + 1) rc in
    let e = Coarsen.prolong t.hierarchy l ec in
    Vec.axpy 1. e x;
    smooth t l ~iters:t.smooth_iters x r;
    x
  end

let precondition t r =
  let _, diag0 = Coarsen.level t.hierarchy 0 in
  if Array.length r <> Array.length diag0 then
    invalid_arg "Multigrid.precondition: length mismatch";
  Telemetry.Counter.incr c_cycles;
  vcycle t 0 r

let operator t =
  let w, diag = Coarsen.level t.hierarchy 0 in
  Linop.of_fun ~dim:(Array.length diag)
    ~diag:(fun () -> Vec.copy diag)
    (fun x -> Csr.lap_mv w ~deg:diag x)

let solve ?x0 ?tol ?max_iter ?should_stop t b =
  Cg.solve ?x0 ?tol ?max_iter ~precond_apply:(precondition t) ?should_stop
    (operator t) b
