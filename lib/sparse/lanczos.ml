module Vec = Linalg.Vec
module Mat = Linalg.Mat

type t = { alphas : Vec.t; betas : Vec.t; basis : Vec.t array }

let c_runs = Telemetry.Counter.make "lanczos.runs"
let c_matvecs = Telemetry.Counter.make "lanczos.matvecs"

(* small local generator so this library stays independent of lib/prng *)
let start_vector seed n =
  let state = ref (Int64.of_int ((seed * 2654435761) + 1)) in
  Array.init n (fun _ ->
      state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
      let bits = Int64.to_float (Int64.shift_right_logical !state 11) in
      (bits /. 9007199254740992.) -. 0.5)

let run ?(seed = 0) ~k (op : Linop.t) =
  let n = op.Linop.dim in
  if k < 1 || k > n then invalid_arg "Lanczos.run: k outside [1, dim]";
  Telemetry.Counter.incr c_runs;
  Telemetry.Span.with_ "lanczos.run" @@ fun () ->
  let alphas = Vec.zeros k and betas = Vec.zeros (Stdlib.max 0 (k - 1)) in
  let basis = Array.make k (Vec.zeros n) in
  let v = start_vector seed n in
  Vec.scale_inplace (1. /. Vec.norm2 v) v;
  basis.(0) <- Vec.copy v;
  let exhausted = ref false in
  for j = 0 to k - 1 do
    if not !exhausted then begin
      Telemetry.Counter.incr c_matvecs;
      let w = op.Linop.apply basis.(j) in
      alphas.(j) <- Vec.dot w basis.(j);
      Vec.axpy (-.alphas.(j)) basis.(j) w;
      if j > 0 then Vec.axpy (-.betas.(j - 1)) basis.(j - 1) w;
      (* full reorthogonalisation against the whole basis *)
      for i = 0 to j do
        Vec.axpy (-.Vec.dot w basis.(i)) basis.(i) w
      done;
      if j < k - 1 then begin
        let norm = Vec.norm2 w in
        if norm < 1e-12 then exhausted := true
        else begin
          betas.(j) <- norm;
          Vec.scale_inplace (1. /. norm) w;
          basis.(j + 1) <- w
        end
      end
    end
  done;
  { alphas; betas; basis }

let tridiagonal { alphas; betas; _ } =
  let k = Array.length alphas in
  Mat.init k k (fun i j ->
      if i = j then alphas.(i)
      else if abs (i - j) = 1 then betas.(Stdlib.min i j)
      else 0.)

let ritz_values t = Linalg.Eigen.eigenvalues (tridiagonal t)

let ritz_pairs t =
  let { Linalg.Eigen.values; vectors } = Linalg.Eigen.jacobi (tridiagonal t) in
  let k = Array.length values in
  let n = Array.length t.basis.(0) in
  Array.init k (fun j ->
      let coeffs = Mat.col vectors j in
      let lifted = Vec.zeros n in
      Array.iteri (fun i b -> Vec.axpy coeffs.(i) b lifted) t.basis;
      (values.(j), lifted))
