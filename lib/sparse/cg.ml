module Vec = Linalg.Vec

type outcome = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  best_residual : float;
  true_residual : float option;
  converged : bool;
  breakdown : bool;
  aborted : bool;
}

let c_solves = Telemetry.Counter.make "cg.solves"
let c_iterations = Telemetry.Counter.make "cg.iterations"
let c_matvecs = Telemetry.Counter.make "cg.matvecs"
let c_converged = Telemetry.Counter.make "cg.converged"

(* operator application, counted so the telemetry report can explain a
   solve's cost in matvecs rather than wall-clock alone *)
let apply (op : Linop.t) x =
  Telemetry.Counter.incr c_matvecs;
  op.Linop.apply x

(* The recurrence residual can drift from the truth in finite precision;
   when stats are on we pay one extra matvec to recompute it honestly.
   [Obs.Health] certificates and the qcheck drift property read it. *)
let recompute_true_residual op b x =
  if !Telemetry.Registry.enabled then Some (Vec.norm2 (Vec.sub b (apply op x)))
  else None

let solve_impl ?x0 ?(tol = 1e-10) ?max_iter ?(precondition = true)
    ?precond_apply ?(should_stop = fun () -> false) (op : Linop.t) b =
  let n = op.Linop.dim in
  if Array.length b <> n then invalid_arg "Cg.solve: length mismatch";
  let max_iter = match max_iter with Some k -> k | None -> 10 * n in
  let x = match x0 with Some v -> Vec.copy v | None -> Vec.zeros n in
  if Option.is_some x0 && Array.length x <> n then
    invalid_arg "Cg.solve: x0 length mismatch";
  Telemetry.Counter.incr c_solves;
  let inv_diag =
    if precondition && Option.is_none precond_apply then
      Some (Array.map (fun d -> if abs_float d > 1e-300 then 1. /. d else 1.) (op.Linop.diag ()))
    else None
  in
  let apply_precond r =
    (* a caller-supplied preconditioner (e.g. a multigrid V-cycle) takes
       precedence over the built-in Jacobi diagonal; it must apply a fixed
       SPD operator for the PCG recurrences to stay valid *)
    match precond_apply with
    | Some f when precondition ->
        let z = f r in
        if Array.length z <> n then
          invalid_arg "Cg.solve: precond_apply changed the dimension";
        z
    | _ -> (
        match inv_diag with None -> Vec.copy r | Some m -> Vec.mul m r)
  in
  let b_norm = Vec.norm2 b in
  if b_norm = 0. then begin
    Telemetry.Counter.incr c_converged;
    { solution = Vec.zeros n; iterations = 0; residual_norm = 0.;
      best_residual = 0.; true_residual = (if !Telemetry.Registry.enabled then Some 0. else None);
      converged = true; breakdown = false; aborted = false }
  end
  else begin
    let threshold = tol *. b_norm in
    (* r = b - A x *)
    let r = Vec.sub b (apply op x) in
    let z = apply_precond r in
    let p = ref (Vec.copy z) in
    let rz = ref (Vec.dot r z) in
    let iterations = ref 0 in
    let res = ref (Vec.norm2 r) in
    let best = ref !res in
    let breakdown = ref false in
    let aborted = ref false in
    Telemetry.Trace.record "cg.residual" !res;
    while
      (not !breakdown) && (not !aborted) && !res > threshold
      && !iterations < max_iter
    do
      (* cooperative cancellation: a deadline-carrying caller can stop the
         iteration between steps instead of waiting out the hard cap *)
      if should_stop () then aborted := true
      else begin
      incr iterations;
      Telemetry.Counter.incr c_iterations;
      let ap = apply op !p in
      let pap = Vec.dot !p ap in
      if pap <= 0. || not (Float.is_finite pap) then
        (* pᵀAp ≤ 0 (or NaN): the operator is not SPD along this search
           direction, so the α update would diverge — stop and report the
           breakdown distinctly from plain non-convergence *)
        breakdown := true
      else begin
        let alpha = !rz /. pap in
        Vec.axpy alpha !p x;
        Vec.axpy (-.alpha) ap r;
        res := Vec.norm2 r;
        if !res < !best then best := !res;
        Telemetry.Trace.record "cg.residual" !res;
        if !res > threshold then begin
          let z = apply_precond r in
          let rz' = Vec.dot r z in
          let beta = rz' /. !rz in
          rz := rz';
          let p' = Vec.copy z in
          Vec.axpy beta !p p';
          p := p'
        end
      end
      end
    done;
    let converged = (not !breakdown) && (not !aborted) && !res <= threshold in
    if converged then Telemetry.Counter.incr c_converged;
    if !breakdown then
      Obs.Event.emit ~severity:Obs.Event.Warning "cg.breakdown"
        [
          ("dim", Obs.Event.Int n);
          ("iterations", Obs.Event.Int !iterations);
          ("residual", Obs.Event.Float !res);
        ];
    if !aborted then
      Obs.Event.emit ~severity:Obs.Event.Warning "cg.abort"
        [
          ("dim", Obs.Event.Int n);
          ("iterations", Obs.Event.Int !iterations);
          ("residual", Obs.Event.Float !res);
        ];
    { solution = x; iterations = !iterations; residual_norm = !res;
      best_residual = !best; true_residual = recompute_true_residual op b x;
      converged; breakdown = !breakdown; aborted = !aborted }
  end

let solve ?x0 ?tol ?max_iter ?precondition ?precond_apply ?should_stop op b =
  Telemetry.Span.with_ "cg.solve" (fun () ->
      (* also a span on the ambient request trace (when a serve-layer
         Trace_ctx is installed), annotated with the solve's outcome *)
      Obs.Trace_ctx.in_span "cg.solve"
        ~fields:[ ("dim", Obs.Event.Int op.Linop.dim) ]
        (fun () ->
          let out =
            solve_impl ?x0 ?tol ?max_iter ?precondition ?precond_apply
              ?should_stop op b
          in
          (* iteration-count distribution, so benches can compare
             preconditioned vs flat solves by iterations, not wall alone *)
          Obs.Histogram.observe "cg.iterations" (float_of_int out.iterations);
          Obs.Trace_ctx.annotate_current
            [
              ("iterations", Obs.Event.Int out.iterations);
              ("converged", Obs.Event.Bool out.converged);
              ("aborted", Obs.Event.Bool out.aborted);
              ("residual", Obs.Event.Float out.residual_norm);
            ];
          out))

let ensure_converged op b (out : outcome) =
  if not out.converged then begin
    let cause =
      if out.breakdown then "non-SPD breakdown (p^T A p <= 0)"
      else if out.aborted then "cooperative abort (should_stop)"
      else "no convergence"
    in
    let n = op.Linop.dim in
    failwith
      (Printf.sprintf
         "Cg.solve_exn: %s on %dx%d system after %d iteration(s) (final residual %g, rhs norm %g)"
         cause n n out.iterations out.residual_norm (Vec.norm2 b))
  end

let solve_exn ?x0 ?tol ?max_iter ?precondition ?precond_apply ?should_stop op b
    =
  let out =
    solve ?x0 ?tol ?max_iter ?precondition ?precond_apply ?should_stop op b
  in
  ensure_converged op b out;
  out.solution
