type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let dims t = (t.rows, t.cols)
let nnz t = Array.length t.values

let of_coo coo =
  let rows, cols = Coo.dims coo in
  (* count entries per row *)
  let counts = Array.make rows 0 in
  Coo.iter (fun i _ _ -> counts.(i) <- counts.(i) + 1) coo;
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + counts.(i)
  done;
  let n = row_ptr.(rows) in
  let col_idx = Array.make n 0 and values = Array.make n 0. in
  let fill = Array.copy row_ptr in
  Coo.iter
    (fun i j v ->
      let k = fill.(i) in
      col_idx.(k) <- j;
      values.(k) <- v;
      fill.(i) <- k + 1)
    coo;
  (* sort each row by column and merge duplicates *)
  let out_col = Array.make n 0 and out_val = Array.make n 0. in
  let out_ptr = Array.make (rows + 1) 0 in
  let pos = ref 0 in
  for i = 0 to rows - 1 do
    out_ptr.(i) <- !pos;
    let lo = row_ptr.(i) and hi = row_ptr.(i + 1) in
    let len = hi - lo in
    if len > 0 then begin
      let order = Array.init len (fun k -> lo + k) in
      Array.sort (fun a b -> compare col_idx.(a) col_idx.(b)) order;
      let prev = ref (-1) in
      Array.iter
        (fun k ->
          let c = col_idx.(k) in
          if c = !prev then out_val.(!pos - 1) <- out_val.(!pos - 1) +. values.(k)
          else begin
            out_col.(!pos) <- c;
            out_val.(!pos) <- values.(k);
            incr pos;
            prev := c
          end)
        order
    end
  done;
  out_ptr.(rows) <- !pos;
  {
    rows;
    cols;
    row_ptr = out_ptr;
    col_idx = Array.sub out_col 0 !pos;
    values = Array.sub out_val 0 !pos;
  }

let of_dense ?threshold m = of_coo (Coo.of_dense ?threshold m)

let to_dense t =
  let m = Linalg.Mat.zeros t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Linalg.Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Csr.get: index out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let c_matvec = Telemetry.Counter.make "sparse.matvecs"
let c_flops = Telemetry.Counter.make "sparse.flops"

(* Rows are independent, so SpMV fans out over row panels when
   Parallel.Autotune decides the work amortises the pool dispatch; each
   row's accumulation order is unchanged, so the result is bit-identical
   to the serial loop for any domain count and any tune mode. *)
let spmv_dispatch t rows_body =
  let { Parallel.Autotune.parallel = go_par; grain } =
    Parallel.Autotune.plan Parallel.Autotune.Spmv ~work:(nnz t) ~rows:t.rows
  in
  if go_par then Parallel.Pool.run ?grain t.rows rows_body
  else rows_body 0 t.rows

let mv t x =
  if Array.length x <> t.cols then invalid_arg "Csr.mv: length mismatch";
  Telemetry.Counter.incr c_matvec;
  Telemetry.Counter.add c_flops (2 * nnz t);
  let y = Array.make t.rows 0. in
  let rows lo hi =
    for i = lo to hi - 1 do
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      y.(i) <- !acc
    done
  in
  spmv_dispatch t rows;
  y

(* Fused graph-Laplacian products: the degree scaling (and, for the
   soft criterion, the labeled-block identity and the lambda weight)
   are applied in the same row pass as the W.x accumulation, so the
   operator costs one sweep and no intermediate vector.  Per row the
   W.x accumulation order matches [mv] exactly and the combination
   mirrors the unfused [vdiag_i*x_i + lambda*(deg_i*x_i - (Wx)_i)]
   expression, so the fused result is bit-identical to the composed
   one. *)

let lap_mv t ~deg x =
  if Array.length x <> t.cols then invalid_arg "Csr.lap_mv: length mismatch";
  if Array.length deg <> t.rows then
    invalid_arg "Csr.lap_mv: degree length mismatch";
  Telemetry.Counter.incr c_matvec;
  Telemetry.Counter.add c_flops ((2 * nnz t) + (2 * t.rows));
  let y = Array.make t.rows 0. in
  let rows lo hi =
    for i = lo to hi - 1 do
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      y.(i) <- (deg.(i) *. x.(i)) -. !acc
    done
  in
  spmv_dispatch t rows;
  y

let fused_lap_mv t ~deg ~vdiag ~lambda x =
  if Array.length x <> t.cols then
    invalid_arg "Csr.fused_lap_mv: length mismatch";
  if Array.length deg <> t.rows then
    invalid_arg "Csr.fused_lap_mv: degree length mismatch";
  if Array.length vdiag <> t.rows then
    invalid_arg "Csr.fused_lap_mv: vdiag length mismatch";
  Telemetry.Counter.incr c_matvec;
  Telemetry.Counter.add c_flops ((2 * nnz t) + (4 * t.rows));
  let y = Array.make t.rows 0. in
  let rows lo hi =
    for i = lo to hi - 1 do
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      y.(i) <- (vdiag.(i) *. x.(i)) +. (lambda *. ((deg.(i) *. x.(i)) -. !acc))
    done
  in
  spmv_dispatch t rows;
  y

let tmv t x =
  if Array.length x <> t.rows then invalid_arg "Csr.tmv: length mismatch";
  Telemetry.Counter.incr c_matvec;
  Telemetry.Counter.add c_flops (2 * nnz t);
  let y = Array.make t.cols 0. in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (t.values.(k) *. xi)
      done
  done;
  y

let transpose t =
  let coo = Coo.create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Coo.add coo t.col_idx.(k) i t.values.(k)
    done
  done;
  of_coo coo

let scale s t = { t with values = Array.map (fun v -> s *. v) t.values }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Csr.add: dimension mismatch";
  let coo = Coo.create a.rows a.cols in
  let pour t =
    for i = 0 to t.rows - 1 do
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        Coo.add coo i t.col_idx.(k) t.values.(k)
      done
    done
  in
  pour a;
  pour b;
  of_coo coo

let diagonal t =
  let n = Stdlib.min t.rows t.cols in
  Array.init n (fun i -> get t i i)

let row_sums t =
  Array.init t.rows (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. t.values.(k)
      done;
      !acc)

let map_values f t = { t with values = Array.map f t.values }

let iter_row t i f =
  if i < 0 || i >= t.rows then invalid_arg "Csr.iter_row: index out of bounds";
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let is_symmetric ?(tol = 1e-9) t =
  t.rows = t.cols
  &&
  let ok = ref true in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      if abs_float (t.values.(k) -. get t j i) > tol then ok := false
    done
  done;
  !ok
