module Vec = Linalg.Vec

(* Heavy-edge-matching graph coarsening.

   Every level stores the operator A = diag(diag) − W in the same
   (off-diagonal weights, diagonal vector) form [Csr.lap_mv] consumes,
   so the whole hierarchy is applied without ever assembling a
   Laplacian.  The transfer operators are piecewise-constant
   aggregation: P(i, c) = 1 when fine vertex i belongs to aggregate c,
   restriction is Pᵀ, and the coarse operator is the Galerkin product
   PᵀAP — computed directly in (W, diag) form:

     W_c(c, c')  = Σ  w_ij   over cross pairs  i ∈ c, j ∈ c'
     diag_c(c)   = Σ diag_i  −  2 · Σ w_uv     over intra pairs u, v ∈ c

   which conserves the total mass 1ᵀA1 exactly at every level. *)

let c_levels = Telemetry.Counter.make "sparse.coarsen.levels"
let c_matched = Telemetry.Counter.make "sparse.coarsen.matched_pairs"

type graph = { w : Csr.t; diag : Vec.t }

type t = {
  graphs : graph array;  (* finest first *)
  maps : int array array;  (* maps.(l) : level l vertex -> level l+1 aggregate *)
}

(* Greedy heavy-edge matching in ascending vertex order: each unmatched
   vertex pairs with its heaviest unmatched neighbour (first-seen, i.e.
   smallest index, on exact weight ties).  Deterministic by
   construction. *)
let heavy_edge_matching w n =
  let mate = Array.make n (-1) in
  for i = 0 to n - 1 do
    if mate.(i) < 0 then begin
      let best = ref (-1) and best_w = ref 0. in
      Csr.iter_row w i (fun j wij ->
          if j <> i && mate.(j) < 0 && wij > !best_w then begin
            best := j;
            best_w := wij
          end);
      if !best >= 0 then begin
        mate.(i) <- !best;
        mate.(!best) <- i
      end
    end
  done;
  mate

(* Aggregates larger than this stop adopting singletons: hub-shaped
   graphs would otherwise collapse whole stars into one aggregate,
   which coarsens fast but destroys the coarse operator's locality. *)
let max_aggregate = 8

let coarsen_once { w; diag } =
  let n = Array.length diag in
  let mate = heavy_edge_matching w n in
  let cmap = Array.make n (-1) in
  let next = ref 0 in
  let matched = ref 0 in
  (* pair aggregates first, ids in ascending order of the lower mate *)
  for i = 0 to n - 1 do
    if cmap.(i) < 0 && mate.(i) >= 0 then begin
      cmap.(i) <- !next;
      cmap.(mate.(i)) <- !next;
      incr matched;
      incr next
    end
  done;
  let pairs = !next in
  (* Aggregation rescue.  The unmatched vertices form an independent
     set (greedy matching is maximal), which on hub-dominated coarse
     graphs is most of the level — pure pair matching then stagnates
     far above the coarse cutoff.  Every neighbour of an unmatched
     vertex is matched, so each singleton can join its heaviest
     neighbour's pair aggregate instead (bounded by [max_aggregate]);
     the Galerkin product below is already written for arbitrary
     aggregate sizes, so symmetry, PSD-ness, zero row sums, and the
     total mass are conserved exactly as for pairs. *)
  let size = Array.make (Stdlib.max 1 pairs) 2 in
  for i = 0 to n - 1 do
    if cmap.(i) < 0 then begin
      let best = ref (-1) and best_w = ref 0. in
      Csr.iter_row w i (fun j wij ->
          if j <> i && wij > !best_w then begin
            let cj = cmap.(j) in
            if cj >= 0 && size.(cj) < max_aggregate then begin
              best := cj;
              best_w := wij
            end
          end);
      if !best >= 0 then begin
        cmap.(i) <- !best;
        size.(!best) <- size.(!best) + 1
      end
    end
  done;
  (* leftovers (isolated vertices, or all candidate aggregates full)
     stay as singleton aggregates *)
  for i = 0 to n - 1 do
    if cmap.(i) < 0 then begin
      cmap.(i) <- !next;
      incr next
    end
  done;
  let nc = !next in
  Telemetry.Counter.add c_matched !matched;
  let cdiag = Vec.zeros nc in
  for i = 0 to n - 1 do
    cdiag.(cmap.(i)) <- cdiag.(cmap.(i)) +. diag.(i)
  done;
  let coo = Coo.create nc nc in
  for i = 0 to n - 1 do
    Csr.iter_row w i (fun j wij ->
        if j > i then begin
          let ci = cmap.(i) and cj = cmap.(j) in
          if ci = cj then
            (* intra-aggregate edge: absorbed into the diagonal *)
            cdiag.(ci) <- cdiag.(ci) -. (2. *. wij)
          else begin
            Coo.add coo ci cj wij;
            Coo.add coo cj ci wij
          end
        end)
  done;
  ({ w = Csr.of_coo coo; diag = cdiag }, cmap, nc)

let build ?(coarse_cutoff = 64) ?(max_levels = 25) ?(min_shrink = 0.95) ~w
    ~diag () =
  let rows, cols = Csr.dims w in
  let n = Array.length diag in
  if rows <> cols then invalid_arg "Coarsen.build: W must be square";
  if rows <> n then invalid_arg "Coarsen.build: diag length mismatch";
  if coarse_cutoff < 1 then invalid_arg "Coarsen.build: coarse_cutoff >= 1";
  if max_levels < 1 then invalid_arg "Coarsen.build: max_levels >= 1";
  if min_shrink <= 0. || min_shrink > 1. then
    invalid_arg "Coarsen.build: min_shrink in (0, 1]";
  Telemetry.Span.with_ "coarsen.build" (fun () ->
      let graphs = ref [ { w; diag } ] in
      let maps = ref [] in
      let continue = ref true in
      while !continue do
        let g = List.hd !graphs in
        let cur_n = Array.length g.diag in
        if cur_n <= coarse_cutoff || List.length !graphs >= max_levels then
          continue := false
        else begin
          let gc, cmap, nc = coarsen_once g in
          (* stagnation guard: a matching that barely shrinks the graph
             (edge-free or near-edge-free level) cannot make progress *)
          if float_of_int nc > min_shrink *. float_of_int cur_n then
            continue := false
          else begin
            graphs := gc :: !graphs;
            maps := cmap :: !maps
          end
        end
      done;
      let t =
        {
          graphs = Array.of_list (List.rev !graphs);
          maps = Array.of_list (List.rev !maps);
        }
      in
      Telemetry.Counter.add c_levels (Array.length t.graphs);
      t)

let depth t = Array.length t.graphs

let level t l =
  if l < 0 || l >= Array.length t.graphs then
    invalid_arg "Coarsen.level: out of range";
  let g = t.graphs.(l) in
  (g.w, g.diag)

let level_size t l =
  if l < 0 || l >= Array.length t.graphs then
    invalid_arg "Coarsen.level_size: out of range";
  Array.length t.graphs.(l).diag

let map_at t l =
  if l < 0 || l >= Array.length t.maps then
    invalid_arg "Coarsen.map_at: out of range";
  t.maps.(l)

let apply t l x =
  let g = t.graphs.(l) in
  Csr.lap_mv g.w ~deg:g.diag x

let restrict t l x =
  if l < 0 || l >= Array.length t.maps then
    invalid_arg "Coarsen.restrict: out of range";
  let cmap = t.maps.(l) in
  if Array.length x <> Array.length cmap then
    invalid_arg "Coarsen.restrict: length mismatch";
  let out = Vec.zeros (Array.length t.graphs.(l + 1).diag) in
  Array.iteri (fun i c -> out.(c) <- out.(c) +. x.(i)) cmap;
  out

let prolong t l xc =
  if l < 0 || l >= Array.length t.maps then
    invalid_arg "Coarsen.prolong: out of range";
  let cmap = t.maps.(l) in
  if Array.length xc <> Array.length t.graphs.(l + 1).diag then
    invalid_arg "Coarsen.prolong: length mismatch";
  Array.map (fun c -> xc.(c)) cmap
