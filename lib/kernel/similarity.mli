(** Similarity-matrix (weighted-graph) construction.

    [W = [w_ij]] with [w_ij = K((X_i − X_j)/h)] is the object the paper
    calls the similarity (kernel) matrix.  Self-similarities [w_ii] are
    K(0) — the paper's RBF gives [w_ii = 1]; they cancel in the Laplacian
    but matter for [D₂₂], so they are kept.

    Dense construction is O(n²); [knn] and [epsilon] produce sparse
    (symmetrised) graphs for the ablation benches. *)

val dense :
  kernel:Kernel_fn.t -> bandwidth:float -> Linalg.Vec.t array -> Linalg.Mat.t
(** Full symmetric similarity matrix.  Raises [Invalid_argument] on empty
    or ragged input, or non-positive bandwidth. *)

val dense_of_sq_distances :
  kernel:Kernel_fn.t -> bandwidth:float -> Linalg.Mat.t -> Linalg.Mat.t
(** Apply the kernel entrywise to a precomputed squared-distance matrix —
    used when several bandwidths are swept over one dataset. *)

val knn :
  kernel:Kernel_fn.t ->
  bandwidth:float ->
  k:int ->
  Linalg.Vec.t array ->
  Sparse.Csr.t
(** Mutual-or symmetrised kNN graph: [w_ij] is kept when [j] is among the
    [k] nearest of [i] *or* vice versa; the matrix is symmetric.  Diagonal
    entries are kept (self-similarity).  Raises [Invalid_argument] if
    [k <= 0] or [k >= n]. *)

type knn_info =
  | Exact  (** the exact [knn] path answered (small [n]) *)
  | Approximate of {
      recall : float;  (** measured on the ANN probe sample *)
      probes : int;  (** final leaf-visit budget per query *)
      escalations : int;
      trees : int;
    }

val knn_approx :
  kernel:Kernel_fn.t ->
  bandwidth:float ->
  k:int ->
  ?seed:int ->
  ?trees:int ->
  ?recall_target:float ->
  ?exact_cutoff:int ->
  Linalg.Vec.t array ->
  Sparse.Csr.t * knn_info
(** Scalable variant of {!knn}: inputs at or below [exact_cutoff]
    points (default 2048) take the exact path and return [Exact];
    larger inputs build the graph from [Graph.Ann] approximate
    neighbour lists (randomized projection trees with multi-probe
    search, escalated until the measured recall reaches
    [recall_target], default 0.9) with an O(n·k)-memory
    symmetrisation — never the O(n²) boolean matrix of the exact path.
    The result is exactly symmetric with K(0) self-similarities on the
    diagonal, matching {!knn}'s conventions, and deterministic for any
    domain count.  Raises [Invalid_argument] under {!knn}'s
    conditions. *)

val epsilon :
  kernel:Kernel_fn.t ->
  bandwidth:float ->
  radius:float ->
  Linalg.Vec.t array ->
  Sparse.Csr.t
(** ε-neighbourhood graph: keep pairs with [‖x_i − x_j‖ ≤ radius].
    Raises [Invalid_argument] if [radius < 0]. *)
