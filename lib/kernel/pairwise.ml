module Vec = Linalg.Vec
module Mat = Linalg.Mat

(* The O(N²) passes below fan out over the domain pool when
   Parallel.Autotune (work measure n²) says the dispatch pays; every
   matrix cell / neighbour list is computed independently, so the
   outputs are bit-identical to the serial loops for any domain count
   and any tune mode. *)
let plan_pairwise n =
  Parallel.Autotune.plan Parallel.Autotune.Pairwise ~work:(n * n) ~rows:n

let validate points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Pairwise: empty data";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Pairwise: ragged data")
    points;
  (n, d)

let sq_distance_matrix points =
  let n, _d = validate points in
  let sq_norms = Array.map Vec.norm2_sq points in
  let m = Mat.zeros n n in
  (* row i owns the pairs (i, j) with j > i, so chunks over i write
     disjoint cells — (i, j) and its mirror (j, i) both belong to the
     chunk holding the smaller index *)
  let rows lo hi =
    for i = lo to hi - 1 do
      for j = i + 1 to n - 1 do
        let d2 =
          sq_norms.(i) +. sq_norms.(j) -. (2. *. Vec.dot points.(i) points.(j))
        in
        let d2 = if d2 > 0. then d2 else 0. in
        Mat.set m i j d2;
        Mat.set m j i d2
      done
    done
  in
  (let { Parallel.Autotune.parallel = go_par; grain } = plan_pairwise n in
   if go_par then
     (* small grain: the triangular loop makes early rows much heavier
        than late ones, and many small chunks let the pool absorb that *)
     let grain =
       match grain with Some g -> g | None -> Stdlib.max 1 ((n + 255) / 256)
     in
     Parallel.Pool.run ~grain n rows
   else rows 0 n);
  m

let sq_distances_to points query =
  let n, d = validate points in
  if Array.length query <> d then invalid_arg "Pairwise.sq_distances_to: dimension mismatch";
  Array.init n (fun i -> Vec.dist2_sq points.(i) query)

let k_nearest_unchecked points n k i =
  let d2 = Array.init n (fun j -> Vec.dist2_sq points.(j) points.(i)) in
  let order = Array.init n (fun j -> j) in
  Array.sort (fun a b -> compare d2.(a) d2.(b)) order;
  (* drop self (distance 0 comes first; with exact duplicates, drop index i
     wherever it landed) *)
  let out = Array.make k 0 in
  let filled = ref 0 and pos = ref 0 in
  while !filled < k do
    let j = order.(!pos) in
    if j <> i then begin
      out.(!filled) <- j;
      incr filled
    end;
    incr pos
  done;
  out

let k_nearest points k i =
  let n, _ = validate points in
  if i < 0 || i >= n then invalid_arg "Pairwise.k_nearest: index out of range";
  if k < 0 || k >= n then invalid_arg "Pairwise.k_nearest: k must be < n";
  k_nearest_unchecked points n k i

let all_k_nearest points k =
  let n, _ = validate points in
  if k < 0 || k >= n then invalid_arg "Pairwise.all_k_nearest: k must be < n";
  let out = Array.make n [||] in
  let rows lo hi =
    for i = lo to hi - 1 do
      out.(i) <- k_nearest_unchecked points n k i
    done
  in
  (let { Parallel.Autotune.parallel = go_par; grain } = plan_pairwise n in
   if go_par then Parallel.Pool.run ?grain n rows else rows 0 n);
  out
