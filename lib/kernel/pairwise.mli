(** Pairwise-distance computations shared by the similarity builders. *)

val sq_distance_matrix : Linalg.Vec.t array -> Linalg.Mat.t
(** [n]×[n] matrix of squared Euclidean distances, computed via the
    Gram-matrix identity [‖x−y‖² = ‖x‖² + ‖y‖² − 2⟨x,y⟩] (O(n²d) with a
    cache-friendly inner product).  Exact zeros on the diagonal; negative
    rounding artefacts are clamped to 0.  Raises [Invalid_argument] on
    empty or ragged input.  For [n ≥ 64] the row loop fans out over the
    {!Parallel.Pool} — every cell is computed independently, so the
    matrix is bit-identical to the serial loop for any domain count. *)

val sq_distances_to : Linalg.Vec.t array -> Linalg.Vec.t -> Linalg.Vec.t
(** Squared distances from every row point to one query point. *)

val k_nearest : Linalg.Vec.t array -> int -> int -> int array
(** [k_nearest points k i] — indices of the [k] nearest neighbours of
    point [i] (excluding [i] itself), nearest first.  Raises
    [Invalid_argument] if [k] ≥ number of points or [i] out of range. *)

val all_k_nearest : Linalg.Vec.t array -> int -> int array array
(** [all_k_nearest points k] — the neighbour list of every point at
    once: entry [i] equals [k_nearest points k i].  This is the O(N²
    log N) pass behind kNN graph construction; for [≥ 64] points the
    per-point searches run on the {!Parallel.Pool} (each list is
    computed independently, so the result is bit-identical to the
    serial loop for any domain count). *)
