module Mat = Linalg.Mat

let dense ~kernel ~bandwidth points =
  let d2 = Pairwise.sq_distance_matrix points in
  Mat.map (fun v -> Kernel_fn.eval_sq_dist kernel ~bandwidth v) d2

let dense_of_sq_distances ~kernel ~bandwidth d2 =
  Mat.map (fun v -> Kernel_fn.eval_sq_dist kernel ~bandwidth v) d2

let knn ~kernel ~bandwidth ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Similarity.knn: empty data";
  if k <= 0 || k >= n then invalid_arg "Similarity.knn: k must lie in [1, n-1]";
  (* the O(n² log n) neighbour searches run on the domain pool; the
     symmetrisation below stays serial because it writes across rows *)
  let neighbours = Pairwise.all_k_nearest points k in
  let keep = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    keep.(i).(i) <- true;
    Array.iter
      (fun j ->
        keep.(i).(j) <- true;
        keep.(j).(i) <- true)
      neighbours.(i)
  done;
  let coo = Sparse.Coo.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if keep.(i).(j) then
        Sparse.Coo.add coo i j
          (Kernel_fn.eval kernel ~bandwidth points.(i) points.(j))
    done
  done;
  Sparse.Csr.of_coo coo

type knn_info =
  | Exact
  | Approximate of {
      recall : float;
      probes : int;
      escalations : int;
      trees : int;
    }

let knn_approx ~kernel ~bandwidth ~k ?seed ?trees ?recall_target
    ?(exact_cutoff = 2048) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Similarity.knn_approx: empty data";
  if k <= 0 || k >= n then
    invalid_arg "Similarity.knn_approx: k must lie in [1, n-1]";
  if n <= exact_cutoff then (knn ~kernel ~bandwidth ~k points, Exact)
  else begin
    let nb, info =
      Graph.Ann.all_k_nearest ?seed ?trees ?recall_target ~exact_cutoff
        points k
    in
    (* sparse mutual-or symmetrisation: the union adjacency is laid out
       in one flat counting-sort pass (O(n·k) memory, never the O(n²)
       boolean matrix of the exact path), then each row segment is
       sorted and deduplicated.  Each unordered pair's weight is
       evaluated once and written to both triangles, so the matrix is
       exactly symmetric. *)
    let cnt = Array.make n 0 in
    Array.iteri
      (fun i nbi ->
        Array.iter
          (fun j ->
            cnt.(i) <- cnt.(i) + 1;
            cnt.(j) <- cnt.(j) + 1)
          nbi)
      nb;
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + cnt.(i)
    done;
    let adj = Array.make off.(n) 0 in
    let cursor = Array.sub off 0 n in
    Array.iteri
      (fun i nbi ->
        Array.iter
          (fun j ->
            adj.(cursor.(i)) <- j;
            cursor.(i) <- cursor.(i) + 1;
            adj.(cursor.(j)) <- i;
            cursor.(j) <- cursor.(j) + 1)
          nbi)
      nb;
    let coo = Sparse.Coo.create n n in
    for i = 0 to n - 1 do
      Sparse.Coo.add coo i i
        (Kernel_fn.eval kernel ~bandwidth points.(i) points.(i));
      let seg = Array.sub adj off.(i) cnt.(i) in
      Array.sort compare seg;
      let prev = ref (-1) in
      Array.iter
        (fun j ->
          if j <> !prev then begin
            prev := j;
            if j > i then begin
              let w = Kernel_fn.eval kernel ~bandwidth points.(i) points.(j) in
              Sparse.Coo.add coo i j w;
              Sparse.Coo.add coo j i w
            end
          end)
        seg
    done;
    ( Sparse.Csr.of_coo coo,
      Approximate
        {
          recall = info.Graph.Ann.recall;
          probes = info.Graph.Ann.probes;
          escalations = info.Graph.Ann.escalations;
          trees = info.Graph.Ann.trees;
        } )
  end

let epsilon ~kernel ~bandwidth ~radius points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Similarity.epsilon: empty data";
  if radius < 0. then invalid_arg "Similarity.epsilon: negative radius";
  let r2 = radius *. radius in
  let coo = Sparse.Coo.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d2 = Linalg.Vec.dist2_sq points.(i) points.(j) in
      if d2 <= r2 then
        Sparse.Coo.add coo i j (Kernel_fn.eval_sq_dist kernel ~bandwidth d2)
    done
  done;
  Sparse.Csr.of_coo coo
