module Mat = Linalg.Mat

let dense ~kernel ~bandwidth points =
  let d2 = Pairwise.sq_distance_matrix points in
  Mat.map (fun v -> Kernel_fn.eval_sq_dist kernel ~bandwidth v) d2

let dense_of_sq_distances ~kernel ~bandwidth d2 =
  Mat.map (fun v -> Kernel_fn.eval_sq_dist kernel ~bandwidth v) d2

let knn ~kernel ~bandwidth ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Similarity.knn: empty data";
  if k <= 0 || k >= n then invalid_arg "Similarity.knn: k must lie in [1, n-1]";
  (* the O(n² log n) neighbour searches run on the domain pool; the
     symmetrisation below stays serial because it writes across rows *)
  let neighbours = Pairwise.all_k_nearest points k in
  let keep = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    keep.(i).(i) <- true;
    Array.iter
      (fun j ->
        keep.(i).(j) <- true;
        keep.(j).(i) <- true)
      neighbours.(i)
  done;
  let coo = Sparse.Coo.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if keep.(i).(j) then
        Sparse.Coo.add coo i j
          (Kernel_fn.eval kernel ~bandwidth points.(i) points.(j))
    done
  done;
  Sparse.Csr.of_coo coo

let epsilon ~kernel ~bandwidth ~radius points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Similarity.epsilon: empty data";
  if radius < 0. then invalid_arg "Similarity.epsilon: negative radius";
  let r2 = radius *. radius in
  let coo = Sparse.Coo.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d2 = Linalg.Vec.dist2_sq points.(i) points.(j) in
      if d2 <= r2 then
        Sparse.Coo.add coo i j (Kernel_fn.eval_sq_dist kernel ~bandwidth d2)
    done
  done;
  Sparse.Csr.of_coo coo
