(* Command-line driver for the reproduction: one subcommand per figure of
   the paper, plus the toy example, the consistency probe, the complexity
   table, and the ablation studies.  `repro all` runs everything. *)

open Cmdliner

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

(* Writing to a consumer that vanished (`repro top --watch | head`,
   `repro journal ... | less` quit early) raises EPIPE / Sys_error
   "Broken pipe" out of print_*.  For a viewer that is a normal way to
   stop reading, so commands that stream to stdout wrap their body in
   this and exit 0 instead of dumping a backtrace. *)
let exit0_on_epipe f =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let is_broken_pipe msg =
    let needle = "roken pipe" in
    let n = String.length needle and m = String.length msg in
    let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
    scan 0
  in
  (* Plain [exit 0] would run at_exit hooks, and
     Format.flush_standard_formatters would raise a second Sys_error
     against the same dead pipe — escaping into Cmdliner's catch as an
     "internal error".  The consumer is gone, so skip the flushes. *)
  let quiet_exit () =
    (try flush stderr with Sys_error _ -> ());
    Unix._exit 0
  in
  try f () with
  | Sys_error msg when is_broken_pipe msg -> quiet_exit ()
  | Unix.Unix_error (Unix.EPIPE, _, _) -> quiet_exit ()

(* --profile / --profile-json: run the command with the telemetry
   subsystem enabled and report where the time and the solver work went. *)

let profile_arg =
  let doc =
    "Enable the telemetry subsystem (timers, counters, solver traces) and \
     print a per-phase timing/counter report after the run."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let profile_json_arg =
  let doc =
    "Like $(b,--profile), but additionally write the full telemetry \
     snapshot as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "profile-json" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Capture every completed telemetry span as a Chrome trace-event JSON \
     file at $(docv) (open it in chrome://tracing or Perfetto).  Implies \
     enabling the telemetry subsystem."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let write_trace path =
  Obs.Chrome_trace.write path;
  Printf.printf "(chrome trace written to %s; %d span event(s))\n" path
    (Obs.Chrome_trace.n_events ());
  Obs.Chrome_trace.stop ()

let with_profile profile json_path trace_out f =
  if (not profile) && json_path = None && trace_out = None then f ()
  else begin
    Telemetry.Registry.enable ();
    Telemetry.Registry.reset ();
    if profile then Obs.Histogram.attach_to_spans ();
    if trace_out <> None then Obs.Chrome_trace.start ();
    Fun.protect
      ~finally:(fun () ->
        (match trace_out with None -> () | Some path -> write_trace path);
        (match json_path with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Telemetry.Export.to_json ());
            output_char oc '\n';
            close_out oc;
            Printf.printf "(telemetry json written to %s)\n" path);
        if profile then begin
          print_newline ();
          print_string (Telemetry.Export.to_text ());
          print_string (Obs.Histogram.to_text ())
        end;
        Telemetry.Registry.disable ();
        Telemetry.Registry.reset ())
      f
  end

let print_figure ~markdown ~plot ~svg fig =
  if markdown then print_string (Experiment.Report.figure_markdown fig)
  else begin
    print_string (Experiment.Table.of_figure fig);
    print_newline ();
    if plot then print_string (Experiment.Ascii_plot.render fig)
  end;
  (match svg with
  | None -> ()
  | Some path ->
      Experiment.Svg_plot.write_file path fig;
      Printf.printf "(svg written to %s)\n" path);
  print_newline ()

(* common options *)

let reps_arg default =
  let doc =
    "Number of replications per grid point (paper scale: 1000 for Figs 1-4, \
     100 for Fig 5)."
  in
  Arg.(value & opt int default & info [ "reps" ] ~docv:"REPS" ~doc)

let seed_arg default =
  let doc = "Master random seed (runs are bit-reproducible per seed)." in
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc)

let markdown_arg =
  let doc = "Emit a markdown table instead of the ASCII table + plot." in
  Arg.(value & flag & info [ "markdown" ] ~doc)

let no_plot_arg =
  let doc = "Suppress the ASCII plot." in
  Arg.(value & flag & info [ "no-plot" ] ~doc)

let svg_arg =
  let doc = "Also write the figure as an SVG chart to $(docv)." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let domains_arg =
  let doc =
    "Run the replication grid and the parallel compute kernels on $(docv) \
     OCaml domains (results are bit-identical regardless of the count; 0 = \
     auto-detect)."
  in
  Arg.(
    value
    & opt int 1
    & info [ "domains"; "j" ] ~docv:"D" ~doc
        ~env:(Cmd.Env.info "GSSL_DOMAINS"))

let tune_arg =
  let doc =
    "Kernel dispatch tuning: $(b,off) keeps the static work thresholds, \
     $(b,serial) / $(b,parallel) force every pooled kernel one way, and any \
     other value is a cost-model cache file — calibrated and written on \
     first use, loaded (and therefore bit-deterministic) afterwards."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "tune"; "tune-cache" ] ~docv:"MODE|FILE" ~doc
        ~env:(Cmd.Env.info "GSSL_TUNE"))

let resolve_tune = function
  | None -> ()
  | Some spec ->
      let open Parallel.Autotune in
      let mode =
        match spec with
        | "" | "off" -> Static
        | "serial" -> Serial
        | "parallel" -> Parallel
        | path ->
            if Sys.file_exists path then Calibrated (load path)
            else begin
              let m = calibrate () in
              (try save path m with Sys_error _ -> ());
              Calibrated m
            end
      in
      set_mode mode

(* One knob steers both layers: the sweep grid gets the count explicitly,
   and the default pool (used by gemm / spmv / pairwise / Jacobi) is
   resized to match. *)
let resolve_domains d =
  let d = if d = 0 then Domain.recommended_domain_count () else d in
  Parallel.Pool.set_default_domains d;
  d

let run_synthetic make reps seed domains tune markdown no_plot svg profile profile_json trace_out =
  setup_logs ();
  let domains = resolve_domains domains in
  (* after the pool: a fresh calibration should probe the chosen width *)
  resolve_tune tune;
  with_profile profile profile_json trace_out (fun () ->
      print_figure ~markdown ~plot:(not no_plot) ~svg
        (make ~domains ~reps ~seed ()))

let synthetic_cmd name default_seed make ~doc =
  let term =
    Term.(
      const (run_synthetic (fun ~domains ~reps ~seed () -> make ~domains ~reps ~seed ()))
      $ reps_arg 10 $ seed_arg default_seed $ domains_arg $ tune_arg
      $ markdown_arg $ no_plot_arg $ svg_arg $ profile_arg $ profile_json_arg
      $ trace_out_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

let fig1_cmd =
  synthetic_cmd "fig1" 1
    (fun ~domains ~reps ~seed () -> Experiment.Figures.fig1 ~domains ~reps ~seed ())
    ~doc:"Figure 1: RMSE vs n, Model 1 (linear logit), m=30."

let fig2_cmd =
  synthetic_cmd "fig2" 2
    (fun ~domains ~reps ~seed () -> Experiment.Figures.fig2 ~domains ~reps ~seed ())
    ~doc:"Figure 2: RMSE vs m, Model 1, n=100."

let fig3_cmd =
  synthetic_cmd "fig3" 3
    (fun ~domains ~reps ~seed () -> Experiment.Figures.fig3 ~domains ~reps ~seed ())
    ~doc:"Figure 3: RMSE vs n, Model 2 (non-linear logit), m=30."

let fig4_cmd =
  synthetic_cmd "fig4" 4
    (fun ~domains ~reps ~seed () -> Experiment.Figures.fig4 ~domains ~reps ~seed ())
    ~doc:"Figure 4: RMSE vs m, Model 2, n=100."

let fig5_cmd =
  let size_arg =
    let doc =
      "Number of images to keep from the simulated COIL dataset (paper: 1500)."
    in
    Arg.(value & opt int 1500 & info [ "size" ] ~docv:"N" ~doc)
  in
  let run reps seed size markdown no_plot svg profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        print_figure ~markdown ~plot:(not no_plot) ~svg
          (Experiment.Figures.fig5 ~reps ~seed ~dataset_size:size ()))
  in
  let term =
    Term.(
      const run $ reps_arg 1 $ seed_arg 5 $ size_arg $ markdown_arg $ no_plot_arg
      $ svg_arg $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:
         "Figure 5: AUC vs lambda on the simulated COIL benchmark, three \
          labeled ratios.")
    term

let toy_cmd =
  let n_arg = Arg.(value & opt int 20 & info [ "n" ] ~docv:"N" ~doc:"Labeled count.") in
  let m_arg = Arg.(value & opt int 10 & info [ "m" ] ~docv:"M" ~doc:"Unlabeled count.") in
  let run n m seed profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        print_string (Experiment.Figures.toy_demo ~n ~m ~seed))
  in
  let term =
    Term.(const run $ n_arg $ m_arg $ seed_arg 42 $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "toy"
       ~doc:"Section III toy example: closed-form checks on constant inputs.")
    term

let consistency_cmd =
  let run seed markdown no_plot svg profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        print_figure ~markdown ~plot:(not no_plot) ~svg
          (Experiment.Figures.consistency_demo ~seed ()))
  in
  let term =
    Term.(
      const run $ seed_arg 11 $ markdown_arg $ no_plot_arg $ svg_arg
      $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "consistency"
       ~doc:"Theorem II.1 probe: sup-norm errors of hard / NW / soft as n grows.")
    term

let complexity_cmd =
  let run seed profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        print_string (Experiment.Figures.complexity_table ~seed ()))
  in
  let term = Term.(const run $ seed_arg 13 $ profile_arg $ profile_json_arg $ trace_out_arg) in
  Cmd.v
    (Cmd.info "complexity"
       ~doc:
         "Proposition II.1 complexity remark: hard O(m^3) vs soft O((n+m)^3) \
          timings.")
    term

(* ablations *)

type ablation = Kernel | Regime | Cv | Nystrom | Active

let ablation_conv =
  Arg.enum
    [
      ("kernel", Kernel); ("regime", Regime); ("cv", Cv); ("nystrom", Nystrom);
      ("active", Active);
    ]

let run_ablation which reps seed markdown no_plot svg profile profile_json trace_out =
  setup_logs ();
  with_profile profile profile_json trace_out (fun () ->
      let fig =
        match which with
        | Kernel -> Experiment.Ablations.kernel_study ~reps ~seed ()
        | Regime -> Experiment.Ablations.regime_study ~reps ~seed ()
        | Cv -> Experiment.Ablations.cv_study ~reps ~seed ()
        | Nystrom -> Experiment.Ablations.nystrom_study ~seed ()
        | Active -> Experiment.Ablations.active_study ~reps ~seed ()
      in
      print_figure ~markdown ~plot:(not no_plot) ~svg fig)

let ablation_cmd =
  let which_arg =
    Arg.(
      required
      & pos 0 (some ablation_conv) None
      & info [] ~docv:"NAME"
          ~doc:"One of: kernel, regime, cv, nystrom, active.")
  in
  let term =
    Term.(
      const run_ablation $ which_arg $ reps_arg 10 $ seed_arg 21 $ markdown_arg
      $ no_plot_arg $ svg_arg $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Ablation studies: kernel choice, m>n regime, CV-tuned lambda, \
          Nystrom approximation, active learning.")
    term

let baselines_cmd =
  let run reps seed markdown no_plot svg profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        print_string (Experiment.Baselines.two_moons_report ~seed:(seed + 2) ());
        print_newline ();
        print_string (Experiment.Baselines.multiclass_report ~seed:(seed + 3) ());
        print_newline ();
        print_figure ~markdown ~plot:(not no_plot) ~svg
          (Experiment.Baselines.method_comparison ~reps ~seed ());
        print_string
          (Experiment.Baselines.significance_report
             ~reps:(Stdlib.max 10 (3 * reps))
             ~seed:(seed + 1) ()))
  in
  let term =
    Term.(
      const run $ reps_arg 10 $ seed_arg 41 $ markdown_arg $ no_plot_arg $ svg_arg
      $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "baselines"
       ~doc:
         "Compare hard/soft against the cited baselines (Nadaraya-Watson, \
          local-global consistency, LapRLS) with significance tests and the \
          two-moons demo.")
    term

let future_cmd =
  let run reps seed markdown no_plot svg profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        let show = print_figure ~markdown ~plot:(not no_plot) ~svg in
        let auc, acc, mcc =
          Experiment.Future_work.indicator_study ~reps ~seed ()
        in
        show auc;
        show acc;
        show mcc;
        show
          (Experiment.Future_work.auc_consistency_study ~reps ~seed:(seed + 1) ());
        show (Experiment.Future_work.calibration_study ~reps ~seed:(seed + 2) ()))
  in
  let term =
    Term.(
      const run $ reps_arg 5 $ seed_arg 61 $ markdown_arg $ no_plot_arg $ svg_arg
      $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "future"
       ~doc:
         "The paper's future-work probes: AUC/accuracy/MCC orderings, AUC \
          consistency in n, calibration of the two criteria.")
    term

let artifacts_cmd =
  let dir_arg =
    Arg.(
      value & opt string "figures"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory for the artifacts.")
  in
  let run reps seed dir =
    setup_logs ();
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let save name fig =
      Experiment.Svg_plot.write_file (Filename.concat dir (name ^ ".svg")) fig;
      Experiment.Export.write_file (Filename.concat dir (name ^ ".csv")) fig;
      Printf.printf "%s: wrote %s.svg and %s.csv\n%!" dir name name
    in
    save "fig1" (Experiment.Figures.fig1 ~reps ~seed ());
    save "fig2" (Experiment.Figures.fig2 ~reps ~seed:(seed + 1) ());
    save "fig3" (Experiment.Figures.fig3 ~reps ~seed:(seed + 2) ());
    save "fig4" (Experiment.Figures.fig4 ~reps ~seed:(seed + 3) ());
    save "fig5"
      (Experiment.Figures.fig5 ~reps:(Stdlib.max 1 (reps / 10)) ~seed:(seed + 4) ());
    save "consistency" (Experiment.Figures.consistency_demo ~seed:(seed + 5) ())
  in
  let term = Term.(const run $ reps_arg 20 $ seed_arg 1 $ dir_arg) in
  Cmd.v
    (Cmd.info "artifacts"
       ~doc:
         "Regenerate every figure as SVG + CSV data files into a directory \
          (default ./figures).")
    term

(* robustness demo: inject faults into a two-cluster problem and show
   what the resilient front-end detects, repairs, and degrades. *)

let robust_cmd =
  let fault_conv =
    Arg.enum
      [
        ("jitter", `Jitter); ("edge-drop", `Edge_drop);
        ("label-flip", `Label_flip); ("nan-weight", `Nan_weight);
        ("nan-label", `Nan_label); ("cg-cap", `Cg_cap);
      ]
  in
  let faults_arg =
    let doc =
      "Fault class to inject (repeatable): jitter, edge-drop, label-flip, \
       nan-weight, nan-label, cg-cap."
    in
    Arg.(
      value
      & opt_all fault_conv [ `Nan_weight; `Edge_drop ]
      & info [ "fault" ] ~docv:"CLASS" ~doc)
  in
  let sparse_arg =
    let doc = "Use sparse (CSR) graph storage and the sparse fallback chain." in
    Arg.(value & flag & info [ "sparse" ] ~doc)
  in
  let lambda_arg =
    let doc = "Also run the resilient soft criterion at this lambda." in
    Arg.(value & opt (some float) None & info [ "lambda" ] ~docv:"L" ~doc)
  in
  let severity_name = function
    | Robust.Check.Info -> "info"
    | Robust.Check.Warning -> "warning"
    | Robust.Check.Error -> "error"
  in
  let print_report name (r : Gssl.Resilient.report) =
    Printf.printf "%s: %d component(s), %d anchored\n" name
      r.Gssl.Resilient.n_components r.Gssl.Resilient.n_anchored;
    List.iter
      (fun (c, rung) -> Printf.printf "  component %d solved via %s\n" c rung)
      r.Gssl.Resilient.rungs;
    if Array.length r.Gssl.Resilient.imputed > 0 then
      Printf.printf "  imputed vertices: %s\n"
        (String.concat ", "
           (Array.to_list
              (Array.map string_of_int r.Gssl.Resilient.imputed)));
    let infos, notable =
      List.partition
        (fun d -> Robust.Check.severity d = Robust.Check.Info)
        r.Gssl.Resilient.diagnostics
    in
    if infos <> [] then
      Printf.printf "  %d info diagnostic(s) suppressed (e.g. %s)\n"
        (List.length infos)
        (Robust.Check.describe (List.hd infos));
    List.iter
      (fun d ->
        Printf.printf "  [%s] %s: %s\n"
          (severity_name (Robust.Check.severity d))
          (Robust.Check.class_name d)
          (Robust.Check.describe d))
      notable;
    Printf.printf "  predictions:%s\n"
      (String.concat ""
         (Array.to_list
            (Array.map (Printf.sprintf " %.3f") r.Gssl.Resilient.predictions)))
  in
  let run seed faults sparse lambda profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        let rng = Prng.Rng.create seed in
        (* two RBF clusters, 6 labeled + 6 unlabeled points each *)
        let point cx cy () =
          [|
            cx +. Prng.Rng.uniform rng (-0.5) 0.5;
            cy +. Prng.Rng.uniform rng (-0.5) 0.5;
          |]
        in
        let mk cx cy k = Array.init k (fun _ -> point cx cy ()) in
        let points =
          Array.concat [ mk 0. 0. 6; mk 5. 5. 6; mk 0. 0. 6; mk 5. 5. 6 ]
        in
        let labels = Array.init 12 (fun i -> if i < 6 then 0. else 1.) in
        let w =
          Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.0
            points
        in
        let graph =
          if sparse then
            Graph.Weighted_graph.of_sparse
              (Sparse.Csr.of_dense ~threshold:1e-6 w)
          else Graph.Weighted_graph.of_dense w
        in
        let fault_of = function
          | `Jitter -> Robust.Fault.Weight_jitter { amplitude = 0.3 }
          | `Edge_drop -> Robust.Fault.Edge_drop { fraction = 0.15 }
          | `Label_flip -> Robust.Fault.Label_flip { count = 1 }
          | `Nan_weight -> Robust.Fault.Nan_poison_weight { count = 3 }
          | `Nan_label -> Robust.Fault.Nan_poison_label { count = 1 }
          | `Cg_cap -> Robust.Fault.Cg_cap { max_iter = 1 }
        in
        let faults = List.map fault_of faults in
        let inj = Robust.Fault.inject rng ~n_labeled:12 faults graph labels in
        Printf.printf
          "robustness demo: 24 vertices (12 labeled), %s storage, seed %d\n"
          (if sparse then "sparse" else "dense")
          seed;
        Printf.printf "injected faults: %s\n\n"
          (String.concat ", " (List.map Robust.Fault.class_name faults));
        let problem =
          Gssl.Problem.make_unchecked ~graph:inj.Robust.Fault.graph
            ~labels:inj.Robust.Fault.labels
        in
        let cap = inj.Robust.Fault.cg_max_iter in
        print_report "resilient hard"
          (Gssl.Resilient.solve_hard ~suspect_threshold:0.5 ?cg_max_iter:cap
             problem);
        match lambda with
        | None -> ()
        | Some lambda ->
            print_newline ();
            print_report
              (Printf.sprintf "resilient soft (lambda = %g)" lambda)
              (Gssl.Resilient.solve_soft ~suspect_threshold:0.5
                 ?cg_max_iter:cap ~lambda problem))
  in
  let term =
    Term.(
      const run $ seed_arg 33 $ faults_arg $ sparse_arg $ lambda_arg
      $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:
         "Fault-injection demo: poison a small problem (NaN weights, dropped \
          edges, flipped labels, CG budget caps) and show the resilient \
          solver's diagnostics, fallback rungs, and imputations.")
    term

(* numerical-health certificates on the paper's synthetic models *)

let health_cmd =
  let cap_arg =
    let doc =
      "CG iteration budget for the starved rerun (injected through the \
       fault harness; small values force the fallback chain to escalate)."
    in
    Arg.(value & opt int 2 & info [ "cg-cap" ] ~docv:"K" ~doc)
  in
  let lambda_arg =
    let doc = "Lambda for the Model 2 soft-criterion solve." in
    Arg.(value & opt float 0.1 & info [ "lambda" ] ~docv:"L" ~doc)
  in
  let run seed cap lambda trace_out =
    setup_logs ();
    Telemetry.Registry.enable ();
    Telemetry.Registry.reset ();
    if trace_out <> None then Obs.Chrome_trace.start ();
    Fun.protect
      ~finally:(fun () ->
        (match trace_out with None -> () | Some path -> write_trace path);
        Telemetry.Registry.disable ();
        Telemetry.Registry.reset ())
      (fun () ->
        let rng = Prng.Rng.create seed in
        let make_problem model =
          let samples = Dataset.Synthetic.sample_many rng model 100 in
          let problem, _ =
            Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
              ~bandwidth:
                (Kernel.Bandwidth.Paper_rate Dataset.Synthetic.dimension)
              ~n_labeled:60 samples
          in
          problem
        in
        let show_last title =
          Printf.printf "== %s ==\n" title;
          (match Obs.Health.last () with
          | Some c -> print_string (Obs.Health.describe c)
          | None -> print_endline "  (no certificate recorded)");
          print_newline ()
        in
        let p1 = make_problem Dataset.Synthetic.Model1 in
        let (_ : Linalg.Vec.t) = Gssl.Hard.solve ~observe:true p1 in
        show_last "Model 1 / hard criterion (dense Cholesky)";
        let p2 = make_problem Dataset.Synthetic.Model2 in
        let (_ : Linalg.Vec.t) = Gssl.Soft.solve ~observe:true ~lambda p2 in
        show_last
          (Printf.sprintf "Model 2 / soft criterion (lambda = %g)" lambda);
        (* The same Model 1 solve, starved: sparse storage so the fallback
           chain starts at CG, with the fault harness capping every CG
           attempt.  The certificate must flag stagnation and the flight
           recorder must show the escalation sequence. *)
        let sparse_graph =
          Graph.Weighted_graph.of_sparse
            (Sparse.Csr.of_dense ~threshold:1e-8
               (Graph.Weighted_graph.to_dense p1.Gssl.Problem.graph))
        in
        let inj =
          Robust.Fault.inject rng ~n_labeled:(Gssl.Problem.n_labeled p1)
            [ Robust.Fault.Cg_cap { max_iter = cap } ]
            sparse_graph p1.Gssl.Problem.labels
        in
        let starved =
          Gssl.Problem.make_unchecked ~graph:inj.Robust.Fault.graph
            ~labels:inj.Robust.Fault.labels
        in
        let report =
          Gssl.Resilient.solve_hard ~observe:true
            ?cg_max_iter:inj.Robust.Fault.cg_max_iter starved
        in
        Printf.printf
          "== Model 1 / hard criterion starved (CG capped at %d iteration(s)) \
           ==\n"
          cap;
        List.iter
          (fun (c, rung) ->
            Printf.printf "component %d solved via %s\n" c rung)
          report.Gssl.Resilient.rungs;
        List.iter
          (fun (c, cert) ->
            Printf.printf "component %d certificate:\n%s" c
              (Obs.Health.describe cert))
          report.Gssl.Resilient.certificates;
        print_newline ();
        let events = Obs.Event.recent () in
        let quiet, notable =
          List.partition
            (fun e ->
              match e.Obs.Event.severity with
              | Obs.Event.Debug | Obs.Event.Info -> true
              | Obs.Event.Warning | Obs.Event.Error -> false)
            events
        in
        Printf.printf
          "== Flight recorder: %d event(s) (%d dropped, %d info/debug \
           suppressed) ==\n"
          (List.length events) (Obs.Event.dropped ()) (List.length quiet);
        List.iter (fun e -> print_endline (Obs.Event.describe e)) notable)
  in
  let term =
    Term.(const run $ seed_arg 7 $ cap_arg $ lambda_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Numerical-health certificates: solve the paper's Model 1 (hard) \
          and Model 2 (soft) synthetic problems with observation enabled, \
          print the recomputed-residual certificates, then starve CG via \
          the fault harness and show the stagnation certificate plus the \
          flight-recorder escalation sequence.")
    term

(* long-lived serving layer: chaos soak replay and an interactive server *)

let soak_cmd =
  let requests_arg =
    let doc = "Number of requests in the generated trace." in
    Arg.(value & opt int 5000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let capacity_arg =
    let doc = "Admission queue capacity (requests beyond it are shed)." in
    Arg.(value & opt int 16 & info [ "capacity" ] ~docv:"Q" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline budget in virtual milliseconds." in
    Arg.(value & opt float 25. & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let fault_rate_arg =
    let doc = "Fraction of queries carrying injected faults." in
    Arg.(value & opt float 0.18 & info [ "fault-rate" ] ~docv:"F" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay the trace a second time and require bit-identical per-request \
       outcomes (digest equality)."
    in
    Arg.(value & flag & info [ "verify-replay" ] ~doc)
  in
  let journal_arg =
    let doc =
      "Record a per-request span journal and write it as JSONL to $(docv) \
       (one line per response: trace id, disposition, full span tree)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let run seed requests capacity deadline fault_rate replay journal_path =
    setup_logs ();
    let cfg =
      { Serve.Soak.default with
        Serve.Soak.seed;
        requests;
        queue_capacity = capacity;
        deadline_ms = deadline;
        fault_rate;
        verify_replay = replay;
        journal = journal_path <> None }
    in
    let s, engine = Serve.Soak.run_full cfg in
    print_string (Serve.Soak.describe s);
    (match (journal_path, Serve.Engine.journal engine) with
    | Some path, Some j ->
        Obs.Journal.write j path;
        Printf.printf "(journal written to %s: %d line(s), digest %Lx)\n" path
          (Obs.Journal.length j) (Obs.Journal.digest j)
    | _ -> ());
    if not (Serve.Soak.ok s) then exit 1
  in
  let term =
    Term.(
      const run $ seed_arg 42 $ requests_arg $ capacity_arg $ deadline_arg
      $ fault_rate_arg $ replay_arg $ journal_arg)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos soak: replay a seeded fault-injected request trace (latency \
          stalls, CG starvation, NaN poison, label flips, relabel storms, \
          queue-saturating bursts) through the admission-controlled serve \
          engine on a virtual clock, and check the serving invariants — \
          zero dropped responses, every response certified healthy or \
          explicitly degraded/shed, bounded queue.  Exits nonzero on any \
          violation.")
    term

let c_repl_parse_errors = Telemetry.Counter.make "serve.repl.parse_errors"

let print_serve_stats ?(parse_errors = 0) engine =
  let s = Serve.Engine.stats engine in
  Printf.printf
    "served %d | degraded %d | shed %d | deadline expired %d | retried %d\n\
     relabels %d | breaker trips %d | cache hits/misses %d/%d | parse errors \
     %d\n\
     %!"
    s.Serve.Engine.served s.Serve.Engine.degraded s.Serve.Engine.shed
    s.Serve.Engine.deadline_expired s.Serve.Engine.retried
    s.Serve.Engine.relabels s.Serve.Engine.breaker_trips
    s.Serve.Engine.cache_hits s.Serve.Engine.cache_misses parse_errors

let print_transport_stats engine =
  let tr = Serve.Engine.transport engine in
  Printf.printf
    "transport: conns %d/%d | frames ok %d rejected %d | client gone %d | \
     io deadline %d | overflow shed %d | drained %d\n\
     %!"
    tr.Serve.Transport.conns_opened tr.Serve.Transport.conns_closed
    tr.Serve.Transport.frames_ok tr.Serve.Transport.frames_rejected
    tr.Serve.Transport.client_gone tr.Serve.Transport.io_deadline_expired
    tr.Serve.Transport.overflow_shed tr.Serve.Transport.drained

let serve_cmd =
  let deadline_arg =
    let doc = "Per-request deadline budget in milliseconds." in
    Arg.(value & opt float 250. & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let socket_arg =
    let doc =
      "Serve the framed wire protocol on a Unix-domain socket at $(docv) \
       instead of the stdin REPL (see DESIGN §13 for the frame layout)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc =
      "Serve the framed wire protocol on 127.0.0.1:$(docv) (0 picks an \
       ephemeral port, printed at startup)."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let io_deadline_arg =
    let doc =
      "Transport I/O deadline in milliseconds: a frame that stalls \
       mid-transfer, or a peer that stops reading responses, is timed out \
       and the connection closed."
    in
    Arg.(value & opt float 2000. & info [ "io-deadline-ms" ] ~docv:"MS" ~doc)
  in
  let journal_arg =
    let doc = "Write the per-request span journal as JSONL to $(docv) on exit." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let repl_loop engine clock =
    let next_id = ref 0 in
    let parse_errors = ref 0 in
    (* every malformed line answers with one structured, greppable error
       line and a counter bump — the REPL never raises on input *)
    let reject code detail =
      incr parse_errors;
      Telemetry.Counter.incr c_repl_parse_errors;
      Printf.printf "error %s: %s\n%!" code detail
    in
    let submit kind =
      incr next_id;
      let req =
        { Serve.Engine.id = !next_id;
          arrival_ms = Serve.Clock.now_ms clock;
          kind;
          faults = [] }
      in
      let r = Serve.Engine.handle engine req in
      let status =
        match r.Serve.Engine.status with
        | Serve.Engine.Served -> "served"
        | Serve.Engine.Degraded why -> "DEGRADED (" ^ why ^ ")"
        | Serve.Engine.Shed why -> "SHED (" ^ why ^ ")"
      in
      let health =
        match r.Serve.Engine.certificate with
        | Some c when Obs.Health.healthy c -> "healthy certificate"
        | Some _ -> "UNHEALTHY certificate"
        | None -> "no certificate"
      in
      Printf.printf "#%d %s in %.3f ms — %d prediction(s), %s\n%!"
        r.Serve.Engine.id status r.Serve.Engine.latency_ms
        (Array.length r.Serve.Engine.predictions)
        health
    in
    let rec loop () =
      print_string "> ";
      flush stdout;
      match input_line stdin with
      | exception End_of_file -> ()
      | line -> (
          let words =
            String.split_on_char ' ' (String.trim line)
            |> List.filter (fun s -> s <> "")
          in
          match words with
          | [] -> loop ()
          | [ "quit" ] | [ "exit" ] -> ()
          | [ "query" ] ->
              submit Serve.Engine.Query;
              loop ()
          | "query" :: _ ->
              reject "bad-argument" "query takes no arguments";
              loop ()
          | [ "stats" ] ->
              print_serve_stats ~parse_errors:!parse_errors engine;
              loop ()
          | "stats" :: _ ->
              reject "bad-argument" "stats takes no arguments";
              loop ()
          | [ "relabel"; v; y ] ->
              (match (int_of_string_opt v, float_of_string_opt y) with
              | Some vertex, Some label when Float.is_finite label ->
                  submit (Serve.Engine.Relabel { vertex; label })
              | Some _, Some label ->
                  reject "non-finite"
                    (Printf.sprintf "relabel label %h is not finite" label)
              | None, _ ->
                  reject "bad-argument"
                    (Printf.sprintf "relabel vertex %S is not an integer" v)
              | _, None ->
                  reject "bad-argument"
                    (Printf.sprintf "relabel label %S is not a number" y));
              loop ()
          | "relabel" :: rest ->
              reject "bad-argument"
                (Printf.sprintf
                   "relabel takes <vertex> <label>, got %d argument(s)"
                   (List.length rest));
              loop ()
          | verb :: _ ->
              reject "unknown-verb"
                (Printf.sprintf
                   "%S — commands: query | relabel <vertex> <label> | stats \
                    | quit"
                   verb);
              loop ())
    in
    loop ();
    !parse_errors
  in
  let run seed deadline socket tcp io_deadline journal_path =
    exit0_on_epipe @@ fun () ->
    setup_logs ();
    let prob = Serve.Soak.problem ~seed ~n_vertices:80 ~n_labeled:20 in
    let config =
      { Serve.Engine.default_config with
        Serve.Engine.deadline_ms = deadline;
        seed }
    in
    let clock = Serve.Clock.monotonic () in
    let journal =
      if journal_path = None then None else Some (Obs.Journal.create ())
    in
    let engine = Serve.Engine.create ~clock ?journal config prob in
    let write_journal () =
      match (journal_path, Serve.Engine.journal engine) with
      | Some path, Some j ->
          Obs.Journal.write j path;
          Printf.printf "(journal written to %s: %d line(s), digest %Lx)\n%!"
            path (Obs.Journal.length j) (Obs.Journal.digest j)
      | _ -> ()
    in
    match (socket, tcp) with
    | None, None ->
        (* stdin REPL *)
        Printf.printf
          "gssl serve: %d-vertex two-cluster problem loaded (%d labeled).\n\
           commands: query | relabel <vertex> <label> | stats | quit\n\
           %!"
          (Gssl.Problem.size prob)
          (Gssl.Problem.n_labeled prob);
        let parse_errors = repl_loop engine clock in
        print_serve_stats ~parse_errors engine;
        write_journal ()
    | _ ->
        let address =
          match (socket, tcp) with
          | Some path, _ -> Net.Server.Unix_path path
          | None, Some port -> Net.Server.Tcp { host = "127.0.0.1"; port }
          | None, None -> assert false
        in
        let sconfig =
          { Net.Server.default_config with
            Net.Server.conn =
              { Net.Conn.default_config with
                Net.Conn.io_deadline_ms = io_deadline } }
        in
        let server = Net.Server.create ~config:sconfig ~engine address in
        Net.Server.install_signal_handlers server;
        (match address with
        | Net.Server.Unix_path path ->
            Printf.printf "gssl serve: listening on unix:%s\n%!" path
        | Net.Server.Tcp _ ->
            Printf.printf "gssl serve: listening on tcp:127.0.0.1:%d\n%!"
              (Net.Server.port server));
        Printf.printf
          "frame: %S + version %d + u32 payload length; SIGTERM drains.\n%!"
          Net.Frame.magic Net.Frame.version;
        Net.Server.run server;
        Printf.printf "gssl serve: drained.\n";
        print_serve_stats engine;
        print_transport_stats engine;
        write_journal ()
  in
  let term =
    Term.(
      const run $ seed_arg 42 $ deadline_arg $ socket_arg $ tcp_arg
      $ io_deadline_arg $ journal_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived solve service on a synthetic two-cluster problem: loads \
          the graph once, caches its factorization, then answers query / \
          relabel requests with per-request deadlines, health certificates \
          and Sherman–Morrison incremental updates — from stdin by default, \
          or over the length-prefixed socket protocol with $(b,--socket) / \
          $(b,--tcp) (hostile-client hardened: typed protocol errors, I/O \
          deadlines, bounded buffers, graceful SIGTERM drain).")
    term

(* ---- socket client: clean ops and the scripted hostile probe ---- *)

let client_cmd =
  let module J = Telemetry.Export in
  let socket_arg =
    let doc = "Connect to the Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc = "Connect to 127.0.0.1:$(docv)." in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let query_arg =
    let doc = "Send $(docv) query requests." in
    Arg.(value & opt int 1 & info [ "query" ] ~docv:"N" ~doc)
  in
  let stats_flag =
    let doc = "Also request the server's stats body." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let hostile_flag =
    let doc =
      "Run the scripted hostile probe instead of clean requests: bad magic, \
       bad version, oversized length, truncated frame, garbage JSON, \
       unknown/malformed ops — asserting each comes back as the right typed \
       protocol error and that a clean query still succeeds afterwards.  \
       Exits nonzero on any mismatch."
    in
    Arg.(value & flag & info [ "hostile" ] ~doc)
  in
  let connect address =
    match address with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | `Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        fd
  in
  let send_all fd s =
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring fd s !off (n - !off)
    done
  in
  (* Read until [count] response frames arrive, EOF, or the 5 s receive
     timeout — a hostile probe must itself never hang. *)
  let recv_frames fd ~count =
    let dec = Net.Frame.create () in
    let buf = Bytes.create 65536 in
    let out = ref [] in
    let stop = ref false in
    while (not !stop) && List.length !out < count do
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> stop := true
      | n ->
          List.iter
            (function
              | Ok p -> out := p :: !out
              | Error _ -> stop := true)
            (Net.Frame.feed dec (Bytes.sub_string buf 0 n))
      | exception
          Unix.Unix_error
            ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ETIMEDOUT
              | Unix.ECONNRESET | Unix.EPIPE ),
              _, _ ) ->
          stop := true
    done;
    List.rev !out
  in
  let with_conn address f =
    let fd = connect address in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) (fun () ->
        f fd)
  in
  let err_code p =
    match J.parse p with
    | j -> Option.bind (J.member "error" j) J.to_str
    | exception J.Parse_error _ -> None
  in
  let is_ok p =
    match J.parse p with
    | j -> J.member "ok" j = Some (J.Bool true)
    | exception J.Parse_error _ -> false
  in
  let q () = Net.Frame.encode (Net.Protocol.render_request Net.Protocol.Query) in
  let run_hostile address seed =
    let rng = Prng.Rng.create seed in
    let checks = ref 0 and failures = ref 0 in
    let expect name cond =
      incr checks;
      if cond then Printf.printf "ok %d - %s\n%!" !checks name
      else begin
        incr failures;
        Printf.printf "not ok %d - %s\n%!" !checks name
      end
    in
    let expect_error name bytes code =
      with_conn address (fun fd ->
          send_all fd bytes;
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ());
          match recv_frames fd ~count:1 with
          | [ p ] -> expect name (err_code p = Some code)
          | _ -> expect name false)
    in
    let junk n = String.init n (fun _ -> Char.chr (Prng.Rng.int rng 256)) in
    expect_error "bad magic rejected" ("EVIL" ^ junk 8) "bad_magic";
    expect_error "bad version rejected"
      (Net.Frame.magic ^ "\002" ^ junk 4)
      "bad_version";
    expect_error "oversized length rejected"
      (Net.Frame.magic ^ "\001\x7f\xff\xff\xff")
      "too_large";
    expect_error "truncated frame rejected"
      (String.sub (q ()) 0 (1 + Prng.Rng.int rng (String.length (q ()) - 1)))
      "truncated";
    expect_error "unknown op rejected"
      (Net.Frame.encode "{\"op\":\"frobnicate\"}")
      "unknown_op";
    expect_error "missing field rejected"
      (Net.Frame.encode "{\"op\":\"relabel\",\"vertex\":3}")
      "missing_field";
    expect_error "non-finite label rejected"
      (Net.Frame.encode "{\"op\":\"relabel\",\"vertex\":3,\"label\":1e999}")
      "bad_field";
    (* JSON-level faults are per-frame recoverable: garbage then a clean
       query on the SAME connection must both be answered *)
    with_conn address (fun fd ->
        send_all fd (Net.Frame.encode ("\000" ^ junk 12));
        send_all fd (q ());
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
        match recv_frames fd ~count:2 with
        | [ e; r ] ->
            expect "garbage JSON rejected, connection survives"
              (err_code e = Some "malformed_json" && is_ok r)
        | _ -> expect "garbage JSON rejected, connection survives" false);
    (* and the server still serves cleanly after all of the abuse *)
    with_conn address (fun fd ->
        send_all fd (q ());
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
        match recv_frames fd ~count:1 with
        | [ p ] -> expect "clean query still served" (is_ok p)
        | _ -> expect "clean query still served" false);
    Printf.printf "hostile probe: %d/%d check(s) passed\n%!"
      (!checks - !failures) !checks;
    if !failures > 0 then exit 1
  in
  let run_clean address n_queries want_stats =
    with_conn address (fun fd ->
        for _ = 1 to n_queries do
          send_all fd (q ())
        done;
        if want_stats then
          send_all fd
            (Net.Frame.encode (Net.Protocol.render_request Net.Protocol.Stats));
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
        let want = n_queries + if want_stats then 1 else 0 in
        let got = recv_frames fd ~count:want in
        List.iter print_endline got;
        if List.length got <> want then begin
          Printf.eprintf "client: expected %d response(s), got %d\n" want
            (List.length got);
          exit 1
        end)
  in
  let run seed socket tcp n_queries want_stats hostile =
    exit0_on_epipe @@ fun () ->
    setup_logs ();
    let address =
      match (socket, tcp) with
      | Some path, _ -> `Unix path
      | None, Some port -> `Tcp port
      | None, None ->
          prerr_endline "client: need --socket PATH or --tcp PORT";
          exit 2
    in
    if hostile then run_hostile address seed
    else run_clean address n_queries want_stats
  in
  let term =
    Term.(
      const run $ seed_arg 7 $ socket_arg $ tcp_arg $ query_arg $ stats_flag
      $ hostile_flag)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Framed-protocol client for $(b,repro serve --socket)/$(b,--tcp): \
          send queries and print the JSON responses, or run the scripted \
          $(b,--hostile) probe that asserts every corruption mode maps to \
          its typed protocol error.")
    term

let netsoak_cmd =
  let connections_arg =
    let doc = "Number of client connections in the generated trace." in
    Arg.(value & opt int 1200 & info [ "connections" ] ~docv:"N" ~doc)
  in
  let hostile_rate_arg =
    let doc = "Fraction of connections drawn from the hostile menu." in
    Arg.(value & opt float 0.45 & info [ "hostile-rate" ] ~docv:"F" ~doc)
  in
  let io_deadline_arg =
    let doc = "Transport I/O deadline in virtual milliseconds." in
    Arg.(value & opt float 50. & info [ "io-deadline-ms" ] ~docv:"MS" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay the byte trace a second time and require a bit-identical \
       response/trace digest (and journal digest when journaling)."
    in
    Arg.(value & flag & info [ "verify-replay" ] ~doc)
  in
  let journal_arg =
    let doc = "Record the span journal and write it as JSONL to $(docv)." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let run seed connections hostile_rate io_deadline replay journal_path =
    setup_logs ();
    let cfg =
      { Net.Hostile.default with
        Net.Hostile.seed;
        connections;
        hostile_rate;
        io_deadline_ms = io_deadline;
        verify_replay = replay;
        journal = journal_path <> None }
    in
    let s, engine = Net.Hostile.run_full cfg in
    print_endline (Net.Hostile.describe s);
    (match (journal_path, Serve.Engine.journal engine) with
    | Some path, Some j ->
        Obs.Journal.write j path;
        Printf.printf "(journal written to %s: %d line(s), digest %Lx)\n" path
          (Obs.Journal.length j) (Obs.Journal.digest j)
    | _ -> ());
    if not (Net.Hostile.ok s) then exit 1
  in
  let term =
    Term.(
      const run $ seed_arg 42 $ connections_arg $ hostile_rate_arg
      $ io_deadline_arg $ replay_arg $ journal_arg)
  in
  Cmd.v
    (Cmd.info "netsoak"
       ~doc:
         "Hostile-client transport soak: replay a seeded trace of clean and \
          adversarial connections (frame corruption, slowloris stalls, \
          half-closes, disconnects, burst connects) byte-for-byte through \
          the connection state machine and the serve engine on a virtual \
          clock, checking that nothing crashes, every frame is answered or \
          typed-error-counted, no degradation goes unflagged, buffers stay \
          bounded, and the transport counters reconcile exactly with the \
          script.  Exits nonzero on any violation.")
    term

(* ---- observability surface: `repro top` and `repro journal` ---- *)

let render_dashboard engine ~processed ~total =
  let s = Serve.Engine.stats engine in
  let slo = Serve.Engine.slo_snapshot engine in
  let hist = Serve.Engine.latency_histogram engine in
  let qhist = Serve.Engine.queue_histogram engine in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string b (str ^ "\n")) fmt in
  let bar frac =
    let width = 24 in
    let full = int_of_float (Float.max 0. (Float.min 1. frac) *. float_of_int width) in
    String.make full '#' ^ String.make (width - full) '.'
  in
  let pct v = 100. *. v in
  line "repro top — solve service  [%d/%d requests]" processed total;
  line "";
  line "  traffic   served %-6d degraded %-6d shed %-6d retried %-6d relabels %d"
    s.Serve.Engine.served s.Serve.Engine.degraded s.Serve.Engine.shed
    s.Serve.Engine.retried s.Serve.Engine.relabels;
  line "  failures  deadline expired %-4d cg aborts %-4d breaker trips %d (%d transitions)"
    s.Serve.Engine.deadline_expired s.Serve.Engine.solver_aborts
    s.Serve.Engine.breaker_trips s.Serve.Engine.breaker_transitions;
  line "  latency   p50 %7.3f ms   p90 %7.3f ms   p99 %7.3f ms   max %7.3f ms"
    (Obs.Histogram.p50 hist) (Obs.Histogram.p90 hist) (Obs.Histogram.p99 hist)
    (Obs.Histogram.max_value hist);
  line "  queue     p50 %7.3f ms   p99 %7.3f ms   max backlog %d"
    (Obs.Histogram.p50 qhist) (Obs.Histogram.p99 qhist)
    s.Serve.Engine.max_backlog;
  line "  cache     hits %-6d misses %-6d evictions %d" s.Serve.Engine.cache_hits
    s.Serve.Engine.cache_misses s.Serve.Engine.cache_evictions;
  (let tr = Serve.Engine.transport engine in
   line
     "  transport conns %d/%d  frames ok %-6d rejected %-5d gone %-4d \
      io-expired %-4d drained %d"
     tr.Serve.Transport.conns_opened tr.Serve.Transport.conns_closed
     tr.Serve.Transport.frames_ok tr.Serve.Transport.frames_rejected
     tr.Serve.Transport.client_gone tr.Serve.Transport.io_deadline_expired
     tr.Serve.Transport.drained);
  line "  breaker   %s"
    (Serve.Breaker.state_name (Serve.Breaker.state (Serve.Engine.breaker engine)));
  line "";
  line "  slo latency  [%s] %5.1f%%  burn %5.2f  budget %5.1f%%"
    (bar slo.Obs.Slo.latency_compliance)
    (pct slo.Obs.Slo.latency_compliance)
    slo.Obs.Slo.latency_burn
    (pct slo.Obs.Slo.latency_budget);
  line "  slo quality  [%s] %5.1f%%  burn %5.2f  budget %5.1f%%"
    (bar slo.Obs.Slo.quality_compliance)
    (pct slo.Obs.Slo.quality_compliance)
    slo.Obs.Slo.quality_burn
    (pct slo.Obs.Slo.quality_budget);
  Buffer.contents b

let top_cmd =
  let requests_arg =
    let doc = "Requests in the generated soak trace to drive the engine with." in
    Arg.(value & opt int 2000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc = "Final snapshot format: $(b,ascii), $(b,prometheus), or $(b,json)." in
    Arg.(
      value
      & opt (enum [ ("ascii", `Ascii); ("prometheus", `Prom); ("json", `Json) ])
          `Ascii
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let watch_arg =
    let doc =
      "Watch mode: redraw the dashboard after every chunk of requests \
       instead of printing the final snapshot only."
    in
    Arg.(value & flag & info [ "watch" ] ~doc)
  in
  let chunk_arg =
    let doc = "Requests per dashboard refresh in watch mode." in
    Arg.(value & opt int 250 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let run seed requests format watch chunk =
    exit0_on_epipe @@ fun () ->
    setup_logs ();
    if chunk < 1 then (prerr_endline "top: --chunk must be >= 1"; exit 2);
    let cfg = { Serve.Soak.default with Serve.Soak.seed; requests } in
    let prob =
      Serve.Soak.problem ~seed ~n_vertices:cfg.Serve.Soak.n_vertices
        ~n_labeled:cfg.Serve.Soak.n_labeled
    in
    let trace = Serve.Soak.gen_trace cfg prob in
    let clock = Serve.Clock.virtual_ () in
    let engine =
      Serve.Engine.create ~clock (Serve.Soak.engine_config cfg) prob
    in
    (* Feed the trace through the admission queue in chunks: the engine
       keeps its backlog and worker state across calls, so the chunked
       replay is identical to one run_trace call — it just gives the
       dashboard refresh points. *)
    let rec feed processed reqs =
      match reqs with
      | [] -> processed
      | _ ->
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | r :: rest -> split (n - 1) (r :: acc) rest
          in
          let now, later = split chunk [] reqs in
          ignore (Serve.Engine.run_trace engine now);
          let processed = processed + List.length now in
          if watch then begin
            (* ANSI home+clear keeps the dashboard in place like top(1) *)
            print_string "\x1b[H\x1b[2J";
            print_string (render_dashboard engine ~processed ~total:requests);
            flush stdout
          end;
          feed processed later
    in
    let processed = feed 0 trace in
    match format with
    | `Ascii ->
        print_string (render_dashboard engine ~processed ~total:requests)
    | `Prom ->
        print_string (Obs.Expo.to_prometheus (Serve.Engine.metrics engine))
    | `Json ->
        print_endline
          (Telemetry.Export.render (Obs.Expo.to_json (Serve.Engine.metrics engine)))
  in
  let term =
    Term.(
      const run $ seed_arg 42 $ requests_arg $ format_arg $ watch_arg
      $ chunk_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Operator dashboard: drive the solve service with a seeded soak \
          trace and render the unified exposition snapshot — traffic and \
          failure counters, latency/queue quantiles, cache and breaker \
          gauges, SLO compliance with error-budget burn rates — as an \
          ASCII dashboard (optionally refreshing in $(b,--watch) mode), \
          Prometheus text format, or JSON.")
    term

let journal_cmd =
  let file_arg =
    let doc = "Span journal (JSONL) written by $(b,repro soak --journal)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc = "Only show the request with this (hex) trace id." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"HEX" ~doc)
  in
  let status_arg =
    let doc = "Only show requests with this status (served|degraded|shed)." in
    Arg.(value & opt (some string) None & info [ "status" ] ~docv:"S" ~doc)
  in
  let limit_arg =
    let doc = "Show at most $(docv) requests (0 = no limit)." in
    Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let stats_arg =
    let doc = "Print only the journal's aggregate and schema-check result." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let print_entry j =
    let open Telemetry.Export in
    let str k = Option.bind (member k j) to_str in
    let num k = Option.bind (member k j) to_float in
    let int k = Option.bind (member k j) to_int in
    let getf d = Option.value ~default:d in
    Printf.printf "trace %s  request %d  %s  %.3f ms (queue %.3f ms, %d attempt(s)%s)\n"
      (getf "?" (str "trace"))
      (getf (-1) (int "request"))
      (getf "?" (str "status")
      ^ match str "reason" with None -> "" | Some r -> " [" ^ r ^ "]")
      (getf Float.nan (num "latency_ms"))
      (getf Float.nan (num "queue_ms"))
      (getf 0 (int "attempts"))
      (match Option.bind (member "cache_hit" j) to_bool with
      | Some true -> ", cache hit"
      | _ -> "");
    (match member "spans" j with
    | Some (Arr spans) ->
        let span_field s k conv = Option.bind (member k s) conv in
        List.iter
          (fun s ->
            let id = getf (-1) (span_field s "id" to_int) in
            let parent = getf (-1) (span_field s "parent" to_int) in
            (* indentation = tree depth, recovered by walking parents *)
            let depth =
              let rec up p acc =
                if p < 0 then acc
                else
                  match
                    List.find_opt
                      (fun s' -> span_field s' "id" to_int = Some p)
                      spans
                  with
                  | None -> acc
                  | Some s' ->
                      up (getf (-1) (span_field s' "parent" to_int)) (acc + 1)
              in
              up parent 0
            in
            let fields =
              match member "fields" s with
              | Some (Obj kvs) when kvs <> [] ->
                  "  {"
                  ^ String.concat ", "
                      (List.map (fun (k, v) -> k ^ "=" ^ render v) kvs)
                  ^ "}"
              | _ -> ""
            in
            Printf.printf "  %s%-14s %8.3f ms  @%.3f%s\n"
              (String.make (2 * depth) ' ')
              (getf "?" (span_field s "name" to_str))
              (getf Float.nan (span_field s "dur_ms" to_float))
              (getf Float.nan (span_field s "start_ms" to_float))
              fields;
            ignore id)
          spans
    | _ -> ());
    print_newline ()
  in
  let run file trace_filter status_filter limit stats =
    exit0_on_epipe @@ fun () ->
    setup_logs ();
    let text =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match Obs.Journal.validate_text text with
    | Ok n -> Printf.printf "journal: %d line(s), schema ok\n" n
    | Error msg ->
        Printf.printf "journal: SCHEMA VIOLATION — %s\n" msg;
        if stats then exit 1);
    if stats then begin
      let a = Obs.Journal.aggregate_of_text text in
      Printf.printf
        "requests %d | served %d | degraded %d | shed %d\n\
         latency p50 %.3f ms | p99 %.3f ms | max %.3f ms\n"
        a.Obs.Journal.requests a.Obs.Journal.served a.Obs.Journal.degraded
        a.Obs.Journal.shed a.Obs.Journal.latency_p50 a.Obs.Journal.latency_p99
        a.Obs.Journal.latency_max
    end
    else begin
      print_newline ();
      let shown = ref 0 in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if line <> "" && (limit <= 0 || !shown < limit) then
               match Telemetry.Export.parse line with
               | exception Telemetry.Export.Parse_error _ -> ()
               | j ->
                   let keep =
                     (match trace_filter with
                     | None -> true
                     | Some want ->
                         Option.bind (Telemetry.Export.member "trace" j)
                           Telemetry.Export.to_str
                         = Some want)
                     && (match status_filter with
                        | None -> true
                        | Some want ->
                            Option.bind (Telemetry.Export.member "status" j)
                              Telemetry.Export.to_str
                            = Some want)
                   in
                   if keep then begin
                     incr shown;
                     print_entry j
                   end);
      if !shown = 0 then print_endline "(no matching requests)"
    end
  in
  let term =
    Term.(
      const run $ file_arg $ trace_arg $ status_arg $ limit_arg $ stats_arg)
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Inspect a span journal: schema-validate it, then pretty-print the \
          per-request span trees (filter by $(b,--trace) id or \
          $(b,--status)), or summarise it with $(b,--stats).")
    term

(* repro scale: the million-vertex pipeline — approximate kNN graph
   build, heavy-edge coarsening, multigrid-preconditioned hard solve —
   run end to end with a per-stage telemetry breakdown.  Exits non-zero
   when a scaling contract is violated (recall floor missed, multigrid
   not reducing CG iterations, solutions diverging). *)
let scale_cmd =
  let count_arg =
    let doc =
      "Number of synthetic points (Model 1).  The pipeline is built for \
       $(docv) in the millions; the default keeps the demo under a minute."
    in
    Arg.(value & opt int 100_000 & info [ "count" ] ~docv:"N" ~doc)
  in
  let labeled_arg =
    let doc = "Number of labeled points (0 = count/200, the sparse regime)." in
    Arg.(value & opt int 0 & info [ "labeled" ] ~docv:"L" ~doc)
  in
  let k_arg =
    let doc = "Neighbours per vertex in the kNN graph." in
    Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)
  in
  let recall_arg =
    let doc =
      "Recall floor for the approximate neighbour search; the build \
       escalates its probe budget until a sampled recall reaches $(docv)."
    in
    Arg.(value & opt float 0.9 & info [ "recall-target" ] ~docv:"R" ~doc)
  in
  let exact_arg =
    let doc =
      "Also build the exact O(n²) kNN graph and report the wall-clock \
       ratio (keep $(b,--count) modest with this on)."
    in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let no_flat_arg =
    let doc =
      "Skip the flat (Jacobi-preconditioned) CG comparison solve and its \
       iteration-reduction contract."
    in
    Arg.(value & flag & info [ "no-flat" ] ~doc)
  in
  let run count labeled k recall_target exact no_flat seed domains tune =
    setup_logs ();
    let domains = resolve_domains domains in
    resolve_tune tune;
    if count < 16 then failwith "scale: --count must be at least 16";
    let labeled =
      if labeled = 0 then Stdlib.max 4 (count / 200) else labeled
    in
    if labeled >= count then failwith "scale: --labeled must be below --count";
    Telemetry.Registry.enable ();
    Telemetry.Registry.reset ();
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let failures = ref [] in
    let contract name ok detail =
      Printf.printf "  contract %-24s %s  (%s)\n" name
        (if ok then "ok" else "VIOLATED")
        detail;
      if not ok then failures := name :: !failures
    in
    Printf.printf
      "scale pipeline: %d vertices, %d labeled, k=%d, %d domain(s)\n\n%!" count
      labeled k domains;
    let rng = Prng.Rng.create seed in
    let samples =
      Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 count
    in
    let points = Array.map (fun s -> s.Dataset.Synthetic.x) samples in
    let labels =
      Array.init labeled (fun i -> samples.(i).Dataset.Synthetic.y)
    in
    let h = Kernel.Bandwidth.paper_rate ~d:5 labeled in
    let (w, info), ann_ms =
      time (fun () ->
          Kernel.Similarity.knn_approx ~kernel:Kernel.Kernel_fn.Rbf
            ~bandwidth:h ~k ~seed:(seed lxor 0xa55) ~recall_target points)
    in
    let edges = (Sparse.Csr.nnz w - count) / 2 in
    (match info with
    | Kernel.Similarity.Exact ->
        Printf.printf "graph    exact kNN (n below cutoff)  %10.1f ms  %d edges\n%!"
          ann_ms edges
    | Kernel.Similarity.Approximate { recall; probes; escalations; trees } ->
        Printf.printf
          "graph    ANN kNN  %10.1f ms  %d edges  recall %.3f  (%d trees, \
           %d-leaf probes, %d escalation(s))\n%!"
          ann_ms edges recall trees probes escalations);
    (match exact with
    | false -> ()
    | true ->
        let _, exact_ms =
          time (fun () ->
              Kernel.Similarity.knn ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:h
                ~k points)
        in
        Printf.printf
          "         exact kNN reference   %10.1f ms  (%.1fx slower)\n%!" exact_ms
          (exact_ms /. Stdlib.max 1e-9 ann_ms));
    let problem =
      Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_sparse w) ~labels
    in
    let (w22, deg, _b), asm_ms =
      time (fun () -> Gssl.Scalable.system_lap problem)
    in
    let hier, coarsen_ms =
      time (fun () -> Sparse.Coarsen.build ~w:w22 ~diag:deg ())
    in
    let sizes =
      String.concat " > "
        (List.init (Sparse.Coarsen.depth hier) (fun l ->
             string_of_int (Sparse.Coarsen.level_size hier l)))
    in
    Printf.printf "system   assembly %9.1f ms   coarsening %8.1f ms\n%!" asm_ms
      coarsen_ms;
    Printf.printf "levels   %s\n%!" sizes;
    let iters_before () = Telemetry.Counter.get "cg.iterations" in
    let solve precond =
      let before = iters_before () in
      let x, ms =
        time (fun () ->
            Gssl.Scalable.solve_hard ~tol:1e-8 ~precond ~unanchored:`Impute
              problem)
      in
      (x, ms, iters_before () - before)
    in
    let mg_x, mg_ms, mg_iters = solve `Multigrid in
    Printf.printf "solve    multigrid CG %8.1f ms   %4d iteration(s)\n%!" mg_ms
      mg_iters;
    let imputed = Telemetry.Counter.get "gssl.scalable_imputed" in
    if imputed > 0 then
      Printf.printf "         (%d unanchored vertex/vertices imputed to the \
                     labeled mean)\n"
        imputed;
    print_newline ();
    (match info with
    | Kernel.Similarity.Exact -> ()
    | Kernel.Similarity.Approximate { recall; _ } ->
        contract "ann_recall" (recall >= recall_target)
          (Printf.sprintf "%.3f >= %.2f" recall recall_target));
    if not no_flat then begin
      let flat_x, flat_ms, flat_iters = solve `Jacobi in
      Printf.printf "  flat (Jacobi) CG %8.1f ms   %4d iteration(s)\n%!" flat_ms
        flat_iters;
      let diff = ref 0. in
      Array.iteri
        (fun i v -> diff := Stdlib.max !diff (abs_float (v -. flat_x.(i))))
        mg_x;
      let scale_ref =
        Array.fold_left (fun a v -> Stdlib.max a (abs_float v)) 1. flat_x
      in
      contract "mg_iteration_reduction" (mg_iters < flat_iters)
        (Printf.sprintf "%d < %d" mg_iters flat_iters);
      (* Both solves stop at the same relative residual (1e-8), but the
         forward error each carries grows with the conditioning — and CG
         needs ~sqrt(kappa) iterations, so iters^2 is a measured proxy
         for kappa that keeps the bound meaningful from 10^3 to 10^6
         vertices.  A broken preconditioner disagrees at O(1), orders of
         magnitude past this. *)
      let kappa_est = float_of_int (Stdlib.max 1 (Stdlib.max flat_iters mg_iters)) in
      let agree_tol = Stdlib.max 1e-6 (1e-8 *. kappa_est *. kappa_est) in
      contract "solver_agreement" (!diff <= agree_tol *. scale_ref)
        (Printf.sprintf "max|mg - flat| = %.2e (tol %.1e)" !diff
           (agree_tol *. scale_ref))
    end;
    print_newline ();
    print_string (Telemetry.Export.to_text ());
    Telemetry.Registry.disable ();
    Telemetry.Registry.reset ();
    match !failures with
    | [] -> ()
    | fs ->
        Printf.eprintf "scale: %d contract(s) violated: %s\n" (List.length fs)
          (String.concat ", " (List.rev fs));
        exit 1
  in
  let term =
    Term.(
      const run $ count_arg $ labeled_arg $ k_arg $ recall_arg $ exact_arg
      $ no_flat_arg $ seed_arg 11 $ domains_arg $ tune_arg)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Million-vertex scaling demo: approximate kNN graph construction, \
          heavy-edge coarsening, and a multigrid-preconditioned hard solve, \
          with a telemetry breakdown and enforced scaling contracts.")
    term

let all_cmd =
  let run reps seed markdown no_plot profile profile_json trace_out =
    setup_logs ();
    with_profile profile profile_json trace_out (fun () ->
        let plot = not no_plot in
        let show = print_figure ~markdown ~plot ~svg:None in
        print_string (Experiment.Figures.toy_demo ~n:20 ~m:10 ~seed:42);
        print_newline ();
        show (Experiment.Figures.fig1 ~reps ~seed ());
        show (Experiment.Figures.fig2 ~reps ~seed:(seed + 1) ());
        show (Experiment.Figures.fig3 ~reps ~seed:(seed + 2) ());
        show (Experiment.Figures.fig4 ~reps ~seed:(seed + 3) ());
        show
          (Experiment.Figures.fig5
             ~reps:(Stdlib.max 1 (reps / 10))
             ~seed:(seed + 4) ());
        show (Experiment.Figures.consistency_demo ~seed:(seed + 5) ());
        print_string (Experiment.Figures.complexity_table ~seed:(seed + 6) ()))
  in
  let term =
    Term.(
      const run $ reps_arg 10 $ seed_arg 1 $ markdown_arg $ no_plot_arg
      $ profile_arg $ profile_json_arg $ trace_out_arg)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every reproduction in sequence.") term

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'On Consistency of Graph-based Semi-supervised \
         Learning' (Du, Zhao & Wang)."
  in
  let group =
    Cmd.group info
      [
        fig1_cmd; fig2_cmd; fig3_cmd; fig4_cmd; fig5_cmd; toy_cmd; consistency_cmd;
        complexity_cmd; ablation_cmd; baselines_cmd; future_cmd; robust_cmd;
        health_cmd; artifacts_cmd; soak_cmd; serve_cmd; client_cmd;
        netsoak_cmd; top_cmd; journal_cmd; scale_cmd; all_cmd;
      ]
  in
  exit (Cmd.eval group)
