lib/prng/distributions.mli: Linalg Rng
