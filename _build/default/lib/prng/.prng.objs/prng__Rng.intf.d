lib/prng/rng.mli:
