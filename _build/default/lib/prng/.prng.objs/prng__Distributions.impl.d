lib/prng/distributions.ml: Array Linalg Rng
