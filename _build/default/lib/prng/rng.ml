type t = { gen : Xoshiro256.t; seed : int64 }

let create seed = { gen = Xoshiro256.of_int seed; seed = Int64.of_int seed }
let create64 seed = { gen = Xoshiro256.create seed; seed }
let copy t = { t with gen = Xoshiro256.copy t.gen }
let split t = { t with gen = Xoshiro256.split t.gen }

let substream t k = create64 (Splitmix64.derive t.seed k)

let int64 t = Xoshiro256.next t.gen

(* 53 high bits -> float in [0,1) *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t a b =
  if a > b then invalid_arg "Rng.uniform: empty interval";
  a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling on the top bits to avoid modulo bias *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    (* r uniform in [0, 2^63) *)
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int n64) in
    if r >= limit then draw () else Int64.to_int (Int64.rem r n64)
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p < 0. || p > 1. then invalid_arg "Rng.bernoulli: p outside [0,1]";
  float t < p

let shuffle_inplace t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_inplace t a;
  a

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement: k outside [0,n]";
  (* partial Fisher-Yates: O(n) memory, O(n + k) time *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
