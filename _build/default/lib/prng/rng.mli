(** The random-number interface used everywhere in the reproduction.

    A thin stateful wrapper over {!Xoshiro256} with the usual sampling
    helpers.  There is deliberately no global generator: every function
    that needs randomness takes an explicit [Rng.t], which is what makes
    the figure reproductions bit-deterministic. *)

type t

val create : int -> t
(** [create seed] — any integer seed. *)

val create64 : int64 -> t
val copy : t -> t

val split : t -> t
(** Non-overlapping independent stream (2^128 jump). *)

val substream : t -> int -> t
(** [substream rng k] is a fresh generator for logical stream [k], derived
    from (not advancing) [rng]'s current state.  Used for replicate [k] of
    an experiment. *)

val int64 : t -> int64
(** Raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val uniform : t -> float -> float -> float
(** [uniform rng a b] — uniform in [a, b).  Raises [Invalid_argument] if
    [a > b]. *)

val int : t -> int -> int
(** [int rng n] — uniform in [0, n); unbiased (rejection).  Raises
    [Invalid_argument] if [n <= 0]. *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli rng p] — true with probability [p].  Raises
    [Invalid_argument] unless [0 ≤ p ≤ 1]. *)

val shuffle_inplace : t -> 'a array -> unit
(** Fisher–Yates. *)

val permutation : t -> int -> int array
(** Uniformly random permutation of [0 … n−1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement rng k n] — [k] distinct indices from
    [0 … n−1], in random order.  Raises [Invalid_argument] if [k > n] or
    [k < 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform element.  Raises [Invalid_argument] on an empty array. *)
