module Vec = Linalg.Vec
module Mat = Linalg.Mat

(* Marsaglia polar method.  We deliberately do not cache the second deviate:
   caching would make the sample count depend on call history, which breaks
   the reproducibility contract of substreams. *)
let standard_normal rng =
  let rec draw () =
    let u = Rng.uniform rng (-1.) 1. in
    let v = Rng.uniform rng (-1.) 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw () else u *. sqrt (-2. *. log s /. s)
  in
  draw ()

let normal rng ~mean ~std =
  if std < 0. then invalid_arg "Distributions.normal: negative std";
  mean +. (std *. standard_normal rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Distributions.exponential: rate must be positive";
  -.log (1. -. Rng.float rng) /. rate

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Distributions.binomial: negative n";
  if p < 0. || p > 1. then invalid_arg "Distributions.binomial: p outside [0,1]";
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng p then incr count
  done;
  !count

let categorical rng weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Distributions.categorical: empty weights";
  let total = ref 0. in
  Array.iter
    (fun w ->
      if w < 0. then invalid_arg "Distributions.categorical: negative weight";
      total := !total +. w)
    weights;
  if !total <= 0. then invalid_arg "Distributions.categorical: all-zero weights";
  let u = Rng.float rng *. !total in
  let acc = ref 0. and result = ref (n - 1) in
  (try
     for i = 0 to n - 1 do
       acc := !acc +. weights.(i);
       if u < !acc then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  !result

type mvn = { mean : Vec.t; chol : Mat.t }

let mvn_make ~mean ~cov =
  if Array.length mean <> cov.Mat.rows then
    invalid_arg "Distributions.mvn_make: dimension mismatch";
  { mean; chol = Linalg.Cholesky.factor cov }

let mvn_dim m = Array.length m.mean

let mvn_sample rng m =
  let d = mvn_dim m in
  let z = Array.init d (fun _ -> standard_normal rng) in
  Vec.add m.mean (Mat.mv m.chol z)

let truncated_mvn_sample rng m =
  let x = mvn_sample rng m in
  Array.map (fun v -> if v >= 0. && v <= 1. then v else 0.) x
