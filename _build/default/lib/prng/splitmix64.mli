(** SplitMix64 — a tiny, high-quality 64-bit mixer.

    Used only to expand user seeds into the state of {!Xoshiro256} and to
    derive independent per-replicate streams; every experiment in the
    reproduction is keyed by one integer seed through this module. *)

type t

val create : int64 -> t
val of_int : int -> t

val next : t -> int64
(** Advance the state and return the next 64-bit output. *)

val mix : int64 -> int64
(** The stateless finalizer (one round of SplitMix64 output mixing). *)

val derive : int64 -> int -> int64
(** [derive seed k] is a well-separated sub-seed for stream [k] —
    replicate [k] of an experiment uses [derive master_seed k]. *)
