(** xoshiro256++ — the core pseudo-random generator.

    256 bits of state, period 2^256 − 1, excellent statistical quality.
    Seeded through {!Splitmix64} so that any 64-bit seed yields a
    well-mixed initial state. *)

type t

val create : int64 -> t
(** Seed via SplitMix64 expansion. *)

val of_int : int -> t
val copy : t -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val jump : t -> unit
(** Advance by 2^128 steps — produces non-overlapping sequences for
    parallel streams. *)

val split : t -> t
(** [split t] returns a copy of [t] jumped ahead by 2^128, leaving [t]
    itself untouched.  The two generators never overlap. *)
