(** Samplers for the distributions used by the paper's experiments.

    All samplers take an explicit {!Rng.t}.  The multivariate-normal
    sampler pre-factors the covariance once ({!mvn_make}) so that the
    synthetic-data generator can draw thousands of points cheaply. *)

val standard_normal : Rng.t -> float
(** Marsaglia polar method. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Raises [Invalid_argument] if [std < 0]. *)

val exponential : Rng.t -> rate:float -> float
(** Raises [Invalid_argument] if [rate <= 0]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Sum of [n] Bernoulli trials.  Raises [Invalid_argument] on [n < 0] or
    [p] outside [0,1]. *)

val categorical : Rng.t -> float array -> int
(** Sample an index proportionally to the (nonnegative) weights.
    Raises [Invalid_argument] on empty, negative or all-zero weights. *)

(** {1 Multivariate normal} *)

type mvn
(** A mean vector plus the Cholesky factor of the covariance. *)

val mvn_make : mean:Linalg.Vec.t -> cov:Linalg.Mat.t -> mvn
(** Raises [Invalid_argument] on dimension mismatch and
    {!Linalg.Cholesky.Not_positive_definite} if [cov] is not SPD. *)

val mvn_sample : Rng.t -> mvn -> Linalg.Vec.t

val mvn_dim : mvn -> int

(** {1 The paper's truncated inputs}

    Section V-A: draw [X̃ ~ N(mu, Sigma)] and set each component to 0 when
    it falls outside [0, 1] — note this is *censoring to zero*, not
    rejection, exactly as specified ("let X_ik = X̃_ik if X̃_ik ∈ [0,1]
    and X_ik = 0 otherwise"). *)

val truncated_mvn_sample : Rng.t -> mvn -> Linalg.Vec.t
(** Every component of the result lies in [0, 1]. *)
