let check_nonempty name x =
  if Array.length x = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty array")

let mean x =
  check_nonempty "mean" x;
  Array.fold_left ( +. ) 0. x /. float_of_int (Array.length x)

let sum_sq_dev x =
  let m = mean x in
  Array.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0. x

let variance x =
  if Array.length x < 2 then invalid_arg "Descriptive.variance: need >= 2 points";
  sum_sq_dev x /. float_of_int (Array.length x - 1)

let population_variance x =
  check_nonempty "population_variance" x;
  sum_sq_dev x /. float_of_int (Array.length x)

let std x = sqrt (variance x)
let standard_error x = std x /. sqrt (float_of_int (Array.length x))

let quantile x p =
  check_nonempty "quantile" x;
  if p < 0. || p > 1. then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy x in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median x = quantile x 0.5

let min_max x =
  check_nonempty "min_max" x;
  Array.fold_left
    (fun (lo, hi) v -> (Stdlib.min lo v, Stdlib.max hi v))
    (x.(0), x.(0)) x

let covariance x y =
  if Array.length x <> Array.length y then
    invalid_arg "Descriptive.covariance: length mismatch";
  if Array.length x < 2 then invalid_arg "Descriptive.covariance: need >= 2 points";
  let mx = mean x and my = mean y in
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
  done;
  !acc /. float_of_int (Array.length x - 1)

let correlation x y =
  let sx = std x and sy = std y in
  if sx = 0. || sy = 0. then
    invalid_arg "Descriptive.correlation: constant input";
  covariance x y /. (sx *. sy)

let median_of_pairwise_sq_distances points =
  let n = Array.length points in
  if n < 2 then
    invalid_arg "Descriptive.median_of_pairwise_sq_distances: need >= 2 points";
  let dists = Array.make (n * (n - 1) / 2) 0. in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      dists.(!k) <- Linalg.Vec.dist2_sq points.(i) points.(j);
      incr k
    done
  done;
  median dists
