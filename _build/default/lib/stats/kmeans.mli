(** k-means clustering (k-means++ initialisation, Lloyd iterations).

    Substrate for spectral clustering: after embedding graph vertices
    into the Laplacian eigenspace, k-means recovers the clusters.  Also
    usable directly on raw features. *)

type t = {
  centroids : Linalg.Vec.t array;  (** k centroids *)
  assignments : int array;         (** cluster index per input point *)
  inertia : float;                 (** Σ ‖x − centroid(x)‖² *)
  iterations : int;
}

val fit :
  ?max_iter:int ->
  ?tol:float ->
  rng:Prng.Rng.t ->
  k:int ->
  Linalg.Vec.t array ->
  t
(** Lloyd's algorithm from a k-means++ seeding.  [max_iter] defaults to
    300, [tol] (centroid-movement sup-norm) to 1e-9.  Empty clusters are
    re-seeded with the point farthest from its centroid.  Raises
    [Invalid_argument] when [k < 1], [k] exceeds the number of points,
    or the input is empty/ragged. *)

val assign : t -> Linalg.Vec.t -> int
(** Nearest centroid of a new point. *)

val agreement : truth:int array -> int array -> float
(** Best-permutation clustering accuracy for up to 8 clusters (exact
    search over label permutations).  Raises [Invalid_argument] on
    length mismatch, empty input, or more than 8 distinct labels. *)
