(** Welford online mean/variance accumulator.

    The experiment sweeps aggregate hundreds of replicate RMSEs without
    keeping them all; this accumulator does it in O(1) memory with
    numerically stable updates. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Raises [Invalid_argument] when empty. *)

val variance : t -> float
(** Unbiased; raises [Invalid_argument] with fewer than 2 observations. *)

val std : t -> float
val standard_error : t -> float
val merge : t -> t -> t
(** Combine two accumulators (parallel Welford / Chan et al.). *)
