(** ROC curves and the area under them (AUC).

    Figure 5 of the paper measures classifier quality on the COIL data by
    AUC.  Two independent computations are provided — the trapezoidal area
    under the empirical ROC curve and the Mann–Whitney U statistic — which
    agree exactly when ties are handled with the ½ convention; the test
    suite exercises that agreement. *)

type point = { fpr : float; tpr : float; threshold : float }

val curve : truth:bool array -> scores:float array -> point array
(** The empirical ROC curve, one point per distinct score threshold,
    ordered from (0,0) to (1,1).  Raises [Invalid_argument] on mismatch,
    or when either class is empty. *)

val auc_trapezoid : truth:bool array -> scores:float array -> float
(** Area under {!curve} by the trapezoidal rule. *)

val auc : truth:bool array -> scores:float array -> float
(** Mann–Whitney form: P(score⁺ > score⁻) + ½·P(score⁺ = score⁻),
    computed in O(N log N).  Raises like {!curve}. *)
