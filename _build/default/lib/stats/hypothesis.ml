type result = { statistic : float; p_value : float; df : float }

(* ---------- special functions ---------- *)

(* Lanczos approximation of log Gamma (g = 7, n = 9), |error| < 1e-13. *)
let log_gamma =
  let coefficients =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  fun x ->
    if x <= 0. then invalid_arg "Hypothesis.log_gamma: nonpositive argument";
    if x < 0.5 then
      (* reflection *)
      log (Float.pi /. sin (Float.pi *. x))
      -. (let rec lg x = if x <= 0. then invalid_arg "log_gamma" else lg_pos x
          and lg_pos x =
            let x = x -. 1. in
            let a = ref coefficients.(0) in
            let t = x +. 7.5 in
            for i = 1 to 8 do
              a := !a +. (coefficients.(i) /. (x +. float_of_int i))
            done;
            (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
          in
          lg (1. -. x))
    else begin
      let x = x -. 1. in
      let a = ref coefficients.(0) in
      let t = x +. 7.5 in
      for i = 1 to 8 do
        a := !a +. (coefficients.(i) /. (x +. float_of_int i))
      done;
      (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
    end

(* Regularised incomplete beta I_x(a,b) by Lentz's continued fraction
   (Numerical Recipes betacf/betai). *)
let incomplete_beta ~a ~b x =
  if x < 0. || x > 1. then invalid_arg "Hypothesis.incomplete_beta: x outside [0,1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let beta_cf a b x =
      let max_iter = 200 and eps = 3e-14 and fpmin = 1e-300 in
      let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
      let c = ref 1. in
      let d = ref (1. -. (qab *. x /. qap)) in
      if abs_float !d < fpmin then d := fpmin;
      d := 1. /. !d;
      let h = ref !d in
      let m = ref 1 in
      let converged = ref false in
      while (not !converged) && !m <= max_iter do
        let mf = float_of_int !m in
        let m2 = 2. *. mf in
        let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
        d := 1. +. (aa *. !d);
        if abs_float !d < fpmin then d := fpmin;
        c := 1. +. (aa /. !c);
        if abs_float !c < fpmin then c := fpmin;
        d := 1. /. !d;
        h := !h *. !d *. !c;
        let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
        d := 1. +. (aa *. !d);
        if abs_float !d < fpmin then d := fpmin;
        c := 1. +. (aa /. !c);
        if abs_float !c < fpmin then c := fpmin;
        d := 1. /. !d;
        let delta = !d *. !c in
        h := !h *. delta;
        if abs_float (delta -. 1.) < eps then converged := true;
        incr m
      done;
      !h
    in
    let front =
      exp
        ((a *. log x) +. (b *. log (1. -. x))
        +. log_gamma (a +. b) -. log_gamma a -. log_gamma b)
    in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. beta_cf a b x /. a
    else 1. -. (front *. beta_cf b a (1. -. x) /. b)
  end

let student_t_cdf ~df t =
  if df <= 0. then invalid_arg "Hypothesis.student_t_cdf: df must be positive";
  let x = df /. (df +. (t *. t)) in
  let tail = 0.5 *. incomplete_beta ~a:(df /. 2.) ~b:0.5 x in
  if t >= 0. then 1. -. tail else tail

(* Φ via erfc rational approximation (Numerical Recipes), |err| < 1.2e-7 *)
let normal_cdf x =
  let z = abs_float x /. sqrt 2. in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -.(z *. z) -. 1.26551223
    +. (t *. (1.00002368
        +. t *. (0.37409196
           +. t *. (0.09678418
              +. t *. (-0.18628806
                 +. t *. (0.27886807
                    +. t *. (-1.13520398
                       +. t *. (1.48851587
                          +. t *. (-0.82215223 +. (t *. 0.17087277))))))))))
  in
  let erfc = t *. exp poly in
  let phi = 1. -. (0.5 *. erfc) in
  if x >= 0. then phi else 1. -. phi

let log_binomial_coefficient n k =
  if k < 0 || k > n then invalid_arg "Hypothesis.log_binomial_coefficient";
  log_gamma (float_of_int (n + 1))
  -. log_gamma (float_of_int (k + 1))
  -. log_gamma (float_of_int (n - k + 1))

(* ---------- tests ---------- *)

let differences name x y =
  if Array.length x <> Array.length y then
    invalid_arg ("Hypothesis." ^ name ^ ": length mismatch");
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let paired_t_test x y =
  let d = differences "paired_t_test" x y in
  let n = Array.length d in
  if n < 2 then invalid_arg "Hypothesis.paired_t_test: need >= 2 pairs";
  let mean = Descriptive.mean d in
  let sd = Descriptive.std d in
  if sd = 0. then
    invalid_arg "Hypothesis.paired_t_test: zero variance in differences";
  let t = mean /. (sd /. sqrt (float_of_int n)) in
  let df = float_of_int (n - 1) in
  let p = 2. *. (1. -. student_t_cdf ~df (abs_float t)) in
  { statistic = t; p_value = Stdlib.min 1. p; df }

let sign_test x y =
  let d = differences "sign_test" x y in
  let pos = Array.fold_left (fun acc v -> if v > 0. then acc + 1 else acc) 0 d in
  let neg = Array.fold_left (fun acc v -> if v < 0. then acc + 1 else acc) 0 d in
  let n = pos + neg in
  if n = 0 then invalid_arg "Hypothesis.sign_test: all pairs tie";
  (* exact two-sided binomial(n, 1/2) tail *)
  let log_half = log 0.5 in
  let pmf k = exp (log_binomial_coefficient n k +. (float_of_int n *. log_half)) in
  let lower = ref 0. and upper = ref 0. in
  for k = 0 to n do
    if k <= pos then lower := !lower +. pmf k;
    if k >= pos then upper := !upper +. pmf k
  done;
  let p = Stdlib.min 1. (2. *. Stdlib.min !lower !upper) in
  { statistic = float_of_int pos; p_value = p; df = nan }

let wilcoxon_signed_rank x y =
  let d =
    Array.of_list
      (List.filter (fun v -> v <> 0.) (Array.to_list (differences "wilcoxon" x y)))
  in
  let n = Array.length d in
  if n = 0 then invalid_arg "Hypothesis.wilcoxon_signed_rank: all pairs tie";
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (abs_float d.(a)) (abs_float d.(b))) order;
  let ranks = Array.make n 0. in
  let tie_correction = ref 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while
      !j < n && abs_float d.(order.(!j)) = abs_float d.(order.(!i))
    do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 1) /. 2. in
    let t = float_of_int (!j - !i) in
    if t > 1. then tie_correction := !tie_correction +. ((t *. t *. t) -. t);
    for k = !i to !j - 1 do
      ranks.(order.(k)) <- avg_rank
    done;
    i := !j
  done;
  let w_plus = ref 0. in
  Array.iteri (fun k v -> if v > 0. then w_plus := !w_plus +. ranks.(k)) d;
  let nf = float_of_int n in
  let mean = nf *. (nf +. 1.) /. 4. in
  let var =
    (nf *. (nf +. 1.) *. ((2. *. nf) +. 1.) /. 24.) -. (!tie_correction /. 48.)
  in
  if var <= 0. then invalid_arg "Hypothesis.wilcoxon_signed_rank: zero variance";
  (* continuity-corrected normal approximation *)
  let z = (abs_float (!w_plus -. mean) -. 0.5) /. sqrt var in
  let z = Stdlib.max 0. z in
  let p = Stdlib.min 1. (2. *. (1. -. normal_cdf z)) in
  { statistic = !w_plus; p_value = p; df = nan }
