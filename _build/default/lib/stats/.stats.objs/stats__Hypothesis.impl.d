lib/stats/hypothesis.ml: Array Descriptive Float List Stdlib
