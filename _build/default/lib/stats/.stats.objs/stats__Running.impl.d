lib/stats/running.ml:
