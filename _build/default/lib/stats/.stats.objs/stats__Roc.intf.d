lib/stats/roc.mli:
