lib/stats/pca.ml: Array Linalg Stdlib
