lib/stats/running.mli:
