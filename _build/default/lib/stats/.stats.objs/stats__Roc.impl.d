lib/stats/roc.ml: Array List
