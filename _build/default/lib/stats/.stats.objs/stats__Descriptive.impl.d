lib/stats/descriptive.ml: Array Linalg Stdlib
