lib/stats/calibration.ml: Array Stdlib
