lib/stats/metrics.mli:
