lib/stats/pca.mli: Linalg
