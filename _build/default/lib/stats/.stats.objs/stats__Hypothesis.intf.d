lib/stats/hypothesis.mli:
