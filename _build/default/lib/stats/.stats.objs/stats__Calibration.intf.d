lib/stats/calibration.mli:
