lib/stats/bootstrap.ml: Array Descriptive Prng
