lib/stats/descriptive.mli: Linalg
