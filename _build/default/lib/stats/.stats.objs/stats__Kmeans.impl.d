lib/stats/kmeans.ml: Array Fun Linalg List Prng Stdlib
