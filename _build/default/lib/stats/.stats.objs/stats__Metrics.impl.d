lib/stats/metrics.ml: Array
