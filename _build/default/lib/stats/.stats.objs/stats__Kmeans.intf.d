lib/stats/kmeans.mli: Linalg Prng
