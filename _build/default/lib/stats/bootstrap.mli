(** Non-parametric bootstrap confidence intervals.

    Percentile bootstrap over replicate measurements — used to attach
    intervals to the AUC/RMSE numbers reported in EXPERIMENTS.md. *)

type interval = { lower : float; upper : float; point : float }

val percentile_ci :
  ?resamples:int ->
  ?confidence:float ->
  rng:Prng.Rng.t ->
  (float array -> float) ->
  float array ->
  interval
(** [percentile_ci ~rng statistic data] — default 2000 resamples, 95%
    confidence.  [point] is the statistic of the original sample.
    Raises [Invalid_argument] on empty data, non-positive resamples, or
    confidence outside (0, 1). *)

val mean_ci :
  ?resamples:int -> ?confidence:float -> rng:Prng.Rng.t -> float array -> interval
(** Bootstrap CI of the mean. *)

val paired_difference_ci :
  ?resamples:int ->
  ?confidence:float ->
  rng:Prng.Rng.t ->
  float array ->
  float array ->
  interval
(** CI of [mean (x − y)] resampling pairs jointly.  A CI excluding 0 is
    the bootstrap analogue of a significant paired test.  Raises
    [Invalid_argument] on length mismatch. *)
