(** Probability-calibration diagnostics.

    The hard criterion's consistency (Theorem II.1) means its scores
    converge to the true conditional probability [E[Y|X]] — i.e. they are
    asymptotically *calibrated*.  The soft criterion's collapse towards
    the label mean destroys calibration even when ranking (AUC) degrades
    only mildly.  This module measures that: binned reliability curves
    and the expected/maximum calibration errors. *)

type bin = {
  lower : float;           (** bin left edge *)
  upper : float;
  mean_score : float;      (** average predicted score inside the bin *)
  empirical_rate : float;  (** fraction of positives inside the bin *)
  count : int;
}

val reliability : ?bins:int -> truth:bool array -> float array -> bin array
(** [reliability ~truth scores] with equal-width bins over [0, 1]
    (default 10); empty bins are omitted.  Raises [Invalid_argument] on
    length mismatch, empty input, [bins < 1], or scores outside
    [0, 1] (±1e-9). *)

val expected_calibration_error : ?bins:int -> truth:bool array -> float array -> float
(** ECE: Σ (count/n)·|mean score − empirical rate| over the bins. *)

val maximum_calibration_error : ?bins:int -> truth:bool array -> float array -> float
(** MCE: the worst bin's |mean score − empirical rate|. *)

val brier_score : truth:bool array -> float array -> float
(** Mean squared error of the probability forecasts — a proper scoring
    rule (calibration + refinement). *)

type decomposition = {
  reliability_term : float;  (** Σ (n_b/n)(s̄_b − r_b)² — lower is better calibrated *)
  resolution : float;        (** Σ (n_b/n)(r_b − r̄)² — higher is more informative *)
  uncertainty : float;       (** r̄(1 − r̄), data-only *)
}

val brier_decomposition : ?bins:int -> truth:bool array -> float array -> decomposition
(** Murphy's decomposition, [binned Brier ≈ reliability − resolution +
    uncertainty].  Distinguishes a forecaster that is calibrated *and*
    informative from one that is calibrated merely by always predicting
    the base rate (zero resolution) — exactly the difference between the
    hard criterion and the λ→∞ soft criterion. *)
