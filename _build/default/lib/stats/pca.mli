(** Principal component analysis.

    Standard preprocessing for image inputs before building similarity
    graphs (the COIL literature typically PCA-projects the pixel
    vectors).  Fitted by eigendecomposition of the covariance matrix for
    d ≤ n, which covers the 256-dimensional image case. *)

type t = {
  mean : Linalg.Vec.t;          (** feature means *)
  components : Linalg.Mat.t;    (** d×k, orthonormal columns, leading first *)
  explained_variance : Linalg.Vec.t;  (** k eigenvalues, descending *)
  total_variance : float;       (** trace of the full covariance *)
}

val fit : ?n_components:int -> Linalg.Vec.t array -> t
(** [fit points] — default keeps all [d] components.  Raises
    [Invalid_argument] on fewer than 2 points, ragged input, or
    [n_components] outside [1, d]. *)

val transform : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Project one point onto the retained components. *)

val transform_many : t -> Linalg.Vec.t array -> Linalg.Vec.t array

val inverse_transform : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Map a score vector back to the original space (lossy when
    [n_components < d]). *)

val explained_variance_ratio : t -> Linalg.Vec.t
(** Fraction of total variance captured per retained component (sums to
    ≤ 1). *)
