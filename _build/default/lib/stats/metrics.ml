let check name a b =
  if Array.length a <> Array.length b then
    invalid_arg ("Metrics." ^ name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg ("Metrics." ^ name ^ ": empty input")

let mse truth pred =
  check "mse" truth pred;
  let acc = ref 0. in
  for i = 0 to Array.length truth - 1 do
    let d = truth.(i) -. pred.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc /. float_of_int (Array.length truth)

let rmse truth pred = sqrt (mse truth pred)

let mae truth pred =
  check "mae" truth pred;
  let acc = ref 0. in
  for i = 0 to Array.length truth - 1 do
    acc := !acc +. abs_float (truth.(i) -. pred.(i))
  done;
  !acc /. float_of_int (Array.length truth)

type confusion = { tp : int; fp : int; tn : int; fn : int }

let confusion ?(threshold = 0.5) ~truth scores =
  if Array.length truth <> Array.length scores then
    invalid_arg "Metrics.confusion: length mismatch";
  let tp = ref 0 and fp = ref 0 and tn = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i t ->
      let positive = scores.(i) >= threshold in
      match (t, positive) with
      | true, true -> incr tp
      | false, true -> incr fp
      | false, false -> incr tn
      | true, false -> incr fn)
    truth;
  { tp = !tp; fp = !fp; tn = !tn; fn = !fn }

let total c = c.tp + c.fp + c.tn + c.fn

let safe_div num den = if den = 0. then 0. else num /. den

let accuracy c = safe_div (float_of_int (c.tp + c.tn)) (float_of_int (total c))
let precision c = safe_div (float_of_int c.tp) (float_of_int (c.tp + c.fp))
let recall c = safe_div (float_of_int c.tp) (float_of_int (c.tp + c.fn))
let specificity c = safe_div (float_of_int c.tn) (float_of_int (c.tn + c.fp))

let f1 c =
  let p = precision c and r = recall c in
  safe_div (2. *. p *. r) (p +. r)

let mcc c =
  let tp = float_of_int c.tp and fp = float_of_int c.fp in
  let tn = float_of_int c.tn and fn = float_of_int c.fn in
  let den = sqrt ((tp +. fp) *. (tp +. fn) *. (tn +. fp) *. (tn +. fn)) in
  safe_div ((tp *. tn) -. (fp *. fn)) den
