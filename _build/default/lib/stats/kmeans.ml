module Vec = Linalg.Vec

type t = {
  centroids : Vec.t array;
  assignments : int array;
  inertia : float;
  iterations : int;
}

let nearest centroids x =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun j c ->
      let d = Vec.dist2_sq c x in
      if d < !best_d then begin
        best_d := d;
        best := j
      end)
    centroids;
  (!best, !best_d)

(* k-means++: each next seed drawn with probability proportional to the
   squared distance to the nearest existing seed *)
let seed_plus_plus rng ~k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Prng.Rng.int rng n);
  let d2 = Array.map (fun x -> Vec.dist2_sq x centroids.(0)) points in
  for j = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0. d2 in
    let chosen =
      if total <= 0. then Prng.Rng.int rng n
      else begin
        let u = Prng.Rng.float rng *. total in
        let acc = ref 0. and pick = ref (n - 1) in
        (try
           for i = 0 to n - 1 do
             acc := !acc +. d2.(i);
             if u < !acc then begin
               pick := i;
               raise Exit
             end
           done
         with Exit -> ());
        !pick
      end
    in
    centroids.(j) <- points.(chosen);
    Array.iteri
      (fun i x -> d2.(i) <- Stdlib.min d2.(i) (Vec.dist2_sq x centroids.(j)))
      points
  done;
  centroids

let fit ?(max_iter = 300) ?(tol = 1e-9) ~rng ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.fit: empty input";
  if k < 1 || k > n then invalid_arg "Kmeans.fit: k outside [1, n]";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Kmeans.fit: ragged input")
    points;
  let centroids = seed_plus_plus rng ~k points in
  let assignments = Array.make n 0 in
  let iterations = ref 0 in
  let moved = ref infinity in
  while !moved > tol && !iterations < max_iter do
    incr iterations;
    (* assignment step *)
    Array.iteri
      (fun i x ->
        let j, _ = nearest centroids x in
        assignments.(i) <- j)
      points;
    (* update step *)
    let sums = Array.init k (fun _ -> Vec.zeros d) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i x ->
        let j = assignments.(i) in
        Vec.axpy 1. x sums.(j);
        counts.(j) <- counts.(j) + 1)
      points;
    moved := 0.;
    Array.iteri
      (fun j sum ->
        if counts.(j) > 0 then begin
          let next = Vec.scale (1. /. float_of_int counts.(j)) sum in
          moved := Stdlib.max !moved (Vec.norm_inf (Vec.sub next centroids.(j)));
          centroids.(j) <- next
        end
        else begin
          (* re-seed an empty cluster with the worst-fitted point *)
          let worst = ref 0 and worst_d = ref (-1.) in
          Array.iteri
            (fun i x ->
              let _, dist = nearest centroids x in
              if dist > !worst_d then begin
                worst_d := dist;
                worst := i
              end)
            points;
          centroids.(j) <- Vec.copy points.(!worst);
          moved := infinity
        end)
      sums
  done;
  let inertia =
    Array.fold_left
      (fun acc x ->
        let _, dist = nearest centroids x in
        acc +. dist)
      0. points
  in
  { centroids; assignments; inertia; iterations = !iterations }

let assign t x = fst (nearest t.centroids x)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let agreement ~truth predicted =
  let n = Array.length truth in
  if n = 0 then invalid_arg "Kmeans.agreement: empty input";
  if Array.length predicted <> n then invalid_arg "Kmeans.agreement: length mismatch";
  let k = 1 + Array.fold_left Stdlib.max 0 (Array.append truth predicted) in
  if k > 8 then invalid_arg "Kmeans.agreement: more than 8 clusters";
  let labels = List.init k Fun.id in
  let best = ref 0 in
  List.iter
    (fun perm ->
      let map = Array.of_list perm in
      let hits = ref 0 in
      Array.iteri
        (fun i p -> if map.(p) = truth.(i) then incr hits)
        predicted;
      if !hits > !best then best := !hits)
    (permutations labels);
  float_of_int !best /. float_of_int n
