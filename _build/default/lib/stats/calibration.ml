type bin = {
  lower : float;
  upper : float;
  mean_score : float;
  empirical_rate : float;
  count : int;
}

let validate ~truth scores =
  if Array.length truth <> Array.length scores then
    invalid_arg "Calibration: length mismatch";
  if Array.length truth = 0 then invalid_arg "Calibration: empty input";
  Array.iter
    (fun s ->
      if s < -1e-9 || s > 1. +. 1e-9 then
        invalid_arg "Calibration: scores must lie in [0,1]")
    scores

let reliability ?(bins = 10) ~truth scores =
  validate ~truth scores;
  if bins < 1 then invalid_arg "Calibration.reliability: bins < 1";
  let score_sum = Array.make bins 0. in
  let pos = Array.make bins 0 in
  let count = Array.make bins 0 in
  Array.iteri
    (fun i s ->
      let b = Stdlib.min (bins - 1) (Stdlib.max 0 (int_of_float (s *. float_of_int bins))) in
      score_sum.(b) <- score_sum.(b) +. s;
      count.(b) <- count.(b) + 1;
      if truth.(i) then pos.(b) <- pos.(b) + 1)
    scores;
  let out = ref [] in
  for b = bins - 1 downto 0 do
    if count.(b) > 0 then
      out :=
        {
          lower = float_of_int b /. float_of_int bins;
          upper = float_of_int (b + 1) /. float_of_int bins;
          mean_score = score_sum.(b) /. float_of_int count.(b);
          empirical_rate = float_of_int pos.(b) /. float_of_int count.(b);
          count = count.(b);
        }
        :: !out
  done;
  Array.of_list !out

let expected_calibration_error ?bins ~truth scores =
  let r = reliability ?bins ~truth scores in
  let n = float_of_int (Array.length truth) in
  Array.fold_left
    (fun acc b ->
      acc
      +. (float_of_int b.count /. n *. abs_float (b.mean_score -. b.empirical_rate)))
    0. r

let maximum_calibration_error ?bins ~truth scores =
  let r = reliability ?bins ~truth scores in
  Array.fold_left
    (fun acc b -> Stdlib.max acc (abs_float (b.mean_score -. b.empirical_rate)))
    0. r

let brier_score ~truth scores =
  validate ~truth scores;
  let acc = ref 0. in
  Array.iteri
    (fun i s ->
      let y = if truth.(i) then 1. else 0. in
      acc := !acc +. ((s -. y) *. (s -. y)))
    scores;
  !acc /. float_of_int (Array.length truth)

type decomposition = {
  reliability_term : float;
  resolution : float;
  uncertainty : float;
}

let brier_decomposition ?bins ~truth scores =
  let r = reliability ?bins ~truth scores in
  let n = float_of_int (Array.length truth) in
  let base_rate =
    float_of_int
      (Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 truth)
    /. n
  in
  let rel = ref 0. and res = ref 0. in
  Array.iter
    (fun b ->
      let w = float_of_int b.count /. n in
      let d_cal = b.mean_score -. b.empirical_rate in
      let d_res = b.empirical_rate -. base_rate in
      rel := !rel +. (w *. d_cal *. d_cal);
      res := !res +. (w *. d_res *. d_res))
    r;
  {
    reliability_term = !rel;
    resolution = !res;
    uncertainty = base_rate *. (1. -. base_rate);
  }
