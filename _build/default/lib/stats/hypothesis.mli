(** Paired hypothesis tests.

    Used to back the paper's "the hard criterion constantly outperforms
    the soft criterion" with significance levels over replicate pairs
    (each replicate evaluates both criteria on the same data). *)

type result = {
  statistic : float;
  p_value : float;   (** two-sided *)
  df : float;        (** degrees of freedom where applicable, else nan *)
}

val paired_t_test : float array -> float array -> result
(** Two-sided paired t-test of mean difference 0.  Raises
    [Invalid_argument] on mismatch, fewer than 2 pairs, or an
    identically-zero difference vector (no variance). *)

val sign_test : float array -> float array -> result
(** Two-sided exact sign test (binomial) on the difference signs; ties
    are dropped.  [statistic] is the number of positive differences,
    [df] is [nan].  Raises [Invalid_argument] on mismatch or when every
    pair ties. *)

val wilcoxon_signed_rank : float array -> float array -> result
(** Two-sided Wilcoxon signed-rank test with the normal approximation
    (tie-corrected); [statistic] is W₊.  Raises [Invalid_argument] on
    mismatch or when every pair ties. *)

(** {1 Distribution helpers (exposed for testing)} *)

val student_t_cdf : df:float -> float -> float
(** CDF of Student's t via the regularised incomplete beta function. *)

val normal_cdf : float -> float
val log_binomial_coefficient : int -> int -> float
