(** Prediction-quality metrics.

    The paper's Figures 1–4 report RMSE between the estimated scores and
    the *true regression function* [q(X)]; Figure 5 reports AUC (see
    {!Roc}).  Classification metrics operate on [bool array] truths. *)

val mse : float array -> float array -> float
(** Mean squared error.  Raises [Invalid_argument] on mismatch or empty. *)

val rmse : float array -> float array -> float
(** Root mean squared error — the paper's synthetic-data metric. *)

val mae : float array -> float array -> float

type confusion = { tp : int; fp : int; tn : int; fn : int }

val confusion : ?threshold:float -> truth:bool array -> float array -> confusion
(** [confusion ~truth scores] predicts positive when
    [score >= threshold] (default 0.5). *)

val accuracy : confusion -> float
val precision : confusion -> float
val recall : confusion -> float
(** Sensitivity / true-positive rate. *)

val specificity : confusion -> float
val f1 : confusion -> float
val mcc : confusion -> float
(** Matthews correlation coefficient; 0. when a marginal is empty. *)
