(** Descriptive statistics on [float array]s.

    Functions that are undefined on the empty array raise
    [Invalid_argument]. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased (n−1 denominator).  Raises on arrays shorter than 2. *)

val population_variance : float array -> float
(** Biased (n denominator). *)

val std : float array -> float
val standard_error : float array -> float
(** [std x /. sqrt n]. *)

val median : float array -> float
val quantile : float array -> float -> float
(** [quantile x p] with linear interpolation (type-7).  Raises
    [Invalid_argument] unless [0 ≤ p ≤ 1]. *)

val min_max : float array -> float * float

val covariance : float array -> float array -> float
(** Unbiased.  Raises on mismatch or length < 2. *)

val correlation : float array -> float array -> float
(** Pearson.  Raises [Invalid_argument] when either input is constant. *)

val median_of_pairwise_sq_distances : Linalg.Vec.t array -> float
(** The median heuristic used by the paper for the COIL experiment: median
    of [‖x_i − x_j‖²] over all pairs [i < j].  Raises [Invalid_argument]
    with fewer than two points. *)
