type interval = { lower : float; upper : float; point : float }

let percentile_ci ?(resamples = 2000) ?(confidence = 0.95) ~rng statistic data =
  let n = Array.length data in
  if n = 0 then invalid_arg "Bootstrap.percentile_ci: empty data";
  if resamples < 1 then invalid_arg "Bootstrap.percentile_ci: need resamples >= 1";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.percentile_ci: confidence outside (0,1)";
  let stats =
    Array.init resamples (fun _ ->
        let sample = Array.init n (fun _ -> data.(Prng.Rng.int rng n)) in
        statistic sample)
  in
  let alpha = (1. -. confidence) /. 2. in
  {
    lower = Descriptive.quantile stats alpha;
    upper = Descriptive.quantile stats (1. -. alpha);
    point = statistic data;
  }

let mean_ci ?resamples ?confidence ~rng data =
  percentile_ci ?resamples ?confidence ~rng Descriptive.mean data

let paired_difference_ci ?resamples ?confidence ~rng x y =
  if Array.length x <> Array.length y then
    invalid_arg "Bootstrap.paired_difference_ci: length mismatch";
  let d = Array.init (Array.length x) (fun i -> x.(i) -. y.(i)) in
  mean_ci ?resamples ?confidence ~rng d
