module Vec = Linalg.Vec
module Mat = Linalg.Mat

type t = {
  mean : Vec.t;
  components : Mat.t;
  explained_variance : Vec.t;
  total_variance : float;
}

let fit ?n_components points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Pca.fit: need at least 2 points";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Pca.fit: ragged input")
    points;
  let k = match n_components with None -> d | Some k -> k in
  if k < 1 || k > d then invalid_arg "Pca.fit: n_components outside [1, d]";
  let mean =
    Array.init d (fun j ->
        let acc = ref 0. in
        Array.iter (fun p -> acc := !acc +. p.(j)) points;
        !acc /. float_of_int n)
  in
  (* covariance via the Gram matrix of the centred data *)
  let centred = Mat.init n d (fun i j -> points.(i).(j) -. mean.(j)) in
  let cov = Mat.scale (1. /. float_of_int (n - 1)) (Mat.gram centred) in
  let { Linalg.Eigen.values; vectors } = Linalg.Eigen.jacobi cov in
  (* eigen returns ascending; take the top k in descending order *)
  let components =
    Mat.of_cols (Array.init k (fun j -> Mat.col vectors (d - 1 - j)))
  in
  let explained_variance =
    Array.init k (fun j -> Stdlib.max 0. values.(d - 1 - j))
  in
  { mean; components; explained_variance; total_variance = Mat.trace cov }

let transform t x =
  if Array.length x <> Array.length t.mean then
    invalid_arg "Pca.transform: dimension mismatch";
  Mat.tmv t.components (Vec.sub x t.mean)

let transform_many t points = Array.map (transform t) points

let inverse_transform t z =
  if Array.length z <> t.components.Mat.cols then
    invalid_arg "Pca.inverse_transform: dimension mismatch";
  Vec.add t.mean (Mat.mv t.components z)

let explained_variance_ratio t =
  if t.total_variance <= 0. then Vec.zeros (Array.length t.explained_variance)
  else Vec.scale (1. /. t.total_variance) t.explained_variance
