type point = { fpr : float; tpr : float; threshold : float }

let validate ~truth ~scores =
  if Array.length truth <> Array.length scores then
    invalid_arg "Roc: length mismatch";
  let pos = Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 truth in
  let neg = Array.length truth - pos in
  if pos = 0 || neg = 0 then invalid_arg "Roc: need both classes present";
  (pos, neg)

let curve ~truth ~scores =
  let pos, neg = validate ~truth ~scores in
  let n = Array.length truth in
  let order = Array.init n (fun i -> i) in
  (* descending by score *)
  Array.sort (fun a b -> compare scores.(b) scores.(a)) order;
  let fp = ref 0 and tp = ref 0 in
  let points = ref [ { fpr = 0.; tpr = 0.; threshold = infinity } ] in
  let prev_score = ref infinity in
  Array.iter
    (fun i ->
      (* emit a point before processing a new distinct threshold *)
      if scores.(i) <> !prev_score then begin
        if !prev_score <> infinity then
          points :=
            {
              fpr = float_of_int !fp /. float_of_int neg;
              tpr = float_of_int !tp /. float_of_int pos;
              threshold = !prev_score;
            }
            :: !points;
        prev_score := scores.(i)
      end;
      if truth.(i) then incr tp else incr fp)
    order;
  points :=
    {
      fpr = float_of_int !fp /. float_of_int neg;
      tpr = float_of_int !tp /. float_of_int pos;
      threshold = !prev_score;
    }
    :: !points;
  Array.of_list (List.rev !points)

let auc_trapezoid ~truth ~scores =
  let pts = curve ~truth ~scores in
  let area = ref 0. in
  for i = 1 to Array.length pts - 1 do
    let a = pts.(i - 1) and b = pts.(i) in
    area := !area +. ((b.fpr -. a.fpr) *. (a.tpr +. b.tpr) /. 2.)
  done;
  !area

(* Mann-Whitney via average ranks: AUC = (R_pos - n_pos(n_pos+1)/2)/(n_pos n_neg) *)
let auc ~truth ~scores =
  let pos, neg = validate ~truth ~scores in
  let n = Array.length truth in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare scores.(a) scores.(b)) order;
  let rank_sum_pos = ref 0. in
  let i = ref 0 in
  while !i < n do
    (* find the tie block [i, j) *)
    let j = ref (!i + 1) in
    while !j < n && scores.(order.(!j)) = scores.(order.(!i)) do
      incr j
    done;
    (* average rank of the block; ranks are 1-based *)
    let avg_rank = float_of_int (!i + !j + 1) /. 2. in
    for k = !i to !j - 1 do
      if truth.(order.(k)) then rank_sum_pos := !rank_sum_pos +. avg_rank
    done;
    i := !j
  done;
  let np = float_of_int pos and nn = float_of_int neg in
  (!rank_sum_pos -. (np *. (np +. 1.) /. 2.)) /. (np *. nn)
