module Mat = Linalg.Mat
module Vec = Linalg.Vec

let problem ~n ~m ~labels =
  if n < 1 then invalid_arg "Toy.problem: need n >= 1";
  if m < 0 then invalid_arg "Toy.problem: need m >= 0";
  if Array.length labels <> n then invalid_arg "Toy.problem: label count mismatch";
  let w = Mat.ones (n + m) (n + m) in
  Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels

let expected_prediction labels = Vec.mean labels

let expected_inverse ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Toy.expected_inverse: need n, m >= 1";
  let nf = float_of_int n and total = float_of_int (n + m) in
  Mat.init m m (fun a b ->
      if a = b then (nf +. 1.) /. (nf *. total) else 1. /. (nf *. total))

let system_inverse ~n ~m =
  let labels = Vec.zeros n in
  let p = problem ~n ~m ~labels in
  Linalg.Lu.inverse (Gssl.Hard.system_matrix p)
