(** A procedural stand-in for the Columbia Object Image Library (COIL)
    benchmark of Section V-B.

    The real dataset (24 objects photographed at 72 rotation angles,
    downsampled to 16×16 pixels, grouped into 6 classes of 4 objects,
    randomly thinned to 250 images per class = 1500 total, then binarised
    first-3-classes vs last-3) is not redistributable and unavailable in
    this environment, so we *simulate* it: each class is a family of
    parametric shapes (ellipse / rectangle / cross / superellipse / ring /
    triangle), each object an instance with its own geometry and a texture
    that rotates rigidly with it, rendered at the 72 angles with
    antialiased edges.  What graph-based SSL consumes is only the geometry
    of the pixel vectors — per-object 1-D rotation manifolds in ℝ²⁵⁶ with
    inter-class gaps — and the renderer produces exactly that structure.
    See DESIGN.md §4. *)

val image_side : int
(** 16. *)

val n_objects : int
(** 24. *)

val n_angles : int
(** 72. *)

val n_classes : int
(** 6 (4 objects each). *)

val images_per_class : int
(** 250 after thinning (the paper discards 38 of the 288 per class). *)

type image = {
  pixels : Linalg.Vec.t;  (** 256 grayscale values in [0, 1] *)
  object_id : int;        (** 0 … 23 *)
  angle_index : int;      (** 0 … 71 *)
  class_id : int;         (** 0 … 5 = object_id / 4 *)
}

val render : object_id:int -> angle_index:int -> Linalg.Vec.t
(** Deterministic render of one view.  Raises [Invalid_argument] on
    out-of-range ids. *)

type t = { images : image array }

val generate : ?noise:float -> Prng.Rng.t -> t
(** The full benchmark: render all views, thin each class to 250 using
    the given generator, optionally add N(0, noise²) pixel noise clamped
    back to [0,1] (default 0.02 — stands in for photographic noise).
    Raises [Invalid_argument] on negative noise. *)

val binary_label : image -> bool
(** The paper's binarisation: classes {0,1,2} positive, {3,4,5}
    negative. *)

val points : t -> Linalg.Vec.t array
val labels : t -> bool array
