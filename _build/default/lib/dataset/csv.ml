(* Hand-rolled RFC-4180-subset parser: a small state machine over the
   input string.  No external dependencies. *)

let parse text =
  let len = String.length text in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  let row_started = ref false in
  while !i < len do
    let c = text.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < len && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' ->
          in_quotes := true;
          row_started := true
      | ',' ->
          flush_field ();
          row_started := true
      | '\r' -> ()
      | '\n' ->
          if !row_started || Buffer.length buf > 0 || !fields <> [] then flush_row ();
          row_started := false
      | c ->
          Buffer.add_char buf c;
          row_started := true
    end;
    incr i
  done;
  if !in_quotes then failwith "Csv.parse: unclosed quoted field";
  if !row_started || Buffer.length buf > 0 || !fields <> [] then flush_row ();
  List.rev !rows

(* Empty fields are quoted so that a row of empty fields still renders as
   a visible row (a bare newline would be dropped on re-parse). *)
let needs_quoting s =
  s = "" || String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let render rows =
  let render_field f = if needs_quoting f then quote f else f in
  let render_row row = String.concat "," (List.map render_field row) in
  String.concat "\n" (List.map render_row rows) ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let write_file path rows =
  let oc = open_out_bin path in
  output_string oc (render rows);
  close_out oc

type labeled_data = {
  features : Linalg.Vec.t array;
  labels : float option array;
}

let float_field context s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Csv: non-numeric field %S in %s" s context)

let parse_numeric ?label_column ?(header = true) text =
  let rows = parse text in
  let rows =
    if header then match rows with _ :: t -> t | [] -> [] else rows
  in
  match rows with
  | [] -> { features = [||]; labels = [||] }
  | first :: _ ->
      let width = List.length first in
      let label_col =
        match label_column with Some c -> c | None -> width - 1
      in
      if label_col < 0 || label_col >= width then
        failwith "Csv.parse_numeric: label column out of range";
      let parse_row idx row =
        if List.length row <> width then
          failwith (Printf.sprintf "Csv.parse_numeric: ragged row %d" idx);
        let features = ref [] and label = ref None in
        List.iteri
          (fun j field ->
            if j = label_col then begin
              if String.trim field <> "" then
                label := Some (float_field (Printf.sprintf "row %d" idx) field)
            end
            else
              features :=
                float_field (Printf.sprintf "row %d" idx) field :: !features)
          row;
        (Array.of_list (List.rev !features), !label)
      in
      let parsed = List.mapi parse_row rows in
      {
        features = Array.of_list (List.map fst parsed);
        labels = Array.of_list (List.map snd parsed);
      }

let render_points ?labels points =
  let n = Array.length points in
  (match labels with
  | Some l when Array.length l <> n ->
      invalid_arg "Csv.render_points: labels length mismatch"
  | _ -> ());
  let d = if n = 0 then 0 else Array.length points.(0) in
  let header =
    List.init d (fun j -> Printf.sprintf "x%d" j) @ [ "label" ]
  in
  let rows =
    List.init n (fun i ->
        let feats =
          List.init d (fun j -> Printf.sprintf "%.17g" points.(i).(j))
        in
        let label =
          match labels with
          | None -> ""
          | Some l -> (
              match l.(i) with
              | None -> ""
              | Some y -> Printf.sprintf "%.17g" y)
        in
        feats @ [ label ])
  in
  render (header :: rows)
