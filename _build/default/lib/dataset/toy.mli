(** Section III's toy example: all inputs are the same constant point.

    With the RBF kernel every similarity is exactly 1, and the paper shows
    in closed form that the hard criterion predicts the labeled mean
    [ȳ = (1/n) Σ Y_i] at every unlabeled vertex, with the inverse
    [(D₂₂ − W₂₂)⁻¹] having the explicit (n+1)/(n(m+n)) / 1/(n(m+n))
    pattern.  The test suite checks both facts against the closed forms
    given here. *)

val problem : n:int -> m:int -> labels:Linalg.Vec.t -> Gssl.Problem.t
(** The toy problem: a complete graph of [n + m] vertices with all
    weights 1 (any constant input under RBF).  Raises [Invalid_argument]
    unless [Array.length labels = n], [n >= 1], [m >= 0]. *)

val expected_prediction : Linalg.Vec.t -> float
(** [ȳ] — the closed-form hard prediction on every unlabeled vertex. *)

val expected_inverse : n:int -> m:int -> Linalg.Mat.t
(** The closed form of [(D₂₂ − W₂₂)⁻¹]:
    diagonal [(n+1)/(n(m+n))], off-diagonal [1/(n(m+n))]. *)

val system_inverse : n:int -> m:int -> Linalg.Mat.t
(** The numerically computed [(D₂₂ − W₂₂)⁻¹] of the toy problem. *)
