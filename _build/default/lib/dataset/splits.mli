(** Train/test split machinery for the Section V-B protocol.

    The paper's three settings: (1) 5-fold — each fold once as the *test*
    set (80/20 labeled-to-unlabeled); (2) 5-fold with one fold as the
    *training* set (20/80); (3) 10-fold with one fold as training
    (10/90).  [k_folds] produces the fold partition; the experiment
    harness interprets each fold either way. *)

type fold = { train : int array; test : int array }

val k_folds : Prng.Rng.t -> n:int -> k:int -> fold array
(** Random partition of [0 … n−1] into [k] folds of near-equal size; fold
    [i]'s [test] is the i-th part, [train] is the rest.  Raises
    [Invalid_argument] unless [2 <= k <= n]. *)

val inverted : fold -> fold
(** Swap the roles of train and test — turns an 80/20 split into 20/80. *)

val ratio_split : Prng.Rng.t -> n:int -> labeled_fraction:float -> fold
(** One random split with [ceil (labeled_fraction · n)] training points.
    Raises [Invalid_argument] unless the fraction produces at least one
    point on each side. *)

val is_partition : n:int -> fold array -> bool
(** Check that the test sets partition [0 … n−1] (used by tests). *)
