module Vec = Linalg.Vec

type sample = { x : Vec.t; label : bool }

let generate ?(noise = 0.1) ?(radius = 1.0) ?(separation = 0.5) rng n =
  if n < 0 then invalid_arg "Two_moons.generate: negative count";
  if noise < 0. then invalid_arg "Two_moons.generate: negative noise";
  if radius <= 0. then invalid_arg "Two_moons.generate: radius must be positive";
  Array.init n (fun i ->
      let label = i mod 2 = 0 in
      let theta = Float.pi *. Prng.Rng.float rng in
      let jitter () = Prng.Distributions.normal rng ~mean:0. ~std:noise in
      (* moon 1: upper half circle; moon 2: lower half circle shifted right
         and down so the arms interleave *)
      let x, y =
        if label then (radius *. cos theta, radius *. sin theta)
        else
          ( radius -. (radius *. cos theta),
            separation -. (radius *. sin theta) )
      in
      { x = [| x +. jitter (); y +. jitter () |]; label })

let to_problem ?(bandwidth = 0.35) ~labeled_per_moon samples =
  if labeled_per_moon < 1 then
    invalid_arg "Two_moons.to_problem: need at least one label per moon";
  let moon1 = Array.of_list (List.filter (fun s -> s.label) (Array.to_list samples)) in
  let moon2 = Array.of_list (List.filter (fun s -> not s.label) (Array.to_list samples)) in
  if Array.length moon1 <= labeled_per_moon || Array.length moon2 <= labeled_per_moon
  then invalid_arg "Two_moons.to_problem: not enough samples per moon";
  let take k a = Array.sub a 0 k in
  let drop k a = Array.sub a k (Array.length a - k) in
  let labeled =
    Array.append
      (Array.map (fun s -> (s.x, 1.)) (take labeled_per_moon moon1))
      (Array.map (fun s -> (s.x, 0.)) (take labeled_per_moon moon2))
  in
  let unlabeled_samples =
    Array.append (drop labeled_per_moon moon1) (drop labeled_per_moon moon2)
  in
  let unlabeled = Array.map (fun s -> s.x) unlabeled_samples in
  let truth = Array.map (fun s -> s.label) unlabeled_samples in
  let problem =
    Gssl.Problem.of_points ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed bandwidth) ~labeled ~unlabeled
  in
  (problem, truth)
