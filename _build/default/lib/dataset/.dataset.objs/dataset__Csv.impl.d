lib/dataset/csv.ml: Array Buffer Linalg List Printf String
