lib/dataset/synthetic.ml: Array Gssl Lazy Linalg Prng
