lib/dataset/toy.ml: Array Graph Gssl Linalg
