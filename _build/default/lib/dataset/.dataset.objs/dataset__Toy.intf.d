lib/dataset/toy.mli: Gssl Linalg
