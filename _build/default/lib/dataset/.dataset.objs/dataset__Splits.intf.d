lib/dataset/splits.mli: Prng
