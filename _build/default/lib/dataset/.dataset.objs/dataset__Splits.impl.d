lib/dataset/splits.ml: Array Prng
