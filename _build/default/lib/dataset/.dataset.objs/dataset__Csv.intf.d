lib/dataset/csv.mli: Linalg
