lib/dataset/synthetic.mli: Gssl Kernel Linalg Prng
