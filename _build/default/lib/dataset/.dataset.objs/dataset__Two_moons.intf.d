lib/dataset/two_moons.mli: Gssl Linalg Prng
