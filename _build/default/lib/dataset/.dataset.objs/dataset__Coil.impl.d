lib/dataset/coil.ml: Array Float Linalg Prng Stdlib
