lib/dataset/two_moons.ml: Array Float Gssl Kernel Linalg List Prng
