lib/dataset/coil.mli: Linalg Prng
