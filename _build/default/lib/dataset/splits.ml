type fold = { train : int array; test : int array }

let k_folds rng ~n ~k =
  if k < 2 || k > n then invalid_arg "Splits.k_folds: need 2 <= k <= n";
  let perm = Prng.Rng.permutation rng n in
  (* fold f gets indices perm.(start_f .. start_{f+1}-1); sizes differ by
     at most one *)
  let base = n / k and extra = n mod k in
  let starts = Array.make (k + 1) 0 in
  for f = 0 to k - 1 do
    starts.(f + 1) <- starts.(f) + base + (if f < extra then 1 else 0)
  done;
  Array.init k (fun f ->
      let test = Array.sub perm starts.(f) (starts.(f + 1) - starts.(f)) in
      let train = Array.make (n - Array.length test) 0 in
      let pos = ref 0 in
      for g = 0 to k - 1 do
        if g <> f then begin
          let len = starts.(g + 1) - starts.(g) in
          Array.blit perm starts.(g) train !pos len;
          pos := !pos + len
        end
      done;
      { train; test })

let inverted { train; test } = { train = test; test = train }

let ratio_split rng ~n ~labeled_fraction =
  if labeled_fraction <= 0. || labeled_fraction >= 1. then
    invalid_arg "Splits.ratio_split: fraction must lie strictly in (0,1)";
  let n_train = int_of_float (ceil (labeled_fraction *. float_of_int n)) in
  if n_train < 1 || n_train >= n then
    invalid_arg "Splits.ratio_split: degenerate split";
  let perm = Prng.Rng.permutation rng n in
  { train = Array.sub perm 0 n_train; test = Array.sub perm n_train (n - n_train) }

let is_partition ~n folds =
  let seen = Array.make n 0 in
  Array.iter (fun { test; _ } -> Array.iter (fun i -> seen.(i) <- seen.(i) + 1) test) folds;
  Array.for_all (fun c -> c = 1) seen
