module Vec = Linalg.Vec
module Mat = Linalg.Mat

type model = Model1 | Model2

let dimension = 5
let mean = Vec.create dimension 0.5

let covariance =
  Mat.init dimension dimension (fun i j -> if i = j then 0.1 else 0.05)

let mvn = lazy (Prng.Distributions.mvn_make ~mean ~cov:covariance)

let check_dim x =
  if Array.length x <> dimension then
    invalid_arg "Synthetic: input must be 5-dimensional"

let logit model x =
  check_dim x;
  let base =
    -1.35 +. (2. *. x.(0)) -. x.(1) +. x.(2) -. x.(3) +. (2. *. x.(4))
  in
  match model with
  | Model1 -> base
  | Model2 -> base +. (x.(0) *. x.(2)) +. (x.(1) *. x.(3))

let sigmoid t = 1. /. (1. +. exp (-.t))
let true_q model x = sigmoid (logit model x)

let sample_input rng = Prng.Distributions.truncated_mvn_sample rng (Lazy.force mvn)

type sample = { x : Vec.t; y : float; q : float }

let sample rng model =
  let x = sample_input rng in
  let q = true_q model x in
  let y = if Prng.Rng.bernoulli rng q then 1. else 0. in
  { x; y; q }

let sample_many rng model count = Array.init count (fun _ -> sample rng model)

let to_problem ~kernel ~bandwidth ~n_labeled samples =
  let total = Array.length samples in
  if n_labeled <= 0 || n_labeled > total then
    invalid_arg "Synthetic.to_problem: n_labeled out of range";
  let labeled =
    Array.init n_labeled (fun i -> (samples.(i).x, samples.(i).y))
  in
  let unlabeled =
    Array.init (total - n_labeled) (fun a -> samples.(n_labeled + a).x)
  in
  let truth =
    Array.init (total - n_labeled) (fun a -> samples.(n_labeled + a).q)
  in
  let problem = Gssl.Problem.of_points ~kernel ~bandwidth ~labeled ~unlabeled in
  (problem, truth)
