(** The paper's Section V-A synthetic data.

    Inputs: [X̃ ~ N(mu, Sigma)] in dimension p = 5 with
    [mu = (0.5,…,0.5)], [Sigma = 0.05·(1 + I)] (0.1 on the diagonal, 0.05
    off), censored to 0 outside [0,1] componentwise.

    Responses: Bernoulli with logit
    - Model 1 (linear):
      [logit q(X) = −1.35 + 2X₁ − X₂ + X₃ − X₄ + 2X₅]
    - Model 2 (non-linear):
      [Model 1 + X₁X₃ + X₂X₄]

    The generator returns both the binary response and the true
    regression function [q(X)] — Figures 1–4 measure RMSE against the
    latter. *)

type model = Model1 | Model2

val dimension : int
(** p = 5. *)

val mean : Linalg.Vec.t
val covariance : Linalg.Mat.t

val logit : model -> Linalg.Vec.t -> float
(** The linear/non-linear predictor.  Raises [Invalid_argument] unless
    the input has dimension 5. *)

val true_q : model -> Linalg.Vec.t -> float
(** [q(X) = E[Y|X] = sigmoid (logit X)]. *)

val sample_input : Prng.Rng.t -> Linalg.Vec.t
(** One truncated-MVN input. *)

type sample = { x : Linalg.Vec.t; y : float; q : float }

val sample : Prng.Rng.t -> model -> sample
val sample_many : Prng.Rng.t -> model -> int -> sample array

val to_problem :
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:Kernel.Bandwidth.t ->
  n_labeled:int ->
  sample array ->
  Gssl.Problem.t * Linalg.Vec.t
(** Split a drawn sample into the first [n_labeled] labeled and the rest
    unlabeled; returns the problem plus the true [q] values on the
    unlabeled block (the RMSE target).  Raises [Invalid_argument] unless
    [0 < n_labeled <= Array.length samples]. *)
