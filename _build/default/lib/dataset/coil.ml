module Vec = Linalg.Vec

let image_side = 16
let n_objects = 24
let n_angles = 72
let n_classes = 6
let objects_per_class = 4
let images_per_class = 250

type image = {
  pixels : Vec.t;
  object_id : int;
  angle_index : int;
  class_id : int;
}

(* Smooth 0->1 transition over [-width, width]; gives antialiased shape
   edges so nearby angles produce nearby pixel vectors (the rotation
   manifolds the graph methods rely on). *)
let smoothstep width x =
  if x <= -.width then 0.
  else if x >= width then 1.
  else begin
    let t = (x +. width) /. (2. *. width) in
    t *. t *. (3. -. (2. *. t))
  end

let edge = 0.12

(* Signed "insideness" (positive inside) of each shape family, evaluated in
   the object frame.  [v] selects the within-class variant (0..3). *)
let shape_profile ~family ~variant u v =
  let fv = float_of_int variant in
  match family with
  | 0 ->
      (* ellipse, aspect varies *)
      let a = 0.75 and b = 0.3 +. (0.1 *. fv) in
      1. -. sqrt (((u /. a) ** 2.) +. ((v /. b) ** 2.))
  | 1 ->
      (* rectangle, aspect varies *)
      let a = 0.7 and b = 0.25 +. (0.1 *. fv) in
      Stdlib.min (a -. abs_float u) (b -. abs_float v) /. 0.5
  | 2 ->
      (* cross, arm width varies *)
      let w = 0.14 +. (0.05 *. fv) in
      let horiz = Stdlib.min (0.75 -. abs_float u) (w -. abs_float v) in
      let vert = Stdlib.min (w -. abs_float u) (0.75 -. abs_float v) in
      Stdlib.max horiz vert /. 0.4
  | 3 ->
      (* superellipse, exponent varies *)
      let p = 1.2 +. (0.6 *. fv) in
      let r = (abs_float (u /. 0.65) ** p) +. (abs_float (v /. 0.5) ** p) in
      1. -. (r ** (1. /. p))
  | 4 ->
      (* ring, inner radius varies *)
      let r = sqrt ((u *. u) +. (v *. v)) in
      let outer = 0.75 and inner = 0.2 +. (0.08 *. fv) in
      Stdlib.min (outer -. r) (r -. inner) /. 0.3
  | 5 ->
      (* triangle pointing up, size varies *)
      let s = 0.55 +. (0.08 *. fv) in
      let d1 = v +. s in
      let d2 = (s -. v -. (1.732 *. u)) /. 2. in
      let d3 = (s -. v +. (1.732 *. u)) /. 2. in
      Stdlib.min d1 (Stdlib.min d2 d3) /. 0.5
  | _ -> invalid_arg "Coil.shape_profile: bad family"

(* Texture in the object frame, so it rotates rigidly with the shape; this
   breaks the rotational symmetry of rings/ellipses and gives every object
   a genuinely 1-D orbit under rotation. *)
(* Low spatial frequency keeps adjacent viewing angles close in pixel
   space (a smooth rotation manifold) while still breaking the rotational
   symmetry of shapes like rings and crosses. *)
let texture ~object_id u v =
  let fo = float_of_int object_id in
  let freq = 1.5 +. Float.rem fo 3. in
  let phase = 0.7 *. fo in
  let stripes = sin ((freq *. u) +. (0.8 *. v) +. phase) in
  0.8 +. (0.2 *. stripes)

let render ~object_id ~angle_index =
  if object_id < 0 || object_id >= n_objects then
    invalid_arg "Coil.render: object_id out of range";
  if angle_index < 0 || angle_index >= n_angles then
    invalid_arg "Coil.render: angle_index out of range";
  let family = object_id / objects_per_class in
  let variant = object_id mod objects_per_class in
  let theta = 2. *. Float.pi *. float_of_int angle_index /. float_of_int n_angles in
  let c = cos theta and s = sin theta in
  let side = image_side in
  let pixels = Array.make (side * side) 0. in
  for row = 0 to side - 1 do
    for col = 0 to side - 1 do
      (* pixel centre in [-1, 1]^2 *)
      let x = ((float_of_int col +. 0.5) /. float_of_int side *. 2.) -. 1. in
      let y = ((float_of_int row +. 0.5) /. float_of_int side *. 2.) -. 1. in
      (* rotate into the object frame *)
      let u = (c *. x) +. (s *. y) in
      let v = (-.s *. x) +. (c *. y) in
      let inside = smoothstep edge (shape_profile ~family ~variant u v) in
      pixels.((row * side) + col) <- inside *. texture ~object_id u v
    done
  done;
  pixels

type t = { images : image array }

let generate ?(noise = 0.02) rng =
  if noise < 0. then invalid_arg "Coil.generate: negative noise";
  let per_class_total = objects_per_class * n_angles in
  let images = ref [] in
  for class_id = n_classes - 1 downto 0 do
    (* render the full class, then thin to images_per_class *)
    let all =
      Array.init per_class_total (fun k ->
          let object_id = (class_id * objects_per_class) + (k / n_angles) in
          let angle_index = k mod n_angles in
          let pixels = render ~object_id ~angle_index in
          let pixels =
            if noise = 0. then pixels
            else
              Array.map
                (fun p ->
                  let v = p +. Prng.Distributions.normal rng ~mean:0. ~std:noise in
                  Stdlib.min 1. (Stdlib.max 0. v))
                pixels
          in
          { pixels; object_id; angle_index; class_id })
    in
    let keep = Prng.Rng.sample_without_replacement rng images_per_class per_class_total in
    Array.sort compare keep;
    Array.iter (fun k -> images := all.(k) :: !images) keep
  done;
  { images = Array.of_list !images }

let binary_label img = img.class_id < 3

let points t = Array.map (fun img -> img.pixels) t.images
let labels t = Array.map binary_label t.images
