(** Minimal CSV reading/writing for datasets and experiment results.

    Supports the subset of RFC 4180 the library needs: comma separation,
    double-quote quoting with escaped quotes, CR/LF tolerance.  Numeric
    helpers load feature matrices with an optional label column so users
    can run the estimators on their own data files. *)

val parse : string -> string list list
(** Parse CSV text into rows of fields.  Raises [Failure] on an unclosed
    quoted field.  Empty trailing line is ignored. *)

val render : string list list -> string
(** Render rows, quoting fields that contain commas, quotes or
    newlines. *)

val read_file : string -> string list list
(** Raises [Sys_error] when unreadable. *)

val write_file : string -> string list list -> unit

type labeled_data = {
  features : Linalg.Vec.t array;
  labels : float option array;  (** [None] when the label field is empty *)
}

val parse_numeric : ?label_column:int -> ?header:bool -> string -> labeled_data
(** Interpret rows as floats.  [label_column] (default: last column)
    selects the label field; an empty label field means "unlabeled".
    [header] (default true) skips the first row.  Raises [Failure] on
    non-numeric fields or ragged rows. *)

val render_points : ?labels:float option array -> Linalg.Vec.t array -> string
(** Inverse of {!parse_numeric}: feature columns [x0…x{d−1}] plus a
    [label] column (empty for [None]).  Raises [Invalid_argument] on
    length mismatch. *)
