(** The two-moons dataset — the canonical illustration of the cluster
    assumption behind graph-based semi-supervised learning (Chapelle et
    al. 2006, Fig. 1.1): two interleaving half-circles, one label each is
    enough for a graph method while any linear supervised rule fails. *)

type sample = { x : Linalg.Vec.t; label : bool }
(** [x] is 2-dimensional; [label] identifies the moon. *)

val generate :
  ?noise:float -> ?radius:float -> ?separation:float ->
  Prng.Rng.t -> int -> sample array
(** [generate rng n] draws [n] points, alternating moons (so any prefix
    is roughly balanced).  [noise] (default 0.1) is the Gaussian jitter
    std; [radius] (default 1.0) the half-circle radius; [separation]
    (default 0.5) the vertical offset between the moons.  Raises
    [Invalid_argument] on [n < 0] or negative noise/radius. *)

val to_problem :
  ?bandwidth:float ->
  labeled_per_moon:int ->
  sample array ->
  Gssl.Problem.t * bool array
(** Build a transductive problem using the first [labeled_per_moon]
    samples of each moon as the labeled set (positives = moon 1) and the
    rest as unlabeled; returns the problem plus the hidden truth for the
    unlabeled block (problem order).  Default bandwidth 0.35 — tight
    enough to respect the cluster structure at the default geometry.
    Raises [Invalid_argument] when a moon has too few samples. *)
