type t = {
  dim : int;
  apply : Linalg.Vec.t -> Linalg.Vec.t;
  diag : unit -> Linalg.Vec.t;
}

let of_dense m =
  if not (Linalg.Mat.is_square m) then invalid_arg "Linop.of_dense: not square";
  {
    dim = m.Linalg.Mat.rows;
    apply = (fun x -> Linalg.Mat.mv m x);
    diag = (fun () -> Linalg.Mat.get_diag m);
  }

let of_csr c =
  let rows, cols = Csr.dims c in
  if rows <> cols then invalid_arg "Linop.of_csr: not square";
  { dim = rows; apply = (fun x -> Csr.mv c x); diag = (fun () -> Csr.diagonal c) }

let of_fun ~dim ~diag apply = { dim; apply; diag }

let add_scaled a s b =
  if a.dim <> b.dim then invalid_arg "Linop.add_scaled: dimension mismatch";
  {
    dim = a.dim;
    apply =
      (fun x ->
        let ya = a.apply x and yb = b.apply x in
        Linalg.Vec.axpy s yb ya;
        ya);
    diag =
      (fun () ->
        let da = a.diag () and db = b.diag () in
        Linalg.Vec.axpy s db da;
        da);
  }

let shift a mu =
  {
    dim = a.dim;
    apply =
      (fun x ->
        let y = a.apply x in
        Linalg.Vec.axpy mu x y;
        y);
    diag = (fun () -> Linalg.Vec.add_scalar mu (a.diag ()));
  }
