(** Compressed-sparse-row matrices.

    Immutable after construction.  Within each row, column indices are
    strictly increasing and duplicates from the COO stage are summed. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;   (** length [rows + 1] *)
  col_idx : int array;   (** length [nnz] *)
  values : float array;  (** length [nnz] *)
}

val of_coo : Coo.t -> t
val of_dense : ?threshold:float -> Linalg.Mat.t -> t
val to_dense : t -> Linalg.Mat.t
val dims : t -> int * int
val nnz : t -> int

val get : t -> int -> int -> float
(** Binary search within the row; 0. when absent.
    Raises [Invalid_argument] when out of bounds. *)

val mv : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Sparse matrix–vector product. *)

val tmv : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [tmv a x = aᵀ x]. *)

val transpose : t -> t
val scale : float -> t -> t
val add : t -> t -> t
val diagonal : t -> Linalg.Vec.t
val row_sums : t -> Linalg.Vec.t

val map_values : (float -> float) -> t -> t
(** Apply [f] to every stored value (structure unchanged); entries mapped
    to 0. are kept as explicit zeros. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate over the stored [(col, value)] pairs of one row. *)

val is_symmetric : ?tol:float -> t -> bool
