type t = {
  rows : int;
  cols : int;
  mutable ri : int array;
  mutable ci : int array;
  mutable vs : float array;
  mutable len : int;
}

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Coo.create: negative dimension";
  { rows; cols; ri = Array.make 16 0; ci = Array.make 16 0; vs = Array.make 16 0.; len = 0 }

let grow t =
  let cap = Array.length t.ri in
  let ncap = Stdlib.max 16 (2 * cap) in
  let ri = Array.make ncap 0 and ci = Array.make ncap 0 and vs = Array.make ncap 0. in
  Array.blit t.ri 0 ri 0 t.len;
  Array.blit t.ci 0 ci 0 t.len;
  Array.blit t.vs 0 vs 0 t.len;
  t.ri <- ri;
  t.ci <- ci;
  t.vs <- vs

let add t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Coo.add: index out of bounds";
  if v <> 0. then begin
    if t.len = Array.length t.ri then grow t;
    t.ri.(t.len) <- i;
    t.ci.(t.len) <- j;
    t.vs.(t.len) <- v;
    t.len <- t.len + 1
  end

let dims t = (t.rows, t.cols)
let nnz t = t.len

let iter f t =
  for k = 0 to t.len - 1 do
    f t.ri.(k) t.ci.(k) t.vs.(k)
  done

let of_dense ?(threshold = 0.) m =
  let t = create m.Linalg.Mat.rows m.Linalg.Mat.cols in
  for i = 0 to m.Linalg.Mat.rows - 1 do
    for j = 0 to m.Linalg.Mat.cols - 1 do
      let v = Linalg.Mat.get m i j in
      if abs_float v > threshold then add t i j v
    done
  done;
  t

let to_dense t =
  let m = Linalg.Mat.zeros t.rows t.cols in
  iter (fun i j v -> Linalg.Mat.set m i j (Linalg.Mat.get m i j +. v)) t;
  m
