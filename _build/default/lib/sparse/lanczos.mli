(** Lanczos iteration for extreme eigenvalues of symmetric operators.

    Runs [k] Lanczos steps with full reorthogonalisation (numerically
    robust at the small k used here), producing the tridiagonal
    coefficients; Ritz values approximate the operator's extreme
    eigenvalues.  Used by spectral clustering to reach the smallest
    Laplacian eigenvalues of sparse graphs without densifying. *)

type t = {
  alphas : Linalg.Vec.t;           (** tridiagonal diagonal, length k *)
  betas : Linalg.Vec.t;            (** off-diagonal, length k−1 *)
  basis : Linalg.Vec.t array;      (** the k Lanczos vectors *)
}

val run : ?seed:int -> k:int -> Linop.t -> t
(** [run ~k op] — [k] must satisfy [1 ≤ k ≤ dim].  The starting vector
    is pseudo-random from [seed] (default 0).  Stops early (padding with
    zeros) if the Krylov space is exhausted.  Raises [Invalid_argument]
    on a bad [k]. *)

val tridiagonal : t -> Linalg.Mat.t
(** The k×k tridiagonal matrix T. *)

val ritz_values : t -> Linalg.Vec.t
(** Eigenvalues of T, ascending — approximations of the operator's
    spectrum (extreme ends converge first). *)

val ritz_pairs : t -> (float * Linalg.Vec.t) array
(** Ritz values with Ritz vectors lifted back to the original space,
    ascending by value. *)
