(** Abstract linear operators.

    The iterative solvers ({!Cg}, {!Stationary}) only need a
    matrix–vector product, so they accept any [t].  Constructors are
    provided for dense matrices, CSR matrices, and matrix-free closures —
    the latter lets the soft-criterion solver apply [V + λL] without ever
    materialising it. *)

type t = {
  dim : int;                                (** operator is [dim]×[dim] *)
  apply : Linalg.Vec.t -> Linalg.Vec.t;     (** y = A x *)
  diag : unit -> Linalg.Vec.t;              (** the diagonal of A, for preconditioning *)
}

val of_dense : Linalg.Mat.t -> t
(** Raises [Invalid_argument] if the matrix is not square. *)

val of_csr : Csr.t -> t
val of_fun : dim:int -> diag:(unit -> Linalg.Vec.t) -> (Linalg.Vec.t -> Linalg.Vec.t) -> t

val add_scaled : t -> float -> t -> t
(** [add_scaled a s b] is the operator [x ↦ a x + s (b x)]. *)

val shift : t -> float -> t
(** [shift a mu] is [A + mu I]. *)
