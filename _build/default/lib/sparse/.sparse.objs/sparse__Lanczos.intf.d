lib/sparse/lanczos.mli: Linalg Linop
