lib/sparse/coo.ml: Array Linalg Stdlib
