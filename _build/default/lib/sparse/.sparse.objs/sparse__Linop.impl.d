lib/sparse/linop.ml: Csr Linalg
