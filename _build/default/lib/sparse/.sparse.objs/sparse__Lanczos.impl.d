lib/sparse/lanczos.ml: Array Int64 Linalg Linop Stdlib
