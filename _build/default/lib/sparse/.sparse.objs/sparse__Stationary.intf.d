lib/sparse/stationary.mli: Csr Linalg
