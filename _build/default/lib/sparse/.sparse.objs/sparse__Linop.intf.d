lib/sparse/linop.mli: Csr Linalg
