lib/sparse/csr.ml: Array Coo Linalg Stdlib
