lib/sparse/cg.ml: Array Linalg Linop Option Printf
