lib/sparse/stationary.ml: Array Csr Linalg Printf
