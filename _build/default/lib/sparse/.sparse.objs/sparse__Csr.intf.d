lib/sparse/csr.mli: Coo Linalg
