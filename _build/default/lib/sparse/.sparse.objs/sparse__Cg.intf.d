lib/sparse/cg.mli: Linalg Linop
