(** Coordinate-format (triplet) sparse-matrix builder.

    A mutable accumulator of [(row, col, value)] triplets; convert to CSR
    with {!Csr.of_coo} for fast arithmetic.  Duplicate entries are summed
    at conversion time. *)

type t

val create : int -> int -> t
(** [create rows cols] is an empty builder.
    Raises [Invalid_argument] on negative dimensions. *)

val add : t -> int -> int -> float -> unit
(** [add t i j v] appends a triplet.  Zero values are ignored.
    Raises [Invalid_argument] when the index is out of bounds. *)

val dims : t -> int * int
val nnz : t -> int
(** Number of stored triplets (before duplicate merging). *)

val iter : (int -> int -> float -> unit) -> t -> unit
val of_dense : ?threshold:float -> Linalg.Mat.t -> t
(** Entries with absolute value ≤ [threshold] (default 0.) are dropped. *)

val to_dense : t -> Linalg.Mat.t
