(** Query strategies for active semi-supervised learning.

    Given the current scores on the unlabeled vertices, pick which one to
    send to the annotator next.  Combines with {!Incremental} for an
    O(m²)-per-step active-learning loop. *)

type strategy =
  | Uncertainty
      (** closest score to the decision threshold 0.5 *)
  | Density_weighted
      (** uncertainty × vertex degree — prefer ambiguous points in dense
          regions, where a label propagates to many neighbours *)
  | Random of Prng.Rng.t

val select : strategy -> Incremental.t -> int
(** The graph vertex to query next.  Raises [Invalid_argument] when no
    unlabeled vertices remain. *)

val run :
  strategy ->
  oracle:(int -> float) ->
  budget:int ->
  Incremental.t ->
  (int * float) list
(** Run [budget] query/reveal rounds (or until nothing is unlabeled),
    returning the [(vertex, label)] pairs acquired in order.  Raises
    [Invalid_argument] on negative budget. *)
