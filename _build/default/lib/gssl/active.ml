type strategy = Uncertainty | Density_weighted | Random of Prng.Rng.t

let select strategy solver =
  let scored = Incremental.predict solver in
  if Array.length scored = 0 then
    invalid_arg "Active.select: no unlabeled vertices remain";
  match strategy with
  | Random rng -> fst (Prng.Rng.choose rng scored)
  | Uncertainty ->
      let best = ref scored.(0) in
      Array.iter
        (fun (v, s) ->
          if abs_float (s -. 0.5) < abs_float (snd !best -. 0.5) then
            best := (v, s))
        scored;
      fst !best
  | Density_weighted ->
      let degrees = Graph.Weighted_graph.degrees (Incremental.graph solver) in
      (* informativeness: (1 - 2|s - 1/2|) in [0,1], scaled by degree *)
      let value (v, s) =
        (1. -. (2. *. abs_float (s -. 0.5))) *. degrees.(v)
      in
      let best = ref scored.(0) in
      Array.iter (fun p -> if value p > value !best then best := p) scored;
      fst !best

let run strategy ~oracle ~budget solver =
  if budget < 0 then invalid_arg "Active.run: negative budget";
  let acquired = ref [] in
  (try
     for _ = 1 to budget do
       if Incremental.n_remaining solver = 0 then raise Exit;
       let vertex = select strategy solver in
       let label = oracle vertex in
       Incremental.reveal solver ~vertex ~label;
       acquired := (vertex, label) :: !acquired
     done
   with Exit -> ());
  List.rev !acquired
