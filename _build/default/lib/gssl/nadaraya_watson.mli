(** The Nadaraya–Watson kernel-regression estimator — Eq. (6).

    [q̂(x) = Σ_{i≤n} w(x, X_i) Y_i / Σ_{i≤n} w(x, X_i)].

    Theorem II.1 proves the hard criterion consistent by showing its
    solution converges to this estimator; {!Theory.nw_gap} measures the
    distance between the two on concrete problems.  When an unlabeled
    point in a {!Problem.t} has zero kernel mass on the labeled set the
    estimate is [nan] (the classical estimator is undefined there). *)

val predict :
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:float ->
  labeled:(Linalg.Vec.t * float) array ->
  Linalg.Vec.t ->
  float
(** Direct evaluation at one query point.  Raises [Invalid_argument] on
    empty labeled data, mismatched dimensions, or non-positive
    bandwidth. *)

val predict_many :
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:float ->
  labeled:(Linalg.Vec.t * float) array ->
  Linalg.Vec.t array ->
  Linalg.Vec.t

val of_problem : Problem.t -> Linalg.Vec.t
(** Evaluate the estimator at each unlabeled vertex of an existing
    problem, reusing its similarity weights:
    [q̂_{n+a} = Σ_{i≤n} w_{n+a,i} Y_i / Σ_{i≤n} w_{n+a,i}]. *)
