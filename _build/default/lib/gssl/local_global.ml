module Mat = Linalg.Mat
module Vec = Linalg.Vec

let system_matrix ~alpha problem =
  let g = problem.Problem.graph in
  let total = Problem.size problem in
  let d = Problem.degrees problem in
  Array.iter
    (fun v ->
      if v <= 0. then
        invalid_arg "Local_global: normalized propagation needs positive degrees")
    d;
  (* I - alpha * D^{-1/2} W D^{-1/2} *)
  Mat.init total total (fun i j ->
      let s = Graph.Weighted_graph.weight g i j /. sqrt (d.(i) *. d.(j)) in
      let id = if i = j then 1. else 0. in
      id -. (alpha *. s))

let propagate ?(alpha = 0.99) problem y0 =
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Local_global.propagate: alpha outside (0,1)";
  if Array.length y0 <> Problem.size problem then
    invalid_arg "Local_global.propagate: seed length mismatch";
  let a = system_matrix ~alpha problem in
  Vec.scale (1. -. alpha) (Linalg.Cholesky.solve a y0)

let scores ?(alpha = 0.99) problem =
  Array.iter
    (fun y ->
      if y <> 0. && y <> 1. then
        invalid_arg "Local_global.scores: labels must be in {0,1}")
    problem.Problem.labels;
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let seed value =
    Array.init total (fun i ->
        if i < n && problem.Problem.labels.(i) = value then 1. else 0.)
  in
  (* one factorization, two right-hand sides *)
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Local_global.scores: alpha outside (0,1)";
  let a = system_matrix ~alpha problem in
  let l = Linalg.Cholesky.factor a in
  let f1 = Linalg.Cholesky.solve_factored l (seed 1.) in
  let f0 = Linalg.Cholesky.solve_factored l (seed 0.) in
  Array.init (total - n) (fun k ->
      let p1 = f1.(n + k) and p0 = f0.(n + k) in
      let mass = p0 +. p1 in
      if mass <= 0. then 0.5 else p1 /. mass)
