(** Out-of-sample ("induction") extension of the transductive solution —
    Delalleau, Bengio & Le Roux (AISTATS 2005), the paper's reference
    [10].

    A transductive fit only scores the given unlabeled points; for a new
    point [x] the induction formula re-uses the fitted scores:

    {v  f̂(x) = Σ_i w(x, X_i) f̂_i  /  Σ_i w(x, X_i) v}

    summing over all n+m training points with their fitted (hard or
    soft) scores.  It agrees with the transductive solution in the sense
    that inducting *at* an unlabeled training point reproduces a weighted
    average consistent with the harmonic property. *)

type t

val make :
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:float ->
  points:Linalg.Vec.t array ->
  scores:Linalg.Vec.t ->
  t
(** [points] are all n+m training inputs in problem order and [scores]
    the full fitted vector (e.g. {!Hard.solve_full}).  Raises
    [Invalid_argument] on length mismatch, empty input or non-positive
    bandwidth. *)

val of_problem :
  ?criterion:Estimator.criterion ->
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:float ->
  points:Linalg.Vec.t array ->
  Problem.t ->
  t
(** Fit the criterion (default [Hard]) and wrap it for induction; [points]
    must match the problem's vertices. *)

val predict : t -> Linalg.Vec.t -> float
(** Score a new point.  Raises [Invalid_argument] on dimension
    mismatch. *)

val predict_many : t -> Linalg.Vec.t array -> Linalg.Vec.t
