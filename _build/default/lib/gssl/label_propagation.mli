(** Iterative label propagation (Zhu & Ghahramani 2002).

    The fixed-point iteration

    {v f_U ← D₂₂⁻¹ (W₂₁ Y_n + W₂₂ f_U) v}

    is exactly the Jacobi iteration on the hard-criterion system
    [(D₂₂ − W₂₂) f_U = W₂₁ Y_n], so it converges to the hard solution
    whenever every unlabeled component is anchored to a label (spectral
    radius of [D₂₂⁻¹W₂₂] < 1 — the quantity bounded by the "tiny
    elements" argument in the paper's proof).  This gives an O(iters·n·m)
    solver that never factors anything, and doubles as an independent
    check of the direct solvers. *)

type outcome = {
  scores : Linalg.Vec.t;        (** unlabeled scores, graph order *)
  iterations : int;
  final_delta : float;          (** last sup-norm update size *)
  converged : bool;
}

val run : ?tol:float -> ?max_iter:int -> ?init:Linalg.Vec.t -> Problem.t -> outcome
(** [tol] (default 1e-10) is the sup-norm of one update; [max_iter]
    defaults to 100_000.  [init] defaults to the zero vector (the paper's
    uninformative start).  Raises [Invalid_argument] on a bad [init]
    length or an unlabeled vertex of degree zero. *)

val solve_exn : ?tol:float -> ?max_iter:int -> Problem.t -> Linalg.Vec.t
(** Like {!run} but raises [Failure] when the iteration does not
    converge. *)
