let predict ~kernel ~bandwidth ~labeled query =
  if Array.length labeled = 0 then
    invalid_arg "Nadaraya_watson.predict: no labeled data";
  let num = ref 0. and den = ref 0. in
  Array.iter
    (fun (x, y) ->
      let w = Kernel.Kernel_fn.eval kernel ~bandwidth x query in
      num := !num +. (w *. y);
      den := !den +. w)
    labeled;
  !num /. !den

let predict_many ~kernel ~bandwidth ~labeled queries =
  Array.map (fun q -> predict ~kernel ~bandwidth ~labeled q) queries

let of_problem problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let y = problem.Problem.labels in
  Array.init m (fun a ->
      let num = ref 0. and den = ref 0. in
      for i = 0 to n - 1 do
        let w = Graph.Weighted_graph.weight g (n + a) i in
        num := !num +. (w *. y.(i));
        den := !den +. w
      done;
      !num /. !den)
