module Vec = Linalg.Vec

type outcome = {
  scores : Vec.t;
  iterations : int;
  final_delta : float;
  converged : bool;
}

let run ?(tol = 1e-10) ?(max_iter = 100_000) ?init problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  for a = 0 to m - 1 do
    if d.(n + a) <= 0. then
      invalid_arg "Label_propagation.run: unlabeled vertex of degree zero"
  done;
  (* constant part: D22^{-1} W21 Y *)
  let base =
    Array.init m (fun a ->
        let acc = ref 0. in
        for i = 0 to n - 1 do
          acc := !acc +. (Graph.Weighted_graph.weight g (n + a) i
                          *. problem.Problem.labels.(i))
        done;
        !acc /. d.(n + a))
  in
  let f =
    match init with
    | None -> Vec.zeros m
    | Some v ->
        if Array.length v <> m then
          invalid_arg "Label_propagation.run: init length mismatch";
        Vec.copy v
  in
  let iterations = ref 0 in
  let delta = ref infinity in
  while !delta > tol && !iterations < max_iter do
    incr iterations;
    delta := 0.;
    let next =
      Array.init m (fun a ->
          let acc = ref 0. in
          for b = 0 to m - 1 do
            acc := !acc +. (Graph.Weighted_graph.weight g (n + a) (n + b) *. f.(b))
          done;
          base.(a) +. (!acc /. d.(n + a)))
    in
    for a = 0 to m - 1 do
      let change = abs_float (next.(a) -. f.(a)) in
      if change > !delta then delta := change;
      f.(a) <- next.(a)
    done
  done;
  { scores = f; iterations = !iterations; final_delta = !delta; converged = !delta <= tol }

let solve_exn ?tol ?max_iter problem =
  let out = run ?tol ?max_iter problem in
  if not out.converged then
    failwith
      (Printf.sprintf
         "Label_propagation.solve_exn: no convergence after %d iterations (delta %g)"
         out.iterations out.final_delta);
  out.scores
