module Mat = Linalg.Mat

type result = { best_lambda : float; scores : (float * float) array }

(* Local fold partition of [0 … n-1] (lib/dataset depends on this library,
   so we cannot use its Splits module here). *)
let k_folds rng ~n ~k =
  let perm = Prng.Rng.permutation rng n in
  let base = n / k and extra = n mod k in
  let starts = Array.make (k + 1) 0 in
  for f = 0 to k - 1 do
    starts.(f + 1) <- starts.(f) + base + (if f < extra then 1 else 0)
  done;
  Array.init k (fun f ->
      let holdout = Array.sub perm starts.(f) (starts.(f + 1) - starts.(f)) in
      let train = Array.make (n - Array.length holdout) 0 in
      let pos = ref 0 in
      for g = 0 to k - 1 do
        if g <> f then begin
          let len = starts.(g + 1) - starts.(g) in
          Array.blit perm starts.(g) train !pos len;
          pos := !pos + len
        end
      done;
      (train, holdout))

let subproblem problem ~train ~holdout =
  let n = Problem.n_labeled problem in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Cross_validation.subproblem: bad index")
    (Array.append train holdout);
  let total = Problem.size problem in
  let unlabeled_tail = Array.init (total - n) (fun a -> n + a) in
  let order = Array.concat [ train; holdout; unlabeled_tail ] in
  let w = Graph.Weighted_graph.to_dense problem.Problem.graph in
  let size = Array.length order in
  let wp = Mat.init size size (fun i j -> Mat.get w order.(i) order.(j)) in
  let labels = Array.map (fun i -> problem.Problem.labels.(i)) train in
  ( Problem.make ~graph:(Graph.Weighted_graph.of_dense wp) ~labels,
    Array.length holdout )

let default_lambdas = [ 0.; 0.01; 0.05; 0.1; 0.5; 1.; 5. ]

let select ?(k = 5) ?(lambdas = default_lambdas) ~rng problem =
  if k < 2 then invalid_arg "Cross_validation.select: need k >= 2";
  if lambdas = [] then invalid_arg "Cross_validation.select: empty grid";
  List.iter
    (fun l ->
      if l < 0. then invalid_arg "Cross_validation.select: negative lambda")
    lambdas;
  let n = Problem.n_labeled problem in
  if n < k then invalid_arg "Cross_validation.select: fewer labeled points than folds";
  let folds = k_folds rng ~n ~k in
  let accs = List.map (fun l -> (l, Stats.Running.create ())) lambdas in
  Array.iter
    (fun (train, holdout) ->
      let sub, n_holdout = subproblem problem ~train ~holdout in
      let truth = Array.map (fun i -> problem.Problem.labels.(i)) holdout in
      List.iter
        (fun (lambda, acc) ->
          let scores =
            if lambda = 0. then Hard.solve sub else Soft.solve ~lambda sub
          in
          let held = Array.sub scores 0 n_holdout in
          let err = ref 0. in
          Array.iteri
            (fun i y ->
              let d = y -. held.(i) in
              err := !err +. (d *. d))
            truth;
          Stats.Running.add acc (!err /. float_of_int n_holdout))
        accs)
    folds;
  let scores =
    Array.of_list (List.map (fun (l, acc) -> (l, Stats.Running.mean acc)) accs)
  in
  let best = ref scores.(0) in
  Array.iter (fun (l, e) -> if e < snd !best then best := (l, e)) scores;
  { best_lambda = fst !best; scores }
