(** Laplacian-regularised least squares (LapRLS) — manifold
    regularization of Belkin, Niyogi & Sindhwani (JMLR 2006), reference
    [16] of the paper.

    Unlike the transductive hard/soft criteria, LapRLS is *inductive*: it
    fits [f(x) = Σ_i α_i K(x, x_i)] over all n+m training inputs by
    minimising

    {v (1/n) Σ_{i≤n} (Y_i − f(x_i))² + γ_A ‖f‖²_K + (γ_I/(n+m)²) fᵀ L f v}

    whose representer solution is
    [α = (J K + γ_A n I + (γ_I n/(n+m)²) L K)^{−1} Y] with [J] the
    labeled-indicator diagonal.  Setting γ_A → 0 and letting γ_I
    dominate recovers soft-criterion-like behaviour; the in-sample
    predictions serve as another baseline series in the experiments. *)

type model

val fit :
  ?gamma_a:float ->
  ?gamma_i:float ->
  kernel:Kernel.Kernel_fn.t ->
  bandwidth:float ->
  labeled:(Linalg.Vec.t * float) array ->
  Linalg.Vec.t array ->
  model
(** [fit ~kernel ~bandwidth ~labeled unlabeled].
    Defaults: [gamma_a = 1e-6] (slight ridge for invertibility),
    [gamma_i = 1.].  Raises [Invalid_argument] on empty labeled data,
    non-positive bandwidth, or negative regularisers; [Failure] when the
    representer system is numerically singular. *)

val predict : model -> Linalg.Vec.t -> float
(** Out-of-sample evaluation [f(x)] — the inductive capability the
    transductive criteria lack.  Raises [Invalid_argument] on dimension
    mismatch. *)

val predict_unlabeled : model -> Linalg.Vec.t
(** In-sample predictions on the unlabeled training block (comparable to
    {!Hard.solve} / {!Soft.solve} output). *)

val coefficients : model -> Linalg.Vec.t
(** The expansion coefficients α (length n+m). *)
