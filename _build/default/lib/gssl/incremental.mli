(** Incremental hard-criterion solver for label-revelation workflows.

    In transductive practice labels arrive one at a time (an oracle or
    annotator reveals them); refitting from scratch costs O(m³) per
    label.  This solver keeps the inverse of the current system matrix
    [D₂₂ − W₂₂] and downdates it in O(m²) per revelation (removing one
    row/column via the block-inverse identity, {!Linalg.Rank_one}), so a
    full annotation session costs O(m³) total instead of O(m⁴).

    The graph is fixed at creation; only the labeled/unlabeled partition
    evolves. *)

type t

val create : Problem.t -> t
(** O(m³) setup: invert the initial system matrix.  Raises
    {!Hard.Unanchored_unlabeled} like {!Hard.solve}. *)

val predict : t -> (int * float) array
(** Current scores, as [(graph_vertex, score)] pairs for every
    still-unlabeled vertex (ascending vertex order). *)

val reveal : t -> vertex:int -> label:float -> unit
(** Mark the unlabeled [vertex] (graph index) as labeled with the given
    response and downdate the solver.  Raises [Invalid_argument] if the
    vertex is not currently unlabeled. *)

val n_remaining : t -> int
val remaining : t -> int array
(** Still-unlabeled graph vertices, ascending. *)

val labels : t -> (int * float) array
(** All currently known labels (original + revealed), by graph vertex. *)

val graph : t -> Graph.Weighted_graph.t
(** The (fixed) underlying similarity graph. *)
