(** The solution path λ ↦ f̂(λ).

    The paper's argument after Proposition II.2 leans on continuity:
    Eq. (4) is continuous in λ, so the prediction "cannot suddenly jump
    from consistent to extremely inaccurate" — inconsistency at large λ
    therefore contaminates a whole range of λ.  This module computes the
    path on a grid (reusing one graph), exposes the endpoints (hard
    solution at λ=0, label-mean collapse at λ=∞), and measures the
    modulus of continuity along the grid so the claim can be checked
    numerically. *)

type point = {
  lambda : float;
  scores : Linalg.Vec.t;          (** unlabeled scores at this λ *)
  distance_to_hard : float;       (** ‖f̂(λ) − f̂_hard‖_∞ *)
  distance_to_collapse : float;   (** ‖f̂(λ) − ȳ·1‖_∞ *)
}

type t = { points : point array; hard : Linalg.Vec.t; label_mean : float }

val compute : ?lambdas:float array -> Problem.t -> t
(** Default grid: 0 plus 13 logarithmically spaced values in [1e-4, 1e3].
    λ = 0 is solved with {!Hard}; positive values with {!Soft}.  The grid
    must be sorted ascending and nonnegative — [Invalid_argument]
    otherwise. *)

val max_step : t -> float
(** The largest ‖f̂(λ_{k+1}) − f̂(λ_k)‖_∞ along the grid — small values
    on a fine grid witness the continuity used in the paper's argument. *)

val is_monotone_towards_collapse : ?slack:float -> t -> bool
(** Whether [distance_to_collapse] is non-increasing in λ (within
    [slack], default 1e-9) — the qualitative shape of Prop. II.2. *)
