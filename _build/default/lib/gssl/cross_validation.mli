(** Cross-validated selection of the tuning parameter λ.

    The paper's practical message is that tuning λ is a burden the hard
    criterion removes.  This module implements the burden — transductive
    k-fold CV over the labeled set — so that the claim can be tested:
    even *oracle-tuned* soft criteria should not beat λ = 0.

    Each fold hides one part of the labeled set, treats it as unlabeled
    (prepending the remaining labels, appending the held-out and the
    original unlabeled points so the graph is reused), scores every
    candidate λ by squared error on the held-out labels, and averages
    across folds. *)

type result = {
  best_lambda : float;
  scores : (float * float) array;  (** (λ, mean held-out squared error), in grid order *)
}

val select :
  ?k:int ->
  ?lambdas:float list ->
  rng:Prng.Rng.t ->
  Problem.t ->
  result
(** [select ~rng problem] — default 5 folds over the grid
    [0; 0.01; 0.05; 0.1; 0.5; 1; 5].  Ties break towards the smaller λ.
    Raises [Invalid_argument] when the labeled set is smaller than [k],
    [k < 2], or the grid is empty/negative. *)

val subproblem : Problem.t -> train:int array -> holdout:int array -> Problem.t * int
(** Build the fold problem: labeled = [train] (labeled indices), unlabeled
    = [holdout] followed by the original unlabeled vertices.  Returns the
    problem and the number of held-out points (their scores come first in
    the prediction vector).  Exposed for tests. *)
