type criterion = Hard | Soft of float
type strategy = Direct | Iterative

let criterion_of_lambda lambda =
  if lambda < 0. then invalid_arg "Estimator.criterion_of_lambda: negative lambda";
  if lambda = 0. then Hard else Soft lambda

let lambda_of_criterion = function Hard -> 0. | Soft lambda -> lambda

let criterion_name = function
  | Hard -> "hard (lambda=0)"
  | Soft lambda -> Printf.sprintf "soft (lambda=%g)" lambda

let predict ?(strategy = Direct) criterion problem =
  match (criterion, strategy) with
  | Hard, Direct -> Hard.solve ~solver:Hard.Cholesky problem
  | Hard, Iterative -> Label_propagation.solve_exn problem
  | Soft lambda, Direct -> Soft.solve ~method_:Soft.Full_cholesky ~lambda problem
  | Soft lambda, Iterative ->
      Soft.solve ~method_:(Soft.Cg { tol = 1e-10 }) ~lambda problem

let predict_full ?(strategy = Direct) criterion problem =
  match (criterion, strategy) with
  | Hard, Direct -> Hard.solve_full ~solver:Hard.Cholesky problem
  | Hard, Iterative ->
      Linalg.Vec.concat
        (Linalg.Vec.copy problem.Problem.labels)
        (Label_propagation.solve_exn problem)
  | Soft lambda, Direct -> Soft.solve_full ~method_:Soft.Full_cholesky ~lambda problem
  | Soft lambda, Iterative ->
      Soft.solve_full ~method_:(Soft.Cg { tol = 1e-10 }) ~lambda problem

let classify ?(threshold = 0.5) scores =
  Array.map (fun s -> s >= threshold) scores
