module Mat = Linalg.Mat
module Vec = Linalg.Vec

let d22_inv_w22 problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  Mat.init m m (fun a b ->
      Graph.Weighted_graph.weight g (n + a) (n + b) /. d.(n + a))

let tiny_elements_max problem = Mat.max_abs (d22_inv_w22 problem)

let tiny_elements_bound ~k_star ~beta ~s ~n ~h ~d =
  if k_star <= 0. || beta <= 0. || s <= 0. || n <= 0 || h <= 0. || d <= 0 then
    invalid_arg "Theory.tiny_elements_bound: parameters must be positive";
  let m_const = 2. *. k_star /. (s *. beta) in
  m_const /. (float_of_int n *. (h ** float_of_int d))

let neumann_partial_sum problem l =
  if l < 1 then invalid_arg "Theory.neumann_partial_sum: need l >= 1";
  let b = d22_inv_w22 problem in
  let acc = ref (Mat.copy b) in
  let power = ref (Mat.copy b) in
  for _ = 2 to l do
    power := Mat.mm !power b;
    acc := Mat.add !acc !power
  done;
  !acc

let neumann_converges ?(l = 50) ?(tol = 1e-12) problem =
  let b = d22_inv_w22 problem in
  (* ‖S_l − S_{l−1}‖_max = ‖B^l‖_max *)
  let power = ref (Mat.copy b) in
  for _ = 2 to l do
    power := Mat.mm !power b
  done;
  Mat.max_abs !power < tol

let nw_gap problem =
  let hard = Hard.solve problem in
  let nw = Nadaraya_watson.of_problem problem in
  Vec.sub hard nw

let g_residuals problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  let y = problem.Problem.labels in
  Array.init m (fun a ->
      let labeled_mass = ref 0. in
      for k = 0 to n - 1 do
        labeled_mass := !labeled_mass +. Graph.Weighted_graph.weight g (n + a) k
      done;
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let w = Graph.Weighted_graph.weight g (n + a) i in
        acc := !acc +. (y.(i) *. ((w /. !labeled_mass) -. (w /. d.(n + a))))
      done;
      !acc)

let unlabeled_mass_ratio problem =
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let total = Problem.size problem in
  let g = problem.Problem.graph in
  let d = Problem.degrees problem in
  let worst = ref 0. in
  for a = 0 to m - 1 do
    let mass = ref 0. in
    for k = n to total - 1 do
      mass := !mass +. Graph.Weighted_graph.weight g (n + a) k
    done;
    let ratio = !mass /. d.(n + a) in
    if ratio > !worst then worst := ratio
  done;
  !worst

let soft_collapse_error ~lambda problem =
  let scores = Soft.solve ~lambda problem in
  let target = Soft.lambda_infinity_limit problem in
  Vec.norm_inf (Vec.add_scalar (-.target) scores)
