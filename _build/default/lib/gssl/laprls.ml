module Mat = Linalg.Mat
module Vec = Linalg.Vec

type model = {
  points : Vec.t array;
  n_labeled : int;
  alpha : Vec.t;
  kernel : Kernel.Kernel_fn.t;
  bandwidth : float;
}

let fit ?(gamma_a = 1e-6) ?(gamma_i = 1.) ~kernel ~bandwidth ~labeled unlabeled =
  let n = Array.length labeled in
  if n = 0 then invalid_arg "Laprls.fit: no labeled data";
  if bandwidth <= 0. then invalid_arg "Laprls.fit: bandwidth must be positive";
  if gamma_a < 0. || gamma_i < 0. then
    invalid_arg "Laprls.fit: negative regularizer";
  let points = Array.append (Array.map fst labeled) unlabeled in
  let total = Array.length points in
  let k = Kernel.Similarity.dense ~kernel ~bandwidth points in
  let graph = Graph.Weighted_graph.of_dense k in
  let l = Graph.Laplacian.dense graph in
  (* system: (J K + gamma_A n I + (gamma_I n / total^2) L K) alpha = Y *)
  let jk = Mat.init total total (fun i j -> if i < n then Mat.get k i j else 0.) in
  let lk = Mat.mm l k in
  let nf = float_of_int n in
  let system =
    Mat.add_scaled_identity
      (Mat.add jk (Mat.scale (gamma_i *. nf /. float_of_int (total * total)) lk))
      (gamma_a *. nf)
  in
  let y = Vec.zeros total in
  Array.iteri (fun i (_, yi) -> y.(i) <- yi) labeled;
  let alpha =
    match Linalg.Lu.solve system y with
    | x -> x
    | exception Linalg.Lu.Singular _ ->
        failwith "Laprls.fit: representer system singular (increase gamma_a)"
  in
  { points; n_labeled = n; alpha; kernel; bandwidth }

let predict model x =
  if Array.length model.points = 0 then failwith "Laprls.predict: empty model";
  if Array.length x <> Array.length model.points.(0) then
    invalid_arg "Laprls.predict: dimension mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc :=
        !acc
        +. (model.alpha.(i)
            *. Kernel.Kernel_fn.eval model.kernel ~bandwidth:model.bandwidth p x))
    model.points;
  !acc

(* in-sample scores on the unlabeled block: evaluate f at each stored
   unlabeled point (identical to slicing K alpha) *)
let predict_unlabeled model =
  let total = Array.length model.points in
  Array.init (total - model.n_labeled) (fun a ->
      predict model model.points.(model.n_labeled + a))

let coefficients model = Vec.copy model.alpha
