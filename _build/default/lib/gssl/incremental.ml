module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = {
  graph : Graph.Weighted_graph.t;
  known : (int, float) Hashtbl.t;    (* graph vertex -> label *)
  mutable unlabeled : int array;     (* ascending graph indices *)
  mutable inverse : Mat.t;           (* (D22 - W22)^{-1} on [unlabeled] *)
  mutable rhs : Vec.t;               (* W21 y on [unlabeled] *)
}

let create problem =
  let n = Problem.n_labeled problem in
  let total = Problem.size problem in
  let known = Hashtbl.create (total + 1) in
  for i = 0 to n - 1 do
    Hashtbl.replace known i problem.Problem.labels.(i)
  done;
  let unlabeled = Array.init (total - n) (fun a -> n + a) in
  (* reuse Hard's singularity detection, then invert *)
  let system = Hard.system_matrix problem in
  (match
     (* a singular system means an unanchored component; surface the same
        exception Hard.solve would *)
     Linalg.Cholesky.factor system
   with
  | exception Linalg.Cholesky.Not_positive_definite _ ->
      (match
         Array.to_seq unlabeled
         |> Seq.find (fun _ -> true)
       with
      | Some v -> raise (Hard.Unanchored_unlabeled v)
      | None -> ())
  | _ -> ());
  let inverse = Linalg.Cholesky.inverse system in
  let g = problem.Problem.graph in
  let rhs =
    Array.map
      (fun v ->
        let acc = ref 0. in
        for i = 0 to n - 1 do
          acc := !acc +. (Graph.Weighted_graph.weight g v i
                          *. problem.Problem.labels.(i))
        done;
        !acc)
      unlabeled
  in
  { graph = g; known; unlabeled; inverse; rhs }

let predict t =
  let scores = Mat.mv t.inverse t.rhs in
  Array.mapi (fun k v -> (v, scores.(k))) t.unlabeled

let position_of t vertex =
  let pos = ref (-1) in
  Array.iteri (fun k v -> if v = vertex then pos := k) t.unlabeled;
  if !pos < 0 then invalid_arg "Incremental.reveal: vertex not unlabeled";
  !pos

let reveal t ~vertex ~label =
  let k = position_of t vertex in
  Hashtbl.replace t.known vertex label;
  (* drop position k from the system: block-inverse downdate *)
  t.inverse <- Linalg.Rank_one.delete_row_col t.inverse k;
  let m = Array.length t.unlabeled in
  let next_unlabeled = Array.make (m - 1) 0 in
  let next_rhs = Array.make (m - 1) 0. in
  let pos = ref 0 in
  Array.iteri
    (fun j v ->
      if j <> k then begin
        next_unlabeled.(!pos) <- v;
        (* the newly labeled vertex now contributes to the right-hand side *)
        next_rhs.(!pos) <-
          t.rhs.(j) +. (Graph.Weighted_graph.weight t.graph v vertex *. label);
        incr pos
      end)
    t.unlabeled;
  t.unlabeled <- next_unlabeled;
  t.rhs <- next_rhs

let n_remaining t = Array.length t.unlabeled
let remaining t = Array.copy t.unlabeled

let labels t =
  let out = Hashtbl.fold (fun v y acc -> (v, y) :: acc) t.known [] in
  Array.of_list (List.sort compare out)

let graph t = t.graph
