(** The random-walk interpretation of the hard criterion.

    Zhu, Ghahramani & Lafferty's harmonic solution has a probabilistic
    reading: start a random walk at an unlabeled vertex, moving to
    neighbour [j] with probability [w_ij / Σ_k w_ik], until a labeled
    vertex is hit; then [f̂_a = E[Y of the absorbing vertex]].  This
    module computes absorption probabilities exactly (they solve the same
    linear system) and estimates them by Monte-Carlo simulation — an
    entirely independent validation path for the solvers, exercised by
    the property tests. *)

val absorption_scores : Problem.t -> Linalg.Vec.t
(** Exact expected absorbed label per unlabeled vertex (identical to
    {!Hard.solve} by the harmonic correspondence; computed here through
    the transition-matrix formulation for independence). *)

val absorption_matrix : Problem.t -> Linalg.Mat.t
(** The m×n matrix [B = (D₂₂ − W₂₂)⁻¹ W₂₁] whose entry [(a, i)] is the
    probability that a walk from unlabeled vertex [n+a] absorbs at
    labeled vertex [i].  Rows sum to 1 on anchored graphs, and
    [B·Y = f̂] (the hard solution).  Raises
    {!Hard.Unanchored_unlabeled} like the solvers. *)

val predictive_std : Problem.t -> Linalg.Vec.t
(** Per-unlabeled-vertex standard deviation of the harmonic estimate
    under label noise: treating the observed labels as independent with
    variance [q̂_i(1−q̂_i)] (binary responses, [q̂_i] the labeled point's
    own NW smoothing), [Var f̂_a = Σ_i B²_{ai}·Var Y_i].  Vertices whose
    absorption mass spreads over many labels get small std; vertices
    hanging off a single noisy label get large std. *)

val simulate :
  rng:Prng.Rng.t ->
  walks_per_vertex:int ->
  ?max_steps:int ->
  Problem.t ->
  Linalg.Vec.t
(** Monte-Carlo estimate: average absorbed label over
    [walks_per_vertex] independent walks from each unlabeled vertex.
    Walks that fail to absorb within [max_steps] (default 100_000) are
    counted with the current labeled mean (and are vanishingly rare on
    anchored graphs).  Raises [Invalid_argument] when
    [walks_per_vertex < 1], or if some vertex has zero degree. *)

val hitting_counts :
  rng:Prng.Rng.t ->
  walks_per_vertex:int ->
  ?max_steps:int ->
  Problem.t ->
  int array array
(** [counts.(a).(i)] — how many of vertex [n+a]'s walks were absorbed at
    labeled vertex [i]; rows sum to at most [walks_per_vertex] (less if
    walks time out).  The normalised rows estimate the absorption
    distribution. *)
