type t = {
  kernel : Kernel.Kernel_fn.t;
  bandwidth : float;
  points : Linalg.Vec.t array;
  scores : Linalg.Vec.t;
}

let make ~kernel ~bandwidth ~points ~scores =
  if Array.length points = 0 then invalid_arg "Induction.make: no points";
  if Array.length points <> Array.length scores then
    invalid_arg "Induction.make: points/scores length mismatch";
  if bandwidth <= 0. then invalid_arg "Induction.make: bandwidth must be positive";
  { kernel; bandwidth; points; scores }

let of_problem ?(criterion = Estimator.Hard) ~kernel ~bandwidth ~points problem =
  if Array.length points <> Problem.size problem then
    invalid_arg "Induction.of_problem: points/problem size mismatch";
  let scores = Estimator.predict_full criterion problem in
  make ~kernel ~bandwidth ~points ~scores

let predict t x =
  if Array.length x <> Array.length t.points.(0) then
    invalid_arg "Induction.predict: dimension mismatch";
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun i p ->
      let w = Kernel.Kernel_fn.eval t.kernel ~bandwidth:t.bandwidth p x in
      num := !num +. (w *. t.scores.(i));
      den := !den +. w)
    t.points;
  if !den = 0. then
    (* x is outside every kernel's support: fall back to the global mean
       of the fitted scores (the only symmetric choice) *)
    Linalg.Vec.mean t.scores
  else !num /. !den

let predict_many t xs = Array.map (predict t) xs
