(** The unified estimator API — what the examples, experiments and
    benchmarks call.

    A criterion plus a solver strategy; [Hard] is the paper's λ = 0
    (consistent) estimator, [Soft lambda] the λ > 0 (inconsistent)
    variant.  Scores are posterior-probability-like for {0,1} responses
    and regression predictions otherwise; {!classify} thresholds them. *)

type criterion =
  | Hard
  | Soft of float  (** the tuning parameter λ > 0 *)

type strategy =
  | Direct      (** Cholesky/LU factorizations — default *)
  | Iterative   (** CG for [Soft], label propagation for [Hard] *)

val criterion_of_lambda : float -> criterion
(** [0. ↦ Hard], [λ > 0 ↦ Soft λ] — the paper's parameterisation where
    the hard criterion *is* the λ=0 soft criterion (Proposition II.1).
    Raises [Invalid_argument] on negative λ. *)

val lambda_of_criterion : criterion -> float
val criterion_name : criterion -> string

val predict : ?strategy:strategy -> criterion -> Problem.t -> Linalg.Vec.t
(** Scores on the unlabeled vertices. *)

val predict_full : ?strategy:strategy -> criterion -> Problem.t -> Linalg.Vec.t
(** All n+m scores ([Hard] keeps the observed labels on the labeled
    block). *)

val classify : ?threshold:float -> Linalg.Vec.t -> bool array
(** Threshold scores at [threshold] (default 0.5). *)
