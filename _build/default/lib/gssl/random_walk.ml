module Vec = Linalg.Vec

let absorption_scores problem =
  (* the expected absorbed label solves (D22 - W22) f = W21 Y — we reuse
     the scalable CSR assembly rather than Hard.solve so that the two
     paths stay genuinely independent in the tests *)
  let a, b = Scalable.system_csr problem in
  Sparse.Cg.solve_exn ~tol:1e-12 (Sparse.Linop.of_csr a) b

let validate_degrees problem =
  let d = Problem.degrees problem in
  Array.iter
    (fun v ->
      if v <= 0. then
        invalid_arg "Random_walk: vertex of zero degree cannot walk")
    d;
  d

(* one transition from vertex v: pick a neighbour proportionally to edge
   weight (including self-loops, which just stall the walk one step) *)
let step rng problem d v =
  let g = problem.Problem.graph in
  let total = Problem.size problem in
  let u = Prng.Rng.float rng *. d.(v) in
  let acc = ref 0. and target = ref (total - 1) in
  (try
     for j = 0 to total - 1 do
       acc := !acc +. Graph.Weighted_graph.weight g v j;
       if u < !acc then begin
         target := j;
         raise Exit
       end
     done
   with Exit -> ());
  !target

let hitting_counts ~rng ~walks_per_vertex ?(max_steps = 100_000) problem =
  if walks_per_vertex < 1 then
    invalid_arg "Random_walk.hitting_counts: need walks_per_vertex >= 1";
  let d = validate_degrees problem in
  let n = Problem.n_labeled problem and m = Problem.n_unlabeled problem in
  let counts = Array.make_matrix m n 0 in
  for a = 0 to m - 1 do
    for _ = 1 to walks_per_vertex do
      let v = ref (n + a) in
      let steps = ref 0 in
      while !v >= n && !steps < max_steps do
        v := step rng problem d !v;
        incr steps
      done;
      if !v < n then counts.(a).(!v) <- counts.(a).(!v) + 1
    done
  done;
  counts

let simulate ~rng ~walks_per_vertex ?max_steps problem =
  let counts = hitting_counts ~rng ~walks_per_vertex ?max_steps problem in
  let y = problem.Problem.labels in
  let fallback = Vec.mean y in
  Array.map
    (fun row ->
      let absorbed = Array.fold_left ( + ) 0 row in
      if absorbed = 0 then fallback
      else begin
        let acc = ref 0. in
        Array.iteri (fun i c -> acc := !acc +. (float_of_int c *. y.(i))) row;
        let estimate = !acc /. float_of_int absorbed in
        (* timed-out walks contribute the labeled mean *)
        let missing = walks_per_vertex - absorbed in
        ((estimate *. float_of_int absorbed) +. (fallback *. float_of_int missing))
        /. float_of_int walks_per_vertex
      end)
    counts

let check_anchored problem =
  let comps = Graph.Connectivity.components problem.Problem.graph in
  let n = Problem.n_labeled problem in
  let anchored = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    Hashtbl.replace anchored comps.(i) ()
  done;
  for v = n to Problem.size problem - 1 do
    if not (Hashtbl.mem anchored comps.(v)) then
      raise (Hard.Unanchored_unlabeled v)
  done

let absorption_matrix problem =
  check_anchored problem;
  let _, _, w21, _ = Problem.blocks problem in
  Linalg.Cholesky.solve_many (Hard.system_matrix problem) w21

(* leave-one-out smoothing of each labeled response: the noise-variance
   proxy q(1-q) for binary labels *)
let labeled_variances problem =
  let n = Problem.n_labeled problem in
  let g = problem.Problem.graph in
  let y = problem.Problem.labels in
  let global = Vec.mean y in
  Array.init n (fun i ->
      let num = ref 0. and den = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then begin
          let w = Graph.Weighted_graph.weight g i j in
          num := !num +. (w *. y.(j));
          den := !den +. w
        end
      done;
      let q = if !den > 0. then !num /. !den else global in
      let q = Stdlib.min 1. (Stdlib.max 0. q) in
      q *. (1. -. q))

let predictive_std problem =
  let b = absorption_matrix problem in
  let variances = labeled_variances problem in
  Array.init b.Linalg.Mat.rows (fun a ->
      let acc = ref 0. in
      for i = 0 to b.Linalg.Mat.cols - 1 do
        let p = Linalg.Mat.get b a i in
        acc := !acc +. (p *. p *. variances.(i))
      done;
      sqrt !acc)
