(** Local and global consistency (Zhou, Bousquet, Lal, Weston &
    Schölkopf, NIPS 2004) — reference [12] of the paper.

    A cited variant of graph-based learning that the paper explicitly
    sets aside; implemented here as a baseline.  It propagates class
    indicator columns through the *symmetric normalized* similarity
    [S = D^{−1/2} W D^{−1/2}]:

    {v  F_c = (1 − α)(I − αS)^{−1} Y_c ,   α ∈ (0, 1) v}

    and classifies by comparing class columns.  [I − αS] is SPD for
    α < 1, so the solve is a Cholesky (or CG) like the soft criterion. *)

val propagate : ?alpha:float -> Problem.t -> Linalg.Vec.t -> Linalg.Vec.t
(** [propagate problem y0] applies [(1−α)(I − αS)^{−1}] to an arbitrary
    seed vector over all n+m vertices ([alpha] default 0.99, the
    original paper's setting).  Raises [Invalid_argument] when [alpha]
    is outside (0,1), the seed has the wrong length, or some vertex has
    zero degree. *)

val scores : ?alpha:float -> Problem.t -> Linalg.Vec.t
(** Binary classification scores on the unlabeled block in [0, 1]:
    class-1 and class-0 indicators are propagated separately and
    combined as [F₁/(F₀ + F₁)] (0.5 where no mass arrives).  Requires
    the problem's labels to be in {0, 1} — [Invalid_argument]
    otherwise. *)
