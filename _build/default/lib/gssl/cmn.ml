module Vec = Linalg.Vec

let scores ?prior ~labels f =
  let q = match prior with Some q -> q | None -> Vec.mean labels in
  if q <= 0. || q >= 1. then invalid_arg "Cmn.scores: prior outside (0,1)";
  Array.iter
    (fun v ->
      if v < -1e-9 || v > 1. +. 1e-9 then
        invalid_arg "Cmn.scores: scores must lie in [0,1]")
    f;
  let pos_mass = Vec.sum f in
  let neg_mass = float_of_int (Array.length f) -. pos_mass in
  if pos_mass <= 0. || neg_mass <= 0. then
    invalid_arg "Cmn.scores: one class has zero mass";
  Array.map
    (fun v -> (q *. v /. pos_mass) -. ((1. -. q) *. (1. -. v) /. neg_mass))
    f

let classify ?prior ~labels f =
  Array.map (fun s -> s > 0.) (scores ?prior ~labels f)
