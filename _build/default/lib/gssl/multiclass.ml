module Mat = Linalg.Mat

type t = {
  graph : Graph.Weighted_graph.t;
  class_labels : int array;
  n_classes : int;
}

let make ~graph ~class_labels =
  let n = Array.length class_labels in
  if n = 0 then invalid_arg "Multiclass.make: no labeled data";
  if n > Graph.Weighted_graph.order graph then
    invalid_arg "Multiclass.make: more labels than vertices";
  let n_classes = 1 + Array.fold_left Stdlib.max (-1) class_labels in
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Multiclass.make: negative class")
    class_labels;
  let present = Array.make n_classes false in
  Array.iter (fun c -> present.(c) <- true) class_labels;
  if not (Array.for_all (fun b -> b) present) then
    invalid_arg "Multiclass.make: class numbering has gaps";
  { graph; class_labels; n_classes }

let indicator_problem t c =
  let labels =
    Array.map (fun cls -> if cls = c then 1. else 0.) t.class_labels
  in
  Problem.make ~graph:t.graph ~labels

(* For the hard criterion the system matrix is label-independent, so we
   factor it once and reuse it for every class's right-hand side. *)
let hard_scores t =
  let p0 = indicator_problem t 0 in
  let m = Problem.n_unlabeled p0 in
  if m = 0 then Mat.zeros 0 t.n_classes
  else begin
    let a = Hard.system_matrix p0 in
    let l = Linalg.Cholesky.factor a in
    let n = Array.length t.class_labels in
    let g = t.graph in
    let cols =
      Array.init t.n_classes (fun c ->
          let rhs =
            Array.init m (fun a_idx ->
                let acc = ref 0. in
                for i = 0 to n - 1 do
                  if t.class_labels.(i) = c then
                    acc := !acc +. Graph.Weighted_graph.weight g (n + a_idx) i
                done;
                !acc)
          in
          Linalg.Cholesky.solve_factored l rhs)
    in
    Mat.of_cols cols
  end

let generic_scores t criterion =
  let m =
    Graph.Weighted_graph.order t.graph - Array.length t.class_labels
  in
  if m = 0 then Mat.zeros 0 t.n_classes
  else
    Mat.of_cols
      (Array.init t.n_classes (fun c ->
           Estimator.predict criterion (indicator_problem t c)))

let scores ?(criterion = Estimator.Hard) t =
  match criterion with
  | Estimator.Hard -> hard_scores t
  | Estimator.Soft _ -> generic_scores t criterion

let predict ?criterion t =
  let s = scores ?criterion t in
  Array.init s.Mat.rows (fun i -> Linalg.Vec.argmax (Mat.row s i))

let accuracy ~truth predictions =
  if Array.length truth <> Array.length predictions then
    invalid_arg "Multiclass.accuracy: length mismatch";
  if Array.length truth = 0 then invalid_arg "Multiclass.accuracy: empty input";
  let hits = ref 0 in
  Array.iteri (fun i c -> if c = predictions.(i) then incr hits) truth;
  float_of_int !hits /. float_of_int (Array.length truth)
