lib/gssl/laprls.ml: Array Graph Kernel Linalg
