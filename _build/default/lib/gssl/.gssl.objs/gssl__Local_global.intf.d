lib/gssl/local_global.mli: Linalg Problem
