lib/gssl/lambda_path.mli: Linalg Problem
