lib/gssl/theory.mli: Linalg Problem
