lib/gssl/hard.ml: Array Graph Hashtbl Linalg Problem Sparse
