lib/gssl/induction.mli: Estimator Kernel Linalg Problem
