lib/gssl/estimator.mli: Linalg Problem
