lib/gssl/random_walk.mli: Linalg Prng Problem
