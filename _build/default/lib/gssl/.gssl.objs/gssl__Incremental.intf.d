lib/gssl/incremental.mli: Graph Problem
