lib/gssl/hard.mli: Linalg Problem
