lib/gssl/label_propagation.ml: Array Graph Linalg Printf Problem
