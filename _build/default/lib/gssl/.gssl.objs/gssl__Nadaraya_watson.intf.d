lib/gssl/nadaraya_watson.mli: Kernel Linalg Problem
