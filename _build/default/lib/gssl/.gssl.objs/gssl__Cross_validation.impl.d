lib/gssl/cross_validation.ml: Array Graph Hard Linalg List Prng Problem Soft Stats
