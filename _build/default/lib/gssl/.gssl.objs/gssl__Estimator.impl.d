lib/gssl/estimator.ml: Array Hard Label_propagation Linalg Printf Problem Soft
