lib/gssl/cmn.mli: Linalg
