lib/gssl/lambda_path.ml: Array Hard Linalg Problem Soft
