lib/gssl/theory.ml: Array Graph Hard Linalg Nadaraya_watson Problem Soft
