lib/gssl/active.mli: Incremental Prng
