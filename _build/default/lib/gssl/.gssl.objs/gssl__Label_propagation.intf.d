lib/gssl/label_propagation.mli: Linalg Problem
