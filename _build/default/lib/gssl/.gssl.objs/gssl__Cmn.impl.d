lib/gssl/cmn.ml: Array Linalg
