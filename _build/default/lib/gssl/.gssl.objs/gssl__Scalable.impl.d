lib/gssl/scalable.ml: Array Graph Hard Hashtbl Linalg Printf Problem Sparse
