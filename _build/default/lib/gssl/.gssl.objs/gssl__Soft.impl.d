lib/gssl/soft.ml: Array Graph Linalg Problem Sparse
