lib/gssl/nadaraya_watson.ml: Array Graph Kernel Problem
