lib/gssl/scalable.mli: Linalg Problem Sparse
