lib/gssl/multiclass.mli: Estimator Graph Linalg
