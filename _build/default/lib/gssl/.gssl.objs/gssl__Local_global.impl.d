lib/gssl/local_global.ml: Array Graph Linalg Problem
