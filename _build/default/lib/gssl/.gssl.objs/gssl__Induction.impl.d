lib/gssl/induction.ml: Array Estimator Kernel Linalg Problem
