lib/gssl/random_walk.ml: Array Graph Hard Hashtbl Linalg Prng Problem Scalable Sparse Stdlib
