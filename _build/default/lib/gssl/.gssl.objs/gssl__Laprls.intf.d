lib/gssl/laprls.mli: Kernel Linalg
