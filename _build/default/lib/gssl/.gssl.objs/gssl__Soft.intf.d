lib/gssl/soft.mli: Linalg Problem
