lib/gssl/problem.ml: Array Graph Kernel Linalg
