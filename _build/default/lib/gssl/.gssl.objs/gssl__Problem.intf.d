lib/gssl/problem.mli: Graph Kernel Linalg
