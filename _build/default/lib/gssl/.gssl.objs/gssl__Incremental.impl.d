lib/gssl/incremental.ml: Array Graph Hard Hashtbl Linalg List Problem Seq
