lib/gssl/active.ml: Array Graph Incremental List Prng
