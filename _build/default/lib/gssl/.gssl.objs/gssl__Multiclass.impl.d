lib/gssl/multiclass.ml: Array Estimator Graph Hard Linalg Problem Stdlib
