lib/gssl/cross_validation.mli: Prng Problem
