(** One-vs-rest multiclass extension of the binary criteria.

    The paper's COIL benchmark has 6 underlying classes that it binarises;
    this module handles the multiclass problem directly: one indicator
    problem per class sharing a single graph (so the m×m system matrix is
    factored once for the hard criterion — predictions for all classes
    come from the same factorization with different right-hand sides),
    predictions by arg-max of the per-class scores. *)

type t = private {
  graph : Graph.Weighted_graph.t;
  class_labels : int array;   (** class of each labeled vertex, in 0 … c−1 *)
  n_classes : int;
}

val make : graph:Graph.Weighted_graph.t -> class_labels:int array -> t
(** Classes must be numbered 0 … c−1 with every class present.  Raises
    [Invalid_argument] on gaps, negatives, or an empty/oversized label
    array. *)

val scores : ?criterion:Estimator.criterion -> t -> Linalg.Mat.t
(** [m × c] matrix of per-class membership scores on the unlabeled
    vertices (default criterion [Hard]).  Rows of the hard-criterion
    scores sum to 1 (the per-class indicator vectors sum to the all-ones
    vector and the solve is linear). *)

val predict : ?criterion:Estimator.criterion -> t -> int array
(** Arg-max class per unlabeled vertex. *)

val accuracy : truth:int array -> int array -> float
(** Fraction of agreeing entries.  Raises [Invalid_argument] on length
    mismatch or empty input. *)
