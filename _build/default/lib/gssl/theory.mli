(** Numerical probes of the quantities appearing in the paper's proofs.

    These make the abstract objects of Section IV concrete so the tests
    and the consistency demo can check that the asymptotic mechanisms
    really operate at finite sample sizes:

    - the "tiny elements" bound [‖D₂₂⁻¹W₂₂‖_max ≤ M/(n·h_nᵈ)];
    - the Neumann series [S_l = Σ_{k≤l} (D₂₂⁻¹W₂₂)ᵏ] whose limit gives
      [(I − D₂₂⁻¹W₂₂)⁻¹ = I + S];
    - the residual [g_{n+a}] separating the hard solution from the
      Nadaraya–Watson estimator;
    - the λ→∞ collapse of the soft criterion (Proposition II.2). *)

val d22_inv_w22 : Problem.t -> Linalg.Mat.t
(** The m×m matrix [D₂₂⁻¹W₂₂] from the proof. *)

val tiny_elements_max : Problem.t -> float
(** [‖D₂₂⁻¹W₂₂‖_max] — should shrink like 1/(n·h_nᵈ) as n grows. *)

val tiny_elements_bound : k_star:float -> beta:float -> s:float -> n:int -> h:float -> d:int -> float
(** The theoretical bound [M / (n·hᵈ)] with [M = 2k*/(s·β)] (Section IV).
    Raises [Invalid_argument] on non-positive parameters. *)

val neumann_partial_sum : Problem.t -> int -> Linalg.Mat.t
(** [S_l] for a given [l ≥ 1].  Raises [Invalid_argument] when [l < 1]. *)

val neumann_converges : ?l:int -> ?tol:float -> Problem.t -> bool
(** Whether [‖S_{l} − S_{l−1}‖_max < tol] at [l] (default 50, tol 1e-12)
    — i.e. the geometric series has numerically converged, which the
    proof guarantees with probability → 1. *)

val nw_gap : Problem.t -> Linalg.Vec.t
(** Per-unlabeled-vertex difference between the hard-criterion solution
    and the Nadaraya–Watson estimator; Theorem II.1's argument shows the
    sup-norm of this vanishes when [m/(n·h_nᵈ) → 0]. *)

val g_residuals : Problem.t -> Linalg.Vec.t
(** The quantities [g_{n+a} = Σ_i Y_i (w_{i,n+a}/Σ_{k≤n} w_{k,n+a}
    − w_{i,n+a}/d_{n+a,n+a})] from the proof — the first-order part of
    {!nw_gap}. *)

val unlabeled_mass_ratio : Problem.t -> float
(** [max_a (Σ_{k>n} w_{k,n+a}) / d_{n+a}] — the coupling of unlabeled
    points to each other relative to total degree; bounded by
    [mM/(n·h_nᵈ)] in the proof, and the driver of the [m = o(n·h_nᵈ)]
    condition. *)

val soft_collapse_error : lambda:float -> Problem.t -> float
(** [‖soft(λ) − ȳ·1‖_∞] on the unlabeled block: how close the soft
    solution is to the Proposition II.2 collapse value.  Decreases to 0
    as λ→∞ on connected graphs. *)
