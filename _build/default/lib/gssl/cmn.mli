(** Class-mass normalization (Zhu, Ghahramani & Lafferty 2003, §4).

    The harmonic solution's decision threshold can be mis-calibrated when
    the classes are unbalanced; CMN rescales the positive and negative
    masses to match prior class proportions before thresholding:

    {v  predict positive  iff  q·f_a / Σf  >  (1−q)·(1−f_a) / Σ(1−f) v}

    where [q] is the prior positive proportion (estimated from the
    labeled set by default).  This is the standard companion to the hard
    criterion and is exercised by the image-classification example. *)

val scores : ?prior:float -> labels:Linalg.Vec.t -> Linalg.Vec.t -> Linalg.Vec.t
(** [scores ~labels f] rescales harmonic scores [f] (all in [0, 1]) into
    CMN decision scores: positive mass minus negative mass, so the
    decision threshold becomes 0.  [prior] defaults to the mean of
    [labels].  Raises [Invalid_argument] when [prior] is outside (0, 1),
    scores lie outside [0,1], or the score mass of either class is
    zero. *)

val classify : ?prior:float -> labels:Linalg.Vec.t -> Linalg.Vec.t -> bool array
(** Threshold {!scores} at 0. *)
