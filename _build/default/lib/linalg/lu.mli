(** LU decomposition with partial pivoting, and the dense linear solves
    built on it.

    [factor a] computes [P a = L U] with unit lower-triangular [L] and upper
    triangular [U], stored packed in a single matrix plus a permutation. *)

type factorization = {
  lu : Mat.t;           (** packed L (strict lower, unit diagonal implied) and U *)
  perm : int array;     (** row permutation: row [i] of [P a] is row [perm.(i)] of [a] *)
  sign : float;         (** determinant of the permutation, [+1.] or [-1.] *)
}

exception Singular of int
(** Raised when a (near-)zero pivot is met at the given elimination step. *)

val factor : Mat.t -> factorization
(** Raises [Invalid_argument] if the matrix is not square, [Singular] if it
    is numerically singular. *)

val solve_factored : factorization -> Vec.t -> Vec.t
(** Solve [a x = b] given a factorization of [a]. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] = [solve_factored (factor a) b]. *)

val solve_many : Mat.t -> Mat.t -> Mat.t
(** [solve_many a b] solves [a x = b] column-by-column (one factorization). *)

val inverse : Mat.t -> Mat.t
(** Matrix inverse; raises [Singular] on singular input. *)

val det : Mat.t -> float
(** Determinant via the factorization; [0.] for singular matrices. *)

val is_singular : Mat.t -> bool
