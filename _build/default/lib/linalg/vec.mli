(** Dense vectors of floats.

    A vector is a plain [float array]; this module provides the linear-algebra
    operations used throughout the reproduction.  Functions ending in
    [_inplace] mutate their first argument; all others are pure.

    All binary operations raise [Invalid_argument] on dimension mismatch. *)

type t = float array

(** {1 Construction} *)

val create : int -> float -> t
(** [create n x] is the vector of length [n] filled with [x].
    Raises [Invalid_argument] if [n < 0]. *)

val zeros : int -> t
(** [zeros n] is the all-zero vector of length [n]. *)

val ones : int -> t
(** [ones n] is the all-one vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; …; f (n-1) |]. *)

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of length [n].
    Raises [Invalid_argument] if [i] is out of bounds. *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    Raises [Invalid_argument] if [n < 2]. *)

val of_list : float list -> t
val to_list : t -> float list
val copy : t -> t
val dim : t -> int

(** {1 Pointwise operations} *)

val map : (float -> float) -> t -> t
val mapi : (int -> float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard (element-wise) product. *)

val div : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val add_scalar : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val scale_inplace : float -> t -> unit
val fill : t -> float -> unit

(** {1 Reductions} *)

val dot : t -> t -> float
val sum : t -> float
val mean : t -> float
(** Raises [Invalid_argument] on the empty vector. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm2_sq : t -> float
val norm1 : t -> float
val norm_inf : t -> float
val min : t -> float
val max : t -> float
(** [min]/[max] raise [Invalid_argument] on the empty vector. *)

val argmin : t -> int
val argmax : t -> int

val dist2 : t -> t -> float
(** Euclidean distance. *)

val dist2_sq : t -> t -> float
(** Squared Euclidean distance (no sqrt). *)

(** {1 Comparison and display} *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [tol] (default 1e-9).
    Vectors of different lengths are never equal. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Slicing} *)

val slice : t -> int -> int -> t
(** [slice v pos len] is the sub-vector of [v] of length [len] starting at
    [pos].  Raises [Invalid_argument] if out of range. *)

val concat : t -> t -> t
