type t = float array

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let create n x =
  if n < 0 then invalid_arg "Vec.create: negative length";
  Array.make n x

let zeros n = create n 0.
let ones n = create n 1.
let init = Array.init

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of bounds";
  let v = zeros n in
  v.(i) <- 1.;
  v

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least two points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let of_list = Array.of_list
let to_list = Array.to_list
let copy = Array.copy
let dim = Array.length
let map f v = Array.map f v
let mapi f v = Array.mapi f v

let map2 f x y =
  check_same_dim "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y =
  check_same_dim "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let mul x y =
  check_same_dim "mul" x y;
  Array.init (Array.length x) (fun i -> x.(i) *. y.(i))

let div x y =
  check_same_dim "div" x y;
  Array.init (Array.length x) (fun i -> x.(i) /. y.(i))

let scale a v = Array.map (fun x -> a *. x) v
let neg v = Array.map (fun x -> -.x) v
let add_scalar a v = Array.map (fun x -> a +. x) v

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let scale_inplace a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let fill v x = Array.fill v 0 (Array.length v) x

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sum v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. v.(i)
  done;
  !acc

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let norm2_sq v = dot v v
let norm2 v = sqrt (norm2_sq v)

let norm1 v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. abs_float v.(i)
  done;
  !acc

let norm_inf v =
  let acc = ref 0. in
  for i = 0 to Array.length v - 1 do
    let a = abs_float v.(i) in
    if a > !acc then acc := a
  done;
  !acc

let min v =
  if Array.length v = 0 then invalid_arg "Vec.min: empty vector";
  Array.fold_left Stdlib.min v.(0) v

let max v =
  if Array.length v = 0 then invalid_arg "Vec.max: empty vector";
  Array.fold_left Stdlib.max v.(0) v

let argmin v =
  if Array.length v = 0 then invalid_arg "Vec.argmin: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) < v.(!best) then best := i
  done;
  !best

let argmax v =
  if Array.length v = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let dist2_sq x y =
  check_same_dim "dist2_sq" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist2 x y = sqrt (dist2_sq x y)

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if abs_float (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "|]"

let to_string v = Format.asprintf "%a" pp v

let slice v pos len =
  if pos < 0 || len < 0 || pos + len > Array.length v then
    invalid_arg "Vec.slice: out of range";
  Array.sub v pos len

let concat x y = Array.append x y
