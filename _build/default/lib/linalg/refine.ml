let refine ?(iterations = 2) a b x0 =
  if not (Mat.is_square a) then invalid_arg "Refine.refine: matrix not square";
  if Array.length b <> a.Mat.rows || Array.length x0 <> a.Mat.rows then
    invalid_arg "Refine.refine: length mismatch";
  let f = Lu.factor a in
  let x = Vec.copy x0 in
  for _ = 1 to iterations do
    let residual = Vec.sub b (Mat.mv a x) in
    let correction = Lu.solve_factored f residual in
    Vec.axpy 1. correction x
  done;
  x

let solve_refined ?(iterations = 2) a b =
  let f = Lu.factor a in
  let x = Lu.solve_factored f b in
  for _ = 1 to iterations do
    let residual = Vec.sub b (Mat.mv a x) in
    Vec.axpy 1. (Lu.solve_factored f residual) x
  done;
  x

let condition_estimate ?(iterations = 30) a =
  if not (Mat.is_square a) then
    invalid_arg "Refine.condition_estimate: matrix not square";
  let n = a.Mat.rows in
  if n = 0 then invalid_arg "Refine.condition_estimate: empty matrix";
  match Lu.factor a with
  | exception Lu.Singular _ -> infinity
  | f ->
      (* ||a||_2 via power iteration on a^T a *)
      let v = ref (Vec.init n (fun i -> 1. +. (0.01 *. float_of_int i))) in
      Vec.scale_inplace (1. /. Vec.norm2 !v) !v;
      let sigma_max = ref 0. in
      for _ = 1 to iterations do
        let w = Mat.tmv a (Mat.mv a !v) in
        let norm = Vec.norm2 w in
        if norm > 0. then begin
          sigma_max := sqrt norm;
          v := Vec.scale (1. /. norm) w
        end
      done;
      (* ||a^{-1}||_2 via power iteration on (a^T a)^{-1}:
         w = a^{-1} (a^{-T} v); factor a^T once for the inner solve *)
      let ft = Lu.factor (Mat.transpose a) in
      let transpose_solve b = Lu.solve_factored ft b in
      let u = ref (Vec.init n (fun i -> 1. -. (0.01 *. float_of_int i))) in
      Vec.scale_inplace (1. /. Vec.norm2 !u) !u;
      let sigma_inv = ref 0. in
      for _ = 1 to iterations do
        let w = Lu.solve_factored f (transpose_solve !u) in
        let norm = Vec.norm2 w in
        if norm > 0. then begin
          sigma_inv := sqrt norm;
          u := Vec.scale (1. /. norm) w
        end
      done;
      !sigma_max *. !sigma_inv
