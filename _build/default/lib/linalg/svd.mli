(** Singular value decomposition by one-sided Jacobi.

    [decompose a] factors an m×n matrix (m ≥ n) as [a = u s vᵀ] with
    orthonormal-column [u] (m×n), nonnegative [s] descending, and
    orthogonal [v] (n×n).  One-sided Jacobi is slow (O(n² m) per sweep)
    but simple and accurate — adequate for the PCA preprocessing used in
    the image experiments. *)

type t = {
  u : Mat.t;        (** m×n, orthonormal columns *)
  s : Vec.t;        (** singular values, descending *)
  v : Mat.t;        (** n×n, orthogonal *)
}

val decompose : ?tol:float -> ?max_sweeps:int -> Mat.t -> t
(** Raises [Invalid_argument] when m < n; [Failure] if Jacobi sweeps do
    not converge ([max_sweeps] default 60, [tol] default 1e-12 relative). *)

val reconstruct : t -> Mat.t
(** [u s vᵀ] — for testing. *)

val rank : ?tol:float -> t -> int
(** Number of singular values above [tol·s₀] (default 1e-10). *)

val condition_number : t -> float
(** [s₀ / s_{n−1}]; [infinity] when singular. *)

val pseudo_inverse : ?tol:float -> t -> Mat.t
(** Moore–Penrose inverse; singular values below [tol·s₀] are treated as
    zero. *)
