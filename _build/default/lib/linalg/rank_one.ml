let check_square_match name a_inv u v =
  if not (Mat.is_square a_inv) then
    invalid_arg ("Rank_one." ^ name ^ ": inverse not square");
  let n = a_inv.Mat.rows in
  if Array.length u <> n || Array.length v <> n then
    invalid_arg ("Rank_one." ^ name ^ ": dimension mismatch")

let sherman_morrison_inplace a_inv u v =
  check_square_match "sherman_morrison" a_inv u v;
  let n = a_inv.Mat.rows in
  let ainv_u = Mat.mv a_inv u in
  let vt_ainv = Mat.tmv a_inv v in
  let denom = 1. +. Vec.dot v ainv_u in
  if abs_float denom < 1e-13 then
    failwith "Rank_one.sherman_morrison: singular update";
  let d = a_inv.Mat.data in
  for i = 0 to n - 1 do
    let scale = ainv_u.(i) /. denom in
    if scale <> 0. then begin
      let base = i * n in
      for j = 0 to n - 1 do
        d.(base + j) <- d.(base + j) -. (scale *. vt_ainv.(j))
      done
    end
  done

let sherman_morrison a_inv u v =
  let out = Mat.copy a_inv in
  sherman_morrison_inplace out u v;
  out

let symmetric_update a_inv c u = sherman_morrison a_inv (Vec.scale c u) u

let delete_row_col b k =
  if not (Mat.is_square b) then invalid_arg "Rank_one.delete_row_col: not square";
  let n = b.Mat.rows in
  if k < 0 || k >= n then invalid_arg "Rank_one.delete_row_col: bad index";
  let bkk = Mat.get b k k in
  if abs_float bkk < 1e-300 then
    failwith "Rank_one.delete_row_col: zero pivot in inverse";
  let keep = Array.init (n - 1) (fun i -> if i < k then i else i + 1) in
  Mat.init (n - 1) (n - 1) (fun i j ->
      let p = keep.(i) and q = keep.(j) in
      Mat.get b p q -. (Mat.get b p k *. Mat.get b k q /. bkk))
