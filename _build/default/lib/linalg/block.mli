(** 2×2 block-matrix utilities.

    The paper's Eq. (4) computes the soft-criterion solution on the
    unlabeled block through the inverse of a 2×2 block matrix; this module
    provides that inverse (via Schur complements) plus the pieces needed to
    test it against a direct inverse. *)

type partitioned = { a11 : Mat.t; a12 : Mat.t; a21 : Mat.t; a22 : Mat.t }

val partition : Mat.t -> int -> partitioned
(** [partition a k] splits a square matrix so that [a11] is [k]×[k]. *)

val assemble : partitioned -> Mat.t

val schur_complement_11 : partitioned -> Mat.t
(** [a11 − a12 a22⁻¹ a21].  Raises {!Lu.Singular} if [a22] is singular. *)

val schur_complement_22 : partitioned -> Mat.t
(** [a22 − a21 a11⁻¹ a12]. *)

val block_inverse : partitioned -> partitioned
(** Inverse of the block matrix by the formula quoted in the paper
    (Section II), expressed with Schur complements.  Requires [a11], [a22]
    and both Schur complements nonsingular. *)

val lower_left_of_inverse : partitioned -> Mat.t
(** The (2,1) block of the inverse:
    [−(a22 − a21 a11⁻¹ a12)⁻¹ a21 a11⁻¹].  This is exactly the operator
    that maps [Y_n] to [f̂_(n+1):(n+m)] in Eq. (4) (up to sign conventions
    handled by the caller). *)
