(** Dense row-major matrices of floats.

    Storage is a single flat [float array] of length [rows * cols]; entry
    [(i, j)] lives at index [i * cols + j].  All indices are 0-based.
    Dimension mismatches raise [Invalid_argument]. *)

type t = { rows : int; cols : int; data : float array }

(** {1 Construction} *)

val create : int -> int -> float -> t
(** [create r c x] is the [r]×[c] matrix filled with [x].
    Raises [Invalid_argument] on negative dimensions. *)

val zeros : int -> int -> t
val ones : int -> int -> t
val eye : int -> t
(** Identity matrix. *)

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has entry [f i j] at [(i, j)]. *)

val of_rows : Vec.t array -> t
(** Stack row vectors.  Raises [Invalid_argument] if rows have unequal
    lengths or the array is empty. *)

val of_cols : Vec.t array -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val copy : t -> t

(** {1 Access} *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
(** Bounds-checked.  Raise [Invalid_argument] when out of range. *)

val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val get_diag : t -> Vec.t
val dims : t -> int * int
val is_square : t -> bool

val set_row : t -> int -> Vec.t -> unit
val set_col : t -> int -> Vec.t -> unit

(** {1 Pointwise and scalar operations} *)

val map : (float -> float) -> t -> t
val mapij : (int -> int -> float -> float) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val hadamard : t -> t -> t
val scale : float -> t -> t
val add_scaled_identity : t -> float -> t
(** [add_scaled_identity a mu] is [a + mu*I]; requires [a] square. *)

(** {1 Multiplication} *)

val mv : t -> Vec.t -> Vec.t
(** Matrix–vector product. *)

val tmv : t -> Vec.t -> Vec.t
(** [tmv a x] is [aᵀ x] without forming the transpose. *)

val mm : t -> t -> t
(** Matrix–matrix product (blocked ikj loop). *)

val transpose : t -> t

val gram : t -> t
(** [gram a] is [aᵀ a]. *)

val outer : Vec.t -> Vec.t -> t
(** [outer x y] is the rank-one matrix [x yᵀ]. *)

val quadratic_form : t -> Vec.t -> float
(** [quadratic_form a x] is [xᵀ a x]; requires [a] square. *)

(** {1 Reductions and predicates} *)

val trace : t -> float
val frobenius_norm : t -> float
val max_abs : t -> float
(** Largest absolute entry ([‖·‖_max] in the paper's proof). *)

val row_sums : t -> Vec.t
val col_sums : t -> Vec.t
val is_symmetric : ?tol:float -> t -> bool
val approx_equal : ?tol:float -> t -> t -> bool

(** {1 Block operations (used for Eq. (4) / Eq. (5) of the paper)} *)

val submatrix : t -> int -> int -> int -> int -> t
(** [submatrix a i j r c] is the [r]×[c] block of [a] with top-left corner
    [(i, j)].  Raises [Invalid_argument] when out of range. *)

val blit : src:t -> dst:t -> int -> int -> unit
(** [blit ~src ~dst i j] copies [src] into [dst] at top-left corner
    [(i, j)]. *)

val hcat : t -> t -> t
val vcat : t -> t -> t

val split4 : t -> int -> t * t * t * t
(** [split4 a k] partitions a square matrix into 2×2 blocks
    [(a11, a12, a21, a22)] where [a11] is [k]×[k]. *)

val assemble4 : t -> t -> t -> t -> t
(** Inverse of [split4]: assemble a 2×2 block matrix. *)

(** {1 Display} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
