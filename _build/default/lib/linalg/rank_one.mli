(** Rank-one updates of explicit inverses (Sherman–Morrison).

    Supports the incremental SSL solver: when an unlabeled point becomes
    labeled (or a weight changes), the hard-criterion system changes by a
    few rank-one terms, so its inverse can be refreshed in O(m²) instead
    of refactored in O(m³). *)

val sherman_morrison : Mat.t -> Vec.t -> Vec.t -> Mat.t
(** [sherman_morrison a_inv u v] is [(A + u vᵀ)⁻¹] given [a_inv = A⁻¹]:
    [A⁻¹ − (A⁻¹u vᵀA⁻¹)/(1 + vᵀA⁻¹u)].
    Raises [Invalid_argument] on dimension mismatch and [Failure] when
    the update is singular ([1 + vᵀA⁻¹u ≈ 0]). *)

val sherman_morrison_inplace : Mat.t -> Vec.t -> Vec.t -> unit
(** Same, updating [a_inv] in place (no allocation beyond two vectors). *)

val symmetric_update : Mat.t -> float -> Vec.t -> Mat.t
(** [(A + c·u uᵀ)⁻¹] from [A⁻¹] — the symmetric special case. *)

val delete_row_col : Mat.t -> int -> Mat.t
(** Given [A⁻¹] for an n×n matrix [A], return the inverse of [A] with row
    and column [k] removed, in O(n²) (block-inverse identity).  Raises
    [Invalid_argument] on a bad index, [Failure] when the deleted
    diagonal entry of the inverse is (numerically) zero. *)
