(** Cholesky decomposition of symmetric positive-definite matrices.

    The hard-criterion system matrix [D₂₂ − W₂₂] and the soft-criterion
    matrix [V + λL] (for connected graphs, λ > 0) are SPD, so this is the
    preferred direct solver in the reproduction. *)

exception Not_positive_definite of int
(** Raised (with the failing column) when a non-positive pivot is met. *)

val factor : Mat.t -> Mat.t
(** [factor a] returns the lower-triangular [l] with [a = l lᵀ].
    Raises [Invalid_argument] if [a] is not square,
    [Not_positive_definite] if it is not SPD.  Only the lower triangle of
    [a] is read, so strictly the symmetrisation [(a + aᵀ)/2] is factored. *)

val solve_factored : Mat.t -> Vec.t -> Vec.t
(** [solve_factored l b] solves [l lᵀ x = b]. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] factors and solves [a x = b]. *)

val solve_many : Mat.t -> Mat.t -> Mat.t
(** Multi-RHS solve with one factorization. *)

val inverse : Mat.t -> Mat.t

val log_det : Mat.t -> float
(** Log-determinant of an SPD matrix (numerically stable). *)

val is_spd : Mat.t -> bool
(** True when symmetric (within 1e-8) and the factorization succeeds. *)
