(** Iterative refinement and condition-number estimation for dense
    solves.

    The similarity matrices of tightly clustered inputs make the
    hard/soft systems ill-conditioned; refinement recovers accuracy lost
    to rounding at the cost of extra residual evaluations, and the
    condition estimate tells callers when to distrust a direct solve. *)

val refine :
  ?iterations:int ->
  Mat.t ->
  Vec.t ->
  Vec.t ->
  Vec.t
(** [refine a b x0] improves an approximate solution of [a x = b] by
    [iterations] (default 2) rounds of [x ← x + a⁻¹(b − a x)], each
    using a fresh LU factorization of [a] on the residual.  Raises
    {!Lu.Singular} / [Invalid_argument] like {!Lu.solve}. *)

val solve_refined : ?iterations:int -> Mat.t -> Vec.t -> Vec.t
(** LU solve followed by refinement — one factorization shared by the
    solve and all refinement steps. *)

val condition_estimate : ?iterations:int -> Mat.t -> float
(** 2-norm condition number estimate via power iteration on [aᵀa] (for
    [‖a‖₂]) and inverse iteration through an LU factorization (for
    [‖a⁻¹‖₂]); [iterations] defaults to 30.  Returns [infinity] for
    singular matrices.  Raises [Invalid_argument] if not square. *)
