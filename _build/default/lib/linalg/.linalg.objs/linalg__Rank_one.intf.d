lib/linalg/rank_one.mli: Mat Vec
