lib/linalg/mat.ml: Array Format Printf Stdlib Vec
