lib/linalg/rank_one.ml: Array Mat Vec
