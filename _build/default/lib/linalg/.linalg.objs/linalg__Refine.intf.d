lib/linalg/refine.mli: Mat Vec
