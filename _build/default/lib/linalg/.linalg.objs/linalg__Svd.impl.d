lib/linalg/svd.ml: Array Mat Stdlib Vec
