lib/linalg/block.ml: Lu Mat
