lib/linalg/refine.ml: Array Lu Mat Vec
