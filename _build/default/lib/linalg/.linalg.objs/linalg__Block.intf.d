lib/linalg/block.mli: Mat
