type partitioned = { a11 : Mat.t; a12 : Mat.t; a21 : Mat.t; a22 : Mat.t }

let partition a k =
  let a11, a12, a21, a22 = Mat.split4 a k in
  { a11; a12; a21; a22 }

let assemble { a11; a12; a21; a22 } = Mat.assemble4 a11 a12 a21 a22

let schur_complement_11 { a11; a12; a21; a22 } =
  Mat.sub a11 (Mat.mm a12 (Lu.solve_many a22 a21))

let schur_complement_22 { a11; a12; a21; a22 } =
  Mat.sub a22 (Mat.mm a21 (Lu.solve_many a11 a12))

let block_inverse p =
  let s11 = schur_complement_11 p in
  let s22 = schur_complement_22 p in
  let s11_inv = Lu.inverse s11 in
  let s22_inv = Lu.inverse s22 in
  let a11_inv = Lu.inverse p.a11 in
  let a22_inv = Lu.inverse p.a22 in
  {
    a11 = s11_inv;
    a12 = Mat.scale (-1.) (Mat.mm s11_inv (Mat.mm p.a12 a22_inv));
    a21 = Mat.scale (-1.) (Mat.mm s22_inv (Mat.mm p.a21 a11_inv));
    a22 = s22_inv;
  }

let lower_left_of_inverse p =
  let s22 = schur_complement_22 p in
  let t = Mat.mm p.a21 (Lu.inverse p.a11) in
  Mat.scale (-1.) (Lu.solve_many s22 t)
