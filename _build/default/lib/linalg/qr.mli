(** Householder QR decomposition and least-squares solves.

    Used by the reproduction for well-conditioned least-squares fits (e.g.
    calibrating logit models in the examples) and as an independent check of
    the LU/Cholesky solvers in tests. *)

type factorization

val factor : Mat.t -> factorization
(** QR of an [m]×[n] matrix with [m ≥ n].
    Raises [Invalid_argument] when [m < n]. *)

val q : factorization -> Mat.t
(** The thin orthogonal factor ([m]×[n]). *)

val r : factorization -> Mat.t
(** The upper-triangular factor ([n]×[n]). *)

val solve_least_squares : Mat.t -> Vec.t -> Vec.t
(** [solve_least_squares a b] minimises [‖a x − b‖₂].
    Raises [Failure] if [a] is rank-deficient (zero diagonal in R). *)

val solve : Mat.t -> Vec.t -> Vec.t
(** Square-system solve via QR (an alternative to {!Lu.solve}). *)
