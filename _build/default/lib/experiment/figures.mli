(** Reproductions of the paper's five figures plus the supporting
    demonstrations (toy example, complexity claim, consistency probes).

    Defaults are sized to run on one core in minutes; pass [reps] (and
    for Fig. 5 [dataset_size]) to approach the paper's full scale
    (1000 replications for Figs. 1–4, 100 CV repetitions for Fig. 5).
    Every function is deterministic given [seed]. *)

val default_lambdas : float list
(** The synthetic-study grid: 0, 0.01, 0.1, 5. *)

val coil_lambdas : float list
(** The COIL grid: 0, 0.01, 0.05, 0.1, 0.5, 1, 5. *)

val predict_adaptive : lambda:float -> Gssl.Problem.t -> Linalg.Vec.t
(** The solver-selection policy used by all experiments: hard criterion
    for λ = 0 (direct for small systems, CG for large), soft criterion
    otherwise (direct/CG by size, with a direct fallback if CG stalls). *)

val fig1 :
  ?domains:int -> ?reps:int -> ?seed:int -> ?ns:int list -> ?m:int ->
  ?lambdas:float list -> unit -> Sweep.figure_result
(** Model 1, RMSE vs n at fixed m (paper: m = 30,
    n ∈ 10…1500, 1000 reps; default reps = 10).  [domains] > 1 runs the
    grid on that many OCaml 5 domains with bit-identical results. *)

val fig2 :
  ?domains:int -> ?reps:int -> ?seed:int -> ?ms:int list -> ?n:int ->
  ?lambdas:float list -> unit -> Sweep.figure_result
(** Model 1, RMSE vs m at fixed n (paper: n = 100, m ∈ 30…1000). *)

val fig3 :
  ?domains:int -> ?reps:int -> ?seed:int -> ?ns:int list -> ?m:int ->
  ?lambdas:float list -> unit -> Sweep.figure_result
(** Model 2 (non-linear logit), RMSE vs n. *)

val fig4 :
  ?domains:int -> ?reps:int -> ?seed:int -> ?ms:int list -> ?n:int ->
  ?lambdas:float list -> unit -> Sweep.figure_result
(** Model 2, RMSE vs m. *)

val fig5 :
  ?reps:int -> ?seed:int -> ?lambdas:float list -> ?dataset_size:int ->
  unit -> Sweep.figure_result
(** COIL-like binary classification: average AUC vs λ for the three
    labeled-to-unlabeled ratios 80/20 (5-fold, test = 1 fold), 20/80
    (5-fold, train = 1 fold) and 10/90 (10-fold, train = 1 fold).
    [reps] repetitions of each CV scheme (paper: 100; default 1);
    [dataset_size] (default 1500) subsamples the simulated dataset for
    quicker runs. *)

(** {1 Supporting demonstrations} *)

val toy_demo : n:int -> m:int -> seed:int -> string
(** Render the Section III closed-form checks on a random label draw:
    hard prediction = label mean, and the explicit inverse pattern. *)

val consistency_demo :
  ?seed:int -> ?ns:int list -> ?m:int -> unit -> Sweep.figure_result
(** Theorem II.1 / Prop. II.2 probe: sup-norm error of the hard solution
    against q(X), its gap to Nadaraya–Watson, and the soft(λ=5) error,
    as n grows with fixed m. *)

val complexity_table : ?seed:int -> ?sizes:int list -> unit -> string
(** Wall-clock of one hard solve (O(m³), m = size) vs one soft solve
    (O((n+m)³)) on equal data — the Proposition II.1 complexity remark. *)
