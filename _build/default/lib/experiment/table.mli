(** Aligned ASCII tables for experiment output. *)

val render : header:string list -> string list list -> string
(** Left column left-aligned, the rest right-aligned; raises
    [Invalid_argument] if a row's width differs from the header's. *)

val of_figure : Sweep.figure_result -> string
(** One row per x value, one column per series (mean ± stderr when
    stderr > 0). *)

val float_cell : float -> string
(** Compact numeric formatting used throughout ("0.1234", "1.5e-08"…). *)
