let figure_markdown { Sweep.title; xlabel; series; _ } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "**%s**\n\n" title);
  Buffer.add_string buf
    (Printf.sprintf "| %s | %s |\n" xlabel
       (String.concat " | " (List.map (fun s -> s.Sweep.label) series)));
  Buffer.add_string buf
    (Printf.sprintf "|---|%s\n"
       (String.concat "" (List.map (fun _ -> "---|") series)));
  let n_x = match series with [] -> 0 | s :: _ -> Array.length s.Sweep.xs in
  for i = 0 to n_x - 1 do
    let x = match series with [] -> "" | s :: _ -> Table.float_cell s.Sweep.xs.(i) in
    let cells = List.map (fun s -> Table.float_cell s.Sweep.means.(i)) series in
    Buffer.add_string buf
      (Printf.sprintf "| %s | %s |\n" x (String.concat " | " cells))
  done;
  Buffer.contents buf

let slack s i = 2. *. Stdlib.max s.Sweep.stderrs.(i) s.Sweep.stderrs.(i - 1)

let series_monotone_nonincreasing s =
  let ok = ref true in
  for i = 1 to Array.length s.Sweep.means - 1 do
    if s.Sweep.means.(i) > s.Sweep.means.(i - 1) +. slack s i then ok := false
  done;
  !ok

let series_monotone_nondecreasing s =
  let ok = ref true in
  for i = 1 to Array.length s.Sweep.means - 1 do
    if s.Sweep.means.(i) < s.Sweep.means.(i - 1) -. slack s i then ok := false
  done;
  !ok

let first_series_best ?(larger_is_better = false) { Sweep.series; _ } =
  match series with
  | [] | [ _ ] -> true
  | first :: rest ->
      let ok = ref true in
      Array.iteri
        (fun i best ->
          List.iter
            (fun s ->
              let v = s.Sweep.means.(i) in
              if larger_is_better then begin
                if v > best +. 1e-12 then ok := false
              end
              else if v < best -. 1e-12 then ok := false)
            rest)
        first.Sweep.means;
      !ok

let shape_checks ({ Sweep.series; _ } as fig) =
  let per_series =
    List.map
      (fun s ->
        ( Printf.sprintf "series %s is finite" s.Sweep.label,
          Array.for_all Float.is_finite s.Sweep.means ))
      series
  in
  ("first series weakly best at every x", first_series_best fig) :: per_series
