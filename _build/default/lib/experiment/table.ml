let float_cell v =
  if v = 0. then "0"
  else if Float.is_integer v && abs_float v < 1e7 then
    Printf.sprintf "%.0f" v
  else begin
    let a = abs_float v in
    if a >= 1e-3 && a < 1e5 then Printf.sprintf "%.4f" v
    else Printf.sprintf "%.3e" v
  end

let render ~header rows =
  let width = List.length header in
  List.iter
    (fun row ->
      if List.length row <> width then invalid_arg "Table.render: ragged row")
    rows;
  let all = header :: rows in
  let col_widths =
    List.init width (fun j ->
        List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row j))) 0 all)
  in
  let pad j cell =
    let w = List.nth col_widths j in
    if j = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') col_widths)
  in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"

let of_figure { Sweep.title; xlabel; series; _ } =
  let header = xlabel :: List.map (fun s -> s.Sweep.label) series in
  let n_x =
    match series with [] -> 0 | s :: _ -> Array.length s.Sweep.xs
  in
  let rows =
    List.init n_x (fun i ->
        let x =
          match series with [] -> "" | s :: _ -> float_cell s.Sweep.xs.(i)
        in
        let cells =
          List.map
            (fun s ->
              let m = float_cell s.Sweep.means.(i) in
              if s.Sweep.stderrs.(i) > 0. then
                Printf.sprintf "%s ±%s" m (float_cell s.Sweep.stderrs.(i))
              else m)
            series
        in
        x :: cells)
  in
  Printf.sprintf "%s\n%s" title (render ~header rows)
