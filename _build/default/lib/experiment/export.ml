let float_str v = Printf.sprintf "%.17g" v

let to_csv { Sweep.title; xlabel; ylabel; series } =
  let meta = [ "# " ^ title; xlabel; ylabel ] in
  let header =
    "x"
    :: List.concat_map
         (fun s -> [ s.Sweep.label ^ " mean"; s.Sweep.label ^ " stderr" ])
         series
  in
  let n_x = match series with [] -> 0 | s :: _ -> Array.length s.Sweep.xs in
  let rows =
    List.init n_x (fun i ->
        let x = match series with [] -> "" | s :: _ -> float_str s.Sweep.xs.(i) in
        x
        :: List.concat_map
             (fun s -> [ float_str s.Sweep.means.(i); float_str s.Sweep.stderrs.(i) ])
             series)
  in
  Dataset.Csv.render (meta :: header :: rows)

let strip_suffix ~suffix s =
  if String.length s >= String.length suffix
     && String.sub s (String.length s - String.length suffix) (String.length suffix)
        = suffix
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

let of_csv text =
  match Dataset.Csv.parse text with
  | meta :: header :: rows ->
      let title, xlabel, ylabel =
        match meta with
        | [ t; xl; yl ] ->
            let t =
              if String.length t >= 2 && String.sub t 0 2 = "# " then
                String.sub t 2 (String.length t - 2)
              else t
            in
            (t, xl, yl)
        | _ -> failwith "Export.of_csv: bad metadata row"
      in
      let labels =
        match header with
        | "x" :: cols ->
            let rec pair = function
              | [] -> []
              | mean_col :: _stderr_col :: rest -> (
                  match strip_suffix ~suffix:" mean" mean_col with
                  | Some label -> label :: pair rest
                  | None -> failwith "Export.of_csv: bad mean column")
              | _ -> failwith "Export.of_csv: odd column count"
            in
            pair cols
        | _ -> failwith "Export.of_csv: bad header"
      in
      let parse_float s =
        match float_of_string_opt s with
        | Some v -> v
        | None -> failwith "Export.of_csv: non-numeric cell"
      in
      let parsed_rows =
        List.map
          (fun row ->
            match row with
            | x :: cells -> (parse_float x, List.map parse_float cells)
            | [] -> failwith "Export.of_csv: empty row")
          rows
      in
      let xs = Array.of_list (List.map fst parsed_rows) in
      let series =
        List.mapi
          (fun si label ->
            {
              Sweep.label;
              xs = Array.copy xs;
              means =
                Array.of_list
                  (List.map (fun (_, cells) -> List.nth cells (2 * si)) parsed_rows);
              stderrs =
                Array.of_list
                  (List.map
                     (fun (_, cells) -> List.nth cells ((2 * si) + 1))
                     parsed_rows);
            })
          labels
      in
      { Sweep.title; xlabel; ylabel; series }
  | _ -> failwith "Export.of_csv: need metadata and header rows"

let write_file path fig =
  let oc = open_out path in
  output_string oc (to_csv fig);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_csv text
