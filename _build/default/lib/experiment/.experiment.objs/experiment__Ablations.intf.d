lib/experiment/ablations.mli: Sweep
