lib/experiment/table.ml: Array Float List Printf Stdlib String Sweep
