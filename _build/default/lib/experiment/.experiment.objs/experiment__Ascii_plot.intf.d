lib/experiment/ascii_plot.mli: Sweep
