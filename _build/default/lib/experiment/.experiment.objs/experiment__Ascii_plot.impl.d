lib/experiment/ascii_plot.ml: Array Buffer List Printf Stdlib String Sweep
