lib/experiment/future_work.mli: Sweep
