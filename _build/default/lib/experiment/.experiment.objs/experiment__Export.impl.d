lib/experiment/export.ml: Array Dataset List Printf String Sweep
