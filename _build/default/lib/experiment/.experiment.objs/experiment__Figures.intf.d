lib/experiment/figures.mli: Gssl Linalg Sweep
