lib/experiment/sweep.ml: Array Domain List Prng Stats
