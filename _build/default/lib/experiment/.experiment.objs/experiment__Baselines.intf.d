lib/experiment/baselines.mli: Sweep
