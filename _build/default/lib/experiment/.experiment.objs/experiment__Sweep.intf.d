lib/experiment/sweep.mli: Prng Stats
