lib/experiment/report.mli: Sweep
