lib/experiment/future_work.ml: Array Dataset Figures Fun Graph Gssl Kernel Linalg List Printf Prng Stats Stdlib Sweep
