lib/experiment/svg_plot.mli: Sweep
