lib/experiment/figures.ml: Array Buffer Dataset Graph Gssl Kernel Linalg List Logs Printf Prng Stats Stdlib Sweep Sys Table
