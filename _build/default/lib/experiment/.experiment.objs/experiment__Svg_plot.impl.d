lib/experiment/svg_plot.ml: Array Buffer List Printf Stdlib String Sweep
