lib/experiment/export.mli: Sweep
