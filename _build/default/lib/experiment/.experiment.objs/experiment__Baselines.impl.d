lib/experiment/baselines.ml: Array Dataset Figures Graph Gssl Kernel Linalg List Printf Prng Sparse Stats Stdlib Sweep Table
