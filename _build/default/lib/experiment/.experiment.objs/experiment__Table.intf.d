lib/experiment/table.mli: Sweep
