lib/experiment/report.ml: Array Buffer Float List Printf Stdlib String Sweep Table
