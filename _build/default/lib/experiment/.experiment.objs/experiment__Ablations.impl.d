lib/experiment/ablations.ml: Array Dataset Figures Gssl Kernel Linalg List Printf Prng Stats Sweep
