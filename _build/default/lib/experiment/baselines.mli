(** Baseline comparison: the paper's two criteria against the methods it
    cites — Nadaraya–Watson kernel regression [20,21], local & global
    consistency [12], and LapRLS manifold regularization [16] — plus
    statistical significance for the headline "hard wins" claim. *)

val method_comparison :
  ?reps:int -> ?seed:int -> ?ns:int list -> unit -> Sweep.figure_result
(** RMSE vs n on Model 1 (m = 30) for: hard, soft(0.1), Nadaraya–Watson,
    local-global (α = 0.99), LapRLS. *)

val significance_report : ?reps:int -> ?seed:int -> ?n:int -> ?m:int -> unit -> string
(** At one configuration, run paired replicates of hard vs every other
    method and report mean RMSEs, paired t-test and Wilcoxon p-values,
    and a bootstrap CI of the mean difference. *)

val two_moons_report : ?seed:int -> ?n:int -> ?labeled_per_moon:int -> unit -> string
(** The cluster-assumption demo: accuracy of each method on two moons
    with very few labels (default 2 per moon out of 300 points). *)

val multiclass_report :
  ?seed:int -> ?dataset_size:int -> ?labeled_fraction:float -> unit -> string
(** The 6-class version of the COIL task (the paper binarises it; the
    one-vs-rest extension handles it directly): per-criterion accuracy
    of [Multiclass.predict], compared against the majority-class floor
    and a 1-NN baseline. *)
