module Vec = Linalg.Vec
module Mat = Linalg.Mat

let default_lambdas = [ 0.; 0.01; 0.1; 5. ]
let coil_lambdas = [ 0.; 0.01; 0.05; 0.1; 0.5; 1.; 5. ]

let lambda_label lambda = Printf.sprintf "lambda=%g" lambda

let predict_adaptive ~lambda problem =
  let total = Gssl.Problem.size problem in
  let m = Gssl.Problem.n_unlabeled problem in
  if lambda = 0. then
    if m <= 400 then Gssl.Hard.solve ~solver:Gssl.Hard.Cholesky problem
    else Gssl.Hard.solve ~solver:(Gssl.Hard.Cg { tol = 1e-9 }) problem
  else if total <= 350 then Gssl.Soft.solve ~lambda problem
  else begin
    match Gssl.Soft.solve ~method_:(Gssl.Soft.Cg { tol = 1e-8 }) ~lambda problem with
    | scores -> scores
    | exception Failure _ ->
        Logs.warn (fun k -> k "soft CG stalled (lambda=%g, size=%d); direct solve" lambda total);
        Gssl.Soft.solve ~lambda problem
  end

(* One synthetic replicate: draw n+m points, build the graph with the
   paper's bandwidth h_n = (log n / n)^{1/5}, return the RMSE of every
   lambda against the true regression function on the unlabeled block. *)
let synthetic_rmse ~model ~lambdas ~n ~m rng =
  let samples = Dataset.Synthetic.sample_many rng model (n + m) in
  let h = Kernel.Bandwidth.paper_rate ~d:Dataset.Synthetic.dimension n in
  let problem, truth =
    Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
  in
  List.map
    (fun lambda -> Stats.Metrics.rmse truth (predict_adaptive ~lambda problem))
    lambdas

let n_sweep ~domains ~model ~title ~reps ~seed ~ns ~m ~lambdas =
  let labels = List.map lambda_label lambdas in
  let series =
    Sweep.grid_parallel ~domains ~seed ~reps ~xs:(List.map float_of_int ns)
      ~labels
      (fun ~x rng -> synthetic_rmse ~model ~lambdas ~n:(int_of_float x) ~m rng)
  in
  { Sweep.title; xlabel = "n"; ylabel = "avg RMSE"; series }

let m_sweep ~domains ~model ~title ~reps ~seed ~ms ~n ~lambdas =
  let labels = List.map lambda_label lambdas in
  let series =
    Sweep.grid_parallel ~domains ~seed ~reps ~xs:(List.map float_of_int ms)
      ~labels
      (fun ~x rng -> synthetic_rmse ~model ~lambdas ~n ~m:(int_of_float x) rng)
  in
  { Sweep.title; xlabel = "m"; ylabel = "avg RMSE"; series }

let default_ns = [ 10; 30; 50; 100; 200; 300; 500; 800; 1000; 1500 ]
let default_ms = [ 30; 60; 100; 300; 500; 1000 ]

let fig1 ?(domains = 1) ?(reps = 10) ?(seed = 1) ?(ns = default_ns) ?(m = 30)
    ?(lambdas = default_lambdas) () =
  n_sweep ~domains ~model:Dataset.Synthetic.Model1
    ~title:(Printf.sprintf "Fig.1: avg RMSE vs n (Model 1, m=%d, reps=%d)" m reps)
    ~reps ~seed ~ns ~m ~lambdas

let fig2 ?(domains = 1) ?(reps = 10) ?(seed = 2) ?(ms = default_ms) ?(n = 100)
    ?(lambdas = default_lambdas) () =
  m_sweep ~domains ~model:Dataset.Synthetic.Model1
    ~title:(Printf.sprintf "Fig.2: avg RMSE vs m (Model 1, n=%d, reps=%d)" n reps)
    ~reps ~seed ~ms ~n ~lambdas

let fig3 ?(domains = 1) ?(reps = 10) ?(seed = 3) ?(ns = default_ns) ?(m = 30)
    ?(lambdas = default_lambdas) () =
  n_sweep ~domains ~model:Dataset.Synthetic.Model2
    ~title:(Printf.sprintf "Fig.3: avg RMSE vs n (Model 2, m=%d, reps=%d)" m reps)
    ~reps ~seed ~ns ~m ~lambdas

let fig4 ?(domains = 1) ?(reps = 10) ?(seed = 4) ?(ms = default_ms) ?(n = 100)
    ?(lambdas = default_lambdas) () =
  m_sweep ~domains ~model:Dataset.Synthetic.Model2
    ~title:(Printf.sprintf "Fig.4: avg RMSE vs m (Model 2, n=%d, reps=%d)" n reps)
    ~reps ~seed ~ms ~n ~lambdas

(* ------------------------------------------------------------------ *)
(* Fig. 5: COIL                                                        *)
(* ------------------------------------------------------------------ *)

let median_offdiag_sq_distance d2 =
  let n = d2.Mat.rows in
  let vals = Array.make (n * (n - 1) / 2) 0. in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      vals.(!k) <- Mat.get d2 i j;
      incr k
    done
  done;
  Stats.Descriptive.median vals

let permuted_matrix w perm =
  let n = Array.length perm in
  Mat.init n n (fun i j -> Mat.get w perm.(i) perm.(j))

(* Evaluate all lambdas on one train/test split of the fixed similarity
   matrix; returns per-lambda AUC, or None when the test set is
   single-class (AUC undefined). *)
let fold_aucs ~w ~labels ~lambdas (fold : Dataset.Splits.fold) =
  let train = fold.Dataset.Splits.train and test = fold.Dataset.Splits.test in
  let truth = Array.map (fun i -> labels.(i)) test in
  let has_pos = Array.exists (fun b -> b) truth in
  let has_neg = Array.exists not truth in
  if not (has_pos && has_neg) then None
  else begin
    let perm = Array.append train test in
    let wp = permuted_matrix w perm in
    let y = Array.map (fun i -> if labels.(i) then 1. else 0.) train in
    let problem =
      Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_dense wp) ~labels:y
    in
    let aucs =
      List.map
        (fun lambda ->
          let scores = predict_adaptive ~lambda problem in
          Stats.Roc.auc ~truth ~scores)
        lambdas
    in
    Some aucs
  end

let fig5 ?(reps = 1) ?(seed = 5) ?(lambdas = coil_lambdas) ?(dataset_size = 1500) () =
  let master = Prng.Rng.create seed in
  let data = Dataset.Coil.generate (Prng.Rng.substream master 0) in
  let all_points = Dataset.Coil.points data in
  let all_labels = Dataset.Coil.labels data in
  let points, labels =
    if dataset_size >= Array.length all_points then (all_points, all_labels)
    else begin
      let idx =
        Prng.Rng.sample_without_replacement (Prng.Rng.substream master 1)
          dataset_size (Array.length all_points)
      in
      ( Array.map (fun i -> all_points.(i)) idx,
        Array.map (fun i -> all_labels.(i)) idx )
    end
  in
  let n_total = Array.length points in
  let d2 = Kernel.Pairwise.sq_distance_matrix points in
  (* paper: sigma^2 = median of squared pairwise distances *)
  let bandwidth = sqrt (median_offdiag_sq_distance d2) in
  let w =
    Kernel.Similarity.dense_of_sq_distances ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth d2
  in
  let settings = [ ("80/20", 5, false); ("20/80", 5, true); ("10/90", 10, true) ] in
  let series =
    List.mapi
      (fun si (name, k, invert) ->
        let accs = List.map (fun _ -> Stats.Running.create ()) lambdas in
        for rep = 0 to reps - 1 do
          let rng = Prng.Rng.substream master (100 + (si * 10_000) + rep) in
          let folds = Dataset.Splits.k_folds rng ~n:n_total ~k in
          Array.iter
            (fun fold ->
              let fold = if invert then Dataset.Splits.inverted fold else fold in
              match fold_aucs ~w ~labels ~lambdas fold with
              | None -> ()
              | Some aucs -> List.iter2 Stats.Running.add accs aucs)
            folds
        done;
        {
          Sweep.label = Printf.sprintf "ratio %s" name;
          xs = Array.of_list lambdas;
          means = Array.of_list (List.map Stats.Running.mean accs);
          stderrs =
            Array.of_list
              (List.map
                 (fun acc ->
                   if Stats.Running.count acc >= 2 then
                     Stats.Running.standard_error acc
                   else 0.)
                 accs);
        })
      settings
  in
  {
    Sweep.title =
      Printf.sprintf "Fig.5: avg AUC vs lambda (COIL-like, N=%d, reps=%d)" n_total reps;
    xlabel = "lambda";
    ylabel = "avg AUC";
    series;
  }

(* ------------------------------------------------------------------ *)
(* Supporting demonstrations                                           *)
(* ------------------------------------------------------------------ *)

let toy_demo ~n ~m ~seed =
  let rng = Prng.Rng.create seed in
  let labels =
    Array.init n (fun _ -> if Prng.Rng.bernoulli rng 0.6 then 1. else 0.)
  in
  let problem = Dataset.Toy.problem ~n ~m ~labels in
  let prediction = Gssl.Hard.solve problem in
  let expected = Dataset.Toy.expected_prediction labels in
  let max_pred_err =
    Vec.norm_inf (Vec.add_scalar (-.expected) prediction)
  in
  let inv_err =
    Mat.max_abs
      (Mat.sub (Dataset.Toy.system_inverse ~n ~m) (Dataset.Toy.expected_inverse ~n ~m))
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "Toy example (Section III): n=%d labeled, m=%d unlabeled\n" n m);
  Buffer.add_string b
    (Printf.sprintf "  label mean ybar                  = %.6f\n" expected);
  Buffer.add_string b
    (Printf.sprintf "  max |hard prediction - ybar|     = %.3e\n" max_pred_err);
  Buffer.add_string b
    (Printf.sprintf "  max |(D22-W22)^-1 - closed form| = %.3e\n" inv_err);
  Buffer.add_string b
    (Printf.sprintf "  (both should be ~0: the hard criterion predicts the label mean)\n");
  Buffer.contents b

let consistency_demo ?(seed = 11) ?(ns = [ 50; 100; 200; 400; 800; 1600 ]) ?(m = 20) () =
  let labels = [ "hard sup-err"; "nw sup-err"; "hard-nw gap"; "soft(5) sup-err" ] in
  let measure ~x rng =
    let n = int_of_float x in
    let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m) in
    let h = Kernel.Bandwidth.paper_rate ~d:Dataset.Synthetic.dimension n in
    let problem, truth =
      Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
        ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
    in
    let hard = predict_adaptive ~lambda:0. problem in
    let nw = Gssl.Nadaraya_watson.of_problem problem in
    let soft5 = predict_adaptive ~lambda:5. problem in
    let sup_err pred = Vec.norm_inf (Vec.sub pred truth) in
    [ sup_err hard; sup_err nw; Vec.norm_inf (Vec.sub hard nw); sup_err soft5 ]
  in
  let series =
    Sweep.grid ~seed ~reps:5 ~xs:(List.map float_of_int ns) ~labels measure
  in
  {
    Sweep.title =
      Printf.sprintf
        "Consistency probe (Thm II.1): sup-norm errors vs n (Model 1, m=%d)" m;
    xlabel = "n";
    ylabel = "sup-norm error";
    series;
  }

let time_once f =
  let t0 = Sys.time () in
  ignore (f ());
  Sys.time () -. t0

let complexity_table ?(seed = 13) ?(sizes = [ 50; 100; 200; 400 ]) () =
  let rng = Prng.Rng.create seed in
  let rows =
    List.map
      (fun size ->
        let n = size and m = size in
        let samples =
          Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m)
        in
        let h = Kernel.Bandwidth.paper_rate ~d:Dataset.Synthetic.dimension n in
        let problem, _ =
          Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
            ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
        in
        let t_hard = time_once (fun () -> Gssl.Hard.solve problem) in
        let t_soft =
          time_once (fun () -> Gssl.Soft.solve ~lambda:0.1 problem)
        in
        [
          string_of_int size;
          string_of_int (n + m);
          Printf.sprintf "%.4f" t_hard;
          Printf.sprintf "%.4f" t_soft;
          Printf.sprintf "%.1fx" (t_soft /. Stdlib.max 1e-9 t_hard);
        ])
      sizes
  in
  "Complexity remark (Prop. II.1): hard solves an mxm system, soft an (n+m)x(n+m) one\n"
  ^ Table.render
      ~header:[ "m (=n)"; "n+m"; "hard solve (s)"; "soft solve (s)"; "ratio" ]
      rows
