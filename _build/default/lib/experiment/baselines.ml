module Vec = Linalg.Vec

(* Evaluate every method on one drawn dataset; returns RMSEs in a fixed
   order.  LapRLS refits its own kernel matrix from the raw inputs, so we
   keep the samples around. *)
let method_names = [ "hard"; "soft(0.1)"; "nadaraya-watson"; "local-global"; "laprls" ]

let method_rmses ~n ~m rng =
  let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m) in
  let h = Kernel.Bandwidth.paper_rate ~d:5 n in
  let problem, truth =
    Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
  in
  let labeled = Array.init n (fun i -> (samples.(i).Dataset.Synthetic.x, samples.(i).Dataset.Synthetic.y)) in
  let unlabeled = Array.init m (fun a -> samples.(n + a).Dataset.Synthetic.x) in
  let rmse scores = Stats.Metrics.rmse truth scores in
  let hard = rmse (Figures.predict_adaptive ~lambda:0. problem) in
  let soft = rmse (Figures.predict_adaptive ~lambda:0.1 problem) in
  let nw = rmse (Gssl.Nadaraya_watson.of_problem problem) in
  let lgc = rmse (Gssl.Local_global.scores ~alpha:0.99 problem) in
  let laprls =
    let model =
      Gssl.Laprls.fit ~gamma_a:1e-6 ~gamma_i:1. ~kernel:Kernel.Kernel_fn.Rbf
        ~bandwidth:h ~labeled unlabeled
    in
    rmse (Gssl.Laprls.predict_unlabeled model)
  in
  [ hard; soft; nw; lgc; laprls ]

let method_comparison ?(reps = 10) ?(seed = 41) ?(ns = [ 30; 100; 300; 800 ]) () =
  let series =
    Sweep.grid ~seed ~reps ~xs:(List.map float_of_int ns) ~labels:method_names
      (fun ~x rng -> method_rmses ~n:(int_of_float x) ~m:30 rng)
  in
  {
    Sweep.title =
      Printf.sprintf "Baselines: RMSE vs n on Model 1 (m=30, reps=%d)" reps;
    xlabel = "n";
    ylabel = "avg RMSE";
    series;
  }

let significance_report ?(reps = 30) ?(seed = 42) ?(n = 200) ?(m = 30) () =
  let master = Prng.Rng.create seed in
  let per_method = Array.make (List.length method_names) [] in
  for k = 0 to reps - 1 do
    let values = method_rmses ~n ~m (Prng.Rng.substream master k) in
    List.iteri (fun i v -> per_method.(i) <- v :: per_method.(i)) values
  done;
  let columns = Array.map (fun l -> Array.of_list (List.rev l)) per_method in
  let hard = columns.(0) in
  let boot_rng = Prng.Rng.create (seed + 1) in
  let rows =
    List.mapi
      (fun i name ->
        let mean = Stats.Descriptive.mean columns.(i) in
        if i = 0 then [ name; Printf.sprintf "%.4f" mean; "-"; "-"; "-" ]
        else begin
          let other = columns.(i) in
          let t = Stats.Hypothesis.paired_t_test other hard in
          let w = Stats.Hypothesis.wilcoxon_signed_rank other hard in
          let ci =
            Stats.Bootstrap.paired_difference_ci ~rng:boot_rng other hard
          in
          [
            name;
            Printf.sprintf "%.4f" mean;
            Printf.sprintf "%.2e" t.Stats.Hypothesis.p_value;
            Printf.sprintf "%.2e" w.Stats.Hypothesis.p_value;
            Printf.sprintf "[%.4f, %.4f]" ci.Stats.Bootstrap.lower
              ci.Stats.Bootstrap.upper;
          ]
        end)
      method_names
  in
  Printf.sprintf
    "Significance of the hard criterion's lead (Model 1, n=%d, m=%d, %d paired replicates)\n\
     p-values test `method - hard = 0`; CI is the bootstrap 95%% interval of the mean gap\n%s"
    n m reps
    (Table.render
       ~header:[ "method"; "mean RMSE"; "t-test p"; "wilcoxon p"; "gap 95% CI" ]
       rows)

let multiclass_report ?(seed = 44) ?(dataset_size = 360) ?(labeled_fraction = 0.1) () =
  let master = Prng.Rng.create seed in
  let data = Dataset.Coil.generate (Prng.Rng.substream master 0) in
  let keep =
    Prng.Rng.sample_without_replacement (Prng.Rng.substream master 1)
      (Stdlib.min dataset_size 1500) 1500
  in
  let points = Array.map (fun i -> (Dataset.Coil.points data).(i)) keep in
  let classes = Array.map (fun i -> data.Dataset.Coil.images.(i).Dataset.Coil.class_id) keep in
  let n_total = Array.length points in
  (* six classes need locality the global median bandwidth washes out: use
     a kNN-sparsified graph with a tighter (10th-percentile) bandwidth *)
  let bandwidth =
    let d2 = Kernel.Pairwise.sq_distance_matrix points in
    let vals = ref [] in
    for i = 0 to n_total - 1 do
      for j = i + 1 to n_total - 1 do
        vals := Linalg.Mat.get d2 i j :: !vals
      done
    done;
    sqrt (Stats.Descriptive.quantile (Array.of_list !vals) 0.1)
  in
  let w =
    Sparse.Csr.to_dense
      (Kernel.Similarity.knn ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth ~k:10 points)
  in
  let split =
    Dataset.Splits.ratio_split (Prng.Rng.substream master 2) ~n:n_total
      ~labeled_fraction
  in
  let train = split.Dataset.Splits.train and test = split.Dataset.Splits.test in
  let perm = Array.append train test in
  let wp =
    Linalg.Mat.init n_total n_total (fun i j ->
        Linalg.Mat.get w perm.(i) perm.(j))
  in
  let class_labels = Array.map (fun i -> classes.(i)) train in
  let truth = Array.map (fun i -> classes.(i)) test in
  let mc =
    Gssl.Multiclass.make ~graph:(Graph.Weighted_graph.of_dense wp) ~class_labels
  in
  let criterion_rows =
    List.map
      (fun (name, criterion) ->
        let pred = Gssl.Multiclass.predict ~criterion mc in
        [ name; Printf.sprintf "%.4f" (Gssl.Multiclass.accuracy ~truth pred) ])
      [
        ("hard (one-vs-rest)", Gssl.Estimator.Hard);
        ("soft(0.05)", Gssl.Estimator.Soft 0.05);
        ("soft(1)", Gssl.Estimator.Soft 1.);
      ]
  in
  (* 1-NN baseline on raw pixels *)
  let one_nn =
    let pred =
      Array.map
        (fun ti ->
          let best = ref train.(0) and best_d = ref infinity in
          Array.iter
            (fun tr ->
              let d = Linalg.Vec.dist2_sq points.(ti) points.(tr) in
              if d < !best_d then begin
                best_d := d;
                best := tr
              end)
            train;
          classes.(!best))
        test
    in
    Gssl.Multiclass.accuracy ~truth pred
  in
  let majority =
    let counts = Array.make 6 0 in
    Array.iter (fun c -> counts.(c) <- counts.(c) + 1) truth;
    float_of_int (Array.fold_left Stdlib.max 0 counts)
    /. float_of_int (Array.length truth)
  in
  Printf.sprintf
    "Six-class simulated COIL (N=%d, %.0f%% labeled) - one-vs-rest extension\n%s"
    n_total (100. *. labeled_fraction)
    (Table.render ~header:[ "method"; "accuracy" ]
       (criterion_rows
       @ [
           [ "1-NN (raw pixels)"; Printf.sprintf "%.4f" one_nn ];
           [ "majority-class floor"; Printf.sprintf "%.4f" majority ];
         ]))

let two_moons_report ?(seed = 43) ?(n = 300) ?(labeled_per_moon = 2) () =
  let rng = Prng.Rng.create seed in
  let samples = Dataset.Two_moons.generate rng n in
  let problem, truth =
    Dataset.Two_moons.to_problem ~labeled_per_moon samples
  in
  let accuracy scores =
    let pred = Gssl.Estimator.classify scores in
    let hits = ref 0 in
    Array.iteri (fun i p -> if p = truth.(i) then incr hits) pred;
    float_of_int !hits /. float_of_int (Array.length truth)
  in
  let entries =
    [
      ("hard", accuracy (Figures.predict_adaptive ~lambda:0. problem));
      ("soft(0.1)", accuracy (Figures.predict_adaptive ~lambda:0.1 problem));
      ("nadaraya-watson", accuracy (Gssl.Nadaraya_watson.of_problem problem));
      ("local-global", accuracy (Gssl.Local_global.scores problem));
    ]
  in
  Printf.sprintf
    "Two moons (%d points, %d labels per moon) - the cluster assumption at work\n%s"
    n labeled_per_moon
    (Table.render ~header:[ "method"; "accuracy" ]
       (List.map (fun (name, acc) -> [ name; Printf.sprintf "%.4f" acc ]) entries))
