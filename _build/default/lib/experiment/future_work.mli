(** Empirical probes of the paper's *future work* section.

    The paper closes with two open directions: (1) the behaviour of other
    accuracy indicators — AUC and MCC — under the two criteria, and
    (2) the m ≫ n regime (covered by {!Ablations.regime_study}).  These
    studies provide the numerics for (1), plus a calibration analysis
    that follows directly from consistency (a consistent score estimate
    of E[Y|X] is asymptotically calibrated; the collapsed soft scores
    are not). *)

val indicator_study :
  ?reps:int -> ?seed:int -> ?dataset_size:int -> ?lambdas:float list ->
  unit -> Sweep.figure_result * Sweep.figure_result * Sweep.figure_result
(** On the simulated-COIL 80/20 protocol, measure (AUC, accuracy, MCC)
    vs λ — three figure results in that order.  The paper's conjecture
    to check: the λ-ordering seen for AUC (Fig. 5) persists for the
    other indicators. *)

val auc_consistency_study :
  ?reps:int -> ?seed:int -> ?ns:int list -> ?m:int -> unit -> Sweep.figure_result
(** On synthetic Model 1: AUC of the hard criterion and of soft(5) vs n,
    against the oracle AUC of the true regression function q(X) — the
    empirical version of "is AUC consistent as an indicator?". *)

val calibration_study :
  ?reps:int -> ?seed:int -> ?ns:int list -> ?m:int -> unit -> Sweep.figure_result
(** Expected calibration error and Brier score of hard vs soft(1) as n
    grows: consistency shows up as vanishing ECE for the hard criterion
    only. *)
