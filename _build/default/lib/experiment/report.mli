(** Markdown rendering of experiment results (used to regenerate the
    tables embedded in EXPERIMENTS.md). *)

val figure_markdown : Sweep.figure_result -> string
(** A GitHub-flavoured markdown table: one row per x, one column per
    series. *)

val shape_checks : Sweep.figure_result -> (string * bool) list
(** Qualitative "shape" assertions extracted from a figure result, of the
    kind the paper's narrative makes (e.g. series ordering); pairs of
    description and pass/fail.  The specific checks: for every x, series
    appear in the order given (first = best, i.e. smallest for RMSE-like
    outputs) — callers pick which figures this applies to. *)

val series_monotone_nonincreasing : Sweep.series -> bool
(** Means never increase along x (within a 2-stderr slack per step). *)

val series_monotone_nondecreasing : Sweep.series -> bool

val first_series_best :
  ?larger_is_better:bool -> Sweep.figure_result -> bool
(** True when the first series is weakly best at every x (default:
    smaller is better). *)
