let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#ff7f0e"; "#9467bd"; "#8c564b"; "#17becf" |]

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* "nice" tick positions covering [lo, hi] *)
let ticks lo hi count =
  if hi <= lo then [ lo ]
  else begin
    let span = hi -. lo in
    let raw_step = span /. float_of_int count in
    let mag = 10. ** floor (log10 raw_step) in
    let norm = raw_step /. mag in
    let step = (if norm < 1.5 then 1. else if norm < 3.5 then 2. else if norm < 7.5 then 5. else 10.) *. mag in
    let first = ceil (lo /. step) *. step in
    let rec collect t acc =
      if t > hi +. (1e-9 *. span) then List.rev acc else collect (t +. step) (t :: acc)
    in
    collect first []
  end

let render ?(width = 800) ?(height = 500) { Sweep.title; xlabel; ylabel; series } =
  if width <= 0 || height <= 0 then invalid_arg "Svg_plot.render: bad dimensions";
  let buf = Buffer.create 8192 in
  let put fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  put
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
    width height width height;
  put "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  put
    "<text x=\"%d\" y=\"24\" text-anchor=\"middle\" font-size=\"16\">%s</text>\n"
    (width / 2) (escape title);
  let points =
    List.concat_map
      (fun s ->
        Array.to_list (Array.map2 (fun x y -> (x, y)) s.Sweep.xs s.Sweep.means))
      series
  in
  if points = [] then
    put
      "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" font-size=\"14\">(no \
       data)</text>\n"
      (width / 2) (height / 2)
  else begin
    let margin_l = 70 and margin_r = 170 and margin_t = 40 and margin_b = 60 in
    let plot_w = float_of_int (width - margin_l - margin_r) in
    let plot_h = float_of_int (height - margin_t - margin_b) in
    let xs = List.map fst points and ys = List.map snd points in
    let xmin = List.fold_left Stdlib.min (List.hd xs) xs in
    let xmax = List.fold_left Stdlib.max (List.hd xs) xs in
    let ymin = List.fold_left Stdlib.min (List.hd ys) ys in
    let ymax = List.fold_left Stdlib.max (List.hd ys) ys in
    (* pad the y range 5% so curves do not hug the frame *)
    let ypad = Stdlib.max 1e-12 (0.05 *. (ymax -. ymin)) in
    let ymin = ymin -. ypad and ymax = ymax +. ypad in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = ymax -. ymin in
    let sx x = float_of_int margin_l +. ((x -. xmin) /. xspan *. plot_w) in
    let sy y = float_of_int margin_t +. ((ymax -. y) /. yspan *. plot_h) in
    (* frame *)
    put
      "<rect x=\"%d\" y=\"%d\" width=\"%.0f\" height=\"%.0f\" fill=\"none\" \
       stroke=\"#333\"/>\n"
      margin_l margin_t plot_w plot_h;
    (* gridlines + ticks *)
    List.iter
      (fun t ->
        let x = sx t in
        put
          "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%.0f\" stroke=\"#ddd\"/>\n"
          x margin_t x (float_of_int margin_t +. plot_h);
        put
          "<text x=\"%.1f\" y=\"%.0f\" text-anchor=\"middle\" \
           font-size=\"11\">%g</text>\n"
          x (float_of_int (height - margin_b) +. 18.) t)
      (ticks xmin xmax 6);
    List.iter
      (fun t ->
        let y = sy t in
        put
          "<line x1=\"%d\" y1=\"%.1f\" x2=\"%.0f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
          margin_l y (float_of_int margin_l +. plot_w) y;
        put
          "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\" font-size=\"11\">%g</text>\n"
          (margin_l - 6) (y +. 4.) t)
      (ticks ymin ymax 6);
    (* axis labels *)
    put
      "<text x=\"%.0f\" y=\"%d\" text-anchor=\"middle\" font-size=\"13\">%s</text>\n"
      (float_of_int margin_l +. (plot_w /. 2.))
      (height - 12) (escape xlabel);
    put
      "<text x=\"18\" y=\"%.0f\" text-anchor=\"middle\" font-size=\"13\" \
       transform=\"rotate(-90 18 %.0f)\">%s</text>\n"
      (float_of_int margin_t +. (plot_h /. 2.))
      (float_of_int margin_t +. (plot_h /. 2.))
      (escape ylabel);
    (* series *)
    List.iteri
      (fun si s ->
        let colour = palette.(si mod Array.length palette) in
        let coords =
          Array.to_list
            (Array.map2 (fun x y -> Printf.sprintf "%.1f,%.1f" (sx x) (sy y))
               s.Sweep.xs s.Sweep.means)
        in
        put "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
          (String.concat " " coords) colour;
        Array.iteri
          (fun i x ->
            let y = s.Sweep.means.(i) in
            put "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n" (sx x)
              (sy y) colour;
            (* error bars when stderr is available *)
            if s.Sweep.stderrs.(i) > 0. then begin
              let e = s.Sweep.stderrs.(i) in
              put
                "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
                 stroke=\"%s\" stroke-width=\"1\"/>\n"
                (sx x) (sy (y -. e)) (sx x) (sy (y +. e)) colour
            end)
          s.Sweep.xs;
        (* legend entry *)
        let ly = margin_t + 10 + (si * 20) in
        let lx = width - margin_r + 12 in
        put
          "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
           stroke-width=\"2\"/>\n"
          lx ly (lx + 20) ly colour;
        put "<text x=\"%d\" y=\"%d\" font-size=\"12\">%s</text>\n" (lx + 26) (ly + 4)
          (escape s.Sweep.label))
      series
  end;
  put "</svg>\n";
  Buffer.contents buf

let write_file path fig =
  let oc = open_out path in
  output_string oc (render fig);
  close_out oc
