(** SVG line-chart rendering of figure results.

    Produces a self-contained [.svg] file per figure so reproduced
    figures can be compared with the paper's visually.  No dependencies —
    the SVG is assembled textually. *)

val render : ?width:int -> ?height:int -> Sweep.figure_result -> string
(** The SVG document as a string.  [width]×[height] in pixels (defaults
    800×500).  Series are drawn as polylines with point markers and
    distinct colours, with axes, tick labels and a legend.  Raises
    [Invalid_argument] on non-positive dimensions; empty figures render
    as a document with a "(no data)" note. *)

val write_file : string -> Sweep.figure_result -> unit
(** Render to a file. *)
