module Vec = Linalg.Vec

let m_default = 30

(* On rare draws a compactly supported kernel leaves an unlabeled vertex
   with no path to a label; fall back to the only label-consistent
   constant prediction so the sweep stays total. *)
let hard_or_mean problem =
  match Gssl.Hard.solve problem with
  | scores -> scores
  | exception Gssl.Hard.Unanchored_unlabeled _ ->
      Vec.create (Gssl.Problem.n_unlabeled problem)
        (Vec.mean problem.Gssl.Problem.labels)

let build_problem ~kernel ~bandwidth samples ~n =
  Dataset.Synthetic.to_problem ~kernel ~bandwidth:(Kernel.Bandwidth.Fixed bandwidth)
    ~n_labeled:n samples

let kernel_study ?(reps = 10) ?(seed = 21) ?(ns = [ 30; 100; 300; 800 ]) () =
  let kernels =
    [
      ("rbf", Kernel.Kernel_fn.Rbf, 1.);
      ("truncated-rbf", Kernel.Kernel_fn.Truncated_rbf 3., 1.);
      ("box", Kernel.Kernel_fn.Box, 3.);
      ("epanechnikov", Kernel.Kernel_fn.Epanechnikov, 3.);
    ]
  in
  let labels = List.map (fun (name, _, _) -> name) kernels in
  let measure ~x rng =
    let n = int_of_float x in
    let samples =
      Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m_default)
    in
    let h = Kernel.Bandwidth.paper_rate ~d:5 n in
    List.map
      (fun (_, kernel, scale) ->
        let problem, truth =
          build_problem ~kernel ~bandwidth:(scale *. h) samples ~n
        in
        Stats.Metrics.rmse truth (hard_or_mean problem))
      kernels
  in
  let series =
    Sweep.grid ~seed ~reps ~xs:(List.map float_of_int ns) ~labels measure
  in
  {
    Sweep.title =
      Printf.sprintf "Ablation: hard-criterion RMSE vs n by kernel (m=%d, reps=%d)"
        m_default reps;
    xlabel = "n";
    ylabel = "avg RMSE";
    series;
  }

let regime_study ?(reps = 10) ?(seed = 22) ?(total = 400) () =
  let fractions = [ 0.1; 0.25; 0.5; 0.75; 0.9 ] in
  let lambdas = Figures.default_lambdas in
  let labels = List.map (fun l -> Printf.sprintf "lambda=%g" l) lambdas in
  let measure ~x rng =
    let m = int_of_float (x *. float_of_int total) in
    let n = total - m in
    let samples =
      Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 total
    in
    let h = Kernel.Bandwidth.paper_rate ~d:5 n in
    let problem, truth =
      build_problem ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:h samples ~n
    in
    List.map
      (fun lambda ->
        Stats.Metrics.rmse truth (Figures.predict_adaptive ~lambda problem))
      lambdas
  in
  let series = Sweep.grid ~seed ~reps ~xs:fractions ~labels measure in
  {
    Sweep.title =
      Printf.sprintf
        "Ablation: RMSE vs unlabeled fraction m/(n+m) at n+m=%d (reps=%d)" total
        reps;
    xlabel = "m/(n+m)";
    ylabel = "avg RMSE";
    series;
  }

let cv_study ?(reps = 10) ?(seed = 23) ?(ns = [ 30; 60; 100; 200 ]) () =
  let labels = [ "hard (lambda=0)"; "cv-tuned soft"; "lambda=5" ] in
  let measure ~x rng =
    let n = int_of_float x in
    let samples =
      Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m_default)
    in
    let h = Kernel.Bandwidth.paper_rate ~d:5 n in
    let problem, truth =
      build_problem ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:h samples ~n
    in
    let hard = Stats.Metrics.rmse truth (Figures.predict_adaptive ~lambda:0. problem) in
    let picked = Gssl.Cross_validation.select ~rng problem in
    let tuned =
      Stats.Metrics.rmse truth
        (Figures.predict_adaptive ~lambda:picked.Gssl.Cross_validation.best_lambda
           problem)
    in
    let fixed5 = Stats.Metrics.rmse truth (Figures.predict_adaptive ~lambda:5. problem) in
    [ hard; tuned; fixed5 ]
  in
  let series =
    Sweep.grid ~seed ~reps ~xs:(List.map float_of_int ns) ~labels measure
  in
  {
    Sweep.title =
      Printf.sprintf
        "Ablation: hard vs CV-tuned soft vs fixed lambda=5 (m=%d, reps=%d)"
        m_default reps;
    xlabel = "n";
    ylabel = "avg RMSE";
    series;
  }

let nystrom_study ?(seed = 24) ?(n = 400) ?(landmark_counts = [ 10; 20; 40; 80; 160 ]) () =
  let rng = Prng.Rng.create seed in
  let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 n in
  let points = Array.map (fun s -> s.Dataset.Synthetic.x) samples in
  let h = Kernel.Bandwidth.paper_rate ~d:5 n in
  let exact = Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:h points in
  let exact_degrees = Linalg.Mat.row_sums exact in
  let matrix_err = ref [] and degree_err = ref [] in
  List.iter
    (fun l ->
      let approx =
        Kernel.Nystrom.fit ~rng ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:h
          ~landmarks:l points
      in
      matrix_err := Kernel.Nystrom.approximation_error approx exact :: !matrix_err;
      let d = Kernel.Nystrom.approx_degrees approx in
      degree_err :=
        (Vec.norm2 (Vec.sub d exact_degrees) /. Vec.norm2 exact_degrees)
        :: !degree_err)
    landmark_counts;
  let xs = Array.of_list (List.map float_of_int landmark_counts) in
  let to_series label values =
    {
      Sweep.label;
      xs = Array.copy xs;
      means = Array.of_list (List.rev values);
      stderrs = Array.make (Array.length xs) 0.;
    }
  in
  {
    Sweep.title = Printf.sprintf "Ablation: Nystrom approximation quality (n=%d)" n;
    xlabel = "landmarks";
    ylabel = "relative error";
    series =
      [ to_series "||W - W~||_F / ||W||_F" !matrix_err;
        to_series "degree error" !degree_err ];
  }

let active_study ?(reps = 5) ?(seed = 25) ?(budgets = [ 0; 10; 25; 50; 100 ]) () =
  let n0 = 10 and pool = 150 in
  let strategies =
    [
      ("uncertainty", fun _rng -> Gssl.Active.Uncertainty);
      ("density-weighted", fun _rng -> Gssl.Active.Density_weighted);
      ("random", fun rng -> Gssl.Active.Random rng);
    ]
  in
  let labels = List.map fst strategies in
  let measure ~x rng =
    let budget = int_of_float x in
    let samples =
      Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n0 + pool)
    in
    let h = Kernel.Bandwidth.paper_rate ~d:5 (n0 + (pool / 2)) in
    let problem, _ =
      build_problem ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:h samples ~n:n0
    in
    let oracle vertex = samples.(vertex).Dataset.Synthetic.y in
    List.map
      (fun (_, make_strategy) ->
        let solver = Gssl.Incremental.create problem in
        let strategy = make_strategy (Prng.Rng.split rng) in
        ignore (Gssl.Active.run strategy ~oracle ~budget solver);
        let predictions = Gssl.Incremental.predict solver in
        let truth =
          Array.map (fun (v, _) -> samples.(v).Dataset.Synthetic.q) predictions
        in
        Stats.Metrics.rmse truth (Array.map snd predictions))
      strategies
  in
  let series =
    Sweep.grid ~seed ~reps ~xs:(List.map float_of_int budgets) ~labels measure
  in
  {
    Sweep.title =
      Printf.sprintf
        "Ablation: active label acquisition, RMSE on remaining pool (n0=%d, pool=%d, reps=%d)"
        n0 pool reps;
    xlabel = "queries";
    ylabel = "avg RMSE";
    series;
  }
