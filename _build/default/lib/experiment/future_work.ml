module Vec = Linalg.Vec
module Mat = Linalg.Mat

let clamp01 = Array.map (fun v -> Stdlib.min 1. (Stdlib.max 0. v))

let safe_auc ~truth ~scores =
  match Stats.Roc.auc ~truth ~scores with
  | v -> v
  | exception Invalid_argument _ -> 0.5 (* single-class test set *)

(* ------------------------------------------------------------------ *)
(* indicators on the COIL protocol                                      *)
(* ------------------------------------------------------------------ *)

let indicator_study ?(reps = 3) ?(seed = 61) ?(dataset_size = 400)
    ?(lambdas = Figures.coil_lambdas) () =
  let master = Prng.Rng.create seed in
  let data = Dataset.Coil.generate (Prng.Rng.substream master 0) in
  let keep =
    Prng.Rng.sample_without_replacement (Prng.Rng.substream master 1)
      (Stdlib.min dataset_size 1500) 1500
  in
  let points = Array.map (fun i -> (Dataset.Coil.points data).(i)) keep in
  let labels = Array.map (fun i -> (Dataset.Coil.labels data).(i)) keep in
  let n_total = Array.length points in
  let d2 = Kernel.Pairwise.sq_distance_matrix points in
  let bandwidth = sqrt (Stats.Descriptive.median_of_pairwise_sq_distances points) in
  let w =
    Kernel.Similarity.dense_of_sq_distances ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth d2
  in
  let n_lambda = List.length lambdas in
  let metric_accs = Array.init 3 (fun _ -> Array.init n_lambda (fun _ -> Stats.Running.create ())) in
  for rep = 0 to reps - 1 do
    let rng = Prng.Rng.substream master (100 + rep) in
    let folds = Dataset.Splits.k_folds rng ~n:n_total ~k:5 in
    Array.iter
      (fun fold ->
        let train = fold.Dataset.Splits.train and test = fold.Dataset.Splits.test in
        let truth = Array.map (fun i -> labels.(i)) test in
        if Array.exists Fun.id truth && Array.exists not truth then begin
          let perm = Array.append train test in
          let wp = Mat.init n_total n_total (fun i j -> Mat.get w perm.(i) perm.(j)) in
          let y = Array.map (fun i -> if labels.(i) then 1. else 0.) train in
          let problem =
            Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_dense wp) ~labels:y
          in
          List.iteri
            (fun li lambda ->
              let scores = Figures.predict_adaptive ~lambda problem in
              let c = Stats.Metrics.confusion ~truth scores in
              Stats.Running.add metric_accs.(0).(li) (safe_auc ~truth ~scores);
              Stats.Running.add metric_accs.(1).(li) (Stats.Metrics.accuracy c);
              Stats.Running.add metric_accs.(2).(li) (Stats.Metrics.mcc c))
            lambdas
        end)
      folds
  done;
  let make_figure idx name =
    let accs = metric_accs.(idx) in
    {
      Sweep.title =
        Printf.sprintf "Future work: avg %s vs lambda (COIL-like 80/20, N=%d, reps=%d)"
          name n_total reps;
      xlabel = "lambda";
      ylabel = "avg " ^ name;
      series =
        [
          {
            Sweep.label = name;
            xs = Array.of_list lambdas;
            means = Array.map Stats.Running.mean accs;
            stderrs =
              Array.map
                (fun a ->
                  if Stats.Running.count a >= 2 then Stats.Running.standard_error a
                  else 0.)
                accs;
          };
        ];
    }
  in
  (make_figure 0 "AUC", make_figure 1 "accuracy", make_figure 2 "MCC")

(* ------------------------------------------------------------------ *)
(* AUC consistency on synthetic data                                    *)
(* ------------------------------------------------------------------ *)

let synthetic_setup ~n ~m rng =
  let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m) in
  let h = Kernel.Bandwidth.paper_rate ~d:5 n in
  let problem, q_truth =
    Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
  in
  let y_truth =
    Array.init m (fun a -> samples.(n + a).Dataset.Synthetic.y = 1.)
  in
  (problem, q_truth, y_truth)

let auc_consistency_study ?(reps = 10) ?(seed = 62) ?(ns = [ 50; 150; 400; 1000 ])
    ?(m = 100) () =
  let labels = [ "hard"; "soft(5)"; "oracle q(X)" ] in
  let measure ~x rng =
    let n = int_of_float x in
    let problem, q_truth, y_truth = synthetic_setup ~n ~m rng in
    let hard = Figures.predict_adaptive ~lambda:0. problem in
    let soft = Figures.predict_adaptive ~lambda:5. problem in
    [
      safe_auc ~truth:y_truth ~scores:hard;
      safe_auc ~truth:y_truth ~scores:soft;
      safe_auc ~truth:y_truth ~scores:q_truth;
    ]
  in
  let series =
    Sweep.grid ~seed ~reps ~xs:(List.map float_of_int ns) ~labels measure
  in
  {
    Sweep.title =
      Printf.sprintf
        "Future work: AUC vs n against sampled labels (Model 1, m=%d, reps=%d)" m
        reps;
    xlabel = "n";
    ylabel = "avg AUC";
    series;
  }

(* ------------------------------------------------------------------ *)
(* calibration                                                         *)
(* ------------------------------------------------------------------ *)

let calibration_study ?(reps = 10) ?(seed = 63) ?(ns = [ 50; 150; 400; 1000 ])
    ?(m = 100) () =
  let labels =
    [
      "Brier hard"; "Brier soft(5)"; "resolution hard"; "resolution soft(5)";
    ]
  in
  let measure ~x rng =
    let n = int_of_float x in
    let problem, _, y_truth = synthetic_setup ~n ~m rng in
    (* hard scores obey the maximum principle; soft scores can spill
       slightly outside [0,1], so clamp both uniformly *)
    let hard = clamp01 (Figures.predict_adaptive ~lambda:0. problem) in
    let soft = clamp01 (Figures.predict_adaptive ~lambda:5. problem) in
    let dec_hard = Stats.Calibration.brier_decomposition ~truth:y_truth hard in
    let dec_soft = Stats.Calibration.brier_decomposition ~truth:y_truth soft in
    [
      Stats.Calibration.brier_score ~truth:y_truth hard;
      Stats.Calibration.brier_score ~truth:y_truth soft;
      dec_hard.Stats.Calibration.resolution;
      dec_soft.Stats.Calibration.resolution;
    ]
  in
  let series =
    Sweep.grid ~seed ~reps ~xs:(List.map float_of_int ns) ~labels measure
  in
  {
    Sweep.title =
      Printf.sprintf
        "Future work: Brier score and resolution vs n (Model 1, m=%d, reps=%d) - \
         the collapsed soft forecaster is 'calibrated' but has no resolution" m reps;
    xlabel = "n";
    ylabel = "score";
    series;
  }
