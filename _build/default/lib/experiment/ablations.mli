(** Ablation studies for the design choices recorded in DESIGN.md §5 and
    the paper's future-work directions.

    Each returns a {!Sweep.figure_result} renderable by the same table /
    ASCII / SVG back-ends as the main figures.  All are deterministic per
    seed. *)

val kernel_study :
  ?reps:int -> ?seed:int -> ?ns:int list -> unit -> Sweep.figure_result
(** Hard-criterion RMSE vs n under different kernels (plain RBF — the
    paper's §V choice, truncated RBF — the one satisfying the theory's
    compact-support condition, box, Epanechnikov).  Shape claim: kernel
    choice does not change the consistency behaviour. *)

val regime_study :
  ?reps:int -> ?seed:int -> ?total:int -> unit -> Sweep.figure_result
(** The paper's future-work regime: fix n+m and sweep the unlabeled
    fraction m/(n+m); RMSE per λ.  Shows the error growing as unlabeled
    data dominates while the hard criterion stays uniformly best. *)

val cv_study :
  ?reps:int -> ?seed:int -> ?ns:int list -> unit -> Sweep.figure_result
(** Hard (λ=0) vs cross-validation-tuned soft criterion vs the worst
    fixed λ: RMSE vs n.  The paper's practical message — tuning λ buys
    nothing over λ=0 — as a measurable curve. *)

val nystrom_study :
  ?seed:int -> ?n:int -> ?landmark_counts:int list -> unit -> Sweep.figure_result
(** Relative Frobenius error of the Nyström-approximated similarity
    matrix, and the resulting approximate-degree error, vs the number of
    landmarks. *)

val active_study :
  ?reps:int -> ?seed:int -> ?budgets:int list -> unit -> Sweep.figure_result
(** Active label acquisition: test RMSE after [budget] queries for the
    uncertainty, density-weighted, and random strategies (using the
    incremental solver). *)
