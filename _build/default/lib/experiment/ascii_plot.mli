(** Terminal line plots — a rough visual rendering of each reproduced
    figure, so `repro figN` output can be eyeballed against the paper. *)

val render : ?width:int -> ?height:int -> Sweep.figure_result -> string
(** Plot all series on one grid (each series gets a distinct glyph,
    legend below).  [width]×[height] is the plot area in characters
    (defaults 64×20).  Raises [Invalid_argument] on degenerate
    dimensions; empty figures render as a note. *)
