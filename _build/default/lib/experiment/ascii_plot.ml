let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 64) ?(height = 20) { Sweep.title; xlabel; ylabel; series } =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: area too small";
  let points =
    List.concat_map
      (fun s ->
        Array.to_list (Array.map2 (fun x y -> (x, y)) s.Sweep.xs s.Sweep.means))
      series
  in
  if points = [] then Printf.sprintf "%s\n  (no data)\n" title
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let xmin = List.fold_left Stdlib.min (List.hd xs) xs in
    let xmax = List.fold_left Stdlib.max (List.hd xs) xs in
    let ymin = List.fold_left Stdlib.min (List.hd ys) ys in
    let ymax = List.fold_left Stdlib.max (List.hd ys) ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iteri
          (fun i x ->
            let y = s.Sweep.means.(i) in
            let cx =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              height - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            grid.(cy).(cx) <- glyph)
          s.Sweep.xs)
      series;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 then Printf.sprintf "%10.4g " ymax
          else if row = height - 1 then Printf.sprintf "%10.4g " ymin
          else String.make 11 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_char buf '|';
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s%-10.4g%*s%10.4g  (%s)\n" (String.make 12 ' ') xmin
         (width - 20) "" xmax xlabel);
    Buffer.add_string buf (Printf.sprintf "  y: %s   legend:" ylabel);
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf " %c=%s" glyphs.(si mod Array.length glyphs) s.Sweep.label))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
