(** CSV import/export of figure results.

    Lets reproduced figures be saved as data files (for external plotting
    or archival diffing) and loaded back — round-trip tested. *)

val to_csv : Sweep.figure_result -> string
(** Columns: [x], then [<label> mean] and [<label> stderr] per series;
    first row is the header, a leading comment row ([# title|xlabel|ylabel])
    carries the metadata. *)

val of_csv : string -> Sweep.figure_result
(** Inverse of {!to_csv}.  Raises [Failure] on malformed input. *)

val write_file : string -> Sweep.figure_result -> unit
val read_file : string -> Sweep.figure_result
