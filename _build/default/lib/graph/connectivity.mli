(** Connectivity of weighted graphs.

    Proposition II.2 assumes [W] represents a connected graph; the soft
    solver warns (and the tests check) using these utilities.  An edge
    exists when its weight exceeds [threshold] (default 0: any positive
    weight connects). *)

val components : ?threshold:float -> Weighted_graph.t -> int array
(** Component label per vertex, labels [0 … c−1] in order of first
    appearance. *)

val count_components : ?threshold:float -> Weighted_graph.t -> int
val is_connected : ?threshold:float -> Weighted_graph.t -> bool

val bfs_distances : ?threshold:float -> Weighted_graph.t -> int -> int array
(** Hop distances from a source; [-1] for unreachable vertices.  Raises
    [Invalid_argument] on a bad source. *)
