(** Spectral properties of graph Laplacians.

    Used to sanity-check graphs (algebraic connectivity > 0 iff connected)
    and in the extended analysis examples. *)

val spectrum : ?kind:Laplacian.kind -> Weighted_graph.t -> Linalg.Vec.t
(** All Laplacian eigenvalues, ascending (dense Jacobi — O(n³), intended
    for graphs up to a few hundred vertices). *)

val fiedler : Weighted_graph.t -> float * Linalg.Vec.t
(** Algebraic connectivity (second-smallest eigenvalue of the
    unnormalized Laplacian) and its eigenvector.  Raises
    [Invalid_argument] on graphs with fewer than 2 vertices. *)

val spectral_gap : Weighted_graph.t -> float
(** [lambda_2 − lambda_1] of the unnormalized Laplacian (λ₁ ≈ 0). *)
