(** Graph Laplacians.

    The soft criterion's penalty is [fᵀ L f] with the *unnormalized*
    Laplacian [L = D − W] (Eq. (3)); the normalized variants are provided
    for completeness and the spectral utilities. *)

type kind =
  | Unnormalized          (** L = D − W *)
  | Symmetric_normalized  (** L_sym = I − D^{−1/2} W D^{−1/2} *)
  | Random_walk           (** L_rw = I − D^{−1} W *)

val dense : ?kind:kind -> Weighted_graph.t -> Linalg.Mat.t
(** Default [Unnormalized].  The normalized kinds raise
    [Invalid_argument] when some vertex has zero degree. *)

val sparse : ?kind:kind -> Weighted_graph.t -> Sparse.Csr.t
(** Same, in CSR form (built from the graph's sparse storage when
    available, else from the dense one). *)

val quadratic_energy : Weighted_graph.t -> Linalg.Vec.t -> float
(** [Σ_ij w_ij (f_i − f_j)²] — the paper's smoothness functional,
    computed edgewise (equals [2 fᵀLf]).  Raises [Invalid_argument] on
    length mismatch. *)

val operator : lambda:float -> n_labeled:int -> Weighted_graph.t -> Sparse.Linop.t
(** The matrix-free soft-criterion operator [V + λL] where [V] projects on
    the first [n_labeled] coordinates (Eq. (3)); avoids materialising the
    (n+m)² matrix.  Raises [Invalid_argument] when [lambda < 0] or
    [n_labeled] out of range. *)
