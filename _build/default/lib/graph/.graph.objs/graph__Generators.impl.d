lib/graph/generators.ml: Array Linalg List Prng Weighted_graph
