lib/graph/spectral_clustering.mli: Linalg Prng Weighted_graph
