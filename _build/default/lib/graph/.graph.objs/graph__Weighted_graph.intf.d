lib/graph/weighted_graph.mli: Linalg Sparse
