lib/graph/generators.mli: Prng Weighted_graph
