lib/graph/spectral.mli: Laplacian Linalg Weighted_graph
