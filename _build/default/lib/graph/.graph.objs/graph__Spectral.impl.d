lib/graph/spectral.ml: Array Laplacian Linalg Weighted_graph
