lib/graph/connectivity.ml: Array List Queue Stdlib Weighted_graph
