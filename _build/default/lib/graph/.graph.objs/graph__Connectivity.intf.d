lib/graph/connectivity.mli: Weighted_graph
