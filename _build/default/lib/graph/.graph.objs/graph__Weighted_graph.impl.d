lib/graph/weighted_graph.ml: Array Linalg Sparse
