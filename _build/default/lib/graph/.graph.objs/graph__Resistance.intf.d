lib/graph/resistance.mli: Weighted_graph
