lib/graph/spectral_clustering.ml: Array Laplacian Linalg Sparse Stats Stdlib Weighted_graph
