lib/graph/laplacian.ml: Array Linalg Sparse Weighted_graph
