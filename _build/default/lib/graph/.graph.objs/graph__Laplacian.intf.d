lib/graph/laplacian.mli: Linalg Sparse Weighted_graph
