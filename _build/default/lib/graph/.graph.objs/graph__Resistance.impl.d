lib/graph/resistance.ml: Array Connectivity Laplacian Linalg Stdlib Weighted_graph
