module Vec = Linalg.Vec
module Mat = Linalg.Mat

(* k smallest eigenvectors of L_sym, as columns *)
let small_eigenvectors ~via_lanczos ~k g =
  let n = Weighted_graph.order g in
  if k < 1 || k > n then
    invalid_arg "Spectral_clustering: k outside [1, order]";
  if via_lanczos then begin
    let l_sym = Laplacian.sparse ~kind:Laplacian.Symmetric_normalized g in
    (* largest eigenpairs of cI − L_sym = smallest of L_sym; L_sym's
       spectrum lies in [0, 2], so c = 2 suffices *)
    let c = 2. in
    let op =
      Sparse.Linop.of_fun ~dim:n
        ~diag:(fun () ->
          Vec.add_scalar c (Vec.neg (Sparse.Csr.diagonal l_sym)))
        (fun x ->
          let lx = Sparse.Csr.mv l_sym x in
          Vec.sub (Vec.scale c x) lx)
    in
    (* a few extra Krylov directions sharpen the extreme Ritz pairs *)
    let steps = Stdlib.min n (k + Stdlib.max 10 (2 * k)) in
    let pairs = Sparse.Lanczos.ritz_pairs (Sparse.Lanczos.run ~k:steps op) in
    (* largest Ritz values of cI − L_sym come last *)
    let total = Array.length pairs in
    Array.init k (fun j -> snd pairs.(total - 1 - j))
  end
  else begin
    let { Linalg.Eigen.vectors; _ } =
      Linalg.Eigen.jacobi (Laplacian.dense ~kind:Laplacian.Symmetric_normalized g)
    in
    Array.init k (fun j -> Mat.col vectors j)
  end

let embedding ?(via_lanczos = false) ~k g =
  let cols = small_eigenvectors ~via_lanczos ~k g in
  let n = Weighted_graph.order g in
  Array.init n (fun i ->
      let row = Array.init k (fun j -> cols.(j).(i)) in
      let norm = Vec.norm2 row in
      if norm > 1e-12 then Vec.scale (1. /. norm) row else row)

let cluster ?via_lanczos ~rng ~k g =
  let rows = embedding ?via_lanczos ~k g in
  (Stats.Kmeans.fit ~rng ~k rows).Stats.Kmeans.assignments
