(* Union-find with path compression over the thresholded edge set. *)

let components ?(threshold = 0.) g =
  let n = Weighted_graph.order g in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  Weighted_graph.iter_edges g (fun i j w -> if w > threshold then union i j);
  (* relabel roots consecutively *)
  let label = Array.make n (-1) in
  let next = ref 0 in
  Array.init n (fun i ->
      let r = find i in
      if label.(r) = -1 then begin
        label.(r) <- !next;
        incr next
      end;
      label.(r))

let count_components ?threshold g =
  let c = components ?threshold g in
  1 + Array.fold_left Stdlib.max (-1) c

let is_connected ?threshold g = count_components ?threshold g <= 1

let bfs_distances ?(threshold = 0.) g source =
  let n = Weighted_graph.order g in
  if source < 0 || source >= n then
    invalid_arg "Connectivity.bfs_distances: bad source";
  (* adjacency from thresholded edges *)
  let adj = Array.make n [] in
  Weighted_graph.iter_edges g (fun i j w ->
      if w > threshold then begin
        adj.(i) <- j :: adj.(i);
        adj.(j) <- i :: adj.(j)
      end);
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      adj.(u)
  done;
  dist
