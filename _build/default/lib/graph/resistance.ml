module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = { pinv : Mat.t; volume : float; order : int }

let make g =
  let n = Weighted_graph.order g in
  if n < 2 then invalid_arg "Resistance.make: need at least 2 vertices";
  if not (Connectivity.is_connected g) then
    invalid_arg "Resistance.make: graph is disconnected";
  let { Linalg.Eigen.values; vectors } =
    Linalg.Eigen.jacobi (Laplacian.dense g)
  in
  (* a connected graph has exactly one zero eigenvalue: drop precisely
     that mode.  If the algebraic connectivity is at numerical-noise
     level the pseudoinverse (and hence every resistance) would be
     garbage, so refuse such graphs instead of silently truncating. *)
  let scale = Stdlib.max 1. values.(n - 1) in
  if values.(1) <= 1e-12 *. scale then
    invalid_arg
      "Resistance.make: graph is numerically disconnected (algebraic \
       connectivity at noise level)";
  let pinv = Mat.zeros n n in
  for k = 1 to n - 1 do
    begin
      let v = Mat.col vectors k in
      let scale = 1. /. values.(k) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          (* group v_i·v_j first so the update is bitwise symmetric in
             (i, j) — resistance queries then satisfy R(u,v) = R(v,u)
             exactly *)
          Mat.set pinv i j (Mat.get pinv i j +. (scale *. (v.(i) *. v.(j))))
        done
      done
    end
  done;
  { pinv; volume = Weighted_graph.total_weight g; order = n }

let check_vertex t v =
  if v < 0 || v >= t.order then invalid_arg "Resistance: vertex out of range"

let effective_resistance t u v =
  check_vertex t u;
  check_vertex t v;
  Mat.get t.pinv u u +. Mat.get t.pinv v v -. (2. *. Mat.get t.pinv u v)

let commute_time t u v = t.volume *. effective_resistance t u v

let total_resistance t = float_of_int t.order *. Mat.trace t.pinv
