let spectrum ?kind g = Linalg.Eigen.eigenvalues (Laplacian.dense ?kind g)

let fiedler g =
  if Weighted_graph.order g < 2 then
    invalid_arg "Spectral.fiedler: need at least 2 vertices";
  let { Linalg.Eigen.values; vectors } =
    Linalg.Eigen.jacobi (Laplacian.dense g)
  in
  (values.(1), Linalg.Mat.col vectors 1)

let spectral_gap g =
  let values = spectrum g in
  values.(1) -. values.(0)
