(** Standard random and deterministic graph generators.

    Used by the test suite (known spectra, known connectivity), the
    benchmarks, and the cluster-assumption demonstrations (the stochastic
    block model is the graph-world version of the paper's cluster
    assumption). *)

val complete : ?weight:float -> int -> Weighted_graph.t
(** Complete graph on [n] vertices, all off-diagonal weights [weight]
    (default 1), zero diagonal.  Raises [Invalid_argument] on [n < 1]. *)

val path : int -> Weighted_graph.t
(** Path 0—1—…—(n−1) with unit weights. *)

val cycle : int -> Weighted_graph.t
(** Cycle on [n ≥ 3] vertices. *)

val star : int -> Weighted_graph.t
(** Vertex 0 connected to all others ([n ≥ 2]). *)

val grid : int -> int -> Weighted_graph.t
(** [rows]×[cols] 4-neighbour lattice, row-major vertex numbering. *)

val erdos_renyi : Prng.Rng.t -> n:int -> p:float -> Weighted_graph.t
(** Each pair independently joined with probability [p] (unit weight).
    Raises [Invalid_argument] unless [0 ≤ p ≤ 1]. *)

val stochastic_block :
  Prng.Rng.t ->
  sizes:int array ->
  p_in:float ->
  p_out:float ->
  Weighted_graph.t * int array
(** Stochastic block model: within-block edges with probability [p_in],
    cross-block with [p_out]; returns the graph and the block label per
    vertex.  Raises [Invalid_argument] on bad probabilities or empty
    blocks. *)
