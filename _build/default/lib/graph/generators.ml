module Mat = Linalg.Mat

let symmetric_of_edges n edges =
  let m = Mat.zeros n n in
  List.iter
    (fun (i, j, w) ->
      Mat.set m i j w;
      Mat.set m j i w)
    edges;
  Weighted_graph.of_dense m

let complete ?(weight = 1.) n =
  if n < 1 then invalid_arg "Generators.complete: need n >= 1";
  if weight < 0. then invalid_arg "Generators.complete: negative weight";
  Weighted_graph.of_dense
    (Mat.init n n (fun i j -> if i = j then 0. else weight))

let path n =
  if n < 1 then invalid_arg "Generators.path: need n >= 1";
  symmetric_of_edges n (List.init (n - 1) (fun i -> (i, i + 1, 1.)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  symmetric_of_edges n
    ((n - 1, 0, 1.) :: List.init (n - 1) (fun i -> (i, i + 1, 1.)))

let star n =
  if n < 2 then invalid_arg "Generators.star: need n >= 2";
  symmetric_of_edges n (List.init (n - 1) (fun i -> (0, i + 1, 1.)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid: empty grid";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1), 1.) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c, 1.) :: !edges
    done
  done;
  symmetric_of_edges (rows * cols) !edges

let erdos_renyi rng ~n ~p =
  if n < 1 then invalid_arg "Generators.erdos_renyi: need n >= 1";
  if p < 0. || p > 1. then invalid_arg "Generators.erdos_renyi: p outside [0,1]";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.Rng.bernoulli rng p then edges := (i, j, 1.) :: !edges
    done
  done;
  symmetric_of_edges n !edges

let stochastic_block rng ~sizes ~p_in ~p_out =
  if Array.length sizes = 0 then invalid_arg "Generators.stochastic_block: no blocks";
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Generators.stochastic_block: empty block")
    sizes;
  if p_in < 0. || p_in > 1. || p_out < 0. || p_out > 1. then
    invalid_arg "Generators.stochastic_block: probabilities outside [0,1]";
  let n = Array.fold_left ( + ) 0 sizes in
  let block = Array.make n 0 in
  let pos = ref 0 in
  Array.iteri
    (fun b s ->
      for _ = 1 to s do
        block.(!pos) <- b;
        incr pos
      done)
    sizes;
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = if block.(i) = block.(j) then p_in else p_out in
      if Prng.Rng.bernoulli rng p then edges := (i, j, 1.) :: !edges
    done
  done;
  (symmetric_of_edges n !edges, block)
