(** Spectral clustering (Ng–Jordan–Weiss style).

    Embeds vertices into the eigenspace of the [k] smallest eigenvectors
    of the symmetric normalized Laplacian (rows normalised to unit
    length), then k-means in the embedding.  The unsupervised counterpart
    of the paper's semi-supervised criteria — it exploits the same
    cluster structure using *zero* labels, and the examples compare the
    two regimes. *)

val embedding : ?via_lanczos:bool -> k:int -> Weighted_graph.t -> Linalg.Vec.t array
(** Per-vertex embedding rows (length [k]).  [via_lanczos] (default
    false) computes the eigenvectors with {!Sparse.Lanczos} on
    [cI − L_sym] instead of a dense Jacobi — the path for large sparse
    graphs.  Rows of zero norm (isolated in eigenspace) are left
    unnormalised.  Raises [Invalid_argument] when [k] is outside
    [1, order], or some vertex has zero degree. *)

val cluster :
  ?via_lanczos:bool ->
  rng:Prng.Rng.t ->
  k:int ->
  Weighted_graph.t ->
  int array
(** Cluster labels in [0, k) per vertex. *)
