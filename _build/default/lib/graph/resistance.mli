(** Effective resistance (resistance distance) on weighted graphs.

    Viewing edge weights as electrical conductances, the effective
    resistance [R(u,v)] is a metric tied directly to the random-walk
    picture behind the hard criterion: the commute time between [u] and
    [v] is [vol(G)·R(u,v)].  Computed through the Moore–Penrose
    pseudoinverse of the Laplacian (dense eigendecomposition — intended
    for graphs up to a few hundred vertices). *)

type t
(** A precomputed pseudoinverse, reusable across queries. *)

val make : Weighted_graph.t -> t
(** Raises [Invalid_argument] on a disconnected graph (resistance is
    infinite across components) or a graph with fewer than 2 vertices. *)

val effective_resistance : t -> int -> int -> float
(** [R(u,v) = L⁺_uu + L⁺_vv − 2L⁺_uv]; zero iff [u = v].  Raises
    [Invalid_argument] on out-of-range vertices. *)

val commute_time : t -> int -> int -> float
(** Expected round-trip steps of the random walk: [vol(G)·R(u,v)] where
    [vol(G) = Σ_i d_i]. *)

val total_resistance : t -> float
(** The Kirchhoff index [Σ_{u<v} R(u,v) = n·tr(L⁺)]. *)
