(** Similarity-matrix (weighted-graph) construction.

    [W = [w_ij]] with [w_ij = K((X_i − X_j)/h)] is the object the paper
    calls the similarity (kernel) matrix.  Self-similarities [w_ii] are
    K(0) — the paper's RBF gives [w_ii = 1]; they cancel in the Laplacian
    but matter for [D₂₂], so they are kept.

    Dense construction is O(n²); [knn] and [epsilon] produce sparse
    (symmetrised) graphs for the ablation benches. *)

val dense :
  kernel:Kernel_fn.t -> bandwidth:float -> Linalg.Vec.t array -> Linalg.Mat.t
(** Full symmetric similarity matrix.  Raises [Invalid_argument] on empty
    or ragged input, or non-positive bandwidth. *)

val dense_of_sq_distances :
  kernel:Kernel_fn.t -> bandwidth:float -> Linalg.Mat.t -> Linalg.Mat.t
(** Apply the kernel entrywise to a precomputed squared-distance matrix —
    used when several bandwidths are swept over one dataset. *)

val knn :
  kernel:Kernel_fn.t ->
  bandwidth:float ->
  k:int ->
  Linalg.Vec.t array ->
  Sparse.Csr.t
(** Mutual-or symmetrised kNN graph: [w_ij] is kept when [j] is among the
    [k] nearest of [i] *or* vice versa; the matrix is symmetric.  Diagonal
    entries are kept (self-similarity).  Raises [Invalid_argument] if
    [k <= 0] or [k >= n]. *)

val epsilon :
  kernel:Kernel_fn.t ->
  bandwidth:float ->
  radius:float ->
  Linalg.Vec.t array ->
  Sparse.Csr.t
(** ε-neighbourhood graph: keep pairs with [‖x_i − x_j‖ ≤ radius].
    Raises [Invalid_argument] if [radius < 0]. *)
