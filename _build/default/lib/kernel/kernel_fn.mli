(** Kernel (similarity) functions.

    A kernel here is a nonnegative function [K : ℝᵈ → ℝ] evaluated at
    [(x − y)/h]; the similarity between inputs is [w(x,y) = K((x−y)/h)].
    Theorem II.1 requires the Devroye–Wagner conditions:

    (i)   K bounded by some k* < ∞;
    (ii)  K has compact support;
    (iii) K ≥ β·1_B for a closed ball B of radius δ > 0 around the origin.

    The plain Gaussian RBF — which the paper itself uses in Section V —
    violates (ii); [Truncated_rbf] is the compactly-supported variant that
    satisfies all three.  All built-in kernels are radial, so they are
    represented by their profile [k(r)] with [K(u) = k(‖u‖)]. *)

type t =
  | Rbf                       (** exp(−r²); the paper's §V choice (support ℝᵈ) *)
  | Truncated_rbf of float    (** exp(−r²) for r ≤ c, else 0 — satisfies (i)–(iii) *)
  | Box                       (** 1 for r ≤ 1, else 0 *)
  | Epanechnikov              (** (1 − r²)₊ *)
  | Triangular                (** (1 − r)₊ *)
  | Tricube                   (** (1 − r³)₊³ *)

val profile : t -> float -> float
(** [profile k r] evaluates the radial profile at [r ≥ 0].  Raises
    [Invalid_argument] on negative [r]. *)

val eval : t -> bandwidth:float -> Linalg.Vec.t -> Linalg.Vec.t -> float
(** [eval k ~bandwidth x y] = profile at [‖x − y‖ / bandwidth].  Raises
    [Invalid_argument] if [bandwidth <= 0] or dimensions mismatch. *)

val eval_sq_dist : t -> bandwidth:float -> float -> float
(** Same but from a precomputed squared distance — lets the similarity
    builder avoid recomputing norms. *)

val upper_bound : t -> float
(** The constant k* of condition (i). *)

val support_radius : t -> float option
(** [Some c] when K vanishes outside radius [c] (condition (ii));
    [None] for the plain RBF. *)

val lower_bound_on_ball : t -> float * float
(** [(beta, delta)] witnessing condition (iii): [K ≥ beta] on the ball of
    radius [delta]. *)

val satisfies_devroye_wagner : t -> bool
(** True when conditions (i)–(iii) all hold. *)

val name : t -> string
