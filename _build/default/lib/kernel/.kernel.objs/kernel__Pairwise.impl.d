lib/kernel/pairwise.ml: Array Linalg
