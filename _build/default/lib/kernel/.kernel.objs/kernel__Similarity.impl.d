lib/kernel/similarity.ml: Array Kernel_fn Linalg Pairwise Sparse
