lib/kernel/pairwise.mli: Linalg
