lib/kernel/kernel_fn.ml: Linalg Option Printf Stdlib
