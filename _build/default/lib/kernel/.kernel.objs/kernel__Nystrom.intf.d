lib/kernel/nystrom.mli: Kernel_fn Linalg Prng
