lib/kernel/nystrom.ml: Array Kernel_fn Linalg Prng Stdlib
