lib/kernel/bandwidth.ml: Array List Stats
