lib/kernel/kernel_fn.mli: Linalg
