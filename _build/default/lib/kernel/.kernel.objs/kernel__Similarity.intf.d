lib/kernel/similarity.mli: Kernel_fn Linalg Sparse
