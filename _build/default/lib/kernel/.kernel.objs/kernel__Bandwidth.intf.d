lib/kernel/bandwidth.mli: Linalg
