type t =
  | Rbf
  | Truncated_rbf of float
  | Box
  | Epanechnikov
  | Triangular
  | Tricube

let profile k r =
  if r < 0. then invalid_arg "Kernel_fn.profile: negative radius";
  match k with
  | Rbf -> exp (-.(r *. r))
  | Truncated_rbf c -> if r <= c then exp (-.(r *. r)) else 0.
  | Box -> if r <= 1. then 1. else 0.
  | Epanechnikov ->
      let v = 1. -. (r *. r) in
      if v > 0. then v else 0.
  | Triangular ->
      let v = 1. -. r in
      if v > 0. then v else 0.
  | Tricube ->
      let v = 1. -. (r *. r *. r) in
      if v > 0. then v *. v *. v else 0.

let eval_sq_dist k ~bandwidth d2 =
  if bandwidth <= 0. then invalid_arg "Kernel_fn.eval: bandwidth must be positive";
  (* specialise the common RBF cases to avoid the sqrt *)
  let h2 = bandwidth *. bandwidth in
  match k with
  | Rbf -> exp (-.(d2 /. h2))
  | Truncated_rbf c -> if d2 <= c *. c *. h2 then exp (-.(d2 /. h2)) else 0.
  | _ -> profile k (sqrt d2 /. bandwidth)

let eval k ~bandwidth x y =
  eval_sq_dist k ~bandwidth (Linalg.Vec.dist2_sq x y)

let upper_bound = function
  | Rbf | Truncated_rbf _ | Box | Epanechnikov | Triangular | Tricube -> 1.

let support_radius = function
  | Rbf -> None
  | Truncated_rbf c -> Some c
  | Box -> Some 1.
  | Epanechnikov | Triangular -> Some 1.
  | Tricube -> Some 1.

let lower_bound_on_ball = function
  | Rbf -> (exp (-0.25), 0.5)
  | Truncated_rbf c ->
      let delta = Stdlib.min 0.5 c in
      (exp (-.(delta *. delta)), delta)
  | Box -> (1., 1.)
  | Epanechnikov -> (0.75, 0.5)
  | Triangular -> (0.5, 0.5)
  | Tricube -> (0.669921875, 0.5) (* (1 - 1/8)^3 at r = 1/2 *)

let satisfies_devroye_wagner k =
  let bounded = upper_bound k < infinity in
  let compact = Option.is_some (support_radius k) in
  let beta, delta = lower_bound_on_ball k in
  bounded && compact && beta > 0. && delta > 0.

let name = function
  | Rbf -> "rbf"
  | Truncated_rbf c -> Printf.sprintf "truncated-rbf(%g)" c
  | Box -> "box"
  | Epanechnikov -> "epanechnikov"
  | Triangular -> "triangular"
  | Tricube -> "tricube"
