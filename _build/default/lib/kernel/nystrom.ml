module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = { landmarks : int array; c : Mat.t; w_ll_pinv : Mat.t }

let fit ~rng ~kernel ~bandwidth ~landmarks points =
  let n = Array.length points in
  if landmarks < 1 || landmarks > n then
    invalid_arg "Nystrom.fit: landmarks outside [1, n]";
  let chosen = Prng.Rng.sample_without_replacement rng landmarks n in
  let c =
    Mat.init n landmarks (fun i j ->
        Kernel_fn.eval kernel ~bandwidth points.(i) points.(chosen.(j)))
  in
  let w_ll =
    Mat.init landmarks landmarks (fun i j ->
        Kernel_fn.eval kernel ~bandwidth points.(chosen.(i)) points.(chosen.(j)))
  in
  let w_ll_pinv = Linalg.Svd.pseudo_inverse (Linalg.Svd.decompose w_ll) in
  { landmarks = chosen; c; w_ll_pinv }

let approx_dense { c; w_ll_pinv; _ } = Mat.mm c (Mat.mm w_ll_pinv (Mat.transpose c))

let multiply { c; w_ll_pinv; _ } x =
  Mat.mv c (Mat.mv w_ll_pinv (Mat.tmv c x))

let approx_degrees ({ c; _ } as t) =
  let n = c.Mat.rows in
  multiply t (Vec.ones n)

let approximation_error t exact =
  let diff = Mat.sub exact (approx_dense t) in
  Mat.frobenius_norm diff /. Stdlib.max 1e-300 (Mat.frobenius_norm exact)
