(** Bandwidth-selection rules.

    Theorem II.1 needs [h_n → 0] with [n·h_nᵈ → ∞]; the paper's synthetic
    experiments use [h_n = (log n / n)^(1/5)] (d = 5), and the COIL
    experiment uses the median heuristic [σ² = median ‖x_i − x_j‖²]. *)

type t =
  | Fixed of float                  (** a constant bandwidth *)
  | Paper_rate of int               (** [(log n / n)^(1/d)] for the given dimension [d] *)
  | Rate of { exponent : float }    (** [n^(−exponent)] *)
  | Median_heuristic                (** [sqrt (median of pairwise squared distances)] *)
  | Silverman of int                (** Silverman's rule of thumb in dimension [d] *)

val select : t -> Linalg.Vec.t array -> float
(** [select rule points] computes the bandwidth for the data.
    [Paper_rate]/[Rate]/[Silverman] use only [Array.length points]
    (and per-coordinate spreads for Silverman); [Median_heuristic] uses
    the pairwise distances.  Raises [Invalid_argument] when the rule is
    undefined for the data (empty input, [n < 2] for the data-driven
    rules, non-positive [Fixed] value). *)

val paper_rate : d:int -> int -> float
(** [paper_rate ~d n] = [(log n / n)^(1/d)] — the explicit §V-A rule.
    Raises [Invalid_argument] when [n < 2] (log n must be positive). *)

val satisfies_consistency_conditions : d:int -> (int -> float) -> bool
(** Numerically probe [h_n → 0] and [n·h_nᵈ → ∞] along
    n = 10², 10³, …, 10⁶ for a candidate rule; used in tests and the
    consistency demo. *)
