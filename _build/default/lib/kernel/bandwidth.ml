type t =
  | Fixed of float
  | Paper_rate of int
  | Rate of { exponent : float }
  | Median_heuristic
  | Silverman of int

let paper_rate ~d n =
  if n < 2 then invalid_arg "Bandwidth.paper_rate: need n >= 2";
  if d < 1 then invalid_arg "Bandwidth.paper_rate: need d >= 1";
  let nf = float_of_int n in
  (log nf /. nf) ** (1. /. float_of_int d)

let silverman ~d points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Bandwidth.select: Silverman needs n >= 2";
  (* average per-coordinate std, scaled by the classic factor *)
  let dim = Array.length points.(0) in
  let stds =
    Array.init dim (fun j ->
        Stats.Descriptive.std (Array.map (fun p -> p.(j)) points))
  in
  let sigma = Stats.Descriptive.mean stds in
  let nf = float_of_int n in
  let df = float_of_int d in
  sigma *. ((4. /. (df +. 2.)) ** (1. /. (df +. 4.))) *. (nf ** (-1. /. (df +. 4.)))

let select rule points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Bandwidth.select: empty data";
  match rule with
  | Fixed h ->
      if h <= 0. then invalid_arg "Bandwidth.select: Fixed bandwidth must be positive";
      h
  | Paper_rate d -> paper_rate ~d n
  | Rate { exponent } ->
      if n < 1 then invalid_arg "Bandwidth.select: empty data";
      float_of_int n ** -.exponent
  | Median_heuristic -> sqrt (Stats.Descriptive.median_of_pairwise_sq_distances points)
  | Silverman d -> silverman ~d points

let satisfies_consistency_conditions ~d rule =
  let sizes = [ 100; 1_000; 10_000; 100_000; 1_000_000 ] in
  let hs = List.map rule sizes in
  let decreasing =
    let rec check = function
      | a :: (b :: _ as rest) -> a > b && check rest
      | _ -> true
    in
    check hs
  in
  let nhd_increasing =
    let values =
      List.map2
        (fun n h -> float_of_int n *. (h ** float_of_int d))
        sizes hs
    in
    let rec check = function
      | a :: (b :: _ as rest) -> b > a && check rest
      | _ -> true
    in
    check values
  in
  decreasing && nhd_increasing
