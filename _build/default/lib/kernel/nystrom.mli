(** Nyström low-rank approximation of similarity matrices.

    For large n the full n×n kernel matrix is the bottleneck of
    graph-based SSL; the Nyström method samples l ≪ n landmark points and
    approximates [W ≈ C W_ll⁺ Cᵀ], where [C] is the n×l kernel block
    against the landmarks.  This module produces the factors and a
    matrix-free multiply so the CG-based solvers can run without ever
    materialising W. *)

type t = private {
  landmarks : int array;        (** indices of the sampled points *)
  c : Linalg.Mat.t;             (** n×l kernel block *)
  w_ll_pinv : Linalg.Mat.t;     (** pseudo-inverse of the l×l landmark block *)
}

val fit :
  rng:Prng.Rng.t ->
  kernel:Kernel_fn.t ->
  bandwidth:float ->
  landmarks:int ->
  Linalg.Vec.t array ->
  t
(** Sample [landmarks] points uniformly without replacement and build the
    factors.  Raises [Invalid_argument] when [landmarks] is outside
    [1, n]. *)

val approx_dense : t -> Linalg.Mat.t
(** Materialise the approximation [C W_ll⁺ Cᵀ] (for testing / small n). *)

val multiply : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [W̃ x] in O(n·l) without materialising the n×n matrix. *)

val approx_degrees : t -> Linalg.Vec.t
(** Row sums of the approximation (degrees of the approximate graph),
    in O(n·l). *)

val approximation_error : t -> Linalg.Mat.t -> float
(** Relative Frobenius error [‖W − W̃‖_F / ‖W‖_F] against an exact
    matrix (testing aid). *)
