(* Binary image classification on the simulated COIL benchmark: the
   Section V-B experiment at a single split, with per-lambda AUC,
   accuracy, F1 and MCC.

   Run with:  dune exec examples/image_classification.exe *)

module Mat = Linalg.Mat

let () =
  let rng = Prng.Rng.create 7 in
  let data = Dataset.Coil.generate rng in
  (* keep a 400-image subsample so the example runs in ~1s *)
  let keep = Prng.Rng.sample_without_replacement rng 400 1500 in
  let points = Array.map (fun i -> (Dataset.Coil.points data).(i)) keep in
  let labels = Array.map (fun i -> (Dataset.Coil.labels data).(i)) keep in
  let n_total = Array.length points in

  (* paper protocol: RBF kernel, sigma^2 = median of squared pairwise
     distances *)
  let d2 = Kernel.Pairwise.sq_distance_matrix points in
  let bandwidth =
    sqrt (Stats.Descriptive.median_of_pairwise_sq_distances points)
  in
  let w =
    Kernel.Similarity.dense_of_sq_distances ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth d2
  in
  Printf.printf "Simulated COIL: %d images (16x16), bandwidth sigma = %.3f\n"
    n_total bandwidth;

  (* one 80/20 split *)
  let split = Dataset.Splits.ratio_split rng ~n:n_total ~labeled_fraction:0.8 in
  let train = split.Dataset.Splits.train and test = split.Dataset.Splits.test in
  let perm = Array.append train test in
  let wp = Mat.init n_total n_total (fun i j -> Mat.get w perm.(i) perm.(j)) in
  let y = Array.map (fun i -> if labels.(i) then 1. else 0.) train in
  let problem =
    Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_dense wp) ~labels:y
  in
  let truth = Array.map (fun i -> labels.(i)) test in
  Printf.printf "train %d / test %d\n\n" (Array.length train) (Array.length test);

  Printf.printf "%-10s  %7s  %9s  %7s  %7s\n" "criterion" "AUC" "accuracy" "F1" "MCC";
  List.iter
    (fun lambda ->
      let scores = Experiment.Figures.predict_adaptive ~lambda problem in
      let auc = Stats.Roc.auc ~truth ~scores in
      let c = Stats.Metrics.confusion ~truth scores in
      Printf.printf "lambda=%-4g  %7.4f  %9.4f  %7.4f  %7.4f\n" lambda auc
        (Stats.Metrics.accuracy c) (Stats.Metrics.f1 c) (Stats.Metrics.mcc c))
    Experiment.Figures.coil_lambdas;

  print_newline ();
  print_string
    "The hard criterion (lambda=0) should top every column - Figure 5's claim.\n\n";

  (* extension 1: class-mass normalization of the harmonic scores (the
     standard companion from the original Zhu et al. paper) *)
  let hard_scores = Experiment.Figures.predict_adaptive ~lambda:0. problem in
  let plain = Stats.Metrics.confusion ~truth hard_scores in
  let cmn_pred = Gssl.Cmn.classify ~labels:y hard_scores in
  let cmn_as_scores = Array.map (fun b -> if b then 1. else 0.) cmn_pred in
  let cmn = Stats.Metrics.confusion ~truth cmn_as_scores in
  Printf.printf "CMN post-processing:  accuracy %.4f -> %.4f\n"
    (Stats.Metrics.accuracy plain) (Stats.Metrics.accuracy cmn);

  (* extension 2: PCA-compress the 256-pixel images to 30 components and
     rerun the hard criterion - the manifold geometry survives *)
  let pca = Stats.Pca.fit ~n_components:30 points in
  let var_kept =
    Linalg.Vec.sum (Stats.Pca.explained_variance_ratio pca)
  in
  let compressed = Stats.Pca.transform_many pca points in
  let d2c = Kernel.Pairwise.sq_distance_matrix compressed in
  let hc = sqrt (Stats.Descriptive.median_of_pairwise_sq_distances compressed) in
  let wc =
    Kernel.Similarity.dense_of_sq_distances ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:hc d2c
  in
  let wcp = Mat.init n_total n_total (fun i j -> Mat.get wc perm.(i) perm.(j)) in
  let problem_pca =
    Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_dense wcp) ~labels:y
  in
  let scores_pca = Experiment.Figures.predict_adaptive ~lambda:0. problem_pca in
  Printf.printf
    "PCA to 30 dims (%.1f%% variance kept): AUC %.4f (raw pixels: %.4f)\n"
    (100. *. var_kept)
    (Stats.Roc.auc ~truth ~scores:scores_pca)
    (Stats.Roc.auc ~truth ~scores:hard_scores)
