(* 1-D kernel regression: graph-based SSL vs Nadaraya-Watson on a noisy
   sine curve.  Theorem II.1 says the hard criterion tracks the NW
   estimator; this example makes that visible, and shows the soft
   criterion flattening towards the global mean as lambda grows.

   Run with:  dune exec examples/regression_curve.exe *)

module Vec = Linalg.Vec

let truth x = sin (2. *. Float.pi *. x)

let () =
  let rng = Prng.Rng.create 2024 in
  let n = 120 and m = 25 in
  (* labeled: noisy observations of sin(2 pi x) on [0,1] *)
  let labeled =
    Array.init n (fun _ ->
        let x = Prng.Rng.float rng in
        let y = truth x +. Prng.Distributions.normal rng ~mean:0. ~std:0.25 in
        ([| x |], y))
  in
  let grid = Vec.linspace 0.02 0.98 m in
  let unlabeled = Array.map (fun x -> [| x |]) grid in
  let h = Kernel.Bandwidth.paper_rate ~d:1 n in
  let problem =
    Gssl.Problem.of_points ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed h) ~labeled ~unlabeled
  in
  let hard = Gssl.Hard.solve problem in
  let nw = Gssl.Nadaraya_watson.of_problem problem in
  let soft_small = Gssl.Soft.solve ~lambda:0.05 problem in
  let soft_large = Gssl.Soft.solve ~lambda:50. problem in
  let q = Array.map truth grid in

  Printf.printf "1-D regression of sin(2 pi x) from %d noisy labels (h=%.3f)\n\n" n h;
  Printf.printf "%6s  %8s  %9s  %9s  %10s  %10s\n" "x" "truth" "hard" "NW"
    "soft(.05)" "soft(50)";
  Array.iteri
    (fun i x ->
      Printf.printf "%6.2f  %8.3f  %9.3f  %9.3f  %10.3f  %10.3f\n" x q.(i)
        hard.(i) nw.(i) soft_small.(i) soft_large.(i))
    grid;

  let rmse pred = Stats.Metrics.rmse q pred in
  Printf.printf "\nRMSE vs truth:  hard %.4f | NW %.4f | soft(0.05) %.4f | soft(50) %.4f\n"
    (rmse hard) (rmse nw) (rmse soft_small) (rmse soft_large);
  Printf.printf "max |hard - NW| = %.4f   (Theorem II.1: these track each other)\n"
    (Vec.norm_inf (Vec.sub hard nw));
  Printf.printf "label mean = %.4f; soft(50) collapses towards it (Prop II.2): max dev %.4f\n"
    (Vec.mean (Array.map snd labeled))
    (Vec.norm_inf
       (Vec.add_scalar (-.Gssl.Soft.lambda_infinity_limit problem) soft_large))
