(* The classic cluster-assumption demonstration: two interleaving
   half-moons, two labels per moon.  Graph-based methods propagate the
   labels along the manifolds and classify nearly perfectly; a purely
   local method (Nadaraya-Watson with the same kernel) cannot.

   Also renders the dataset and the decision as a terminal scatter plot.

   Run with:  dune exec examples/two_moons.exe *)

let () =
  let rng = Prng.Rng.create 2026 in
  let samples = Dataset.Two_moons.generate rng 300 in
  let problem, truth = Dataset.Two_moons.to_problem ~labeled_per_moon:2 samples in
  Printf.printf "Two moons: %d points, %d labeled (2 per moon)\n\n"
    (Gssl.Problem.size problem)
    (Gssl.Problem.n_labeled problem);

  let accuracy scores =
    let pred = Gssl.Estimator.classify scores in
    let hits = ref 0 in
    Array.iteri (fun i p -> if p = truth.(i) then incr hits) pred;
    float_of_int !hits /. float_of_int (Array.length truth)
  in
  let methods =
    [
      ("hard criterion", Experiment.Figures.predict_adaptive ~lambda:0. problem);
      ("soft (lambda=0.1)", Experiment.Figures.predict_adaptive ~lambda:0.1 problem);
      ("soft (lambda=5)", Experiment.Figures.predict_adaptive ~lambda:5. problem);
      ("local-global (Zhou et al.)", Gssl.Local_global.scores problem);
      ("nadaraya-watson", Gssl.Nadaraya_watson.of_problem problem);
    ]
  in
  Printf.printf "%-30s  %s\n" "method" "accuracy";
  List.iter
    (fun (name, scores) -> Printf.printf "%-30s  %8.4f\n" name (accuracy scores))
    methods;

  (* terminal scatter of the hard-criterion decision *)
  let scores = Experiment.Figures.predict_adaptive ~lambda:0. problem in
  let pred = Gssl.Estimator.classify scores in
  let width = 64 and height = 22 in
  let grid = Array.make_matrix height width ' ' in
  let xs = Array.map (fun s -> s.Dataset.Two_moons.x.(0)) samples in
  let ys = Array.map (fun s -> s.Dataset.Two_moons.x.(1)) samples in
  let xmin = Array.fold_left min xs.(0) xs and xmax = Array.fold_left max xs.(0) xs in
  let ymin = Array.fold_left min ys.(0) ys and ymax = Array.fold_left max ys.(0) ys in
  let plot x y ch =
    let cx = int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)) in
    let cy =
      height - 1
      - int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1))
    in
    grid.(cy).(cx) <- ch
  in
  (* unlabeled: o / x by predicted class; labeled: O / X *)
  let unlabeled_pts =
    let moon1 = List.filter (fun s -> s.Dataset.Two_moons.label) (Array.to_list samples) in
    let moon2 = List.filter (fun s -> not s.Dataset.Two_moons.label) (Array.to_list samples) in
    List.map (fun s -> s.Dataset.Two_moons.x)
      (List.concat [ List.filteri (fun i _ -> i >= 2) moon1;
                     List.filteri (fun i _ -> i >= 2) moon2 ])
  in
  List.iteri
    (fun i x -> plot x.(0) x.(1) (if pred.(i) then 'o' else 'x'))
    unlabeled_pts;
  (* overdraw the four labeled points *)
  Array.iteri
    (fun i s ->
      if i < Array.length samples then begin
        let is_first_two moon =
          let count = ref 0 and mine = ref false in
          Array.iteri
            (fun j t ->
              if t.Dataset.Two_moons.label = moon then begin
                if j = i && !count < 2 then mine := true;
                if j <= i then incr count
              end)
            samples;
          !mine
        in
        if is_first_two s.Dataset.Two_moons.label then
          plot s.Dataset.Two_moons.x.(0) s.Dataset.Two_moons.x.(1)
            (if s.Dataset.Two_moons.label then 'O' else 'X')
      end)
    samples;
  print_newline ();
  Array.iter
    (fun row ->
      print_string "  ";
      Array.iter print_char row;
      print_newline ())
    grid;
  print_string
    "\n  o/x = predicted moon (hard criterion), O/X = the four given labels\n"
