(* Empirical verification of the paper's theory:
   - Theorem II.1: the hard criterion converges to the true regression
     function as n grows (with m fixed), through the Nadaraya-Watson link;
   - the proof's "tiny elements" bound on D22^{-1} W22;
   - Proposition II.2: the soft criterion collapses to the label mean as
     lambda grows.

   Run with:  dune exec examples/consistency_demo.exe *)

module Vec = Linalg.Vec

let () =
  print_string "== Theorem II.1: error decay as n grows (Model 1, m = 20) ==\n";
  let fig = Experiment.Figures.consistency_demo ~seed:11 () in
  print_string (Experiment.Table.of_figure fig);
  print_newline ();

  print_string "== proof mechanism: tiny elements and coupling ratios ==\n";
  Printf.printf "%6s  %14s  %16s  %14s\n" "n" "||B||_max" "bound M/(n h^d)"
    "mass ratio";
  let rng = Prng.Rng.create 5 in
  List.iter
    (fun n ->
      let m = 20 in
      let samples =
        Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + m)
      in
      let h = Kernel.Bandwidth.paper_rate ~d:5 n in
      let problem, _ =
        Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
          ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
      in
      let bound =
        Gssl.Theory.tiny_elements_bound ~k_star:1. ~beta:(exp (-0.25)) ~s:0.5
          ~n ~h ~d:5
      in
      Printf.printf "%6d  %14.5f  %16.5f  %14.5f\n" n
        (Gssl.Theory.tiny_elements_max problem)
        bound
        (Gssl.Theory.unlabeled_mass_ratio problem))
    [ 50; 100; 200; 400; 800 ];
  print_newline ();

  print_string "== Proposition II.2: soft criterion collapse as lambda grows ==\n";
  let rng = Prng.Rng.create 6 in
  let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 150 in
  let problem, truth =
    Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed (Kernel.Bandwidth.paper_rate ~d:5 120))
      ~n_labeled:120 samples
  in
  Printf.printf "%10s  %18s  %12s\n" "lambda" "max|f - ybar|" "RMSE vs q";
  List.iter
    (fun lambda ->
      let scores = Gssl.Soft.solve ~lambda problem in
      Printf.printf "%10g  %18.5f  %12.5f\n" lambda
        (Gssl.Theory.soft_collapse_error ~lambda problem)
        (Stats.Metrics.rmse truth scores))
    [ 0.01; 0.1; 1.; 10.; 100.; 1000. ];
  let hard = Gssl.Hard.solve problem in
  Printf.printf "%10s  %18s  %12.5f   <- consistent estimator\n" "hard" "-"
    (Stats.Metrics.rmse truth hard);
  Printf.printf "\n(as lambda grows every prediction approaches ybar = %.4f:\n"
    (Gssl.Soft.lambda_infinity_limit problem);
  print_string " an extremely inaccurate constant prediction - the inconsistency)\n"
