(* End-to-end file workflow: write a partially labeled dataset to CSV,
   read it back, fit the hard criterion, attach predictive uncertainty,
   and export the results — the loop a practitioner would run on their
   own data files.

   Run with:  dune exec examples/csv_workflow.exe *)

let () =
  let rng = Prng.Rng.create 77 in
  (* fabricate a "user dataset": two noisy clusters, half the labels
     withheld *)
  let n_points = 60 in
  let points =
    Array.init n_points (fun i ->
        let cx = if i mod 2 = 0 then 0. else 3. in
        [| cx +. Prng.Distributions.normal rng ~mean:0. ~std:0.5;
           Prng.Distributions.normal rng ~mean:0. ~std:0.5 |])
  in
  let labels =
    Array.init n_points (fun i ->
        if i < 20 then Some (if i mod 2 = 0 then 1. else 0.) else None)
  in
  let path = Filename.temp_file "gssl_data" ".csv" in
  Dataset.Csv.write_file path
    (Dataset.Csv.parse (Dataset.Csv.render_points ~labels points));
  Printf.printf "wrote %s (%d rows, %d labeled)\n" path n_points 20;

  (* --- the part a user would start from: load and fit --- *)
  let data = Dataset.Csv.parse_numeric (In_channel.with_open_bin path In_channel.input_all) in
  let labeled = ref [] and unlabeled = ref [] in
  Array.iteri
    (fun i x ->
      match data.Dataset.Csv.labels.(i) with
      | Some y -> labeled := (x, y) :: !labeled
      | None -> unlabeled := x :: !unlabeled)
    data.Dataset.Csv.features;
  let labeled = Array.of_list (List.rev !labeled) in
  let unlabeled = Array.of_list (List.rev !unlabeled) in
  let problem =
    Gssl.Problem.of_points ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:Kernel.Bandwidth.Median_heuristic ~labeled ~unlabeled
  in
  let scores = Gssl.Hard.solve problem in
  let stds = Gssl.Random_walk.predictive_std problem in
  Printf.printf "fitted hard criterion on %d labeled + %d unlabeled points\n\n"
    (Array.length labeled) (Array.length unlabeled);

  Printf.printf "%28s  %8s  %10s  %6s\n" "point" "score" "+/- std" "class";
  Array.iteri
    (fun a x ->
      if a < 8 then
        Printf.printf "(%8.3f, %8.3f)          %8.3f  %10.3f  %6d\n" x.(0) x.(1)
          scores.(a) stds.(a)
          (if scores.(a) >= 0.5 then 1 else 0))
    unlabeled;
  Printf.printf "   ... (%d more)\n\n" (Array.length unlabeled - 8);

  (* export predictions back to CSV *)
  let out = Filename.temp_file "gssl_pred" ".csv" in
  Dataset.Csv.write_file out
    ([ "x0"; "x1"; "score"; "std" ]
    :: Array.to_list
         (Array.mapi
            (fun a x ->
              [
                string_of_float x.(0); string_of_float x.(1);
                string_of_float scores.(a); string_of_float stds.(a);
              ])
            unlabeled));
  Printf.printf "predictions written to %s\n" out;
  Sys.remove path;
  Sys.remove out
