(* Quickstart: build a small semi-supervised problem from raw points,
   solve it with the hard criterion, and compare against the soft
   criterion.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* two labeled clusters in the plane: class 1 around (0,0), class 0
     around (3,3), plus unlabeled points in between and inside the
     clusters *)
  let labeled =
    [|
      ([| 0.0; 0.2 |], 1.);
      ([| 0.3; 0.0 |], 1.);
      ([| -0.2; 0.1 |], 1.);
      ([| 3.0; 3.1 |], 0.);
      ([| 2.8; 2.9 |], 0.);
      ([| 3.2; 3.0 |], 0.);
    |]
  in
  let unlabeled =
    [|
      [| 0.1; 0.1 |];   (* deep inside class 1 *)
      [| 2.9; 3.0 |];   (* deep inside class 0 *)
      [| 1.2; 1.2 |];   (* leaning towards class 1 *)
      [| 1.8; 1.9 |];   (* leaning towards class 0 *)
    |]
  in
  let problem =
    Gssl.Problem.of_points ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed 1.2) ~labeled ~unlabeled
  in
  Printf.printf "Problem: %d labeled + %d unlabeled points, connected: %b\n\n"
    (Gssl.Problem.n_labeled problem)
    (Gssl.Problem.n_unlabeled problem)
    (Gssl.Problem.is_connected problem);

  let hard = Gssl.Estimator.predict Gssl.Estimator.Hard problem in
  let soft = Gssl.Estimator.predict (Gssl.Estimator.Soft 0.1) problem in
  let classes = Gssl.Estimator.classify hard in

  Printf.printf "%-18s  %-12s  %-12s  %s\n" "point" "hard score" "soft(0.1)" "class";
  Array.iteri
    (fun i x ->
      Printf.printf "(%4.1f, %4.1f)        %10.4f   %10.4f    %d\n" x.(0) x.(1)
        hard.(i) soft.(i)
        (if classes.(i) then 1 else 0))
    unlabeled;

  (* the hard solution is harmonic: each unlabeled score is the weighted
     average of its neighbours' scores *)
  let full = Gssl.Hard.solve_full problem in
  Printf.printf "\nhard solution harmonic: %b\n"
    (Gssl.Hard.is_harmonic problem full);
  Printf.printf "smoothness energy of hard solution: %.4f\n"
    (Gssl.Hard.energy problem full)
