(* Unsupervised vs semi-supervised on the same graphs: spectral
   clustering uses zero labels (and recovers clusters only up to
   renaming); the hard criterion pins the clusters down with a couple of
   labels.  Run on two moons and on a stochastic block model.

   Run with:  dune exec examples/spectral_vs_ssl.exe *)

module Km = Stats.Kmeans

let moons_comparison () =
  let rng = Prng.Rng.create 51 in
  let samples = Dataset.Two_moons.generate ~noise:0.07 rng 240 in
  let points = Array.map (fun s -> s.Dataset.Two_moons.x) samples in
  let truth_int =
    Array.map (fun s -> if s.Dataset.Two_moons.label then 1 else 0) samples
  in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:0.3 points
  in
  let g = Graph.Weighted_graph.of_dense w in
  let unsupervised = Graph.Spectral_clustering.cluster ~rng ~k:2 g in
  let spectral_acc = Km.agreement ~truth:truth_int unsupervised in

  let problem, truth = Dataset.Two_moons.to_problem ~labeled_per_moon:2 samples in
  let pred = Gssl.Estimator.classify (Gssl.Hard.solve problem) in
  let hits = ref 0 in
  Array.iteri (fun i p -> if p = truth.(i) then incr hits) pred;
  let ssl_acc = float_of_int !hits /. float_of_int (Array.length truth) in
  (spectral_acc, ssl_acc)

(* Hard-criterion accuracy on the SBM with [per_block] labeled vertices
   from each block. *)
let sbm_hard_accuracy g blocks ~per_block =
  let n_vertices = Array.length blocks in
  let labeled_a = List.init per_block (fun i -> i) in
  let labeled_b = List.init per_block (fun i -> 30 + i) in
  let labeled = labeled_a @ labeled_b in
  let order =
    Array.append (Array.of_list labeled)
      (Array.of_list
         (List.filter (fun v -> not (List.mem v labeled)) (List.init n_vertices Fun.id)))
  in
  let w = Graph.Weighted_graph.to_dense g in
  let wp =
    Linalg.Mat.init n_vertices n_vertices (fun i j ->
        Linalg.Mat.get w order.(i) order.(j))
  in
  let labels =
    Array.of_list (List.map (fun v -> if blocks.(v) = 1 then 1. else 0.) labeled)
  in
  let problem =
    Gssl.Problem.make ~graph:(Graph.Weighted_graph.of_dense wp) ~labels
  in
  let scores = Gssl.Hard.solve problem in
  let hits = ref 0 in
  Array.iteri
    (fun k s ->
      let v = order.(k + (2 * per_block)) in
      if (if s >= 0.5 then 1 else 0) = blocks.(v) then incr hits)
    scores;
  float_of_int !hits /. float_of_int (Array.length scores)

let sbm_comparison () =
  let rng = Prng.Rng.create 52 in
  let g, blocks =
    Graph.Generators.stochastic_block rng ~sizes:[| 30; 30 |] ~p_in:0.5 ~p_out:0.05
  in
  let unsupervised = Graph.Spectral_clustering.cluster ~rng ~k:2 g in
  let spectral_acc = Km.agreement ~truth:blocks unsupervised in
  ( spectral_acc,
    sbm_hard_accuracy g blocks ~per_block:1,
    sbm_hard_accuracy g blocks ~per_block:5 )

let () =
  print_string "Unsupervised spectral clustering vs semi-supervised hard criterion\n";
  print_string "(spectral accuracy is best-permutation: it cannot name the clusters)\n\n";
  Printf.printf "%-24s  %20s  %16s  %17s\n" "dataset" "spectral (0 lbl)"
    "hard (2 lbl)" "hard (10 lbl)";
  let m_spec, m_ssl = moons_comparison () in
  Printf.printf "%-24s  %20.4f  %16.4f  %17s\n" "two moons (240 pts)" m_spec m_ssl "-";
  let s_spec, s_ssl2, s_ssl10 = sbm_comparison () in
  Printf.printf "%-24s  %20.4f  %16.4f  %17.4f\n" "SBM 30+30, p=0.5/0.05" s_spec
    s_ssl2 s_ssl10;
  print_newline ();
  print_string
    "On the dense SBM a *single* anchor per block is too weak: the harmonic\n\
     solution flattens towards a constant - exactly the uninformative-limit\n\
     phenomenon of Nadler et al. (the paper's reference [17]).  A handful\n\
     of labels per block restores near-perfect recovery, and the paper's\n\
     m = o(n h^d) condition is the same story asymptotically: labels must\n\
     not be overwhelmed by unlabeled mass.\n"
