(* Active semi-supervised learning: start from a handful of labels, query
   an oracle one point at a time with different strategies, and watch the
   error fall.  Uses the O(m^2)-per-step incremental solver (rank-one
   downdates of the hard-criterion system).

   Run with:  dune exec examples/active_learning.exe *)

let () =
  let rng = Prng.Rng.create 31 in
  let n0 = 8 and pool = 200 in
  let samples =
    Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n0 + pool)
  in
  let h = Kernel.Bandwidth.paper_rate ~d:5 (n0 + (pool / 2)) in
  let problem, _ =
    Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n0 samples
  in
  let oracle vertex = samples.(vertex).Dataset.Synthetic.y in
  let rmse_now solver =
    let predictions = Gssl.Incremental.predict solver in
    let truth =
      Array.map (fun (v, _) -> samples.(v).Dataset.Synthetic.q) predictions
    in
    Stats.Metrics.rmse truth (Array.map snd predictions)
  in
  Printf.printf
    "Active learning on Model 1: %d initial labels, %d-point unlabeled pool\n\n"
    n0 pool;
  Printf.printf "%8s  %12s  %18s  %9s\n" "queries" "uncertainty" "density-weighted"
    "random";
  let checkpoints = [ 0; 5; 10; 20; 40; 80 ] in
  let strategies =
    [
      Gssl.Active.Uncertainty;
      Gssl.Active.Density_weighted;
      Gssl.Active.Random (Prng.Rng.create 77);
    ]
  in
  let solvers =
    List.map (fun _ -> Gssl.Incremental.create problem) strategies
  in
  let spent = ref 0 in
  List.iter
    (fun target ->
      let step = target - !spent in
      spent := target;
      List.iter2
        (fun strategy solver ->
          ignore (Gssl.Active.run strategy ~oracle ~budget:step solver))
        strategies solvers;
      match List.map rmse_now solvers with
      | [ a; b; c ] -> Printf.printf "%8d  %12.4f  %18.4f  %9.4f\n" target a b c
      | _ -> assert false)
    checkpoints;
  print_newline ();
  print_string
    "Each query removes one row/column from the system via Sherman-Morrison-\n\
     style downdates instead of refactoring: a full annotation session is\n\
     O(m^3) total rather than O(m^4).\n"
