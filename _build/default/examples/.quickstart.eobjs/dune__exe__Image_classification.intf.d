examples/image_classification.mli:
