examples/quickstart.mli:
