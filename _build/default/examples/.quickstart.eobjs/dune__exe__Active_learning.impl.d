examples/active_learning.ml: Array Dataset Gssl Kernel List Printf Prng Stats
