examples/consistency_demo.ml: Dataset Experiment Gssl Kernel Linalg List Printf Prng Stats
