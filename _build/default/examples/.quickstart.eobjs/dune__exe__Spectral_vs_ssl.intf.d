examples/spectral_vs_ssl.mli:
