examples/csv_workflow.ml: Array Dataset Filename Gssl In_channel Kernel List Printf Prng Sys
