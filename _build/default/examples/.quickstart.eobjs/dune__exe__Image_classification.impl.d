examples/image_classification.ml: Array Dataset Experiment Graph Gssl Kernel Linalg List Printf Prng Stats
