examples/quickstart.ml: Array Gssl Kernel Printf
