examples/two_moons.mli:
