examples/spectral_vs_ssl.ml: Array Dataset Fun Graph Gssl Kernel Linalg List Printf Prng Stats
