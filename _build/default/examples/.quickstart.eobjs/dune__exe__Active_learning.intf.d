examples/active_learning.mli:
