examples/regression_curve.ml: Array Float Gssl Kernel Linalg Printf Prng Stats
