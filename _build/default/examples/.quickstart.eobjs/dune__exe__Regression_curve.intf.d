examples/regression_curve.mli:
