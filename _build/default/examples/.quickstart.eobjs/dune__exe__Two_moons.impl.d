examples/two_moons.ml: Array Dataset Experiment Gssl List Printf Prng
