(* Sweep machinery, tables/plots/report, and miniature end-to-end runs of
   the figure reproductions checking the paper's qualitative claims. *)

open Test_util
module Sweep = Experiment.Sweep
module Table = Experiment.Table
module Plot = Experiment.Ascii_plot
module Report = Experiment.Report
module Figures = Experiment.Figures

let test_replicate () =
  let acc = Sweep.replicate ~seed:1 ~reps:50 (fun rng -> Prng.Rng.float rng) in
  Alcotest.(check int) "count" 50 (Stats.Running.count acc);
  check_float ~tol:0.2 "mean near 1/2" 0.5 (Stats.Running.mean acc);
  check_raises_invalid "reps 0" (fun () ->
      ignore (Sweep.replicate ~seed:1 ~reps:0 (fun _ -> 0.)))

let test_replicate_deterministic () =
  let run () =
    Stats.Running.mean (Sweep.replicate ~seed:7 ~reps:20 (fun rng -> Prng.Rng.float rng))
  in
  check_float "same seed same result" (run ()) (run ())

let test_replicate_multi () =
  let out =
    Sweep.replicate_multi ~seed:2 ~reps:30 ~labels:[ "a"; "b" ] (fun rng ->
        let x = Prng.Rng.float rng in
        [ x; 2. *. x ])
  in
  (match out with
  | [ ("a", acc_a); ("b", acc_b) ] ->
      check_float ~tol:1e-9 "b = 2a"
        (2. *. Stats.Running.mean acc_a)
        (Stats.Running.mean acc_b)
  | _ -> Alcotest.fail "wrong shape");
  match
    Sweep.replicate_multi ~seed:2 ~reps:2 ~labels:[ "a" ] (fun _ -> [ 1.; 2. ])
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on wrong arity"

let test_grid () =
  let series =
    Sweep.grid ~seed:3 ~reps:5 ~xs:[ 1.; 2.; 3. ] ~labels:[ "x"; "x2" ]
      (fun ~x _rng -> [ x; x *. x ])
  in
  (match series with
  | [ s1; s2 ] ->
      check_vec "xs" [| 1.; 2.; 3. |] s1.Sweep.xs;
      check_vec "identity means" [| 1.; 2.; 3. |] s1.Sweep.means;
      check_vec "square means" [| 1.; 4.; 9. |] s2.Sweep.means;
      (* deterministic measurements have zero spread *)
      check_vec "zero stderr" [| 0.; 0.; 0. |] s1.Sweep.stderrs
  | _ -> Alcotest.fail "wrong number of series")

let fixture_figure =
  {
    Sweep.title = "t";
    xlabel = "x";
    ylabel = "y";
    series =
      [
        { Sweep.label = "up"; xs = [| 1.; 2. |]; means = [| 1.; 2. |]; stderrs = [| 0.; 0. |] };
        { Sweep.label = "down"; xs = [| 1.; 2. |]; means = [| 2.; 1. |]; stderrs = [| 0.; 0. |] };
      ];
  }

let test_table_render () =
  let s = Table.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "30"; "40" ] ] in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  check_raises_invalid "ragged" (fun () ->
      ignore (Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_table_of_figure () =
  let s = Table.of_figure fixture_figure in
  Alcotest.(check bool) "mentions series" true
    (Astring.String.is_infix ~affix:"up" s && Astring.String.is_infix ~affix:"down" s)

let test_float_cell () =
  Alcotest.(check string) "zero" "0" (Table.float_cell 0.);
  Alcotest.(check string) "integer" "42" (Table.float_cell 42.);
  Alcotest.(check string) "decimal" "0.1235" (Table.float_cell 0.123456);
  Alcotest.(check string) "tiny uses exponent" "1.000e-08" (Table.float_cell 1e-8)

let test_ascii_plot () =
  let s = Plot.render fixture_figure in
  Alcotest.(check bool) "has legend" true (Astring.String.is_infix ~affix:"legend" s);
  Alcotest.(check bool) "nonempty grid" true (String.length s > 100);
  check_raises_invalid "too small" (fun () ->
      ignore (Plot.render ~width:2 ~height:2 fixture_figure));
  let empty = { fixture_figure with Sweep.series = [] } in
  Alcotest.(check bool) "empty note" true
    (Astring.String.is_infix ~affix:"no data" (Plot.render empty))

let test_report_markdown () =
  let s = Report.figure_markdown fixture_figure in
  Alcotest.(check bool) "markdown table" true (Astring.String.is_infix ~affix:"| x |" s)

let test_report_monotone () =
  let up = List.nth fixture_figure.Sweep.series 0 in
  let down = List.nth fixture_figure.Sweep.series 1 in
  Alcotest.(check bool) "up nondecreasing" true (Report.series_monotone_nondecreasing up);
  Alcotest.(check bool) "up not nonincreasing" false (Report.series_monotone_nonincreasing up);
  Alcotest.(check bool) "down nonincreasing" true (Report.series_monotone_nonincreasing down)

let test_report_first_best () =
  (* smaller-is-better: the "up" series starts equal-best then loses *)
  Alcotest.(check bool) "not best everywhere" false
    (Report.first_series_best fixture_figure);
  let fig_ok =
    { fixture_figure with
      Sweep.series =
        [
          { Sweep.label = "low"; xs = [| 1.; 2. |]; means = [| 0.; 0. |]; stderrs = [| 0.; 0. |] };
          { Sweep.label = "high"; xs = [| 1.; 2. |]; means = [| 1.; 1. |]; stderrs = [| 0.; 0. |] };
        ];
    }
  in
  Alcotest.(check bool) "best everywhere" true (Report.first_series_best fig_ok);
  Alcotest.(check bool) "larger-is-better flips" false
    (Report.first_series_best ~larger_is_better:true fig_ok)

(* ---------- miniature end-to-end figure checks ---------- *)

let mini_ns = [ 30; 100; 300 ]
let mini_ms = [ 10; 40 ]

let check_hard_wins fig =
  (* paper claim: the hard criterion (first series, lambda=0) has the
     smallest RMSE at every grid point *)
  Alcotest.(check bool) "hard criterion best" true (Report.first_series_best fig)

let test_fig1_shape () =
  let fig = Figures.fig1 ~reps:3 ~seed:101 ~ns:mini_ns ~m:10 () in
  Alcotest.(check int) "four series" 4 (List.length fig.Sweep.series);
  check_hard_wins fig;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Sweep.label ^ " finite")
        true
        (Array.for_all Float.is_finite s.Sweep.means))
    fig.Sweep.series

let test_fig2_shape () =
  let fig = Figures.fig2 ~reps:3 ~seed:102 ~ms:mini_ms ~n:60 () in
  check_hard_wins fig

let test_fig3_shape () =
  let fig = Figures.fig3 ~reps:3 ~seed:103 ~ns:mini_ns ~m:10 () in
  check_hard_wins fig

let test_fig4_shape () =
  let fig = Figures.fig4 ~reps:3 ~seed:104 ~ms:mini_ms ~n:60 () in
  check_hard_wins fig

let test_rmse_decreases_with_n () =
  (* consistency at work: at lambda=0, more labeled data helps *)
  let fig = Figures.fig1 ~reps:4 ~seed:105 ~ns:[ 20; 700 ] ~m:10 () in
  let hard = List.hd fig.Sweep.series in
  Alcotest.(check bool) "rmse(700) < rmse(20)" true
    (hard.Sweep.means.(1) < hard.Sweep.means.(0))

let test_lambda_ordering_at_large_n () =
  (* the gap widens with lambda: lambda=5 worst at the largest n *)
  let fig = Figures.fig1 ~reps:3 ~seed:106 ~ns:[ 400 ] ~m:10 () in
  let means = List.map (fun s -> s.Sweep.means.(0)) fig.Sweep.series in
  match means with
  | [ l0; l001; l01; l5 ] ->
      Alcotest.(check bool) "0 <= 0.01" true (l0 <= l001 +. 1e-9);
      Alcotest.(check bool) "0.01 <= 0.1" true (l001 <= l01 +. 1e-9);
      Alcotest.(check bool) "0.1 <= 5" true (l01 <= l5 +. 1e-9)
  | _ -> Alcotest.fail "expected 4 series"

let test_fig5_shape () =
  let fig = Figures.fig5 ~reps:1 ~seed:107 ~dataset_size:240 () in
  Alcotest.(check int) "three ratios" 3 (List.length fig.Sweep.series);
  List.iter
    (fun s ->
      (* paper claim: AUC is maximal at lambda = 0 for every ratio *)
      let at0 = s.Sweep.means.(0) in
      Array.iter
        (fun v ->
          Alcotest.(check bool)
            (s.Sweep.label ^ ": lambda=0 best")
            true (at0 >= v -. 1e-9))
        s.Sweep.means;
      (* and the classifier is genuinely informative *)
      Alcotest.(check bool) (s.Sweep.label ^ " beats chance") true (at0 > 0.55))
    fig.Sweep.series

let test_consistency_demo_shape () =
  let fig = Figures.consistency_demo ~seed:108 ~ns:[ 50; 400 ] ~m:5 () in
  Alcotest.(check int) "four diagnostics" 4 (List.length fig.Sweep.series);
  (* the hard-NW gap must shrink as n grows (the proof's mechanism) *)
  let gap = List.nth fig.Sweep.series 2 in
  Alcotest.(check bool) "gap shrinks" true (gap.Sweep.means.(1) < gap.Sweep.means.(0))

let test_toy_demo_output () =
  let s = Figures.toy_demo ~n:10 ~m:5 ~seed:1 in
  Alcotest.(check bool) "mentions toy" true (Astring.String.is_infix ~affix:"Toy example" s)

let test_predict_adaptive_consistent () =
  (* the adaptive dispatcher must agree with the reference solvers *)
  let rng = Prng.Rng.create 109 in
  let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 60 in
  let problem, _ =
    Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed 0.7) ~n_labeled:40 samples
  in
  check_vec ~tol:1e-6 "hard path"
    (Gssl.Hard.solve problem)
    (Figures.predict_adaptive ~lambda:0. problem);
  check_vec ~tol:1e-6 "soft path"
    (Gssl.Soft.solve ~lambda:0.3 problem)
    (Figures.predict_adaptive ~lambda:0.3 problem)

let suite =
  ( "experiment",
    [
      case "replicate" test_replicate;
      case "replicate deterministic" test_replicate_deterministic;
      case "replicate_multi" test_replicate_multi;
      case "grid" test_grid;
      case "table render" test_table_render;
      case "table of figure" test_table_of_figure;
      case "float cell formats" test_float_cell;
      case "ascii plot" test_ascii_plot;
      case "report markdown" test_report_markdown;
      case "report monotone checks" test_report_monotone;
      case "report first-best check" test_report_first_best;
      case "fig1 mini: hard wins" test_fig1_shape;
      case "fig2 mini: hard wins" test_fig2_shape;
      case "fig3 mini: hard wins" test_fig3_shape;
      case "fig4 mini: hard wins" test_fig4_shape;
      case "fig1: rmse decreases in n" test_rmse_decreases_with_n;
      case "fig1: lambda ordering" test_lambda_ordering_at_large_n;
      case "fig5 mini: lambda=0 best" test_fig5_shape;
      case "consistency demo: gap shrinks" test_consistency_demo_shape;
      case "toy demo output" test_toy_demo_output;
      case "predict_adaptive consistent" test_predict_adaptive_consistent;
    ] )
