(* Shared helpers for the test suite. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual tol

let check_vec ?(tol = 1e-9) msg expected actual =
  if not (Vec.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Vec.to_string expected)
      (Vec.to_string actual)

let check_mat ?(tol = 1e-9) msg expected actual =
  if not (Mat.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: matrices differ (max abs diff %g)" msg
      (Mat.max_abs (Mat.sub expected actual))

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let case name f = Alcotest.test_case name `Quick f

(* Deterministic pseudo-random builders used across tests. *)

let random_vec rng n = Array.init n (fun _ -> Prng.Rng.uniform rng (-5.) 5.)

let random_mat rng r c =
  Mat.init r c (fun _ _ -> Prng.Rng.uniform rng (-5.) 5.)

let random_spd rng n =
  let m = random_mat rng n n in
  Mat.add_scaled_identity (Mat.gram m) (0.5 +. float_of_int n *. 0.01)

let random_symmetric rng n =
  let m = random_mat rng n n in
  Mat.scale 0.5 (Mat.add m (Mat.transpose m))

(* QCheck: generate via an integer seed so cases shrink to small seeds. *)
let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let qprop ?(count = 100) name prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name seed_gen prop)

let qprop_pair ?(count = 100) name gen2 prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen2 prop)
