open Test_util
module Vec = Linalg.Vec

let test_create () =
  check_vec "create" [| 2.; 2.; 2. |] (Vec.create 3 2.);
  check_vec "zeros" [| 0.; 0. |] (Vec.zeros 2);
  check_vec "ones" [| 1. |] (Vec.ones 1);
  check_raises_invalid "negative length" (fun () -> Vec.create (-1) 0.)

let test_init_basis () =
  check_vec "init" [| 0.; 1.; 4. |] (Vec.init 3 (fun i -> float_of_int (i * i)));
  check_vec "basis" [| 0.; 1.; 0. |] (Vec.basis 3 1);
  check_raises_invalid "basis oob" (fun () -> Vec.basis 3 3);
  check_raises_invalid "basis neg" (fun () -> Vec.basis 3 (-1))

let test_linspace () =
  check_vec "linspace" [| 0.; 0.5; 1. |] (Vec.linspace 0. 1. 3);
  check_float "endpoints" 2. (Vec.linspace (-2.) 2. 5).(4);
  check_raises_invalid "linspace n=1" (fun () -> Vec.linspace 0. 1. 1)

let test_arithmetic () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add x y);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  check_vec "mul" [| 4.; 10.; 18. |] (Vec.mul x y);
  check_vec "div" [| 0.25; 0.4; 0.5 |] (Vec.div x y);
  check_vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. x);
  check_vec "neg" [| -1.; -2.; -3. |] (Vec.neg x);
  check_vec "add_scalar" [| 2.; 3.; 4. |] (Vec.add_scalar 1. x);
  check_raises_invalid "mismatch" (fun () -> Vec.add x [| 1. |])

let test_axpy () =
  let y = [| 1.; 1.; 1. |] in
  Vec.axpy 2. [| 1.; 2.; 3. |] y;
  check_vec "axpy" [| 3.; 5.; 7. |] y

let test_dot_norms () =
  let x = [| 3.; 4. |] in
  check_float "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "norm2" 5. (Vec.norm2 x);
  check_float "norm2_sq" 25. (Vec.norm2_sq x);
  check_float "norm1" 7. (Vec.norm1 x);
  check_float "norm_inf" 4. (Vec.norm_inf x);
  check_float "norm1 with negatives" 7. (Vec.norm1 [| -3.; 4. |]);
  check_float "dist2" 5. (Vec.dist2 [| 0.; 0. |] x);
  check_float "dist2_sq" 25. (Vec.dist2_sq [| 0.; 0. |] x)

let test_reductions () =
  let x = [| 2.; -1.; 5.; 0. |] in
  check_float "sum" 6. (Vec.sum x);
  check_float "mean" 1.5 (Vec.mean x);
  check_float "min" (-1.) (Vec.min x);
  check_float "max" 5. (Vec.max x);
  Alcotest.(check int) "argmin" 1 (Vec.argmin x);
  Alcotest.(check int) "argmax" 2 (Vec.argmax x);
  check_raises_invalid "mean empty" (fun () -> Vec.mean [||]);
  check_raises_invalid "min empty" (fun () -> Vec.min [||])

let test_map () =
  check_vec "map" [| 1.; 4.; 9. |] (Vec.map (fun v -> v *. v) [| 1.; 2.; 3. |]);
  check_vec "mapi" [| 0.; 2.; 6. |]
    (Vec.mapi (fun i v -> float_of_int i *. v) [| 1.; 2.; 3. |]);
  check_vec "map2" [| 5.; 8. |] (Vec.map2 ( *. ) [| 1.; 2. |] [| 5.; 4. |])

let test_slice_concat () =
  let x = [| 1.; 2.; 3.; 4.; 5. |] in
  check_vec "slice" [| 2.; 3. |] (Vec.slice x 1 2);
  check_vec "slice empty" [||] (Vec.slice x 2 0);
  check_raises_invalid "slice oob" (fun () -> Vec.slice x 3 4);
  check_vec "concat" [| 1.; 2.; 3. |] (Vec.concat [| 1. |] [| 2.; 3. |])

let test_approx_equal () =
  Alcotest.(check bool) "equal" true (Vec.approx_equal [| 1. |] [| 1. +. 1e-12 |]);
  Alcotest.(check bool) "not equal" false (Vec.approx_equal [| 1. |] [| 1.1 |]);
  Alcotest.(check bool) "length mismatch" false (Vec.approx_equal [| 1. |] [| 1.; 2. |]);
  Alcotest.(check bool) "custom tol" true (Vec.approx_equal ~tol:0.2 [| 1. |] [| 1.1 |])

let test_inplace () =
  let v = [| 1.; 2. |] in
  Vec.scale_inplace 3. v;
  check_vec "scale_inplace" [| 3.; 6. |] v;
  Vec.fill v 7.;
  check_vec "fill" [| 7.; 7. |] v

let prop_triangle_inequality seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 20 in
  let x = random_vec rng n and y = random_vec rng n in
  Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9

let prop_cauchy_schwarz seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 20 in
  let x = random_vec rng n and y = random_vec rng n in
  abs_float (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-9

let prop_dot_symmetric seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 20 in
  let x = random_vec rng n and y = random_vec rng n in
  abs_float (Vec.dot x y -. Vec.dot y x) < 1e-12

let prop_norms_ordered seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 20 in
  let x = random_vec rng n in
  Vec.norm_inf x <= Vec.norm2 x +. 1e-9 && Vec.norm2 x <= Vec.norm1 x +. 1e-9

let suite =
  ( "vec",
    [
      case "create/zeros/ones" test_create;
      case "init/basis" test_init_basis;
      case "linspace" test_linspace;
      case "pointwise arithmetic" test_arithmetic;
      case "axpy" test_axpy;
      case "dot and norms" test_dot_norms;
      case "reductions" test_reductions;
      case "map/mapi/map2" test_map;
      case "slice/concat" test_slice_concat;
      case "approx_equal" test_approx_equal;
      case "in-place ops" test_inplace;
      qprop "triangle inequality" prop_triangle_inequality;
      qprop "Cauchy-Schwarz" prop_cauchy_schwarz;
      qprop "dot symmetric" prop_dot_symmetric;
      qprop "norm ordering inf<=2<=1" prop_norms_ordered;
    ] )
