(* Wave-4 tests: random-walk interpretation, induction formula, parallel
   sweeps, CSV export of figures. *)

open Test_util
module P = Gssl.Problem
module Rw = Gssl.Random_walk
module Ind = Gssl.Induction
module Vec = Linalg.Vec

let random_problem rng n m =
  let points =
    Array.init (n + m) (fun _ ->
        [| Prng.Rng.uniform rng 0. 2.; Prng.Rng.uniform rng 0. 2. |])
  in
  let labels = Array.init n (fun i -> if i mod 2 = 0 then 1. else 0.) in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  (P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels, points)

(* ---------- random walk ---------- *)

let prop_absorption_equals_hard seed =
  (* the exact absorption computation must match the hard criterion *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 8 and m = 1 + Prng.Rng.int rng 8 in
  let p, _ = random_problem rng n m in
  Vec.approx_equal ~tol:1e-6 (Gssl.Hard.solve p) (Rw.absorption_scores p)

let test_simulation_converges_to_hard () =
  (* Monte Carlo with many walks approximates the harmonic solution *)
  let rng = Prng.Rng.create 7 in
  let p, _ = random_problem rng 6 3 in
  let exact = Gssl.Hard.solve p in
  let approx = Rw.simulate ~rng ~walks_per_vertex:4000 p in
  Array.iteri
    (fun a e ->
      if abs_float (e -. approx.(a)) > 0.05 then
        Alcotest.failf "vertex %d: exact %.4f vs simulated %.4f" a e approx.(a))
    exact

let test_simulation_guards () =
  let rng = Prng.Rng.create 8 in
  let p, _ = random_problem rng 4 2 in
  check_raises_invalid "zero walks" (fun () ->
      ignore (Rw.simulate ~rng ~walks_per_vertex:0 p));
  (* isolated vertex cannot walk *)
  let w = Linalg.Mat.zeros 3 3 in
  Linalg.Mat.set w 0 1 1.;
  Linalg.Mat.set w 1 0 1.;
  let bad = P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels:[| 1.; 0. |] in
  check_raises_invalid "zero degree" (fun () ->
      ignore (Rw.simulate ~rng ~walks_per_vertex:1 bad))

let test_hitting_counts_shape () =
  let rng = Prng.Rng.create 9 in
  let p, _ = random_problem rng 5 4 in
  let counts = Rw.hitting_counts ~rng ~walks_per_vertex:50 p in
  Alcotest.(check int) "m rows" 4 (Array.length counts);
  Array.iter
    (fun row ->
      Alcotest.(check int) "n columns" 5 (Array.length row);
      let total = Array.fold_left ( + ) 0 row in
      Alcotest.(check bool) "all walks absorb (connected RBF graph)" true
        (total = 50))
    counts

let prop_hitting_distribution_normalized seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 5 and m = 1 + Prng.Rng.int rng 4 in
  let p, _ = random_problem rng n m in
  let counts = Rw.hitting_counts ~rng ~walks_per_vertex:20 p in
  Array.for_all
    (fun row ->
      let total = Array.fold_left ( + ) 0 row in
      total >= 0 && total <= 20)
    counts

(* ---------- induction ---------- *)

let test_induction_guards () =
  check_raises_invalid "empty" (fun () ->
      ignore
        (Ind.make ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1. ~points:[||] ~scores:[||]));
  check_raises_invalid "mismatch" (fun () ->
      ignore
        (Ind.make ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.
           ~points:[| [| 0. |] |] ~scores:[| 1.; 2. |]));
  check_raises_invalid "bad bandwidth" (fun () ->
      ignore
        (Ind.make ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:0.
           ~points:[| [| 0. |] |] ~scores:[| 1. |]));
  let model =
    Ind.make ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1. ~points:[| [| 0.; 0. |] |]
      ~scores:[| 1. |]
  in
  check_raises_invalid "dim mismatch" (fun () -> ignore (Ind.predict model [| 0. |]))

let test_induction_at_training_point () =
  (* inducting exactly at a training point with a sharply peaked kernel
     recovers (approximately) that point's fitted score *)
  let rng = Prng.Rng.create 10 in
  let p, points = random_problem rng 6 4 in
  let model =
    Ind.of_problem ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:0.05 ~points p
  in
  let full = Gssl.Hard.solve_full p in
  Array.iteri
    (fun i x ->
      (* skip points that (rarely) coincide closely with another *)
      let isolated =
        Array.for_all
          (fun other -> other == x || Vec.dist2 other x > 0.3)
          points
      in
      if isolated then
        check_float ~tol:0.05
          (Printf.sprintf "training point %d" i)
          full.(i) (Ind.predict model x))
    points

let prop_induction_in_score_range seed =
  let rng = Prng.Rng.create seed in
  let p, points = random_problem rng (2 + Prng.Rng.int rng 6) (1 + Prng.Rng.int rng 6) in
  let model =
    Ind.of_problem ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1. ~points p
  in
  let full = Gssl.Hard.solve_full p in
  let lo = Vec.min full and hi = Vec.max full in
  let query = [| Prng.Rng.uniform rng (-1.) 3.; Prng.Rng.uniform rng (-1.) 3. |] in
  let v = Ind.predict model query in
  v >= lo -. 1e-9 && v <= hi +. 1e-9

let test_induction_far_point_fallback () =
  (* far outside a compact kernel's support: the global mean fallback *)
  let model =
    Ind.make ~kernel:Kernel.Kernel_fn.Box ~bandwidth:1.
      ~points:[| [| 0. |]; [| 1. |] |] ~scores:[| 0.; 1. |]
  in
  check_float "fallback" 0.5 (Ind.predict model [| 100. |])

let test_induction_smoke_accuracy () =
  (* induction on held-out two-moons points classifies well *)
  let rng = Prng.Rng.create 11 in
  let samples = Dataset.Two_moons.generate rng 240 in
  let train = Array.sub samples 0 200 and test = Array.sub samples 200 40 in
  let problem, _ = Dataset.Two_moons.to_problem ~labeled_per_moon:3 train in
  (* reconstruct problem-ordered points: labeled-per-moon ordering *)
  let moon1 = List.filter (fun s -> s.Dataset.Two_moons.label) (Array.to_list train) in
  let moon2 = List.filter (fun s -> not s.Dataset.Two_moons.label) (Array.to_list train) in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let drop k l = List.filteri (fun i _ -> i >= k) l in
  let ordered =
    take 3 moon1 @ take 3 moon2 @ drop 3 moon1 @ drop 3 moon2
  in
  let points = Array.of_list (List.map (fun s -> s.Dataset.Two_moons.x) ordered) in
  let model =
    Ind.of_problem ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:0.35 ~points problem
  in
  let hits = ref 0 in
  Array.iter
    (fun s ->
      let predicted = Ind.predict model s.Dataset.Two_moons.x >= 0.5 in
      if predicted = s.Dataset.Two_moons.label then incr hits)
    test;
  Alcotest.(check bool) "induction >85% on held-out moons" true
    (float_of_int !hits /. 40. > 0.85)

(* ---------- parallel sweep ---------- *)

let measurement ~x rng = [ x +. Prng.Rng.float rng; 2. *. x ]

let test_parallel_matches_sequential () =
  let args = ([ 1.; 2.; 3. ], [ "a"; "b" ]) in
  let xs, labels = args in
  let seq = Experiment.Sweep.grid ~seed:5 ~reps:7 ~xs ~labels measurement in
  List.iter
    (fun domains ->
      let par =
        Experiment.Sweep.grid_parallel ~domains ~seed:5 ~reps:7 ~xs ~labels
          measurement
      in
      List.iter2
        (fun s p ->
          check_vec "means identical" s.Experiment.Sweep.means
            p.Experiment.Sweep.means;
          check_vec "stderrs identical" s.Experiment.Sweep.stderrs
            p.Experiment.Sweep.stderrs)
        seq par)
    [ 1; 2; 4 ]

let test_parallel_guards () =
  check_raises_invalid "domains = 0" (fun () ->
      ignore
        (Experiment.Sweep.grid_parallel ~domains:0 ~seed:1 ~reps:1 ~xs:[ 1. ]
           ~labels:[ "a" ] (fun ~x _ -> [ x ])))

let test_parallel_real_workload () =
  (* a miniature fig1 through the parallel path agrees with sequential *)
  let work ~x rng =
    let n = int_of_float x in
    let samples = Dataset.Synthetic.sample_many rng Dataset.Synthetic.Model1 (n + 10) in
    let h = Kernel.Bandwidth.paper_rate ~d:5 n in
    let problem, truth =
      Dataset.Synthetic.to_problem ~kernel:Kernel.Kernel_fn.Rbf
        ~bandwidth:(Kernel.Bandwidth.Fixed h) ~n_labeled:n samples
    in
    [ Stats.Metrics.rmse truth (Gssl.Hard.solve problem) ]
  in
  let xs = [ 30.; 60. ] and labels = [ "hard" ] in
  let seq = Experiment.Sweep.grid ~seed:6 ~reps:4 ~xs ~labels work in
  let par = Experiment.Sweep.grid_parallel ~domains:3 ~seed:6 ~reps:4 ~xs ~labels work in
  List.iter2
    (fun s p -> check_vec "real workload identical" s.Experiment.Sweep.means p.Experiment.Sweep.means)
    seq par

(* ---------- export ---------- *)

let fixture =
  {
    Experiment.Sweep.title = "fig, with comma";
    xlabel = "n";
    ylabel = "rmse";
    series =
      [
        {
          Experiment.Sweep.label = "hard";
          xs = [| 1.; 2. |];
          means = [| 0.25; 0.125 |];
          stderrs = [| 0.01; 0. |];
        };
        {
          Experiment.Sweep.label = "soft, 0.1";
          xs = [| 1.; 2. |];
          means = [| 0.5; 0.4 |];
          stderrs = [| 0.; 0.02 |];
        };
      ];
  }

let figures_equal a b =
  a.Experiment.Sweep.title = b.Experiment.Sweep.title
  && a.Experiment.Sweep.xlabel = b.Experiment.Sweep.xlabel
  && a.Experiment.Sweep.ylabel = b.Experiment.Sweep.ylabel
  && List.for_all2
       (fun s t ->
         s.Experiment.Sweep.label = t.Experiment.Sweep.label
         && s.Experiment.Sweep.xs = t.Experiment.Sweep.xs
         && s.Experiment.Sweep.means = t.Experiment.Sweep.means
         && s.Experiment.Sweep.stderrs = t.Experiment.Sweep.stderrs)
       a.Experiment.Sweep.series b.Experiment.Sweep.series

let test_export_roundtrip () =
  let text = Experiment.Export.to_csv fixture in
  Alcotest.(check bool) "roundtrip" true
    (figures_equal fixture (Experiment.Export.of_csv text))

let test_export_file_roundtrip () =
  let path = Filename.temp_file "gssl_fig" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Experiment.Export.write_file path fixture;
      Alcotest.(check bool) "file roundtrip" true
        (figures_equal fixture (Experiment.Export.read_file path)))

let test_export_malformed () =
  (match Experiment.Export.of_csv "just,one,row\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Experiment.Export.of_csv "# t,x,y\nx,weird header\n1,2\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on bad header"

let suite =
  ( "wave4",
    [
      qprop "random walk: absorption = hard" prop_absorption_equals_hard;
      case "random walk: MC converges" test_simulation_converges_to_hard;
      case "random walk: guards" test_simulation_guards;
      case "random walk: hitting counts" test_hitting_counts_shape;
      qprop ~count:30 "random walk: counts bounded" prop_hitting_distribution_normalized;
      case "induction: guards" test_induction_guards;
      case "induction: training points" test_induction_at_training_point;
      qprop "induction: within score range" prop_induction_in_score_range;
      case "induction: compact-support fallback" test_induction_far_point_fallback;
      case "induction: held-out moons" test_induction_smoke_accuracy;
      case "parallel: identical to sequential" test_parallel_matches_sequential;
      case "parallel: guards" test_parallel_guards;
      case "parallel: real workload" test_parallel_real_workload;
      case "export: roundtrip" test_export_roundtrip;
      case "export: file roundtrip" test_export_file_roundtrip;
      case "export: malformed input" test_export_malformed;
    ] )

(* ---------- absorption matrix & predictive uncertainty ---------- *)

let prop_absorption_matrix_rows_sum_to_one seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let p, _ = random_problem rng n m in
  let b = Rw.absorption_matrix p in
  Array.for_all
    (fun s -> abs_float (s -. 1.) < 1e-7)
    (Linalg.Mat.row_sums b)

let prop_absorption_matrix_reproduces_hard seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let p, _ = random_problem rng n m in
  let b = Rw.absorption_matrix p in
  Vec.approx_equal ~tol:1e-7 (Gssl.Hard.solve p)
    (Linalg.Mat.mv b p.P.labels)

let prop_absorption_probabilities_nonnegative seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let p, _ = random_problem rng n m in
  let b = Rw.absorption_matrix p in
  Array.for_all (fun v -> v >= -1e-9) b.Linalg.Mat.data

let prop_predictive_std_bounded seed =
  (* binary-label variance is at most 1/4 per label, and the absorption
     weights are a distribution, so std <= 1/2 *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 8 and m = 1 + Prng.Rng.int rng 6 in
  let p, _ = random_problem rng n m in
  Array.for_all (fun s -> s >= 0. && s <= 0.5 +. 1e-9) (Rw.predictive_std p)

let test_predictive_std_zero_when_labels_agree () =
  (* all labels identical: zero estimated label noise, zero std *)
  let points = Array.init 6 (fun i -> [| float_of_int i *. 0.3 |]) in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1. points
  in
  let p = P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels:[| 1.; 1.; 1.; 1. |] in
  Array.iter
    (fun s -> check_float ~tol:1e-9 "zero std" 0. s)
    (Rw.predictive_std p)

let extra_cases =
  [
    qprop "absorption rows sum to 1" prop_absorption_matrix_rows_sum_to_one;
    qprop "absorption B y = hard" prop_absorption_matrix_reproduces_hard;
    qprop "absorption nonnegative" prop_absorption_probabilities_nonnegative;
    qprop "predictive std bounded" prop_predictive_std_bounded;
    case "predictive std: pure labels" test_predictive_std_zero_when_labels_agree;
  ]

let suite = (fst suite, snd suite @ extra_cases)
