(* Synthetic generator, toy example, COIL simulator, splits. *)

open Test_util
module Syn = Dataset.Synthetic
module Toy = Dataset.Toy
module Coil = Dataset.Coil
module Splits = Dataset.Splits
module Vec = Linalg.Vec
module Mat = Linalg.Mat

(* ---------- synthetic ---------- *)

let test_logit_known_values () =
  (* at X = 0: logit = -1.35 for both models *)
  let zero = Vec.zeros 5 in
  check_float "model1 at 0" (-1.35) (Syn.logit Syn.Model1 zero);
  check_float "model2 at 0" (-1.35) (Syn.logit Syn.Model2 zero);
  (* at X = (1,1,1,1,1): model1 = -1.35 + 2 - 1 + 1 - 1 + 2 = 1.65;
     model2 adds X1X3 + X2X4 = 2 *)
  let one = Vec.ones 5 in
  check_float "model1 at 1" 1.65 (Syn.logit Syn.Model1 one);
  check_float "model2 at 1" 3.65 (Syn.logit Syn.Model2 one);
  check_raises_invalid "wrong dim" (fun () -> ignore (Syn.logit Syn.Model1 [| 1. |]))

let test_true_q_is_sigmoid () =
  let x = Vec.create 5 0.5 in
  let expected = 1. /. (1. +. exp (-.Syn.logit Syn.Model1 x)) in
  check_float "sigmoid" expected (Syn.true_q Syn.Model1 x);
  Alcotest.(check bool) "q in (0,1)" true
    (Syn.true_q Syn.Model2 x > 0. && Syn.true_q Syn.Model2 x < 1.)

let test_inputs_in_unit_box () =
  let rng = Prng.Rng.create 31 in
  for _ = 1 to 500 do
    let x = Syn.sample_input rng in
    Alcotest.(check int) "dimension" 5 (Array.length x);
    Array.iter
      (fun v -> if v < 0. || v > 1. then Alcotest.failf "component %g outside" v)
      x
  done

let test_covariance_structure () =
  check_float "diag" 0.1 (Mat.get Syn.covariance 0 0);
  check_float "off-diag" 0.05 (Mat.get Syn.covariance 0 3);
  check_float "mean" 0.5 Syn.mean.(2)

let test_sample_consistency () =
  let rng = Prng.Rng.create 32 in
  let s = Syn.sample rng Syn.Model1 in
  check_float "q matches x" (Syn.true_q Syn.Model1 s.Syn.x) s.Syn.q;
  Alcotest.(check bool) "y binary" true (s.Syn.y = 0. || s.Syn.y = 1.)

let test_sample_rate_matches_q () =
  (* empirical P(Y=1) should approximate E[q(X)] *)
  let rng = Prng.Rng.create 33 in
  let samples = Syn.sample_many rng Syn.Model1 20_000 in
  let rate = Stats.Descriptive.mean (Array.map (fun s -> s.Syn.y) samples) in
  let avg_q = Stats.Descriptive.mean (Array.map (fun s -> s.Syn.q) samples) in
  check_float ~tol:0.01 "rate = mean q" avg_q rate

let test_to_problem () =
  let rng = Prng.Rng.create 34 in
  let samples = Syn.sample_many rng Syn.Model1 30 in
  let problem, truth =
    Syn.to_problem ~kernel:Kernel.Kernel_fn.Rbf
      ~bandwidth:(Kernel.Bandwidth.Fixed 0.7) ~n_labeled:20 samples
  in
  Alcotest.(check int) "n" 20 (Gssl.Problem.n_labeled problem);
  Alcotest.(check int) "m" 10 (Gssl.Problem.n_unlabeled problem);
  Alcotest.(check int) "truth size" 10 (Array.length truth);
  check_float "truth matches sample" samples.(20).Syn.q truth.(0);
  check_raises_invalid "bad n_labeled" (fun () ->
      ignore
        (Syn.to_problem ~kernel:Kernel.Kernel_fn.Rbf
           ~bandwidth:(Kernel.Bandwidth.Fixed 0.7) ~n_labeled:31 samples))

(* ---------- toy ---------- *)

let test_toy_closed_form_prediction () =
  let labels = [| 1.; 0.; 1.; 1. |] in
  let p = Toy.problem ~n:4 ~m:3 ~labels in
  let pred = Gssl.Hard.solve p in
  let expected = Toy.expected_prediction labels in
  check_float "ybar" 0.75 expected;
  Array.iter (fun v -> check_float ~tol:1e-10 "prediction = ybar" expected v) pred

let test_toy_closed_form_inverse () =
  (* check the explicit (n+1)/(n(m+n)), 1/(n(m+n)) pattern numerically *)
  List.iter
    (fun (n, m) ->
      check_mat ~tol:1e-10
        (Printf.sprintf "inverse n=%d m=%d" n m)
        (Toy.expected_inverse ~n ~m)
        (Toy.system_inverse ~n ~m))
    [ (1, 1); (2, 3); (5, 2); (10, 10) ]

let test_toy_guards () =
  check_raises_invalid "n=0" (fun () -> ignore (Toy.problem ~n:0 ~m:1 ~labels:[||]));
  check_raises_invalid "label mismatch" (fun () ->
      ignore (Toy.problem ~n:2 ~m:1 ~labels:[| 1. |]))

let prop_toy_soft_also_constant seed =
  (* on the toy graph the soft solution is constant across unlabeled
     vertices by symmetry *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 5 and m = 2 + Prng.Rng.int rng 5 in
  let labels = Array.init n (fun _ -> if Prng.Rng.bool rng then 1. else 0.) in
  let p = Toy.problem ~n ~m ~labels in
  let soft = Gssl.Soft.solve ~lambda:0.5 p in
  let spread = Vec.max soft -. Vec.min soft in
  spread < 1e-9

(* ---------- COIL ---------- *)

let test_coil_render_deterministic () =
  let a = Coil.render ~object_id:3 ~angle_index:10 in
  let b = Coil.render ~object_id:3 ~angle_index:10 in
  check_vec "deterministic" a b;
  Alcotest.(check int) "pixels" 256 (Array.length a);
  check_raises_invalid "bad object" (fun () ->
      ignore (Coil.render ~object_id:24 ~angle_index:0));
  check_raises_invalid "bad angle" (fun () ->
      ignore (Coil.render ~object_id:0 ~angle_index:72))

let test_coil_pixels_in_range () =
  for object_id = 0 to 23 do
    let img = Coil.render ~object_id ~angle_index:(object_id * 3) in
    Array.iter
      (fun v -> if v < 0. || v > 1. then Alcotest.failf "pixel %g outside [0,1]" v)
      img
  done

let test_coil_rotation_continuity () =
  (* adjacent angles must be much closer than the farthest view: the
     rotation-manifold structure the graph methods exploit (shapes with
     discrete rotational symmetry may have *some* distant angle close, so
     compare against the farthest one) *)
  for object_id = 0 to 23 do
    let at k = Coil.render ~object_id ~angle_index:k in
    let near = Vec.dist2 (at 0) (at 1) in
    let far = ref 0. in
    for k = 2 to 36 do
      far := Stdlib.max !far (Vec.dist2 (at 0) (at k))
    done;
    if near >= 0.5 *. !far then
      Alcotest.failf "object %d: adjacent angle not close (%g vs max %g)"
        object_id near !far
  done

let test_coil_objects_distinct () =
  (* different objects at the same angle must differ substantially *)
  let imgs = Array.init 24 (fun o -> Coil.render ~object_id:o ~angle_index:0) in
  for a = 0 to 23 do
    for b = a + 1 to 23 do
      if Vec.dist2 imgs.(a) imgs.(b) < 0.1 then
        Alcotest.failf "objects %d and %d nearly identical" a b
    done
  done

let test_coil_generate_counts () =
  let rng = Prng.Rng.create 41 in
  let data = Coil.generate rng in
  Alcotest.(check int) "1500 images" 1500 (Array.length data.Coil.images);
  let per_class = Array.make 6 0 in
  Array.iter
    (fun img -> per_class.(img.Coil.class_id) <- per_class.(img.Coil.class_id) + 1)
    data.Coil.images;
  Array.iteri
    (fun c k -> Alcotest.(check int) (Printf.sprintf "class %d count" c) 250 k)
    per_class;
  (* binary split is balanced 750/750 *)
  let pos = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (Coil.labels data) in
  Alcotest.(check int) "balanced binary" 750 pos

let test_coil_generate_deterministic () =
  let a = Coil.generate (Prng.Rng.create 42) in
  let b = Coil.generate (Prng.Rng.create 42) in
  check_vec "same first image" a.Coil.images.(0).Coil.pixels b.Coil.images.(0).Coil.pixels;
  Alcotest.(check int) "same object"
    a.Coil.images.(77).Coil.object_id b.Coil.images.(77).Coil.object_id

let test_coil_noise_guard () =
  check_raises_invalid "negative noise" (fun () ->
      ignore (Coil.generate ~noise:(-0.1) (Prng.Rng.create 1)))

let test_coil_class_structure () =
  let rng = Prng.Rng.create 43 in
  let data = Coil.generate ~noise:0. rng in
  Array.iter
    (fun img ->
      Alcotest.(check int) "class = object/4" (img.Coil.object_id / 4)
        img.Coil.class_id;
      Alcotest.(check bool) "binary label rule" (Coil.binary_label img)
        (img.Coil.class_id < 3))
    data.Coil.images

(* ---------- splits ---------- *)

let test_k_folds_partition () =
  let rng = Prng.Rng.create 51 in
  let folds = Splits.k_folds rng ~n:103 ~k:5 in
  Alcotest.(check int) "5 folds" 5 (Array.length folds);
  Alcotest.(check bool) "is partition" true (Splits.is_partition ~n:103 folds);
  Array.iter
    (fun f ->
      let nt = Array.length f.Splits.test in
      Alcotest.(check bool) "test size 20 or 21" true (nt = 20 || nt = 21);
      Alcotest.(check int) "train+test = n" 103
        (Array.length f.Splits.train + nt))
    folds

let test_k_folds_disjoint () =
  let rng = Prng.Rng.create 52 in
  let folds = Splits.k_folds rng ~n:20 ~k:4 in
  Array.iter
    (fun f ->
      let in_test = Array.make 20 false in
      Array.iter (fun i -> in_test.(i) <- true) f.Splits.test;
      Array.iter
        (fun i -> if in_test.(i) then Alcotest.fail "train/test overlap")
        f.Splits.train)
    folds;
  check_raises_invalid "k=1" (fun () -> ignore (Splits.k_folds rng ~n:10 ~k:1));
  check_raises_invalid "k>n" (fun () -> ignore (Splits.k_folds rng ~n:3 ~k:4))

let test_inverted () =
  let f = { Splits.train = [| 0; 1 |]; test = [| 2 |] } in
  let g = Splits.inverted f in
  Alcotest.(check (array int)) "train" [| 2 |] g.Splits.train;
  Alcotest.(check (array int)) "test" [| 0; 1 |] g.Splits.test

let test_ratio_split () =
  let rng = Prng.Rng.create 53 in
  let f = Splits.ratio_split rng ~n:100 ~labeled_fraction:0.2 in
  Alcotest.(check int) "train size" 20 (Array.length f.Splits.train);
  Alcotest.(check int) "test size" 80 (Array.length f.Splits.test);
  Alcotest.(check bool) "partition" true (Splits.is_partition ~n:100 [| f |] = false);
  (* is_partition over both sides *)
  Alcotest.(check bool) "cover" true
    (Splits.is_partition ~n:100 [| f; Splits.inverted f |]);
  check_raises_invalid "bad fraction" (fun () ->
      ignore (Splits.ratio_split rng ~n:10 ~labeled_fraction:1.2))

let prop_k_folds_always_partition seed =
  let rng = Prng.Rng.create seed in
  let n = 4 + Prng.Rng.int rng 60 in
  let k = 2 + Prng.Rng.int rng (Stdlib.min 8 (n - 2)) in
  let folds = Splits.k_folds rng ~n ~k in
  Splits.is_partition ~n folds

let suite =
  ( "dataset",
    [
      case "logit known values" test_logit_known_values;
      case "true q = sigmoid(logit)" test_true_q_is_sigmoid;
      case "inputs censored to unit box" test_inputs_in_unit_box;
      case "covariance structure" test_covariance_structure;
      case "sample internal consistency" test_sample_consistency;
      case "P(Y=1) matches E[q]" test_sample_rate_matches_q;
      case "to_problem split" test_to_problem;
      case "toy: prediction closed form" test_toy_closed_form_prediction;
      case "toy: inverse closed form" test_toy_closed_form_inverse;
      case "toy: guards" test_toy_guards;
      qprop "toy: soft constant by symmetry" prop_toy_soft_also_constant;
      case "coil: render deterministic" test_coil_render_deterministic;
      case "coil: pixels in [0,1]" test_coil_pixels_in_range;
      case "coil: rotation continuity" test_coil_rotation_continuity;
      case "coil: objects distinct" test_coil_objects_distinct;
      case "coil: generate counts" test_coil_generate_counts;
      case "coil: generate deterministic" test_coil_generate_deterministic;
      case "coil: noise guard" test_coil_noise_guard;
      case "coil: class structure" test_coil_class_structure;
      case "splits: k-fold partition" test_k_folds_partition;
      case "splits: disjoint" test_k_folds_disjoint;
      case "splits: inverted" test_inverted;
      case "splits: ratio split" test_ratio_split;
      qprop "splits: always a partition" prop_k_folds_always_partition;
    ] )
