(* Descriptive statistics, metrics, ROC/AUC, running moments. *)

open Test_util
module D = Stats.Descriptive
module M = Stats.Metrics
module Roc = Stats.Roc
module Running = Stats.Running

let test_mean_var () =
  check_float "mean" 2.5 (D.mean [| 1.; 2.; 3.; 4. |]);
  check_float "variance" (5. /. 3.) (D.variance [| 1.; 2.; 3.; 4. |]);
  check_float "population variance" 1.25 (D.population_variance [| 1.; 2.; 3.; 4. |]);
  check_float "std" (sqrt (5. /. 3.)) (D.std [| 1.; 2.; 3.; 4. |]);
  check_raises_invalid "empty mean" (fun () -> ignore (D.mean [||]));
  check_raises_invalid "variance singleton" (fun () -> ignore (D.variance [| 1. |]))

let test_median_quantile () =
  check_float "odd median" 3. (D.median [| 5.; 1.; 3. |]);
  check_float "even median" 2.5 (D.median [| 1.; 2.; 3.; 4. |]);
  check_float "q0" 1. (D.quantile [| 1.; 2.; 3. |] 0.);
  check_float "q1" 3. (D.quantile [| 1.; 2.; 3. |] 1.);
  check_float "q interpolated" 1.5 (D.quantile [| 1.; 2.; 3. |] 0.25);
  check_raises_invalid "bad p" (fun () -> ignore (D.quantile [| 1. |] 1.5))

let test_minmax_cov_corr () =
  Alcotest.(check (pair (float 1e-12) (float 1e-12))) "min_max" (1., 4.)
    (D.min_max [| 3.; 1.; 4. |]);
  check_float "covariance" 1.5 (D.covariance [| 1.; 2.; 3.; 4. |] [| 2.; 3.; 3.; 5. |]);
  check_float "self correlation" 1. (D.correlation [| 1.; 2.; 3. |] [| 1.; 2.; 3. |]);
  check_float "anti correlation" (-1.) (D.correlation [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  check_raises_invalid "constant input" (fun () ->
      ignore (D.correlation [| 1.; 1. |] [| 1.; 2. |]))

let test_median_pairwise () =
  (* points 0, 3, 6 on a line: squared distances 9, 36, 9 -> median 9 *)
  let points = [| [| 0. |]; [| 3. |]; [| 6. |] |] in
  check_float "median pairwise" 9. (D.median_of_pairwise_sq_distances points);
  check_raises_invalid "single point" (fun () ->
      ignore (D.median_of_pairwise_sq_distances [| [| 1. |] |]))

let test_rmse_mae () =
  check_float "mse" 2. (M.mse [| 0.; 0. |] [| 1.; sqrt 3. |]);
  check_float "rmse" (sqrt 2.) (M.rmse [| 0.; 0. |] [| 1.; sqrt 3. |]);
  check_float "rmse zero" 0. (M.rmse [| 1.; 2. |] [| 1.; 2. |]);
  check_float "mae" 1.5 (M.mae [| 0.; 0. |] [| 1.; 2. |]);
  check_raises_invalid "mismatch" (fun () -> ignore (M.mse [| 1. |] [| 1.; 2. |]));
  check_raises_invalid "empty" (fun () -> ignore (M.rmse [||] [||]))

let confusion_fixture () =
  (* truth:  T T T F F ; scores: .9 .8 .2 .7 .1  @0.5 -> tp=2 fn=1 fp=1 tn=1 *)
  M.confusion ~truth:[| true; true; true; false; false |]
    [| 0.9; 0.8; 0.2; 0.7; 0.1 |]

let test_confusion () =
  let c = confusion_fixture () in
  Alcotest.(check int) "tp" 2 c.M.tp;
  Alcotest.(check int) "fn" 1 c.M.fn;
  Alcotest.(check int) "fp" 1 c.M.fp;
  Alcotest.(check int) "tn" 1 c.M.tn

let test_derived_metrics () =
  let c = confusion_fixture () in
  check_float "accuracy" 0.6 (M.accuracy c);
  check_float "precision" (2. /. 3.) (M.precision c);
  check_float "recall" (2. /. 3.) (M.recall c);
  check_float "specificity" 0.5 (M.specificity c);
  check_float "f1" (2. /. 3.) (M.f1 c);
  (* MCC by hand: (2*1 - 1*1)/sqrt(3*3*2*2) = 1/6 *)
  check_float "mcc" (1. /. 6.) (M.mcc c)

let test_metrics_degenerate () =
  let c = M.confusion ~truth:[| true; true |] [| 0.9; 0.9 |] in
  check_float "precision defined" 1. (M.precision c);
  check_float "mcc zero on empty marginal" 0. (M.mcc c)

let test_perfect_auc () =
  let truth = [| true; true; false; false |] in
  let scores = [| 0.9; 0.8; 0.3; 0.1 |] in
  check_float "perfect auc" 1. (Roc.auc ~truth ~scores);
  check_float "perfect trapezoid" 1. (Roc.auc_trapezoid ~truth ~scores)

let test_random_auc () =
  (* constant scores: AUC must be exactly 1/2 under the tie convention *)
  let truth = [| true; false; true; false |] in
  let scores = [| 0.5; 0.5; 0.5; 0.5 |] in
  check_float "ties -> 0.5" 0.5 (Roc.auc ~truth ~scores);
  check_float "trapezoid ties -> 0.5" 0.5 (Roc.auc_trapezoid ~truth ~scores)

let test_inverted_auc () =
  let truth = [| true; true; false; false |] in
  let scores = [| 0.1; 0.2; 0.8; 0.9 |] in
  check_float "inverted auc" 0. (Roc.auc ~truth ~scores)

let test_auc_guards () =
  check_raises_invalid "single class" (fun () ->
      ignore (Roc.auc ~truth:[| true; true |] ~scores:[| 0.1; 0.2 |]));
  check_raises_invalid "mismatch" (fun () ->
      ignore (Roc.auc ~truth:[| true; false |] ~scores:[| 0.1 |]))

let test_roc_curve_endpoints () =
  let truth = [| true; false; true; false; true |] in
  let scores = [| 0.9; 0.7; 0.6; 0.3; 0.2 |] in
  let pts = Roc.curve ~truth ~scores in
  let first = pts.(0) and last = pts.(Array.length pts - 1) in
  check_float "starts at 0 fpr" 0. first.Roc.fpr;
  check_float "starts at 0 tpr" 0. first.Roc.tpr;
  check_float "ends at 1 fpr" 1. last.Roc.fpr;
  check_float "ends at 1 tpr" 1. last.Roc.tpr

let prop_auc_forms_agree seed =
  let rng = Prng.Rng.create seed in
  let n = 4 + Prng.Rng.int rng 40 in
  let truth = Array.init n (fun i -> i mod 2 = 0) in
  (* coarse scores so ties actually occur *)
  let scores = Array.init n (fun _ -> float_of_int (Prng.Rng.int rng 5) /. 4.) in
  let a = Roc.auc ~truth ~scores and b = Roc.auc_trapezoid ~truth ~scores in
  abs_float (a -. b) < 1e-9

let prop_auc_monotone_invariant seed =
  let rng = Prng.Rng.create seed in
  let n = 4 + Prng.Rng.int rng 40 in
  let truth = Array.init n (fun i -> i mod 2 = 0) in
  let scores = Array.init n (fun _ -> Prng.Rng.float rng) in
  let transformed = Array.map (fun s -> exp (3. *. s) +. 1.) scores in
  abs_float (Roc.auc ~truth ~scores -. Roc.auc ~truth ~scores:transformed) < 1e-9

let prop_auc_complement seed =
  let rng = Prng.Rng.create seed in
  let n = 4 + Prng.Rng.int rng 40 in
  let truth = Array.init n (fun i -> i mod 2 = 0) in
  let scores = Array.init n (fun _ -> Prng.Rng.float rng) in
  let flipped = Array.map not truth in
  abs_float (Roc.auc ~truth ~scores +. Roc.auc ~truth:flipped ~scores -. 1.) < 1e-9

let test_running_matches_batch () =
  let xs = [| 1.; 4.; 2.; 8.; 5.; 7. |] in
  let acc = Running.create () in
  Array.iter (Running.add acc) xs;
  Alcotest.(check int) "count" 6 (Running.count acc);
  check_float "mean" (D.mean xs) (Running.mean acc);
  check_float "variance" (D.variance xs) (Running.variance acc);
  check_float "stderr" (D.standard_error xs) (Running.standard_error acc)

let test_running_merge () =
  let xs = [| 1.; 4.; 2. |] and ys = [| 8.; 5.; 7.; 3. |] in
  let a = Running.create () and b = Running.create () in
  Array.iter (Running.add a) xs;
  Array.iter (Running.add b) ys;
  let m = Running.merge a b in
  let all = Array.append xs ys in
  Alcotest.(check int) "merged count" 7 (Running.count m);
  check_float "merged mean" (D.mean all) (Running.mean m);
  check_float "merged variance" (D.variance all) (Running.variance m);
  let empty = Running.create () in
  check_float "merge with empty" (D.mean xs) (Running.mean (Running.merge a empty));
  check_float "empty with merge" (D.mean xs) (Running.mean (Running.merge empty a))

let test_running_guards () =
  let acc = Running.create () in
  check_raises_invalid "empty mean" (fun () -> ignore (Running.mean acc));
  Running.add acc 1.;
  check_raises_invalid "variance needs 2" (fun () -> ignore (Running.variance acc))

let suite =
  ( "stats",
    [
      case "mean/variance" test_mean_var;
      case "median/quantile" test_median_quantile;
      case "min_max/cov/corr" test_minmax_cov_corr;
      case "median pairwise distance" test_median_pairwise;
      case "mse/rmse/mae" test_rmse_mae;
      case "confusion counts" test_confusion;
      case "derived metrics" test_derived_metrics;
      case "degenerate metrics" test_metrics_degenerate;
      case "auc: perfect classifier" test_perfect_auc;
      case "auc: all ties" test_random_auc;
      case "auc: inverted classifier" test_inverted_auc;
      case "auc guards" test_auc_guards;
      case "roc endpoints" test_roc_curve_endpoints;
      qprop "auc: Mann-Whitney = trapezoid" prop_auc_forms_agree;
      qprop "auc: monotone invariant" prop_auc_monotone_invariant;
      qprop "auc: label flip complements" prop_auc_complement;
      case "running = batch" test_running_matches_batch;
      case "running merge" test_running_merge;
      case "running guards" test_running_guards;
    ] )
