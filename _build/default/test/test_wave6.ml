(* Wave-6 tests: calibration diagnostics and the future-work studies. *)

open Test_util
module C = Stats.Calibration

let test_reliability_perfect () =
  (* scores equal to the class rates per group: perfectly calibrated *)
  let truth = [| true; false; true; true; false; false |] in
  let scores = [| 0.65; 0.65; 0.65; 0.15; 0.15; 0.15 |] in
  (* group 1 (0.65): 2/3 positive is not exact; craft exact instead *)
  ignore (truth, scores);
  let truth = [| true; false; true; false |] in
  let scores = [| 0.55; 0.55; 0.55; 0.55 |] in
  (* one bin, mean score 0.55, rate 0.5 -> ECE = 0.05 *)
  check_float ~tol:1e-12 "ece single bin" 0.05
    (C.expected_calibration_error ~truth scores)

let test_reliability_bins () =
  let truth = [| true; false; true; false |] in
  let scores = [| 0.95; 0.92; 0.08; 0.05 |] in
  let bins = C.reliability ~bins:10 ~truth scores in
  Alcotest.(check int) "two occupied bins" 2 (Array.length bins);
  let low = bins.(0) and high = bins.(1) in
  check_float "low bin rate" 0.5 low.C.empirical_rate;
  check_float "high bin rate" 0.5 high.C.empirical_rate;
  Alcotest.(check int) "low count" 2 low.C.count;
  check_float ~tol:1e-12 "low mean score" 0.065 low.C.mean_score

let test_calibration_guards () =
  check_raises_invalid "mismatch" (fun () ->
      ignore (C.reliability ~truth:[| true |] [| 0.5; 0.5 |]));
  check_raises_invalid "empty" (fun () -> ignore (C.reliability ~truth:[||] [||]));
  check_raises_invalid "score out of range" (fun () ->
      ignore (C.reliability ~truth:[| true |] [| 1.5 |]));
  check_raises_invalid "bins 0" (fun () ->
      ignore (C.reliability ~bins:0 ~truth:[| true |] [| 0.5 |]))

let test_brier_known () =
  let truth = [| true; false |] in
  check_float "brier" ((0.01 +. 0.04) /. 2.) (C.brier_score ~truth [| 0.9; 0.2 |]);
  check_float "perfect" 0. (C.brier_score ~truth [| 1.; 0. |]);
  check_float "worst" 1. (C.brier_score ~truth [| 0.; 1. |])

let test_brier_decomposition_constant_forecast () =
  (* forecasting the base rate: zero resolution, zero reliability term *)
  let truth = [| true; true; false; false |] in
  let scores = [| 0.5; 0.5; 0.5; 0.5 |] in
  let d = C.brier_decomposition ~truth scores in
  check_float ~tol:1e-12 "reliability 0" 0. d.C.reliability_term;
  check_float ~tol:1e-12 "resolution 0" 0. d.C.resolution;
  check_float ~tol:1e-12 "uncertainty" 0.25 d.C.uncertainty

let test_brier_decomposition_perfect_forecast () =
  let truth = [| true; true; false; false |] in
  let scores = [| 0.999; 0.999; 0.001; 0.001 |] in
  let d = C.brier_decomposition ~truth scores in
  (* perfect separation: resolution = uncertainty *)
  check_float ~tol:1e-9 "resolution = uncertainty" d.C.uncertainty d.C.resolution;
  Alcotest.(check bool) "tiny reliability term" true (d.C.reliability_term < 1e-5)

let prop_brier_identity seed =
  (* binned identity: Brier of bin-mean-rounded scores = REL - RES + UNC.
     With raw scores the identity holds approximately (within-bin
     variance); we check the decomposition terms are consistent bounds. *)
  let rng = Prng.Rng.create seed in
  let n = 10 + Prng.Rng.int rng 50 in
  let truth = Array.init n (fun _ -> Prng.Rng.bool rng) in
  let scores = Array.init n (fun _ -> Prng.Rng.float rng) in
  let d = C.brier_decomposition ~truth scores in
  let brier = C.brier_score ~truth scores in
  d.C.reliability_term >= 0. && d.C.resolution >= 0.
  && d.C.uncertainty >= 0. && d.C.uncertainty <= 0.25 +. 1e-12
  (* Brier >= REL - RES + UNC - (small slack): binning only removes
     within-bin variance, so the decomposed value lower-bounds Brier up
     to numerical slack *)
  && brier +. 1e-9 >= d.C.reliability_term -. d.C.resolution +. d.C.uncertainty -. 0.1

let prop_ece_bounds seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 50 in
  let truth = Array.init n (fun i -> i mod 2 = 0) in
  let scores = Array.init n (fun _ -> Prng.Rng.float rng) in
  let ece = C.expected_calibration_error ~truth scores in
  let mce = C.maximum_calibration_error ~truth scores in
  ece >= 0. && mce >= ece -. 1e-12 && mce <= 1. +. 1e-12

(* ---------- future-work studies (smoke + shape) ---------- *)

let test_indicator_study_shapes () =
  let auc, acc, mcc =
    Experiment.Future_work.indicator_study ~reps:1 ~seed:71 ~dataset_size:200 ()
  in
  List.iter
    (fun fig ->
      match fig.Experiment.Sweep.series with
      | [ s ] ->
          (* lambda = 0 weakly best for every indicator *)
          let at0 = s.Experiment.Sweep.means.(0) in
          Array.iter
            (fun v ->
              Alcotest.(check bool)
                (fig.Experiment.Sweep.ylabel ^ ": hard best")
                true (at0 >= v -. 1e-9))
            s.Experiment.Sweep.means
      | _ -> Alcotest.fail "expected one series")
    [ auc; acc; mcc ]

let test_auc_consistency_oracle_dominates () =
  let fig =
    Experiment.Future_work.auc_consistency_study ~reps:3 ~seed:72 ~ns:[ 80; 300 ]
      ~m:60 ()
  in
  match fig.Experiment.Sweep.series with
  | [ hard; _soft; oracle ] ->
      (* the oracle AUC is (weakly) the ceiling for the hard criterion *)
      Array.iteri
        (fun i o ->
          Alcotest.(check bool) "oracle >= hard - noise" true
            (o >= hard.Experiment.Sweep.means.(i) -. 0.05))
        oracle.Experiment.Sweep.means
  | _ -> Alcotest.fail "expected 3 series"

let test_calibration_study_soft_has_no_resolution () =
  let fig =
    Experiment.Future_work.calibration_study ~reps:3 ~seed:73 ~ns:[ 100; 400 ]
      ~m:80 ()
  in
  match fig.Experiment.Sweep.series with
  | [ brier_hard; brier_soft; res_hard; res_soft ] ->
      Array.iteri
        (fun i bh ->
          Alcotest.(check bool) "hard brier <= soft brier" true
            (bh <= brier_soft.Experiment.Sweep.means.(i) +. 1e-9);
          Alcotest.(check bool) "hard resolution > soft resolution" true
            (res_hard.Experiment.Sweep.means.(i)
             > res_soft.Experiment.Sweep.means.(i) -. 1e-9))
        brier_hard.Experiment.Sweep.means;
      (* soft(5) collapses to a near-constant: essentially zero resolution *)
      Array.iter
        (fun v ->
          Alcotest.(check bool) "soft resolution ~ 0" true (v < 0.01))
        res_soft.Experiment.Sweep.means
  | _ -> Alcotest.fail "expected 4 series"

let suite =
  ( "wave6",
    [
      case "reliability: single bin" test_reliability_perfect;
      case "reliability: binning" test_reliability_bins;
      case "calibration guards" test_calibration_guards;
      case "brier known values" test_brier_known;
      case "decomposition: constant forecast" test_brier_decomposition_constant_forecast;
      case "decomposition: perfect forecast" test_brier_decomposition_perfect_forecast;
      qprop "decomposition: term bounds" prop_brier_identity;
      qprop "ece/mce bounds" prop_ece_bounds;
      case "future: indicators ordered" test_indicator_study_shapes;
      case "future: oracle AUC ceiling" test_auc_consistency_oracle_dominates;
      case "future: soft has no resolution" test_calibration_study_soft_has_no_resolution;
    ] )
