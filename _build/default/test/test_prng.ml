(* PRNG and distribution tests.  Statistical checks use fixed seeds and
   generous tolerances, so they are deterministic. *)

open Test_util
module Rng = Prng.Rng
module Dist = Prng.Distributions

let test_splitmix_deterministic () =
  let a = Prng.Splitmix64.of_int 42 and b = Prng.Splitmix64.of_int 42 in
  for _ = 1 to 10 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix64.next a) (Prng.Splitmix64.next b)
  done

let test_splitmix_mix_nontrivial () =
  Alcotest.(check bool) "mix changes value" true
    (Prng.Splitmix64.mix 1L <> 1L);
  Alcotest.(check bool) "derive separates streams" true
    (Prng.Splitmix64.derive 7L 0 <> Prng.Splitmix64.derive 7L 1)

let test_xoshiro_deterministic () =
  let a = Prng.Xoshiro256.of_int 1 and b = Prng.Xoshiro256.of_int 1 in
  for _ = 1 to 20 do
    Alcotest.(check int64) "same stream" (Prng.Xoshiro256.next a) (Prng.Xoshiro256.next b)
  done;
  let c = Prng.Xoshiro256.of_int 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.Xoshiro256.next (Prng.Xoshiro256.of_int 1) <> Prng.Xoshiro256.next c)

let test_xoshiro_copy_and_split () =
  let a = Prng.Xoshiro256.of_int 3 in
  let b = Prng.Xoshiro256.copy a in
  Alcotest.(check int64) "copy replays" (Prng.Xoshiro256.next a) (Prng.Xoshiro256.next b);
  let c = Prng.Xoshiro256.of_int 3 in
  let d = Prng.Xoshiro256.split c in
  Alcotest.(check bool) "split stream differs" true
    (Prng.Xoshiro256.next c <> Prng.Xoshiro256.next d)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_uniform_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng (-2.) 3. in
    if x < -2. || x >= 3. then Alcotest.failf "uniform out of range: %g" x
  done;
  check_raises_invalid "empty interval" (fun () -> ignore (Rng.uniform rng 1. 0.))

let test_rng_int_range_and_bias () =
  let rng = Rng.create 7 in
  let counts = Array.make 5 0 in
  for _ = 1 to 50_000 do
    let k = Rng.int rng 5 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then
        Alcotest.failf "bucket %d count %d outside [9000,11000]" i c)
    counts;
  check_raises_invalid "non-positive bound" (fun () -> ignore (Rng.int rng 0))

let test_rng_bernoulli () =
  let rng = Rng.create 8 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 50_000. in
  check_float ~tol:0.02 "bernoulli rate" 0.3 p;
  check_raises_invalid "bad p" (fun () -> ignore (Rng.bernoulli rng 1.5))

let test_permutation () =
  let rng = Rng.create 9 in
  let p = Rng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all (fun b -> b) seen)

let test_sample_without_replacement () =
  let rng = Rng.create 10 in
  let s = Rng.sample_without_replacement rng 10 50 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate draw"
  done;
  Array.iter (fun v -> if v < 0 || v >= 50 then Alcotest.fail "out of range") s;
  check_raises_invalid "k > n" (fun () ->
      ignore (Rng.sample_without_replacement rng 51 50));
  Alcotest.(check int) "k = 0 ok" 0
    (Array.length (Rng.sample_without_replacement rng 0 5))

let test_substream_independence () =
  let master = Rng.create 11 in
  let s0 = Rng.substream master 0 and s0' = Rng.substream master 0 in
  Alcotest.(check int64) "substream reproducible" (Rng.int64 s0) (Rng.int64 s0');
  let s1 = Rng.substream master 1 in
  Alcotest.(check bool) "substreams differ" true
    (Rng.int64 (Rng.substream master 0) <> Rng.int64 s1)

let test_choose () =
  let rng = Rng.create 12 in
  let v = Rng.choose rng [| 42 |] in
  Alcotest.(check int) "singleton" 42 v;
  check_raises_invalid "empty" (fun () -> ignore (Rng.choose rng [||]))

(* ---------- distributions ---------- *)

let moments n f =
  let acc = Stats.Running.create () in
  for _ = 1 to n do
    Stats.Running.add acc (f ())
  done;
  (Stats.Running.mean acc, Stats.Running.variance acc)

let test_standard_normal_moments () =
  let rng = Rng.create 21 in
  let mean, var = moments 100_000 (fun () -> Dist.standard_normal rng) in
  check_float ~tol:0.02 "mean ~ 0" 0. mean;
  check_float ~tol:0.03 "variance ~ 1" 1. var

let test_normal_params () =
  let rng = Rng.create 22 in
  let mean, var = moments 100_000 (fun () -> Dist.normal rng ~mean:3. ~std:2.) in
  check_float ~tol:0.05 "mean" 3. mean;
  check_float ~tol:0.15 "variance" 4. var;
  check_raises_invalid "negative std" (fun () ->
      ignore (Dist.normal rng ~mean:0. ~std:(-1.)))

let test_exponential () =
  let rng = Rng.create 23 in
  let mean, _ = moments 100_000 (fun () -> Dist.exponential rng ~rate:2.) in
  check_float ~tol:0.02 "mean = 1/rate" 0.5 mean;
  check_raises_invalid "bad rate" (fun () -> ignore (Dist.exponential rng ~rate:0.))

let test_binomial () =
  let rng = Rng.create 24 in
  let mean, var =
    moments 20_000 (fun () -> float_of_int (Dist.binomial rng ~n:10 ~p:0.4))
  in
  check_float ~tol:0.1 "mean = np" 4. mean;
  check_float ~tol:0.15 "var = np(1-p)" 2.4 var;
  Alcotest.(check int) "n=0" 0 (Dist.binomial rng ~n:0 ~p:0.5)

let test_categorical () =
  let rng = Rng.create 25 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let k = Dist.categorical rng [| 1.; 2.; 1. |] in
    counts.(k) <- counts.(k) + 1
  done;
  check_float ~tol:0.03 "middle weight" 0.5
    (float_of_int counts.(1) /. 30_000.);
  check_raises_invalid "negative weight" (fun () ->
      ignore (Dist.categorical rng [| 1.; -1. |]));
  check_raises_invalid "all zero" (fun () -> ignore (Dist.categorical rng [| 0.; 0. |]))

let test_mvn_moments () =
  let rng = Rng.create 26 in
  let cov = Linalg.Mat.of_arrays [| [| 2.; 0.5 |]; [| 0.5; 1. |] |] in
  let mvn = Dist.mvn_make ~mean:[| 1.; -1. |] ~cov in
  Alcotest.(check int) "dim" 2 (Dist.mvn_dim mvn);
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Dist.mvn_sample rng mvn) in
  let col k = Array.map (fun x -> x.(k)) xs in
  check_float ~tol:0.03 "mean 0" 1. (Stats.Descriptive.mean (col 0));
  check_float ~tol:0.03 "mean 1" (-1.) (Stats.Descriptive.mean (col 1));
  check_float ~tol:0.06 "var 0" 2. (Stats.Descriptive.variance (col 0));
  check_float ~tol:0.04 "cov" 0.5 (Stats.Descriptive.covariance (col 0) (col 1))

let test_truncated_mvn_in_unit_box () =
  let rng = Rng.create 27 in
  let mvn =
    Dist.mvn_make ~mean:(Linalg.Vec.create 3 0.5)
      ~cov:(Linalg.Mat.init 3 3 (fun i j -> if i = j then 0.5 else 0.1))
  in
  for _ = 1 to 2_000 do
    let x = Dist.truncated_mvn_sample rng mvn in
    Array.iter
      (fun v -> if v < 0. || v > 1. then Alcotest.failf "outside [0,1]: %g" v)
      x
  done

let test_mvn_dim_mismatch () =
  check_raises_invalid "mean/cov mismatch" (fun () ->
      ignore (Dist.mvn_make ~mean:[| 0. |] ~cov:(Linalg.Mat.eye 2)))

let suite =
  ( "prng",
    [
      case "splitmix deterministic" test_splitmix_deterministic;
      case "splitmix mix/derive" test_splitmix_mix_nontrivial;
      case "xoshiro deterministic" test_xoshiro_deterministic;
      case "xoshiro copy/split" test_xoshiro_copy_and_split;
      case "float in [0,1)" test_rng_float_range;
      case "uniform range" test_rng_uniform_range;
      case "int unbiased" test_rng_int_range_and_bias;
      case "bernoulli rate" test_rng_bernoulli;
      case "permutation valid" test_permutation;
      case "sampling without replacement" test_sample_without_replacement;
      case "substream independence" test_substream_independence;
      case "choose" test_choose;
      case "standard normal moments" test_standard_normal_moments;
      case "normal with parameters" test_normal_params;
      case "exponential mean" test_exponential;
      case "binomial moments" test_binomial;
      case "categorical frequencies" test_categorical;
      case "mvn moments" test_mvn_moments;
      case "truncated mvn in unit box" test_truncated_mvn_in_unit_box;
      case "mvn dimension guard" test_mvn_dim_mismatch;
    ] )
