(* Cross-cutting invariance properties of the solvers: permutation
   equivariance, weight-scale invariance, bandwidth limits, and the
   lambda-path / direct-solver consistency. *)

open Test_util
module P = Gssl.Problem
module Vec = Linalg.Vec
module Mat = Linalg.Mat

let build_problem points labels =
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels

let random_data rng n m =
  let points =
    Array.init (n + m) (fun _ ->
        [| Prng.Rng.uniform rng 0. 2.; Prng.Rng.uniform rng 0. 2. |])
  in
  let labels = Array.init n (fun _ -> Prng.Rng.float rng) in
  (points, labels)

let prop_hard_permutation_equivariant seed =
  (* permuting the unlabeled points permutes the predictions *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 2 + Prng.Rng.int rng 6 in
  let points, labels = random_data rng n m in
  let base = Gssl.Hard.solve (build_problem points labels) in
  let perm = Prng.Rng.permutation rng m in
  let permuted_points =
    Array.append (Array.sub points 0 n)
      (Array.init m (fun a -> points.(n + perm.(a))))
  in
  let permuted = Gssl.Hard.solve (build_problem permuted_points labels) in
  let ok = ref true in
  for a = 0 to m - 1 do
    if abs_float (permuted.(a) -. base.(perm.(a))) > 1e-8 then ok := false
  done;
  !ok

let prop_hard_weight_scale_invariant seed =
  (* the harmonic solution is invariant to scaling all weights by c > 0 *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let points, labels = random_data rng n m in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  let c = 0.1 +. (3. *. Prng.Rng.float rng) in
  let p1 = P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels in
  let p2 =
    P.make ~graph:(Graph.Weighted_graph.of_dense (Mat.scale c w)) ~labels
  in
  Vec.approx_equal ~tol:1e-7 (Gssl.Hard.solve p1) (Gssl.Hard.solve p2)

let prop_soft_scale_lambda_tradeoff seed =
  (* scaling weights by c equals scaling lambda by c:
     soft(lambda, c*W) = soft(c*lambda, W) *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let points, labels = random_data rng n m in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  let c = 0.2 +. (2. *. Prng.Rng.float rng) in
  let lambda = 0.05 +. Prng.Rng.float rng in
  let p1 =
    P.make ~graph:(Graph.Weighted_graph.of_dense (Mat.scale c w)) ~labels
  in
  let p2 = P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels in
  Vec.approx_equal ~tol:1e-7
    (Gssl.Soft.solve ~lambda p1)
    (Gssl.Soft.solve ~lambda:(c *. lambda) p2)

let prop_nw_wide_bandwidth_is_mean seed =
  (* bandwidth -> infinity: every weight -> 1, NW -> label mean *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 8 in
  let labeled =
    Array.init n (fun _ -> (random_vec rng 2, Prng.Rng.float rng))
  in
  let q =
    Gssl.Nadaraya_watson.predict ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1e6
      ~labeled (random_vec rng 2)
  in
  let mean = Vec.mean (Array.map snd labeled) in
  abs_float (q -. mean) < 1e-6

let prop_hard_wide_bandwidth_is_mean seed =
  (* same limit for the hard criterion (the toy example's mechanism) *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let points, labels = random_data rng n m in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1e6 points
  in
  let p = P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels in
  let scores = Gssl.Hard.solve p in
  let mean = Vec.mean labels in
  Array.for_all (fun s -> abs_float (s -. mean) < 1e-4) scores

let prop_lambda_path_matches_direct seed =
  (* every point on the path equals a direct solve at that lambda *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 5 and m = 1 + Prng.Rng.int rng 5 in
  let points, labels = random_data rng n m in
  let p = build_problem points labels in
  let grid = [| 0.; 0.03; 0.7; 12. |] in
  let path = Gssl.Lambda_path.compute ~lambdas:grid p in
  Array.for_all
    (fun pt ->
      let direct =
        if pt.Gssl.Lambda_path.lambda = 0. then Gssl.Hard.solve p
        else Gssl.Soft.solve ~lambda:pt.Gssl.Lambda_path.lambda p
      in
      Vec.approx_equal ~tol:1e-9 direct pt.Gssl.Lambda_path.scores)
    path.Gssl.Lambda_path.points

let prop_estimator_affine_labels seed =
  (* hard criterion commutes with affine relabeling y -> a y + b *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 and m = 1 + Prng.Rng.int rng 6 in
  let points, labels = random_data rng n m in
  let a = 0.5 +. Prng.Rng.float rng and b = Prng.Rng.uniform rng (-1.) 1. in
  let p1 = build_problem points labels in
  let p2 =
    build_problem points (Array.map (fun y -> (a *. y) +. b) labels)
  in
  let s1 = Gssl.Hard.solve p1 and s2 = Gssl.Hard.solve p2 in
  Vec.approx_equal ~tol:1e-6 (Array.map (fun s -> (a *. s) +. b) s1) s2

let prop_binomial_is_bernoulli_sum seed =
  let rng1 = Prng.Rng.create seed and rng2 = Prng.Rng.create seed in
  let n = Prng.Rng.int (Prng.Rng.create (seed + 1)) 30 in
  let p = 0.3 in
  let b = Prng.Distributions.binomial rng1 ~n ~p in
  let s = ref 0 in
  for _ = 1 to n do
    if Prng.Rng.bernoulli rng2 p then incr s
  done;
  b = !s

let prop_coil_subsample_labels_match seed =
  (* the binary label always equals class < 3, under any noise level *)
  let rng = Prng.Rng.create seed in
  let noise = Prng.Rng.float rng *. 0.1 in
  let data = Dataset.Coil.generate ~noise (Prng.Rng.create (seed + 1)) in
  Array.for_all
    (fun img ->
      Dataset.Coil.binary_label img = (img.Dataset.Coil.class_id < 3))
    data.Dataset.Coil.images

let prop_incremental_full_reveal_recovers_labels seed =
  (* reveal every unlabeled vertex: nothing remains and labels grow to
     the full graph *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 4 and m = 1 + Prng.Rng.int rng 4 in
  let points, labels = random_data rng n m in
  let p = build_problem points labels in
  let solver = Gssl.Incremental.create p in
  Array.iter
    (fun v -> Gssl.Incremental.reveal solver ~vertex:v ~label:0.5)
    (Gssl.Incremental.remaining solver);
  Gssl.Incremental.n_remaining solver = 0
  && Array.length (Gssl.Incremental.labels solver) = n + m

let suite =
  ( "invariances",
    [
      qprop "hard: permutation equivariant" prop_hard_permutation_equivariant;
      qprop "hard: weight-scale invariant" prop_hard_weight_scale_invariant;
      qprop "soft: cW <-> c*lambda" prop_soft_scale_lambda_tradeoff;
      qprop "nw: wide bandwidth -> mean" prop_nw_wide_bandwidth_is_mean;
      qprop ~count:50 "hard: wide bandwidth -> mean" prop_hard_wide_bandwidth_is_mean;
      qprop ~count:50 "lambda path = direct solves" prop_lambda_path_matches_direct;
      qprop "hard: affine label equivariance" prop_estimator_affine_labels;
      qprop "binomial = bernoulli sum" prop_binomial_is_bernoulli_sum;
      qprop ~count:20 "coil: binary rule invariant" prop_coil_subsample_labels_match;
      qprop ~count:50 "incremental: full reveal" prop_incremental_full_reveal_recovers_labels;
    ] )
