(* LU, Cholesky, QR, eigen and block-inverse tests. *)

open Test_util
module Mat = Linalg.Mat
module Vec = Linalg.Vec
module Lu = Linalg.Lu
module Cholesky = Linalg.Cholesky
module Qr = Linalg.Qr
module Eigen = Linalg.Eigen

(* ---------- LU ---------- *)

let test_lu_solve_known () =
  (* 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3 *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  check_vec ~tol:1e-12 "2x2 solve" [| 1.; 3. |] (Lu.solve a [| 5.; 10. |])

let test_lu_needs_pivoting () =
  (* zero leading pivot forces a row swap *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_vec ~tol:1e-12 "permutation solve" [| 2.; 1. |] (Lu.solve a [| 1.; 2. |])

let test_lu_det () =
  check_float "det identity" 1. (Lu.det (Mat.eye 4));
  check_float "det diag" 24. (Lu.det (Mat.diag [| 1.; 2.; 3.; 4. |]));
  check_float "det swap sign" (-1.)
    (Lu.det (Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |]));
  check_float "det singular" 0.
    (Lu.det (Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |]))

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "is_singular" true (Lu.is_singular a);
  (match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_raises_invalid "not square" (fun () -> Lu.factor (Mat.zeros 2 3))

let test_lu_inverse () =
  let a = Mat.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  check_mat ~tol:1e-12 "inverse"
    (Mat.of_arrays [| [| 0.6; -0.7 |]; [| -0.2; 0.4 |] |])
    (Lu.inverse a)

let prop_lu_reconstruct seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 10 in
  let a = random_mat rng n n in
  match Lu.factor a with
  | exception Lu.Singular _ -> true (* rare for random matrices; skip *)
  | { lu; perm; _ } ->
      let l = Mat.init n n (fun i j -> if i = j then 1. else if j < i then Mat.get lu i j else 0.) in
      let u = Mat.init n n (fun i j -> if j >= i then Mat.get lu i j else 0.) in
      let pa = Mat.init n n (fun i j -> Mat.get a perm.(i) j) in
      Mat.approx_equal ~tol:1e-7 pa (Mat.mm l u)

let prop_lu_solve_residual seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 10 in
  let a = random_mat rng n n and b = random_vec rng n in
  match Lu.solve a b with
  | exception Lu.Singular _ -> true
  | x -> Vec.norm_inf (Vec.sub (Mat.mv a x) b) < 1e-6

let prop_inverse_identity seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng n n in
  match Lu.inverse a with
  | exception Lu.Singular _ -> true
  | ainv -> Mat.approx_equal ~tol:1e-6 (Mat.eye n) (Mat.mm a ainv)

let prop_det_product seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 6 in
  let a = random_mat rng n n and b = random_mat rng n n in
  let lhs = Lu.det (Mat.mm a b) and rhs = Lu.det a *. Lu.det b in
  abs_float (lhs -. rhs) <= 1e-6 *. (1. +. abs_float rhs)

(* ---------- Cholesky ---------- *)

let test_cholesky_known () =
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let l = Cholesky.factor a in
  check_mat ~tol:1e-12 "L L^T = A" a (Mat.mm l (Mat.transpose l));
  check_float ~tol:1e-12 "lower triangular" 0. (Mat.get l 0 1)

let test_cholesky_not_pd () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  (match Cholesky.factor a with
  | exception Cholesky.Not_positive_definite _ -> ()
  | _ -> Alcotest.fail "expected Not_positive_definite");
  Alcotest.(check bool) "is_spd false" false (Cholesky.is_spd a);
  Alcotest.(check bool) "is_spd true" true (Cholesky.is_spd (Mat.eye 3))

let test_cholesky_log_det () =
  let a = Mat.diag [| 2.; 3.; 4. |] in
  check_float ~tol:1e-12 "log_det" (log 24.) (Cholesky.log_det a)

let prop_cholesky_solve seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 10 in
  let a = random_spd rng n and b = random_vec rng n in
  let x = Cholesky.solve a b in
  Vec.norm_inf (Vec.sub (Mat.mv a x) b) < 1e-6

let prop_cholesky_matches_lu seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 10 in
  let a = random_spd rng n and b = random_vec rng n in
  Vec.approx_equal ~tol:1e-6 (Cholesky.solve a b) (Lu.solve a b)

let prop_cholesky_reconstruct seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 10 in
  let a = random_spd rng n in
  let l = Cholesky.factor a in
  Mat.approx_equal ~tol:1e-6 a (Mat.mm l (Mat.transpose l))

(* ---------- QR ---------- *)

let test_qr_known () =
  let a = Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.; 0. |] |] in
  let x = Qr.solve_least_squares a [| 3.; 4.; 7. |] in
  check_vec ~tol:1e-12 "trivial least squares" [| 3.; 4. |] x

let test_qr_rank_deficient () =
  let a = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |]; [| 1.; 1. |] |] in
  match Qr.solve_least_squares a [| 1.; 2.; 3. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on rank-deficient input"

let test_qr_shape_guard () =
  check_raises_invalid "rows < cols" (fun () -> Qr.factor (Mat.zeros 2 3))

let prop_qr_reconstruct seed =
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 6 in
  let r = c + Prng.Rng.int rng 6 in
  let a = random_mat rng r c in
  let f = Qr.factor a in
  Mat.approx_equal ~tol:1e-7 a (Mat.mm (Qr.q f) (Qr.r f))

let prop_qr_orthonormal seed =
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 6 in
  let r = c + Prng.Rng.int rng 6 in
  let a = random_mat rng r c in
  let q = Qr.q (Qr.factor a) in
  Mat.approx_equal ~tol:1e-8 (Mat.eye c) (Mat.gram q)

let prop_qr_least_squares_normal_equations seed =
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 5 in
  let r = c + 1 + Prng.Rng.int rng 6 in
  let a = random_mat rng r c and b = random_vec rng r in
  match Qr.solve_least_squares a b with
  | exception Failure _ -> true
  | x ->
      (* residual must be orthogonal to the column space: A^T (Ax - b) = 0 *)
      let resid = Vec.sub (Mat.mv a x) b in
      Vec.norm_inf (Mat.tmv a resid) < 1e-6

let prop_qr_solve_matches_lu seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng n n and b = random_vec rng n in
  match (Qr.solve a b, Lu.solve a b) with
  | exception _ -> true
  | x_qr, x_lu -> Vec.approx_equal ~tol:1e-5 x_qr x_lu

(* ---------- Eigen ---------- *)

let test_jacobi_diagonal () =
  let { Eigen.values; _ } = Eigen.jacobi (Mat.diag [| 3.; 1.; 2. |]) in
  check_vec ~tol:1e-10 "sorted eigenvalues" [| 1.; 2.; 3. |] values

let test_jacobi_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3 *)
  let { Eigen.values; vectors } =
    Eigen.jacobi (Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |])
  in
  check_vec ~tol:1e-10 "eigenvalues" [| 1.; 3. |] values;
  (* eigenvector for 3 is (1,1)/sqrt2 up to sign *)
  let v = Mat.col vectors 1 in
  check_float ~tol:1e-10 "eigenvector ratio" 1. (v.(0) /. v.(1))

let test_power_iteration () =
  let a = Mat.diag [| 1.; 5.; 2. |] in
  let lambda, v = Eigen.power_iteration a [| 1.; 1.; 1. |] in
  check_float ~tol:1e-8 "dominant eigenvalue" 5. lambda;
  check_float ~tol:1e-4 "dominant direction" 1. (abs_float v.(1));
  (match Eigen.power_iteration a (Vec.zeros 3) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on zero start")

let test_gershgorin () =
  let a = Mat.of_arrays [| [| 2.; -1. |]; [| -1.; 2. |] |] in
  Alcotest.(check bool) "bound >= spectral radius" true
    (Eigen.spectral_radius_bound a >= 3. -. 1e-12)

let prop_eigen_reconstruct seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 7 in
  let a = random_symmetric rng n in
  let { Eigen.values; vectors } = Eigen.jacobi a in
  let lam = Mat.diag values in
  let reconstructed = Mat.mm vectors (Mat.mm lam (Mat.transpose vectors)) in
  Mat.approx_equal ~tol:1e-6 a reconstructed

let prop_eigen_orthogonal seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 7 in
  let a = random_symmetric rng n in
  let { Eigen.vectors; _ } = Eigen.jacobi a in
  Mat.approx_equal ~tol:1e-8 (Mat.eye n) (Mat.gram vectors)

let prop_eigen_trace seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 7 in
  let a = random_symmetric rng n in
  let { Eigen.values; _ } = Eigen.jacobi a in
  abs_float (Vec.sum values -. Mat.trace a) < 1e-7 *. (1. +. abs_float (Mat.trace a))

let prop_spd_has_positive_spectrum seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 7 in
  let a = random_spd rng n in
  let { Eigen.values; _ } = Eigen.jacobi a in
  Array.for_all (fun l -> l > 0.) values && Eigen.is_positive_semidefinite a

(* ---------- Block inverse ---------- *)

let prop_block_inverse_matches_direct seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 in
  let k = 1 + Prng.Rng.int rng (n - 1) in
  let a = random_spd rng n in
  (* SPD guarantees all the blocks/Schur complements are invertible *)
  let p = Linalg.Block.partition a k in
  let inv_blocks = Linalg.Block.assemble (Linalg.Block.block_inverse p) in
  Mat.approx_equal ~tol:1e-5 (Lu.inverse a) inv_blocks

let prop_lower_left_of_inverse seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 6 in
  let k = 1 + Prng.Rng.int rng (n - 1) in
  let a = random_spd rng n in
  let p = Linalg.Block.partition a k in
  let direct = Lu.inverse a in
  let _, _, direct21, _ = Mat.split4 direct k in
  Mat.approx_equal ~tol:1e-5 direct21 (Linalg.Block.lower_left_of_inverse p)

let suite =
  ( "decompositions",
    [
      case "lu: known 2x2" test_lu_solve_known;
      case "lu: pivoting required" test_lu_needs_pivoting;
      case "lu: determinants" test_lu_det;
      case "lu: singular detection" test_lu_singular;
      case "lu: known inverse" test_lu_inverse;
      qprop "lu: PA = LU" prop_lu_reconstruct;
      qprop "lu: solve residual small" prop_lu_solve_residual;
      qprop "lu: A A^-1 = I" prop_inverse_identity;
      qprop "lu: det(AB) = det A det B" prop_det_product;
      case "cholesky: known factor" test_cholesky_known;
      case "cholesky: rejects non-PD" test_cholesky_not_pd;
      case "cholesky: log_det" test_cholesky_log_det;
      qprop "cholesky: solve residual small" prop_cholesky_solve;
      qprop "cholesky: matches LU" prop_cholesky_matches_lu;
      qprop "cholesky: A = L L^T" prop_cholesky_reconstruct;
      case "qr: trivial least squares" test_qr_known;
      case "qr: rank-deficient fails" test_qr_rank_deficient;
      case "qr: shape guard" test_qr_shape_guard;
      qprop "qr: A = QR" prop_qr_reconstruct;
      qprop "qr: Q^T Q = I" prop_qr_orthonormal;
      qprop "qr: normal equations hold" prop_qr_least_squares_normal_equations;
      qprop "qr: square solve matches LU" prop_qr_solve_matches_lu;
      case "eigen: diagonal matrix" test_jacobi_diagonal;
      case "eigen: known 2x2" test_jacobi_known_2x2;
      case "eigen: power iteration" test_power_iteration;
      case "eigen: Gershgorin bound" test_gershgorin;
      qprop "eigen: V D V^T = A" prop_eigen_reconstruct;
      qprop "eigen: orthogonal vectors" prop_eigen_orthogonal;
      qprop "eigen: trace = sum of eigenvalues" prop_eigen_trace;
      qprop "eigen: SPD spectrum positive" prop_spd_has_positive_spectrum;
      qprop "block: inverse matches direct" prop_block_inverse_matches_direct;
      qprop "block: (2,1) of inverse" prop_lower_left_of_inverse;
    ] )
