(* Tests for the second-wave numerics: SVD, rank-one updates, PCA,
   Nystrom approximation. *)

open Test_util
module Mat = Linalg.Mat
module Vec = Linalg.Vec
module Svd = Linalg.Svd
module R1 = Linalg.Rank_one
module Pca = Stats.Pca

(* ---------- SVD ---------- *)

let test_svd_diagonal () =
  let a = Mat.diag [| 3.; 1.; 2. |] in
  let { Svd.s; _ } = Svd.decompose a in
  check_vec ~tol:1e-10 "singular values sorted" [| 3.; 2.; 1. |] s

let test_svd_rank_deficient () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |] in
  let d = Svd.decompose a in
  Alcotest.(check int) "rank 1" 1 (Svd.rank d);
  check_float "second sv ~ 0" 0. ~tol:1e-8 d.Svd.s.(1);
  Alcotest.(check bool) "condition infinite" true
    (Float.is_integer (Svd.condition_number d) = false
    || Svd.condition_number d = infinity
    || Svd.condition_number d > 1e12)

let test_svd_shape_guard () =
  check_raises_invalid "m < n" (fun () -> ignore (Svd.decompose (Mat.zeros 2 3)))

let prop_svd_reconstruct seed =
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 6 in
  let r = c + Prng.Rng.int rng 6 in
  let a = random_mat rng r c in
  Mat.approx_equal ~tol:1e-7 a (Svd.reconstruct (Svd.decompose a))

let prop_svd_orthogonality seed =
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 6 in
  let r = c + Prng.Rng.int rng 6 in
  let a = random_mat rng r c in
  let { Svd.u; v; _ } = Svd.decompose a in
  Mat.approx_equal ~tol:1e-8 (Mat.eye c) (Mat.gram u)
  && Mat.approx_equal ~tol:1e-8 (Mat.eye c) (Mat.gram v)

let prop_svd_values_descending seed =
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 6 in
  let r = c + Prng.Rng.int rng 6 in
  let { Svd.s; _ } = Svd.decompose (random_mat rng r c) in
  let ok = ref true in
  for i = 1 to Array.length s - 1 do
    if s.(i) > s.(i - 1) +. 1e-12 then ok := false;
    if s.(i) < 0. then ok := false
  done;
  !ok

let prop_svd_matches_eigen seed =
  (* singular values of A = sqrt of eigenvalues of A^T A *)
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 5 in
  let a = random_mat rng (n + 2) n in
  let { Svd.s; _ } = Svd.decompose a in
  let eigs = Linalg.Eigen.eigenvalues (Mat.gram a) in
  let ok = ref true in
  for i = 0 to n - 1 do
    let expected = sqrt (Stdlib.max 0. eigs.(n - 1 - i)) in
    if abs_float (s.(i) -. expected) > 1e-6 *. (1. +. expected) then ok := false
  done;
  !ok

let prop_pseudo_inverse_properties seed =
  (* Moore-Penrose: A A+ A = A *)
  let rng = Prng.Rng.create seed in
  let c = 1 + Prng.Rng.int rng 5 in
  let r = c + Prng.Rng.int rng 5 in
  let a = random_mat rng r c in
  let pinv = Svd.pseudo_inverse (Svd.decompose a) in
  Mat.approx_equal ~tol:1e-6 a (Mat.mm a (Mat.mm pinv a))

let test_pseudo_inverse_of_invertible () =
  let a = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  check_mat ~tol:1e-10 "pinv = inverse"
    (Mat.of_arrays [| [| 0.5; 0. |]; [| 0.; 0.25 |] |])
    (Svd.pseudo_inverse (Svd.decompose a))

(* ---------- rank-one updates ---------- *)

let prop_sherman_morrison seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_spd rng n in
  let u = random_vec rng n and v = random_vec rng n in
  let a_inv = Linalg.Lu.inverse a in
  match R1.sherman_morrison a_inv u v with
  | exception Failure _ -> true (* singular update: allowed *)
  | updated ->
      let direct = Mat.add a (Mat.outer u v) in
      (match Linalg.Lu.inverse direct with
      | exception Linalg.Lu.Singular _ -> true
      | expected -> Mat.approx_equal ~tol:1e-5 expected updated)

let prop_symmetric_update seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_spd rng n in
  let u = random_vec rng n in
  let c = 0.1 +. Prng.Rng.float rng in
  let updated = R1.symmetric_update (Linalg.Lu.inverse a) c u in
  let direct = Linalg.Lu.inverse (Mat.add a (Mat.scale c (Mat.outer u u))) in
  Mat.approx_equal ~tol:1e-5 direct updated

let test_sherman_morrison_guards () =
  let a_inv = Mat.eye 2 in
  check_raises_invalid "dim mismatch" (fun () ->
      ignore (R1.sherman_morrison a_inv [| 1. |] [| 1.; 2. |]));
  (* u v^T = -I on a 1-dim space makes A + uv^T singular *)
  let one = Mat.eye 1 in
  match R1.sherman_morrison one [| -1. |] [| 1. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on singular update"

let prop_delete_row_col seed =
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 7 in
  let a = random_spd rng n in
  let k = Prng.Rng.int rng n in
  let b = Linalg.Lu.inverse a in
  let reduced_inv = R1.delete_row_col b k in
  (* direct route: delete from A, invert *)
  let keep = Array.init (n - 1) (fun i -> if i < k then i else i + 1) in
  let a_red = Mat.init (n - 1) (n - 1) (fun i j -> Mat.get a keep.(i) keep.(j)) in
  Mat.approx_equal ~tol:1e-5 (Linalg.Lu.inverse a_red) reduced_inv

let test_delete_guards () =
  check_raises_invalid "bad index" (fun () ->
      ignore (R1.delete_row_col (Mat.eye 3) 3))

(* ---------- PCA ---------- *)

let test_pca_known_direction () =
  (* points along the x-axis: first component = (±1, 0) *)
  let points = [| [| -2.; 0. |]; [| -1.; 0. |]; [| 1.; 0. |]; [| 2.; 0. |] |] in
  let p = Pca.fit ~n_components:1 points in
  check_float ~tol:1e-10 "x-axis direction" 1.
    (abs_float (Mat.get p.Pca.components 0 0));
  check_float ~tol:1e-10 "no y component" 0. (Mat.get p.Pca.components 1 0);
  (* variance along x of (-2,-1,1,2) is 10/3 *)
  check_float ~tol:1e-10 "explained variance" (10. /. 3.)
    p.Pca.explained_variance.(0);
  check_float ~tol:1e-10 "all variance explained" 1.
    (Pca.explained_variance_ratio p).(0)

let test_pca_guards () =
  check_raises_invalid "one point" (fun () -> ignore (Pca.fit [| [| 1. |] |]));
  check_raises_invalid "ragged" (fun () ->
      ignore (Pca.fit [| [| 1. |]; [| 1.; 2. |] |]));
  check_raises_invalid "bad k" (fun () ->
      ignore (Pca.fit ~n_components:3 [| [| 1.; 2. |]; [| 3.; 4. |] |]))

let prop_pca_full_roundtrip seed =
  (* with all components kept, inverse_transform recovers the point *)
  let rng = Prng.Rng.create seed in
  let n = 3 + Prng.Rng.int rng 10 and d = 1 + Prng.Rng.int rng 4 in
  let points = Array.init n (fun _ -> random_vec rng d) in
  let p = Pca.fit points in
  Array.for_all
    (fun x ->
      Vec.approx_equal ~tol:1e-7 x (Pca.inverse_transform p (Pca.transform p x)))
    points

let prop_pca_scores_uncorrelated seed =
  (* transformed coordinates have diagonal covariance *)
  let rng = Prng.Rng.create seed in
  let n = 10 + Prng.Rng.int rng 20 in
  let points =
    Array.init n (fun _ ->
        let x = Prng.Rng.uniform rng (-2.) 2. in
        [| x; (0.5 *. x) +. Prng.Rng.uniform rng (-0.3) 0.3; Prng.Rng.uniform rng (-1.) 1. |])
  in
  let p = Pca.fit points in
  let scores = Pca.transform_many p points in
  let col k = Array.map (fun z -> z.(k)) scores in
  abs_float (Stats.Descriptive.covariance (col 0) (col 1)) < 1e-7
  && abs_float (Stats.Descriptive.covariance (col 0) (col 2)) < 1e-7

let prop_pca_variance_ordering seed =
  let rng = Prng.Rng.create seed in
  let n = 5 + Prng.Rng.int rng 15 and d = 2 + Prng.Rng.int rng 3 in
  let points = Array.init n (fun _ -> random_vec rng d) in
  let p = Pca.fit points in
  let ev = p.Pca.explained_variance in
  let ok = ref true in
  for i = 1 to Array.length ev - 1 do
    if ev.(i) > ev.(i - 1) +. 1e-10 then ok := false
  done;
  !ok && Vec.sum (Pca.explained_variance_ratio p) <= 1. +. 1e-9

(* ---------- Nystrom ---------- *)

let sample_points rng n d = Array.init n (fun _ -> random_vec rng d)

let test_nystrom_exact_with_all_landmarks () =
  (* l = n reproduces the kernel matrix exactly (W is PSD) *)
  let rng = Prng.Rng.create 61 in
  let points = sample_points rng 12 2 in
  let exact =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  let approx =
    Kernel.Nystrom.fit ~rng ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5
      ~landmarks:12 points
  in
  Alcotest.(check bool) "error tiny" true
    (Kernel.Nystrom.approximation_error approx exact < 1e-6)

let test_nystrom_guards () =
  let rng = Prng.Rng.create 62 in
  let points = sample_points rng 5 2 in
  check_raises_invalid "zero landmarks" (fun () ->
      ignore
        (Kernel.Nystrom.fit ~rng ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.
           ~landmarks:0 points));
  check_raises_invalid "too many landmarks" (fun () ->
      ignore
        (Kernel.Nystrom.fit ~rng ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.
           ~landmarks:6 points))

let prop_nystrom_multiply_matches_dense seed =
  let rng = Prng.Rng.create seed in
  let n = 4 + Prng.Rng.int rng 12 in
  let points = sample_points rng n 2 in
  let l = 1 + Prng.Rng.int rng n in
  let approx =
    Kernel.Nystrom.fit ~rng ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5
      ~landmarks:l points
  in
  let dense = Kernel.Nystrom.approx_dense approx in
  let x = random_vec rng n in
  Vec.approx_equal ~tol:1e-7 (Mat.mv dense x) (Kernel.Nystrom.multiply approx x)

let prop_nystrom_error_decreases seed =
  (* more landmarks cannot make the approximation (much) worse *)
  let rng = Prng.Rng.create seed in
  let n = 16 in
  let points = sample_points rng n 2 in
  let exact =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  let err l =
    let rng = Prng.Rng.create (seed + 1) in
    Kernel.Nystrom.approximation_error
      (Kernel.Nystrom.fit ~rng ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5
         ~landmarks:l points)
      exact
  in
  err 16 <= err 4 +. 1e-6

let suite =
  ( "numerics2",
    [
      case "svd: diagonal" test_svd_diagonal;
      case "svd: rank deficiency" test_svd_rank_deficient;
      case "svd: shape guard" test_svd_shape_guard;
      qprop "svd: U S V^T = A" prop_svd_reconstruct;
      qprop "svd: U, V orthonormal" prop_svd_orthogonality;
      qprop "svd: values descending" prop_svd_values_descending;
      qprop "svd: matches eigen of gram" prop_svd_matches_eigen;
      qprop "svd: A A+ A = A" prop_pseudo_inverse_properties;
      case "svd: pinv of invertible" test_pseudo_inverse_of_invertible;
      qprop "rank1: sherman-morrison" prop_sherman_morrison;
      qprop "rank1: symmetric update" prop_symmetric_update;
      case "rank1: guards" test_sherman_morrison_guards;
      qprop "rank1: delete row/col" prop_delete_row_col;
      case "rank1: delete guards" test_delete_guards;
      case "pca: known direction" test_pca_known_direction;
      case "pca: guards" test_pca_guards;
      qprop "pca: full roundtrip" prop_pca_full_roundtrip;
      qprop "pca: scores uncorrelated" prop_pca_scores_uncorrelated;
      qprop "pca: variance ordering" prop_pca_variance_ordering;
      case "nystrom: exact at l=n" test_nystrom_exact_with_all_landmarks;
      case "nystrom: guards" test_nystrom_guards;
      qprop "nystrom: multiply = dense" prop_nystrom_multiply_matches_dense;
      qprop ~count:30 "nystrom: error decreases in l" prop_nystrom_error_decreases;
    ] )
