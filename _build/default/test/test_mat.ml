open Test_util
module Mat = Linalg.Mat
module Vec = Linalg.Vec

let m23 = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]

let test_construction () =
  let a = Mat.create 2 3 1.5 in
  Alcotest.(check (pair int int)) "dims" (2, 3) (Mat.dims a);
  check_float "fill value" 1.5 (Mat.get a 1 2);
  check_mat "eye" (Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |] |]) (Mat.eye 2);
  check_mat "diag"
    (Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |])
    (Mat.diag [| 2.; 3. |]);
  check_raises_invalid "negative dims" (fun () -> Mat.create (-1) 2 0.)

let test_of_rows_cols () =
  check_mat "of_rows" m23 (Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]);
  check_mat "of_cols" m23
    (Mat.of_cols [| [| 1.; 4. |]; [| 2.; 5. |]; [| 3.; 6. |] |]);
  check_raises_invalid "ragged" (fun () -> Mat.of_rows [| [| 1. |]; [| 1.; 2. |] |]);
  check_raises_invalid "empty" (fun () -> Mat.of_rows [||])

let test_get_set () =
  let a = Mat.zeros 2 2 in
  Mat.set a 0 1 5.;
  check_float "set/get" 5. (Mat.get a 0 1);
  check_raises_invalid "get oob" (fun () -> Mat.get a 2 0);
  check_raises_invalid "set oob" (fun () -> Mat.set a 0 (-1) 1.)

let test_row_col () =
  check_vec "row" [| 4.; 5.; 6. |] (Mat.row m23 1);
  check_vec "col" [| 2.; 5. |] (Mat.col m23 1);
  check_vec "get_diag" [| 1.; 5. |] (Mat.get_diag m23);
  let a = Mat.zeros 2 3 in
  Mat.set_row a 0 [| 1.; 2.; 3. |];
  Mat.set_col a 0 [| 9.; 8. |];
  check_float "set_row survives set_col" 2. (Mat.get a 0 1);
  check_float "set_col" 8. (Mat.get a 1 0)

let test_add_sub_scale () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  check_mat "add" (Mat.of_arrays [| [| 6.; 8. |]; [| 10.; 12. |] |]) (Mat.add a b);
  check_mat "sub" (Mat.of_arrays [| [| -4.; -4. |]; [| -4.; -4. |] |]) (Mat.sub a b);
  check_mat "hadamard" (Mat.of_arrays [| [| 5.; 12. |]; [| 21.; 32. |] |])
    (Mat.hadamard a b);
  check_mat "scale" (Mat.of_arrays [| [| 2.; 4. |]; [| 6.; 8. |] |]) (Mat.scale 2. a);
  check_mat "shift identity"
    (Mat.of_arrays [| [| 3.; 2. |]; [| 3.; 6. |] |])
    (Mat.add_scaled_identity a 2.)

let test_mv_mm () =
  check_vec "mv" [| 14.; 32. |] (Mat.mv m23 [| 1.; 2.; 3. |]);
  check_vec "tmv" [| 9.; 12.; 15. |] (Mat.tmv m23 [| 1.; 2. |]);
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  check_mat "mm" (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |]) (Mat.mm a b);
  check_raises_invalid "mm mismatch" (fun () -> Mat.mm m23 m23);
  check_raises_invalid "mv mismatch" (fun () -> Mat.mv m23 [| 1. |])

let test_transpose_gram () =
  let t = Mat.transpose m23 in
  Alcotest.(check (pair int int)) "transpose dims" (3, 2) (Mat.dims t);
  check_float "transpose entry" 6. (Mat.get t 2 1);
  check_mat "gram = AtA" (Mat.mm t m23) (Mat.gram m23);
  check_mat "outer"
    (Mat.of_arrays [| [| 2.; 3. |]; [| 4.; 6. |] |])
    (Mat.outer [| 1.; 2. |] [| 2.; 3. |])

let test_reductions () =
  let a = Mat.of_arrays [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  check_float "trace" 5. (Mat.trace a);
  check_float "frobenius" (sqrt 30.) (Mat.frobenius_norm a);
  check_float "max_abs" 4. (Mat.max_abs a);
  check_vec "row_sums" [| -1.; 7. |] (Mat.row_sums a);
  check_vec "col_sums" [| 4.; 2. |] (Mat.col_sums a)

let test_quadratic_form_value () =
  (* recompute by hand: A x = (1*1 + -2*2, 3*1 + 4*2) = (-3, 11);
     x·Ax = 1*(-3) + 2*11 = 19 *)
  let a = Mat.of_arrays [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  check_float "quadratic form hand" 19. (Mat.quadratic_form a [| 1.; 2. |])

let test_symmetric () =
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric (Mat.eye 3));
  Alcotest.(check bool) "not symmetric" false
    (Mat.is_symmetric (Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |]));
  Alcotest.(check bool) "non-square" false (Mat.is_symmetric m23)

let test_blocks () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((i * 4) + j)) in
  let a11, a12, a21, a22 = Mat.split4 a 2 in
  check_mat "a11" (Mat.of_arrays [| [| 0.; 1. |]; [| 4.; 5. |] |]) a11;
  check_mat "a12" (Mat.of_arrays [| [| 2.; 3. |]; [| 6.; 7. |] |]) a12;
  check_mat "a21" (Mat.of_arrays [| [| 8.; 9. |]; [| 12.; 13. |] |]) a21;
  check_mat "a22" (Mat.of_arrays [| [| 10.; 11. |]; [| 14.; 15. |] |]) a22;
  check_mat "assemble4 roundtrip" a (Mat.assemble4 a11 a12 a21 a22);
  check_mat "submatrix" a12 (Mat.submatrix a 0 2 2 2);
  check_raises_invalid "submatrix oob" (fun () -> Mat.submatrix a 3 3 2 2)

let test_cat () =
  let a = Mat.ones 2 1 and b = Mat.zeros 2 2 in
  Alcotest.(check (pair int int)) "hcat dims" (2, 3) (Mat.dims (Mat.hcat a b));
  let c = Mat.ones 1 2 and d = Mat.zeros 2 2 in
  Alcotest.(check (pair int int)) "vcat dims" (3, 2) (Mat.dims (Mat.vcat c d));
  check_raises_invalid "hcat mismatch" (fun () -> Mat.hcat a c)

let prop_mm_associative seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng n n and b = random_mat rng n n and c = random_mat rng n n in
  Mat.approx_equal ~tol:1e-6 (Mat.mm (Mat.mm a b) c) (Mat.mm a (Mat.mm b c))

let prop_transpose_involution seed =
  let rng = Prng.Rng.create seed in
  let r = 1 + Prng.Rng.int rng 8 and c = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng r c in
  Mat.approx_equal a (Mat.transpose (Mat.transpose a))

let prop_mm_transpose seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng n n and b = random_mat rng n n in
  Mat.approx_equal ~tol:1e-8
    (Mat.transpose (Mat.mm a b))
    (Mat.mm (Mat.transpose b) (Mat.transpose a))

let prop_mv_matches_mm seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng n n and x = random_vec rng n in
  let as_col = Mat.of_cols [| x |] in
  Vec.approx_equal ~tol:1e-8 (Mat.mv a x) (Mat.col (Mat.mm a as_col) 0)

let prop_tmv_matches_transpose seed =
  let rng = Prng.Rng.create seed in
  let r = 1 + Prng.Rng.int rng 8 and c = 1 + Prng.Rng.int rng 8 in
  let a = random_mat rng r c and x = random_vec rng r in
  Vec.approx_equal ~tol:1e-8 (Mat.tmv a x) (Mat.mv (Mat.transpose a) x)

let prop_gram_psd seed =
  let rng = Prng.Rng.create seed in
  let n = 1 + Prng.Rng.int rng 6 in
  let a = random_mat rng n n in
  let g = Mat.gram a in
  let x = random_vec rng n in
  Mat.quadratic_form g x >= -1e-8

let suite =
  ( "mat",
    [
      case "construction" test_construction;
      case "of_rows/of_cols" test_of_rows_cols;
      case "get/set bounds" test_get_set;
      case "row/col/diag access" test_row_col;
      case "add/sub/scale" test_add_sub_scale;
      case "mv/tmv/mm" test_mv_mm;
      case "transpose/gram/outer" test_transpose_gram;
      case "reductions" test_reductions;
      case "quadratic form" test_quadratic_form_value;
      case "symmetry predicate" test_symmetric;
      case "block split/assemble" test_blocks;
      case "hcat/vcat" test_cat;
      qprop "mm associative" prop_mm_associative;
      qprop "transpose involution" prop_transpose_involution;
      qprop "(AB)^T = B^T A^T" prop_mm_transpose;
      qprop "mv consistent with mm" prop_mv_matches_mm;
      qprop "tmv = transpose mv" prop_tmv_matches_transpose;
      qprop "gram matrices PSD" prop_gram_psd;
    ] )
