(* Tests for the feature wave: incremental solver, active learning, CMN,
   CSV I/O, SVG plots, ablation studies. *)

open Test_util
module P = Gssl.Problem
module Inc = Gssl.Incremental
module Active = Gssl.Active
module Cmn = Gssl.Cmn
module Csv = Dataset.Csv
module Vec = Linalg.Vec

let random_problem rng n m =
  let points =
    Array.init (n + m) (fun _ ->
        [| Prng.Rng.uniform rng 0. 2.; Prng.Rng.uniform rng 0. 2. |])
  in
  let labels =
    Array.init n (fun _ -> if Prng.Rng.bernoulli rng 0.5 then 1. else 0.)
  in
  let w =
    Kernel.Similarity.dense ~kernel:Kernel.Kernel_fn.Rbf ~bandwidth:1.5 points
  in
  (P.make ~graph:(Graph.Weighted_graph.of_dense w) ~labels, points)

(* ---------- incremental ---------- *)

let test_incremental_initial_matches_hard () =
  let rng = Prng.Rng.create 1 in
  let problem, _ = random_problem rng 6 5 in
  let solver = Inc.create problem in
  let direct = Gssl.Hard.solve problem in
  let scored = Inc.predict solver in
  Alcotest.(check int) "all unlabeled" 5 (Array.length scored);
  Array.iteri
    (fun k (v, s) ->
      Alcotest.(check int) "vertex order" (6 + k) v;
      check_float ~tol:1e-8 "initial score" direct.(k) s)
    scored

(* after revealing some labels, the incremental solution must equal a
   from-scratch hard solve on the problem with those labels appended *)
let rebuild_with_revealed problem points revealed =
  let w = Graph.Weighted_graph.to_dense problem.P.graph in
  let n = P.n_labeled problem in
  let total = P.size problem in
  let revealed_v = List.map fst revealed in
  let order =
    Array.of_list
      (List.concat
         [
           List.init n (fun i -> i);
           revealed_v;
           List.filter
             (fun v -> not (List.mem v revealed_v))
             (List.init (total - n) (fun a -> n + a));
         ])
  in
  let size = Array.length order in
  let wp = Linalg.Mat.init size size (fun i j ->
      Linalg.Mat.get w order.(i) order.(j))
  in
  let labels =
    Array.append problem.P.labels (Array.of_list (List.map snd revealed))
  in
  ignore points;
  ( P.make ~graph:(Graph.Weighted_graph.of_dense wp) ~labels,
    Array.sub order (n + List.length revealed) (size - n - List.length revealed) )

let prop_incremental_matches_refit seed =
  let rng = Prng.Rng.create seed in
  let n = 3 + Prng.Rng.int rng 5 and m = 3 + Prng.Rng.int rng 5 in
  let problem, points = random_problem rng n m in
  let solver = Inc.create problem in
  (* reveal two random unlabeled vertices *)
  let v1 = n + Prng.Rng.int rng m in
  let v2 =
    let rec draw () =
      let v = n + Prng.Rng.int rng m in
      if v = v1 then draw () else v
    in
    draw ()
  in
  let y1 = if Prng.Rng.bool rng then 1. else 0. in
  let y2 = if Prng.Rng.bool rng then 1. else 0. in
  Inc.reveal solver ~vertex:v1 ~label:y1;
  Inc.reveal solver ~vertex:v2 ~label:y2;
  let refit_problem, refit_order =
    rebuild_with_revealed problem points [ (v1, y1); (v2, y2) ]
  in
  let refit = Gssl.Hard.solve refit_problem in
  let incremental = Inc.predict solver in
  (* refit_order.(k) is the graph vertex of refit score k *)
  Array.for_all
    (fun (v, s) ->
      let k = ref (-1) in
      Array.iteri (fun i rv -> if rv = v then k := i) refit_order;
      abs_float (refit.(!k) -. s) < 1e-6)
    incremental

let test_incremental_bookkeeping () =
  let rng = Prng.Rng.create 2 in
  let problem, _ = random_problem rng 4 3 in
  let solver = Inc.create problem in
  Alcotest.(check int) "remaining" 3 (Inc.n_remaining solver);
  Inc.reveal solver ~vertex:5 ~label:1.;
  Alcotest.(check int) "after reveal" 2 (Inc.n_remaining solver);
  Alcotest.(check (array int)) "remaining vertices" [| 4; 6 |] (Inc.remaining solver);
  Alcotest.(check int) "labels grew" 5 (Array.length (Inc.labels solver));
  check_raises_invalid "reveal twice" (fun () ->
      Inc.reveal solver ~vertex:5 ~label:0.);
  check_raises_invalid "reveal labeled vertex" (fun () ->
      Inc.reveal solver ~vertex:0 ~label:0.)

(* ---------- active ---------- *)

let test_active_selects_uncertain () =
  let rng = Prng.Rng.create 3 in
  let problem, _ = random_problem rng 8 6 in
  let solver = Inc.create problem in
  let chosen = Active.select Active.Uncertainty solver in
  let scored = Inc.predict solver in
  let dist v =
    let s = snd (Array.to_list scored |> List.find (fun (u, _) -> u = v)) in
    abs_float (s -. 0.5)
  in
  Array.iter
    (fun (v, _) ->
      Alcotest.(check bool) "chosen is most uncertain" true
        (dist chosen <= dist v +. 1e-12))
    scored

let test_active_run_budget () =
  let rng = Prng.Rng.create 4 in
  let problem, _ = random_problem rng 5 6 in
  let solver = Inc.create problem in
  let acquired =
    Active.run Active.Uncertainty ~oracle:(fun _ -> 1.) ~budget:4 solver
  in
  Alcotest.(check int) "4 acquisitions" 4 (List.length acquired);
  Alcotest.(check int) "2 remain" 2 (Inc.n_remaining solver);
  (* exhausting the pool stops early *)
  let more = Active.run Active.Uncertainty ~oracle:(fun _ -> 0.) ~budget:10 solver in
  Alcotest.(check int) "stops when empty" 2 (List.length more);
  Alcotest.(check int) "none remain" 0 (Inc.n_remaining solver);
  check_raises_invalid "empty select" (fun () ->
      ignore (Active.select Active.Uncertainty solver));
  check_raises_invalid "negative budget" (fun () ->
      ignore (Active.run Active.Uncertainty ~oracle:(fun _ -> 0.) ~budget:(-1) solver))

let test_active_random_strategy () =
  let rng = Prng.Rng.create 5 in
  let problem, _ = random_problem rng 5 4 in
  let solver = Inc.create problem in
  let v = Active.select (Active.Random (Prng.Rng.create 9)) solver in
  Alcotest.(check bool) "selects an unlabeled vertex" true
    (Array.exists (fun u -> u = v) (Inc.remaining solver))

let prop_active_reveals_improve_fit seed =
  (* revealing true labels never leaves the solver unable to predict;
     scores stay within [0,1] for 0/1 labels (maximum principle) *)
  let rng = Prng.Rng.create seed in
  let problem, _ = random_problem rng 4 8 in
  let solver = Inc.create problem in
  let oracle _ = if Prng.Rng.bool rng then 1. else 0. in
  ignore (Active.run Active.Density_weighted ~oracle ~budget:5 solver);
  Array.for_all
    (fun (_, s) -> s >= -1e-8 && s <= 1. +. 1e-8)
    (Inc.predict solver)

(* ---------- CMN ---------- *)

let test_cmn_balanced_identity_order () =
  (* CMN is monotone in the raw score, so the induced ranking is identical *)
  let labels = [| 1.; 0.; 1.; 0. |] in
  let f = [| 0.9; 0.1; 0.6; 0.4 |] in
  let s = Cmn.scores ~labels f in
  Alcotest.(check bool) "order preserved" true
    (s.(0) > s.(2) && s.(2) > s.(3) && s.(3) > s.(1))

let test_cmn_prior_shifts_threshold () =
  let labels = [| 1.; 0. |] in
  let f = [| 0.45; 0.55; 0.5 |] in
  (* with a high positive prior, middling scores classify positive *)
  let high = Cmn.classify ~prior:0.9 ~labels f in
  let low = Cmn.classify ~prior:0.1 ~labels f in
  Alcotest.(check bool) "high prior more positives" true
    (Array.for_all (fun b -> b) high);
  Alcotest.(check bool) "low prior fewer positives" true
    (Array.for_all not low)

let test_cmn_guards () =
  let labels = [| 1.; 0. |] in
  check_raises_invalid "bad prior" (fun () ->
      ignore (Cmn.scores ~prior:1.5 ~labels [| 0.5 |]));
  check_raises_invalid "score out of range" (fun () ->
      ignore (Cmn.scores ~labels [| 1.5 |]));
  check_raises_invalid "zero mass" (fun () -> ignore (Cmn.scores ~labels [| 0.; 0. |]))

let prop_cmn_matches_class_mass_rule seed =
  (* definition check: sign of score = comparison of normalised masses *)
  let rng = Prng.Rng.create seed in
  let n = 2 + Prng.Rng.int rng 10 in
  let f = Array.init n (fun _ -> 0.05 +. (0.9 *. Prng.Rng.float rng)) in
  let q = 0.2 +. (0.6 *. Prng.Rng.float rng) in
  let labels = [| 1.; 0. |] in
  let s = Cmn.scores ~prior:q ~labels f in
  let pos_mass = Vec.sum f in
  let neg_mass = float_of_int n -. pos_mass in
  Array.for_all
    (fun i ->
      let lhs = q *. f.(i) /. pos_mass in
      let rhs = (1. -. q) *. (1. -. f.(i)) /. neg_mass in
      (s.(i) > 0.) = (lhs > rhs))
    (Array.init n (fun i -> i))

(* ---------- CSV ---------- *)

let test_csv_parse_simple () =
  let rows = Csv.parse "a,b,c\n1,2,3\n" in
  Alcotest.(check (list (list string))) "rows"
    [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ]
    rows

let test_csv_parse_quoted () =
  let rows = Csv.parse "\"a,b\",\"say \"\"hi\"\"\",plain\r\nx,y,z" in
  Alcotest.(check (list (list string))) "quoted fields"
    [ [ "a,b"; "say \"hi\""; "plain" ]; [ "x"; "y"; "z" ] ]
    rows

let test_csv_parse_embedded_newline () =
  let rows = Csv.parse "\"line1\nline2\",b\n" in
  Alcotest.(check (list (list string))) "newline in quotes"
    [ [ "line1\nline2"; "b" ] ]
    rows

let test_csv_unclosed_quote () =
  match Csv.parse "\"oops" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let prop_csv_roundtrip seed =
  let rng = Prng.Rng.create seed in
  let n_rows = 1 + Prng.Rng.int rng 6 and n_cols = 1 + Prng.Rng.int rng 5 in
  let tricky = [| "plain"; "with,comma"; "with\"quote"; "with\nnewline"; ""; "  spaced  " |] in
  let rows =
    List.init n_rows (fun _ ->
        List.init n_cols (fun _ -> Prng.Rng.choose rng tricky))
  in
  Csv.parse (Csv.render rows) = rows

let test_csv_numeric () =
  let data =
    Csv.parse_numeric "x0,x1,label\n1,2,1\n3,4,\n5.5,-6,0\n"
  in
  Alcotest.(check int) "3 rows" 3 (Array.length data.Csv.features);
  check_vec "features" [| 3.; 4. |] data.Csv.features.(1);
  Alcotest.(check bool) "row 1 labeled" true (data.Csv.labels.(0) = Some 1.);
  Alcotest.(check bool) "row 2 unlabeled" true (data.Csv.labels.(1) = None);
  (match Csv.parse_numeric "a\nnot_a_number\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on non-numeric")

let test_csv_numeric_roundtrip () =
  let points = [| [| 1.5; 2.5 |]; [| -3.; 4. |] |] in
  let labels = [| Some 1.; None |] in
  let text = Csv.render_points ~labels points in
  let data = Csv.parse_numeric text in
  Alcotest.(check int) "rows" 2 (Array.length data.Csv.features);
  check_vec "point 0" points.(0) data.Csv.features.(0);
  check_vec "point 1" points.(1) data.Csv.features.(1);
  Alcotest.(check bool) "labels roundtrip" true (data.Csv.labels = labels)

let test_csv_file_io () =
  let path = Filename.temp_file "gssl_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path [ [ "a"; "b" ]; [ "1"; "2" ] ];
      Alcotest.(check (list (list string))) "file roundtrip"
        [ [ "a"; "b" ]; [ "1"; "2" ] ]
        (Csv.read_file path))

(* ---------- SVG ---------- *)

let fixture_figure =
  {
    Experiment.Sweep.title = "t <svg>";
    xlabel = "x";
    ylabel = "y";
    series =
      [
        {
          Experiment.Sweep.label = "a & b";
          xs = [| 1.; 2.; 3. |];
          means = [| 1.; 4.; 2. |];
          stderrs = [| 0.1; 0.; 0.2 |];
        };
      ];
  }

let test_svg_render () =
  let svg = Experiment.Svg_plot.render fixture_figure in
  Alcotest.(check bool) "is svg" true (Astring.String.is_prefix ~affix:"<svg" svg);
  Alcotest.(check bool) "escapes title" true
    (Astring.String.is_infix ~affix:"t &lt;svg&gt;" svg);
  Alcotest.(check bool) "escapes legend" true
    (Astring.String.is_infix ~affix:"a &amp; b" svg);
  Alcotest.(check bool) "has polyline" true
    (Astring.String.is_infix ~affix:"polyline" svg);
  check_raises_invalid "bad dims" (fun () ->
      ignore (Experiment.Svg_plot.render ~width:0 fixture_figure))

let test_svg_empty () =
  let empty = { fixture_figure with Experiment.Sweep.series = [] } in
  Alcotest.(check bool) "no data note" true
    (Astring.String.is_infix ~affix:"no data" (Experiment.Svg_plot.render empty))

let test_svg_file () =
  let path = Filename.temp_file "gssl_svg" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Experiment.Svg_plot.write_file path fixture_figure;
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) "file starts with svg" true
        (Astring.String.is_prefix ~affix:"<svg" line))

(* ---------- ablations (smoke + shape) ---------- *)

let test_ablation_kernel_shape () =
  let fig = Experiment.Ablations.kernel_study ~reps:2 ~seed:71 ~ns:[ 40; 150 ] () in
  Alcotest.(check int) "four kernels" 4 (List.length fig.Experiment.Sweep.series);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Experiment.Sweep.label ^ " finite")
        true
        (Array.for_all Float.is_finite s.Experiment.Sweep.means))
    fig.Experiment.Sweep.series

let test_ablation_regime_shape () =
  let fig = Experiment.Ablations.regime_study ~reps:2 ~seed:72 ~total:400 () in
  (* hard uniformly best across the regime sweep *)
  Alcotest.(check bool) "hard best" true (Experiment.Report.first_series_best fig)

let test_ablation_cv_shape () =
  let fig = Experiment.Ablations.cv_study ~reps:2 ~seed:73 ~ns:[ 40; 80 ] () in
  (* cv-tuned can never beat hard by more than noise; check it's close *)
  match fig.Experiment.Sweep.series with
  | [ hard; tuned; worst ] ->
      Array.iteri
        (fun i h ->
          Alcotest.(check bool) "tuned >= hard - eps" true
            (tuned.Experiment.Sweep.means.(i) >= h -. 1e-9);
          Alcotest.(check bool) "worst >= tuned" true
            (worst.Experiment.Sweep.means.(i)
             >= tuned.Experiment.Sweep.means.(i) -. 0.02))
        hard.Experiment.Sweep.means
  | _ -> Alcotest.fail "expected 3 series"

let test_ablation_nystrom_shape () =
  let fig =
    Experiment.Ablations.nystrom_study ~seed:74 ~n:60 ~landmark_counts:[ 5; 20; 60 ] ()
  in
  match fig.Experiment.Sweep.series with
  | [ matrix_err; _ ] ->
      let e = matrix_err.Experiment.Sweep.means in
      Alcotest.(check bool) "error shrinks to ~0" true (e.(2) < 1e-6);
      Alcotest.(check bool) "more landmarks better" true (e.(2) <= e.(0) +. 1e-9)
  | _ -> Alcotest.fail "expected 2 series"

let test_ablation_active_shape () =
  let fig = Experiment.Ablations.active_study ~reps:2 ~seed:75 ~budgets:[ 0; 30 ] () in
  Alcotest.(check int) "three strategies" 3 (List.length fig.Experiment.Sweep.series);
  (* all strategies share the budget-0 starting point *)
  let starts =
    List.map (fun s -> s.Experiment.Sweep.means.(0)) fig.Experiment.Sweep.series
  in
  (match starts with
  | a :: rest -> List.iter (fun b -> check_float ~tol:1e-9 "same start" a b) rest
  | [] -> Alcotest.fail "no series");
  (* labeling 30 of 150 pool points should help every strategy *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Experiment.Sweep.label ^ " improves")
        true
        (s.Experiment.Sweep.means.(1) < s.Experiment.Sweep.means.(0) +. 0.02))
    fig.Experiment.Sweep.series

let suite =
  ( "features",
    [
      case "incremental: initial = hard" test_incremental_initial_matches_hard;
      qprop ~count:50 "incremental: matches refit" prop_incremental_matches_refit;
      case "incremental: bookkeeping" test_incremental_bookkeeping;
      case "active: uncertainty pick" test_active_selects_uncertain;
      case "active: budget semantics" test_active_run_budget;
      case "active: random strategy" test_active_random_strategy;
      qprop ~count:30 "active: scores stay in [0,1]" prop_active_reveals_improve_fit;
      case "cmn: preserves ranking" test_cmn_balanced_identity_order;
      case "cmn: prior shifts threshold" test_cmn_prior_shifts_threshold;
      case "cmn: guards" test_cmn_guards;
      qprop "cmn: matches mass rule" prop_cmn_matches_class_mass_rule;
      case "csv: simple parse" test_csv_parse_simple;
      case "csv: quoting" test_csv_parse_quoted;
      case "csv: embedded newline" test_csv_parse_embedded_newline;
      case "csv: unclosed quote" test_csv_unclosed_quote;
      qprop "csv: render/parse roundtrip" prop_csv_roundtrip;
      case "csv: numeric parsing" test_csv_numeric;
      case "csv: numeric roundtrip" test_csv_numeric_roundtrip;
      case "csv: file io" test_csv_file_io;
      case "svg: render & escape" test_svg_render;
      case "svg: empty figure" test_svg_empty;
      case "svg: file output" test_svg_file;
      case "ablation: kernel study" test_ablation_kernel_shape;
      case "ablation: regime study" test_ablation_regime_shape;
      case "ablation: cv study" test_ablation_cv_shape;
      case "ablation: nystrom study" test_ablation_nystrom_shape;
      case "ablation: active study" test_ablation_active_shape;
    ] )
